// BenchmarkTraceOverhead measures what observing a simulation costs the
// host, across the tracing configurations a user can choose:
//
//   - untraced: the nil-tracer hot path (the baseline every simulation pays);
//   - streaming: the online sinks of the telemetry layer (metrics.StreamSink
//     + trace.UtilSink + trace.CommMatrix behind a trace.Tee), which fold
//     each event into O(procs + groups) state and never retain events;
//   - sampled: the same streaming sinks behind deterministic 1-in-16 event
//     sampling (structural events always kept) — the scale tier's posture;
//   - collector: the full trace.Collector retaining every event, plus the
//     post-hoc metrics.FromTrace pass — what fxprof pays for its Gantt and
//     critical-path views.
//
// Each configuration times the same traced pipeline run *including* snapshot
// production, so the comparison is end to end: fold-as-you-go versus
// retain-then-scan. The numbers land in BENCH_obs.json; tools/checkobs
// gates the committed snapshot: streaming must not exceed the collector,
// exact streaming must stay under its overhead ceiling, and the sampled
// configuration must stay near free.
package fxpar_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

type obsBenchFile struct {
	// Workload shape: one neighbour-exchange run per measurement.
	Procs  int
	Iters  int
	Events int // events one traced run emits
	// Host time per run, by tracing configuration (seconds).
	UntracedSec  float64
	StreamingSec float64
	CollectorSec float64
	// SampledSec is the streaming configuration under deterministic 1-in-16
	// event sampling — the scale tier's default posture.
	SampledSec float64
	// Overheads relative to untraced (x: 1.0 = free).
	StreamingOverhead float64
	CollectorOverhead float64
	SampledOverhead   float64
	// SampledKept/SampledDropped are the sampler's deterministic event
	// counts (identical on every host, engine and -j).
	SampledKept    int64
	SampledDropped int64
	// Virtual-time spot check, identical on every host.
	Makespan float64
}

// Workload shape: a ring neighbour exchange on obsProcs processors for
// obsIters rounds inside a named span — event-heavy (each round emits a
// span pair, compute, send, wait and recv marker per processor), which is
// exactly the regime where retaining the event log starts to cost.
const (
	obsProcs = 32
	obsIters = 100
)

// obsRun executes one neighbour-exchange run under the given tracer (nil =
// untraced) and sampler (nil = keep everything) and returns its makespan.
func obsRun(tr machine.Tracer, s *trace.Sampler) float64 {
	m := machine.New(obsProcs, sim.Paragon())
	m.SetTracer(tr)
	if s != nil {
		m.SetSampler(s)
	}
	st := m.Run(func(p *machine.Proc) {
		r := p.ID()
		for it := 0; it < obsIters; it++ {
			p.BeginSpan("exchange:group[ring]")
			p.Compute(1e3)
			p.Send((r+1)%obsProcs, it, 8)
			p.Recv((r + obsProcs - 1) % obsProcs)
			p.EndSpan()
		}
	})
	return st.MakespanTime()
}

// timeRuns reports the best-of-3 average host time per run of fn.
func timeRuns(runs int, fn func()) float64 {
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for i := 0; i < runs; i++ {
			fn()
		}
		per := time.Since(start).Seconds() / float64(runs)
		if attempt == 0 || per < best {
			best = per
		}
	}
	return best
}

func BenchmarkTraceOverhead(b *testing.B) {
	const procs = obsProcs
	runs := b.N
	if runs < 5 {
		runs = 5
	}

	var makespan float64
	untraced := timeRuns(runs, func() { makespan = obsRun(nil, nil) })

	var sinkEvents int64
	streaming := timeRuns(runs, func() {
		sink := metrics.NewStreamSink(procs)
		util := trace.NewUtilSink(procs)
		comm := trace.NewCommMatrix(procs)
		obsRun(trace.Tee(sink, util, comm), nil)
		snap := sink.Snapshot()
		usnap := util.Snapshot()
		edges := comm.Snapshot()
		sinkEvents = int64(snap.Totals.Events)
		_, _ = usnap, edges
	})

	events := 0
	collector := timeRuns(runs, func() {
		col := &trace.Collector{}
		obsRun(col, nil)
		evs := col.Events()
		snap := metrics.FromTrace(evs).Snapshot()
		util := col.BusyByKind(procs)
		edges := trace.CommFromEvents(evs)
		events = len(evs)
		_, _, _ = snap, util, edges
	})
	if int64(events) != sinkEvents {
		b.Fatalf("streaming sink saw %d events, collector %d", sinkEvents, events)
	}

	// Sampled: same streaming sinks behind deterministic 1-in-16 event
	// sampling — the scale tier's posture. The sampler is fresh per run so
	// the kept/dropped counts are per-run and deterministic.
	var sampSnap trace.SampleSnapshot
	sampled := timeRuns(runs, func() {
		sampler := trace.NewSampler(procs, trace.UniformSampleConfig(1.0/16, 1))
		sink := metrics.NewStreamSink(procs)
		util := trace.NewUtilSink(procs)
		comm := trace.NewCommMatrix(procs)
		obsRun(trace.Tee(sink, util, comm), sampler)
		snap := sink.Snapshot()
		usnap := util.Snapshot()
		edges := comm.Snapshot()
		sampSnap = sampler.Snapshot()
		_, _, _ = snap, usnap, edges
	})
	if kept := sampSnap.Kept + sampSnap.Dropped; kept != int64(events) {
		b.Fatalf("sampler decided on %d events, unsampled run emits %d", kept, events)
	}

	b.ReportMetric(streaming/untraced, "stream-x")
	b.ReportMetric(collector/untraced, "collector-x")
	b.ReportMetric(sampled/untraced, "sampled-x")

	snap := obsBenchFile{
		Procs: procs, Iters: obsIters, Events: events,
		UntracedSec:       untraced,
		StreamingSec:      streaming,
		CollectorSec:      collector,
		SampledSec:        sampled,
		StreamingOverhead: streaming / untraced,
		CollectorOverhead: collector / untraced,
		SampledOverhead:   sampled / untraced,
		SampledKept:       sampSnap.Kept,
		SampledDropped:    sampSnap.Dropped,
		Makespan:          makespan,
	}
	f, err := os.Create("BENCH_obs.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
