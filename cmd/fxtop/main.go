// Command fxtop is the live campaign monitor: it attaches to the HTTP
// endpoint an experiment driver exposes with -monitor (table1, fig5, fig6,
// fxbench) and renders a top-style terminal view of every running campaign —
// jobs finished/running/failed, a progress bar, elapsed wall time and an
// ETA — refreshing in place until the campaigns complete or it is
// interrupted. The header identifies the run: the driver's execution engine
// and, when fault injection is active, the chaos plan (seed:profile).
//
// Examples:
//
//	fxbench -monitor auto &          # driver serves http://127.0.0.1:6070
//	fxtop                            # attach and watch
//	fxtop -url http://127.0.0.1:6070 -interval 500ms
//	fxtop -once                      # print one snapshot and exit
//	fxtop -json                      # dump the raw JSON snapshot and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"fxpar/internal/sweep"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fxtop:", err)
	os.Exit(1)
}

// fetch pulls one snapshot from the driver's /snapshot endpoint.
func fetch(client *http.Client, url string) (sweep.MonitorSnapshot, error) {
	var snap sweep.MonitorSnapshot
	resp, err := client.Get(url + "/snapshot")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s/snapshot: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// allDone reports whether at least one campaign exists and all are finished.
func allDone(s sweep.MonitorSnapshot) bool {
	if len(s.Campaigns) == 0 {
		return false
	}
	for _, c := range s.Campaigns {
		if !c.Done {
			return false
		}
	}
	return true
}

func main() {
	url := flag.String("url", "http://"+sweep.DefaultMonitorAddr, "base URL of the driver's -monitor endpoint")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	asJSON := flag.Bool("json", false, "print the raw JSON snapshot and exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}

	if *asJSON {
		resp, err := client.Get(*url + "/snapshot")
		if err != nil {
			fail(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			fail(err)
		}
		return
	}

	for {
		snap, err := fetch(client, *url)
		if err != nil {
			fail(err)
		}
		if !*once {
			// Clear the screen and home the cursor, top(1)-style.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("fxtop — %s\n", *url)
		sweep.RenderText(os.Stdout, snap)
		if *once || allDone(snap) {
			return
		}
		time.Sleep(*interval)
	}
}
