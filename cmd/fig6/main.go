// Command fig6 regenerates Figure 6 of the paper: Airshed speedup curves
// for the data-parallel version (which flattens on serial I/O) and the
// task+data-parallel version with input and output separated onto their own
// processor subgroups.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fxpar/internal/experiments"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced-size workload")
	j := flag.Int("j", 0, "max concurrent simulations (0 = all host cores); output is identical for every value")
	replay := flag.String("replay", "", "directory for the skeleton store; sweep points are answered by analytic whole-run replay instead of re-simulation whenever the store holds their skeleton ('' disables)")
	monitor := flag.String("monitor", "", "serve live campaign progress over HTTP on this address for fxtop ('auto' = "+sweep.DefaultMonitorAddr+")")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	chaos := flag.String("chaos", "", "inject deterministic faults into every point's runs: seed[:profile] (profiles: "+strings.Join(fault.ProfileNames(), " ")+"; default "+fault.DefaultProfile+")")
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig6:", err)
		os.Exit(2)
	}
	plan, err := fault.Parse(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig6:", err)
		os.Exit(2)
	}
	sweep.SetEngineLabel(eng.Name())
	if plan != nil {
		sweep.SetChaosLabel(plan.String())
	}
	url, stopMon, err := sweep.MonitorFromFlag(*monitor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig6:", err)
		os.Exit(1)
	}
	defer stopMon()
	if url != "" {
		fmt.Printf("campaign monitor: %s/snapshot (fxtop -url %s)\n", url, url)
	}
	cfg := experiments.DefaultFig6()
	if *quick {
		cfg = experiments.QuickFig6()
	}
	cfg.Workers = *j
	cfg.Engine = eng
	cfg.Faults = plan.Machine()
	if *replay != "" {
		cfg.Replay = &mapping.ReplayOptions{Store: skeleton.NewStore(*replay)}
	}
	if plan != nil {
		fmt.Printf("chaos: injecting faults with plan %s\n", plan)
	}
	points := experiments.Fig6(cfg)
	experiments.PrintFig6(os.Stdout, points)
}
