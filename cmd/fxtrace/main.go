// Command fxtrace runs FFT-Hist under the data-parallel and the pipelined
// mapping with execution tracing enabled and renders virtual-time Gantt
// charts — making the pipelining that minimal processor subsets enable
// (Section 4) directly visible: under the pipeline mapping the three stage
// subgroups' compute bands overlap in steady state.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// sanitizeLabel converts a mapping label like "pipeline(2,2,2)" into a
// filename-safe token ("pipeline-2-2-2"): runs of characters outside
// [A-Za-z0-9._-] collapse into single dashes, trimmed at the ends.
func sanitizeLabel(label string) string {
	var sb strings.Builder
	dash := false
	for _, r := range label {
		safe := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if safe {
			sb.WriteRune(r)
			dash = false
		} else if !dash {
			sb.WriteByte('-')
			dash = true
		}
	}
	return strings.Trim(sb.String(), "-")
}

func main() {
	n := flag.Int("n", 64, "FFT-Hist array edge (power of two)")
	sets := flag.Int("sets", 6, "stream length")
	width := flag.Int("width", 100, "gantt width in characters")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	chaos := flag.String("chaos", "", "inject deterministic faults into both runs: seed[:profile] (profiles: "+strings.Join(fault.ProfileNames(), " ")+"; default "+fault.DefaultProfile+"); faults render as F/t/R glyphs")
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxtrace:", err)
		os.Exit(2)
	}
	plan, err := fault.Parse(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxtrace:", err)
		os.Exit(2)
	}

	cfg := ffthist.Config{N: *n, Sets: *sets, Bins: 32}
	procs := 6

	for _, tc := range []struct {
		label string
		mp    ffthist.Mapping
	}{
		{"data-parallel(6)", ffthist.DataParallel(procs)},
		{"pipeline(2,2,2)", ffthist.Pipeline(2, 2, 2)},
	} {
		// The Gantt needs the full event log (Collector); utilization comes
		// from the streaming sink, which aggregates the same run online.
		col := &trace.Collector{}
		util := trace.NewUtilSink(procs)
		m := machine.New(procs, sim.Paragon())
		m.SetEngine(eng)
		m.SetTracer(trace.Tee(col, util))
		m.SetFaults(plan.Machine())
		res := ffthist.Run(m, cfg, tc.mp)
		fmt.Printf("=== %s: %.2f sets/s, latency %.4f s ===\n", tc.label,
			res.Stream.Throughput, res.Stream.Latency)
		trace.Gantt(os.Stdout, col, procs, *width)
		fmt.Println()
		util.Snapshot().WriteText(os.Stdout)
		fmt.Println()
		if *chrome != "" {
			name := *chrome + "." + sanitizeLabel(tc.label) + ".json"
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := trace.WriteChromeTrace(f, col); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", name)
		}
	}
	fmt.Println("In the pipeline chart, rows 0-1 (colffts), 2-3 (rowffts) and 4-5 (hist)")
	fmt.Println("work on different data sets at the same virtual time: that staggered")
	fmt.Println("overlap is the task parallelism the minimal-subset assignment preserves.")
}
