// Command fxbench regenerates the paper's entire evaluation section in one
// run: Table 1, Figure 5, Figure 6, and the nested-parallelism studies
// (quicksort scaling and Barnes-Hut worklist/memory behaviour of Figures 4
// and 7 / Section 5.3).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fxpar/internal/apps/barneshut"
	"fxpar/internal/apps/qsort"
	"fxpar/internal/benchcmp"
	"fxpar/internal/experiments"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

// benchFile is the machine-readable Table 1 snapshot: enough context to
// compare virtual-time numbers across revisions of this repository.
type benchFile struct {
	Procs int
	Sets  int
	Quick bool
	Rows  []experiments.Table1Row
}

// writeJSON dumps the Table 1 rows to path as indented JSON.
func writeJSON(path string, cfg experiments.Table1Config, rows []experiments.Table1Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchFile{Procs: cfg.Procs, Sets: cfg.Sets, Quick: cfg.Quick, Rows: rows}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportDiffs prints a benchmark comparison verdict to stderr/stdout.
func reportDiffs(basePath, curName string, diffs []benchcmp.Diff, tolerancePct float64) {
	reportDiffsTo(os.Stdout, os.Stderr, basePath, curName, diffs, tolerancePct)
}

func reportDiffsTo(stdout, stderr io.Writer, basePath, curName string, diffs []benchcmp.Diff, tolerancePct float64) {
	if len(diffs) == 0 {
		fmt.Fprintf(stdout, "baseline check: %s vs %s OK (tolerance %g%%)\n", basePath, curName, tolerancePct)
		return
	}
	fmt.Fprintf(stderr, "fxbench: %d regression(s) vs %s (tolerance %g%%):\n", len(diffs), basePath, tolerancePct)
	for _, d := range diffs {
		fmt.Fprintf(stderr, "  %s\n", d)
	}
}

// compareMain implements the standalone -compare mode and returns the
// process exit code: 0 when the snapshots match, 1 on regressions, 2 when
// the comparison itself cannot run — a malformed spec, or a baseline or
// current file that is missing or not valid JSON. The distinct exit code
// and a message naming the offending file keep CI failures diagnosable:
// "baseline missing" must never be conflated with "numbers regressed".
func compareMain(spec string, tolerance float64, skip string, stdout, stderr io.Writer) int {
	basePath, curPath, ok := strings.Cut(spec, ":")
	if !ok {
		fmt.Fprintln(stderr, "fxbench: -compare wants 'baseline.json:current.json'")
		return 2
	}
	diffs, err := benchcmp.CompareFiles(basePath, curPath, tolerance, skip)
	if err != nil {
		fmt.Fprintln(stderr, "fxbench:", err)
		return 2
	}
	reportDiffsTo(stdout, stderr, basePath, curPath, diffs, tolerance)
	if len(diffs) > 0 {
		return 1
	}
	return 0
}

// skeletonsMain implements the standalone -skeletons mode: decode two
// serialized skeletons (content keys verified) and print the per-span
// regression attribution. Exit codes mirror -compare: 0 identical, 1
// changed, 2 when the diff itself cannot run.
func skeletonsMain(spec string, stdout, stderr io.Writer) int {
	basePath, curPath, ok := strings.Cut(spec, ":")
	if !ok {
		fmt.Fprintln(stderr, "fxbench: -skeletons wants 'baseline.json:current.json'")
		return 2
	}
	base, err := skeleton.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "fxbench:", err)
		return 2
	}
	cur, err := skeleton.ReadFile(curPath)
	if err != nil {
		fmt.Fprintln(stderr, "fxbench:", err)
		return 2
	}
	d := skeleton.Diff(base, cur)
	d.WriteReport(stdout)
	if d.Identical() {
		return 0
	}
	return 1
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	jsonPath := flag.String("json", "BENCH_table1.json", "write Table 1 as machine-readable JSON to this file ('' disables)")
	j := flag.Int("j", 0, "max concurrent simulations (0 = all host cores); output is identical for every value")
	cache := flag.String("cache", "", "directory for the on-disk cost-table cache ('' disables)")
	baseline := flag.String("baseline", "", "compare the Table 1 snapshot against this committed BENCH_*.json and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0, "relative tolerance in percent for -baseline/-compare (virtual times are deterministic: 0 is exact)")
	skip := flag.String("skip", "", "regexp of snapshot paths to ignore in -baseline/-compare (host-time fields)")
	compare := flag.String("compare", "", "standalone mode: compare two snapshot files 'baseline.json:current.json' and exit (0 ok, 1 regressions, 2 missing/malformed input)")
	monitor := flag.String("monitor", "", "serve live campaign progress over HTTP on this address for fxtop ('auto' = "+sweep.DefaultMonitorAddr+")")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	chaos := flag.String("chaos", "", "inject deterministic faults into the benchmark runs: seed[:profile] (profiles: "+strings.Join(fault.ProfileNames(), " ")+"; default "+fault.DefaultProfile+")")
	chaosSweep := flag.Int("chaossweep", 0, "standalone mode: fan an FFT-Hist chaos scenario across N seeds (derived from the -chaos seed; profile from -chaos, default havoc) and report survival and latency degradation")
	chaosJSON := flag.String("chaosjson", "BENCH_chaos.json", "with -chaossweep: write the chaos report as machine-readable JSON to this file ('' disables)")
	whatIfSweep := flag.Bool("whatifsweep", false, "standalone mode: capture one FFT-Hist pipeline run as a communication skeleton, re-cost it across a machine-parameter grid and per-span virtual speedups, cross-check against full simulations, and report re-cost vs simulation throughput")
	whatIfJSON := flag.String("whatifjson", "BENCH_whatif.json", "with -whatifsweep: write the what-if report as machine-readable JSON to this file ('' disables)")
	replay := flag.String("replay", "", "directory for the skeleton store: cost-table cells (and -replaysweep captures) are answered by analytic DAG replay instead of re-simulation whenever the store holds their skeleton ('' keeps the store in-process only)")
	replaySweep := flag.Bool("replaysweep", false, "standalone mode: one traced FFT-Hist capture (healthy + chaotic), a machine-parameter campaign answered entirely by analytic replay with bitwise cross-checks against fresh simulations, and a replay-backed mapping search across machine variants")
	replayJSON := flag.String("replayjson", "BENCH_replay.json", "with -replaysweep: write the replay campaign report as machine-readable JSON to this file ('' disables)")
	skeletons := flag.String("skeletons", "", "standalone mode: diff two serialized skeletons 'baseline.json:current.json' for regression attribution and exit (0 identical, 1 changed, 2 missing/malformed input)")
	serveURL := flag.String("serve", "", "client mode: run the Table 1 campaigns against a running fxserve daemon at this base URL instead of simulating locally (with -chaossweep N, the chaos campaign runs remotely too)")
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxbench:", err)
		os.Exit(2)
	}
	sweep.SetEngineLabel(eng.Name())

	// Standalone comparison mode: no simulations, just diff two snapshots.
	// This is how CI checks a regenerated BENCH_sweep.json or
	// BENCH_chaos.json against the committed one.
	if *compare != "" {
		os.Exit(compareMain(*compare, *tolerance, *skip, os.Stdout, os.Stderr))
	}

	// Standalone skeleton-diff mode: when a benchmark comparison regresses,
	// this names the spans and edges that moved.
	if *skeletons != "" {
		os.Exit(skeletonsMain(*skeletons, os.Stdout, os.Stderr))
	}

	// Client mode: the campaigns run inside an fxserve daemon; this process
	// only posts requests and renders responses.
	if *serveURL != "" {
		os.Exit(serveMain(*serveURL, *quick, *chaosSweep, *chaos, os.Stdout, os.Stderr))
	}

	plan, err := fault.Parse(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxbench:", err)
		os.Exit(2)
	}
	if plan != nil {
		sweep.SetChaosLabel(plan.String())
	}

	// Standalone chaos-campaign mode: one scenario, N derived seeds, a
	// deterministic survival/degradation report (identical for every -j and
	// engine, hence committable as a benchmark artifact).
	if *chaosSweep > 0 {
		ccfg := experiments.DefaultChaos()
		if *quick {
			ccfg = experiments.QuickChaos()
		}
		ccfg.Seeds, ccfg.Workers, ccfg.Engine = *chaosSweep, *j, eng
		if plan != nil {
			ccfg.Base, ccfg.Prof = plan.Seed, plan.Prof
		}
		rep := experiments.Chaos(ccfg)
		rep.WriteText(os.Stdout)
		if *chaosJSON != "" {
			f, err := os.Create(*chaosJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *chaosJSON)
		}
		return
	}

	// Standalone what-if mode: capture one skeleton, re-cost it across the
	// parameter grid, cross-check against full simulations. Everything but
	// the Host* throughput fields is deterministic, so the JSON is a
	// committable artifact (CI diffs it with -skip '^Host').
	if *whatIfSweep {
		wcfg := experiments.DefaultWhatIf()
		if *quick {
			wcfg = experiments.QuickWhatIf()
		}
		wcfg.Workers, wcfg.Engine = *j, eng
		rep, err := experiments.WhatIf(wcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
		if !rep.IdentityExact {
			fmt.Fprintln(os.Stderr, "fxbench: skeleton determinism violated — re-cost at recorded parameters deviates from the recorded makespan")
			os.Exit(1)
		}
		if *whatIfJSON != "" {
			f, err := os.Create(*whatIfJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *whatIfJSON)
		}
		return
	}

	// Standalone replay-campaign mode: capture once, answer the whole
	// machine-parameter campaign and mapping search by analytic DAG replay,
	// and cross-check a sample of cells against fresh simulations bitwise.
	// Everything but the Host* throughput fields is deterministic, so the
	// JSON is a committable artifact (CI diffs it with -skip '^Host').
	if *replaySweep {
		rcfg := experiments.DefaultReplay()
		if *quick {
			rcfg = experiments.QuickReplay()
		}
		rcfg.Workers, rcfg.Engine, rcfg.StoreDir = *j, eng, *replay
		if plan != nil {
			rcfg.ChaosSeed, rcfg.ChaosProfile = plan.Seed, plan.Prof.Name
		}
		rep, err := experiments.Replay(rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
		if !rep.IdentityExact || !rep.ChaosIdentityExact {
			fmt.Fprintln(os.Stderr, "fxbench: replay determinism violated — identity replay deviates from the recorded run")
			os.Exit(1)
		}
		if rep.Mismatches > 0 {
			fmt.Fprintf(os.Stderr, "fxbench: %d replay cross-check(s) deviate bitwise from fresh simulations\n", rep.Mismatches)
			os.Exit(1)
		}
		if *replayJSON != "" {
			f, err := os.Create(*replayJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *replayJSON)
		}
		return
	}

	url, stopMon, err := sweep.MonitorFromFlag(*monitor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxbench:", err)
		os.Exit(1)
	}
	defer stopMon()
	if url != "" {
		fmt.Printf("campaign monitor: %s/snapshot (fxtop -url %s)\n", url, url)
	}

	t1 := experiments.DefaultTable1()
	f5 := experiments.DefaultFig5()
	f6 := experiments.DefaultFig6()
	if *quick {
		t1, f5, f6 = experiments.QuickTable1(), experiments.QuickFig5(), experiments.QuickFig6()
	}
	t1.Workers, t1.CacheDir, t1.Engine = *j, *cache, eng
	f5.Workers, f5.CacheDir, f5.Engine = *j, *cache, eng
	f6.Workers, f6.Engine = *j, eng
	t1.Faults, f5.Faults, f6.Faults = plan.Machine(), plan.Machine(), plan.Machine()
	if *replay != "" {
		st := skeleton.NewStore(*replay)
		t1.Replay = &mapping.ReplayOptions{Store: st}
		f5.Replay = &mapping.ReplayOptions{Store: st}
		f6.Replay = &mapping.ReplayOptions{Store: st}
	}
	if plan != nil {
		fmt.Printf("chaos: injecting faults with plan %s\n", plan)
	}

	rows := experiments.Table1(t1)
	experiments.PrintTable1(os.Stdout, rows, t1.Procs)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, t1, rows); err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *baseline != "" {
		cur := benchFile{Procs: t1.Procs, Sets: t1.Sets, Quick: t1.Quick, Rows: rows}
		diffs, err := benchcmp.CompareToBaseline(*baseline, cur, *tolerance, *skip)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(2)
		}
		reportDiffs(*baseline, "current run", diffs, *tolerance)
		if len(diffs) > 0 {
			os.Exit(1)
		}
	}
	fmt.Println()
	f5rows, err := experiments.Fig5(f5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxbench:", err)
		os.Exit(1)
	}
	experiments.PrintFig5(os.Stdout, f5rows, f5)
	fmt.Println()
	experiments.PrintFig6(os.Stdout, experiments.Fig6(f6))
	fmt.Println()

	// Section 3.4 / Figure 4: nested task-parallel quicksort scaling.
	fmt.Println("Quicksort (Figure 4): nested task parallel sort of synthetic keys")
	n := 1 << 17
	procCounts := []int{1, 4, 16, 64}
	if *quick {
		n = 1 << 13
		procCounts = []int{1, 4, 8}
	}
	var t1p float64
	for _, p := range procCounts {
		qm := machine.New(p, sim.Paragon())
		qm.SetEngine(eng)
		qm.SetFaults(plan.Machine())
		res := qsort.Run(qm, n, 42)
		if !res.Sorted {
			fmt.Printf("  %3d procs: SORT FAILED\n", p)
			continue
		}
		if p == 1 {
			t1p = res.Makespan
		}
		fmt.Printf("  %3d procs: %.4f s  (speedup %.2f)\n", p, res.Makespan, t1p/res.Makespan)
	}
	fmt.Println()

	// Section 5.3 / Figure 7: Barnes-Hut worklist and partial-tree memory.
	fmt.Println("Barnes-Hut (Figure 7): worklist and partial-tree behaviour, uniform cube")
	bhN, bhK := 8192, 11 // k deep enough that replicated remote cells are ~4 particles
	bhProcs := []int{1, 8, 64}
	if *quick {
		bhN, bhK = 1024, 8
		bhProcs = []int{1, 8}
	}
	for _, p := range bhProcs {
		cfg := barneshut.Config{N: bhN, Theta: 1.0, Seed: 13, K: bhK}
		bm := machine.New(p, sim.Paragon())
		bm.SetEngine(eng)
		bm.SetFaults(plan.Machine())
		res := barneshut.Run(bm, cfg)
		fmt.Printf("  %3d procs: %.4f s, max worklist %d (n=%d), max partial tree %d nodes (full %d)\n",
			p, res.Makespan, res.MaxWorklist, bhN, res.MaxPartialNodes, 2*bhN-1)
	}
}
