package main

// The -serve client mode: instead of simulating locally, fxbench talks to
// a running fxserve daemon — the Table 1 campaigns (and, with -chaossweep,
// the chaos campaign) go over HTTP as /optimize and /chaossweep requests.
// The four optimize requests are posted concurrently, which exercises the
// server's request dedupe: the two FFT-Hist goals share one cost-table
// campaign, and re-running the client against a warm server answers every
// request from cache without simulating at all (watch the dedup counters
// the client prints from /stats).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"fxpar/internal/fault"
	"fxpar/internal/serve"
	"fxpar/internal/sweep"
)

// postJSON posts body and decodes the JSON response into out. A non-2xx
// status is an error carrying the server's error body.
func postJSON(base, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

// serveGoal is one Table 1 program expressed as an /optimize request: the
// paper's throughput goal as a ratio over measured data-parallel
// throughput (see the experiments package comment).
type serveGoal struct {
	label     string
	app       string
	goalRatio float64
}

// serveMain implements -serve: Table 1 over HTTP against baseURL, or the
// chaos campaign when chaosN > 0. Returns the process exit code.
func serveMain(baseURL string, quick bool, chaosN int, chaosSpec string, stdout, stderr io.Writer) int {
	if chaosN > 0 {
		return serveChaos(baseURL, quick, chaosN, chaosSpec, stdout, stderr)
	}
	procs, sets := 64, 8
	if quick {
		procs, sets = 16, 6
	}
	goals := []serveGoal{
		{"FFT-Hist @8/s", "ffthist", 8.0 / 3.90},
		{"FFT-Hist @2/s", "ffthist", 2.0 / 1.99},
		{"Radar", "radar", 50.0 / 23.4},
		{"Stereo", "stereo", 10.0 / 3.64},
	}
	results := make([]serve.OptimizeResult, len(goals))
	errs := make([]error, len(goals))
	var wg sync.WaitGroup
	for i, g := range goals {
		wg.Add(1)
		go func(i int, g serveGoal) {
			defer wg.Done()
			req := map[string]any{
				"app": g.app, "p": procs, "sets": sets, "quick": quick,
				"goalRatio": g.goalRatio, "client": "fxbench",
			}
			errs[i] = postJSON(baseURL, "/optimize", req, &results[i])
		}(i, g)
	}
	wg.Wait()

	fmt.Fprintf(stdout, "Table 1 over HTTP (%s, %d simulated nodes)\n\n", baseURL, procs)
	fmt.Fprintf(stdout, "%-14s | %10s %10s | %9s | %10s %10s | %-24s | %s\n",
		"Program", "DP thr(/s)", "DP lat(s)", "goal(/s)", "thr(/s)", "lat(s)", "best mapping", "tables")
	code := 0
	for i, g := range goals {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "fxbench: %s: %v\n", g.label, errs[i])
			code = 1
			continue
		}
		r := results[i]
		fmt.Fprintf(stdout, "%-14s | %10.3f %10.4f | %9.3f | %10.3f %10.4f | %-24s | %s\n",
			g.label, r.DPThroughput, r.DPLatency, r.Goal,
			r.TaskThroughput, r.TaskLatency, r.Best, r.ModelSource)
	}

	var st serve.StatsSnapshot
	if err := getJSON(baseURL, "/stats", &st); err != nil {
		fmt.Fprintln(stderr, "fxbench: stats:", err)
		return 1
	}
	fmt.Fprintf(stdout, "\nserver: %d campaign(s) run, %d request(s) deduplicated, %d worker(s)\n",
		st.Campaigns, st.DedupHits, st.Workers)
	return code
}

// serveChaos runs the chaos campaign remotely and renders the report with
// the same writer the local -chaossweep mode uses.
func serveChaos(baseURL string, quick bool, seeds int, chaosSpec string, stdout, stderr io.Writer) int {
	req := map[string]any{"quick": quick, "seeds": seeds, "client": "fxbench"}
	if chaosSpec != "" {
		plan, err := fault.Parse(chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "fxbench:", err)
			return 2
		}
		req["base"] = plan.Seed
		req["profile"] = plan.Prof.Name
	}
	var rep sweep.ChaosReport
	if err := postJSON(baseURL, "/chaossweep", req, &rep); err != nil {
		fmt.Fprintln(stderr, "fxbench:", err)
		return 1
	}
	rep.WriteText(stdout)
	return 0
}

func getJSON(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
