package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/trace"
)

// write creates a snapshot file for the compare-mode tests.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareMainExitCodes pins the -compare contract: 0 on match, 1 on
// regression, 2 with a message naming the offending file when the baseline
// (or current) snapshot is missing or malformed — CI must be able to tell
// "setup broke" from "numbers regressed" by exit code alone.
func TestCompareMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", `{"Rows":[{"Makespan":1.5}]}`)
	drift := write(t, dir, "drift.json", `{"Rows":[{"Makespan":2.5}]}`)
	bad := write(t, dir, "bad.json", `{"Rows": [{"Makespan": `)
	missing := filepath.Join(dir, "nope.json")

	cases := []struct {
		name     string
		spec     string
		wantCode int
		wantMsg  string // substring of stderr ("" = stderr must be empty)
	}{
		{"match", good + ":" + good, 0, ""},
		{"regression", good + ":" + drift, 1, "regression"},
		{"missing baseline", missing + ":" + good, 2, "nope.json"},
		{"missing current", good + ":" + missing, 2, "nope.json"},
		{"malformed baseline", bad + ":" + good, 2, "malformed JSON"},
		{"malformed current", good + ":" + bad, 2, "malformed JSON"},
		{"bad spec", good, 2, "-compare wants"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := compareMain(tc.spec, 0, "", &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantMsg == "" {
				if stderr.Len() != 0 {
					t.Errorf("unexpected stderr: %s", stderr.String())
				}
			} else if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantMsg)
			}
		})
	}
}

// TestCompareMainRoleInMessage: the error says which side (baseline vs
// current) is broken, not just which path.
func TestCompareMainRoleInMessage(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", `{"A":1}`)
	missing := filepath.Join(dir, "gone.json")

	var stdout, stderr strings.Builder
	if code := compareMain(missing+":"+good, 0, "", &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "baseline snapshot") {
		t.Errorf("stderr %q does not name the baseline role", stderr.String())
	}

	stderr.Reset()
	if code := compareMain(good+":"+missing, 0, "", &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "current snapshot") {
		t.Errorf("stderr %q does not name the current role", stderr.String())
	}
}

// TestSkeletonsMainExitCodes pins the -skeletons contract: 0 when the two
// skeletons are identical, 1 when attribution finds movement, 2 when a file
// is missing, malformed, or fails its content-key check.
func TestSkeletonsMainExitCodes(t *testing.T) {
	dir := t.TempDir()

	capture := func(sets int) string {
		col := &trace.Collector{}
		m := machine.New(8, sim.Paragon())
		m.SetTracer(col)
		ffthist.Run(m, ffthist.Config{N: 32, Sets: sets, Bins: 16},
			ffthist.Mapping{Modules: 1, Stages: []int{4, 2, 2}})
		sk, err := skeleton.FromEvents(sim.Paragon(), col.Events())
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("sets%d.json", sets))
		if err := sk.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := capture(4)
	cur := capture(6)
	bad := write(t, dir, "bad.json", `{"format": 1, "key": "fxskel-0000000000000000"}`)
	missing := filepath.Join(dir, "nope.json")

	cases := []struct {
		name     string
		spec     string
		wantCode int
		wantOut  string
	}{
		{"identical", base + ":" + base, 0, "identical"},
		{"changed", base + ":" + cur, 1, "spans that moved"},
		{"missing", missing + ":" + base, 2, ""},
		{"bad key", bad + ":" + base, 2, ""},
		{"bad spec", base, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := skeletonsMain(tc.spec, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantOut)
			}
		})
	}
}
