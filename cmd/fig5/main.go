// Command fig5 regenerates Figure 5 of the paper: latency-optimal mappings
// of the 512x512 FFT-Hist program under increasing throughput constraints,
// showing the shift from pure data parallelism to a pipeline to replicated
// pipeline modules.
package main

import (
	"flag"
	"os"

	"fxpar/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced-size workload")
	flag.Parse()
	cfg := experiments.DefaultFig5()
	if *quick {
		cfg = experiments.QuickFig5()
	}
	rows := experiments.Fig5(cfg)
	experiments.PrintFig5(os.Stdout, rows, cfg)
}
