// Command fxserve is the long-running mapping-as-a-service daemon: it
// wraps internal/serve — optimization, measurement and chaos-sweep
// campaigns over HTTP with content-keyed request dedupe, a bounded fair
// worker pool, and the live campaign monitor embedded on the same port —
// and manages the process concerns: the listen socket (with an ephemeral
// fallback when the default port is taken), and graceful shutdown on
// SIGINT/SIGTERM that drains in-flight campaigns and ends event streams
// cleanly instead of cutting connections mid-frame.
//
//	fxserve                      # listen on 127.0.0.1:6071
//	fxserve -addr :8080 -j 4
//	fxbench -serve http://127.0.0.1:6071 -quick   # a client
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fxpar/internal/machine"
	"fxpar/internal/serve"
	"fxpar/internal/sweep"
)

// defaultAddr is one above the sweep monitor's default so a batch driver
// with -monitor auto and a serving daemon coexist on one host.
const defaultAddr = "127.0.0.1:6071"

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", defaultAddr, "listen address; when the default is taken, fxserve falls back to an ephemeral port")
	j := flag.Int("j", 0, "max concurrently running campaigns and per-campaign simulation workers (0 = all host cores); simulated numbers are identical for every value")
	cache := flag.String("cache", "", "directory for the on-disk cost-table cache, shared with fxbench/table1 ('' disables)")
	replay := flag.String("replay", "", "directory for the skeleton replay store, or 'mem' for in-process only ('' disables replay)")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	keep := flag.Int("keep", 0, "finished jobs retained as a response cache (0 = 1024)")
	flag.Parse()

	s, err := serve.New(serve.Options{
		Workers: *j, CacheDir: *cache, ReplayDir: *replay,
		Engine: *engine, KeepDone: *keep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxserve:", err)
		return 2
	}
	defer s.Close()
	sweep.SetEngineLabel(*engine)

	ln, err := net.Listen("tcp", *addr)
	if err != nil && *addr == defaultAddr {
		// The default port being taken (a second daemon) must not kill the
		// launch; an explicitly requested address must.
		fmt.Fprintf(os.Stderr, "fxserve: %v; falling back to an ephemeral port\n", err)
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxserve:", err)
		return 2
	}
	fmt.Printf("fxserve: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fxserve: %v: draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fxserve:", err)
		return 1
	}

	// Graceful shutdown: stop accepting, let in-flight handlers (and the
	// campaigns they wait on) finish, end SSE streams between frames. The
	// serve.Server close runs first so job waiters and event streams
	// unblock; Shutdown then reaps the connections.
	s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "fxserve: drain deadline passed:", err)
		srv.Close()
		return 1
	}
	fmt.Fprintln(os.Stderr, "fxserve: bye")
	return 0
}
