// Command fxprof is the observability front door: it runs one of the sensor
// applications (FFT-Hist, Radar, Stereo) under any module/stage mapping with
// full tracing, and reports where the virtual time went —
//
//   - per-(group, operation) metrics: messages, bytes, barrier waits,
//     compute/idle/IO time, span duration histograms (text + JSON snapshot);
//   - a critical-path analysis reconstructing the run's dependency graph
//     from send→recv edges and span nesting, with per-kind and per-stage
//     breakdown — this is the direct explanation of the latency column of
//     Table 1 and the mapping crossovers of Figure 5;
//   - ASCII Gantt charts (event kinds and named spans) and a
//     Perfetto/Chrome trace with named, nested span tracks.
//
// Examples:
//
//	fxprof -app ffthist -stages 2,2,2          # 3-stage pipeline
//	fxprof -app ffthist -stages 6              # pure data parallel
//	fxprof -app radar -modules 2 -stages 2,4,4,2 -out radar
//	fxprof -app ffthist -auto -procs 16 -goal 4 -cache .fxcache
//	                                           # profile the optimizer's pick
//	fxprof -app ffthist -stages 4,2,2 -whatif  # causal what-if profile
//
// With -whatif the run is additionally captured as a communication skeleton
// (internal/skeleton): after a determinism self-check — re-costing the
// skeleton at the recorded parameters must reproduce the recorded makespan
// and critical path exactly — it prints the COZ-style ranked table of
// virtual span speedups ("speeding up span X by k gains Y on the makespan")
// and alpha/beta/flop-rate sensitivity curves, and writes the serialized
// skeleton next to the other artifacts.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/apps/radar"
	"fxpar/internal/apps/stereo"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/stats"
	"fxpar/internal/sweep"
	"fxpar/internal/trace"
)

// parseFactors parses a comma-separated list of positive finite floats.
// Empty segments — "1,,2", a trailing comma, or an empty list — are
// rejected with an error naming the offending position, not silently
// skipped or reported as a cryptic parse failure.
func parseFactors(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty factor list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty factor at position %d in %q (stray or trailing comma)", i+1, s)
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("invalid factor %q (want a positive number)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseStages parses the -stages list with the same empty-segment
// strictness as parseFactors.
func parseStages(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty stage list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty stage size at position %d in %q (stray or trailing comma)", i+1, s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid stage size %q (want a positive integer)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fxprof:", err)
	os.Exit(1)
}

// writeFile writes data to name, failing loudly; Close errors are checked
// because a short write on trace export corrupts the JSON silently.
func writeFile(name string, write func(*os.File) error) {
	f, err := os.Create(name)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", name)
}

func main() {
	app := flag.String("app", "ffthist", "application: ffthist | radar | stereo")
	modules := flag.Int("modules", 1, "replication factor (modules processing alternate data sets)")
	stagesFlag := flag.String("stages", "2,2,2", "comma-separated processors per pipeline stage (one value = data parallel)")
	n := flag.Int("n", 64, "data set edge (ffthist: NxN; radar: gates; stereo: image width)")
	sets := flag.Int("sets", 6, "stream length")
	procs := flag.Int("procs", 0, "machine size (default: exactly what the mapping uses)")
	out := flag.String("out", "fxprof", "output file prefix ('' = no files, console only)")
	width := flag.Int("width", 100, "gantt width in characters")
	auto := flag.Bool("auto", false, "ignore -modules/-stages and profile the optimizer's mapping for -procs processors (built from measured cost tables)")
	goal := flag.Float64("goal", 0, "with -auto: throughput constraint in data sets/s (0 = minimize latency only)")
	j := flag.Int("j", 0, "with -auto: max concurrent cost-table simulations (0 = all host cores)")
	cache := flag.String("cache", "", "with -auto: directory for the on-disk cost-table cache ('' disables)")
	replay := flag.String("replay", "", "with -auto: directory for the skeleton store; cost-table cells are answered by analytic DAG replay instead of re-simulation whenever the store holds their skeleton ('' disables)")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	chaos := flag.String("chaos", "", "inject deterministic faults into the profiled run: seed[:profile] (profiles: "+strings.Join(fault.ProfileNames(), " ")+"; default "+fault.DefaultProfile+"); fault/timeout/retry events land in every view")
	whatif := flag.Bool("whatif", false, "capture the run as a communication skeleton and print the causal what-if profile (ranked virtual span speedups + machine-parameter sensitivity curves)")
	factors := flag.String("factors", "1.25,1.5,2,4", "with -whatif: comma-separated virtual speedup factors")
	senscales := flag.String("senscales", "0.25,0.5,1,2,4", "with -whatif: comma-separated alpha/beta/flop-rate scales for the sensitivity curves")
	sample := flag.String("sample", "", "deterministic event sampling: rate[:seed][,kind=rate ...] (e.g. 1/64 or 1/64:7,send=1); span/fault/timeout/retry events are always kept, counts are reported with scale factors; incompatible with -whatif")
	monitor := flag.String("monitor", "", "serve the live monitor (with the telemetry overhead-budget line) over HTTP: listen address, or 'auto' for "+sweep.DefaultMonitorAddr)
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fail(err)
	}
	plan, err := fault.Parse(*chaos)
	if err != nil {
		fail(err)
	}

	var stages []int
	if *auto {
		if *procs <= 0 {
			fail(fmt.Errorf("-auto needs an explicit -procs (the machine the optimizer maps onto)"))
		}
	} else {
		var err error
		stages, err = parseStages(*stagesFlag)
		if err != nil {
			fail(err)
		}
		total := 0
		for _, q := range stages {
			total += q
		}
		total *= *modules
		if *procs == 0 {
			*procs = total
		}
		if *procs < total {
			fail(fmt.Errorf("mapping needs %d processors (modules x stages), -procs gives %d", total, *procs))
		}
	}
	opt := mapping.BuildOptions{Workers: *j, CacheDir: *cache, Engine: eng}
	if *replay != "" {
		opt.Replay = &mapping.ReplayOptions{Store: skeleton.NewStore(*replay)}
	}

	// The full collector drives the post-hoc views (Gantt, critical path,
	// Chrome export); the streaming sinks aggregate the same run online and
	// are checked against the post-hoc pipeline byte for byte below. Every
	// sink is wrapped in an overhead-budget meter so the profile accounts for
	// its own host cost.
	var sampler *trace.Sampler
	if *sample != "" {
		if *whatif {
			fail(fmt.Errorf("-sample is incompatible with -whatif: the skeleton capture needs the full event stream"))
		}
		cfg, err := trace.ParseSampleSpec(*sample)
		if err != nil {
			fail(err)
		}
		sampler = trace.NewSampler(*procs, cfg)
	}
	budget := trace.NewOverheadBudget()
	col := &trace.Collector{}
	sink := metrics.NewStreamSink(*procs)
	comm := trace.NewCommMatrix(*procs)
	util := trace.NewUtilSink(*procs)
	m := machine.New(*procs, sim.Paragon())
	m.SetEngine(eng)
	m.SetTracer(trace.Tee(
		budget.Meter("collector", col),
		budget.Meter("metrics", sink),
		budget.Meter("comm", comm),
		budget.Meter("util", util),
	))
	if sampler != nil {
		m.SetSampler(sampler)
		budget.SetSampler(sampler)
		fmt.Printf("sampling: deterministic, seed %d — recorded counts are samples; unsampled estimate = count / rate\n", sampler.Snapshot().Seed)
	}
	m.SetFaults(plan.Machine())
	if plan != nil {
		fmt.Printf("chaos: injecting faults with plan %s\n", plan)
	}

	sweep.SetEngineLabel(eng.Name())
	if plan != nil {
		sweep.SetChaosLabel(plan.String())
	}
	sweep.SetTelemetrySource(func() sweep.TelemetrySnapshot {
		r := budget.Report()
		ts := sweep.TelemetrySnapshot{Line: r.Line(), SinkSharePct: r.SinkSharePct}
		if r.Sample != nil {
			ts.SampleRates = r.Sample.RatesString()
			ts.DroppedEvents = r.Sample.Dropped
		}
		return ts
	})
	monURL, stopMon, err := sweep.MonitorFromFlag(*monitor)
	if err != nil {
		fail(err)
	}
	defer stopMon()
	if monURL != "" {
		fmt.Printf("monitor: %s\n", monURL)
	}

	// pick runs the optimizer against measured cost tables (the -auto path)
	// and reports the winning mapping and where its tables came from.
	pick := func(model mapping.Model, src mapping.TableSource, err error) mapping.Choice {
		if err != nil {
			fail(err)
		}
		choice, err := mapping.Optimize(model, *goal)
		if err != nil {
			fail(err)
		}
		fmt.Printf("auto: chose %s for %d procs, goal %g sets/s (cost tables: %s)\n\n",
			choice, *procs, *goal, src)
		return choice
	}

	var stream stats.Result
	var label string
	switch *app {
	case "ffthist":
		cfg := ffthist.Config{N: *n, Sets: *sets, Bins: 64}
		mp := ffthist.Mapping{Modules: *modules, Stages: stages}
		if *auto {
			mp = ffthist.ChoiceToMapping(pick(ffthist.MeasuredModel(sim.Paragon(), cfg, *procs, opt)))
		}
		budget.Start()
		res := ffthist.Run(m, cfg, mp)
		budget.Finish()
		stream, label = res.Stream, mp.String()
	case "radar":
		cfg := radar.DefaultConfig()
		cfg.Gates, cfg.Sets = *n, *sets
		mp := radar.Mapping{Modules: *modules, Stages: stages}
		if *auto {
			mp = radar.ChoiceToMapping(pick(radar.MeasuredModel(sim.Paragon(), cfg, *procs, opt)))
		}
		budget.Start()
		res := radar.Run(m, cfg, mp)
		budget.Finish()
		stream, label = res.Stream, mp.String()
	case "stereo":
		cfg := stereo.DefaultConfig()
		cfg.W, cfg.Sets = *n, *sets
		mp := stereo.Mapping{Modules: *modules, Stages: stages}
		if *auto {
			mp = stereo.ChoiceToMapping(pick(stereo.MeasuredModel(sim.Paragon(), cfg, *procs, opt)))
		}
		budget.Start()
		res := stereo.Run(m, cfg, mp)
		budget.Finish()
		stream, label = res.Stream, mp.String()
	default:
		fail(fmt.Errorf("unknown app %q", *app))
	}

	fmt.Printf("=== %s %s on %d procs: %s ===\n\n", *app, label, *procs, stream)

	// sampled marks every view computed from a thinned event stream, so no
	// reader mistakes a sampled count for an exhaustive one.
	sampled := ""
	if sampler != nil {
		sampled = " [sampled]"
	}
	evs := col.Events()

	fmt.Printf("--- gantt (event kinds)%s ---\n", sampled)
	trace.Gantt(os.Stdout, col, *procs, *width)
	fmt.Println()
	fmt.Printf("--- gantt (innermost spans)%s ---\n", sampled)
	trace.SpanGantt(os.Stdout, col, *procs, *width)
	fmt.Println()
	fmt.Printf("--- utilization%s ---\n", sampled)
	if *procs > 256 {
		// Per-processor rows are unreadable at scale; print the distribution.
		metrics.UtilDistribution(util.Snapshot()).WriteText(os.Stdout)
	} else {
		trace.Utilization(os.Stdout, col, *procs)
	}
	fmt.Println()
	fmt.Printf("--- spans%s ---\n", sampled)
	trace.SpanSummary(os.Stdout, col)
	fmt.Println()

	// The reported metrics come from the streaming sink; cross-check against
	// the post-hoc pipeline so any divergence between the two fails loudly
	// instead of producing subtly different profiles.
	snap := sink.Snapshot()
	js, err := snap.JSON()
	if err != nil {
		fail(err)
	}
	postJS, err := metrics.FromTrace(evs).Snapshot().JSON()
	if err != nil {
		fail(err)
	}
	if string(js) != string(postJS) {
		fail(fmt.Errorf("streaming metrics diverge from post-hoc pipeline (%d vs %d bytes)", len(js), len(postJS)))
	}
	fmt.Printf("--- per-group metrics (streamed; verified against post-hoc)%s ---\n", sampled)
	snap.WriteText(os.Stdout)
	fmt.Println()
	edges := comm.Snapshot()
	if len(edges) > 64 {
		// Bounded rendering at scale: the sparse matrix may hold far more
		// active pairs than a terminal can show.
		fmt.Printf("--- communication matrix (top 64 of %d edges by total bytes)%s ---\n", len(edges), sampled)
		trace.WriteCommMatrix(os.Stdout, trace.TopCommEdges(edges, 64))
	} else {
		fmt.Printf("--- communication matrix%s ---\n", sampled)
		trace.WriteCommMatrix(os.Stdout, edges)
	}
	fmt.Println()

	cp := trace.ComputeCriticalPath(evs)
	fmt.Printf("--- critical path%s ---\n", sampled)
	if sampler != nil {
		fmt.Println("(sampled trace: virtual times are exact, but thinned send/recv events make edge coverage partial)")
	}
	cp.WriteReport(os.Stdout)

	if sampler != nil {
		fmt.Println()
		fmt.Println("--- sampling (deterministic: same kept set on every engine and -j) ---")
		sampler.Snapshot().WriteText(os.Stdout)
	}
	fmt.Println()
	fmt.Println("--- telemetry overhead budget (self-accounted) ---")
	budget.Report().WriteText(os.Stdout)

	var sk *skeleton.Skeleton
	if *whatif {
		fs, err := parseFactors(*factors)
		if err != nil {
			fail(err)
		}
		scales, err := parseFactors(*senscales)
		if err != nil {
			fail(err)
		}
		sk, err = skeleton.FromEvents(sim.Paragon(), evs)
		if err != nil {
			fail(err)
		}
		if plan != nil {
			sk.Chaos = plan.String()
		}

		// Determinism self-check: the analytic re-cost at recorded parameters
		// must reproduce the recorded run exactly — makespan and critical
		// path — or every what-if number below would be built on sand.
		res, err := sk.RecostEvents(skeleton.Params{})
		if err != nil {
			fail(err)
		}
		if res.Makespan != sk.Makespan {
			fail(fmt.Errorf("skeleton self-check: re-cost makespan %v != recorded %v", res.Makespan, sk.Makespan))
		}
		var recBuf, reBuf strings.Builder
		cp.WriteReport(&recBuf)
		trace.ComputeCriticalPath(res.Events).WriteReport(&reBuf)
		if recBuf.String() != reBuf.String() {
			fail(fmt.Errorf("skeleton self-check: re-costed critical path diverges from recorded"))
		}
		key, err := sk.Key()
		if err != nil {
			fail(err)
		}

		fmt.Println()
		fmt.Printf("--- what-if (skeleton %s, %d ops; re-cost reproduces recorded run exactly) ---\n", key, sk.Ops())
		rep, err := sk.WhatIf(fs)
		if err != nil {
			fail(err)
		}
		rep.WriteTable(os.Stdout)
		fmt.Println()
		fmt.Println("--- sensitivity (machine parameters) ---")
		sv, err := sk.Sensitivity(scales)
		if err != nil {
			fail(err)
		}
		sv.WriteCurves(os.Stdout)
	}

	if *out != "" {
		writeFile(*out+".metrics.json", func(f *os.File) error {
			_, err := f.Write(js)
			return err
		})
		writeFile(*out+".trace.json", func(f *os.File) error {
			return trace.WriteChromeTrace(f, col)
		})
		writeFile(*out+".critpath.txt", func(f *os.File) error {
			cp.WriteReport(f)
			return nil
		})
		if sk != nil {
			if err := sk.WriteFile(*out + ".skeleton.json"); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *out+".skeleton.json")
		}
	}
}
