package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseFactors pins the strict parse: valid lists round-trip, and
// malformed input — above all empty segments from stray or trailing
// commas — fails with an error that names the problem instead of a
// generic strconv complaint.
func TestParseFactors(t *testing.T) {
	good := []struct {
		in   string
		want []float64
	}{
		{"1", []float64{1}},
		{"0.5,1,2", []float64{0.5, 1, 2}},
		{" 0.25 , 4 ", []float64{0.25, 4}},
		{"1e-3,1e3", []float64{1e-3, 1e3}},
	}
	for _, g := range good {
		got, err := parseFactors(g.in)
		if err != nil {
			t.Errorf("parseFactors(%q): unexpected error %v", g.in, err)
			continue
		}
		if !reflect.DeepEqual(got, g.want) {
			t.Errorf("parseFactors(%q) = %v, want %v", g.in, got, g.want)
		}
	}

	bad := []struct {
		in   string
		want string // substring the error must contain
	}{
		{"", "empty factor list"},
		{"   ", "empty factor list"},
		{"1,2,", "empty factor at position 3"},
		{",1,2", "empty factor at position 1"},
		{"1,,2", "empty factor at position 2"},
		{"1, ,2", "empty factor at position 2"},
		{"1,x", "invalid factor"},
		{"0,1", "invalid factor"},
		{"-2", "invalid factor"},
		{"NaN", "invalid factor"},
		{"Inf", "invalid factor"},
	}
	for _, b := range bad {
		got, err := parseFactors(b.in)
		if err == nil {
			t.Errorf("parseFactors(%q) = %v, want error containing %q", b.in, got, b.want)
			continue
		}
		if !strings.Contains(err.Error(), b.want) {
			t.Errorf("parseFactors(%q) error = %q, want it to contain %q", b.in, err, b.want)
		}
	}
}

// TestParseStages mirrors TestParseFactors for the -stages list.
func TestParseStages(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"6", []int{6}},
		{"2,2,2", []int{2, 2, 2}},
		{" 16 , 8 , 8 ", []int{16, 8, 8}},
	}
	for _, g := range good {
		got, err := parseStages(g.in)
		if err != nil {
			t.Errorf("parseStages(%q): unexpected error %v", g.in, err)
			continue
		}
		if !reflect.DeepEqual(got, g.want) {
			t.Errorf("parseStages(%q) = %v, want %v", g.in, got, g.want)
		}
	}

	bad := []struct {
		in   string
		want string
	}{
		{"", "empty stage list"},
		{"  ", "empty stage list"},
		{"2,2,", "empty stage size at position 3"},
		{",2", "empty stage size at position 1"},
		{"2,,2", "empty stage size at position 2"},
		{"2,a", "invalid stage size"},
		{"0", "invalid stage size"},
		{"-1,2", "invalid stage size"},
		{"2.5", "invalid stage size"},
	}
	for _, b := range bad {
		got, err := parseStages(b.in)
		if err == nil {
			t.Errorf("parseStages(%q) = %v, want error containing %q", b.in, got, b.want)
			continue
		}
		if !strings.Contains(err.Error(), b.want) {
			t.Errorf("parseStages(%q) error = %q, want it to contain %q", b.in, err, b.want)
		}
	}
}
