// Command table1 regenerates Table 1 of the paper: data-parallel vs best
// task+data parallel throughput and latency for the three sensor programs
// on a simulated 64-node machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fxpar/internal/experiments"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	procs := flag.Int("procs", 0, "override processor count")
	sets := flag.Int("sets", 0, "override stream length")
	model := flag.String("model", "paragon", "cost model: paragon or workstation")
	j := flag.Int("j", 0, "max concurrent simulations (0 = all host cores); output is identical for every value")
	cache := flag.String("cache", "", "directory for the on-disk cost-table cache ('' disables)")
	replay := flag.String("replay", "", "directory for the skeleton store; cost-table cells are answered by analytic DAG replay instead of re-simulation whenever the store holds their skeleton ('' disables)")
	monitor := flag.String("monitor", "", "serve live campaign progress over HTTP on this address for fxtop ('auto' = "+sweep.DefaultMonitorAddr+")")
	engine := flag.String("engine", machine.DefaultEngineName(), "execution engine: goroutine, coop, or coop:N; changes host time only, never a simulated number")
	chaos := flag.String("chaos", "", "inject deterministic faults into the measured runs: seed[:profile] (profiles: "+strings.Join(fault.ProfileNames(), " ")+"; default "+fault.DefaultProfile+")")
	flag.Parse()
	eng, err := machine.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}
	plan, err := fault.Parse(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}
	sweep.SetEngineLabel(eng.Name())
	if plan != nil {
		sweep.SetChaosLabel(plan.String())
	}
	url, stopMon, err := sweep.MonitorFromFlag(*monitor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	defer stopMon()
	if url != "" {
		fmt.Printf("campaign monitor: %s/snapshot (fxtop -url %s)\n", url, url)
	}
	cfg := experiments.DefaultTable1()
	if *quick {
		cfg = experiments.QuickTable1()
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *sets > 0 {
		cfg.Sets = *sets
	}
	cfg.Workers = *j
	cfg.CacheDir = *cache
	cfg.Engine = eng
	cfg.Faults = plan.Machine()
	if *replay != "" {
		cfg.Replay = &mapping.ReplayOptions{Store: skeleton.NewStore(*replay)}
	}
	if plan != nil {
		fmt.Printf("chaos: injecting faults with plan %s\n", plan)
	}
	switch *model {
	case "paragon":
		cfg.Cost = sim.Paragon()
	case "workstation":
		cfg.Cost = sim.Workstation()
	default:
		fmt.Fprintf(os.Stderr, "unknown cost model %q\n", *model)
		os.Exit(2)
	}
	rows := experiments.Table1(cfg)
	experiments.PrintTable1(os.Stdout, rows, cfg.Procs)
}
