// Package fxpar is a Go reproduction of the integrated nested task and data
// parallel programming model of Subhlok & Yang, "A New Model for Integrated
// Nested Task and Data Parallel Programming" (PPoPP 1997) — the task
// parallelism model of the Fx compiler at Carnegie Mellon, a precursor of
// the HPF 2.0 task parallelism extensions.
//
// The library packages live under internal/:
//
//   - sim, machine, comm: a simulated distributed-memory multicomputer with
//     deterministic virtual-time cost accounting (the Intel Paragon stand-in)
//     and group-scoped collective communication;
//   - group, fx: processor groups, TASK_PARTITION / TASK_REGION /
//     ON SUBGROUP semantics with nested mapping stacks — the paper's model;
//   - dist, par: HPF-style distributed arrays (BLOCK / CYCLIC /
//     BLOCK_CYCLIC), minimal-subset array assignment, transposes, packing,
//     and do&merge parallel loops;
//   - mapping: the Subhlok-Vondran latency-optimal pipeline mapping DP with
//     replication search, used to regenerate Figure 5 and Table 1;
//   - apps/...: FFT-Hist, narrowband tracking radar, multibaseline stereo,
//     Airshed, nested quicksort, and Barnes-Hut;
//   - experiments: drivers that regenerate Table 1, Figure 5 and Figure 6.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation and the design-choice ablations called out in
// DESIGN.md; cmd/table1, cmd/fig5, cmd/fig6 and cmd/fxbench print them at
// full scale.
package fxpar
