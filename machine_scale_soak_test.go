// TestMachineScaleSoak is the end-to-end determinism soak for the machine
// core at scale: the machine-tier FFT-Hist workload runs traced (under the
// scale tier's deterministic 1-in-64 sampler) on every engine — goroutine,
// coop:1, coop:4 — and the kept event streams, per-processor run statistics,
// histograms and makespans must be byte-identical. The engines differ only in
// host scheduling; virtual time is the machine's, so any divergence is a
// machine-core bug, not noise.
//
// The always-on tier runs at P=4096 so `go test ./...` carries the check.
// Under FXPAR_SCALE_SOAK=1 the same comparison runs at P=65536 (the tentpole
// soak size) and a P=1048576 untraced coop:1 run must reproduce the tier's
// makespan exactly — the replicated-module workload makes virtual makespan
// P-invariant, so one number pins the million-processor run to the small ones.
package fxpar_test

import (
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// soakCollector is a minimal concurrent tracer: it keeps every kept event so
// the streams can be canonicalised and compared across engines.
type soakCollector struct {
	mu  sync.Mutex
	evs []machine.Event
}

func (c *soakCollector) Record(e machine.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

// soakRun runs the machine-tier workload traced under the scale sampler and
// returns the app result plus the kept events in canonical (Proc, Seq) order.
// Arrival order at the collector is host-dependent; content is not.
func soakRun(t *testing.T, procs int, eng machine.Engine) (ffthist.Result, []machine.Event) {
	t.Helper()
	scfg, err := trace.ParseSampleSpec(scaleSampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, mp := machineConfig(procs)
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(eng)
	col := &soakCollector{}
	m.SetTracer(col)
	m.SetSampler(trace.NewSampler(procs, scfg))
	res := ffthist.Run(m, cfg, mp)
	sort.Slice(col.evs, func(i, j int) bool {
		if col.evs[i].Proc != col.evs[j].Proc {
			return col.evs[i].Proc < col.evs[j].Proc
		}
		return col.evs[i].Seq < col.evs[j].Seq
	})
	return res, col.evs
}

// soakCompare runs the workload at one P on all three engines and requires
// identical results everywhere, returning the (shared) makespan.
func soakCompare(t *testing.T, procs int) float64 {
	t.Helper()
	type engCase struct {
		name string
		eng  machine.Engine
	}
	cases := []engCase{
		{"goroutine", machine.Goroutine()},
		{"coop:1", machine.Coop(1)},
		{"coop:4", machine.Coop(4)},
	}
	refRes, refEvs := soakRun(t, procs, cases[0].eng)
	if len(refEvs) == 0 {
		t.Fatalf("P=%d: reference run kept no events — sampler or tracer wiring broken", procs)
	}
	for _, c := range cases[1:] {
		res, evs := soakRun(t, procs, c.eng)
		if res.Makespan != refRes.Makespan {
			t.Errorf("P=%d %s: makespan %.17g != %s %.17g",
				procs, c.name, res.Makespan, cases[0].name, refRes.Makespan)
		}
		if !reflect.DeepEqual(res.Hists, refRes.Hists) {
			t.Errorf("P=%d %s: histograms differ from %s", procs, c.name, cases[0].name)
		}
		if !reflect.DeepEqual(res.Stats, refRes.Stats) {
			t.Errorf("P=%d %s: run statistics differ from %s", procs, c.name, cases[0].name)
		}
		if len(evs) != len(refEvs) {
			t.Errorf("P=%d %s: kept %d events, %s kept %d",
				procs, c.name, len(evs), cases[0].name, len(refEvs))
			continue
		}
		for i := range evs {
			if evs[i] != refEvs[i] {
				t.Errorf("P=%d %s: event %d = %+v, %s has %+v",
					procs, c.name, i, evs[i], cases[0].name, refEvs[i])
				break
			}
		}
	}
	t.Logf("P=%d: %d kept events, makespan %.9g, identical across %d engines",
		procs, len(refEvs), refRes.Makespan, len(cases))
	return refRes.Makespan
}

func TestMachineScaleSoak(t *testing.T) {
	if raceEnabledRoot {
		t.Skip("soak sizes are too large under the race detector")
	}
	makespan := soakCompare(t, 4096)

	if os.Getenv("FXPAR_SCALE_SOAK") != "1" {
		t.Log("FXPAR_SCALE_SOAK not set; skipping P=65536 cross-engine soak and P=1048576 run")
		return
	}
	soak := soakCompare(t, 65536)
	if soak != makespan {
		t.Errorf("P=65536 makespan %.17g != P=4096 makespan %.17g — workload is not P-invariant", soak, makespan)
	}

	// The million-processor point: untraced, single engine — the comparison
	// here is the exact virtual makespan against the smaller tiers.
	res := machineRun(machineSoakProcs, machine.Coop(1))
	if res.Makespan != makespan {
		t.Errorf("P=%d makespan %.17g != smaller tiers %.17g", machineSoakProcs, res.Makespan, makespan)
	} else {
		t.Logf("P=%d: makespan %.9g matches smaller tiers exactly", machineSoakProcs, res.Makespan)
	}
}
