// BenchmarkFaultPlanOverhead measures what the fault layer costs the host in
// its three regimes:
//
//   - nil plan: the default every simulation pays — the machine's fault hooks
//     must collapse to a nil check, so this anchors the "chaos is free when
//     off" guarantee (alloc-freedom is pinned separately in the comm tests);
//   - none profile: a plan is installed but every probability is zero, so
//     each message pays one PRNG draw and nothing fires;
//   - flaky profile: faults actually fire, events are emitted, retransmits
//     happen — the price of chaos when you ask for it.
//
// The reported none-x and flaky-x metrics are the ratios to the nil-plan
// baseline (1.0 = free).
package fxpar_test

import (
	"testing"

	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// faultBenchRun executes the obsRun neighbour-exchange workload (minus
// spans) under the given fault plan and returns its makespan.
func faultBenchRun(fp machine.FaultPlan) float64 {
	m := machine.New(obsProcs, sim.Paragon())
	m.SetFaults(fp)
	st := m.Run(func(p *machine.Proc) {
		r := p.ID()
		for it := 0; it < obsIters; it++ {
			p.Compute(1e3)
			p.Send((r+1)%obsProcs, it, 8)
			p.Recv((r + obsProcs - 1) % obsProcs)
		}
	})
	return st.MakespanTime()
}

func BenchmarkFaultPlanOverhead(b *testing.B) {
	runs := b.N
	if runs < 5 {
		runs = 5
	}
	mustProfile := func(name string) fault.Profile {
		p, err := fault.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}

	nilSec := timeRuns(runs, func() { faultBenchRun(nil) })

	nonePlan := fault.New(1, mustProfile("none"))
	noneSec := timeRuns(runs, func() {
		if faultBenchRun(nonePlan.Machine()) != faultBenchRun(nil) {
			b.Fatal("a none-profile plan changed virtual time")
		}
	})
	// The comparison run above doubles the work; halve for a fair ratio.
	noneSec /= 2

	flakyPlan := fault.New(1, mustProfile("flaky"))
	flakySec := timeRuns(runs, func() { faultBenchRun(flakyPlan.Machine()) })

	b.ReportMetric(noneSec/nilSec, "none-x")
	b.ReportMetric(flakySec/nilSec, "flaky-x")
}
