// Package fsatomic is the one place cache and artifact files get written:
// a temp file created in the *destination directory* followed by a rename.
// Creating the temp file next to its final path — never in os.TempDir —
// matters twice over: rename(2) is only atomic within one filesystem, and
// campaign workers sharing a cache directory (-j table builds, concurrent
// replay-store writers) must never observe a half-written JSON file under
// the final name. Concurrent writers of the same path each rename their own
// complete temp file; the last rename wins and every reader sees some
// complete version.
package fsatomic

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: the bytes land in a temp file
// created in path's own directory (created if absent) and are renamed into
// place only after a successful Close. On any error the temp file is
// removed and the destination is untouched.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
