package fsatomic

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "file.json")
	want := []byte(`{"k":"v"}`)
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, wrote %q", got, want)
	}
}

// TestWriteFileTempInTargetDir pins the property the atomicity rests on:
// the temp file is created in the destination directory, not os.TempDir,
// so the final rename never crosses a filesystem boundary.
func TestWriteFileTempInTargetDir(t *testing.T) {
	dir := t.TempDir()
	// Write through a hook-free observation: fill the directory before and
	// after, and separately verify no stray temp files survive a success.
	if err := WriteFile(filepath.Join(dir, "out.json"), []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only out.json (leaked temp file?)", names)
	}
}

// TestWriteFileConcurrentWriters hammers one destination path from many
// goroutines writing distinct complete payloads. Every concurrent read must
// observe one of the complete payloads — never a short or interleaved file —
// which is exactly the guarantee -j campaign workers sharing a cache
// directory rely on.
func TestWriteFileConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	const writers, rounds = 8, 40
	payload := func(id int) []byte {
		// Distinct sizes so a torn read is detectable by content alone.
		return []byte(fmt.Sprintf("writer-%d:%s\n", id, strings.Repeat("x", 512*(id+1))))
	}
	valid := make(map[string]bool, writers)
	for i := 0; i < writers; i++ {
		valid[string(payload(i))] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := WriteFile(path, payload(id)); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %v", id, r, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < writers*rounds; r++ {
			data, err := os.ReadFile(path)
			if err != nil {
				if os.IsNotExist(err) {
					continue // before the first rename lands
				}
				errs <- fmt.Errorf("reader round %d: %v", r, err)
				return
			}
			if !valid[string(data)] {
				errs <- fmt.Errorf("reader observed a torn file (%d bytes)", len(data))
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("cache dir holds %v, want only cache.json", names)
	}
}
