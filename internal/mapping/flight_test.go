package mapping

// Concurrency contract of the shared cost-table store: when many goroutines
// (a serving process's request handlers) build the same spec at once, the
// measurement campaign runs exactly once — the flight group makes the rest
// wait for the leader's tables instead of re-simulating.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func flightSpec(name string) TableSpec {
	return TableSpec{
		App:    "flight-test-" + name,
		Params: "unit",
		P:      4,
		Stages: []string{"a", "b"},
	}
}

// TestBuildTablesSingleflight: N concurrent builds of one spec measure each
// cell exactly once and all return identical tables.
func TestBuildTablesSingleflight(t *testing.T) {
	spec := flightSpec("dedupe")
	var cells atomic.Int64
	gate := make(chan struct{})
	stage := func(s, p int) float64 {
		cells.Add(1)
		<-gate // hold the leader's campaign open until all joiners queued
		return float64(s*10 + p)
	}
	dp := func(p int) float64 {
		cells.Add(1)
		<-gate
		return float64(100 + p)
	}

	const clients = 8
	var wg sync.WaitGroup
	results := make([]Tables, clients)
	sources := make([]TableSource, clients)
	launched := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			launched <- struct{}{}
			tab, src, err := BuildTables(spec, BuildOptions{Workers: 2}, stage, dp)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i], sources[i] = tab, src
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-launched
	}
	close(gate)
	wg.Wait()

	// 2 stages x 4 procs + 4 DP cells, each measured exactly once.
	if n := cells.Load(); n != 12 {
		t.Errorf("measured %d cells, want 12 (duplicated campaign)", n)
	}
	computed := 0
	for i := range results {
		if sources[i] == SourceComputed {
			computed++
		}
		if results[i].Key != results[0].Key || results[i].DPT[4] != 104 || results[i].StageT[1][3] != 13 {
			t.Errorf("client %d tables = %+v", i, results[i])
		}
	}
	if computed != 1 {
		t.Errorf("%d clients report SourceComputed, want exactly 1", computed)
	}
}

// TestBuildTablesFlightError: a failing build must not wedge the flight
// slot — joiners see the error, and a later retry runs afresh.
func TestBuildTablesFlightError(t *testing.T) {
	spec := flightSpec("error")
	boom := func(s, p int) float64 { panic("cell failure") }
	dp := func(p int) float64 { return 1 }
	if _, _, err := BuildTables(spec, BuildOptions{Workers: 1}, boom, dp); err == nil {
		t.Fatal("failing build returned nil error")
	}
	// The flight slot is free again and a healthy retry computes.
	tab, src, err := BuildTables(spec, BuildOptions{Workers: 1},
		func(s, p int) float64 { return 1 }, dp)
	if err != nil || src != SourceComputed {
		t.Fatalf("retry after failure: src=%v err=%v", src, err)
	}
	if tab.StageT[0][1] != 1 {
		t.Errorf("retry tables = %+v", tab)
	}
}
