package mapping

import (
	"math"
	"testing"
)

// syntheticModel builds a simple 3-stage model: stage s costs base[s]/p + fixed[s]
// seconds on p processors; transfers cost xfer seconds flat.
func syntheticModel(p int, base, fixed [3]float64, xfer float64) Model {
	m := Model{
		P:          p,
		StageNames: []string{"s0", "s1", "s2"},
		StageT:     make([][]float64, 3),
		DPT:        make([]float64, p+1),
		Caps:       []int{0, 0, 0},
		Xfer:       func(s, a, b int) float64 { return xfer },
	}
	for s := 0; s < 3; s++ {
		m.StageT[s] = make([]float64, p+1)
		for q := 1; q <= p; q++ {
			m.StageT[s][q] = base[s]/float64(q) + fixed[s]
		}
	}
	for q := 1; q <= p; q++ {
		m.DPT[q] = m.StageT[0][q] + m.StageT[1][q] + m.StageT[2][q] + 2*xfer
	}
	return m
}

func TestValidate(t *testing.T) {
	m := syntheticModel(8, [3]float64{1, 1, 1}, [3]float64{}, 0.01)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.StageT = bad.StageT[:2]
	if err := bad.Validate(); err == nil {
		t.Error("truncated stage table accepted")
	}
	bad2 := m
	bad2.Xfer = nil
	if err := bad2.Validate(); err == nil {
		t.Error("nil Xfer accepted")
	}
}

func TestLatencyOnlyPicksDataParallel(t *testing.T) {
	// With perfectly scalable stages and nonzero transfer costs, using all
	// processors for every stage minimizes latency.
	m := syntheticModel(16, [3]float64{1, 1, 1}, [3]float64{}, 0.01)
	c, err := Optimize(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.StageProcs) != 1 || c.Modules != 1 || c.StageProcs[0] != 16 {
		t.Errorf("latency-only choice = %v, want data-parallel(16)", c)
	}
}

func TestThroughputGoalForcesPipelineOrReplication(t *testing.T) {
	// Large fixed per-stage costs make data parallelism stop scaling:
	// DP time ~ 3*fixed regardless of p, so a throughput goal above
	// 1/(3*fixed) requires pipelining (period ~ fixed).
	m := syntheticModel(16, [3]float64{0.1, 0.1, 0.1}, [3]float64{0.1, 0.1, 0.1}, 0.001)
	dpT := m.DPT[16]
	goal := 1.5 / dpT
	c, err := Optimize(m, goal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules == 1 && len(c.StageProcs) == 1 {
		t.Errorf("goal %.2f (DP max %.2f): still chose %v", goal, 1/dpT, c)
	}
	if c.PredThroughput < goal {
		t.Errorf("choice %v predicted throughput %.3f < goal %.3f", c, c.PredThroughput, goal)
	}
}

func TestHigherGoalNeedsMoreReplication(t *testing.T) {
	// Serial input: stage 0 has a large fixed cost; only replication can
	// push throughput past 1/fixed0.
	m := syntheticModel(16, [3]float64{0.05, 0.05, 0.05}, [3]float64{0.2, 0, 0}, 0.001)
	// One module can never beat 1/0.2 = 5 sets/s.
	c, err := Optimize(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules < 2 {
		t.Errorf("goal 8 with 5/s serial cap chose %v (modules=%d)", c, c.Modules)
	}
	if c.PredThroughput < 8 {
		t.Errorf("predicted %.2f < 8", c.PredThroughput)
	}
}

func TestInfeasibleGoal(t *testing.T) {
	m := syntheticModel(4, [3]float64{1, 1, 1}, [3]float64{0.5, 0.5, 0.5}, 0.01)
	if _, err := Optimize(m, 1e9); err == nil {
		t.Error("absurd goal accepted")
	}
}

func TestLatencyMonotoneInGoal(t *testing.T) {
	// Tightening the throughput constraint can only increase optimal latency.
	m := syntheticModel(32, [3]float64{0.3, 0.5, 0.2}, [3]float64{0.02, 0.01, 0.01}, 0.005)
	prev := 0.0
	for _, goal := range []float64{0, 1, 2, 5, 10, 20} {
		c, err := Optimize(m, goal)
		if err != nil {
			break
		}
		if c.PredLatency+1e-12 < prev {
			t.Errorf("goal %g: latency %.4f < previous %.4f", goal, c.PredLatency, prev)
		}
		prev = c.PredLatency
	}
}

func TestCapsRespected(t *testing.T) {
	m := syntheticModel(16, [3]float64{1, 1, 1}, [3]float64{}, 0.001)
	m.Caps = []int{4, 4, 4}
	c, err := Optimize(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.StageProcs {
		if p > 4 {
			t.Errorf("choice %v exceeds cap 4", c)
		}
	}
	// DP mode must also respect the smallest cap.
	if len(c.StageProcs) == 1 && c.StageProcs[0] > 4 {
		t.Errorf("DP choice %v exceeds cap", c)
	}
}

func TestPipelineDPBalances(t *testing.T) {
	// Stage 1 is 4x the work of stages 0 and 2; under a tight throughput
	// goal the DP must give it more processors.
	m := syntheticModel(12, [3]float64{1, 4, 1}, [3]float64{0.01, 0.01, 0.01}, 0.001)
	c, err := Optimize(m, 1.95) // just above what any data-parallel variant reaches
	if err != nil {
		t.Fatal(err)
	}
	if len(c.StageProcs) != 3 {
		t.Fatalf("goal 1.95 should force a pipeline, got %v", c)
	}
	if c.StageProcs[1] <= c.StageProcs[0] || c.StageProcs[1] <= c.StageProcs[2] {
		t.Errorf("heavy stage not favored: %v", c)
	}
}

func TestUsesProcs(t *testing.T) {
	c := Choice{Modules: 2, StageProcs: []int{3, 4, 1}}
	if c.UsesProcs() != 16 {
		t.Errorf("UsesProcs = %d", c.UsesProcs())
	}
}

func TestChoiceString(t *testing.T) {
	cases := []struct {
		c    Choice
		want string
	}{
		{Choice{Modules: 1, StageProcs: []int{8}}, "data-parallel(8)"},
		{Choice{Modules: 2, StageProcs: []int{8}}, "2 x data-parallel(8)"},
		{Choice{Modules: 1, StageProcs: []int{1, 2, 3}}, "pipeline[1 2 3]"},
		{Choice{Modules: 2, StageProcs: []int{1, 2, 3}}, "2 x pipeline[1 2 3]"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPredictionFinite(t *testing.T) {
	m := syntheticModel(8, [3]float64{1, 2, 1}, [3]float64{0.05, 0, 0}, 0.01)
	c, err := Optimize(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(c.PredLatency, 0) || math.IsNaN(c.PredLatency) {
		t.Errorf("latency = %v", c.PredLatency)
	}
	if c.PredThroughput <= 0 {
		t.Errorf("throughput = %v", c.PredThroughput)
	}
}
