package mapping

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// oldOptimize is the pre-fix homogeneous replication search, kept verbatim
// as the baseline for the no-worse-latency guarantee: every module got
// exactly P/r processors and the P mod r leftover stayed idle.
func oldOptimize(m Model, goal float64) (Choice, error) {
	if err := m.Validate(); err != nil {
		return Choice{}, err
	}
	best := Choice{PredLatency: math.Inf(1)}
	for r := 1; r <= m.P; r++ {
		per := m.P / r
		if per < 1 {
			break
		}
		moduleGoal := goal / float64(r)
		pdp := m.dpCap(per)
		t := m.DPT[pdp]
		if t > 0 && (moduleGoal == 0 || 1/t >= moduleGoal) {
			c := Choice{Modules: r, StageProcs: []int{pdp}, PredLatency: t, PredThroughput: float64(r) / t}
			if c.PredLatency < best.PredLatency {
				best = c
			}
		}
		if len(m.StageNames) > 1 && per >= len(m.StageNames) {
			if c, ok := m.pipelineDP(per, moduleGoal); ok {
				c.Modules = r
				c.PredThroughput *= float64(r)
				if c.PredLatency < best.PredLatency {
					best = c
				}
			}
		}
	}
	if math.IsInf(best.PredLatency, 1) {
		return Choice{}, fmt.Errorf("infeasible")
	}
	return best, nil
}

// TestRemainderProcessorsUsed is the regression test for the P mod r bug:
// a goal that forces 3 modules on a 64-processor machine used to strand
// 64 mod 3 = 1 processor; the fixed optimizer gives it to the first module
// and strictly improves mean latency.
func TestRemainderProcessorsUsed(t *testing.T) {
	// Stage 0 carries a 0.1 s fixed cost, so one module tops out near
	// 1/0.1 = 10 sets/s and a goal of 25 forces r >= 3 replication.
	m := syntheticModel(64, [3]float64{0.1, 0.1, 0.1}, [3]float64{0.1, 0, 0}, 0.001)
	c, err := Optimize(m, 25)
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules != 3 {
		t.Fatalf("choice = %v, expected 3 modules at goal 25", c)
	}
	if c.UsesProcs() != 64 {
		t.Errorf("choice %v uses %d of 64 processors; remainder not distributed", c, c.UsesProcs())
	}
	if c.WideModules != 1 {
		t.Errorf("choice %v: want exactly 64 mod 3 = 1 wide module", c)
	}
	old, err := oldOptimize(m, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.PredLatency < old.PredLatency) {
		t.Errorf("fixed latency %.6f not better than homogeneous %.6f", c.PredLatency, old.PredLatency)
	}
}

// TestOptimizeNoWorseThanHomogeneous: on randomized models the remainder
// distribution must never lose to the old homogeneous split — same
// feasibility, latency less than or equal, processor budget respected.
func TestOptimizeNoWorseThanHomogeneous(t *testing.T) {
	f := func(pSeed, b0, b1, b2, f0, goalSeed uint8) bool {
		p := int(pSeed)%29 + 3 // 3..31, rarely divisible by every r
		base := [3]float64{
			float64(b0%50)/100 + 0.05,
			float64(b1%50)/100 + 0.05,
			float64(b2%50)/100 + 0.05,
		}
		fixed := [3]float64{float64(f0%20) / 1000, 0.005, 0.002}
		m := syntheticModel(p, base, fixed, 0.003)
		goal := float64(goalSeed%40) / 10
		c, err := Optimize(m, goal)
		old, errOld := oldOptimize(m, goal)
		if errOld == nil && err != nil {
			t.Logf("p=%d goal=%g: new optimizer lost feasibility", p, goal)
			return false
		}
		if err != nil {
			return true
		}
		if c.UsesProcs() > p {
			t.Logf("p=%d goal=%g: %v uses %d procs", p, goal, c, c.UsesProcs())
			return false
		}
		if errOld == nil && c.PredLatency > old.PredLatency+1e-12 {
			t.Logf("p=%d goal=%g: new %.6f worse than old %.6f (%v vs %v)",
				p, goal, c.PredLatency, old.PredLatency, c, old)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWideChoiceAccessors(t *testing.T) {
	c := Choice{
		Modules: 3, StageProcs: []int{2, 2, 2},
		WideModules: 1, WideStageProcs: []int{3, 2, 2},
	}
	if got := c.UsesProcs(); got != 2*6+7 {
		t.Errorf("UsesProcs = %d, want 19", got)
	}
	if !sameProcs(c.ModuleStageProcs(0), []int{3, 2, 2}) {
		t.Errorf("module 0 = %v, want wide", c.ModuleStageProcs(0))
	}
	if !sameProcs(c.ModuleStageProcs(2), []int{2, 2, 2}) {
		t.Errorf("module 2 = %v, want narrow", c.ModuleStageProcs(2))
	}
	if got, want := c.String(), "1 x pipeline[3 2 2] + 2 x pipeline[2 2 2]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	dp := Choice{Modules: 5, StageProcs: []int{2}, WideModules: 2, WideStageProcs: []int{3}}
	if got, want := dp.String(), "2 x data-parallel(3) + 3 x data-parallel(2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if dp.UsesProcs() != 12 {
		t.Errorf("UsesProcs = %d, want 12", dp.UsesProcs())
	}
}

// randomPipelineModel builds a model with nS stages on p processors with
// randomized cost tables, occasional per-stage caps, and a transfer cost
// that depends on both endpoint widths.
func randomPipelineModel(rng *rand.Rand, nS, p int) Model {
	names := make([]string, nS)
	stageT := make([][]float64, nS)
	caps := make([]int, nS)
	for s := range names {
		names[s] = fmt.Sprintf("s%d", s)
		stageT[s] = make([]float64, p+1)
		base := 0.2 + rng.Float64()
		fixed := rng.Float64() * 0.05
		for q := 1; q <= p; q++ {
			stageT[s][q] = base/float64(q) + fixed + rng.Float64()*0.01
		}
		if rng.Intn(4) == 0 {
			caps[s] = 1 + rng.Intn(p)
		}
	}
	xf := rng.Float64() * 0.02
	dpt := make([]float64, p+1)
	for q := 1; q <= p; q++ {
		for s := 0; s < nS; s++ {
			dpt[q] += stageT[s][q]
		}
	}
	return Model{
		P: p, StageNames: names, StageT: stageT, DPT: dpt, Caps: caps,
		Xfer: func(s, a, b int) float64 { return xf * float64(a+b) / 10 },
	}
}

// TestPipelineDPExhaustive cross-checks pipelineDP against brute-force
// enumeration of every stage assignment on small instances: the DP must
// return a latency-minimal assignment among those meeting the throughput
// constraint, and agree on feasibility.
func TestPipelineDPExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nS := 2 + rng.Intn(3)  // 2..4 stages
		p := nS + rng.Intn(11-nS) // nS..10 processors
		m := randomPipelineModel(rng, nS, p)
		goal := 0.0
		if rng.Intn(3) > 0 {
			goal = rng.Float64() * 3
		}
		limit := math.Inf(1)
		if goal > 0 {
			limit = 1 / goal
		}

		// Brute force: every assignment of 1..cap procs per stage, total <= p.
		bestLat := math.Inf(1)
		var rec func(s, used int, procs []int)
		rec = func(s, used int, procs []int) {
			if s == nS {
				lat := 0.0
				for i := 0; i < nS; i++ {
					ti := m.StageT[i][procs[i]]
					x := 0.0
					if i > 0 {
						x = m.Xfer(i-1, procs[i-1], procs[i])
					}
					if ti+x > limit {
						return
					}
					lat += ti + x
				}
				if lat < bestLat {
					bestLat = lat
				}
				return
			}
			capS := m.cap(s, p)
			for q := 1; q <= capS && used+q <= p; q++ {
				procs[s] = q
				rec(s+1, used+q, procs)
			}
		}
		rec(0, 0, make([]int, nS))

		c, ok := m.pipelineDP(p, goal)
		if ok != !math.IsInf(bestLat, 1) {
			t.Fatalf("trial %d (nS=%d p=%d goal=%.3f): DP feasible=%v, brute feasible=%v",
				trial, nS, p, goal, ok, !math.IsInf(bestLat, 1))
		}
		if !ok {
			continue
		}
		if math.Abs(c.PredLatency-bestLat) > 1e-9 {
			t.Fatalf("trial %d (nS=%d p=%d goal=%.3f): DP latency %.9f, brute %.9f (%v)",
				trial, nS, p, goal, c.PredLatency, bestLat, c)
		}
		// The returned assignment must reproduce the claimed latency and
		// respect the constraint when recomputed from the tables.
		lat := 0.0
		for i := 0; i < nS; i++ {
			ti := m.StageT[i][c.StageProcs[i]]
			x := 0.0
			if i > 0 {
				x = m.Xfer(i-1, c.StageProcs[i-1], c.StageProcs[i])
			}
			if ti+x > limit+1e-12 {
				t.Fatalf("trial %d: returned assignment %v violates period limit at stage %d", trial, c, i)
			}
			lat += ti + x
		}
		if math.Abs(lat-c.PredLatency) > 1e-9 {
			t.Fatalf("trial %d: recomputed latency %.9f != reported %.9f for %v", trial, lat, c.PredLatency, c)
		}
	}
}
