package mapping

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"fxpar/internal/fsatomic"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

// TableSpec identifies one cost-table build by content: the application, its
// parameters, the machine size, and every cost-model constant. Two specs with
// equal keys describe byte-identical tables, so the tables can be memoized
// across calls and across process invocations.
type TableSpec struct {
	// App names the application ("ffthist", "radar", ...).
	App string
	// Params is a canonical rendering of the application parameters that
	// affect per-set stage times (data sizes, kernel constants — not the
	// stream length).
	Params string
	// P is the machine size the tables cover (entries 1..P).
	P int
	// Stages are the stage names, in pipeline order.
	Stages []string
	// Cost holds the simulator's cost constants.
	Cost sim.CostModel
}

// Key renders the spec as a canonical string: the content key of the memo
// caches. CostModel is a flat struct of float64 fields, so %+v yields a
// stable field-name=value rendering in declaration order.
func (s TableSpec) Key() string {
	return fmt.Sprintf("app=%s|params=%s|P=%d|stages=%v|cost=%+v", s.App, s.Params, s.P, s.Stages, s.Cost)
}

// Tables holds the measured time tables of one spec: StageT[s][p] is the
// per-set time of stage s on p processors and DPT[p] the whole-program
// data-parallel time, both with index 0 unused, exactly as Model consumes
// them.
type Tables struct {
	// Key echoes the spec key the tables were built under, so a disk cache
	// hit can be verified against hash collisions and stale files.
	Key    string
	StageT [][]float64
	DPT    []float64
}

// TableSource says where BuildTables found the tables.
type TableSource int

const (
	// SourceComputed: the tables were built by running simulations.
	SourceComputed TableSource = iota
	// SourceMemory: in-process cache hit, no simulation ran.
	SourceMemory
	// SourceDisk: on-disk cache hit, no simulation ran.
	SourceDisk
)

func (s TableSource) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	}
	return fmt.Sprintf("TableSource(%d)", int(s))
}

// BuildOptions configures a table build campaign.
type BuildOptions struct {
	// Workers bounds the host-parallel simulation pool; <= 0 means one
	// worker per CPU (see sweep.Workers).
	Workers int
	// CacheDir, when non-empty, enables the on-disk JSON cache: tables are
	// read from and written to CacheDir keyed by a hash of the spec key.
	CacheDir string
	// Engine selects the execution engine for the measurement simulations
	// (nil: the machine package default). Engines are host-time strategy
	// only — every virtual-time measurement is engine-independent — so the
	// engine is deliberately NOT part of the memo key: tables computed under
	// one engine are valid for all.
	Engine machine.Engine
	// Replay, when non-nil, enables the skeleton-replay backend for the
	// measurement closures: each table cell is answered by re-costing a
	// stored communication skeleton instead of running a simulation
	// whenever the store has one (see ReplayOptions). The apps' measure
	// functions consult it; BuildTables itself only threads it through.
	Replay *ReplayOptions
}

// ReplayOptions is the skeleton-replay backend of a table build: a
// content-addressed skeleton store plus the base cost model cells are
// captured under. A cell requested at exactly Base re-costs bitwise
// identically to a live simulation (the replay is the recorded run); a cell
// requested at another cost model is an analytic re-cost of the Base
// skeleton — exact for healthy runs up to floating-point rounding, and in
// practice bitwise for power-of-two parameter scalings (see the replay
// campaign's cross-checks). This is what turns a mapping search across
// machine parameterizations into one traced simulation per cell shape plus
// thousands of cheap DAG evaluations.
type ReplayOptions struct {
	// Store holds the captured cell skeletons (in-process and, when its
	// directory is set, shared on disk across processes and -j workers).
	Store *skeleton.Store
	// Base is the cost model cell skeletons are captured under. Campaigns
	// that sweep machine parameters all capture at one Base and re-cost
	// everywhere else. The zero value means "capture at whatever model the
	// build requests": every replay is then an identity replay (bitwise
	// equal to the live run), which still displaces simulation whenever the
	// store — in-process or on disk — already holds the cell.
	Base sim.CostModel

	// skip remembers cells proven non-replayable (their live metric is not
	// a DAG makespan — e.g. a stream latency that excludes teardown), so a
	// cross-cost build does not re-capture them on every variant.
	skip sync.Map // key string -> struct{}
}

// SpecSuffix returns the marker a replay-first build must append to its
// table-spec params when building for target: analytically re-costed
// tables (target != Base) carry the base model in their memo key so they
// never collide with live-simulated tables for the same target, which
// would make results depend on which mode ran first.
func (r *ReplayOptions) SpecSuffix(target sim.CostModel) string {
	if r == nil || r.Store == nil || r.Base == (sim.CostModel{}) || target == r.Base {
		return ""
	}
	return fmt.Sprintf("|replay-base=%+v", r.Base)
}

// Eval answers one table cell replay-first and reports whether it could:
// a false return means the caller must fall back to a live simulation at
// target (which is also the only path that can answer non-makespan cells).
//
// On a store hit the cell costs one analytic DAG evaluation. On a miss,
// capture runs one live traced simulation at Base and must return the
// folded skeleton together with the cell's live value at Base; the
// skeleton is stored only if its makespan IS that value — the guard that
// keeps metrics which are not pure DAG makespans from ever being replayed.
func (r *ReplayOptions) Eval(key skeleton.StoreKey, target sim.CostModel,
	capture func(base sim.CostModel) (*skeleton.Skeleton, float64, error)) (float64, bool) {
	if r == nil || r.Store == nil {
		return 0, false
	}
	base := r.Base
	if base == (sim.CostModel{}) {
		base = target
	}
	key.Cost = base
	ks := key.Key()
	if _, bad := r.skip.Load(ks); bad {
		return 0, false
	}
	recost := func(sk *skeleton.Skeleton) (float64, bool) {
		if target == base {
			return sk.Makespan, true
		}
		mk, err := sk.Recost(skeleton.Params{Cost: &target})
		if err != nil {
			return 0, false
		}
		return mk, true
	}
	if sk, _, ok := r.Store.Get(key); ok {
		return recost(sk)
	}
	sk, live, err := capture(base)
	if err != nil || sk == nil {
		return 0, false
	}
	if sk.Makespan != live {
		r.skip.Store(ks, struct{}{})
		if target == base {
			// The capture was the live run; its value stands even though
			// the cell cannot be replayed at other cost models.
			return live, true
		}
		return 0, false
	}
	if err := r.Store.Put(key, sk); err != nil {
		return 0, false
	}
	return recost(sk)
}

// tableMemo is the in-process cache, shared by every build in the process.
var tableMemo sync.Map // key string -> Tables

// tableFlight dedupes concurrent in-flight builds of the same spec: when a
// serving process fields many simultaneous requests over one application,
// only the first runs the measurement campaign — the rest wait for its
// tables instead of each re-simulating the full nStages·P grid.
var (
	tableFlightMu sync.Mutex
	tableFlight   = map[string]*tableCall{}
)

// tableCall is one in-flight build; done closes when the leader finishes.
type tableCall struct {
	done chan struct{}
	t    Tables
	err  error
}

// cachePath maps a spec key to its cache file. FNV-64a keeps filenames
// short; the stored Key field guards against collisions.
func cachePath(dir, key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(dir, fmt.Sprintf("fxtab-%016x.json", h.Sum64()))
}

// readDiskCache loads and verifies a cached table file. Any failure — file
// absent, malformed JSON, key mismatch, wrong shape — is a miss.
func readDiskCache(path, key string, nStages, p int) (Tables, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Tables{}, false
	}
	var t Tables
	if err := json.Unmarshal(data, &t); err != nil || t.Key != key {
		return Tables{}, false
	}
	if len(t.StageT) != nStages || len(t.DPT) != p+1 {
		return Tables{}, false
	}
	for _, tab := range t.StageT {
		if len(tab) != p+1 {
			return Tables{}, false
		}
	}
	return t, true
}

// writeDiskCache persists tables best-effort: a cache write failure never
// fails the build. The write goes through fsatomic — the temp file lives in
// the cache directory itself, never os.TempDir, so the rename is atomic
// even when concurrent -j campaign workers share one cache dir (rename is
// only atomic within a filesystem, and a cross-device fallback could expose
// half-written JSON under the final name).
func writeDiskCache(path string, t Tables) {
	data, err := json.Marshal(t)
	if err != nil {
		return
	}
	_ = fsatomic.WriteFile(path, append(data, '\n'))
}

// BuildTables returns the cost tables for spec, consulting the in-process
// memo and then the optional disk cache before measuring. A miss fans the
// nStages·P stage measurements and P data-parallel measurements out over a
// sweep worker pool — each job is one isolated simulation — and the
// assembled tables are stored in both caches.
//
// stage(s, p) must return the per-set time of stage s on p processors and
// dp(p) the whole-program data-parallel per-set time; both must be pure
// functions of the spec (the memoization contract). Simulations are
// deterministic in virtual time, so parallel and serial builds produce
// identical tables.
func BuildTables(spec TableSpec, opt BuildOptions,
	stage func(s, p int) float64, dp func(p int) float64) (Tables, TableSource, error) {
	key := spec.Key()
	nStages := len(spec.Stages)
	if nStages == 0 || spec.P < 1 {
		return Tables{}, SourceComputed, fmt.Errorf("mapping: bad table spec %q", key)
	}
	if v, ok := tableMemo.Load(key); ok {
		return v.(Tables), SourceMemory, nil
	}

	// Singleflight on the content key: join an in-flight build of the same
	// spec rather than duplicating its simulation campaign. Joiners report
	// SourceMemory — they did not compute anything.
	tableFlightMu.Lock()
	if c, ok := tableFlight[key]; ok {
		tableFlightMu.Unlock()
		<-c.done
		if c.err != nil {
			return Tables{}, SourceComputed, c.err
		}
		return c.t, SourceMemory, nil
	}
	call := &tableCall{done: make(chan struct{})}
	tableFlight[key] = call
	tableFlightMu.Unlock()

	t, src, err := buildTablesUncached(key, spec, opt, stage, dp)
	call.t, call.err = t, err
	tableFlightMu.Lock()
	delete(tableFlight, key)
	tableFlightMu.Unlock()
	close(call.done)
	return t, src, err
}

// buildTablesUncached is the memo-miss path of BuildTables: disk cache, then
// the measurement campaign. Exactly one caller per content key runs it at a
// time (the flight group above).
func buildTablesUncached(key string, spec TableSpec, opt BuildOptions,
	stage func(s, p int) float64, dp func(p int) float64) (Tables, TableSource, error) {
	nStages := len(spec.Stages)
	// Re-check the memo now that this call holds the flight slot: a
	// previous leader may have stored the tables between our memo miss and
	// flight acquisition.
	if v, ok := tableMemo.Load(key); ok {
		return v.(Tables), SourceMemory, nil
	}
	var path string
	if opt.CacheDir != "" {
		path = cachePath(opt.CacheDir, key)
		if t, ok := readDiskCache(path, key, nStages, spec.P); ok {
			tableMemo.Store(key, t)
			return t, SourceDisk, nil
		}
	}

	// One job per (stage, procs) cell plus one per DP processor count,
	// indexed so results land in deterministic submission order.
	n := nStages*spec.P + spec.P
	results := sweep.MapNamed("cost-tables", opt.Workers, n, func(i int) (float64, error) {
		if i < nStages*spec.P {
			s, p := i/spec.P, i%spec.P+1
			return stage(s, p), nil
		}
		return dp(i - nStages*spec.P + 1), nil
	})

	t := Tables{Key: key, StageT: make([][]float64, nStages), DPT: make([]float64, spec.P+1)}
	for s := range t.StageT {
		t.StageT[s] = make([]float64, spec.P+1)
	}
	for i, r := range results {
		if r.Err != nil {
			if i < nStages*spec.P {
				return Tables{}, SourceComputed, fmt.Errorf("mapping: stage %s on %d procs: %w",
					spec.Stages[i/spec.P], i%spec.P+1, r.Err)
			}
			return Tables{}, SourceComputed, fmt.Errorf("mapping: data-parallel on %d procs: %w",
				i-nStages*spec.P+1, r.Err)
		}
		if i < nStages*spec.P {
			t.StageT[i/spec.P][i%spec.P+1] = r.Value
		} else {
			t.DPT[i-nStages*spec.P+1] = r.Value
		}
	}

	tableMemo.Store(key, t)
	if path != "" {
		writeDiskCache(path, t)
	}
	return t, SourceComputed, nil
}

// Model assembles a mapper Model from the tables plus the structural pieces
// that are not measured: the parallelism caps and the transfer-cost
// function.
func (t Tables) Model(spec TableSpec, p int, caps []int, xfer func(s, a, b int) float64) Model {
	return Model{
		P:          p,
		StageNames: spec.Stages,
		StageT:     t.StageT,
		DPT:        t.DPT,
		Caps:       caps,
		Xfer:       xfer,
	}
}

// ResetTableMemo clears the in-process cache. Tests use it to exercise the
// disk-cache path.
func ResetTableMemo() {
	tableMemo.Range(func(k, _ any) bool {
		tableMemo.Delete(k)
		return true
	})
}
