package mapping

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fxpar/internal/sim"
)

func testSpec(p int) TableSpec {
	return TableSpec{
		App:    "synthetic",
		Params: "N=16",
		P:      p,
		Stages: []string{"s0", "s1"},
		Cost:   sim.Paragon(),
	}
}

// countingFns returns stage/dp functions that count invocations.
func countingFns(calls *atomic.Int64) (func(s, p int) float64, func(p int) float64) {
	stage := func(s, p int) float64 {
		calls.Add(1)
		return float64(s+1) / float64(p)
	}
	dp := func(p int) float64 {
		calls.Add(1)
		return 3.0 / float64(p)
	}
	return stage, dp
}

func TestBuildTablesComputesAndMemoizes(t *testing.T) {
	ResetTableMemo()
	spec := testSpec(4)
	var calls atomic.Int64
	stage, dp := countingFns(&calls)

	tab, src, err := BuildTables(spec, BuildOptions{Workers: 4}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Errorf("first build source = %v, want computed", src)
	}
	if want := int64(2*4 + 4); calls.Load() != want {
		t.Errorf("%d measurement calls, want %d", calls.Load(), want)
	}
	if tab.StageT[1][2] != 1.0 || tab.DPT[3] != 1.0 {
		t.Errorf("table values wrong: StageT[1][2]=%g DPT[3]=%g", tab.StageT[1][2], tab.DPT[3])
	}

	// Second build: in-process memo hit, zero new simulations.
	tab2, src2, err := BuildTables(spec, BuildOptions{Workers: 4}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != SourceMemory {
		t.Errorf("second build source = %v, want memory", src2)
	}
	if calls.Load() != int64(12) {
		t.Errorf("memo hit still ran %d measurements", calls.Load()-12)
	}
	if tab2.StageT[0][1] != tab.StageT[0][1] {
		t.Error("memoized tables differ")
	}
}

func TestBuildTablesDiskCache(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(3)
	var calls atomic.Int64
	stage, dp := countingFns(&calls)

	ResetTableMemo()
	if _, src, err := BuildTables(spec, BuildOptions{CacheDir: dir}, stage, dp); err != nil || src != SourceComputed {
		t.Fatalf("cold build: src=%v err=%v", src, err)
	}
	first := calls.Load()

	// Fresh process simulated by clearing the in-process memo: the disk
	// cache must satisfy the build with zero simulations.
	ResetTableMemo()
	tab, src, err := BuildTables(spec, BuildOptions{CacheDir: dir}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDisk {
		t.Errorf("warm build source = %v, want disk", src)
	}
	if calls.Load() != first {
		t.Errorf("disk hit ran %d extra measurements", calls.Load()-first)
	}
	if tab.DPT[2] != 1.5 {
		t.Errorf("DPT[2] = %g after disk round-trip", tab.DPT[2])
	}

	// A different spec must not hit the same cache entry.
	other := spec
	other.Params = "N=32"
	ResetTableMemo()
	if _, src, err := BuildTables(other, BuildOptions{CacheDir: dir}, stage, dp); err != nil || src != SourceComputed {
		t.Errorf("different params: src=%v err=%v, want computed", src, err)
	}
}

func TestBuildTablesRejectsCorruptCacheFile(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(2)
	var calls atomic.Int64
	stage, dp := countingFns(&calls)
	path := cachePath(dir, spec.Key())
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetTableMemo()
	if _, src, err := BuildTables(spec, BuildOptions{CacheDir: dir}, stage, dp); err != nil || src != SourceComputed {
		t.Errorf("corrupt cache: src=%v err=%v, want recompute", src, err)
	}
	// The rebuild must have repaired the file.
	ResetTableMemo()
	if _, src, err := BuildTables(spec, BuildOptions{CacheDir: dir}, stage, dp); err != nil || src != SourceDisk {
		t.Errorf("after repair: src=%v err=%v, want disk hit", src, err)
	}
}

func TestBuildTablesPropagatesJobPanic(t *testing.T) {
	ResetTableMemo()
	spec := testSpec(3)
	stage := func(s, p int) float64 {
		if s == 1 && p == 2 {
			panic("infeasible distribution")
		}
		return 1
	}
	dp := func(p int) float64 { return 1 }
	_, _, err := BuildTables(spec, BuildOptions{}, stage, dp)
	if err == nil {
		t.Fatal("panicking measurement did not fail the build")
	}
	if !strings.Contains(err.Error(), "s1") || !strings.Contains(err.Error(), "2 procs") {
		t.Errorf("error %q does not locate the failing cell", err)
	}
	// The failed build must not be cached.
	if _, ok := tableMemo.Load(spec.Key()); ok {
		t.Error("failed build was memoized")
	}
}

func TestTableSpecKeyCoversCostModel(t *testing.T) {
	a := testSpec(4)
	b := a
	b.Cost.Alpha *= 2
	if a.Key() == b.Key() {
		t.Error("changing a cost constant did not change the key")
	}
	c := a
	c.P = 5
	if a.Key() == c.Key() {
		t.Error("changing P did not change the key")
	}
	d := a
	d.Stages = []string{"s0", "zz"}
	if a.Key() == d.Key() {
		t.Error("changing stage names did not change the key")
	}
}

func TestTablesModelAssembly(t *testing.T) {
	ResetTableMemo()
	spec := testSpec(4)
	var calls atomic.Int64
	stage, dp := countingFns(&calls)
	tab, _, err := BuildTables(spec, BuildOptions{}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	m := tab.Model(spec, spec.P, []int{0, 2}, func(s, a, b int) float64 { return 0.001 })
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(m, 0); err != nil {
		t.Fatal(err)
	}
	if filepath.Base(cachePath("/x", spec.Key()))[:6] != "fxtab-" {
		t.Error("cache filename prefix changed")
	}
}

// TestBuildTablesParallelEqualsSerial: worker count must not affect table
// contents (the determinism contract of the campaign driver).
func TestBuildTablesParallelEqualsSerial(t *testing.T) {
	spec := testSpec(6)
	stage := func(s, p int) float64 { return float64((s+1)*1000+p) * 1e-6 }
	dp := func(p int) float64 { return float64(p) * 1e-3 }
	ResetTableMemo()
	serial, _, err := BuildTables(spec, BuildOptions{Workers: 1}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	ResetTableMemo()
	par, _, err := BuildTables(spec, BuildOptions{Workers: 8}, stage, dp)
	if err != nil {
		t.Fatal(err)
	}
	for s := range serial.StageT {
		for p := 1; p <= spec.P; p++ {
			if serial.StageT[s][p] != par.StageT[s][p] {
				t.Fatalf("StageT[%d][%d]: serial %g != parallel %g", s, p, serial.StageT[s][p], par.StageT[s][p])
			}
		}
	}
	for p := 1; p <= spec.P; p++ {
		if serial.DPT[p] != par.DPT[p] {
			t.Fatalf("DPT[%d]: serial %g != parallel %g", p, serial.DPT[p], par.DPT[p])
		}
	}
}

// TestWriteDiskCacheConcurrentWriters hammers one cache path with parallel
// writers (the -j campaign scenario: many workers, one shared cache dir)
// while a reader polls. Because writeDiskCache goes through fsatomic — temp
// file in the cache directory itself, then rename — a concurrent reader must
// only ever observe a complete, verified table, never a torn file.
func TestWriteDiskCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4)
	key := spec.Key()
	path := cachePath(dir, key)

	mk := func(fill float64) Tables {
		tab := Tables{Key: key, StageT: make([][]float64, 2), DPT: make([]float64, 5)}
		for s := range tab.StageT {
			tab.StageT[s] = make([]float64, 5)
			for p := 1; p <= 4; p++ {
				tab.StageT[s][p] = fill
			}
		}
		return tab
	}

	const writers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				writeDiskCache(path, mk(float64(w*rounds+r)))
			}
		}(w)
	}
	readerDone := make(chan error, 1)
	go func() {
		for i := 0; i < writers*rounds; i++ {
			if tab, ok := readDiskCache(path, key, 2, 4); ok {
				if tab.Key != key {
					readerDone <- fmt.Errorf("read tables with wrong key %q", tab.Key)
					return
				}
			}
		}
		readerDone <- nil
	}()
	wg.Wait()
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	// After the dust settles the file must hold one complete table.
	tab, ok := readDiskCache(path, key, 2, 4)
	if !ok {
		t.Fatal("cache file unreadable after concurrent writes")
	}
	if tab.Key != key {
		t.Fatalf("final table key %q != %q", tab.Key, key)
	}

	// And no temp droppings may be left behind in the cache dir.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover file %q in cache dir", e.Name())
		}
	}
}
