package mapping

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteForce enumerates every mapping in the optimizer's search space —
// all module counts, and per module either the capped data-parallel mode or
// every stage-processor split — and returns the latency-minimal feasible
// choice, computed directly from the model definitions.
func bruteForce(m Model, goal float64) (Choice, bool) {
	best := Choice{PredLatency: math.Inf(1)}
	nS := len(m.StageNames)
	for r := 1; r <= m.P; r++ {
		per := m.P / r
		if per < 1 {
			break
		}
		moduleGoal := goal / float64(r)

		// Data-parallel module.
		pdp := m.dpCap(per)
		t := m.DPT[pdp]
		if t > 0 && (moduleGoal == 0 || 1/t >= moduleGoal) && t < best.PredLatency {
			best = Choice{Modules: r, StageProcs: []int{pdp}, PredLatency: t, PredThroughput: float64(r) / t}
		}

		// Every pipeline split.
		if per < nS {
			continue
		}
		var rec func(s, used int, procs []int)
		rec = func(s, used int, procs []int) {
			if s == nS {
				lat := 0.0
				period := 0.0
				feasible := true
				for i := 0; i < nS; i++ {
					ti := m.StageT[i][procs[i]]
					x := 0.0
					if i > 0 {
						x = m.Xfer(i-1, procs[i-1], procs[i])
					}
					lat += ti + x
					if ti+x > period {
						period = ti + x
					}
					if moduleGoal > 0 && ti+x > 1/moduleGoal {
						feasible = false
					}
				}
				if feasible && lat < best.PredLatency {
					best = Choice{
						Modules:        r,
						StageProcs:     append([]int(nil), procs...),
						PredLatency:    lat,
						PredThroughput: float64(r) / period,
					}
				}
				return
			}
			capS := m.cap(s, per)
			for q := 1; q <= capS && used+q <= per-(nS-1-s); q++ {
				procs[s] = q
				rec(s+1, used+q, procs)
			}
		}
		rec(0, 0, make([]int, nS))
	}
	if math.IsInf(best.PredLatency, 1) {
		return Choice{}, false
	}
	return best, true
}

// TestOptimizeMatchesBruteForce checks the DP against exhaustive enumeration
// on randomized small models.
func TestOptimizeMatchesBruteForce(t *testing.T) {
	f := func(pSeed uint8, b0, b1, b2, f0 uint8, goalSeed uint8) bool {
		p := int(pSeed)%8 + 3 // 3..10 processors
		base := [3]float64{
			float64(b0%50)/100 + 0.05,
			float64(b1%50)/100 + 0.05,
			float64(b2%50)/100 + 0.05,
		}
		fixed := [3]float64{float64(f0%20) / 1000, 0.005, 0.002}
		m := syntheticModel(p, base, fixed, 0.003)
		goal := float64(goalSeed%40) / 10 // 0..3.9
		opt, errOpt := Optimize(m, goal)
		brute, okBrute := bruteForce(m, goal)
		if (errOpt == nil) != okBrute {
			t.Logf("feasibility disagrees: opt err=%v brute ok=%v (goal %g)", errOpt, okBrute, goal)
			return false
		}
		if errOpt != nil {
			return true
		}
		if math.Abs(opt.PredLatency-brute.PredLatency) > 1e-9 {
			t.Logf("latency: opt %v (%.6f) vs brute %v (%.6f), goal %g",
				opt, opt.PredLatency, brute, brute.PredLatency, goal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeNeverExceedsMachine checks the processor budget invariant.
func TestOptimizeNeverExceedsMachine(t *testing.T) {
	f := func(pSeed, goalSeed uint8) bool {
		p := int(pSeed)%14 + 3
		m := syntheticModel(p, [3]float64{0.4, 0.8, 0.2}, [3]float64{0.02, 0.01, 0}, 0.004)
		goal := float64(goalSeed%30) / 8
		c, err := Optimize(m, goal)
		if err != nil {
			return true
		}
		return c.UsesProcs() <= p && c.PredThroughput+1e-12 >= goal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCostModelChangesDecision: the optimizer must respond to the machine
// model — with near-free communication, pipelines lose their appeal against
// wider data parallelism.
func TestCostModelChangesDecision(t *testing.T) {
	// Expensive transfers: DP avoids inter-stage hops.
	expensive := syntheticModel(8, [3]float64{1, 1, 1}, [3]float64{}, 0.5)
	c1, err := Optimize(expensive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.StageProcs) != 1 {
		t.Errorf("with 0.5s transfers the latency optimum should be DP, got %v", c1)
	}
	// A throughput goal that DP cannot meet forces replication even at high
	// transfer cost.
	dpThr := 1 / expensive.DPT[8]
	c2, err := Optimize(expensive, 1.5*dpThr)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Modules < 2 && len(c2.StageProcs) == 1 {
		t.Errorf("goal above DP max should not yield single DP: %v", c2)
	}
}
