package mapping

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteModuleBest enumerates every single-module assignment on at most q
// processors — the capped data-parallel mode and every stage-processor
// split — and returns the latency-minimal feasible one, computed directly
// from the model definitions (data-parallel wins latency ties, matching the
// optimizer's candidate order).
func bruteModuleBest(m Model, q int, moduleGoal float64) (procs []int, lat, period float64, ok bool) {
	nS := len(m.StageNames)
	lat = math.Inf(1)

	pdp := m.dpCap(q)
	if t := m.DPT[pdp]; t > 0 && (moduleGoal == 0 || 1/t >= moduleGoal) {
		procs, lat, period, ok = []int{pdp}, t, t, true
	}

	if q < nS {
		return procs, lat, period, ok
	}
	var rec func(s, used int, cur []int)
	rec = func(s, used int, cur []int) {
		if s == nS {
			l := 0.0
			per := 0.0
			feasible := true
			for i := 0; i < nS; i++ {
				ti := m.StageT[i][cur[i]]
				x := 0.0
				if i > 0 {
					x = m.Xfer(i-1, cur[i-1], cur[i])
				}
				l += ti + x
				if ti+x > per {
					per = ti + x
				}
				if moduleGoal > 0 && ti+x > 1/moduleGoal {
					feasible = false
				}
			}
			if feasible && l < lat {
				procs, lat, period, ok = append([]int(nil), cur...), l, per, true
			}
			return
		}
		capS := m.cap(s, q)
		for c := 1; c <= capS && used+c <= q-(nS-1-s); c++ {
			cur[s] = c
			rec(s+1, used+c, cur)
		}
	}
	rec(0, 0, make([]int, nS))
	return procs, lat, period, ok
}

// bruteForce mirrors the optimizer's full search space — all module counts,
// each module assignment found exhaustively, the P mod r leftover processors
// given to the first P mod r modules when the wider assignment is no worse —
// and returns the latency-minimal feasible choice.
func bruteForce(m Model, goal float64) (Choice, bool) {
	best := Choice{PredLatency: math.Inf(1)}
	for r := 1; r <= m.P; r++ {
		per := m.P / r
		if per < 1 {
			break
		}
		moduleGoal := goal / float64(r)

		procs, lat, period, ok := bruteModuleBest(m, per, moduleGoal)
		if !ok {
			continue
		}
		c := Choice{Modules: r, StageProcs: procs, PredLatency: lat, PredThroughput: float64(r) / period}
		if rem := m.P % r; rem > 0 {
			wProcs, wLat, wPeriod, wOK := bruteModuleBest(m, per+1, moduleGoal)
			if wOK && wLat <= lat && !sameProcs(wProcs, procs) {
				maxPeriod := period
				if wPeriod > maxPeriod {
					maxPeriod = wPeriod
				}
				c.WideModules, c.WideStageProcs = rem, wProcs
				c.PredLatency = (float64(rem)*wLat + float64(r-rem)*lat) / float64(r)
				c.PredThroughput = float64(r) / maxPeriod
			}
		}
		if c.PredLatency < best.PredLatency {
			best = c
		}
	}
	if math.IsInf(best.PredLatency, 1) {
		return Choice{}, false
	}
	return best, true
}

// TestOptimizeMatchesBruteForce checks the DP against exhaustive enumeration
// on randomized small models.
func TestOptimizeMatchesBruteForce(t *testing.T) {
	f := func(pSeed uint8, b0, b1, b2, f0 uint8, goalSeed uint8) bool {
		p := int(pSeed)%8 + 3 // 3..10 processors
		base := [3]float64{
			float64(b0%50)/100 + 0.05,
			float64(b1%50)/100 + 0.05,
			float64(b2%50)/100 + 0.05,
		}
		fixed := [3]float64{float64(f0%20) / 1000, 0.005, 0.002}
		m := syntheticModel(p, base, fixed, 0.003)
		goal := float64(goalSeed%40) / 10 // 0..3.9
		opt, errOpt := Optimize(m, goal)
		brute, okBrute := bruteForce(m, goal)
		if (errOpt == nil) != okBrute {
			t.Logf("feasibility disagrees: opt err=%v brute ok=%v (goal %g)", errOpt, okBrute, goal)
			return false
		}
		if errOpt != nil {
			return true
		}
		if math.Abs(opt.PredLatency-brute.PredLatency) > 1e-9 {
			t.Logf("latency: opt %v (%.6f) vs brute %v (%.6f), goal %g",
				opt, opt.PredLatency, brute, brute.PredLatency, goal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeNeverExceedsMachine checks the processor budget invariant.
func TestOptimizeNeverExceedsMachine(t *testing.T) {
	f := func(pSeed, goalSeed uint8) bool {
		p := int(pSeed)%14 + 3
		m := syntheticModel(p, [3]float64{0.4, 0.8, 0.2}, [3]float64{0.02, 0.01, 0}, 0.004)
		goal := float64(goalSeed%30) / 8
		c, err := Optimize(m, goal)
		if err != nil {
			return true
		}
		return c.UsesProcs() <= p && c.PredThroughput+1e-12 >= goal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCostModelChangesDecision: the optimizer must respond to the machine
// model — with near-free communication, pipelines lose their appeal against
// wider data parallelism.
func TestCostModelChangesDecision(t *testing.T) {
	// Expensive transfers: DP avoids inter-stage hops.
	expensive := syntheticModel(8, [3]float64{1, 1, 1}, [3]float64{}, 0.5)
	c1, err := Optimize(expensive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.StageProcs) != 1 {
		t.Errorf("with 0.5s transfers the latency optimum should be DP, got %v", c1)
	}
	// A throughput goal that DP cannot meet forces replication even at high
	// transfer cost.
	dpThr := 1 / expensive.DPT[8]
	c2, err := Optimize(expensive, 1.5*dpThr)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Modules < 2 && len(c2.StageProcs) == 1 {
		t.Errorf("goal above DP max should not yield single DP: %v", c2)
	}
}
