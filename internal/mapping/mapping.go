// Package mapping implements the automatic mapping machinery the paper uses
// to derive Figure 5 and the "Best Task-Data Parallel" column of Table 1:
// the Subhlok–Vondran algorithm for latency-optimal mapping of a sequence of
// data parallel tasks subject to a throughput constraint (refs [21, 22] of
// the paper), extended with a replication-factor search (Section 3.3).
//
// The mapper works on a Model: per-stage execution time tables t(s, p)
// (seconds per data set for stage s on p processors), a whole-program
// data-parallel time table, per-stage parallelism caps, and a transfer cost
// function between adjacent stages. Applications build Models from the same
// cost constants the simulator charges, and the chosen mapping is then
// validated by actually simulating it — predictions select, simulation
// reports.
package mapping

import (
	"fmt"
	"math"
)

// Model describes one streaming application to the mapper.
type Model struct {
	// P is the machine size.
	P int
	// StageNames label the pipeline stages (len = number of stages).
	StageNames []string
	// StageT[s][p] is the per-set time of stage s on p processors, for
	// p in 1..P (index 0 unused).
	StageT [][]float64
	// DPT[p] is the per-set time of the whole program run data-parallel on
	// p processors (index 0 unused).
	DPT []float64
	// Caps[s] limits the processors usable by stage s (0 = no cap). The
	// whole-program data-parallel mode is capped by the smallest cap.
	Caps []int
	// Xfer(s, a, b) is the per-set transfer time between stage s on a
	// processors and stage s+1 on b processors.
	Xfer func(s, a, b int) float64
}

// Validate checks internal consistency.
func (m Model) Validate() error {
	s := len(m.StageNames)
	if s == 0 {
		return fmt.Errorf("mapping: no stages")
	}
	if len(m.StageT) != s {
		return fmt.Errorf("mapping: %d stage tables for %d stages", len(m.StageT), s)
	}
	for i, tab := range m.StageT {
		if len(tab) != m.P+1 {
			return fmt.Errorf("mapping: stage %d table has %d entries, want %d", i, len(tab), m.P+1)
		}
	}
	if len(m.DPT) != m.P+1 {
		return fmt.Errorf("mapping: DP table has %d entries, want %d", len(m.DPT), m.P+1)
	}
	if len(m.Caps) != s {
		return fmt.Errorf("mapping: %d caps for %d stages", len(m.Caps), s)
	}
	if m.Xfer == nil {
		return fmt.Errorf("mapping: nil Xfer")
	}
	return nil
}

func (m Model) cap(s, p int) int {
	c := m.Caps[s]
	if c == 0 || c > p {
		return p
	}
	return c
}

func (m Model) dpCap(p int) int {
	c := p
	for s := range m.Caps {
		if m.Caps[s] != 0 && m.Caps[s] < c {
			c = m.Caps[s]
		}
	}
	return c
}

// Choice is a selected mapping. When P mod r processors are left over by a
// replication factor r, the first WideModules modules run on one processor
// more than the rest; the remaining Modules-WideModules modules use
// StageProcs. A homogeneous choice has WideModules == 0.
type Choice struct {
	// Modules is the replication factor (total module count).
	Modules int
	// StageProcs is processors per stage within one narrow module; a single
	// entry means the module runs data-parallel.
	StageProcs []int
	// WideModules is how many of the Modules use the wider assignment
	// (0 when the machine divides evenly or the leftover is not worth using).
	WideModules int
	// WideStageProcs is processors per stage of each wide module; nil when
	// WideModules == 0.
	WideStageProcs []int
	// PredLatency is the model-predicted per-set latency (module-count
	// weighted mean over wide and narrow modules).
	PredLatency float64
	// PredThroughput is the model-predicted steady-state throughput
	// (modules / bottleneck module period).
	PredThroughput float64
}

// ModuleStageProcs returns the per-stage processor counts of module i; the
// first WideModules modules are the wide ones.
func (c Choice) ModuleStageProcs(i int) []int {
	if i < c.WideModules {
		return c.WideStageProcs
	}
	return c.StageProcs
}

// UsesProcs returns the total processors the choice occupies.
func (c Choice) UsesProcs() int {
	sum := func(procs []int) int {
		s := 0
		for _, p := range procs {
			s += p
		}
		return s
	}
	return sum(c.StageProcs)*(c.Modules-c.WideModules) + sum(c.WideStageProcs)*c.WideModules
}

func (c Choice) String() string {
	shape := func(procs []int) string {
		if len(procs) == 1 {
			return fmt.Sprintf("data-parallel(%d)", procs[0])
		}
		return fmt.Sprintf("pipeline%v", procs)
	}
	if c.WideModules == 0 {
		if c.Modules == 1 {
			return shape(c.StageProcs)
		}
		return fmt.Sprintf("%d x %s", c.Modules, shape(c.StageProcs))
	}
	// Heterogeneous modules: always spell out both counts.
	return fmt.Sprintf("%d x %s + %d x %s",
		c.WideModules, shape(c.WideStageProcs),
		c.Modules-c.WideModules, shape(c.StageProcs))
}

// Optimize returns the latency-minimal mapping whose predicted throughput is
// at least goal (data sets per second). goal = 0 optimizes latency alone.
// It returns an error when no mapping meets the goal.
func Optimize(m Model, goal float64) (Choice, error) {
	return optimize(m, goal, m.P, true)
}

// OptimizePipeline returns the latency-minimal *single-module pipeline*
// meeting the goal — the mapping family of Figure 5's middle diagram — for
// comparison against the replication-enabled optimum.
func OptimizePipeline(m Model, goal float64) (Choice, error) {
	if err := m.Validate(); err != nil {
		return Choice{}, err
	}
	if len(m.StageNames) < 2 || m.P < len(m.StageNames) {
		return Choice{}, fmt.Errorf("mapping: no pipeline possible with %d stages on %d processors", len(m.StageNames), m.P)
	}
	c, ok := m.pipelineDP(m.P, goal)
	if !ok {
		return Choice{}, fmt.Errorf("mapping: no pipeline on %d processors reaches throughput %.3f", m.P, goal)
	}
	return c, nil
}

// moduleBest returns the latency-minimal single-module assignment on at most
// q processors whose period meets moduleGoal: the better of a data-parallel
// module and a pipeline module (when both are feasible, lower latency wins,
// data-parallel breaking the tie). period is the module's per-set bottleneck
// time, the reciprocal of its standalone throughput.
func (m Model) moduleBest(q int, moduleGoal float64, allowDP bool) (procs []int, lat, period float64, ok bool) {
	lat = math.Inf(1)
	if allowDP {
		pdp := m.dpCap(q)
		if t := m.DPT[pdp]; t > 0 && (moduleGoal == 0 || 1/t >= moduleGoal) {
			procs, lat, period, ok = []int{pdp}, t, t, true
		}
	}
	if len(m.StageNames) > 1 && q >= len(m.StageNames) {
		if c, pipeOK := m.pipelineDP(q, moduleGoal); pipeOK && c.PredLatency < lat {
			procs, lat, period, ok = c.StageProcs, c.PredLatency, 1/c.PredThroughput, true
		}
	}
	return procs, lat, period, ok
}

func sameProcs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func optimize(m Model, goal float64, maxModules int, allowDP bool) (Choice, error) {
	if err := m.Validate(); err != nil {
		return Choice{}, err
	}
	best := Choice{PredLatency: math.Inf(1)}
	for r := 1; r <= maxModules; r++ {
		per := m.P / r
		if per < 1 {
			break
		}
		// Per-module goal: the r modules share the stream round-robin, so
		// each must sustain a 1/r share of the overall goal.
		moduleGoal := goal / float64(r)

		procs, lat, period, ok := m.moduleBest(per, moduleGoal, allowDP)
		if !ok {
			continue
		}
		c := Choice{
			Modules: r, StageProcs: procs,
			PredLatency:    lat,
			PredThroughput: float64(r) / period,
		}

		// Distribute the P mod r leftover processors: the first rem modules
		// get one more, when the wider assignment is no worse. The mean
		// latency over modules can only improve, and each module still meets
		// its share of the goal, so this never loses to the homogeneous
		// split it replaces.
		if rem := m.P % r; rem > 0 {
			wProcs, wLat, wPeriod, wOK := m.moduleBest(per+1, moduleGoal, allowDP)
			if wOK && wLat <= lat && !sameProcs(wProcs, procs) {
				maxPeriod := period
				if wPeriod > maxPeriod {
					maxPeriod = wPeriod
				}
				c.WideModules, c.WideStageProcs = rem, wProcs
				c.PredLatency = (float64(rem)*wLat + float64(r-rem)*lat) / float64(r)
				c.PredThroughput = float64(r) / maxPeriod
			}
		}

		if c.PredLatency < best.PredLatency {
			best = c
		}
	}
	if math.IsInf(best.PredLatency, 1) {
		return Choice{}, fmt.Errorf("mapping: no mapping on %d processors reaches throughput %.3f", m.P, goal)
	}
	return best, nil
}

// pipelineDP finds the latency-minimal stage assignment on at most q
// processors with per-stage period <= 1/goal (goal 0 = unconstrained).
// State: f[s][u][p] = min latency of stages 0..s using u processors total
// with stage s on p processors.
func (m Model) pipelineDP(q int, goal float64) (Choice, bool) {
	nS := len(m.StageNames)
	limit := math.Inf(1)
	if goal > 0 {
		limit = 1 / goal
	}
	const inf = math.MaxFloat64
	// f[u][p] for current stage; iterate stages.
	f := make([][]float64, q+1)
	for u := range f {
		f[u] = make([]float64, q+1)
		for p := range f[u] {
			f[u][p] = inf
		}
	}
	// choice[s][u][p] = processors of stage s-1 in the best path.
	choice := make([][][]int16, nS)
	for s := range choice {
		choice[s] = make([][]int16, q+1)
		for u := range choice[s] {
			choice[s][u] = make([]int16, q+1)
			for p := range choice[s][u] {
				choice[s][u][p] = -1
			}
		}
	}
	cap0 := m.cap(0, q)
	for p := 1; p <= cap0; p++ {
		t := m.StageT[0][p]
		if t <= limit {
			f[p][p] = t
			choice[0][p][p] = 0
		}
	}
	for s := 1; s < nS; s++ {
		nf := make([][]float64, q+1)
		for u := range nf {
			nf[u] = make([]float64, q+1)
			for p := range nf[u] {
				nf[u][p] = inf
			}
		}
		capS := m.cap(s, q)
		for u := s; u <= q; u++ { // procs used by stages 0..s-1
			for pp := 1; pp <= u; pp++ {
				prev := f[u][pp]
				if prev >= inf {
					continue
				}
				for p := 1; p <= capS && u+p <= q; p++ {
					x := m.Xfer(s-1, pp, p)
					t := m.StageT[s][p]
					// The stage's period includes its inbound transfer.
					if t+x > limit {
						continue
					}
					cand := prev + x + t
					if cand < nf[u+p][p] {
						nf[u+p][p] = cand
						choice[s][u+p][p] = int16(pp)
					}
				}
			}
		}
		f = nf
	}
	bestLat := inf
	bestU, bestP := -1, -1
	for u := nS; u <= q; u++ {
		for p := 1; p <= u; p++ {
			if f[u][p] < bestLat {
				bestLat = f[u][p]
				bestU, bestP = u, p
			}
		}
	}
	if bestU < 0 {
		return Choice{}, false
	}
	// Reconstruct stage processor counts.
	procs := make([]int, nS)
	u, p := bestU, bestP
	for s := nS - 1; s >= 0; s-- {
		procs[s] = p
		pp := int(choice[s][u][p])
		u -= p
		p = pp
	}
	// Predicted throughput: 1 / max stage period.
	period := 0.0
	for s := 0; s < nS; s++ {
		t := m.StageT[s][procs[s]]
		if s > 0 {
			t += m.Xfer(s-1, procs[s-1], procs[s])
		}
		if t > period {
			period = t
		}
	}
	return Choice{
		Modules:        1,
		StageProcs:     procs,
		PredLatency:    bestLat,
		PredThroughput: 1 / period,
	}, true
}
