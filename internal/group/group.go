// Package group implements processor groups and task-partition templates —
// the structural half of the paper's task-parallelism model.
//
// A Group is an ordered set of physical processors; a processor's rank in
// the group is its virtual processor id, so a Group *is* the paper's
// virtual-to-physical processor mapping. A Partition is the realization of a
// TASK_PARTITION directive: it divides a parent group into named subgroups.
// The implementation is free to pick any assignment of physical processors
// to subgroups (Section 4); we use contiguous rank ranges in declaration
// order, which keeps subgroup communication local.
package group

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Group is an ordered set of physical processor ids. Rank r in the group is
// virtual processor r. Groups are immutable after creation.
//
// The overwhelmingly common shape — the world group and every contiguous
// subrange of it — maps virtual id r to physical id base+r, so those groups
// carry no rank map at all: lookups are arithmetic, and Subrange/Equal are
// O(1). That matters at scale: a P=65536 machine split into 1024 modules
// would otherwise materialize a fresh O(P) rank map on every processor that
// touches the partition, turning group bookkeeping into an O(P²) tax.
type Group struct {
	phys []int
	// contig marks phys[i] == base+i for all i; rank is then nil.
	contig bool
	base   int
	rank   map[int]int
}

// New creates a group over the given physical processors, in the given
// (virtual) order. It returns an error if the list is empty or contains
// duplicates.
func New(phys []int) (*Group, error) {
	if len(phys) == 0 {
		return nil, fmt.Errorf("group: empty processor list")
	}
	g := &Group{phys: append([]int(nil), phys...)}
	contig := true
	for i, id := range g.phys {
		if id != g.phys[0]+i {
			contig = false
			break
		}
	}
	if contig {
		g.contig, g.base = true, g.phys[0]
		return g, nil
	}
	g.rank = make(map[int]int, len(phys))
	for r, id := range g.phys {
		if _, dup := g.rank[id]; dup {
			return nil, fmt.Errorf("group: duplicate processor %d", id)
		}
		g.rank[id] = r
	}
	return g, nil
}

// MustNew is New but panics on error; for groups built from literals.
func MustNew(phys []int) *Group {
	g, err := New(phys)
	if err != nil {
		panic(err)
	}
	return g
}

// World returns the group of all n processors of a machine, identity-mapped
// (the startup mapping of Section 4).
func World(n int) *Group {
	phys := make([]int, n)
	for i := range phys {
		phys[i] = i
	}
	return MustNew(phys)
}

// Size returns the number of processors in the group.
func (g *Group) Size() int { return len(g.phys) }

// Phys returns the physical id of virtual processor r.
func (g *Group) Phys(r int) int {
	if r < 0 || r >= len(g.phys) {
		panic(fmt.Sprintf("group: virtual id %d out of range [0,%d)", r, len(g.phys)))
	}
	return g.phys[r]
}

// PhysAll returns a copy of the ordered physical id list.
func (g *Group) PhysAll() []int { return append([]int(nil), g.phys...) }

// RankOf returns the virtual id of physical processor id, or ok=false if the
// processor is not a member.
func (g *Group) RankOf(id int) (r int, ok bool) {
	if g.contig {
		r = id - g.base
		if r < 0 || r >= len(g.phys) {
			return 0, false
		}
		return r, true
	}
	r, ok = g.rank[id]
	return
}

// Contains reports whether physical processor id is a member.
func (g *Group) Contains(id int) bool {
	_, ok := g.RankOf(id)
	return ok
}

// Subrange returns the subgroup of virtual processors [lo, hi). Groups are
// immutable, so the subgroup shares the parent's backing storage; for
// contiguous groups this is allocation-free.
func (g *Group) Subrange(lo, hi int) *Group {
	if lo < 0 || hi > len(g.phys) || lo >= hi {
		panic(fmt.Sprintf("group: invalid subrange [%d,%d) of group of size %d", lo, hi, len(g.phys)))
	}
	if g.contig {
		return &Group{phys: g.phys[lo:hi], contig: true, base: g.base + lo}
	}
	return MustNew(g.phys[lo:hi])
}

// Equal reports whether two groups contain the same processors in the same
// virtual order.
func (g *Group) Equal(h *Group) bool {
	if g == h {
		return true
	}
	if len(g.phys) != len(h.phys) {
		return false
	}
	if g.contig && h.contig {
		return g.base == h.base
	}
	for i, id := range g.phys {
		if h.phys[i] != id {
			return false
		}
	}
	return true
}

// Union returns a group containing the members of both groups, ordered by
// physical id. It is used to compute the minimal participating set for
// parent-scope assignments between arrays mapped to different subgroups.
func Union(a, b *Group) *Group {
	seen := make(map[int]bool, a.Size()+b.Size())
	var ids []int
	for _, id := range a.phys {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for _, id := range b.phys {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return MustNew(ids)
}

func (g *Group) String() string {
	if len(g.phys) <= 8 {
		return fmt.Sprintf("group%v", g.phys)
	}
	return fmt.Sprintf("group[%d procs %d..%d]", len(g.phys), g.phys[0], g.phys[len(g.phys)-1])
}

// Spec names one subgroup of a partition and gives its processor count,
// mirroring one entry of a TASK_PARTITION directive.
type Spec struct {
	Name string
	Size int
}

// Sub is shorthand for constructing a Spec.
func Sub(name string, size int) Spec { return Spec{Name: name, Size: size} }

// Partition divides a parent group into named, disjoint subgroups whose
// sizes sum to the parent size — the realization of a TASK_PARTITION
// template. Subgroups occupy contiguous virtual-id ranges of the parent in
// declaration order.
type Partition struct {
	parent *Group
	specs  []Spec
	groups map[string]*Group
	order  []string
	// cum[i] is the first parent rank of subgroup i (cum[len(specs)] is the
	// parent size): membership resolves by rank lookup plus binary search,
	// with no per-processor table.
	cum []int
	// labelOnce/label cache the span label (see SpanLabel) so tracing a
	// wide partition does not rebuild the joined name list per processor.
	labelOnce sync.Once
	label     string
}

// NewPartition builds a partition of parent from the given specs. Every
// subgroup must have a unique non-empty name and a positive size, and the
// sizes must sum exactly to the parent group size (every current processor
// belongs to exactly one subgroup, as in the paper's examples).
func NewPartition(parent *Group, specs ...Spec) (*Partition, error) {
	if parent == nil {
		return nil, fmt.Errorf("group: nil parent for partition")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("group: partition needs at least one subgroup")
	}
	total := 0
	names := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("group: subgroup with empty name")
		}
		if names[s.Name] {
			return nil, fmt.Errorf("group: duplicate subgroup name %q", s.Name)
		}
		names[s.Name] = true
		if s.Size <= 0 {
			return nil, fmt.Errorf("group: subgroup %q has non-positive size %d", s.Name, s.Size)
		}
		total += s.Size
	}
	if total != parent.Size() {
		return nil, fmt.Errorf("group: subgroup sizes sum to %d but parent has %d processors", total, parent.Size())
	}
	p := &Partition{
		parent: parent,
		specs:  append([]Spec(nil), specs...),
		groups: make(map[string]*Group, len(specs)),
		cum:    make([]int, 1, len(specs)+1),
	}
	lo := 0
	for _, s := range specs {
		sub := parent.Subrange(lo, lo+s.Size)
		p.groups[s.Name] = sub
		p.order = append(p.order, s.Name)
		lo += s.Size
		p.cum = append(p.cum, lo)
	}
	return p, nil
}

// MustPartition is NewPartition but panics on error.
func MustPartition(parent *Group, specs ...Spec) *Partition {
	p, err := NewPartition(parent, specs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Parent returns the partitioned group.
func (p *Partition) Parent() *Group { return p.parent }

// Names returns subgroup names in declaration order.
func (p *Partition) Names() []string { return append([]string(nil), p.order...) }

// Group returns the named subgroup; it panics on an unknown name since that
// is a programming error analogous to referencing an undeclared subgroup.
func (p *Partition) Group(name string) *Group {
	g, ok := p.groups[name]
	if !ok {
		panic(fmt.Sprintf("group: unknown subgroup %q (have %v)", name, p.order))
	}
	return g
}

// SubgroupOf returns the name and group of the subgroup containing physical
// processor id, or ok=false if id is not in the parent group.
func (p *Partition) SubgroupOf(id int) (name string, g *Group, ok bool) {
	i, ok := p.IndexOf(id)
	if !ok {
		return "", nil, false
	}
	name = p.order[i]
	return name, p.groups[name], true
}

// IndexOf returns the declaration-order index of the subgroup containing
// physical processor id, or ok=false if id is not in the parent group.
func (p *Partition) IndexOf(id int) (int, bool) {
	r, ok := p.parent.RankOf(id)
	if !ok {
		return 0, false
	}
	// Subgroup i covers parent ranks [cum[i], cum[i+1]).
	return sort.SearchInts(p.cum[1:], r+1), true
}

// SpanLabel returns the partition's task-region span label
// ("region:<names joined by +>:<parent>"), computed once and cached — a
// wide partition's label is O(subgroups) to build, and every traced
// processor brackets the region with it.
func (p *Partition) SpanLabel() string {
	p.labelOnce.Do(func() {
		p.label = "region:" + strings.Join(p.order, "+") + ":" + p.parent.String()
	})
	return p.label
}

// EqualSplit partitions parent into k equally sized subgroups named
// name0..name{k-1} with the given prefix; the first (size mod k) subgroups
// get one extra processor. Used for replicated data parallelism.
func EqualSplit(parent *Group, prefix string, k int) (*Partition, error) {
	if k < 1 || k > parent.Size() {
		return nil, fmt.Errorf("group: cannot split %d processors into %d subgroups", parent.Size(), k)
	}
	specs := make([]Spec, k)
	base, extra := parent.Size()/k, parent.Size()%k
	for i := range specs {
		sz := base
		if i < extra {
			sz++
		}
		specs[i] = Spec{Name: fmt.Sprintf("%s%d", prefix, i), Size: sz}
	}
	return NewPartition(parent, specs...)
}
