package group

import (
	"testing"
	"testing/quick"
)

func TestWorld(t *testing.T) {
	g := World(8)
	if g.Size() != 8 {
		t.Fatalf("size = %d", g.Size())
	}
	for r := 0; r < 8; r++ {
		if g.Phys(r) != r {
			t.Errorf("Phys(%d) = %d, want identity", r, g.Phys(r))
		}
		if rank, ok := g.RankOf(r); !ok || rank != r {
			t.Errorf("RankOf(%d) = %d,%v", r, rank, ok)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := New([]int{1, 2, 1}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestNonContiguousGroup(t *testing.T) {
	g := MustNew([]int{5, 2, 9})
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.Phys(0) != 5 || g.Phys(1) != 2 || g.Phys(2) != 9 {
		t.Errorf("virtual order not preserved: %v", g.PhysAll())
	}
	if r, ok := g.RankOf(9); !ok || r != 2 {
		t.Errorf("RankOf(9) = %d,%v", r, ok)
	}
	if g.Contains(7) {
		t.Error("Contains(7) true")
	}
}

func TestSubrange(t *testing.T) {
	g := World(10)
	s := g.Subrange(3, 7)
	if s.Size() != 4 || s.Phys(0) != 3 || s.Phys(3) != 6 {
		t.Errorf("subrange wrong: %v", s.PhysAll())
	}
}

func TestSubrangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	World(4).Subrange(2, 2)
}

func TestEqual(t *testing.T) {
	a := World(4)
	b := MustNew([]int{0, 1, 2, 3})
	c := MustNew([]int{3, 2, 1, 0})
	if !a.Equal(b) {
		t.Error("equal groups reported unequal")
	}
	if a.Equal(c) {
		t.Error("different virtual orders reported equal")
	}
}

func TestUnion(t *testing.T) {
	a := MustNew([]int{4, 5})
	b := MustNew([]int{5, 6, 7})
	u := Union(a, b)
	want := []int{4, 5, 6, 7}
	got := u.PhysAll()
	if len(got) != len(want) {
		t.Fatalf("union = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
}

func TestPartitionBasic(t *testing.T) {
	parent := World(10)
	p, err := NewPartition(parent, Sub("some", 3), Sub("many", 7))
	if err != nil {
		t.Fatal(err)
	}
	some, many := p.Group("some"), p.Group("many")
	if some.Size() != 3 || many.Size() != 7 {
		t.Fatalf("sizes %d/%d", some.Size(), many.Size())
	}
	// Contiguous in declaration order.
	if some.Phys(0) != 0 || some.Phys(2) != 2 || many.Phys(0) != 3 {
		t.Errorf("assignment not contiguous: some=%v many=%v", some.PhysAll(), many.PhysAll())
	}
	name, g, ok := p.SubgroupOf(5)
	if !ok || name != "many" || !g.Equal(many) {
		t.Errorf("SubgroupOf(5) = %q,%v,%v", name, g, ok)
	}
	if _, _, ok := p.SubgroupOf(11); ok {
		t.Error("SubgroupOf accepted non-member")
	}
	names := p.Names()
	if len(names) != 2 || names[0] != "some" || names[1] != "many" {
		t.Errorf("Names() = %v", names)
	}
}

func TestPartitionErrors(t *testing.T) {
	parent := World(10)
	cases := []struct {
		name  string
		specs []Spec
	}{
		{"sum too small", []Spec{Sub("a", 3), Sub("b", 3)}},
		{"sum too large", []Spec{Sub("a", 8), Sub("b", 8)}},
		{"zero size", []Spec{Sub("a", 0), Sub("b", 10)}},
		{"negative size", []Spec{Sub("a", -1), Sub("b", 11)}},
		{"duplicate name", []Spec{Sub("a", 5), Sub("a", 5)}},
		{"empty name", []Spec{Sub("", 10)}},
		{"no specs", nil},
	}
	for _, tc := range cases {
		if _, err := NewPartition(parent, tc.specs...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewPartition(nil, Sub("a", 1)); err == nil {
		t.Error("nil parent accepted")
	}
}

func TestUnknownSubgroupPanics(t *testing.T) {
	p := MustPartition(World(4), Sub("a", 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Group("b")
}

// Property: a partition assigns every parent processor to exactly one
// subgroup, and subgroups are disjoint with declared sizes.
func TestPartitionCoversParentProperty(t *testing.T) {
	f := func(seed uint8, cuts [3]uint8) bool {
		n := int(seed%29) + 2 // parent size 2..30
		parent := World(n)
		// Build 2..4 positive sizes summing to n.
		k := int(cuts[0]%3) + 2
		if k > n {
			k = n
		}
		sizes := make([]int, k)
		rest := n
		for i := 0; i < k-1; i++ {
			max := rest - (k - 1 - i)
			s := int(cuts[i%3])%max + 1
			sizes[i] = s
			rest -= s
		}
		sizes[k-1] = rest
		specs := make([]Spec, k)
		for i, s := range sizes {
			specs[i] = Spec{Name: string(rune('a' + i)), Size: s}
		}
		p, err := NewPartition(parent, specs...)
		if err != nil {
			return false
		}
		seen := make(map[int]int)
		for _, name := range p.Names() {
			g := p.Group(name)
			for _, id := range g.PhysAll() {
				seen[id]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualSplit(t *testing.T) {
	p, err := EqualSplit(World(10), "g", 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{p.Group("g0").Size(), p.Group("g1").Size(), p.Group("g2").Size()}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := EqualSplit(World(2), "g", 3); err == nil {
		t.Error("oversplit accepted")
	}
	if _, err := EqualSplit(World(2), "g", 0); err == nil {
		t.Error("k=0 accepted")
	}
}
