package fx

import (
	"sync"
	"testing"

	"fxpar/internal/group"
)

func TestSectionsExplicitSizes(t *testing.T) {
	m := testMachine(6)
	var mu sync.Mutex
	np := map[string]int{}
	Run(m, func(p *Proc) {
		Sections(p,
			Section{Name: "a", Procs: 2, Body: func() {
				mu.Lock()
				np["a"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
			Section{Name: "b", Procs: 4, Body: func() {
				mu.Lock()
				np["b"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
		)
	})
	if np["a"] != 2 || np["b"] != 4 {
		t.Errorf("np = %v", np)
	}
}

func TestSectionsFlexibleSizes(t *testing.T) {
	m := testMachine(7)
	var mu sync.Mutex
	sizes := map[string]int{}
	Run(m, func(p *Proc) {
		Sections(p,
			Section{Name: "fixed", Procs: 3, Body: func() {
				mu.Lock()
				sizes["fixed"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
			Section{Name: "f1", Body: func() {
				mu.Lock()
				sizes["f1"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
			Section{Name: "f2", Body: func() {
				mu.Lock()
				sizes["f2"] = p.NumberOfProcessors()
				mu.Unlock()
			}},
		)
	})
	if sizes["fixed"] != 3 || sizes["f1"] != 2 || sizes["f2"] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestSectionsRunConcurrently(t *testing.T) {
	// Two sections with very different costs: the makespan is the max, not
	// the sum.
	m := testMachine(2)
	stats := Run(m, func(p *Proc) {
		Sections(p,
			Section{Name: "slow", Procs: 1, Body: func() { p.Compute(1e6) }},
			Section{Name: "fast", Procs: 1, Body: func() { p.Compute(1e3) }},
		)
	})
	if mk := stats.MakespanTime(); mk > 1.1 {
		t.Errorf("makespan %.3f suggests serialization", mk)
	}
	if stats.Procs[1].Finish > 0.01 {
		t.Errorf("fast section finished at %.4f", stats.Procs[1].Finish)
	}
}

func TestSectionsOverclaimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	Run(m, func(p *Proc) {
		Sections(p,
			Section{Procs: 2, Body: func() {}},
			Section{Procs: 1, Body: func() {}},
		)
	})
}

func TestSectionsUnderclaimWithoutFlexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	Run(m, func(p *Proc) {
		Sections(p, Section{Procs: 2, Body: func() {}})
	})
}

func TestSectionsEmptyAndNilBody(t *testing.T) {
	m := testMachine(2)
	Run(m, func(p *Proc) {
		Sections(p) // no sections: no-op
		Sections(p, Section{Procs: 1, Body: nil}, Section{Procs: 1, Body: func() {}})
	})
}

func TestSectionsNestInsideOn(t *testing.T) {
	m := testMachine(8)
	var mu sync.Mutex
	leaves := 0
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("half1", 4), group.Sub("half2", 4))
		p.TaskRegion(part, func(r *Region) {
			r.On("half1", func() {
				Sections(p,
					Section{Body: func() {
						mu.Lock()
						leaves++
						mu.Unlock()
					}},
					Section{Body: func() {
						mu.Lock()
						leaves++
						mu.Unlock()
					}},
				)
			})
		})
	})
	if leaves != 4 {
		t.Errorf("leaves = %d, want 4 (2 sections x 2 procs)", leaves)
	}
}
