package fx

import (
	"math"
	"sync"
	"testing"

	"fxpar/internal/dist"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.CostModel{
		FlopRate: 1e6, Alpha: 1e-4, Beta: 1e-7, SendOverhead: 1e-5, IORate: 1e6,
	})
}

func TestRunWorldGroup(t *testing.T) {
	m := testMachine(6)
	Run(m, func(p *Proc) {
		if p.NumberOfProcessors() != 6 {
			t.Errorf("NP = %d", p.NumberOfProcessors())
		}
		if p.VP() != p.ID() {
			t.Errorf("VP %d != ID %d at top level", p.VP(), p.ID())
		}
		if p.Depth() != 1 {
			t.Errorf("depth = %d", p.Depth())
		}
	})
}

func TestTaskRegionOnSubgroup(t *testing.T) {
	m := testMachine(8)
	var mu sync.Mutex
	ranSome := map[int]bool{}
	ranMany := map[int]bool{}
	ranParent := map[int]bool{}
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("some", 3), group.Sub("many", 5))
		p.TaskRegion(part, func(r *Region) {
			r.On("some", func() {
				if p.NumberOfProcessors() != 3 {
					t.Errorf("NP inside some = %d", p.NumberOfProcessors())
				}
				if p.Depth() != 2 {
					t.Errorf("depth inside On = %d", p.Depth())
				}
				mu.Lock()
				ranSome[p.ID()] = true
				mu.Unlock()
			})
			mu.Lock()
			ranParent[p.ID()] = true
			mu.Unlock()
			r.On("many", func() {
				if p.NumberOfProcessors() != 5 {
					t.Errorf("NP inside many = %d", p.NumberOfProcessors())
				}
				mu.Lock()
				ranMany[p.ID()] = true
				mu.Unlock()
			})
		})
		if p.Depth() != 1 {
			t.Errorf("depth after region = %d", p.Depth())
		}
	})
	if len(ranSome) != 3 || len(ranMany) != 5 || len(ranParent) != 8 {
		t.Errorf("participation: some=%d many=%d parent=%d", len(ranSome), len(ranMany), len(ranParent))
	}
	for id := range ranSome {
		if ranMany[id] {
			t.Errorf("proc %d ran both subgroups", id)
		}
	}
}

func TestMySubgroupAndOnAny(t *testing.T) {
	m := testMachine(4)
	var mu sync.Mutex
	counts := map[string]int{}
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 1), group.Sub("b", 3))
		p.TaskRegion(part, func(r *Region) {
			name := r.MySubgroup()
			r.OnAny(map[string]func(){
				"a": func() {
					if name != "a" {
						t.Errorf("proc %d: MySubgroup %q but ran a", p.ID(), name)
					}
					mu.Lock()
					counts["a"]++
					mu.Unlock()
				},
				"b": func() {
					mu.Lock()
					counts["b"]++
					mu.Unlock()
				},
			})
		})
	})
	if counts["a"] != 1 || counts["b"] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDynamicNestedPartition(t *testing.T) {
	// Recursive halving down to single processors, like quicksort.
	m := testMachine(8)
	var mu sync.Mutex
	leaves := map[int]int{}
	var recurse func(p *Proc, depth int)
	recurse = func(p *Proc, depth int) {
		np := p.NumberOfProcessors()
		if np == 1 {
			mu.Lock()
			leaves[p.ID()] = depth
			mu.Unlock()
			return
		}
		part := p.Partition(group.Sub("lo", np/2), group.Sub("hi", np-np/2))
		p.TaskRegion(part, func(r *Region) {
			r.On("lo", func() { recurse(p, depth+1) })
			r.On("hi", func() { recurse(p, depth+1) })
		})
	}
	Run(m, func(p *Proc) { recurse(p, 0) })
	if len(leaves) != 8 {
		t.Fatalf("leaves = %v", leaves)
	}
	for id, d := range leaves {
		if d != 3 {
			t.Errorf("proc %d reached depth %d, want 3", id, d)
		}
	}
}

func TestLexicalNestingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lexically nested task region")
		}
	}()
	m := testMachine(4)
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
		p.TaskRegion(part, func(r *Region) {
			part2 := p.Partition(group.Sub("x", 2), group.Sub("y", 2))
			p.TaskRegion(part2, func(*Region) {}) // lexical nesting: illegal
		})
	})
}

func TestPartitionWrongGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
		p.TaskRegion(part, func(r *Region) {
			r.On("a", func() {
				// part partitions the world, not subgroup a.
				p.TaskRegion(part, func(*Region) {})
			})
		})
	})
}

func TestOnProcs(t *testing.T) {
	m := testMachine(6)
	var mu sync.Mutex
	ran := map[int]bool{}
	Run(m, func(p *Proc) {
		p.OnProcs(2, 5, func() {
			if p.NumberOfProcessors() != 3 {
				t.Errorf("NP = %d", p.NumberOfProcessors())
			}
			mu.Lock()
			ran[p.ID()] = true
			mu.Unlock()
		})
	})
	if len(ran) != 3 || !ran[2] || !ran[3] || !ran[4] {
		t.Errorf("ran = %v", ran)
	}
}

func TestOnProcsInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	Run(m, func(p *Proc) { p.OnProcs(1, 1, func() {}) })
}

func TestBarrierOnSubgroupDoesNotBlockOthers(t *testing.T) {
	// Subgroup "slow" computes and barriers internally; subgroup "fast"
	// must finish with a small clock (it never waits for slow).
	m := testMachine(4)
	stats := Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("slow", 2), group.Sub("fast", 2))
		p.TaskRegion(part, func(r *Region) {
			r.On("slow", func() {
				p.Compute(1e6) // 1 virtual second
				p.Barrier()
			})
			r.On("fast", func() {
				p.Compute(10)
				p.Barrier()
			})
		})
	})
	for _, ps := range stats.Procs[2:4] {
		if ps.Finish > 0.01 {
			t.Errorf("fast proc %d finished at %g, was blocked by slow subgroup", ps.ID, ps.Finish)
		}
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Two-stage pipeline over disjoint subgroups exchanging arrays: with
	// minimal-subset assignment the makespan is ~m*stageTime + fill, not
	// ~2*m*stageTime. Each stage costs 0.1 virtual seconds per data set.
	const mSets = 10
	const stageFlops = 1e5 // 0.1 s at 1 MFLOP/s
	m := testMachine(2)
	stats := Run(m, func(p *Proc) {
		g1 := group.MustNew([]int{0})
		g2 := group.MustNew([]int{1})
		a := dist.New[float64](p.Proc, dist.RowBlock2D(g1, 4, 4))
		b := dist.New[float64](p.Proc, dist.RowBlock2D(g2, 4, 4))
		part := p.Partition(group.Sub("s1", 1), group.Sub("s2", 1))
		p.TaskRegion(part, func(r *Region) {
			for i := 0; i < mSets; i++ {
				r.On("s1", func() { p.Compute(stageFlops) })
				dist.Assign(p.Proc, b, a)
				r.On("s2", func() { p.Compute(stageFlops) })
			}
		})
	})
	makespan := stats.MakespanTime()
	perStage := 0.1
	serial := 2 * mSets * perStage
	pipelined := (mSets + 1) * perStage
	if makespan > serial*0.75 {
		t.Errorf("makespan %.3f ~ serial %.3f: pipeline did not overlap", makespan, serial)
	}
	if makespan < pipelined*0.9 {
		t.Errorf("makespan %.3f below pipelined bound %.3f: clock accounting broken", makespan, pipelined)
	}
}

func TestReplicatedScalarNoCommunication(t *testing.T) {
	// Loop control on replicated scalars must not communicate (Section 4).
	m := testMachine(4)
	stats := Run(m, func(p *Proc) {
		sum := 0
		for i := 0; i < 100; i++ {
			sum += i
		}
		if sum != 4950 {
			t.Errorf("replicated computation wrong: %d", sum)
		}
	})
	for _, ps := range stats.Procs {
		if ps.MsgsSent != 0 {
			t.Errorf("proc %d sent %d messages for replicated scalar code", ps.ID, ps.MsgsSent)
		}
	}
}

func TestBcastValAllReduce(t *testing.T) {
	m := testMachine(5)
	Run(m, func(p *Proc) {
		v := BcastVal(p, 2, p.VP()*10)
		if v != 20 {
			t.Errorf("BcastVal = %d", v)
		}
		s := AllReduce(p, 1, func(a, b int) int { return a + b })
		if s != 5 {
			t.Errorf("AllReduce = %d", s)
		}
	})
}

func TestVarAccessRules(t *testing.T) {
	m := testMachine(4)
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
		av := NewVar[float64](p, part.Group("a"))
		p.TaskRegion(part, func(r *Region) {
			r.On("a", func() {
				av.Set(3.5) // subgroup scope: legal
				if av.Get() != 3.5 {
					t.Error("Var lost value")
				}
			})
			// Parent scope: owner members may access (owner contained in
			// current group).
			if part.Group("a").Contains(p.ID()) {
				_ = av.Get()
			}
		})
	})
}

func TestVarNonMemberPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
		av := NewVar[int](p, part.Group("a"))
		p.TaskRegion(part, func(r *Region) {
			r.On("b", func() {
				av.Set(1) // b members do not own av
			})
		})
	})
}

func TestVarUnrelatedGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	Run(m, func(p *Proc) {
		part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
		// Variable owned by {0,2}: overlaps both subgroups, related to
		// neither.
		weird := NewVar[int](p, group.MustNew([]int{0, 2}))
		p.TaskRegion(part, func(r *Region) {
			r.On("a", func() {
				if p.ID() == 0 {
					weird.Set(1)
				}
			})
		})
	})
}

func TestUnbalancedStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbalanced mapping stack")
		}
	}()
	m := testMachine(2)
	Run(m, func(p *Proc) {
		p.push(group.MustNew([]int{p.ID()}))
	})
}

func TestFigure1ParallelSections(t *testing.T) {
	// The structure of Figure 1: proca on Agroup and procb on Bgroup run
	// independently for m iterations, exchanging boundary data through a
	// parent-scope transfer. Verifies values flow between subgroups.
	const iters = 3
	m := testMachine(4)
	Run(m, func(p *Proc) {
		gA := group.MustNew([]int{0, 1})
		gB := group.MustNew([]int{2, 3})
		a := dist.New[float64](p.Proc, dist.RowBlock2D(gA, 4, 4))
		b := dist.New[float64](p.Proc, dist.RowBlock2D(gB, 4, 4))
		if a.IsMember() {
			a.FillFunc(func(idx []int) float64 { return 1 })
		}
		part := p.Partition(group.Sub("Agroup", 2), group.Sub("Bgroup", 2))
		p.TaskRegion(part, func(r *Region) {
			for i := 0; i < iters; i++ {
				r.On("Agroup", func() {
					for j, v := range a.Local() {
						a.Local()[j] = v + 1
					}
					p.Barrier()
				})
				// transfer: B gets A's data (parent scope).
				dist.Assign(p.Proc, b, a)
				r.On("Bgroup", func() {
					p.Barrier()
				})
			}
		})
		if b.IsMember() {
			want := 1.0 + iters
			for _, v := range b.Local() {
				if math.Abs(v-want) > 1e-12 {
					t.Errorf("proc %d: b = %v, want %v", p.ID(), v, want)
				}
			}
		}
	})
}
