package fx_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// Example reproduces the code fragment of Section 2.1: a task partition
// into subgroups "some" and "many", ON blocks on each, and a parent-scope
// assignment between their variables.
func Example() {
	mach := machine.New(8, sim.Paragon())
	var mu sync.Mutex
	var lines []string
	say := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	fx.Run(mach, func(p *fx.Proc) {
		part := p.Partition(
			group.Sub("some", 5),
			group.Sub("many", p.NumberOfProcessors()-5),
		)
		someLow := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("some"), 5, 2))
		manyLow := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("many"), 5, 2))
		p.TaskRegion(part, func(r *fx.Region) {
			r.On("some", func() {
				if p.VP() == 0 {
					say("some computes on %d processors", p.NumberOfProcessors())
				}
				someLow.FillFunc(func(idx []int) float64 { return 7 })
			})
			dist.Assign(p.Proc, manyLow, someLow) // many_low = some_low
			r.On("many", func() {
				if p.VP() == 0 {
					say("many computes on %d processors, got %.0f", p.NumberOfProcessors(), manyLow.At(0, 0))
				}
			})
		})
	})
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// many computes on 3 processors, got 7
	// some computes on 5 processors
}

// ExampleSections shows the parallel-sections pattern of Section 3.1.
func ExampleSections() {
	mach := machine.New(4, sim.Paragon())
	var mu sync.Mutex
	var lines []string
	fx.Run(mach, func(p *fx.Proc) {
		fx.Sections(p,
			fx.Section{Name: "proca", Procs: 1, Body: func() {
				mu.Lock()
				lines = append(lines, "proca ran")
				mu.Unlock()
			}},
			fx.Section{Name: "procb", Body: func() { // flexible: gets the rest
				if p.VP() == 0 {
					mu.Lock()
					lines = append(lines, fmt.Sprintf("procb ran on %d procs", p.NumberOfProcessors()))
					mu.Unlock()
				}
			}},
		)
	})
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// proca ran
	// procb ran on 3 procs
}
