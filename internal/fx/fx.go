// Package fx implements the paper's integrated task- and data-parallelism
// model as a library-level SPMD runtime — the primary contribution of
// Subhlok & Yang (PPoPP '97).
//
// Programs are Go closures executed by every simulated processor. The four
// directives of the paper map onto API calls:
//
//	TASK_PARTITION p :: a(n), b(m)   ->   part := p.Partition(group.Sub("a", n), group.Sub("b", m))
//	BEGIN/END TASK_REGION            ->   p.TaskRegion(part, func(r *fx.Region) { ... })
//	ON SUBGROUP a ... END ON         ->   r.On("a", func() { ... })
//	SUBGROUP(a) :: x                 ->   x := dist.New[...](p, layoutOver(part.Group("a")))
//
// Each processor keeps a stack of processor groups — the paper's stack of
// virtual-to-physical processor mappings (Section 4). The top of the stack
// is the *current* group; NumberOfProcessors() and VP() are relative to it.
// Entering an On block pushes the subgroup; leaving pops it. Processors that
// are not members of an On block's subgroup skip past it without
// synchronizing, which is what allows pipelined task parallelism.
//
// Scalars are replicated by construction: every simulated processor runs the
// same closure with its own copy of every Go local, exactly the "replicate
// all unmapped scalars" rule of Section 4.
package fx

import (
	"fmt"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Observability: when a tracer is installed on the machine, the runtime
// emits a named span for every task region and every On/OnAny/OnProcs block.
// Span labels follow the "op:detail:group[...]" convention shared with the
// comm collectives, so internal/metrics can aggregate by (group, operation)
// and internal/trace can attribute critical-path time to pipeline stages.
// The Event.Depth recorded with each fx span equals the mapping-stack depth
// of the scope it brackets minus one (the world frame opens no span), so
// nested task parallelism is visible in the trace. All span work is guarded
// by Tracing(); untraced runs pay nothing.

// regionLabel returns the span label for a task region over part; the
// partition caches it, so wide partitions build the joined name list once.
func regionLabel(part *group.Partition) string {
	return part.SpanLabel()
}

// onLabel builds the span label for an On block entering subgroup name.
func onLabel(name string, sub *group.Group) string {
	return "on:" + name + ":" + sub.String()
}

// frame is one level of the processor-mapping stack.
type frame struct {
	g        *group.Group
	inRegion bool // a task region is active at this level
}

// Proc is the per-processor SPMD view. It embeds the simulated machine
// processor, so low-level Send/Recv/Compute are directly available.
type Proc struct {
	*machine.Proc
	stack []frame
}

// Run executes body as an SPMD program over all processors of m, with the
// group of all processors as the initial current group (the identity mapping
// of Section 4), and returns per-processor virtual-time statistics.
func Run(m *machine.Machine, body func(*Proc)) machine.RunStats {
	world := group.World(m.N())
	return m.Run(func(mp *machine.Proc) {
		p := &Proc{Proc: mp, stack: []frame{{g: world}}}
		body(p)
		if len(p.stack) != 1 {
			panic(fmt.Sprintf("fx: processor %d finished with %d mapping frames on the stack", mp.ID(), len(p.stack)))
		}
	})
}

// Group returns the current processor group (top of the mapping stack).
func (p *Proc) Group() *group.Group { return p.stack[len(p.stack)-1].g }

// NumberOfProcessors returns the size of the current group — the paper's
// NUMBER_OF_PROCESSORS() intrinsic.
func (p *Proc) NumberOfProcessors() int { return p.Group().Size() }

// VP returns this processor's virtual id within the current group.
func (p *Proc) VP() int {
	r, ok := p.Group().RankOf(p.ID())
	if !ok {
		panic(fmt.Sprintf("fx: processor %d is not a member of its own current group", p.ID()))
	}
	return r
}

// Depth returns the nesting depth of the mapping stack (1 = top level).
func (p *Proc) Depth() int { return len(p.stack) }

// Barrier synchronizes the current group.
func (p *Proc) Barrier() { comm.Barrier(p.Proc, p.Group()) }

// Partition declares a TASK_PARTITION template over the current group.
// Subgroup sizes must sum to NumberOfProcessors(); sizes may be computed
// from runtime values (the paper allows expressions over procedure
// parameters). Every member of the current group must execute the same call.
func (p *Proc) Partition(specs ...group.Spec) *group.Partition {
	part, err := group.NewPartition(p.Group(), specs...)
	if err != nil {
		panic(fmt.Sprintf("fx: processor %d: %v", p.ID(), err))
	}
	return part
}

// Region is the handle available inside a task region. Code run directly on
// it is in the *parent scope* (executed by the whole partitioned group);
// On() enters *subgroup scope*.
type Region struct {
	p    *Proc
	part *group.Partition
}

// TaskRegion activates part — which must partition the current group — and
// runs body with the region handle. This is BEGIN/END TASK_REGION. Lexical
// nesting of task regions is not permitted (per the paper); dynamic nesting
// through an On block is.
//
// No barrier is implied at entry or exit: synchronization comes only from
// data movement, which is what lets consecutive region iterations pipeline.
func (p *Proc) TaskRegion(part *group.Partition, body func(*Region)) {
	top := &p.stack[len(p.stack)-1]
	if top.inRegion {
		panic(fmt.Sprintf("fx: processor %d: lexically nested task region (use a procedure called from an ON block for dynamic nesting)", p.ID()))
	}
	if !part.Parent().Equal(top.g) {
		panic(fmt.Sprintf("fx: processor %d: partition parent %v does not match current group %v", p.ID(), part.Parent(), top.g))
	}
	top.inRegion = true
	defer func() { p.stack[len(p.stack)-1].inRegion = false }()
	if p.Tracing() {
		p.BeginSpan(regionLabel(part))
		defer p.EndSpan()
	}
	body(&Region{p: p, part: part})
}

// Partition returns the partition this region activated.
func (r *Region) Partition() *group.Partition { return r.part }

// Group returns the named subgroup of the active partition. Any member of
// the region may call it (e.g. to address another subgroup in parent scope).
func (r *Region) Group(name string) *group.Group { return r.part.Group(name) }

// MySubgroup returns the name of the subgroup containing this processor.
func (r *Region) MySubgroup() string {
	name, _, ok := r.part.SubgroupOf(r.p.ID())
	if !ok {
		panic(fmt.Sprintf("fx: processor %d not assigned to any subgroup", r.p.ID()))
	}
	return name
}

// On executes body on the named subgroup only — the ON SUBGROUP directive.
// Members enter with the subgroup pushed as the current group (their
// mapping stack grows, per Section 4); non-members return immediately
// without synchronizing, which is what lets them "skip past the region".
func (r *Region) On(name string, body func()) {
	sub := r.part.Group(name)
	if !sub.Contains(r.p.ID()) {
		return
	}
	r.p.push(sub)
	defer r.p.pop()
	if r.p.Tracing() {
		r.p.BeginSpan(onLabel(name, sub))
		defer r.p.EndSpan()
	}
	body()
}

// OnAny runs the body selected by this processor's subgroup: bodies maps
// subgroup name to the code for that subgroup. Missing names simply skip.
// It is sugar for writing several disjoint On blocks.
func (r *Region) OnAny(bodies map[string]func()) {
	name, sub, ok := r.part.SubgroupOf(r.p.ID())
	if !ok {
		return
	}
	body, ok := bodies[name]
	if !ok {
		return
	}
	r.p.push(sub)
	defer r.p.pop()
	if r.p.Tracing() {
		r.p.BeginSpan(onLabel(name, sub))
		defer r.p.EndSpan()
	}
	body()
}

func (p *Proc) push(g *group.Group) { p.stack = append(p.stack, frame{g: g}) }

func (p *Proc) pop() { p.stack = p.stack[:len(p.stack)-1] }

// OnProcs runs body on the rectilinear subset [lo, hi) of the current
// group's virtual processors, without a declared partition. This models the
// HPF 2.0 approved-extension style ON clause the paper compares against
// (Section 6): more flexible (the subset may be computed at run time), but
// restricted to rectilinear subsets. Non-members skip.
func (p *Proc) OnProcs(lo, hi int, body func()) {
	g := p.Group()
	if lo < 0 || hi > g.Size() || lo >= hi {
		panic(fmt.Sprintf("fx: OnProcs invalid range [%d,%d) of %d processors", lo, hi, g.Size()))
	}
	r := -1
	if rr, ok := g.RankOf(p.ID()); ok {
		r = rr
	}
	if r < lo || r >= hi {
		return
	}
	sub := g.Subrange(lo, hi)
	p.push(sub)
	defer p.pop()
	if p.Tracing() {
		p.BeginSpan(onLabel(fmt.Sprintf("[%d,%d)", lo, hi), sub))
		defer p.EndSpan()
	}
	body()
}

// Bcast broadcasts data from virtual processor root of the current group.
func Bcast[T any](p *Proc, root int, data []T) []T {
	return comm.Bcast(p.Proc, p.Group(), root, data)
}

// BcastVal broadcasts a single value from virtual processor root.
func BcastVal[T any](p *Proc, root int, v T) T {
	out := comm.Bcast(p.Proc, p.Group(), root, []T{v})
	return out[0]
}

// AllReduce combines x across the current group.
func AllReduce[T any](p *Proc, x T, op func(a, b T) T) T {
	return comm.AllReduce(p.Proc, p.Group(), x, op)
}

// Var is a subgroup-mapped scalar variable: the library analogue of a
// SUBGROUP-mapped variable that is not an array. It checks the paper's
// access rule — subgroup variables may be accessed only when the current
// group is (a subset of) the owner — which the Fx compiler enforced
// statically.
type Var[T any] struct {
	owner *group.Group
	val   T
	p     *Proc
}

// NewVar declares a scalar mapped to owner. Every processor may hold the
// descriptor; only owner members may Get/Set while executing inside owner.
func NewVar[T any](p *Proc, owner *group.Group) *Var[T] {
	return &Var[T]{owner: owner, p: p}
}

func (v *Var[T]) check(op string) {
	if !v.owner.Contains(v.p.ID()) {
		panic(fmt.Sprintf("fx: %s of subgroup variable by non-member processor %d (owner %v)", op, v.p.ID(), v.owner))
	}
	// Legal scopes per Section 2.1: subgroup scope (current group contained
	// in the owner) or parent scope (owner contained in the current group).
	cur := v.p.Group()
	contained := func(inner, outer *group.Group) bool {
		for _, id := range inner.PhysAll() {
			if !outer.Contains(id) {
				return false
			}
		}
		return true
	}
	if !contained(cur, v.owner) && !contained(v.owner, cur) {
		panic(fmt.Sprintf("fx: %s of subgroup variable owned by %v from unrelated group %v", op, v.owner, cur))
	}
}

// Get returns the variable's value after checking the access rule.
func (v *Var[T]) Get() T {
	v.check("read")
	return v.val
}

// Set stores the variable's value after checking the access rule.
func (v *Var[T]) Set(x T) {
	v.check("write")
	v.val = x
}
