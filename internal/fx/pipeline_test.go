package fx

import (
	"testing"

	"fxpar/internal/dist"
	"fxpar/internal/group"
)

func TestPipelineLoopRunsAllSetsInOrder(t *testing.T) {
	m := testMachine(3)
	var got []int64
	Run(m, func(p *Proc) {
		g1 := group.MustNew([]int{0})
		g2 := group.MustNew([]int{1, 2})
		a := dist.New[int64](p.Proc, dist.MustLayout(g1, []int{4}, []dist.Axis{dist.BlockAxis()}, []int{1}))
		b := dist.New[int64](p.Proc, dist.MustLayout(g2, []int{4}, []dist.Axis{dist.BlockAxis()}, []int{2}))
		PipelineLoop(p, PipelineSpec{
			Sets: 5,
			Stages: []Stage{
				{Name: "produce", Procs: 1, Body: func(set int) {
					a.FillFunc(func(idx []int) int64 { return int64(set*10 + idx[0]) })
					p.Compute(1e4)
				}},
				{Name: "consume", Procs: 2, Body: func(set int) {
					p.Compute(1e4)
					if b.Rank() == 0 {
						got = append(got, b.At(0))
					}
				}},
			},
			Transfer: []func(int){func(set int) { dist.Assign(p.Proc, b, a) }},
		})
	})
	if len(got) != 5 {
		t.Fatalf("consumed %d sets", len(got))
	}
	for set, v := range got {
		if v != int64(set*10) {
			t.Errorf("set %d saw %d", set, v)
		}
	}
}

func TestPipelineLoopOverlaps(t *testing.T) {
	// 2 stages x 0.01 vs each, 10 sets: pipelined makespan ~0.11 vs, serial
	// would be ~0.2 vs.
	m := testMachine(2)
	stats := Run(m, func(p *Proc) {
		g1 := group.MustNew([]int{0})
		g2 := group.MustNew([]int{1})
		a := dist.New[float64](p.Proc, dist.MustLayout(g1, []int{2}, []dist.Axis{dist.BlockAxis()}, []int{1}))
		b := dist.New[float64](p.Proc, dist.MustLayout(g2, []int{2}, []dist.Axis{dist.BlockAxis()}, []int{1}))
		PipelineLoop(p, PipelineSpec{
			Sets: 10,
			Stages: []Stage{
				{Procs: 1, Body: func(int) { p.Compute(1e4) }},
				{Procs: 1, Body: func(int) { p.Compute(1e4) }},
			},
			Transfer: []func(int){func(int) { dist.Assign(p.Proc, b, a) }},
		})
	})
	if mk := stats.MakespanTime(); mk > 0.15 {
		t.Errorf("makespan %.3f: pipeline did not overlap", mk)
	}
}

func TestPipelineLoopStride(t *testing.T) {
	m := testMachine(2)
	var sets []int
	Run(m, func(p *Proc) {
		PipelineLoop(p, PipelineSpec{
			Sets: 10, First: 1, Stride: 3,
			Stages: []Stage{
				{Procs: 1, Body: func(set int) {
					if p.VP() == 0 {
						sets = append(sets, set)
					}
				}},
				{Procs: 1, Body: nil},
			},
			Transfer: []func(int){nil},
		})
	})
	want := []int{1, 4, 7}
	if len(sets) != len(want) {
		t.Fatalf("sets = %v", sets)
	}
	for i := range want {
		if sets[i] != want[i] {
			t.Errorf("sets = %v, want %v", sets, want)
		}
	}
}

func TestPipelineLoopBadTransfersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	Run(m, func(p *Proc) {
		PipelineLoop(p, PipelineSpec{
			Sets:   1,
			Stages: []Stage{{Procs: 1}, {Procs: 1}},
		})
	})
}
