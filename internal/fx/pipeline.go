package fx

import (
	"fmt"

	"fxpar/internal/group"
)

// Stage describes one stage of a data-parallel pipeline: a named subgroup
// size and the per-data-set computation to run on it.
type Stage struct {
	Name  string
	Procs int
	// Body processes one data set on the stage's subgroup.
	Body func(set int)
}

// PipelineSpec describes a stream pipeline in the shape of Figure 2(c):
// stages connected by parent-scope transfers, processing data sets first,
// first+stride, ... < sets.
type PipelineSpec struct {
	Stages []Stage
	// Transfer[i] moves one data set's output of stage i to stage i+1 in
	// parent scope (typically a dist.Assign or dist.Transpose2D closure
	// over subgroup arrays); len must be len(Stages)-1. Entries may be nil
	// when adjacent stages share data another way.
	Transfer []func(set int)
	Sets     int
	First    int // first data set index (default 0)
	Stride   int // data set stride (default 1; >1 for replicated modules)
}

// PipelineLoop runs the pipeline on the current group: it declares the
// TASK_PARTITION from the stage sizes, opens the task region, and for each
// data set runs every stage inside its ON block with the transfers between
// them — the exact code shape of the paper's FFT-Hist program. Stage sizes
// must sum to the current group size.
func PipelineLoop(p *Proc, spec PipelineSpec) {
	if len(spec.Stages) == 0 {
		return
	}
	if len(spec.Transfer) != len(spec.Stages)-1 {
		panic(fmt.Sprintf("fx: pipeline with %d stages needs %d transfers, got %d",
			len(spec.Stages), len(spec.Stages)-1, len(spec.Transfer)))
	}
	stride := spec.Stride
	if stride == 0 {
		stride = 1
	}
	specs := make([]group.Spec, len(spec.Stages))
	for i, s := range spec.Stages {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("stage%d", i)
		}
		specs[i] = group.Sub(name, s.Procs)
	}
	part := p.Partition(specs...)
	p.TaskRegion(part, func(r *Region) {
		for set := spec.First; set < spec.Sets; set += stride {
			set := set
			for i, s := range spec.Stages {
				body := s.Body
				r.On(specs[i].Name, func() {
					if body != nil {
						body(set)
					}
				})
				if i < len(spec.Transfer) && spec.Transfer[i] != nil {
					spec.Transfer[i](set)
				}
			}
		}
	})
}
