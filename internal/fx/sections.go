package fx

import (
	"fmt"

	"fxpar/internal/group"
)

// Section is one independent computation of a parallel-sections construct,
// with an optional processor count (0 = share the leftovers evenly).
type Section struct {
	Name  string
	Procs int
	Body  func()
}

// Sections runs the given independent computations on disjoint subgroups of
// the current group — the parallel-sections pattern of Section 3.1 as a
// single call. Sections with Procs = 0 split the processors not claimed by
// explicitly sized sections evenly (first sections get the remainder). The
// claimed sizes must not exceed the current group, and every section needs
// at least one processor.
func Sections(p *Proc, sections ...Section) {
	if len(sections) == 0 {
		return
	}
	np := p.NumberOfProcessors()
	claimed, flexible := 0, 0
	for _, s := range sections {
		if s.Procs < 0 {
			panic(fmt.Sprintf("fx: section %q with negative processor count", s.Name))
		}
		if s.Procs == 0 {
			flexible++
		}
		claimed += s.Procs
	}
	rest := np - claimed
	if rest < flexible || (flexible == 0 && claimed != np) {
		panic(fmt.Sprintf("fx: sections need %d processors (+%d flexible) but the group has %d", claimed, flexible, np))
	}
	specs := make([]group.Spec, len(sections))
	base, extra := 0, 0
	if flexible > 0 {
		base, extra = rest/flexible, rest%flexible
	}
	flexSeen := 0
	for i, s := range sections {
		q := s.Procs
		if q == 0 {
			q = base
			if flexSeen < extra {
				q++
			}
			flexSeen++
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("section%d", i)
		}
		specs[i] = group.Sub(name, q)
	}
	part := p.Partition(specs...)
	p.TaskRegion(part, func(r *Region) {
		for i, s := range sections {
			body := s.Body
			r.On(specs[i].Name, func() {
				if body != nil {
					body()
				}
			})
		}
	})
}
