package fx

import (
	"math/rand"
	"testing"

	"fxpar/internal/dist"
	"fxpar/internal/group"
)

// soak generates a random nested task-parallel program from a seed: random
// compute, subgroup barriers, recursive partitions, and parent-scope
// assignments between subgroup arrays (with content verification). All
// members of a subgroup derive the same decision stream from the same seed,
// keeping the program SPMD-consistent. Returns per-processor finish times.
func soak(t *testing.T, procs int, seed int64) []float64 {
	t.Helper()
	m := testMachine(procs)
	stats := Run(m, func(p *Proc) {
		soakLevel(t, p, seed, 0)
	})
	out := make([]float64, procs)
	for i, ps := range stats.Procs {
		out[i] = ps.Finish
	}
	return out
}

func soakLevel(t *testing.T, p *Proc, seed int64, depth int) {
	rng := rand.New(rand.NewSource(seed))
	np := p.NumberOfProcessors()
	steps := rng.Intn(4) + 1
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(4); {
		case op == 0:
			p.Compute(float64(rng.Intn(5000)))
		case op == 1:
			p.Barrier()
		case op == 2 && np >= 2 && depth < 3:
			p1 := rng.Intn(np-1) + 1
			part := p.Partition(group.Sub("lo", p1), group.Sub("hi", np-p1))
			loSeed := seed*31 + int64(s)*7 + 1
			hiSeed := seed*37 + int64(s)*11 + 2
			// Subgroup arrays and a parent-scope transfer.
			n := rng.Intn(20) + 1
			src := dist.New[int64](p.Proc, dist.MustLayout(part.Group("lo"),
				[]int{n}, []dist.Axis{dist.BlockAxis()}, []int{p1}))
			dst := dist.New[int64](p.Proc, dist.MustLayout(part.Group("hi"),
				[]int{n}, []dist.Axis{dist.BlockAxis()}, []int{np - p1}))
			if src.IsMember() {
				src.FillFunc(func(idx []int) int64 { return seed ^ int64(idx[0]*2654435761) })
			}
			p.TaskRegion(part, func(r *Region) {
				r.On("lo", func() { soakLevel(t, p, loSeed, depth+1) })
				dist.Assign(p.Proc, dst, src)
				r.On("hi", func() { soakLevel(t, p, hiSeed, depth+1) })
			})
			if dst.IsMember() {
				bad := false
				for off, v := range dst.Local() {
					gi := dst.GlobalOfLocal(off)
					if v != seed^int64(gi[0]*2654435761) {
						bad = true
					}
				}
				if bad {
					t.Errorf("seed %d depth %d: transfer corrupted data", seed, depth)
				}
			}
		default:
			// Replicated scalar work: no communication.
			x := 0
			for i := 0; i < rng.Intn(50); i++ {
				x += i
			}
			_ = x
		}
	}
}

func TestSoakRandomNestedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, procs := range []int{2, 5, 8} {
			soak(t, procs, seed) // must terminate without panic or deadlock
		}
	}
}

func TestSoakDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := soak(t, 6, seed)
		b := soak(t, 6, seed)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("seed %d: proc %d finish %g vs %g", seed, i, a[i], b[i])
			}
		}
	}
}
