package serve_test

// The concurrent-clients contract, run under -race in CI: N goroutines
// posting a mix of identical and distinct /optimize bodies must trigger
// exactly one campaign per content key, and every response for one key must
// be byte-identical — the singleflight is the server's core invariant.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"fxpar/internal/serve"
)

func TestConcurrentClientsSingleCampaign(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 4})

	// 4 distinct request bodies, 4 clients each: 16 concurrent requests,
	// 4 campaigns, 12 dedupe hits.
	bodies := []map[string]any{
		{"app": "ffthist", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.05},
		{"app": "ffthist", "p": 16, "sets": 6, "quick": true, "goalRatio": 1.01},
		{"app": "radar", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.14},
		{"app": "stereo", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.05},
	}
	const perBody = 4
	type reply struct {
		group int
		code  int
		body  []byte
	}
	replies := make([]reply, len(bodies)*perBody)
	var wg sync.WaitGroup
	for g := range bodies {
		data, err := json.Marshal(bodies[g])
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < perBody; c++ {
			wg.Add(1)
			go func(g, c int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Errorf("group %d client %d: %v", g, c, err)
					return
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body) //nolint:errcheck
				replies[g*perBody+c] = reply{g, resp.StatusCode, buf.Bytes()}
			}(g, c)
		}
	}
	wg.Wait()

	// Byte-identical responses within each group, distinct across groups.
	for g := range bodies {
		first := replies[g*perBody]
		if first.code != http.StatusOK {
			t.Fatalf("group %d: status %d body %s", g, first.code, first.body)
		}
		for c := 1; c < perBody; c++ {
			r := replies[g*perBody+c]
			if r.code != first.code || !bytes.Equal(r.body, first.body) {
				t.Errorf("group %d client %d: response differs from client 0:\n%s\nvs\n%s",
					g, c, r.body, first.body)
			}
		}
		for h := 0; h < g; h++ {
			if bytes.Equal(first.body, replies[h*perBody].body) {
				t.Errorf("groups %d and %d returned identical bodies for distinct requests", g, h)
			}
		}
	}

	// Exactly one campaign per distinct body; every other request deduped.
	st := s.Stats()
	if st.Campaigns != int64(len(bodies)) {
		t.Errorf("campaigns = %d, want %d (one per distinct request)", st.Campaigns, len(bodies))
	}
	if want := int64(len(bodies) * (perBody - 1)); st.DedupHits != want {
		t.Errorf("dedupHits = %d, want %d", st.DedupHits, want)
	}
}
