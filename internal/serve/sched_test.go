package serve

import (
	"sync"
	"testing"
)

// schedJob builds a queued job for scheduler tests (no HTTP involved).
func schedJob(id, client string, prio int, seq uint64) *Job {
	return &Job{ID: id, Kind: "test", Key: id, Client: client, Priority: prio, seq: seq, done: make(chan struct{})}
}

// runOrder drives a 1-worker pool over jobs submitted while the worker is
// held on a plug job, so dispatch order is decided with every job queued —
// the scenario fairness is about.
func runOrder(t *testing.T, jobs []*Job) []string {
	t.Helper()
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	pool := NewPool(1, func(j *Job) {
		if j.ID == "plug" {
			<-release // hold the only worker until everything is queued
			return
		}
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
	})
	pool.Submit(schedJob("plug", "plug-client", 0, 0))
	for _, j := range jobs {
		pool.Submit(j)
	}
	close(release)
	pool.Close() // drains the queue
	return order
}

// TestPoolRoundRobinAcrossClients: with one worker and three clients whose
// requests are all equal priority, dispatch interleaves clients one job per
// revolution instead of draining the first client's queue.
func TestPoolRoundRobinAcrossClients(t *testing.T) {
	order := runOrder(t, []*Job{
		schedJob("A1", "A", 0, 1),
		schedJob("A2", "A", 0, 2),
		schedJob("B1", "B", 0, 3),
		schedJob("B2", "B", 0, 4),
		schedJob("C1", "C", 0, 5),
	})
	want := []string{"A1", "B1", "C1", "A2", "B2"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestPoolPriorityOvertakesRing: a high-priority job runs before every
// queued equal-priority job, regardless of where its client sits in the
// ring.
func TestPoolPriorityOvertakesRing(t *testing.T) {
	order := runOrder(t, []*Job{
		schedJob("A1", "A", 0, 1),
		schedJob("B1", "B", 0, 2),
		schedJob("C1", "C", 5, 3), // submitted last, dispatched first
		schedJob("A2", "A", 0, 4),
	})
	if order[0] != "C1" {
		t.Fatalf("dispatch order %v, want C1 first", order)
	}
	// The rest still round-robins: A, B, A.
	want := []string{"C1", "A1", "B1", "A2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestPoolFIFOWithinClient: one client's equal-priority jobs run in
// submission order.
func TestPoolFIFOWithinClient(t *testing.T) {
	order := runOrder(t, []*Job{
		schedJob("A1", "A", 0, 1),
		schedJob("A2", "A", 0, 2),
		schedJob("A3", "A", 0, 3),
	})
	want := []string{"A1", "A2", "A3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestPoolCloseDrains: Close returns only after every queued job ran.
func TestPoolCloseDrains(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	pool := NewPool(2, func(*Job) {
		mu.Lock()
		ran++
		mu.Unlock()
	})
	const n = 20
	for i := 0; i < n; i++ {
		pool.Submit(schedJob(string(rune('a'+i)), "c", 0, uint64(i)))
	}
	pool.Close()
	if ran != n {
		t.Fatalf("Close returned with %d/%d jobs run", ran, n)
	}
}

// TestRegistrySingleflight: the second request for one key attaches to the
// first request's job.
func TestRegistrySingleflight(t *testing.T) {
	reg := newRegistry(0)
	j1, created := reg.getOrCreate("optimize", "k1", "A", 0)
	if !created {
		t.Fatal("first request did not create the job")
	}
	j2, created := reg.getOrCreate("optimize", "k1", "B", 0)
	if created || j2 != j1 {
		t.Fatal("duplicate key created a second job")
	}
	if j1.dedup.Load() != 1 || reg.dedupHits.Load() != 1 || reg.campaigns.Load() != 1 {
		t.Fatalf("counters: dedup=%d hits=%d campaigns=%d, want 1/1/1",
			j1.dedup.Load(), reg.dedupHits.Load(), reg.campaigns.Load())
	}
	if _, created := reg.getOrCreate("optimize", "k2", "A", 0); !created {
		t.Fatal("distinct key did not create a job")
	}
}

// TestRegistryPrunesFinished: finished jobs beyond keep are evicted
// oldest-first; running jobs are never evicted.
func TestRegistryPrunesFinished(t *testing.T) {
	reg := newRegistry(2)
	a, _ := reg.getOrCreate("measure", "ka", "c", 0)
	a.finish([]byte("{}\n"), nil)
	b, _ := reg.getOrCreate("measure", "kb", "c", 0)
	b.setRunning() // never evictable
	c, _ := reg.getOrCreate("measure", "kc", "c", 0)
	c.finish([]byte("{}\n"), nil)
	// Admitting a fourth job exceeds keep=2: the oldest finished job (a)
	// goes; the running job stays.
	reg.getOrCreate("measure", "kd", "c", 0)
	if _, ok := reg.get(a.ID); ok {
		t.Error("oldest finished job survived pruning")
	}
	if _, ok := reg.get(b.ID); !ok {
		t.Error("running job was evicted")
	}
	// A re-request of the evicted key runs a fresh campaign (cache miss).
	if _, created := reg.getOrCreate("measure", "ka", "c", 0); !created {
		t.Error("evicted key did not re-create its job")
	}
}
