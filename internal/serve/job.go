package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// JobState is a job's position in its lifecycle.
type JobState int

const (
	// JobQueued: admitted, waiting for a pool worker.
	JobQueued JobState = iota
	// JobRunning: a worker is executing the campaign.
	JobRunning
	// JobDone: finished successfully; Result holds the canonical bytes.
	JobDone
	// JobFailed: finished with an error.
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one deduplicated campaign: every request whose content key matches
// an existing job attaches to it instead of scheduling a second campaign,
// and all of them are answered from the same canonical result bytes — the
// singleflight that makes K identical concurrent requests cost one campaign
// and return byte-identical responses.
type Job struct {
	// ID is derived from the content key (stable across requests and
	// processes for the same request content).
	ID string
	// Kind is the request family: "optimize", "measure" or "chaossweep".
	Kind string
	// Key is the full content key the job dedupes on.
	Key string
	// Client is the submitting client's self-reported ID (fairness bucket).
	Client string
	// Priority orders dispatch: higher runs first (see Pool).
	Priority int

	// seq is the admission order, for FIFO within one client+priority.
	seq uint64
	// run executes the campaign; set by the handler that created the job.
	run func() ([]byte, error)

	mu     sync.Mutex
	state  JobState
	errMsg string
	result []byte
	subs   map[chan struct{}]struct{}

	// dedup counts requests beyond the first that attached to this job.
	dedup atomic.Int64
	// done closes when the job reaches JobDone or JobFailed.
	done chan struct{}
}

// JobSnapshot is the wire rendering of a job's state (see GET /jobs).
type JobSnapshot struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	Client   string `json:"client,omitempty"`
	Priority int    `json:"priority,omitempty"`
	State    string `json:"state"`
	Dedup    int64  `json:"dedup"`
	Error    string `json:"error,omitempty"`
}

// Snapshot renders the job's current state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobSnapshot{
		ID: j.ID, Kind: j.Kind, Key: j.Key,
		Client: j.Client, Priority: j.Priority,
		State: j.state.String(), Dedup: j.dedup.Load(), Error: j.errMsg,
	}
}

// Done exposes the completion channel: closed once the job is done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the terminal state: the canonical result bytes on success,
// or the error message. Valid only after Done() is closed.
func (j *Job) Result() (state JobState, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.errMsg
}

// setRunning flips the job to JobRunning (worker pickup).
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
	j.notify()
}

// finish records the campaign outcome and wakes every waiter and subscriber.
func (j *Job) finish(result []byte, err error) {
	j.mu.Lock()
	if err != nil {
		j.state, j.errMsg = JobFailed, err.Error()
	} else {
		j.state, j.result = JobDone, result
	}
	j.mu.Unlock()
	j.notify()
	close(j.done)
}

// subscribe registers a state-change listener (buffered, coalescing), for
// the per-job SSE stream. The returned cancel func must be called.
func (j *Job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

func (j *Job) notify() {
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // already pending; the subscriber will see the latest state
		}
	}
	j.mu.Unlock()
}

// jobID derives the stable job ID from the content key.
func jobID(kind, key string) string {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{'|'})
	h.Write([]byte(key))
	return fmt.Sprintf("j-%016x", h.Sum64())
}

// registry holds every live job, keyed by content for dedupe and by ID for
// lookup. Completed jobs are retained (serving cached byte-identical
// responses to late duplicates) up to keep, then pruned oldest-first.
type registry struct {
	mu    sync.Mutex
	byKey map[string]*Job
	byID  map[string]*Job
	order []*Job // admission order, for listing and pruning
	keep  int
	seq   uint64

	dedupHits atomic.Int64 // requests answered by attaching to an existing job
	campaigns atomic.Int64 // jobs actually created (campaigns scheduled)
}

func newRegistry(keep int) *registry {
	if keep <= 0 {
		keep = 1024
	}
	return &registry{byKey: make(map[string]*Job), byID: make(map[string]*Job), keep: keep}
}

// getOrCreate returns the job for (kind, key), creating it if absent.
// created reports whether the caller owns scheduling it (exactly one caller
// per key sees true — the singleflight invariant).
func (r *registry) getOrCreate(kind, key, client string, priority int) (j *Job, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.byKey[key]; ok {
		j.dedup.Add(1)
		r.dedupHits.Add(1)
		return j, false
	}
	r.seq++
	j = &Job{
		ID: jobID(kind, key), Kind: kind, Key: key,
		Client: client, Priority: priority,
		seq: r.seq, done: make(chan struct{}),
	}
	// An FNV collision across distinct keys is astronomically unlikely;
	// disambiguate rather than silently shadowing the older job.
	for r.byID[j.ID] != nil {
		j.ID = fmt.Sprintf("%s-%d", j.ID, r.seq)
	}
	r.byKey[key] = j
	r.byID[j.ID] = j
	r.order = append(r.order, j)
	r.campaigns.Add(1)
	r.pruneLocked()
	return j, true
}

// get looks a job up by ID.
func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// snapshots lists every retained job in admission order.
func (r *registry) snapshots() []JobSnapshot {
	r.mu.Lock()
	jobs := append([]*Job(nil), r.order...)
	r.mu.Unlock()
	out := make([]JobSnapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// counts tallies retained jobs by state.
func (r *registry) counts() (queued, running, done, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.order {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		}
	}
	return
}

// pruneLocked evicts the oldest finished jobs while more than keep are
// retained. Queued and running jobs are never evicted — they have waiters.
func (r *registry) pruneLocked() {
	if len(r.order) <= r.keep {
		return
	}
	kept := r.order[:0]
	excess := len(r.order) - r.keep
	for _, j := range r.order {
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed
		j.mu.Unlock()
		if excess > 0 && finished {
			delete(r.byKey, j.Key)
			delete(r.byID, j.ID)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	r.order = kept
}
