package serve

// The campaign pool bounds how many jobs simulate at once and decides which
// queued job runs next. Dispatch order is priority-first, then round-robin
// across clients, then FIFO within a client: one client posting a hundred
// requests cannot starve another client's single request — the ring hands
// each waiting client one job per revolution — while an urgent job (higher
// Priority) overtakes the ring entirely.

import (
	"sync"

	"fxpar/internal/sweep"
)

// Pool runs jobs on a bounded set of workers with per-client fairness.
type Pool struct {
	run func(*Job)

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*Job // per-client FIFO of queued jobs
	ring   []string          // clients with queued work, round-robin order
	rr     int               // next ring slot to serve
	queued int
	closed bool

	wg sync.WaitGroup
}

// NewPool starts workers goroutines executing run; workers <= 0 means one
// per CPU (sweep.Workers).
func NewPool(workers int, run func(*Job)) *Pool {
	p := &Pool{run: run, queues: make(map[string][]*Job)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < sweep.Workers(workers); i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a job. Submitting after Close panics (the server rejects
// requests first, so this indicates a caller bug).
func (p *Pool) Submit(j *Job) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("serve: Submit on closed pool")
	}
	if _, ok := p.queues[j.Client]; !ok {
		p.ring = append(p.ring, j.Client)
	}
	p.queues[j.Client] = append(p.queues[j.Client], j)
	p.queued++
	p.mu.Unlock()
	p.cond.Signal()
}

// Close stops accepting new jobs, drains everything already queued (each
// queued job has waiters owed a response), and returns when every worker
// has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		j := p.next()
		if j == nil {
			return
		}
		p.run(j)
	}
}

// next blocks until a job is available and returns the one dispatch order
// picks; nil means the pool is closed and drained.
func (p *Pool) next() *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.queued == 0 {
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}

	// Highest priority present anywhere wins; the ring breaks ties.
	maxPrio := p.queues[p.ring[0]][0].Priority
	for _, client := range p.ring {
		for _, j := range p.queues[client] {
			if j.Priority > maxPrio {
				maxPrio = j.Priority
			}
		}
	}

	for i := 0; i < len(p.ring); i++ {
		ci := (p.rr + i) % len(p.ring)
		client := p.ring[ci]
		q := p.queues[client]
		pick := -1
		for k, j := range q {
			if j.Priority == maxPrio {
				pick = k // earliest max-priority job of this client (FIFO)
				break
			}
		}
		if pick < 0 {
			continue
		}
		j := q[pick]
		q = append(q[:pick:pick], q[pick+1:]...)
		p.queued--
		if len(q) == 0 {
			delete(p.queues, client)
			p.ring = append(p.ring[:ci:ci], p.ring[ci+1:]...)
			if len(p.ring) == 0 {
				p.rr = 0
			} else {
				p.rr = ci % len(p.ring)
			}
		} else {
			p.queues[client] = q
			p.rr = (ci + 1) % len(p.ring)
		}
		return j
	}
	// Unreachable: maxPrio was computed from the queues just scanned.
	panic("serve: no job matched the computed max priority")
}
