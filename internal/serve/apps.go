package serve

// The app adapters translate wire requests into the sensor-program
// campaigns the rest of the repo already knows how to run: each adapter
// owns one application's config resolution, content-keyed table spec,
// model build and simulated runs. The adapter's spec key — the same key
// mapping.BuildTables memoizes under — is what request dedupe hangs off,
// so "same campaign" means exactly "same cost tables" with no second
// definition to drift.

import (
	"fmt"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/apps/radar"
	"fxpar/internal/apps/stereo"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
)

// MappingSpec is the wire shape of an explicit mapping (see the app Mapping
// types it mirrors). The zero value means "data-parallel on all processors".
type MappingSpec struct {
	Modules     int   `json:"modules,omitempty"`
	Stages      []int `json:"stages,omitempty"`
	WideModules int   `json:"wideModules,omitempty"`
	WideStages  []int `json:"wideStages,omitempty"`
}

func (ms MappingSpec) isZero() bool {
	return ms.Modules == 0 && len(ms.Stages) == 0 && ms.WideModules == 0 && len(ms.WideStages) == 0
}

// usesProcs totals the processors the spec occupies.
func (ms MappingSpec) usesProcs() int {
	sum := func(procs []int) int {
		s := 0
		for _, p := range procs {
			s += p
		}
		return s
	}
	return sum(ms.Stages)*(ms.Modules-ms.WideModules) + sum(ms.WideStages)*ms.WideModules
}

// validate checks the spec against an app with nStages pipeline stages on a
// p-processor machine.
func (ms MappingSpec) validate(nStages, p int) error {
	if ms.Modules < 1 {
		return fmt.Errorf("mapping: modules must be >= 1")
	}
	if len(ms.Stages) != 1 && len(ms.Stages) != nStages {
		return fmt.Errorf("mapping: want 1 (data-parallel) or %d stage entries, got %d", nStages, len(ms.Stages))
	}
	for _, n := range ms.Stages {
		if n < 1 {
			return fmt.Errorf("mapping: stage processor counts must be >= 1")
		}
	}
	if ms.WideModules < 0 || ms.WideModules > ms.Modules {
		return fmt.Errorf("mapping: wideModules must be in [0, modules]")
	}
	if ms.WideModules > 0 {
		if len(ms.WideStages) != len(ms.Stages) {
			return fmt.Errorf("mapping: wideStages must match stages in length")
		}
		for _, n := range ms.WideStages {
			if n < 1 {
				return fmt.Errorf("mapping: wide stage processor counts must be >= 1")
			}
		}
	} else if len(ms.WideStages) != 0 {
		return fmt.Errorf("mapping: wideStages set but wideModules is 0")
	}
	if u := ms.usesProcs(); u > p {
		return fmt.Errorf("mapping: uses %d processors but the machine has %d", u, p)
	}
	return nil
}

// runOut is the simulated outcome every adapter run reports.
type runOut struct {
	Throughput float64
	Latency    float64
	Makespan   float64
}

// appAdapter binds one application's campaign operations. All simulated
// numbers are deterministic in virtual time — pure functions of
// (app, params, P, mapping) — which is what makes responses cacheable and
// byte-identical across duplicate requests.
type appAdapter struct {
	name   string
	params string           // canonical parameter rendering (for keys and responses)
	spec   mapping.TableSpec // the content key model tables memoize under
	nStages int
	dpCap  int // data-parallel width cap (min(P, rows the app distributes over))

	model      func(opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error)
	runChoice  func(eng machine.Engine, fp machine.FaultPlan, c mapping.Choice) runOut
	runDP      func(eng machine.Engine, fp machine.FaultPlan) runOut
	runMapping func(eng machine.Engine, fp machine.FaultPlan, ms MappingSpec) runOut
	mappingStr func(ms MappingSpec) string
}

func newMachine(p int, cost sim.CostModel, eng machine.Engine, fp machine.FaultPlan) *machine.Machine {
	m := machine.New(p, cost)
	m.SetEngine(eng)
	m.SetFaults(fp)
	return m
}

// resolveApp builds the adapter for (app, p, sets, quick). Quick sizes
// mirror experiments.QuickTable1: same structure, reduced data so a request
// answers in well under a second.
func resolveApp(app string, p, sets int, quick bool, cost sim.CostModel, replay *mapping.ReplayOptions) (*appAdapter, error) {
	if p < 1 {
		return nil, fmt.Errorf("p must be >= 1")
	}
	if sets < 1 {
		return nil, fmt.Errorf("sets must be >= 1")
	}
	buildOpt := mapping.BuildOptions{Replay: replay}
	switch app {
	case "ffthist":
		n := 256
		if quick {
			n = 32
		}
		cfg := ffthist.Config{N: n, Sets: sets, Bins: 64}
		a := &appAdapter{
			name:   "ffthist",
			params: fmt.Sprintf("N=%d,Bins=%d,Sets=%d", cfg.N, cfg.Bins, cfg.Sets),
			spec:   ffthist.Spec(cost, cfg, p, buildOpt),
			dpCap:  min(p, cfg.N),
		}
		a.nStages = len(a.spec.Stages)
		a.model = func(opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
			return ffthist.MeasuredModel(cost, cfg, p, opt)
		}
		run := func(eng machine.Engine, fp machine.FaultPlan, mp ffthist.Mapping) runOut {
			res := ffthist.Run(newMachine(p, cost, eng, fp), cfg, mp)
			return runOut{res.Stream.Throughput, res.Stream.Latency, res.Makespan}
		}
		a.runChoice = func(eng machine.Engine, fp machine.FaultPlan, c mapping.Choice) runOut {
			return run(eng, fp, ffthist.ChoiceToMapping(c))
		}
		a.runDP = func(eng machine.Engine, fp machine.FaultPlan) runOut {
			return run(eng, fp, ffthist.DataParallel(a.dpCap))
		}
		a.runMapping = func(eng machine.Engine, fp machine.FaultPlan, ms MappingSpec) runOut {
			return run(eng, fp, ffthist.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages})
		}
		a.mappingStr = func(ms MappingSpec) string {
			return ffthist.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages}.String()
		}
		return a, nil
	case "radar":
		cfg := radar.DefaultConfig()
		if quick {
			cfg = radar.Config{Gates: 64, Rows: 8, Scale: 1.0 / 64, Threshold: 0.05}
		}
		cfg.Sets = sets
		a := &appAdapter{
			name:   "radar",
			params: fmt.Sprintf("Gates=%d,Rows=%d,Scale=%g,Thr=%g,Sets=%d", cfg.Gates, cfg.Rows, cfg.Scale, cfg.Threshold, cfg.Sets),
			spec:   radar.Spec(cost, cfg, p, buildOpt),
			dpCap:  min(p, cfg.Rows),
		}
		a.nStages = len(a.spec.Stages)
		a.model = func(opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
			return radar.MeasuredModel(cost, cfg, p, opt)
		}
		run := func(eng machine.Engine, fp machine.FaultPlan, mp radar.Mapping) runOut {
			res := radar.Run(newMachine(p, cost, eng, fp), cfg, mp)
			return runOut{res.Stream.Throughput, res.Stream.Latency, res.Makespan}
		}
		a.runChoice = func(eng machine.Engine, fp machine.FaultPlan, c mapping.Choice) runOut {
			return run(eng, fp, radar.ChoiceToMapping(c))
		}
		a.runDP = func(eng machine.Engine, fp machine.FaultPlan) runOut {
			return run(eng, fp, radar.DataParallel(a.dpCap))
		}
		a.runMapping = func(eng machine.Engine, fp machine.FaultPlan, ms MappingSpec) runOut {
			return run(eng, fp, radar.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages})
		}
		a.mappingStr = func(ms MappingSpec) string {
			return radar.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages}.String()
		}
		return a, nil
	case "stereo":
		cfg := stereo.DefaultConfig()
		if quick {
			cfg = stereo.Config{W: 64, H: 24, Disparities: 8, Window: 2}
		}
		cfg.Sets = sets
		a := &appAdapter{
			name:   "stereo",
			params: fmt.Sprintf("W=%d,H=%d,D=%d,Win=%d,Sets=%d", cfg.W, cfg.H, cfg.Disparities, cfg.Window, cfg.Sets),
			spec:   stereo.Spec(cost, cfg, p, buildOpt),
			dpCap:  min(p, cfg.H),
		}
		a.nStages = len(a.spec.Stages)
		a.model = func(opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
			return stereo.MeasuredModel(cost, cfg, p, opt)
		}
		run := func(eng machine.Engine, fp machine.FaultPlan, mp stereo.Mapping) runOut {
			res := stereo.Run(newMachine(p, cost, eng, fp), cfg, mp)
			return runOut{res.Stream.Throughput, res.Stream.Latency, res.Makespan}
		}
		a.runChoice = func(eng machine.Engine, fp machine.FaultPlan, c mapping.Choice) runOut {
			return run(eng, fp, stereo.ChoiceToMapping(c))
		}
		a.runDP = func(eng machine.Engine, fp machine.FaultPlan) runOut {
			return run(eng, fp, stereo.DataParallel(a.dpCap))
		}
		a.runMapping = func(eng machine.Engine, fp machine.FaultPlan, ms MappingSpec) runOut {
			return run(eng, fp, stereo.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages})
		}
		a.mappingStr = func(ms MappingSpec) string {
			return stereo.Mapping{Modules: ms.Modules, Stages: ms.Stages, WideModules: ms.WideModules, WideStages: ms.WideStages}.String()
		}
		return a, nil
	}
	return nil, fmt.Errorf("unknown app %q (have: ffthist, radar, stereo)", app)
}

// measureKey renders the measure request's content key. It reuses
// skeleton.StoreKey as the canonical renderer — the store's notion of "the
// same recorded run" is exactly what makes two measure requests the same
// campaign.
func measureKey(a *appAdapter, ms MappingSpec, p int, chaos string, cost sim.CostModel) string {
	return skeleton.StoreKey{
		App:     "serve." + a.name,
		Params:  a.params,
		Mapping: a.mappingStr(ms),
		P:       p,
		Chaos:   chaos,
		Cost:    cost,
	}.Key()
}
