// Package serve is the mapping-as-a-service layer: a long-running HTTP
// server that answers optimization, measurement and chaos-sweep requests
// over the simulated machine, built from the pieces the batch drivers
// already use (measured cost models, the mapping optimizer, the chaos
// campaign, the sweep monitor).
//
//	POST /optimize        — find the latency-optimal mapping meeting a
//	                        throughput goal; runs DP and chosen mappings
//	POST /measure         — simulate one explicit mapping (optionally chaotic)
//	POST /chaossweep      — fault-injection campaign across seeds
//	GET  /jobs            — every retained job
//	GET  /jobs/{id}       — one job
//	GET  /jobs/{id}/events— per-job SSE stream until the job finishes
//	GET  /stats           — dedupe counters, job tallies, store stats
//	GET  /healthz         — liveness
//	GET  /snapshot,/events,/ — the embedded sweep campaign monitor
//
// Identical in-flight requests collapse into one campaign: every request
// body resolves to a content key (the same key the cost-table memo and
// skeleton store use), the first request per key schedules a job, and
// every later request — concurrent or after completion — attaches to that
// job and is answered from its canonical result bytes. K identical clients
// cost one campaign and read byte-identical responses.
//
// Campaigns run on a bounded worker pool with per-client round-robin
// fairness and priority override (see Pool), so one chatty client cannot
// monopolize the simulator.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fxpar/internal/experiments"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

// maxBody bounds request bodies; every valid request is tiny JSON.
const maxBody = 1 << 20

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently running jobs AND the host parallelism of
	// each job's internal measurement campaign; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, persists measured cost tables on disk so
	// campaigns survive server restarts (see mapping.BuildOptions).
	CacheDir string
	// ReplayDir, when non-empty, enables the skeleton-replay backend with
	// an on-disk store rooted there; "mem" enables it purely in-process.
	ReplayDir string
	// Engine selects the machine execution engine by name ("" = default).
	// Engines change host wall-clock only, never a simulated number.
	Engine string
	// KeepDone bounds retained finished jobs (the response cache);
	// <= 0 means 1024.
	KeepDone int
}

// Server is the mapping-as-a-service campaign server. Create with New,
// serve Handler(), and Close when done.
type Server struct {
	opts   Options
	eng    machine.Engine
	cost   sim.CostModel
	replay *mapping.ReplayOptions

	reg  *registry
	pool *Pool
	mon  *sweep.Monitor
	prev *sweep.Monitor
	mux  *http.ServeMux

	done      chan struct{}
	closeOnce sync.Once
}

// New builds a server and installs its campaign monitor as the
// process-global sweep observer (restored on Close), so every job's
// measurement campaign streams progress over GET /events.
func New(opts Options) (*Server, error) {
	var eng machine.Engine
	if opts.Engine != "" {
		e, err := machine.EngineByName(opts.Engine)
		if err != nil {
			return nil, err
		}
		eng = e
	}
	s := &Server{
		opts: opts,
		eng:  eng,
		cost: sim.Paragon(),
		reg:  newRegistry(opts.KeepDone),
		mon:  sweep.NewMonitor(),
		done: make(chan struct{}),
	}
	switch opts.ReplayDir {
	case "":
	case "mem":
		s.replay = &mapping.ReplayOptions{Store: skeleton.NewStore("")}
	default:
		s.replay = &mapping.ReplayOptions{Store: skeleton.NewStore(opts.ReplayDir)}
	}
	// A long-running daemon must not grow its snapshot without bound.
	s.mon.SetKeep(64)
	s.prev = sweep.Activate(s.mon)
	s.pool = NewPool(opts.Workers, s.runJob)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /measure", s.handleMeasure)
	mux.HandleFunc("POST /chaossweep", s.handleChaosSweep)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	// Everything else is the campaign monitor: /snapshot, /events, /.
	mux.Handle("/", s.mon.ServeMux())
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Monitor returns the embedded campaign monitor.
func (s *Server) Monitor() *sweep.Monitor { return s.mon }

// Close drains the job pool (every queued job still owes a response), ends
// SSE subscribers, and restores the previous global monitor. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.pool.Close()
		close(s.done)
		s.mon.Close()
		if sweep.ActiveMonitor() == s.mon {
			sweep.Activate(s.prev)
		}
	})
}

// buildOptions is the per-job campaign configuration.
func (s *Server) buildOptions() mapping.BuildOptions {
	return mapping.BuildOptions{
		Workers:  s.opts.Workers,
		CacheDir: s.opts.CacheDir,
		Engine:   s.eng,
		Replay:   s.replay,
	}
}

// runJob executes one job on a pool worker. A panicking campaign fails the
// job, never the server.
func (s *Server) runJob(j *Job) {
	j.setRunning()
	var result []byte
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("campaign panicked: %v", r)
			}
		}()
		result, err = j.run()
	}()
	j.finish(result, err)
}

// reqMeta is the submission envelope shared by every request kind.
type reqMeta struct {
	// Client is the fairness bucket; "" buckets anonymous requests together.
	Client string `json:"client"`
	// Priority orders dispatch; higher overtakes the round-robin ring.
	Priority int `json:"priority"`
	// Async makes the submission return 202 + job metadata immediately
	// instead of waiting for the result (poll /jobs/{id} or stream
	// /jobs/{id}/events).
	Async bool `json:"async"`
}

// OptimizeRequest is POST /optimize: find the latency-optimal mapping of
// app on p processors meeting a throughput goal, and simulate both the
// data-parallel baseline and the chosen mapping.
type OptimizeRequest struct {
	App   string `json:"app"`
	P     int    `json:"p"`
	Sets  int    `json:"sets"`  // stream length (default 8)
	Quick bool   `json:"quick"` // reduced data sizes, same structure
	// Goal is the absolute throughput goal (data sets per simulated
	// second). When 0, GoalRatio x the model's data-parallel throughput is
	// used instead — the paper's relative-goal formulation. Both zero means
	// optimize latency alone.
	Goal      float64 `json:"goal"`
	GoalRatio float64 `json:"goalRatio"`
	reqMeta
}

// OptimizeResult is the canonical /optimize response body. Every field is
// deterministic in virtual time: duplicate requests read identical bytes.
type OptimizeResult struct {
	App            string  `json:"app"`
	Params         string  `json:"params"`
	P              int     `json:"p"`
	Sets           int     `json:"sets"`
	Goal           float64 `json:"goal"`
	Best           string  `json:"best"`
	PredLatency    float64 `json:"predLatency"`
	PredThroughput float64 `json:"predThroughput"`
	DPThroughput   float64 `json:"dpThroughput"`
	DPLatency      float64 `json:"dpLatency"`
	TaskThroughput float64 `json:"taskThroughput"`
	TaskLatency    float64 `json:"taskLatency"`
	ModelSource    string  `json:"modelSource"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Sets == 0 {
		req.Sets = 8
	}
	a, err := resolveApp(req.App, req.P, req.Sets, req.Quick, s.cost, s.replay)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Goal < 0 || req.GoalRatio < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("goal and goalRatio must be >= 0"))
		return
	}
	// The key is the cost-table content key plus everything else that
	// shapes the response — Sets rides in a.params.
	key := fmt.Sprintf("optimize|%s|sets=%d|goal=%g|goalRatio=%g", a.spec.Key(), req.Sets, req.Goal, req.GoalRatio)
	s.submit(w, r, "optimize", key, req.reqMeta, func() ([]byte, error) {
		model, src, err := a.model(s.buildOptions())
		if err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		goal := req.Goal
		if goal == 0 && req.GoalRatio > 0 {
			goal = req.GoalRatio / model.DPT[req.P]
		}
		choice, err := mapping.Optimize(model, goal)
		if err != nil {
			return nil, fmt.Errorf("infeasible: %w", err)
		}
		dp := a.runDP(s.eng, nil)
		task := a.runChoice(s.eng, nil, choice)
		return canonical(OptimizeResult{
			App: a.name, Params: a.params, P: req.P, Sets: req.Sets,
			Goal: goal, Best: choice.String(),
			PredLatency: choice.PredLatency, PredThroughput: choice.PredThroughput,
			DPThroughput: dp.Throughput, DPLatency: dp.Latency,
			TaskThroughput: task.Throughput, TaskLatency: task.Latency,
			ModelSource: src.String(),
		})
	})
}

// MeasureRequest is POST /measure: simulate app under one explicit mapping
// (default: data-parallel on all processors), optionally under a chaos
// plan ("seed[:profile]", as the -chaos flags accept).
type MeasureRequest struct {
	App     string      `json:"app"`
	P       int         `json:"p"`
	Sets    int         `json:"sets"`
	Quick   bool        `json:"quick"`
	Mapping MappingSpec `json:"mapping"`
	Chaos   string      `json:"chaos"`
	reqMeta
}

// MeasureResult is the canonical /measure response body.
type MeasureResult struct {
	App        string  `json:"app"`
	Params     string  `json:"params"`
	P          int     `json:"p"`
	Sets       int     `json:"sets"`
	Mapping    string  `json:"mapping"`
	Chaos      string  `json:"chaos,omitempty"`
	Throughput float64 `json:"throughput"`
	Latency    float64 `json:"latency"`
	Makespan   float64 `json:"makespan"`
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Sets == 0 {
		req.Sets = 8
	}
	a, err := resolveApp(req.App, req.P, req.Sets, req.Quick, s.cost, s.replay)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Mapping.isZero() {
		req.Mapping = MappingSpec{Modules: 1, Stages: []int{a.dpCap}}
	}
	if err := req.Mapping.validate(a.nStages, req.P); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := fault.Parse(req.Chaos)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	chaos := ""
	if plan != nil {
		chaos = plan.String() // canonical: "7" and "7:havoc" are one key
	}
	key := measureKey(a, req.Mapping, req.P, chaos, s.cost)
	s.submit(w, r, "measure", key, req.reqMeta, func() ([]byte, error) {
		out := a.runMapping(s.eng, plan.Machine(), req.Mapping)
		return canonical(MeasureResult{
			App: a.name, Params: a.params, P: req.P, Sets: req.Sets,
			Mapping: a.mappingStr(req.Mapping), Chaos: chaos,
			Throughput: out.Throughput, Latency: out.Latency, Makespan: out.Makespan,
		})
	})
}

// ChaosSweepRequest is POST /chaossweep: the fault-injection campaign of
// fxchaos as a service — Seeds decorrelated chaotic runs, each verified
// against the healthy reference.
type ChaosSweepRequest struct {
	Procs   int    `json:"procs"`
	N       int    `json:"n"`
	Sets    int    `json:"sets"`
	Seeds   int    `json:"seeds"`
	Base    uint64 `json:"base"`
	Profile string `json:"profile"`
	Quick   bool   `json:"quick"`
	reqMeta
}

func (s *Server) handleChaosSweep(w http.ResponseWriter, r *http.Request) {
	var req ChaosSweepRequest
	if !decode(w, r, &req) {
		return
	}
	cfg := experiments.DefaultChaos()
	if req.Quick {
		cfg = experiments.QuickChaos()
	}
	if req.Procs > 0 {
		cfg.Procs = req.Procs
	}
	if req.N > 0 {
		cfg.N = req.N
	}
	if req.Sets > 0 {
		cfg.Sets = req.Sets
	}
	if req.Seeds > 0 {
		cfg.Seeds = req.Seeds
	}
	if req.Base > 0 {
		cfg.Base = req.Base
	}
	if req.Profile != "" {
		prof, err := fault.ProfileByName(req.Profile)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		cfg.Prof = prof
	}
	cfg.Workers, cfg.Engine = s.opts.Workers, s.eng
	// Workers and Engine change host time only, so they stay out of the key.
	key := fmt.Sprintf("chaossweep|procs=%d|n=%d|sets=%d|seeds=%d|base=%d|profile=%s",
		cfg.Procs, cfg.N, cfg.Sets, cfg.Seeds, cfg.Base, cfg.Prof.Name)
	s.submit(w, r, "chaossweep", key, req.reqMeta, func() ([]byte, error) {
		return canonical(experiments.Chaos(cfg))
	})
}

// submit is the shared singleflight submission path: resolve the job for
// key (creating and scheduling it only for the first request), then answer
// — immediately for async submissions, from the job's canonical result
// bytes otherwise.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind, key string, meta reqMeta, run func() ([]byte, error)) {
	select {
	case <-s.done:
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	default:
	}
	j, created := s.reg.getOrCreate(kind, key, meta.Client, meta.Priority)
	if created {
		j.run = run
		s.pool.Submit(j)
	}
	w.Header().Set("X-Fxserve-Job", j.ID)
	if meta.Async {
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return // client gone; the job keeps running for other waiters
	}
	state, result, errMsg := j.Result()
	if state == JobFailed {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("%s", errMsg))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result) //nolint:errcheck // client gone is not our error
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.snapshots())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobEvents streams one JobSnapshot JSON frame per state change (SSE,
// coalesced) plus a heartbeat, ending cleanly — final frame, then EOF —
// when the job finishes or the server shuts down.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	changes, cancel := j.subscribe()
	defer cancel()
	heartbeat := time.NewTicker(time.Second)
	defer heartbeat.Stop()

	send := func() bool {
		data, err := json.Marshal(j.Snapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-j.Done():
			send() // final state, then clean EOF
			return
		case <-changes:
			if !send() {
				return
			}
		case <-heartbeat.C:
			if !send() {
				return
			}
		case <-s.done:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// StatsSnapshot is GET /stats: the serving-layer counters.
type StatsSnapshot struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Campaigns int64 `json:"campaigns"` // jobs created (deduped campaigns run)
	DedupHits int64 `json:"dedupHits"` // requests answered by an existing job
	Workers   int   `json:"workers"`
	Engine    string `json:"engine,omitempty"`
	// Skeletons reports the replay store counters when replay is enabled.
	Skeletons *skeleton.StoreStats `json:"skeletons,omitempty"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsSnapshot {
	q, run, done, failed := s.reg.counts()
	st := StatsSnapshot{
		Queued: q, Running: run, Done: done, Failed: failed,
		Campaigns: s.reg.campaigns.Load(), DedupHits: s.reg.dedupHits.Load(),
		Workers: sweep.Workers(s.opts.Workers), Engine: s.opts.Engine,
	}
	if s.replay != nil {
		ss := s.replay.Store.Stats()
		st.Skeletons = &ss
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// decode parses a JSON request body, rejecting unknown fields so request
// typos fail loudly instead of silently running a different campaign.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// canonical renders a result as its canonical bytes: indented JSON with a
// trailing newline, the exact bytes every duplicate response replays.
func canonical(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not our error
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
