package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fxpar/internal/serve"
)

// newTestServer stands up a Server behind httptest and tears both down.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON body and returns status + response bytes.
func post(t *testing.T, url, path string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestOptimizeEndToEnd: a quick /optimize request returns a feasible
// mapping whose simulated task throughput meets the requested goal, and an
// identical second request is a dedupe hit with byte-identical bytes.
func TestOptimizeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 2})
	body := map[string]any{"app": "ffthist", "p": 16, "sets": 6, "quick": true, "goalRatio": 2.05}

	code, first := post(t, ts.URL, "/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %s", code, first)
	}
	var res serve.OptimizeResult
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("bad response %s: %v", first, err)
	}
	if res.App != "ffthist" || res.Best == "" || res.Goal <= 0 {
		t.Fatalf("response %+v", res)
	}
	if res.TaskThroughput < res.Goal {
		t.Errorf("chosen mapping misses the goal: %g < %g", res.TaskThroughput, res.Goal)
	}
	if res.TaskThroughput <= res.DPThroughput {
		t.Errorf("task parallelism did not beat data-parallel: %g <= %g", res.TaskThroughput, res.DPThroughput)
	}

	code, second := post(t, ts.URL, "/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("duplicate optimize: %d %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("duplicate response differs:\n%s\nvs\n%s", first, second)
	}
	st := s.Stats()
	if st.Campaigns != 1 || st.DedupHits != 1 {
		t.Errorf("stats: campaigns=%d dedupHits=%d, want 1 and 1", st.Campaigns, st.DedupHits)
	}
}

// TestMeasureEndToEnd: /measure simulates an explicit mapping, defaults to
// data-parallel, and keys chaotic runs separately from healthy ones.
func TestMeasureEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 2})

	dp := map[string]any{"app": "radar", "p": 8, "sets": 6, "quick": true}
	code, dpBody := post(t, ts.URL, "/measure", dp)
	if code != http.StatusOK {
		t.Fatalf("measure dp: %d %s", code, dpBody)
	}
	var dpRes serve.MeasureResult
	if err := json.Unmarshal(dpBody, &dpRes); err != nil {
		t.Fatal(err)
	}
	if dpRes.Throughput <= 0 || dpRes.Latency <= 0 || dpRes.Makespan <= 0 {
		t.Fatalf("degenerate result %+v", dpRes)
	}
	if !strings.Contains(dpRes.Mapping, "data-parallel") {
		t.Errorf("default mapping = %q, want data-parallel", dpRes.Mapping)
	}

	pipe := map[string]any{"app": "radar", "p": 8, "sets": 6, "quick": true,
		"mapping": map[string]any{"modules": 1, "stages": []int{2, 2, 2, 2}}}
	code, pipeBody := post(t, ts.URL, "/measure", pipe)
	if code != http.StatusOK {
		t.Fatalf("measure pipeline: %d %s", code, pipeBody)
	}

	chaotic := map[string]any{"app": "radar", "p": 8, "sets": 6, "quick": true, "chaos": "42:delay"}
	code, chBody := post(t, ts.URL, "/measure", chaotic)
	if code != http.StatusOK {
		t.Fatalf("measure chaos: %d %s", code, chBody)
	}
	var chRes serve.MeasureResult
	if err := json.Unmarshal(chBody, &chRes); err != nil {
		t.Fatal(err)
	}
	if chRes.Chaos != "42:delay" {
		t.Errorf("chaos label %q", chRes.Chaos)
	}
	if chRes.Makespan <= dpRes.Makespan {
		t.Errorf("injected delays did not slow the run: %g <= %g", chRes.Makespan, dpRes.Makespan)
	}

	// Three distinct keys, zero dedupe.
	if st := s.Stats(); st.Campaigns != 3 || st.DedupHits != 0 {
		t.Errorf("stats: campaigns=%d dedupHits=%d, want 3 and 0", st.Campaigns, st.DedupHits)
	}
}

// TestChaosSweepEndToEnd: /chaossweep returns the deterministic campaign
// report with every seed accounted for.
func TestChaosSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	code, body := post(t, ts.URL, "/chaossweep", map[string]any{"quick": true, "seeds": 4, "profile": "delay"})
	if code != http.StatusOK {
		t.Fatalf("chaossweep: %d %s", code, body)
	}
	var rep struct {
		Profile  string
		Seeds    int
		Survived int
		Failed   int
		Outcomes []struct{ Seed uint64 }
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Profile != "delay" || rep.Seeds != 4 || len(rep.Outcomes) != 4 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Survived+rep.Failed != 4 {
		t.Fatalf("outcomes unaccounted: %+v", rep)
	}
}

// TestBadRequests: malformed bodies, unknown apps and oversubscribed
// mappings fail with 400 and a JSON error, never a panic or a campaign.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1})
	cases := []struct {
		path string
		body string
	}{
		{"/optimize", `{"app":"nope","p":8}`},
		{"/optimize", `{"app":"ffthist"}`},                             // p < 1
		{"/optimize", `{"app":"ffthist","p":8,"bogusField":1}`},        // unknown field
		{"/optimize", `not json`},
		{"/measure", `{"app":"radar","p":4,"quick":true,"mapping":{"modules":1,"stages":[8,8,8,8]}}`}, // oversubscribed
		{"/measure", `{"app":"radar","p":8,"quick":true,"mapping":{"modules":1,"stages":[2,2]}}`},     // wrong stage count
		{"/measure", `{"app":"radar","p":8,"quick":true,"chaos":"x:y"}`},                              // bad chaos spec
		{"/chaossweep", `{"profile":"nope"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%s)", tc.path, tc.body, resp.StatusCode, out)
		}
		if !json.Valid(out) {
			t.Errorf("%s: non-JSON error body %q", tc.path, out)
		}
	}
	if st := s.Stats(); st.Campaigns != 0 {
		t.Errorf("bad requests scheduled %d campaigns", st.Campaigns)
	}
}

// TestAsyncAndJobEvents: an async submission returns 202 with the job, the
// job is streamable over SSE until a clean EOF whose final frame says done,
// and the result is then fetchable by re-posting the same body.
func TestAsyncAndJobEvents(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	body := map[string]any{"app": "stereo", "p": 8, "sets": 6, "quick": true, "async": true}

	code, sub := post(t, ts.URL, "/measure", body)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", code, sub)
	}
	var snap serve.JobSnapshot
	if err := json.Unmarshal(sub, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" {
		t.Fatalf("no job ID in %s", sub)
	}

	// Stream the job's events to EOF: the final frame must say done.
	resp, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last serve.JobSnapshot
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		frames++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if frames == 0 || last.State != "done" {
		t.Fatalf("stream ended after %d frames in state %q, want done", frames, last.State)
	}

	// The job is visible in the listings…
	code, jb := get(t, ts.URL, "/jobs/"+snap.ID)
	if code != http.StatusOK {
		t.Fatalf("job lookup: %d %s", code, jb)
	}
	code, list := get(t, ts.URL, "/jobs")
	if code != http.StatusOK || !strings.Contains(string(list), snap.ID) {
		t.Fatalf("job listing: %d %s", code, list)
	}
	// …and a blocking duplicate of the same body (async off) returns the
	// cached result immediately.
	sync := map[string]any{"app": "stereo", "p": 8, "sets": 6, "quick": true}
	code, res := post(t, ts.URL, "/measure", sync)
	if code != http.StatusOK {
		t.Fatalf("cached fetch: %d %s", code, res)
	}
	var mres serve.MeasureResult
	if err := json.Unmarshal(res, &mres); err != nil || mres.Makespan <= 0 {
		t.Fatalf("cached result %s: %v", res, err)
	}

	if _, err := http.Get(ts.URL + "/jobs/j-nope/events"); err != nil {
		t.Fatal(err)
	}
	code, _ = get(t, ts.URL, "/jobs/j-nope")
	if code != http.StatusNotFound {
		t.Errorf("missing job lookup: %d, want 404", code)
	}
}

// TestMonitorEmbedded: the campaign monitor rides along — /healthz,
// /snapshot and the text front page answer on the same mux.
func TestMonitorEmbedded(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	if code, body := get(t, ts.URL, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body := get(t, ts.URL, "/snapshot")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	if code, body := get(t, ts.URL, "/"); code != http.StatusOK || !strings.Contains(string(body), "campaign monitor") {
		t.Fatalf("front page: %d %s", code, body)
	}
}

// TestFailedJobIs500: an infeasible goal fails the job; waiters get a 500
// with the error, and the failure is cached like any result.
func TestFailedJobIs500(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1})
	// A goal far beyond anything 8 processors can deliver.
	body := map[string]any{"app": "ffthist", "p": 8, "sets": 6, "quick": true, "goal": 1e12}
	code, first := post(t, ts.URL, "/optimize", body)
	if code != http.StatusInternalServerError {
		t.Fatalf("infeasible optimize: %d %s", code, first)
	}
	if !strings.Contains(string(first), "infeasible") {
		t.Errorf("error body %s", first)
	}
	code, second := post(t, ts.URL, "/optimize", body)
	if code != http.StatusInternalServerError || !bytes.Equal(first, second) {
		t.Errorf("cached failure: %d %s", code, second)
	}
	if st := s.Stats(); st.Failed != 1 || st.Campaigns != 1 {
		t.Errorf("stats after failure: %+v", st)
	}
}

// TestServerCloseRejectsNewWork: submissions after Close get 503.
func TestServerCloseRejectsNewWork(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	data, _ := json.Marshal(map[string]any{"app": "ffthist", "p": 4, "quick": true})
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after Close: %d, want 503", resp.StatusCode)
	}
	s.Close() // idempotent
}

// TestStatsShape: /stats returns the counters as JSON.
func TestStatsShape(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, ReplayDir: "mem"})
	code, body := get(t, ts.URL, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st serve.StatsSnapshot
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 {
		t.Errorf("stats %+v", st)
	}
	if st.Skeletons == nil {
		t.Errorf("replay enabled but no skeleton stats: %s", body)
	}
}

// TestEngineOption: a named engine is accepted and an unknown one refused.
func TestEngineOption(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 1, Engine: "coop"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := serve.New(serve.Options{Engine: "warpdrive"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
