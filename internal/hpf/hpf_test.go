package hpf

import (
	"sync"
	"testing"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.CostModel{
		FlopRate: 1e6, Alpha: 1e-4, Beta: 1e-7, SendOverhead: 1e-5, IORate: 1e6,
	})
}

func TestOnOutsideTaskRegion(t *testing.T) {
	// HPF's ON is legal anywhere; Fx's is not. Verify the general form.
	m := testMachine(4)
	var mu sync.Mutex
	ran := map[int]bool{}
	fx.Run(m, func(p *fx.Proc) {
		On(p, 1, 3, func() {
			if p.NumberOfProcessors() != 2 {
				t.Errorf("NP = %d", p.NumberOfProcessors())
			}
			mu.Lock()
			ran[p.ID()] = true
			mu.Unlock()
		})
	})
	if len(ran) != 2 || !ran[1] || !ran[2] {
		t.Errorf("ran = %v", ran)
	}
}

func TestRegionComputedSubsets(t *testing.T) {
	// Subset bounds computed at run time from input (no declaration).
	m := testMachine(8)
	var mu sync.Mutex
	counts := map[string]int{}
	fx.Run(m, func(p *fx.Proc) {
		workA, workB := 30, 10 // runtime values
		split := p.NumberOfProcessors() * workA / (workA + workB)
		Region(p, []Task{
			{Lo: 0, Hi: split, Body: func() {
				mu.Lock()
				counts["a"]++
				mu.Unlock()
			}},
			{Lo: split, Hi: p.NumberOfProcessors(), Body: func() {
				mu.Lock()
				counts["b"]++
				mu.Unlock()
			}},
		})
	})
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestRegionPartialCoverage(t *testing.T) {
	// HPF permits processors outside any ON subset; they skip.
	m := testMachine(6)
	stats := fx.Run(m, func(p *fx.Proc) {
		Region(p, []Task{
			{Lo: 0, Hi: 2, Body: func() { p.Compute(1000) }},
			{Lo: 4, Hi: 6, Body: func() { p.Compute(1000) }},
		})
	})
	if stats.Procs[2].Finish != 0 || stats.Procs[3].Finish != 0 {
		t.Errorf("uncovered processors did not skip: %g %g",
			stats.Procs[2].Finish, stats.Procs[3].Finish)
	}
}

func TestRegionOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	fx.Run(m, func(p *fx.Proc) {
		Region(p, []Task{
			{Lo: 0, Hi: 3, Body: func() {}},
			{Lo: 2, Hi: 4, Body: func() {}},
		})
	})
}

func TestRegionBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	fx.Run(m, func(p *fx.Proc) {
		Region(p, []Task{{Lo: 0, Hi: 5, Body: func() {}}})
	})
}

func TestNestedRegions(t *testing.T) {
	// Computed subsets can nest: a region inside a task divides the
	// subset's processors again.
	m := testMachine(8)
	var mu sync.Mutex
	depth2 := map[int]int{}
	fx.Run(m, func(p *fx.Proc) {
		Region(p, []Task{{Lo: 0, Hi: 8, Body: func() {
			Region(p, []Task{
				{Lo: 0, Hi: 4, Body: func() {
					mu.Lock()
					depth2[p.ID()] = p.NumberOfProcessors()
					mu.Unlock()
				}},
				{Lo: 4, Hi: 8, Body: func() {
					mu.Lock()
					depth2[p.ID()] = p.NumberOfProcessors()
					mu.Unlock()
				}},
			})
		}}})
	})
	if len(depth2) != 8 {
		t.Fatalf("depth2 = %v", depth2)
	}
	for id, np := range depth2 {
		if np != 4 {
			t.Errorf("proc %d saw NP=%d at depth 2", id, np)
		}
	}
}

func TestSplit(t *testing.T) {
	m := testMachine(10)
	fx.Run(m, func(p *fx.Proc) {
		ranges := Split(p, 3)
		if len(ranges) != 3 {
			t.Fatalf("ranges = %v", ranges)
		}
		if ranges[0] != [2]int{0, 4} || ranges[1] != [2]int{4, 7} || ranges[2] != [2]int{7, 10} {
			t.Errorf("ranges = %v", ranges)
		}
	})
}

func TestSplitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	fx.Run(m, func(p *fx.Proc) { Split(p, 3) })
}

// TestHPFStyleEqualsFxStyle runs the same two-task computation in both
// surfaces and verifies identical results — the two models express the same
// executions (Section 6).
func TestHPFStyleEqualsFxStyle(t *testing.T) {
	compute := func(a *dist.Array[float64], scale float64) {
		for i, v := range a.Local() {
			a.Local()[i] = v*scale + 1
		}
	}
	runFx := func() []float64 {
		var out []float64
		fx.Run(testMachine(4), func(p *fx.Proc) {
			part := p.Partition(group.Sub("a", 2), group.Sub("b", 2))
			arr := dist.New[float64](p.Proc, dist.RowBlock2D(part.Group("b"), 4, 4))
			p.TaskRegion(part, func(r *fx.Region) {
				r.On("b", func() { compute(arr, 2) })
			})
			if full := dist.GatherGlobal(p.Proc, arr); full != nil {
				out = full
			}
		})
		return out
	}
	runHPF := func() []float64 {
		var out []float64
		fx.Run(testMachine(4), func(p *fx.Proc) {
			sub := p.Group().Subrange(2, 4)
			arr := dist.New[float64](p.Proc, dist.RowBlock2D(sub, 4, 4))
			Region(p, []Task{{Lo: 2, Hi: 4, Body: func() { compute(arr, 2) }}})
			if full := dist.GatherGlobal(p.Proc, arr); full != nil {
				out = full
			}
		})
		return out
	}
	a, b := runFx(), runHPF()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("element %d: fx %g != hpf %g", i, a[i], b[i])
		}
	}
}
