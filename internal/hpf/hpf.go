// Package hpf implements the HPF 2.0 approved-extension style of task
// parallelism that Section 6 of the paper compares against the Fx model.
// The paper notes this was "a case of the strong interaction between the two
// design efforts": both are built on mapping data and computation onto
// processor subgroups, but they differ in surface and in what the
// implementation can exploit:
//
//   - HPF has a general ON construct usable outside task regions; Fx allows
//     ON only inside a task region.
//   - HPF subgroups need not be declared: the processor subset is given in
//     the ON clause and may be computed at run time. Fx requires an explicit
//     TASK_PARTITION declaration.
//   - HPF subsets must be rectilinear ranges of the processor arrangement;
//     Fx subgroups are arbitrary (the implementation chooses placement).
//
// This package provides that surface over the same runtime: On for a single
// computed rectilinear subset, and Region for a set of disjoint computed
// subsets executing concurrently. The trade-off the paper predicts is
// visible in the implementation: with no declared partition there is no
// coverage validation and no named subgroup to hang mapped variables on —
// exactly the "declarative information that we have used to help build a
// simple yet efficient implementation" which HPF does not give the compiler.
package hpf

import (
	"fmt"
	"sort"

	"fxpar/internal/fx"
)

// On executes body on the rectilinear subset [lo, hi) of the current
// group's virtual processors; others skip past without synchronizing. The
// bounds may be computed at run time. This is HPF's general ON clause; it
// is legal anywhere, not only inside a task region.
func On(p *fx.Proc, lo, hi int, body func()) {
	p.OnProcs(lo, hi, body)
}

// Task pairs a computed rectilinear processor range with the code to run on
// it.
type Task struct {
	Lo, Hi int // virtual processor range [Lo, Hi) of the current group
	Body   func()
}

// Region executes a set of tasks on disjoint rectilinear subsets of the
// current group concurrently — the HPF analogue of a task region over ON
// blocks. Ranges must be disjoint and within the current group; processors
// covered by no task skip the region entirely (HPF allows partial
// coverage, unlike an Fx TASK_PARTITION which must cover the group).
func Region(p *fx.Proc, tasks []Task) {
	np := p.NumberOfProcessors()
	sorted := append([]Task(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	prevHi := 0
	for _, t := range sorted {
		if t.Lo < 0 || t.Hi > np || t.Lo >= t.Hi {
			panic(fmt.Sprintf("hpf: task range [%d,%d) invalid for %d processors", t.Lo, t.Hi, np))
		}
		if t.Lo < prevHi {
			panic(fmt.Sprintf("hpf: task ranges overlap at processor %d", t.Lo))
		}
		prevHi = t.Hi
	}
	me := p.VP()
	for _, t := range tasks {
		if me >= t.Lo && me < t.Hi {
			p.OnProcs(t.Lo, t.Hi, t.Body)
			return
		}
	}
}

// Split divides the current group evenly into k computed ranges — a common
// idiom for replicated data parallelism without declared partitions.
func Split(p *fx.Proc, k int) [][2]int {
	np := p.NumberOfProcessors()
	if k < 1 || k > np {
		panic(fmt.Sprintf("hpf: cannot split %d processors into %d ranges", np, k))
	}
	out := make([][2]int, k)
	base, extra := np/k, np%k
	lo := 0
	for i := range out {
		sz := base
		if i < extra {
			sz++
		}
		out[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	return out
}
