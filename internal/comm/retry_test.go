package comm

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/trace"
)

// stubPlan is a hand-scripted machine.FaultPlan that kills exactly the
// processors named in death; it injects no message faults, so tests can
// target a specific victim deterministically.
type stubPlan struct{ death map[int]float64 }

func (s *stubPlan) MessageFault(src, dst int, seq int64) machine.MessageFault {
	return machine.MessageFault{}
}
func (s *stubPlan) SlowFactor(proc int) float64 { return 1 }
func (s *stubPlan) DeathTime(proc int) (float64, bool) {
	t, ok := s.death[proc]
	return t, ok
}

// expectRunDeath recovers a Run panic and asserts it is a *RunError rooted
// at the injected death of processor victim.
func expectRunDeath(t *testing.T, victim int, run func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic despite a processor death")
		}
		re, ok := r.(*machine.RunError)
		if !ok {
			t.Fatalf("Run panicked with %T (%v), want *machine.RunError", r, r)
		}
		var death *machine.ProcDeathError
		if !errors.As(re, &death) || death.Proc != victim {
			t.Fatalf("root cause = %v, want death of processor %d", re.Root().Value, victim)
		}
	}()
	run()
}

// TestRetryCollectivesMatchPlainWhenHealthy: on a healthy machine the
// retrying collectives produce the same values AND the same RunStats as the
// plain ones — virtual-time timeouts that are beaten by the message's
// arrival cost nothing, and the intermediate timed-out attempts advance the
// clock only up to the arrival time the plain receive would reach anyway.
// The compute skew makes early members wait well past BaseTimeout, so the
// retry path (not just the first-attempt path) is exercised.
func TestRetryCollectivesMatchPlainWhenHealthy(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, n := range groupSizes {
		run := func(retry bool) (machine.RunStats, []int, []int) {
			m := testMachine(n)
			bcastOut := make([]int, n)
			redOut := make([]int, n)
			stats := m.Run(func(p *machine.Proc) {
				g := group.World(n)
				r := p.ID()
				p.Compute(float64(r) * 1000) // r milliseconds of skew
				if retry {
					pol := RetryPolicy{BaseTimeout: 5e-4, MaxTimeout: 4e-3, Attempts: 16}
					if err := BarrierRetry(p, g, pol); err != nil {
						t.Errorf("n=%d proc %d: BarrierRetry: %v", n, r, err)
					}
					data, err := BcastRetry(p, g, 0, []int{41, 42}, pol)
					if err != nil {
						t.Errorf("n=%d proc %d: BcastRetry: %v", n, r, err)
						return
					}
					bcastOut[r] = data[1]
					v, err := ReduceRetry(p, g, 0, r+1, add, pol)
					if err != nil {
						t.Errorf("n=%d proc %d: ReduceRetry: %v", n, r, err)
						return
					}
					redOut[r] = v
				} else {
					Barrier(p, g)
					data := Bcast(p, g, 0, []int{41, 42})
					bcastOut[r] = data[1]
					redOut[r] = Reduce(p, g, 0, r+1, add)
				}
			})
			return stats, bcastOut, redOut
		}
		ps, pb, pr := run(false)
		rs, rb, rr := run(true)
		if !reflect.DeepEqual(pb, rb) || !reflect.DeepEqual(pr, rr) {
			t.Errorf("n=%d: retry collectives produced different values: bcast %v vs %v, reduce %v vs %v",
				n, pb, rb, pr, rr)
		}
		for i := range ps.Procs {
			a, b := ps.Procs[i], rs.Procs[i]
			// Idle is accumulated in different-sized segments on the retry
			// path (per-timeout rather than per-wait), so it matches only up
			// to floating-point association; everything else is exact.
			if a.Finish != b.Finish || a.Busy != b.Busy ||
				a.MsgsSent != b.MsgsSent || a.BytesSent != b.BytesSent ||
				math.Abs(a.Idle-b.Idle) > 1e-12 {
				t.Errorf("n=%d proc %d: retry collectives changed stats:\nplain %+v\nretry %+v", n, i, a, b)
			}
		}
		if want := n * (n + 1) / 2; pr[0] != want {
			t.Errorf("n=%d: reduce at root = %d, want %d", n, pr[0], want)
		}
	}
}

// TestBcastRetryDeadMember: a broadcast over a group with a dead member
// unwinds with typed errors naming the dead rank on every member that
// depended on it — directly or through the failure cascade.
func TestBcastRetryDeadMember(t *testing.T) {
	// Victim 4 is an interior node of the binomial tree from root 0: its
	// subtree (ranks 5, 6, 7) can only fail.
	const n, victim = 8, 4
	m := testMachine(n)
	m.SetFaults(&stubPlan{death: map[int]float64{victim: 1e-6}})
	errs := make([]error, n)
	expectRunDeath(t, victim, func() {
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			p.Compute(10) // advance every clock past the death time
			_, err := BcastRetry(p, g, 0, []int{7},
				RetryPolicy{BaseTimeout: 1e-3, MaxTimeout: 8e-3, Attempts: 4})
			errs[p.ID()] = err
		})
	})
	saw := 0
	for id, err := range errs {
		if err == nil {
			continue
		}
		var dm *DeadMemberError
		if !errors.As(err, &dm) {
			t.Errorf("proc %d: got %T (%v), want *DeadMemberError", id, err, err)
			continue
		}
		if dm.Rank != victim || dm.Phys != victim || !dm.Panicked || dm.Op != "bcast" {
			t.Errorf("proc %d: %+v does not name dead rank %d", id, dm, victim)
		}
		saw++
	}
	if saw == 0 {
		t.Error("no survivor observed the dead member")
	}
	if errs[victim] != nil {
		t.Errorf("the victim recorded an error (%v); it should have died mid-collective", errs[victim])
	}
}

// TestBarrierRetryDeadMember: a barrier cannot complete without every
// member, so every survivor must get a typed error naming the dead rank.
func TestBarrierRetryDeadMember(t *testing.T) {
	const n, victim = 4, 2
	m := testMachine(n)
	m.SetFaults(&stubPlan{death: map[int]float64{victim: 1e-6}})
	errs := make([]error, n)
	expectRunDeath(t, victim, func() {
		m.Run(func(p *machine.Proc) {
			p.Compute(10) // advance every clock past the death time
			errs[p.ID()] = BarrierRetry(p, group.World(n),
				RetryPolicy{BaseTimeout: 1e-3, MaxTimeout: 8e-3, Attempts: 4})
		})
	})
	for id, err := range errs {
		if id == victim {
			continue
		}
		var dm *DeadMemberError
		if !errors.As(err, &dm) {
			t.Errorf("survivor %d: got %T (%v), want *DeadMemberError", id, err, err)
			continue
		}
		if dm.Rank != victim || !dm.Panicked || dm.Op != "barrier" {
			t.Errorf("survivor %d: %+v does not name dead rank %d", id, dm, victim)
		}
	}
}

// TestReduceRetryDeadMember: the root of a reduction with a dead leaf gets
// a typed error naming the leaf, even though the leaf's failure reaches the
// root through an intermediate member that merely gave up.
func TestReduceRetryDeadMember(t *testing.T) {
	const n, victim = 8, 5
	m := testMachine(n)
	m.SetFaults(&stubPlan{death: map[int]float64{victim: 1e-6}})
	errs := make([]error, n)
	expectRunDeath(t, victim, func() {
		m.Run(func(p *machine.Proc) {
			p.Compute(10) // advance every clock past the death time
			_, err := ReduceRetry(p, group.World(n), 0, p.ID(),
				func(a, b int) int { return a + b },
				RetryPolicy{BaseTimeout: 1e-3, MaxTimeout: 8e-3, Attempts: 4})
			errs[p.ID()] = err
		})
	})
	var dm *DeadMemberError
	if !errors.As(errs[0], &dm) {
		t.Fatalf("root error = %T (%v), want *DeadMemberError", errs[0], errs[0])
	}
	if dm.Rank != victim || !dm.Panicked || dm.Op != "reduce" {
		t.Errorf("root error %+v does not name dead rank %d", dm, victim)
	}
}

// TestTimeoutOnSilentSender: a member that is alive but silent for longer
// than the whole retry budget produces a *TimeoutError (not DeadMember —
// nobody died), with the attempts and EvTimeout/EvRetry markers to match.
// The late message is still delivered and consumable afterwards.
func TestTimeoutOnSilentSender(t *testing.T) {
	m := testMachine(2)
	var tr trace.Collector
	m.SetTracer(&tr)
	var gotErr error
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		pol := RetryPolicy{BaseTimeout: 1e-3, MaxTimeout: 4e-3, Attempts: 3}
		if p.ID() == 1 {
			p.Elapse(10) // busy elsewhere for 10 virtual seconds
			if _, err := BcastRetry(p, g, 1, []int{99}, pol); err != nil {
				t.Errorf("root bcast: %v", err)
			}
			return
		}
		_, err := BcastRetry[int](p, g, 1, nil, pol)
		gotErr = err
		// The transmission was late, not lost: drain it.
		if v := RecvVal[int](p, g, 1); v != 99 {
			t.Errorf("late message = %d, want 99", v)
		}
	})
	var to *TimeoutError
	if !errors.As(gotErr, &to) {
		t.Fatalf("got %T (%v), want *TimeoutError", gotErr, gotErr)
	}
	if to.Attempts != 3 || to.Rank != 1 || to.Phys != 1 || to.Proc != 0 || to.Op != "bcast" {
		t.Errorf("timeout error fields: %+v", to)
	}
	if want := 1e-3 + 2e-3 + 4e-3; math.Abs(to.Waited-want) > 1e-12 {
		t.Errorf("Waited = %g, want %g", to.Waited, want)
	}
	timeouts, retries := 0, 0
	for _, e := range tr.Events() {
		if e.Proc != 0 {
			continue
		}
		switch e.Kind {
		case machine.EvTimeout:
			timeouts++
		case machine.EvRetry:
			retries++
		}
	}
	if timeouts != 3 || retries != 2 {
		t.Errorf("proc 0 recorded %d EvTimeout / %d EvRetry, want 3 / 2", timeouts, retries)
	}
}

// TestRecvTimeoutWrapper: the typed comm wrapper over machine.RecvTimeout.
func TestRecvTimeoutWrapper(t *testing.T) {
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		if p.ID() == 0 {
			p.Elapse(1e-3)
			Send(p, g, 1, []int{5})
			return
		}
		data, out := RecvTimeout[int](p, g, 0, 1e-6)
		if out != machine.RecvTimedOut || data != nil {
			t.Errorf("short timeout: got %v/%v, want nil/timed-out", data, out)
		}
		data, out = RecvTimeout[int](p, g, 0, 1.0)
		if out != machine.RecvOK || len(data) != 1 || data[0] != 5 {
			t.Errorf("long timeout: got %v/%v, want [5]/ok", data, out)
		}
	})
}

func TestRetryPolicyNormalized(t *testing.T) {
	if got := (RetryPolicy{}).normalized(); got != DefaultRetry() {
		t.Errorf("zero policy normalized to %+v, want DefaultRetry %+v", got, DefaultRetry())
	}
	got := RetryPolicy{BaseTimeout: 2, MaxTimeout: 1}.normalized()
	if got.MaxTimeout != 2 || got.Attempts != 1 {
		t.Errorf("partial policy normalized to %+v", got)
	}
}
