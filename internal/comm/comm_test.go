package comm

import (
	"testing"

	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.CostModel{
		FlopRate:     1e6,
		Alpha:        1e-4,
		Beta:         1e-7,
		SendOverhead: 1e-5,
		BarrierAlpha: 1e-5,
		IORate:       1e6,
	})
}

// groupSizes exercises power-of-two and awkward sizes.
var groupSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBarrierAdvancesToMax(t *testing.T) {
	for _, n := range groupSizes {
		m := testMachine(n)
		clocks := make([]float64, n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			// Skewed compute: proc i works i milliseconds.
			p.Compute(float64(p.ID()) * 1000)
			entry := float64(n-1) * 1e-3 // slowest processor's clock at entry
			Barrier(p, g)
			if n > 1 && p.Now() < entry {
				t.Errorf("n=%d proc %d: clock %g < max entry clock %g after barrier", n, p.ID(), p.Now(), entry)
			}
			clocks[p.ID()] = p.Now()
		})
	}
}

func TestBarrierSubsetOnly(t *testing.T) {
	// A barrier over a subgroup must not touch non-members: the outsider
	// finishes with a zero clock and no messages.
	m := testMachine(4)
	stats := m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1, 2})
		if p.ID() == 3 {
			return
		}
		p.Compute(1000)
		Barrier(p, sub)
	})
	if got := stats.Procs[3].Finish; got != 0 {
		t.Errorf("outsider clock = %g, want 0", got)
	}
	if stats.Procs[3].MsgsSent != 0 {
		t.Error("outsider sent messages")
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range groupSizes {
		for root := 0; root < n; root++ {
			m := testMachine(n)
			m.Run(func(p *machine.Proc) {
				g := group.World(n)
				var data []int
				if r, _ := g.RankOf(p.ID()); r == root {
					data = []int{10, 20, 30, root}
				}
				got := Bcast(p, g, root, data)
				if len(got) != 4 || got[3] != root || got[0] != 10 {
					t.Errorf("n=%d root=%d proc %d: got %v", n, root, p.ID(), got)
				}
			})
		}
	}
}

func TestBcastResultIsPrivateCopy(t *testing.T) {
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := []int{1, 2, 3}
		got := Bcast(p, g, 0, src)
		got[0] = 99 // must not affect the root's original
		if src[0] != 1 {
			t.Error("Bcast aliased the caller's slice")
		}
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range groupSizes {
		for root := 0; root < min(n, 3); root++ {
			m := testMachine(n)
			m.Run(func(p *machine.Proc) {
				g := group.World(n)
				r, _ := g.RankOf(p.ID())
				got := Reduce(p, g, root, r+1, func(a, b int) int { return a + b })
				want := n * (n + 1) / 2
				if r == root && got != want {
					t.Errorf("n=%d root=%d: sum = %d, want %d", n, root, got, want)
				}
				if r != root && got != 0 {
					t.Errorf("non-root got %d, want zero value", got)
				}
			})
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	for _, n := range groupSizes {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			got := AllReduce(p, g, p.ID(), func(a, b int) int {
				if a > b {
					return a
				}
				return b
			})
			if got != n-1 {
				t.Errorf("n=%d proc %d: max = %d, want %d", n, p.ID(), got, n-1)
			}
		})
	}
}

func TestReduceSlice(t *testing.T) {
	n := 5
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		local := []float64{float64(p.ID()), 1}
		got := ReduceSlice(p, g, 2, local, func(a, b float64) float64 { return a + b })
		if p.ID() == 2 {
			if got[0] != 10 || got[1] != 5 {
				t.Errorf("reduced = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, n := range groupSizes {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			r, _ := g.RankOf(p.ID())
			local := []int{r, r * 10}
			parts := Gather(p, g, 0, local)
			if r == 0 {
				for i, part := range parts {
					if len(part) != 2 || part[0] != i || part[1] != i*10 {
						t.Errorf("n=%d gather part %d = %v", n, i, part)
					}
				}
			} else if parts != nil {
				t.Error("non-root gather result not nil")
			}
			back := Scatter(p, g, 0, parts)
			if len(back) != 2 || back[0] != r || back[1] != r*10 {
				t.Errorf("n=%d scatter back = %v, want %v", n, back, local)
			}
		})
	}
}

func TestGatherFlat(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		flat := GatherFlat(p, g, 0, []int{p.ID()})
		if p.ID() == 0 {
			for i, v := range flat {
				if v != i {
					t.Errorf("flat = %v", flat)
				}
			}
		}
	})
}

func TestAllGatherVariableSizes(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		local := make([]int, p.ID()+1) // rank r contributes r+1 elements
		for i := range local {
			local[i] = p.ID()
		}
		parts := AllGather(p, g, local)
		for r, part := range parts {
			if len(part) != r+1 {
				t.Errorf("proc %d: part %d has %d elements", p.ID(), r, len(part))
			}
			for _, v := range part {
				if v != r {
					t.Errorf("proc %d: part %d = %v", p.ID(), r, part)
				}
			}
		}
	})
}

func TestSendRecvTyped(t *testing.T) {
	m := testMachine(3)
	m.Run(func(p *machine.Proc) {
		g := group.MustNew([]int{2, 0, 1}) // virtual order differs from physical
		r, _ := g.RankOf(p.ID())
		switch r {
		case 0:
			Send(p, g, 2, []string{"a", "b"})
		case 2:
			got := Recv[string](p, g, 0)
			if len(got) != 2 || got[1] != "b" {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestSendCopies(t *testing.T) {
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		if p.ID() == 0 {
			buf := []int{1, 2, 3}
			Send(p, g, 1, buf)
			buf[0] = 99 // mutation after send must not corrupt the message
		} else {
			got := Recv[int](p, g, 0)
			if got[0] != 1 {
				t.Errorf("message corrupted by sender mutation: %v", got)
			}
		}
	})
}

func TestSendValRecvVal(t *testing.T) {
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		if p.ID() == 0 {
			SendVal(p, g, 1, 3.14)
		} else {
			if got := RecvVal[float64](p, g, 0); got != 3.14 {
				t.Errorf("got %g", got)
			}
		}
	})
}

func TestNonMemberCollectivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1})
		Barrier(p, sub) // procs 2,3 are not members -> panic
	})
}

func TestElemBytes(t *testing.T) {
	if got := ElemBytes[float64](); got != 8 {
		t.Errorf("float64 size = %d", got)
	}
	if got := ElemBytes[complex128](); got != 16 {
		t.Errorf("complex128 size = %d", got)
	}
	if got := ElemBytes[int32](); got != 4 {
		t.Errorf("int32 size = %d", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
