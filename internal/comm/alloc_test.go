package comm

import (
	"testing"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// These guards pin the copy early-outs in Send and Bcast (the comm-layer
// companions of the machine layer's nil-tracer allocation guard): a
// zero-length payload and a single-member broadcast must not copy.

// TestSendZeroLengthAllocFree: sending an empty payload skips the defensive
// copy, and a steady-state send/receive cycle on a warmed mailbox allocates
// nothing at all (the nil payload boxes without a heap allocation).
func TestSendZeroLengthAllocFree(t *testing.T) {
	m := testMachine(1)
	m.Run(func(p *machine.Proc) {
		g := group.World(1)
		// Warm the self-mailbox so its backing array reaches steady state.
		for i := 0; i < 3; i++ {
			Send(p, g, 0, []int(nil))
			if _, ok := p.TryRecv(0); !ok {
				t.Fatal("warmup receive found no message")
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			Send(p, g, 0, []int{})
			p.TryRecv(0)
		})
		if allocs != 0 {
			t.Errorf("zero-length Send/TryRecv cycle allocates %v per op, want 0", allocs)
		}
	})
}

// TestSingletonCollectivesAllocFree: on a single-member group, Bcast
// returns the input without copying (pinned by pointer identity), and
// Barrier and Reduce are complete no-ops — all allocation-free.
func TestSingletonCollectivesAllocFree(t *testing.T) {
	m := testMachine(1)
	m.Run(func(p *machine.Proc) {
		g := group.World(1)
		buf := []int{1, 2, 3}
		var out []int
		allocs := testing.AllocsPerRun(200, func() {
			out = Bcast(p, g, 0, buf)
		})
		if allocs != 0 {
			t.Errorf("singleton Bcast allocates %v per op, want 0", allocs)
		}
		if len(out) != 3 || &out[0] != &buf[0] {
			t.Errorf("singleton Bcast copied: out %v (aliases input: %v)", out, len(out) == 3 && &out[0] == &buf[0])
		}
		if allocs := testing.AllocsPerRun(200, func() { Barrier(p, g) }); allocs != 0 {
			t.Errorf("singleton Barrier allocates %v per op, want 0", allocs)
		}
		add := func(a, b int) int { return a + b }
		if allocs := testing.AllocsPerRun(200, func() { Reduce(p, g, 0, 4, add) }); allocs != 0 {
			t.Errorf("singleton Reduce allocates %v per op, want 0", allocs)
		}
	})
}
