package comm

import (
	"testing"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Collectives must work on groups whose virtual order differs from physical
// ids and whose members are non-contiguous — the situation after nested
// partitioning of scattered subgroups.

func scrambledGroup() *group.Group {
	return group.MustNew([]int{5, 1, 6, 2, 0})
}

func TestBarrierScrambledGroup(t *testing.T) {
	m := testMachine(8)
	g := scrambledGroup()
	stats := m.Run(func(p *machine.Proc) {
		if !g.Contains(p.ID()) {
			return
		}
		if r, _ := g.RankOf(p.ID()); r == 0 {
			p.Compute(1e5) // the slowest member
		}
		Barrier(p, g)
	})
	for _, id := range g.PhysAll() {
		if stats.Procs[id].Finish < 0.1 {
			t.Errorf("member %d finished at %g, before the slow member's 0.1s", id, stats.Procs[id].Finish)
		}
	}
	for _, id := range []int{3, 4, 7} {
		if stats.Procs[id].Finish != 0 {
			t.Errorf("non-member %d was disturbed", id)
		}
	}
}

func TestBcastReduceScrambledGroup(t *testing.T) {
	m := testMachine(8)
	g := scrambledGroup()
	m.Run(func(p *machine.Proc) {
		if !g.Contains(p.ID()) {
			return
		}
		r, _ := g.RankOf(p.ID())
		// Root is virtual rank 3 (physical 2).
		var data []int
		if r == 3 {
			data = []int{42, p.ID()}
		}
		got := Bcast(p, g, 3, data)
		if len(got) != 2 || got[0] != 42 || got[1] != 2 {
			t.Errorf("rank %d (phys %d): bcast got %v", r, p.ID(), got)
		}
		sum := AllReduce(p, g, p.ID(), func(a, b int) int { return a + b })
		if sum != 5+1+6+2+0 {
			t.Errorf("allreduce = %d", sum)
		}
	})
}

func TestGatherScanScrambledGroup(t *testing.T) {
	m := testMachine(8)
	g := scrambledGroup()
	m.Run(func(p *machine.Proc) {
		if !g.Contains(p.ID()) {
			return
		}
		r, _ := g.RankOf(p.ID())
		flat := GatherFlat(p, g, 0, []int{p.ID()})
		if r == 0 {
			want := []int{5, 1, 6, 2, 0} // virtual order
			for i, v := range flat {
				if v != want[i] {
					t.Errorf("gather order = %v, want %v", flat, want)
					break
				}
			}
		}
		scan := Scan(p, g, 1, func(a, b int) int { return a + b })
		if scan != r+1 {
			t.Errorf("rank %d scan = %d", r, scan)
		}
	})
}

func TestAlltoAllScrambledGroup(t *testing.T) {
	m := testMachine(8)
	g := scrambledGroup()
	m.Run(func(p *machine.Proc) {
		if !g.Contains(p.ID()) {
			return
		}
		r, _ := g.RankOf(p.ID())
		n := g.Size()
		parts := make([][]int, n)
		for dst := range parts {
			parts[dst] = []int{r*10 + dst}
		}
		out := AlltoAll(p, g, parts)
		for src := 0; src < n; src++ {
			if out[src][0] != src*10+r {
				t.Errorf("rank %d: from %d got %v", r, src, out[src])
			}
		}
	})
}
