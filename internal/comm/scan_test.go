package comm

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

func TestAlltoAll(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5} {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			r, _ := g.RankOf(p.ID())
			parts := make([][]int, n)
			for dst := range parts {
				parts[dst] = []int{r*100 + dst}
			}
			out := AlltoAll(p, g, parts)
			for src := 0; src < n; src++ {
				if len(out[src]) != 1 || out[src][0] != src*100+r {
					t.Errorf("n=%d rank %d: out[%d] = %v", n, r, src, out[src])
				}
			}
		})
	}
}

func TestAlltoAllCountedWithEmpties(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		r, _ := g.RankOf(p.ID())
		parts := make([][]int, n)
		for dst := range parts {
			// Rank r sends r elements to dst only when dst > r.
			if dst > r {
				for k := 0; k <= r; k++ {
					parts[dst] = append(parts[dst], r*10+dst)
				}
			}
		}
		out := AlltoAllCounted(p, g, parts)
		for src := 0; src < n; src++ {
			wantLen := 0
			if src < r {
				wantLen = src + 1
			}
			if src == r {
				wantLen = len(parts[r])
			}
			if len(out[src]) != wantLen {
				t.Errorf("rank %d: got %d from %d, want %d", r, len(out[src]), src, wantLen)
				continue
			}
			for _, v := range out[src] {
				if src != r && v != src*10+r {
					t.Errorf("rank %d: bad value %d from %d", r, v, src)
				}
			}
		}
	})
}

func TestScanSum(t *testing.T) {
	for _, n := range groupSizes {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			r, _ := g.RankOf(p.ID())
			got := Scan(p, g, r+1, func(a, b int) int { return a + b })
			want := (r + 1) * (r + 2) / 2
			if got != want {
				t.Errorf("n=%d rank %d: scan = %d, want %d", n, r, got, want)
			}
		})
	}
}

func TestScanNonCommutativeOrder(t *testing.T) {
	// String concatenation is associative but not commutative: the scan
	// must respect rank order exactly.
	n := 5
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		r, _ := g.RankOf(p.ID())
		got := Scan(p, g, string(rune('a'+r)), func(a, b string) string { return a + b })
		want := "abcde"[:r+1]
		if got != want {
			t.Errorf("rank %d: scan = %q, want %q", r, got, want)
		}
	})
}

func TestExScan(t *testing.T) {
	for _, n := range groupSizes {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			r, _ := g.RankOf(p.ID())
			got := ExScan(p, g, 1, 0, func(a, b int) int { return a + b })
			if got != r {
				t.Errorf("n=%d rank %d: exscan = %d, want %d", n, r, got, r)
			}
		})
	}
}

func TestScanPrefixProperty(t *testing.T) {
	// Property: scan results are monotone for non-negative contributions
	// and the last rank's scan equals the allreduce.
	f := func(pSeed uint8, vals [8]uint8) bool {
		n := int(pSeed)%6 + 2
		m := testMachine(n)
		ok := true
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			r, _ := g.RankOf(p.ID())
			x := int(vals[r%8])
			scan := Scan(p, g, x, func(a, b int) int { return a + b })
			total := AllReduce(p, g, x, func(a, b int) int { return a + b })
			if r == n-1 && scan != total {
				ok = false
			}
			want := 0
			for i := 0; i <= r; i++ {
				want += int(vals[i%8])
			}
			if scan != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAlltoAllWrongPartsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		AlltoAll(p, group.World(2), [][]int{{1}})
	})
}
