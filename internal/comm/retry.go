package comm

// Timeout-aware and retrying collectives for chaotic runs. The plain
// collectives in comm.go block forever on a receive; on a machine with a
// fault plan that kills processors, that would strand every member waiting
// on a dead one. The variants here bound each receive with a virtual-time
// timeout and bounded exponential backoff, and convert "the sender is gone"
// into a typed *DeadMemberError naming the member that failed — so a
// collective on a group with a dead member degrades into an error every
// surviving member can observe, never a hang.
//
// All timeouts and backoffs are in virtual time, so retry behavior is as
// deterministic as the underlying simulation: the same (plan, program)
// yields the same attempts, the same EvRetry markers, and the same errors
// under every engine. A timeout bounds *virtual* waiting only; the machine
// layer guarantees host-level progress separately (a receive from a
// terminated processor always returns).

import (
	"fmt"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// RetryPolicy bounds a retrying collective: the first receive attempt waits
// BaseTimeout virtual seconds, each subsequent attempt doubles the wait up
// to MaxTimeout, and after Attempts attempts the operation fails with a
// *TimeoutError. The zero value means DefaultRetry().
type RetryPolicy struct {
	// BaseTimeout is the first attempt's virtual-time window, in seconds.
	BaseTimeout float64
	// MaxTimeout caps the doubling backoff, in virtual seconds.
	MaxTimeout float64
	// Attempts is the total number of receive attempts (>= 1).
	Attempts int
}

// DefaultRetry returns the policy used when the zero RetryPolicy is passed:
// sized for the Paragon-like cost models of the experiments (alpha ~120us,
// fault profiles injecting up to tens of milliseconds of latency), with a
// total virtual wait budget of a couple of seconds.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{BaseTimeout: 10e-3, MaxTimeout: 1.0, Attempts: 8}
}

// normalized maps the zero value to DefaultRetry and repairs nonsensical
// fields so callers can pass partially-filled policies.
func (rp RetryPolicy) normalized() RetryPolicy {
	if rp == (RetryPolicy{}) {
		return DefaultRetry()
	}
	if rp.BaseTimeout <= 0 {
		rp.BaseTimeout = DefaultRetry().BaseTimeout
	}
	if rp.MaxTimeout < rp.BaseTimeout {
		rp.MaxTimeout = rp.BaseTimeout
	}
	if rp.Attempts < 1 {
		rp.Attempts = 1
	}
	return rp
}

// DeadMemberError reports that a collective could not complete because a
// member of the group terminated without fulfilling its part of the
// protocol. Rank/Phys name the failed member; when several members of a
// failure cascade have terminated, attribution prefers a member that
// panicked (injected death or program error) over one that merely gave up.
type DeadMemberError struct {
	// Op is the collective that failed ("bcast", "reduce", "barrier", ...).
	Op string
	// Group renders the group the collective ran on.
	Group string
	// Rank is the failed member's virtual id in the group; Phys its
	// processor id.
	Rank, Phys int
	// Panicked reports whether the failed member terminated by panic.
	Panicked bool
	// At is the failed member's virtual clock at termination.
	At float64
}

func (e *DeadMemberError) Error() string {
	how := "exited early"
	if e.Panicked {
		how = "died"
	}
	return fmt.Sprintf("comm: %s on %s: member rank %d (processor %d) %s at virtual time %g",
		e.Op, e.Group, e.Rank, e.Phys, how, e.At)
}

// TimeoutError reports that a collective exhausted its retry budget waiting
// for a member that is still running — distinguishing "slow or stuck" from
// the definitive *DeadMemberError.
type TimeoutError struct {
	// Op is the collective that failed; Group the group it ran on.
	Op    string
	Group string
	// Proc is the processor that gave up, waiting on member Rank
	// (processor Phys).
	Proc, Rank, Phys int
	// Attempts is how many receive attempts were made, and Waited the total
	// virtual time spent waiting across them.
	Attempts int
	Waited   float64
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: %s on %s: processor %d timed out waiting for rank %d (processor %d) after %d attempt(s), %g virtual seconds",
		e.Op, e.Group, e.Proc, e.Rank, e.Phys, e.Attempts, e.Waited)
}

// deadMember builds the error for a receive that failed because the sender
// terminated. The direct peer may itself be a casualty of an earlier
// failure (it saw a death and returned an error), so attribution scans the
// group for a member that panicked — the root of the cascade is causally
// ordered before every observer, so its termination flag is visible here —
// and falls back to the direct peer.
func deadMember(p *machine.Proc, g *group.Group, op string, peerRank int) *DeadMemberError {
	m := p.Machine()
	for r := 0; r < g.Size(); r++ {
		phys := g.Phys(r)
		if phys == p.ID() {
			continue
		}
		if done, panicked, at := m.ProcTerminated(phys); done && panicked {
			return &DeadMemberError{Op: op, Group: g.String(), Rank: r, Phys: phys, Panicked: true, At: at}
		}
	}
	phys := g.Phys(peerRank)
	_, panicked, at := m.ProcTerminated(phys)
	return &DeadMemberError{Op: op, Group: g.String(), Rank: peerRank, Phys: phys, Panicked: panicked, At: at}
}

// recvMsgRetry is the shared receive loop: attempt a timed receive from
// srcRank, doubling the timeout between attempts (with an EvRetry marker),
// until the message arrives, the sender is known dead, or the policy is
// exhausted.
func recvMsgRetry(p *machine.Proc, g *group.Group, srcRank int, op string, pol RetryPolicy) (machine.Message, error) {
	pol = pol.normalized()
	src := g.Phys(srcRank)
	timeout := pol.BaseTimeout
	waited := 0.0
	for attempt := 1; ; attempt++ {
		msg, out := p.RecvTimeout(src, timeout)
		switch out {
		case machine.RecvOK:
			return msg, nil
		case machine.RecvSenderDead:
			return machine.Message{}, deadMember(p, g, op, srcRank)
		}
		waited += timeout
		if attempt >= pol.Attempts {
			return machine.Message{}, &TimeoutError{
				Op: op, Group: g.String(),
				Proc: p.ID(), Rank: srcRank, Phys: src,
				Attempts: attempt, Waited: waited,
			}
		}
		p.MarkRetry(src, 0)
		timeout *= 2
		if timeout > pol.MaxTimeout {
			timeout = pol.MaxTimeout
		}
	}
}

// recvRetry is recvMsgRetry plus the payload type assertion of Recv.
func recvRetry[T any](p *machine.Proc, g *group.Group, srcRank int, op string, pol RetryPolicy) ([]T, error) {
	msg, err := recvMsgRetry(p, g, srcRank, op, pol)
	if err != nil {
		return nil, err
	}
	data, ok := msg.Data.([]T)
	if !ok {
		panic(fmt.Sprintf("comm: processor %d expected []%T from rank %d, got %T",
			p.ID(), *new(T), srcRank, msg.Data))
	}
	return data, nil
}

// RecvTimeout receives a []T from the processor with virtual id srcRank in
// g, waiting at most timeout virtual seconds past the current clock. The
// data is non-nil only for machine.RecvOK.
func RecvTimeout[T any](p *machine.Proc, g *group.Group, srcRank int, timeout float64) ([]T, machine.RecvOutcome) {
	msg, out := p.RecvTimeout(g.Phys(srcRank), timeout)
	if out != machine.RecvOK {
		return nil, out
	}
	data, ok := msg.Data.([]T)
	if !ok {
		panic(fmt.Sprintf("comm: processor %d expected []%T from rank %d, got %T",
			p.ID(), *new(T), srcRank, msg.Data))
	}
	return data, out
}

// BcastRetry is Bcast with every receive bounded by pol. On failure it
// returns a *DeadMemberError or *TimeoutError; the caller should treat the
// group as poisoned (stop using it and propagate the error) — members
// downstream of a failed one will fail their own receive in turn, so every
// survivor gets a typed error rather than a hang.
func BcastRetry[T any](p *machine.Proc, g *group.Group, rootRank int, data []T, pol RetryPolicy) ([]T, error) {
	n := g.Size()
	r := rankIn(p, g)
	if n == 1 {
		return data, nil
	}
	if span(p, "bcast", g) {
		defer p.EndSpan()
	}
	rel := (r - rootRank + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + rootRank) % n
			got, err := recvRetry[T](p, g, src, "bcast", pol)
			if err != nil {
				return nil, err
			}
			data = got
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		data = append([]T(nil), data...)
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + rootRank) % n
			Send(p, g, dst, data)
		}
		mask >>= 1
	}
	return data, nil
}

// ReduceRetry is Reduce with every receive bounded by pol. The combined
// value is significant at rootRank only; on failure every member that
// observed it gets a typed error (see BcastRetry for degradation
// semantics).
func ReduceRetry[T any](p *machine.Proc, g *group.Group, rootRank int, x T, op func(a, b T) T, pol RetryPolicy) (T, error) {
	n := g.Size()
	r := rankIn(p, g)
	var zero T
	if n > 1 && span(p, "reduce", g) {
		defer p.EndSpan()
	}
	rel := (r - rootRank + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				got, err := recvRetry[T](p, g, (src+rootRank)%n, "reduce", pol)
				if err != nil {
					return zero, err
				}
				if len(got) != 1 {
					panic(fmt.Sprintf("comm: ReduceRetry got %d values", len(got)))
				}
				x = op(x, got[0])
			}
		} else {
			dst := (rel - mask + rootRank) % n
			SendVal(p, g, dst, x)
			return zero, nil
		}
		mask <<= 1
	}
	return x, nil
}

// BarrierRetry is Barrier with every dissemination round's receive bounded
// by pol, so a barrier containing a dead member unwinds with typed errors
// on every survivor instead of hanging all of them.
func BarrierRetry(p *machine.Proc, g *group.Group, pol RetryPolicy) error {
	n := g.Size()
	if n == 1 {
		return nil
	}
	r := rankIn(p, g)
	if span(p, "barrier", g) {
		defer p.EndSpan()
	}
	for k := 1; k < n; k <<= 1 {
		dst := (r + k) % n
		src := (r - k + n) % n
		p.Send(g.Phys(dst), barrierToken{}, 4)
		msg, err := recvMsgRetry(p, g, src, "barrier", pol)
		if err != nil {
			return err
		}
		if _, ok := msg.Data.(barrierToken); !ok {
			panic(fmt.Sprintf("comm: processor %d barrier round received %T", p.ID(), msg.Data))
		}
	}
	return nil
}
