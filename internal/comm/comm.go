// Package comm implements collective communication scoped to processor
// groups: subset barriers, broadcast, reduction, gather and scatter. All
// collectives are built from the machine layer's point-to-point messages, so
// their virtual-time cost automatically scales with the *subgroup* size —
// the "localization" property Section 4 of the paper identifies as critical
// for exploiting task parallelism. No global state is involved: a barrier on
// a 5-processor subgroup touches only those 5 processors.
//
// All collectives must be called by every member of the group (SPMD
// convention) and by no one else. Message matching relies on per-ordered-pair
// FIFO order, so no tags are needed.
package comm

import (
	"fmt"
	"reflect"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// ElemBytes returns the in-memory size of one element of type T, used for
// message cost accounting.
func ElemBytes[T any]() int {
	return int(reflect.TypeOf((*T)(nil)).Elem().Size())
}

// rankIn returns p's rank in g, panicking if p is not a member — calling a
// collective from a non-member is an SPMD protocol violation.
func rankIn(p *machine.Proc, g *group.Group) int {
	r, ok := g.RankOf(p.ID())
	if !ok {
		panic(fmt.Sprintf("comm: processor %d is not a member of %v", p.ID(), g))
	}
	return r
}

// span opens a group-scoped span "op:group[...]" around a collective when a
// tracer is installed, and returns whether EndSpan must be called. The label
// is built only when tracing, so untraced collectives allocate nothing extra.
// Single-processor groups take the n == 1 early-outs before the span opens:
// a degenerate collective costs nothing and is not worth a trace row.
func span(p *machine.Proc, op string, g *group.Group) bool {
	if !p.Tracing() {
		return false
	}
	p.BeginSpan(op + ":" + g.String())
	return true
}

// Send transmits a copy of data to the processor with virtual id dstRank in
// g. The copy makes it safe for the caller to reuse data immediately; an
// empty payload skips the copy entirely and sends a nil slice.
func Send[T any](p *machine.Proc, g *group.Group, dstRank int, data []T) {
	var buf []T
	if len(data) > 0 {
		buf = append([]T(nil), data...)
	}
	p.Send(g.Phys(dstRank), buf, len(data)*ElemBytes[T]())
}

// Recv receives a []T from the processor with virtual id srcRank in g.
func Recv[T any](p *machine.Proc, g *group.Group, srcRank int) []T {
	msg := p.Recv(g.Phys(srcRank))
	data, ok := msg.Data.([]T)
	if !ok {
		panic(fmt.Sprintf("comm: processor %d expected []%T from rank %d, got %T",
			p.ID(), *new(T), srcRank, msg.Data))
	}
	return data
}

// SendVal transmits a single value.
func SendVal[T any](p *machine.Proc, g *group.Group, dstRank int, v T) {
	Send(p, g, dstRank, []T{v})
}

// RecvVal receives a single value.
func RecvVal[T any](p *machine.Proc, g *group.Group, srcRank int) T {
	s := Recv[T](p, g, srcRank)
	if len(s) != 1 {
		panic(fmt.Sprintf("comm: RecvVal got %d values", len(s)))
	}
	return s[0]
}

// barrierToken is the tiny payload exchanged by barrier rounds.
type barrierToken struct{}

// Barrier synchronizes the members of g with a dissemination barrier:
// ceil(log2 |g|) rounds of point-to-point messages. On return every member's
// clock is at least the maximum member clock at entry (plus the barrier's
// communication cost).
func Barrier(p *machine.Proc, g *group.Group) {
	n := g.Size()
	if n == 1 {
		return
	}
	r := rankIn(p, g)
	if span(p, "barrier", g) {
		defer p.EndSpan()
	}
	for k := 1; k < n; k <<= 1 {
		dst := (r + k) % n
		src := (r - k + n) % n
		p.Send(g.Phys(dst), barrierToken{}, 4)
		msg := p.Recv(g.Phys(src))
		if _, ok := msg.Data.(barrierToken); !ok {
			panic(fmt.Sprintf("comm: processor %d barrier round received %T", p.ID(), msg.Data))
		}
	}
}

// Bcast distributes root's data to every member of g using a binomial tree
// and returns each member's copy. rootRank is a virtual id in g. Non-root
// callers may pass nil. On a single-member group the input slice is
// returned as-is — no message, no copy — so callers must treat the result
// as read-only or potentially aliasing their input (they already must: the
// root's own return may share memory with what it sent).
func Bcast[T any](p *machine.Proc, g *group.Group, rootRank int, data []T) []T {
	n := g.Size()
	r := rankIn(p, g)
	if n == 1 {
		return data
	}
	if span(p, "bcast", g) {
		defer p.EndSpan()
	}
	rel := (r - rootRank + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + rootRank) % n
			data = Recv[T](p, g, src)
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		data = append([]T(nil), data...)
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + rootRank) % n
			Send(p, g, dst, data)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines one value from every member with op using a binomial tree
// and returns the result at rootRank (other members get the zero value of
// T). For non-commutative ops the combine order is the tree order, which is
// deterministic.
func Reduce[T any](p *machine.Proc, g *group.Group, rootRank int, x T, op func(a, b T) T) T {
	n := g.Size()
	r := rankIn(p, g)
	if n > 1 && span(p, "reduce", g) {
		defer p.EndSpan()
	}
	rel := (r - rootRank + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				y := RecvVal[T](p, g, (src+rootRank)%n)
				x = op(x, y)
			}
		} else {
			dst := (rel - mask + rootRank) % n
			SendVal(p, g, dst, x)
			var zero T
			return zero
		}
		mask <<= 1
	}
	return x
}

// AllReduce combines one value from every member and returns the result on
// all members.
func AllReduce[T any](p *machine.Proc, g *group.Group, x T, op func(a, b T) T) T {
	if g.Size() > 1 && span(p, "allreduce", g) {
		defer p.EndSpan()
	}
	v := Reduce(p, g, 0, x, op)
	res := Bcast(p, g, 0, []T{v})
	return res[0]
}

// ReduceSlice combines equal-length slices elementwise with op, leaving the
// result at rootRank (nil elsewhere). It reuses the binomial tree of Reduce.
func ReduceSlice[T any](p *machine.Proc, g *group.Group, rootRank int, x []T, op func(a, b T) T) []T {
	n := g.Size()
	r := rankIn(p, g)
	if n > 1 && span(p, "reduce", g) {
		defer p.EndSpan()
	}
	acc := append([]T(nil), x...)
	rel := (r - rootRank + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				y := Recv[T](p, g, (src+rootRank)%n)
				if len(y) != len(acc) {
					panic(fmt.Sprintf("comm: ReduceSlice length mismatch %d vs %d", len(y), len(acc)))
				}
				for i := range acc {
					acc[i] = op(acc[i], y[i])
				}
			}
		} else {
			dst := (rel - mask + rootRank) % n
			Send(p, g, dst, acc)
			return nil
		}
		mask <<= 1
	}
	return acc
}

// Gather collects each member's slice at rootRank, ordered by virtual id.
// Non-root members receive nil.
func Gather[T any](p *machine.Proc, g *group.Group, rootRank int, local []T) [][]T {
	n := g.Size()
	r := rankIn(p, g)
	if n > 1 && span(p, "gather", g) {
		defer p.EndSpan()
	}
	if r != rootRank {
		Send(p, g, rootRank, local)
		return nil
	}
	parts := make([][]T, n)
	parts[r] = append([]T(nil), local...)
	for src := 0; src < n; src++ {
		if src == rootRank {
			continue
		}
		parts[src] = Recv[T](p, g, src)
	}
	return parts
}

// GatherFlat is Gather followed by concatenation in virtual-id order.
func GatherFlat[T any](p *machine.Proc, g *group.Group, rootRank int, local []T) []T {
	parts := Gather(p, g, rootRank, local)
	if parts == nil {
		return nil
	}
	var out []T
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// Scatter splits parts (significant at rootRank only, one slice per member
// in virtual-id order) and returns each member's slice.
func Scatter[T any](p *machine.Proc, g *group.Group, rootRank int, parts [][]T) []T {
	n := g.Size()
	r := rankIn(p, g)
	if n > 1 && span(p, "scatter", g) {
		defer p.EndSpan()
	}
	if r == rootRank {
		if len(parts) != n {
			panic(fmt.Sprintf("comm: Scatter needs %d parts, got %d", n, len(parts)))
		}
		for dst := 0; dst < n; dst++ {
			if dst == rootRank {
				continue
			}
			Send(p, g, dst, parts[dst])
		}
		return append([]T(nil), parts[r]...)
	}
	return Recv[T](p, g, rootRank)
}

// AllGather collects every member's slice on every member, ordered by
// virtual id (gather to rank 0 followed by broadcast of sizes and data).
func AllGather[T any](p *machine.Proc, g *group.Group, local []T) [][]T {
	if g.Size() > 1 && span(p, "allgather", g) {
		defer p.EndSpan()
	}
	parts := Gather(p, g, 0, local)
	var flat []T
	var sizes []int
	if parts != nil {
		for _, part := range parts {
			sizes = append(sizes, len(part))
			flat = append(flat, part...)
		}
	}
	sizes = Bcast(p, g, 0, sizes)
	flat = Bcast(p, g, 0, flat)
	out := make([][]T, g.Size())
	off := 0
	for i, sz := range sizes {
		out[i] = flat[off : off+sz]
		off += sz
	}
	return out
}
