package comm

import (
	"fmt"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// AlltoAll performs a personalized total exchange: every member i provides
// parts[j] for every member j and receives a slice from every member,
// indexed by source rank (its own contribution is returned as-is). All
// sends are injected before any receive (the deposit model makes this
// deadlock-free), and empty slices are never sent as messages — the empty-
// message concern Section 4 raises for message-passing substrates.
func AlltoAll[T any](p *machine.Proc, g *group.Group, parts [][]T) [][]T {
	n := g.Size()
	r := rankIn(p, g)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: AlltoAll needs %d parts, got %d", n, len(parts)))
	}
	if n > 1 && span(p, "alltoall", g) {
		defer p.EndSpan()
	}
	for dst := 0; dst < n; dst++ {
		if dst == r || len(parts[dst]) == 0 {
			continue
		}
		Send(p, g, dst, parts[dst])
	}
	out := make([][]T, n)
	out[r] = append([]T(nil), parts[r]...)
	for src := 0; src < n; src++ {
		if src == r {
			continue
		}
		// Both sides know the counts only implicitly; the SPMD convention
		// here is that every pair exchanges exactly one (possibly empty)
		// logical slice, with empty ones elided. The caller must therefore
		// know which pairs are non-empty; AlltoAllCounted below handles the
		// general case. This variant requires all parts non-empty or
		// symmetric emptiness.
		if len(parts[src]) == 0 {
			continue
		}
		out[src] = Recv[T](p, g, src)
	}
	return out
}

// AlltoAllCounted first exchanges per-pair element counts (via a small
// fixed-size exchange) and then the data, so arbitrary (including empty)
// parts are safe.
func AlltoAllCounted[T any](p *machine.Proc, g *group.Group, parts [][]T) [][]T {
	n := g.Size()
	r := rankIn(p, g)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: AlltoAllCounted needs %d parts, got %d", n, len(parts)))
	}
	if n > 1 && span(p, "alltoall", g) {
		defer p.EndSpan()
	}
	counts := make([]int, n)
	for i, part := range parts {
		counts[i] = len(part)
	}
	countRows := AllGather(p, g, counts) // countRows[i][j] = i sends to j
	for dst := 0; dst < n; dst++ {
		if dst == r || len(parts[dst]) == 0 {
			continue
		}
		Send(p, g, dst, parts[dst])
	}
	out := make([][]T, n)
	out[r] = append([]T(nil), parts[r]...)
	for src := 0; src < n; src++ {
		if src == r || countRows[src][r] == 0 {
			continue
		}
		out[src] = Recv[T](p, g, src)
		if len(out[src]) != countRows[src][r] {
			panic(fmt.Sprintf("comm: AlltoAllCounted expected %d elements from %d, got %d",
				countRows[src][r], src, len(out[src])))
		}
	}
	return out
}

// Scan computes the inclusive prefix combination over the group in rank
// order: rank r receives op(x_0, x_1, ..., x_r). Kogge–Stone recursive
// doubling, ceil(log2 n) rounds; op must be associative.
func Scan[T any](p *machine.Proc, g *group.Group, x T, op func(a, b T) T) T {
	n := g.Size()
	r := rankIn(p, g)
	if n > 1 && span(p, "scan", g) {
		defer p.EndSpan()
	}
	acc := x
	for k := 1; k < n; k <<= 1 {
		if r+k < n {
			SendVal(p, g, r+k, acc)
		}
		if r-k >= 0 {
			y := RecvVal[T](p, g, r-k)
			acc = op(y, acc)
		}
	}
	return acc
}

// ExScan computes the exclusive prefix combination: rank r receives
// op(identity, x_0, ..., x_{r-1}); rank 0 receives identity.
func ExScan[T any](p *machine.Proc, g *group.Group, x T, identity T, op func(a, b T) T) T {
	if g.Size() > 1 && span(p, "scan", g) {
		defer p.EndSpan()
	}
	incl := Scan(p, g, x, op)
	n := g.Size()
	r := rankIn(p, g)
	// Shift the inclusive result right by one rank.
	if r+1 < n {
		SendVal(p, g, r+1, incl)
	}
	if r == 0 {
		return identity
	}
	return RecvVal[T](p, g, r-1)
}
