package comm_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// ExampleAllReduce combines one value per processor across a group.
func ExampleAllReduce() {
	mach := machine.New(4, sim.Paragon())
	var mu sync.Mutex
	var lines []string
	mach.Run(func(p *machine.Proc) {
		g := group.World(4)
		sum := comm.AllReduce(p, g, p.ID()+1, func(a, b int) int { return a + b })
		mu.Lock()
		lines = append(lines, fmt.Sprintf("proc %d sees sum %d", p.ID(), sum))
		mu.Unlock()
	})
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// proc 0 sees sum 10
	// proc 1 sees sum 10
	// proc 2 sees sum 10
	// proc 3 sees sum 10
}

// ExampleScan computes rank-ordered prefix sums — the building block of the
// parallel packing used by quicksort.
func ExampleScan() {
	mach := machine.New(4, sim.Paragon())
	var mu sync.Mutex
	var lines []string
	mach.Run(func(p *machine.Proc) {
		g := group.World(4)
		prefix := comm.Scan(p, g, 10, func(a, b int) int { return a + b })
		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d prefix %d", p.ID(), prefix))
		mu.Unlock()
	})
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// rank 0 prefix 10
	// rank 1 prefix 20
	// rank 2 prefix 30
	// rank 3 prefix 40
}

// ExampleBarrier shows that a subset barrier only synchronizes its group:
// the outsider keeps a zero clock.
func ExampleBarrier() {
	mach := machine.New(3, sim.Paragon())
	stats := mach.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1})
		if !sub.Contains(p.ID()) {
			return // processor 2 skips past
		}
		if p.ID() == 0 {
			p.Compute(1e6) // 0.1 virtual seconds
		}
		comm.Barrier(p, sub)
	})
	fmt.Printf("proc1 waited for proc0: %v\n", stats.Procs[1].Finish > 0.09)
	fmt.Printf("outsider untouched: %v\n", stats.Procs[2].Finish == 0)
	// Output:
	// proc1 waited for proc0: true
	// outsider untouched: true
}
