package comm

import (
	"fmt"
	"reflect"
	"testing"

	"fxpar/internal/fault"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// TestCollectivesOnDegenerateGroups runs every collective (plain and
// retrying) on the degenerate group shapes — a singleton, a two-member
// group with a gap, non-contiguous and permuted physical ids — with and
// without a non-lethal fault plan. Non-lethal chaos perturbs timing only,
// so the values must be identical in all configurations.
func TestCollectivesOnDegenerateGroups(t *testing.T) {
	const procs = 6
	flaky, err := fault.ProfileByName("flaky")
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name string
		phys []int
	}{
		{"size1", []int{2}},
		{"size2-gap", []int{0, 3}},
		{"noncontig", []int{1, 3, 4}},
		{"permuted", []int{5, 0, 2, 4}},
	}
	plans := []struct {
		name string
		plan machine.FaultPlan
	}{
		{"healthy", nil},
		{"chaotic", fault.New(11, flaky).Machine()},
	}
	add := func(a, b int) int { return a + b }
	for _, pc := range plans {
		for _, sc := range shapes {
			t.Run(fmt.Sprintf("%s/%s", pc.name, sc.name), func(t *testing.T) {
				m := testMachine(procs)
				m.SetFaults(pc.plan)
				g := group.MustNew(sc.phys)
				n := g.Size()
				payload := []int{10, 20, 30}
				m.Run(func(p *machine.Proc) {
					r, member := g.RankOf(p.ID())
					if !member {
						return // outsiders must be untouched
					}
					Barrier(p, g)
					if got := Bcast(p, g, 0, payload); !reflect.DeepEqual(got, payload) {
						t.Errorf("rank %d: Bcast = %v, want %v", r, got, payload)
					}
					sum := Reduce(p, g, 0, r+1, add)
					if r == 0 && sum != n*(n+1)/2 {
						t.Errorf("Reduce at root = %d, want %d", sum, n*(n+1)/2)
					}
					flat := GatherFlat(p, g, 0, []int{r * 10})
					if r == 0 {
						want := make([]int, n)
						for i := range want {
							want[i] = i * 10
						}
						if !reflect.DeepEqual(flat, want) {
							t.Errorf("GatherFlat = %v, want %v", flat, want)
						}
					}
					parts := make([][]int, n)
					for i := range parts {
						parts[i] = []int{i * 100}
					}
					if mine := Scatter(p, g, 0, parts); len(mine) != 1 || mine[0] != r*100 {
						t.Errorf("rank %d: Scatter = %v, want [%d]", r, mine, r*100)
					}
					all := AllGather(p, g, []int{r})
					for i, part := range all {
						if len(part) != 1 || part[0] != i {
							t.Errorf("rank %d: AllGather[%d] = %v", r, i, part)
						}
					}
					// Retrying variants behave identically on a group with
					// no dead member, chaotic or not.
					if err := BarrierRetry(p, g, RetryPolicy{}); err != nil {
						t.Errorf("rank %d: BarrierRetry: %v", r, err)
					}
					got, err := BcastRetry(p, g, 0, payload, RetryPolicy{})
					if err != nil || !reflect.DeepEqual(got, payload) {
						t.Errorf("rank %d: BcastRetry = %v, %v", r, got, err)
					}
					v, err := ReduceRetry(p, g, 0, r+1, add, RetryPolicy{})
					if err != nil || (r == 0 && v != n*(n+1)/2) {
						t.Errorf("rank %d: ReduceRetry = %d, %v", r, v, err)
					}
				})
			})
		}
	}
}
