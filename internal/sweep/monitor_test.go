package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapNamedReportsProgress: a monitored campaign must account every job
// exactly once and end done with zero running.
func TestMapNamedReportsProgress(t *testing.T) {
	m := NewMonitor()
	prev := Activate(m)
	defer Activate(prev)

	res := MapNamed("unit", 4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("boom")
		}
		return i * i, nil
	})
	if len(res) != 10 {
		t.Fatalf("len = %d", len(res))
	}
	snap := m.Snapshot()
	if len(snap.Campaigns) != 1 {
		t.Fatalf("campaigns = %+v", snap.Campaigns)
	}
	c := snap.Campaigns[0]
	if c.Name != "unit" || c.Total != 10 || c.Started != 10 || c.Finished != 10 ||
		c.Failed != 1 || c.Running != 0 || !c.Done || c.ETASec != 0 {
		t.Errorf("campaign snapshot = %+v", c)
	}
}

// TestMapUnchangedWithoutMonitor: with no active monitor, Map must behave
// exactly as before (results in submission order, panics captured).
func TestMapUnchangedWithoutMonitor(t *testing.T) {
	if ActiveMonitor() != nil {
		t.Fatal("monitor unexpectedly active")
	}
	res := Map(2, 5, func(i int) (int, error) {
		if i == 2 {
			panic("job 2")
		}
		return i, nil
	})
	for i, r := range res {
		if i == 2 {
			if _, ok := r.Err.(*PanicError); !ok {
				t.Errorf("job 2 err = %v, want PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("job %d = %+v", i, r)
		}
	}
}

// TestMonitorServesLiveSnapshotMidCampaign is the fxtop acceptance test: the
// HTTP endpoint must serve a JSON snapshot while a campaign is still
// running, showing in-flight jobs.
func TestMonitorServesLiveSnapshotMidCampaign(t *testing.T) {
	_, url, stop, err := StartMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	release := make(chan struct{})
	var entered atomic.Int64
	done := make(chan []Result[int])
	go func() {
		done <- MapNamed("live", 2, 4, func(i int) (int, error) {
			entered.Add(1)
			<-release // hold jobs mid-flight until the test has snapshotted
			return i, nil
		})
	}()
	for entered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(url + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap MonitorSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Campaigns) != 1 {
		t.Fatalf("campaigns = %+v", snap.Campaigns)
	}
	c := snap.Campaigns[0]
	if c.Name != "live" || c.Total != 4 || c.Running == 0 || c.Done {
		t.Errorf("mid-campaign snapshot = %+v, want running jobs and not done", c)
	}

	close(release)
	res := <-done
	if vals, err := Values(res); err != nil || len(vals) != 4 {
		t.Fatalf("campaign results: %v %v", vals, err)
	}

	// After completion, the same endpoint reports done.
	resp, err = http.Get(url + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c := snap.Campaigns[0]; !c.Done || c.Finished != 4 {
		t.Errorf("post-campaign snapshot = %+v", c)
	}
}

// TestMonitorSSE: /events must deliver at least one data: frame holding a
// valid snapshot.
func TestMonitorSSE(t *testing.T) {
	m, url, stop, err := StartMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	MapNamed("sse", 2, 3, func(i int) (int, error) { return i, nil })

	resp, err := http.Get(url + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap MonitorSnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if len(snap.Campaigns) != 1 || snap.Campaigns[0].Name != "sse" {
			t.Errorf("SSE snapshot = %+v", snap)
		}
		_ = m
		return // one frame is enough
	}
	t.Fatal("no data frame received")
}

// TestRenderText: the terminal view shows progress bars and flags failures.
func TestRenderText(t *testing.T) {
	var sb strings.Builder
	RenderText(&sb, MonitorSnapshot{
		UptimeSec: 62,
		Campaigns: []CampaignSnapshot{
			{Name: "table1", Total: 8, Started: 8, Finished: 8, Done: true, ElapsedSec: 2.5},
			{Name: "fig5", Total: 10, Started: 4, Finished: 2, Running: 2, Failed: 1, ElapsedSec: 1, ETASec: 4},
		},
	})
	out := sb.String()
	for _, want := range []string{"table1", "8/8", "done", "fig5", "2/10", "fail 1", "eta"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	RenderText(&empty, MonitorSnapshot{})
	if !strings.Contains(empty.String(), "no campaigns") {
		t.Errorf("empty render:\n%s", empty.String())
	}
}

// TestRenderTextShowsEngineAndChaos: the header names the active execution
// engine and the chaos plan, so a live fxtop view identifies the run — and
// a healthy run's header stays free of chaos noise.
func TestRenderTextShowsEngineAndChaos(t *testing.T) {
	var sb strings.Builder
	RenderText(&sb, MonitorSnapshot{
		Engine: "coop:4",
		Chaos:  "7:flaky",
		Campaigns: []CampaignSnapshot{
			{Name: "chaos-flaky", Total: 4, Started: 4, Finished: 4, Done: true},
		},
	})
	out := sb.String()
	for _, want := range []string{"engine coop:4", "chaos 7:flaky"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var healthy strings.Builder
	RenderText(&healthy, MonitorSnapshot{Engine: "goroutine"})
	if strings.Contains(healthy.String(), "chaos") {
		t.Errorf("healthy header mentions chaos:\n%s", healthy.String())
	}
}

// TestSetChaosLabelReachesSnapshot: the process-wide chaos label set by the
// drivers lands in every subsequent snapshot.
func TestSetChaosLabelReachesSnapshot(t *testing.T) {
	SetChaosLabel("42:havoc")
	defer SetChaosLabel("")
	m := NewMonitor()
	if snap := m.Snapshot(); snap.Chaos != "42:havoc" {
		t.Errorf("snapshot chaos = %q, want 42:havoc", snap.Chaos)
	}
}

// TestTelemetrySourceReachesSnapshotAndRender: a registered telemetry source
// is polled into snapshots and its budget line appears in the fxtop view;
// unregistering removes it again.
func TestTelemetrySourceReachesSnapshotAndRender(t *testing.T) {
	SetTelemetrySource(func() TelemetrySnapshot {
		return TelemetrySnapshot{
			Line:          "sinks 1.2% host (collector 0.8%, metrics 0.4%)  sampled compute=1/64  dropped 12345",
			SinkSharePct:  1.2,
			SampleRates:   "compute=1/64",
			DroppedEvents: 12345,
		}
	})
	defer SetTelemetrySource(nil)
	m := NewMonitor()
	snap := m.Snapshot()
	if snap.Telemetry == nil || snap.Telemetry.SinkSharePct != 1.2 || snap.Telemetry.DroppedEvents != 12345 {
		t.Fatalf("snapshot telemetry = %+v", snap.Telemetry)
	}
	var sb strings.Builder
	RenderText(&sb, snap)
	if !strings.Contains(sb.String(), "telemetry: sinks 1.2% host") {
		t.Errorf("render missing telemetry line:\n%s", sb.String())
	}
	SetTelemetrySource(nil)
	if after := m.Snapshot(); after.Telemetry != nil {
		t.Errorf("telemetry survived unregistration: %+v", after.Telemetry)
	}
}
