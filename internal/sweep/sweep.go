// Package sweep is the host-parallel simulation-campaign driver: a bounded
// worker pool that runs independent jobs — typically machine.Run simulations
// — concurrently on the host, and returns their results in deterministic
// submission order.
//
// The simulator's virtual times are deterministic regardless of host
// scheduling (every processor goroutine owns a private clock and messages
// are matched per ordered pair), so independent simulations may run
// concurrently without changing any simulated-time output: a campaign run
// under sweep.Map produces byte-identical results to the same jobs run in a
// serial loop. Only host wall-clock changes.
//
// Each job's panic is captured and returned as that job's error, so one bad
// configuration (an infeasible mapping, a degenerate distribution) fails
// its own result slot rather than the whole campaign.
package sweep

import (
	"fmt"
	"runtime"
)

// Result holds one job's outcome. Exactly one of Value/Err is meaningful:
// Err is non-nil when the job returned an error or panicked.
type Result[T any] struct {
	Value T
	Err   error
}

// PanicError wraps a panic recovered from a campaign job.
type PanicError struct {
	// Index is the job's submission index.
	Index int
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v", e.Index, e.Value)
}

// Workers resolves a -j style worker-count request: j <= 0 means "one
// worker per available CPU" (GOMAXPROCS), any positive j is taken as-is.
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(0..n-1) on a pool of at most workers goroutines and returns
// the n results indexed by submission order. workers <= 0 defaults to
// GOMAXPROCS. The call blocks until every job has finished; job panics are
// captured into the corresponding Result as a *PanicError.
// When a campaign Monitor is active (see Activate), the run is reported
// under the generic "(campaign)" name; use MapNamed to label it.
func Map[T any](workers, n int, fn func(i int) (T, error)) []Result[T] {
	return MapNamed("", workers, n, fn)
}

// runJob executes one job with panic capture. Separate from the worker loop
// so the deferred recover scopes to a single job.
func runJob[T any](i int, fn func(i int) (T, error), out *Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			out.Err = &PanicError{Index: i, Value: r}
		}
	}()
	out.Value, out.Err = fn(i)
}

// Values unwraps a fully successful campaign into its values. It returns
// the first error encountered (in submission order) if any job failed.
func Values[T any](results []Result[T]) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("sweep: job %d: %w", i, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}
