package sweep

// Campaign instrumentation: when a Monitor is active (see Activate /
// StartMonitor), every MapNamed campaign registers itself and streams
// per-job start/finish counts, so an external observer — the fxtop live
// monitor, or the HTTP endpoints in http.go — can watch a long sweep
// progress instead of staring at a silent terminal.
//
// The instrumentation is strictly an observer: job scheduling, result
// ordering and the simulated outputs are untouched, and with no active
// Monitor the added cost of Map is one atomic load.

import (
	"sync"
	"sync/atomic"
	"time"
)

// Campaign tracks one named MapNamed invocation's progress. All methods are
// nil-safe: a nil *Campaign (no active monitor) does nothing.
type Campaign struct {
	mon   *Monitor
	name  string
	total int
	begun time.Time

	started  atomic.Int64
	finished atomic.Int64
	failed   atomic.Int64
	done     atomic.Bool
	endNanos atomic.Int64 // wall end time (UnixNano) once done
}

func (c *Campaign) jobStarted() {
	if c == nil {
		return
	}
	c.started.Add(1)
	c.mon.notify()
}

func (c *Campaign) jobFinished(failed bool) {
	if c == nil {
		return
	}
	if failed {
		c.failed.Add(1)
	}
	c.finished.Add(1)
	c.mon.notify()
}

func (c *Campaign) finish() {
	if c == nil {
		return
	}
	c.endNanos.Store(time.Now().UnixNano())
	c.done.Store(true)
	c.mon.notify()
}

// CampaignSnapshot is a point-in-time view of one campaign.
type CampaignSnapshot struct {
	Name     string `json:"name"`
	Total    int    `json:"total"`
	Started  int64  `json:"started"`
	Finished int64  `json:"finished"`
	Failed   int64  `json:"failed"`
	// Running is the number of jobs started but not yet finished.
	Running int64 `json:"running"`
	Done    bool  `json:"done"`
	// ElapsedSec is wall time since the campaign began (frozen once done).
	ElapsedSec float64 `json:"elapsedSec"`
	// ETASec estimates remaining wall time from per-job throughput so far;
	// -1 until the first job finishes.
	ETASec float64 `json:"etaSec"`
}

func (c *Campaign) snapshot(now time.Time) CampaignSnapshot {
	s := CampaignSnapshot{
		Name:     c.name,
		Total:    c.total,
		Started:  c.started.Load(),
		Finished: c.finished.Load(),
		Failed:   c.failed.Load(),
		Done:     c.done.Load(),
		ETASec:   -1,
	}
	s.Running = s.Started - s.Finished
	end := now
	if s.Done {
		end = time.Unix(0, c.endNanos.Load())
	}
	s.ElapsedSec = end.Sub(c.begun).Seconds()
	if s.Done {
		s.ETASec = 0
	} else if s.Finished > 0 {
		perJob := s.ElapsedSec / float64(s.Finished)
		s.ETASec = perJob * float64(int64(s.Total)-s.Finished)
	}
	return s
}

// MonitorSnapshot is a point-in-time view of every campaign the process has
// run while the monitor was active.
type MonitorSnapshot struct {
	UptimeSec float64 `json:"uptimeSec"`
	// Engine is the machine execution engine the process runs its
	// simulations under ("" when the driver never declared one); see
	// SetEngineLabel.
	Engine string `json:"engine,omitempty"`
	// Chaos is the active fault-injection plan ("seed:profile"; "" when the
	// process runs healthy); see SetChaosLabel. Surfacing it in the snapshot
	// lets a postmortem reader of an fxtop capture identify the scenario
	// without digging through driver flags.
	Chaos     string             `json:"chaos,omitempty"`
	Campaigns []CampaignSnapshot `json:"campaigns"`
	// Telemetry is the live observability self-accounting of the process
	// (sink cost share, sample rates, dropped-event estimate); nil when the
	// driver never registered a source. See SetTelemetrySource.
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
}

// TelemetrySnapshot is the monitor's view of the process's observability
// cost, fed by trace.OverheadBudget through SetTelemetrySource. The sweep
// package deliberately holds strings and scalars only — it must not import
// the trace package, which would drag machine internals into every driver
// that just wants campaign progress bars.
type TelemetrySnapshot struct {
	// Line is the compact one-line budget rendering (sink share percent,
	// per-sink breakdown, sample rates, dropped count) fxtop prints verbatim.
	Line string `json:"line"`
	// SinkSharePct is the sinks' estimated share of host wall time.
	SinkSharePct float64 `json:"sinkSharePct"`
	// SampleRates is the active sampling configuration ("compute=1/64 ..."
	// or "unsampled").
	SampleRates string `json:"sampleRates,omitempty"`
	// DroppedEvents counts events the sampler has thinned away so far; the
	// unsampled estimate of any kept count is count / rate.
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
}

// telemetrySource is polled at Snapshot time; same process-global
// atomic.Pointer pattern as the engine/chaos labels.
var telemetrySource atomic.Pointer[func() TelemetrySnapshot]

// SetTelemetrySource registers a callback that yields the process's current
// telemetry self-accounting; nil unregisters. Drivers with an active
// trace.OverheadBudget call it once so fxtop and the HTTP snapshot show the
// live overhead-budget line.
func SetTelemetrySource(fn func() TelemetrySnapshot) {
	if fn == nil {
		telemetrySource.Store(nil)
		return
	}
	telemetrySource.Store(&fn)
}

// engineLabel is the process-global engine name surfaced in snapshots.
var engineLabel atomic.Pointer[string]

// SetEngineLabel records which machine execution engine this process runs
// its simulation campaigns under, so monitor consumers (fxtop, the HTTP
// endpoints) can tell a goroutine campaign from a coop one. Drivers call it
// once after flag parsing; it is an observer-facing label only.
func SetEngineLabel(name string) { engineLabel.Store(&name) }

// chaosLabel is the process-global fault-plan label surfaced in snapshots.
var chaosLabel atomic.Pointer[string]

// SetChaosLabel records the fault-injection plan (fault.Plan.String(),
// "seed:profile") the process injects into its simulations, so monitor
// consumers can tell a chaos campaign from a healthy one at a glance.
// Drivers call it once after parsing a non-empty -chaos flag; it is an
// observer-facing label only.
func SetChaosLabel(plan string) { chaosLabel.Store(&plan) }

// Monitor aggregates campaign progress for one process. Create with
// NewMonitor (or StartMonitor, which also serves it over HTTP) and install
// with Activate.
type Monitor struct {
	start time.Time

	closeOnce sync.Once
	done      chan struct{}

	mu        sync.Mutex
	campaigns []*Campaign
	keep      int
	subs      map[chan struct{}]struct{}
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		start: time.Now(),
		done:  make(chan struct{}),
		subs:  make(map[chan struct{}]struct{}),
	}
}

// Close marks the monitor as shut down: Done()'s channel closes, which tells
// every event-stream subscriber (the /events SSE handlers) to finish its
// current frame and end the stream cleanly. Campaign accounting keeps
// working after Close — only the streams end. Idempotent.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() { close(m.done) })
}

// Done returns a channel closed when the monitor shuts down. Event-stream
// handlers select on it so a server Shutdown drains them promptly instead of
// aborting connections mid-frame.
func (m *Monitor) Done() <-chan struct{} { return m.done }

// SetKeep bounds the completed campaigns the monitor retains (0, the
// default, retains everything — right for one-shot experiment drivers).
// Long-running servers set a cap so thousands of requests don't grow the
// snapshot without bound; running campaigns are never dropped.
func (m *Monitor) SetKeep(n int) {
	m.mu.Lock()
	m.keep = n
	m.pruneLocked()
	m.mu.Unlock()
}

// pruneLocked drops the oldest finished campaigns until the list is within
// keep. Callers hold m.mu.
func (m *Monitor) pruneLocked() {
	if m.keep <= 0 {
		return
	}
	for len(m.campaigns) > m.keep {
		dropped := false
		for i, c := range m.campaigns {
			if c.done.Load() {
				m.campaigns = append(m.campaigns[:i], m.campaigns[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything left is still running
		}
	}
}

// begin registers a new campaign. Nil-safe.
func (m *Monitor) begin(name string, total int) *Campaign {
	if m == nil {
		return nil
	}
	if name == "" {
		name = "(campaign)"
	}
	c := &Campaign{mon: m, name: name, total: total, begun: time.Now()}
	m.mu.Lock()
	m.campaigns = append(m.campaigns, c)
	m.pruneLocked()
	m.mu.Unlock()
	m.notify()
	return c
}

// Snapshot returns the current view of all campaigns, in begin order.
func (m *Monitor) Snapshot() MonitorSnapshot {
	now := time.Now()
	m.mu.Lock()
	cs := append([]*Campaign(nil), m.campaigns...)
	m.mu.Unlock()
	out := MonitorSnapshot{UptimeSec: now.Sub(m.start).Seconds()}
	if lbl := engineLabel.Load(); lbl != nil {
		out.Engine = *lbl
	}
	if lbl := chaosLabel.Load(); lbl != nil {
		out.Chaos = *lbl
	}
	if src := telemetrySource.Load(); src != nil {
		t := (*src)()
		out.Telemetry = &t
	}
	for _, c := range cs {
		out.Campaigns = append(out.Campaigns, c.snapshot(now))
	}
	return out
}

// subscribe returns a channel that receives a (coalesced) tick whenever
// campaign state changes, plus an unsubscribe func.
func (m *Monitor) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	m.mu.Lock()
	m.subs[ch] = struct{}{}
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		delete(m.subs, ch)
		m.mu.Unlock()
	}
}

// notify wakes subscribers; sends coalesce into the buffered slot, so a
// burst of job completions costs subscribers one wakeup.
func (m *Monitor) notify() {
	if m == nil {
		return
	}
	m.mu.Lock()
	for ch := range m.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	m.mu.Unlock()
}

// active is the process-global monitor MapNamed reports to; nil (the
// default) disables all instrumentation.
var active atomic.Pointer[Monitor]

// Activate installs m as the process-global campaign monitor (nil to
// disable). Returns the previous monitor.
func Activate(m *Monitor) *Monitor {
	return active.Swap(m)
}

// ActiveMonitor returns the installed monitor, or nil.
func ActiveMonitor() *Monitor { return active.Load() }

// MapNamed is Map with a campaign name for the active monitor: identical
// scheduling and results, plus per-job start/finish accounting when a
// Monitor is installed.
func MapNamed[T any](name string, workers, n int, fn func(i int) (T, error)) []Result[T] {
	camp := ActiveMonitor().begin(name, n) // nil-safe: nil monitor → nil campaign
	defer camp.finish()
	results := make([]Result[T], n)
	if n == 0 {
		return results
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				camp.jobStarted()
				runJob(i, fn, &results[i])
				camp.jobFinished(results[i].Err != nil)
			}
		}()
	}
	wg.Wait()
	return results
}
