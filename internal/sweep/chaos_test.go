package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"fxpar/internal/fault"
)

// chaosScenario is a deterministic stand-in for a simulation: it "survives"
// unless the plan kills processor 0..n-1, and its makespan stretches with
// the plan's slowdown of processor 0 — a pure function of the plan, like a
// real run.
func chaosScenario(n int, baseline float64) func(*fault.Plan) (float64, error) {
	return func(pl *fault.Plan) (float64, error) {
		if v := pl.Victims(n); len(v) > 0 {
			return 0, fmt.Errorf("scenario: %d processors dead", len(v))
		}
		return baseline * pl.SlowFactor(0), nil
	}
}

// TestChaosCampaignDeterministicAcrossWorkers: the report is a pure function
// of (scenario, profile, base, n) — byte-identical for every -j level.
func TestChaosCampaignDeterministicAcrossWorkers(t *testing.T) {
	prof, err := fault.ProfileByName("havoc")
	if err != nil {
		t.Fatal(err)
	}
	run := chaosScenario(64, 1.0)
	want, errJS := json.Marshal(ChaosCampaign("chaos-test", 1, prof, 7, 32, 1.0, run))
	if errJS != nil {
		t.Fatal(errJS)
	}
	for _, workers := range []int{2, 8} {
		got, err := json.Marshal(ChaosCampaign("chaos-test", workers, prof, 7, 32, 1.0, run))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d report differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestChaosCampaignStats pins the aggregation: survival counts, min/mean/max
// makespans and degradation percentages over the survivors only.
func TestChaosCampaignStats(t *testing.T) {
	prof, _ := fault.ProfileByName("havoc")
	rep := ChaosCampaign("chaos-test", 4, prof, 7, 32, 1.0, chaosScenario(64, 1.0))
	if rep.Survived+rep.Failed != rep.Seeds || rep.Seeds != 32 {
		t.Fatalf("survived %d + failed %d != seeds %d", rep.Survived, rep.Failed, rep.Seeds)
	}
	if rep.Failed == 0 {
		t.Error("havoc at 64 procs across 32 seeds killed nobody — kill path untested")
	}
	if rep.Survived == 0 {
		t.Fatal("no survivors — stats path untested")
	}
	if rep.MinMakespan < rep.Baseline || rep.MinMakespan > rep.MeanMakespan || rep.MeanMakespan > rep.MaxMakespan {
		t.Errorf("makespan ordering violated: min %g mean %g max %g (baseline %g)",
			rep.MinMakespan, rep.MeanMakespan, rep.MaxMakespan, rep.Baseline)
	}
	wantMax := (rep.MaxMakespan - rep.Baseline) / rep.Baseline * 100
	if rep.MaxDegradationPct != wantMax {
		t.Errorf("MaxDegradationPct = %g, want %g", rep.MaxDegradationPct, wantMax)
	}
	survived, failed := 0, 0
	for _, o := range rep.Outcomes {
		if o.Error != "" {
			failed++
			if o.Makespan != 0 {
				t.Errorf("failed seed %d has makespan %g", o.Seed, o.Makespan)
			}
		} else {
			survived++
		}
	}
	if survived != rep.Survived || failed != rep.Failed {
		t.Errorf("outcome tallies %d/%d disagree with report %d/%d", survived, failed, rep.Survived, rep.Failed)
	}
}

// TestChaosCampaignCapturesPanics: a panicking scenario (how a processor
// death surfaces from machine.Run) fails its own seed instead of the
// campaign.
func TestChaosCampaignCapturesPanics(t *testing.T) {
	prof, _ := fault.ProfileByName("none")
	rep := ChaosCampaign("chaos-test", 2, prof, 1, 3, 1.0, func(pl *fault.Plan) (float64, error) {
		panic(fmt.Sprintf("boom seed %d", pl.Seed))
	})
	if rep.Failed != 3 || rep.Survived != 0 {
		t.Fatalf("failed/survived = %d/%d, want 3/0", rep.Failed, rep.Survived)
	}
	for _, o := range rep.Outcomes {
		if !strings.Contains(o.Error, "boom seed") {
			t.Errorf("seed %d error %q does not carry the panic", o.Seed, o.Error)
		}
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "survived: 0/3") {
		t.Errorf("WriteText missing survival line:\n%s", sb.String())
	}
}
