package sweep

// HTTP exposure of the campaign monitor, consumed by cmd/fxtop or any
// curl/browser:
//
//	GET /snapshot  — one MonitorSnapshot as JSON
//	GET /events    — server-sent events: one JSON snapshot per state change
//	                 (coalesced), plus a 1 s heartbeat so ETAs keep moving
//
// StartMonitor binds a listener, installs the monitor as the process-global
// campaign observer, and returns the base URL — which the -monitor flag of
// the experiment drivers prints so fxtop can attach.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// DefaultMonitorAddr is where experiment drivers bind when -monitor is given
// without an address.
const DefaultMonitorAddr = "127.0.0.1:6070"

// ServeMux returns the monitor's HTTP handler, for embedding in an existing
// server.
func (m *Monitor) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", m.handleSnapshot)
	mux.HandleFunc("/events", m.handleEvents)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderText(w, m.Snapshot())
	})
	return mux
}

func (m *Monitor) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Snapshot()) //nolint:errcheck // client gone is not our error
}

func (m *Monitor) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := m.subscribe()
	defer cancel()
	heartbeat := time.NewTicker(time.Second)
	defer heartbeat.Stop()
	send := func() bool {
		js, err := json.Marshal(m.Snapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", js); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-m.done:
			// Monitor shutting down: the stream ends here, between frames,
			// so the client never sees a truncated data: line. Returning
			// promptly is what lets http.Server.Shutdown drain instead of
			// timing out on an infinite stream.
			return
		case <-ch:
		case <-heartbeat.C:
		}
		if !send() {
			return
		}
	}
}

// StartMonitor creates a Monitor, serves it on addr (DefaultMonitorAddr when
// empty; use ":0" for an ephemeral port), and installs it as the
// process-global campaign observer. The returned stop func deactivates the
// monitor and shuts the server down gracefully: live /events subscribers see
// the monitor close, finish their current frame, and end the stream cleanly
// before the listener goes away (srv.Close() is only the last resort for a
// connection that never observes the close within the drain deadline).
func StartMonitor(addr string) (m *Monitor, url string, stop func(), err error) {
	if addr == "" {
		addr = DefaultMonitorAddr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, fmt.Errorf("sweep: monitor listen %s: %w", addr, err)
	}
	m = NewMonitor()
	srv := &http.Server{Handler: m.ServeMux()}
	go srv.Serve(ln) //nolint:errcheck // closed on stop
	prev := Activate(m)
	stop = func() {
		Activate(prev)
		m.Close() // subscribers end their streams between frames
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() // drain deadline passed: cut stragglers loose
		}
	}
	return m, "http://" + ln.Addr().String(), stop, nil
}

// MonitorFromFlag interprets the experiment drivers' shared -monitor flag:
// "" leaves monitoring off (no-op stop), "auto" binds DefaultMonitorAddr,
// anything else is a listen address. Callers print the returned URL so
// fxtop users know where to attach.
//
// "auto" is a convenience, not a demand for one specific port: when the
// default address is already bound (typically a second driver also run with
// -monitor auto), the experiment run must not die over it — the monitor
// falls back to an ephemeral port with a printed warning, and the returned
// URL says where it actually listens.
func MonitorFromFlag(value string) (url string, stop func(), err error) {
	return monitorFromFlag(value, os.Stderr)
}

// monitorFromFlag is MonitorFromFlag with an injectable warning sink for
// tests.
func monitorFromFlag(value string, warn io.Writer) (url string, stop func(), err error) {
	if value == "" {
		return "", func() {}, nil
	}
	auto := value == "auto"
	if auto {
		value = DefaultMonitorAddr
	}
	_, url, stop, err = StartMonitor(value)
	if err != nil && auto {
		fmt.Fprintf(warn, "sweep: monitor: %v; falling back to an ephemeral port\n", err)
		_, url, stop, err = StartMonitor("127.0.0.1:0")
	}
	return url, stop, err
}

// RenderText renders a snapshot as the fxtop terminal view: one line per
// campaign with a progress bar, throughput and ETA.
func RenderText(w io.Writer, s MonitorSnapshot) {
	fmt.Fprintf(w, "campaign monitor  up %s", fmtDur(s.UptimeSec))
	if s.Engine != "" {
		fmt.Fprintf(w, "  engine %s", s.Engine)
	}
	if s.Chaos != "" {
		fmt.Fprintf(w, "  chaos %s", s.Chaos)
	}
	fmt.Fprintln(w)
	if s.Telemetry != nil {
		fmt.Fprintf(w, "telemetry: %s\n", s.Telemetry.Line)
	}
	if len(s.Campaigns) == 0 {
		fmt.Fprintln(w, "(no campaigns yet)")
		return
	}
	wn := len("campaign")
	for _, c := range s.Campaigns {
		if len(c.Name) > wn {
			wn = len(c.Name)
		}
	}
	const barW = 30
	for _, c := range s.Campaigns {
		frac := 0.0
		if c.Total > 0 {
			frac = float64(c.Finished) / float64(c.Total)
		}
		fill := int(frac * barW)
		if fill > barW {
			fill = barW
		}
		if fill < 0 {
			fill = 0
		}
		bar := make([]byte, barW)
		for i := range bar {
			if i < fill {
				bar[i] = '='
			} else {
				bar[i] = ' '
			}
		}
		// An unfinished campaign with a non-positive ETA has no usable
		// estimate: negative means "no job finished yet", and exactly 0
		// means the estimate stopped advancing (a stalled or retried
		// campaign) — printing "eta 0.0s" forever would claim imminent
		// completion that never comes.
		status := "eta ?"
		if c.Done {
			status = "done"
		} else if c.ETASec > 0 {
			status = fmt.Sprintf("eta %s", fmtDur(c.ETASec))
		}
		fmt.Fprintf(w, "%-*s [%s] %d/%d  run %d  fail %d  %s  %s\n",
			wn, c.Name, bar, c.Finished, c.Total, c.Running, c.Failed,
			fmtDur(c.ElapsedSec), status)
	}
}

// fmtDur renders seconds compactly (1.2s, 3m05s, 2h10m).
func fmtDur(sec float64) string {
	if sec < 0 {
		return "?"
	}
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}
