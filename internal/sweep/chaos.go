package sweep

// Chaos campaigns: fan one simulation scenario across N decorrelated fault
// seeds and aggregate survival and latency-degradation statistics. The
// scenario function runs under one fault.Plan per seed; because both the
// fault decisions and the simulator's virtual times are deterministic, the
// whole report — makespans, error strings, survival counts — is a pure
// function of (scenario, profile, base seed, N), identical for every worker
// count, engine, and host. That makes a chaos report a committable benchmark
// artifact (BENCH_chaos.json) that CI can diff exactly.

import (
	"fmt"
	"io"

	"fxpar/internal/fault"
)

// ChaosOutcome is one seed's result in a chaos campaign.
type ChaosOutcome struct {
	Seed uint64
	// Makespan is the surviving run's virtual makespan (0 on failure).
	Makespan float64 `json:",omitempty"`
	// Error is the typed failure rendered as text ("" = survived). Runs
	// never hang: a lethal fault surfaces as a machine.RunError naming the
	// root death, and an output mismatch as a verification error.
	Error string `json:",omitempty"`
}

// ChaosReport aggregates one chaos campaign.
type ChaosReport struct {
	Name     string
	Profile  string
	BaseSeed uint64
	Seeds    int
	Survived int // completed with verified-correct output
	Failed   int // typed error (processor death cascade or bad output)
	// Baseline is the healthy (fault-free) makespan of the same scenario in
	// virtual seconds; degradation percentages are relative to it.
	Baseline float64
	// Survivor makespan statistics (virtual seconds); zero when nothing
	// survived.
	MinMakespan  float64
	MeanMakespan float64
	MaxMakespan  float64
	// Latency degradation of the surviving runs vs Baseline, in percent.
	MeanDegradationPct float64
	MaxDegradationPct  float64
	Outcomes           []ChaosOutcome
}

// ChaosCampaign runs the scenario once per seed derived from base (see
// fault.Seeds), each under a fresh Plan with the given profile, fanning out
// over at most workers host threads (MapNamed semantics: <= 0 means
// GOMAXPROCS, and an active campaign monitor sees the runs under name).
//
// run executes the scenario under the plan and returns its virtual makespan;
// it reports failure by returning an error or panicking (a processor-death
// *machine.RunError propagates as a panic and is captured per job). baseline
// is the scenario's healthy makespan, measured by the caller without a plan.
func ChaosCampaign(name string, workers int, prof fault.Profile, base uint64, n int,
	baseline float64, run func(*fault.Plan) (float64, error)) ChaosReport {
	seeds := fault.Seeds(base, n)
	res := MapNamed(name, workers, n, func(i int) (float64, error) {
		return run(fault.New(seeds[i], prof))
	})

	rep := ChaosReport{
		Name: name, Profile: prof.Name, BaseSeed: base, Seeds: n,
		Baseline: baseline, Outcomes: make([]ChaosOutcome, n),
	}
	sum := 0.0
	for i, r := range res {
		out := &rep.Outcomes[i]
		out.Seed = seeds[i]
		if r.Err != nil {
			out.Error = r.Err.Error()
			rep.Failed++
			continue
		}
		out.Makespan = r.Value
		if rep.Survived == 0 || out.Makespan < rep.MinMakespan {
			rep.MinMakespan = out.Makespan
		}
		if out.Makespan > rep.MaxMakespan {
			rep.MaxMakespan = out.Makespan
		}
		sum += out.Makespan
		rep.Survived++
	}
	if rep.Survived > 0 {
		rep.MeanMakespan = sum / float64(rep.Survived)
		if baseline > 0 {
			rep.MeanDegradationPct = (rep.MeanMakespan - baseline) / baseline * 100
			rep.MaxDegradationPct = (rep.MaxMakespan - baseline) / baseline * 100
		}
	}
	return rep
}

// WriteText renders the report for the console.
func (r ChaosReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "chaos campaign %q: profile %s, %d seeds from base %d\n",
		r.Name, r.Profile, r.Seeds, r.BaseSeed)
	fmt.Fprintf(w, "  survived: %d/%d\n", r.Survived, r.Seeds)
	if r.Survived > 0 {
		fmt.Fprintf(w, "  makespan: baseline %.6fs, survivors min/mean/max %.6f/%.6f/%.6fs (mean %+.2f%%, max %+.2f%%)\n",
			r.Baseline, r.MinMakespan, r.MeanMakespan, r.MaxMakespan,
			r.MeanDegradationPct, r.MaxDegradationPct)
	}
	for _, o := range r.Outcomes {
		if o.Error != "" {
			fmt.Fprintf(w, "  seed %d failed: %s\n", o.Seed, o.Error)
		}
	}
}
