package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func TestMapReturnsResultsInSubmissionOrder(t *testing.T) {
	n := 100
	res := Map(8, n, func(i int) (int, error) { return i * i, nil })
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Errorf("result %d = %d, want %d", i, r.Value, i*i)
		}
	}
}

func TestMapCapturesPanicPerJob(t *testing.T) {
	res := Map(4, 10, func(i int) (string, error) {
		if i == 3 {
			panic("bad configuration")
		}
		if i == 7 {
			return "", errors.New("plain error")
		}
		return fmt.Sprintf("ok-%d", i), nil
	})
	for i, r := range res {
		switch i {
		case 3:
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job 3 error = %v, want *PanicError", r.Err)
			}
			if pe.Index != 3 || pe.Value != "bad configuration" {
				t.Errorf("panic error = %+v", pe)
			}
		case 7:
			if r.Err == nil || r.Err.Error() != "plain error" {
				t.Errorf("job 7 error = %v", r.Err)
			}
		default:
			if r.Err != nil || r.Value != fmt.Sprintf("ok-%d", i) {
				t.Errorf("job %d = %+v", i, r)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	Map(workers, 50, func(i int) (struct{}, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		runtime.Gosched()
		cur.Add(-1)
		return struct{}{}, nil
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, cap is %d", p, workers)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapZeroJobs(t *testing.T) {
	res := Map[int](4, 0, func(i int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if len(res) != 0 {
		t.Errorf("got %d results for zero jobs", len(res))
	}
}

func TestValues(t *testing.T) {
	good := Map(2, 3, func(i int) (int, error) { return i, nil })
	vals, err := Values(good)
	if err != nil || len(vals) != 3 || vals[2] != 2 {
		t.Errorf("Values = %v, %v", vals, err)
	}
	bad := Map(2, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if _, err := Values(bad); err == nil {
		t.Error("Values should surface the job error")
	}
}

// TestConcurrentSimulationsStayDeterministic is the campaign-level guarantee
// the whole package rests on: independent machine.Run simulations executed
// concurrently produce the same virtual times as the same simulations run
// serially, regardless of host scheduling.
func TestConcurrentSimulationsStayDeterministic(t *testing.T) {
	sim1 := func(procs int) float64 {
		m := machine.New(procs, sim.Paragon())
		st := m.Run(func(p *machine.Proc) {
			n := p.Machine().N()
			for round := 0; round < 10; round++ {
				p.Compute(float64(100 * (p.ID() + 1)))
				p.Send((p.ID()+1)%n, p.ID(), 8)
				p.Recv((p.ID() - 1 + n) % n)
			}
		})
		return st.MakespanTime()
	}
	procCounts := []int{1, 2, 4, 8, 16}
	serial := make([]float64, len(procCounts))
	for i, p := range procCounts {
		serial[i] = sim1(p)
	}
	res := Map(len(procCounts), len(procCounts), func(i int) (float64, error) {
		return sim1(procCounts[i]), nil
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != serial[i] {
			t.Errorf("procs=%d: concurrent makespan %g != serial %g", procCounts[i], r.Value, serial[i])
		}
	}
}
