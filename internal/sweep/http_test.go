package sweep

// Regression tests for the monitor HTTP layer's shutdown and bind behaviour:
// stopping a monitor must end live SSE streams cleanly (no truncated frame,
// no leaked handler goroutines), and -monitor auto must survive the default
// port being taken by another driver.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestStopMonitorEndsSSECleanly: with a live /events subscriber attached,
// stop() must end the stream between frames — every data: line the client
// received parses as a complete snapshot and the body ends on a frame
// boundary — and must not leak the handler goroutine. Formerly stop()
// called srv.Close(), which aborted the handler mid-write and abandoned its
// subscription.
func TestStopMonitorEndsSSECleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	m, url, stop, err := StartMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	MapNamed("sse-shutdown", 2, 3, func(i int) (int, error) { return i, nil })

	resp, err := http.Get(url + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type readResult struct {
		body []byte
		err  error
	}
	got := make(chan readResult, 1)
	go func() {
		b, err := io.ReadAll(resp.Body) // blocks until the server ends the stream
		got <- readResult{b, err}
	}()

	// Let the subscriber receive at least the initial frame, then stop.
	time.Sleep(50 * time.Millisecond)
	stop()

	var res readResult
	select {
	case res = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after stop()")
	}
	if res.err != nil {
		t.Fatalf("stream ended with transport error: %v", res.err)
	}
	if len(res.body) == 0 {
		t.Fatal("no SSE data received before stop")
	}
	if !bytes.HasSuffix(res.body, []byte("\n\n")) {
		t.Errorf("stream truncated mid-frame: body ends %q", tail(res.body, 40))
	}
	frames := 0
	for _, line := range strings.Split(string(res.body), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("unexpected SSE line %q", line)
		}
		var snap MonitorSnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Fatalf("truncated or malformed frame %q: %v", line, err)
		}
		frames++
	}
	if frames == 0 {
		t.Error("no complete data frames in stream")
	}

	// The monitor's Done channel is closed and the handler goroutines are
	// gone (allow the runtime a moment to reap them).
	select {
	case <-m.Done():
	default:
		t.Error("monitor Done() not closed after stop")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after stop", before, runtime.NumGoroutine())
}

func tail(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}

// TestMonitorAutoFallsBackWhenPortTaken: two drivers running with
// -monitor auto must both start. The test takes the default port itself and
// asserts the flag still yields a working monitor on an ephemeral port, with
// a warning naming the failure.
func TestMonitorAutoFallsBackWhenPortTaken(t *testing.T) {
	ln, err := net.Listen("tcp", DefaultMonitorAddr)
	if err == nil {
		// We hold the default port for the duration of the test; the flag
		// must fall back. (If something else already holds it, the port is
		// taken all the same and the fallback path is still what runs.)
		defer ln.Close()
	}

	var warn strings.Builder
	url, stop, err := monitorFromFlag("auto", &warn)
	if err != nil {
		t.Fatalf("monitorFromFlag(auto) with busy port: %v", err)
	}
	defer stop()
	if url == "" || strings.HasSuffix(url, DefaultMonitorAddr) {
		t.Fatalf("fallback url = %q, want an ephemeral port", url)
	}
	if !strings.Contains(warn.String(), "falling back") {
		t.Errorf("no fallback warning printed; warn = %q", warn.String())
	}

	// The run really started: the fallback monitor serves snapshots.
	resp, err := http.Get(url + "/snapshot")
	if err != nil {
		t.Fatalf("fallback monitor not serving: %v", err)
	}
	defer resp.Body.Close()
	var snap MonitorSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("fallback snapshot: %v", err)
	}
}

// TestMonitorExplicitAddrStillFails: only "auto" falls back — a user who
// named a specific address gets the bind error, not a silent port swap.
func TestMonitorExplicitAddrStillFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var warn strings.Builder
	_, _, err = monitorFromFlag(ln.Addr().String(), &warn)
	if err == nil {
		t.Fatal("explicit busy address did not error")
	}
	if warn.Len() != 0 {
		t.Errorf("explicit address printed fallback warning: %q", warn.String())
	}
}

// TestFmtDurEdgeCases covers the compact duration renderer over its three
// formats and the degenerate inputs the progress view feeds it.
func TestFmtDurEdgeCases(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0, "0.0s"},
		{-1, "?"},
		{-0.001, "?"},
		{0.04, "0.0s"},
		{1.25, "1.2s"},
		{59.9, "59.9s"},
		{60, "1m00s"},
		{125, "2m05s"},
		{3599, "59m59s"},
		{3600, "1h00m"},
		{3725, "1h02m"},
		{7343, "2h02m"},
	}
	for _, c := range cases {
		if got := fmtDur(c.sec); got != c.want {
			t.Errorf("fmtDur(%g) = %q, want %q", c.sec, got, c.want)
		}
	}
}

// TestRenderTextStalledETA: an unfinished campaign whose ETA estimate reads
// exactly 0 is stalled, not about to finish — the view must say "eta ?"
// rather than "eta 0.0s" forever. A genuinely advancing ETA still renders,
// and a retried campaign with Finished transiently above Total must not
// overflow the bar.
func TestRenderTextStalledETA(t *testing.T) {
	var sb strings.Builder
	RenderText(&sb, MonitorSnapshot{
		Campaigns: []CampaignSnapshot{
			{Name: "stalled", Total: 8, Started: 8, Finished: 4, Running: 4, ElapsedSec: 10, ETASec: 0},
			{Name: "fresh", Total: 8, Started: 1, Finished: 0, Running: 1, ElapsedSec: 1, ETASec: -1},
			{Name: "moving", Total: 8, Started: 6, Finished: 4, Running: 2, ElapsedSec: 2, ETASec: 3.5},
			{Name: "retried", Total: 4, Started: 6, Finished: 6, Running: 0, ElapsedSec: 2, ETASec: 0.5},
		},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	find := func(name string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, name) {
				return l
			}
		}
		t.Fatalf("no line for %q in:\n%s", name, out)
		return ""
	}
	if l := find("stalled"); !strings.Contains(l, "eta ?") || strings.Contains(l, "eta 0.0s") {
		t.Errorf("stalled campaign line = %q, want eta ?", l)
	}
	if l := find("fresh"); !strings.Contains(l, "eta ?") {
		t.Errorf("fresh campaign line = %q, want eta ?", l)
	}
	if l := find("moving"); !strings.Contains(l, "eta 3.5s") {
		t.Errorf("moving campaign line = %q, want eta 3.5s", l)
	}
	l := find("retried")
	if n := strings.Count(l, "="); n > 30 {
		t.Errorf("retried campaign bar overflows: %d fill chars in %q", n, l)
	}
}

// TestMonitorKeepPrunesDoneCampaigns: a long-running server caps retained
// campaigns; finished ones age out oldest-first, running ones survive.
func TestMonitorKeepPrunesDoneCampaigns(t *testing.T) {
	m := NewMonitor()
	m.SetKeep(3)
	prev := Activate(m)
	defer Activate(prev)

	for i := 0; i < 5; i++ {
		MapNamed("done-campaign", 1, 1, func(int) (int, error) { return 0, nil })
	}
	// A still-running campaign must never be pruned, even at the cap.
	release := make(chan struct{})
	started := make(chan struct{})
	go MapNamed("running-campaign", 1, 1, func(int) (int, error) {
		close(started)
		<-release
		return 0, nil
	})
	<-started
	MapNamed("last", 1, 1, func(int) (int, error) { return 0, nil })

	snap := m.Snapshot()
	if len(snap.Campaigns) > 3 {
		t.Errorf("kept %d campaigns, want <= 3: %+v", len(snap.Campaigns), snap.Campaigns)
	}
	foundRunning := false
	for _, c := range snap.Campaigns {
		if c.Name == "running-campaign" {
			foundRunning = true
		}
	}
	if !foundRunning {
		t.Errorf("running campaign pruned: %+v", snap.Campaigns)
	}
	close(release)
}
