// Package barneshut implements the Barnes-Hut N-body force computation with
// dynamically nested task parallelism, following Figure 7 and Section 5.3 of
// the paper:
//
//   - build_bh_tree builds a *balanced* binary tree by repeatedly
//     partitioning the particles at the median along one axis at a time
//     (x, then y, then z, cyclically); the particles end up sorted in the
//     order of the tree's leaves;
//   - compute_force recursively divides the particles (and the current
//     processors) in half; each subgroup receives a partial tree holding the
//     top k levels of the current tree plus its own half's full subtree,
//     with branches into the missing half marked *remote*;
//   - a particle whose traversal would have to open a remote branch is
//     placed on a worklist and handed to the parent subgroup, which retries
//     with its more complete tree — worklists shrink rapidly (O(n^(2/3))
//     expected for a uniform distribution).
package barneshut

import (
	"math"
	"sort"
)

// Vec3 is a 3-vector.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Norm returns |v|.
func (v Vec3) Norm() float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}

// Particle is a point mass with velocity state for multi-step simulation.
type Particle struct {
	Pos  Vec3
	Vel  Vec3
	Mass float64
}

// Node is a cell of the balanced Barnes-Hut tree. Leaves hold one particle;
// interior nodes hold the aggregate mass, center of mass, and cell size.
// A Remote node is a stub standing for a subtree that is not present in
// this (pruned) copy: its aggregate data may be used for far-field
// approximation, but opening it requires the parent's fuller tree.
type Node struct {
	Lo, Hi int // leaf (particle) index range [Lo, Hi) in tree order
	Mass   float64
	COM    Vec3    // center of mass
	Size   float64 // cell diameter along its longest axis
	Left   *Node
	Right  *Node
	Remote bool
	// Leaf particle payload (valid when Hi-Lo == 1).
	P Particle
}

// IsLeaf reports whether the node is a single-particle leaf.
func (n *Node) IsLeaf() bool { return n.Hi-n.Lo == 1 }

// CountNodes returns the number of present (non-nil) nodes, counting remote
// stubs — used to verify the memory bound of partial trees.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.CountNodes() + n.Right.CountNodes()
}

// BuildFlops is the modeled per-key-per-level cost of the balanced build.
const BuildFlops = 6

// Build constructs the balanced tree over particles, reordering the slice
// into tree (leaf) order, partitioning along axes x, y, z cyclically.
func Build(particles []Particle) *Node {
	return build(particles, 0, len(particles), 0)
}

func build(ps []Particle, lo, hi, axis int) *Node {
	if hi-lo == 1 {
		p := ps[lo]
		return &Node{Lo: lo, Hi: hi, Mass: p.Mass, COM: p.Pos, Size: 0, P: p}
	}
	seg := ps[lo:hi]
	sort.Slice(seg, func(i, j int) bool { return seg[i].Pos[axis] < seg[j].Pos[axis] })
	mid := lo + (hi-lo)/2
	left := build(ps, lo, mid, (axis+1)%3)
	right := build(ps, mid, hi, (axis+1)%3)
	n := &Node{Lo: lo, Hi: hi, Left: left, Right: right}
	n.Mass = left.Mass + right.Mass
	if n.Mass > 0 {
		n.COM = left.COM.Scale(left.Mass / n.Mass).Add(right.COM.Scale(right.Mass / n.Mass))
	}
	// Cell size: extent of the particles along each axis.
	var min, max Vec3
	for d := 0; d < 3; d++ {
		min[d] = math.Inf(1)
		max[d] = math.Inf(-1)
	}
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			if ps[i].Pos[d] < min[d] {
				min[d] = ps[i].Pos[d]
			}
			if ps[i].Pos[d] > max[d] {
				max[d] = ps[i].Pos[d]
			}
		}
	}
	// Cell size: the diagonal extent. Median-split cells can be elongated,
	// so the diagonal (rather than the longest axis) keeps the opening
	// criterion conservative.
	var diag2 float64
	for d := 0; d < 3; d++ {
		s := max[d] - min[d]
		diag2 += s * s
	}
	n.Size = math.Sqrt(diag2)
	return n
}

// Prune returns the partial tree of Figure 7's partition_bh_tree for the
// child covering [keepLo, keepHi) of the current recursion range
// [curLo, curHi): the top k levels of the subtree covering the *current*
// range are replicated; below that, subtrees inside the keep range are kept
// whole and all other branches become remote stubs (aggregate data retained,
// children dropped). Remnants above the current range — coarse cells and
// stubs inherited from earlier recursion levels — are kept as they are, so
// every level sees fine cells near its own particles and coarse cells far
// away, which is what keeps the worklists small (Section 5.3).
func Prune(t *Node, k, keepLo, keepHi, curLo, curHi int) *Node {
	if t == nil {
		return nil
	}
	if t.Lo >= curLo && t.Hi <= curHi {
		return prune(t, 0, k, keepLo, keepHi)
	}
	// Ancestor remnant: keep this node, descend toward the current range,
	// and share the off-path child (already a remnant from earlier levels).
	c := *t
	if t.Left != nil && t.Left.Lo <= curLo && t.Left.Hi >= curHi {
		c.Left = Prune(t.Left, k, keepLo, keepHi, curLo, curHi)
	} else if t.Right != nil && t.Right.Lo <= curLo && t.Right.Hi >= curHi {
		c.Right = Prune(t.Right, k, keepLo, keepHi, curLo, curHi)
	}
	return &c
}

func prune(n *Node, depth, k, keepLo, keepHi int) *Node {
	if n == nil {
		return nil
	}
	inside := n.Lo >= keepLo && n.Hi <= keepHi
	overlaps := n.Lo < keepHi && n.Hi > keepLo
	if inside {
		return n // my half: keep the whole subtree (shared, immutable)
	}
	if depth >= k && !overlaps {
		// Below the replicated levels and disjoint from my half: stub.
		stub := *n
		stub.Left, stub.Right = nil, nil
		stub.Remote = true
		return &stub
	}
	if n.IsLeaf() {
		return n
	}
	c := *n
	c.Left = prune(n.Left, depth+1, k, keepLo, keepHi)
	c.Right = prune(n.Right, depth+1, k, keepLo, keepHi)
	return &c
}

// Gravitational softening to avoid singularities.
const softening = 1e-3

// InteractFlops is the modeled cost of one particle-node interaction.
const InteractFlops = 20

// Traverse computes the force on particle p from the tree with opening
// parameter theta. It returns the force, the number of node interactions
// (for cost accounting), and ok=false if the traversal needed to open a
// remote stub — in which case the force is invalid and the particle belongs
// on the worklist.
func Traverse(t *Node, p Particle, selfIdx int, theta float64) (f Vec3, visits int, ok bool) {
	ok = true
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil || !ok {
			return
		}
		visits++
		if n.IsLeaf() {
			if n.Lo == selfIdx {
				return // no self-force
			}
			f = f.Add(pairForce(p, n.COM, n.Mass))
			return
		}
		d := n.COM.Sub(p.Pos).Norm()
		if n.Size/(d+softening) < theta && !(selfIdx >= n.Lo && selfIdx < n.Hi) {
			// Far field: use the aggregate (valid for remote stubs too).
			f = f.Add(pairForce(p, n.COM, n.Mass))
			return
		}
		if n.Remote {
			ok = false // must open a missing subtree
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(t)
	if !ok {
		return Vec3{}, visits, false
	}
	return f, visits, true
}

func pairForce(p Particle, pos Vec3, mass float64) Vec3 {
	d := pos.Sub(p.Pos)
	r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2] + softening*softening
	r := math.Sqrt(r2)
	s := p.Mass * mass / (r2 * r)
	return d.Scale(s)
}

// DirectForces computes exact O(n^2) pairwise forces — the verification
// baseline.
func DirectForces(ps []Particle) []Vec3 {
	out := make([]Vec3, len(ps))
	for i := range ps {
		for j := range ps {
			if i == j {
				continue
			}
			out[i] = out[i].Add(pairForce(ps[i], ps[j].Pos, ps[j].Mass))
		}
	}
	return out
}

// UniformParticles generates n particles uniformly distributed in the unit
// cube with unit total mass.
func UniformParticles(n int, seed int64) []Particle {
	ps := make([]Particle, n)
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%(1<<53)) / (1 << 53)
	}
	for i := range ps {
		ps[i] = Particle{
			Pos:  Vec3{next(), next(), next()},
			Mass: 1.0 / float64(n),
		}
	}
	return ps
}
