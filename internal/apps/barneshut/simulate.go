package barneshut

import (
	"fmt"
	"math"

	"fxpar/internal/comm"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
)

// SimResult summarizes a multi-step N-body simulation (Figure 7's bh
// subroutine iterated: build tree, compute forces, update positions).
type SimResult struct {
	Makespan float64
	// Positions holds the final particle positions (tree order of the last
	// step).
	Positions []Vec3
	// MomentumDrift is |total momentum change| over the whole run; exact
	// force evaluation conserves momentum (forces are antisymmetric), so
	// drift measures the Barnes-Hut approximation error.
	MomentumDrift float64
	// WorklistTotal accumulates handed-up worklist items over all steps.
	WorklistTotal int
}

// Simulate advances n bodies for the given number of leapfrog steps of
// length dt, rebuilding the tree and recomputing forces with nested task
// parallelism every step.
func Simulate(mach *machine.Machine, cfg Config, steps int, dt float64) SimResult {
	if steps < 1 || dt <= 0 {
		panic(fmt.Sprintf("barneshut: Simulate steps=%d dt=%g", steps, dt))
	}
	k := cfg.K
	if k == 0 {
		k = int(math.Ceil(math.Log2(float64(mach.N())))) + 1
	}
	col := &collector{forces: make(map[int]Vec3)}
	var finalPos []Vec3
	var drift float64
	runStats := fx.Run(mach, func(p *fx.Proc) {
		// Every processor holds the full replicated particle set (as with
		// Run; the partial-tree memory bound concerns the trees) and
		// updates it identically from the all-gathered forces, so the
		// replicated state never diverges.
		ps := UniformParticles(cfg.N, cfg.Seed)
		var initialMomentum Vec3 // zero: particles start at rest
		np := p.NumberOfProcessors()
		world := p.Group()
		for step := 0; step < steps; step++ {
			tree := Build(ps) // reorders ps into tree order
			p.Compute(float64(cfg.N) * math.Log2(float64(cfg.N)+1) * BuildFlops / float64(np))
			out := make(map[int]Vec3)
			missing := computeForce(p, cfg, k, ps, tree, 0, cfg.N, out, col)
			if len(missing) != 0 {
				panic("barneshut: unresolved particles at the root")
			}
			// Share all forces so every processor updates identically.
			pairs := make([]idxForce, 0, len(out))
			for i := 0; i < cfg.N; i++ {
				if f, ok := out[i]; ok {
					pairs = append(pairs, idxForce{i, f})
				}
			}
			gathered := comm.AllGather(p.Proc, world, pairs)
			forces := make([]Vec3, cfg.N)
			seen := 0
			for _, part := range gathered {
				for _, pr := range part {
					forces[pr.Idx] = pr.F
					seen++
				}
			}
			if seen != cfg.N {
				panic(fmt.Sprintf("barneshut: %d of %d forces after all-gather", seen, cfg.N))
			}
			// Leapfrog update (cost charged, computation replicated).
			for i := range ps {
				ps[i].Vel = ps[i].Vel.Add(forces[i].Scale(dt / ps[i].Mass))
				ps[i].Pos = ps[i].Pos.Add(ps[i].Vel.Scale(dt))
			}
			p.Compute(float64(cfg.N) * 12 / float64(np))
		}
		if p.VP() == 0 {
			var totalMomentum Vec3
			for _, b := range ps {
				totalMomentum = totalMomentum.Add(b.Vel.Scale(b.Mass))
			}
			drift = totalMomentum.Sub(initialMomentum).Norm()
			finalPos = make([]Vec3, cfg.N)
			for i, b := range ps {
				finalPos[i] = b.Pos
			}
		}
	})
	return SimResult{
		Makespan:      runStats.MakespanTime(),
		Positions:     finalPos,
		MomentumDrift: drift,
		WorklistTotal: col.totalWorklist,
	}
}
