package barneshut

import (
	"testing"
)

func TestSimulateMomentumConservedExact(t *testing.T) {
	// With theta ~ 0 the traversal equals the direct sum, whose forces are
	// exactly antisymmetric: total momentum must stay (numerically) zero.
	cfg := Config{N: 64, Theta: 1e-9, Seed: 3}
	res := Simulate(testMachine(4), cfg, 3, 1e-3)
	if res.MomentumDrift > 1e-12 {
		t.Errorf("momentum drift %g with exact forces", res.MomentumDrift)
	}
}

func TestSimulateMomentumSmallWithApproximation(t *testing.T) {
	cfg := Config{N: 256, Theta: 0.7, Seed: 5, K: 8}
	res := Simulate(testMachine(4), cfg, 3, 1e-3)
	// The approximation breaks exact antisymmetry, but the drift must stay
	// tiny relative to typical momentum transfer (forces are O(1) here).
	if res.MomentumDrift > 1e-2 {
		t.Errorf("momentum drift %g too large", res.MomentumDrift)
	}
}

func TestSimulateParallelMatchesSequential(t *testing.T) {
	cfg := Config{N: 128, Theta: 0.5, Seed: 9}
	seq := Simulate(testMachine(1), cfg, 2, 1e-3)
	par := Simulate(testMachine(8), cfg, 2, 1e-3)
	if len(seq.Positions) != len(par.Positions) {
		t.Fatalf("lengths differ")
	}
	for i := range seq.Positions {
		if seq.Positions[i].Sub(par.Positions[i]).Norm() > 1e-9 {
			t.Fatalf("position %d differs: %v vs %v", i, seq.Positions[i], par.Positions[i])
		}
	}
}

func TestSimulateParticlesMove(t *testing.T) {
	cfg := Config{N: 64, Theta: 0.5, Seed: 2}
	res := Simulate(testMachine(2), cfg, 5, 1e-2)
	start := UniformParticles(cfg.N, cfg.Seed)
	// Positions were reordered by tree builds; compare total displacement
	// via centroid shift and per-particle movement existence.
	moved := 0
	for _, pos := range res.Positions {
		found := false
		for _, s := range start {
			if pos.Sub(s.Pos).Norm() < 1e-15 {
				found = true
				break
			}
		}
		if !found {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no particle moved after 5 steps")
	}
}

func TestSimulateBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(testMachine(1), DefaultConfig(), 0, 1e-3)
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{N: 128, Theta: 0.8, Seed: 7, K: 6}
	a := Simulate(testMachine(4), cfg, 2, 1e-3)
	b := Simulate(testMachine(4), cfg, 2, 1e-3)
	if a.Makespan != b.Makespan || a.MomentumDrift != b.MomentumDrift {
		t.Errorf("results differ: %+v vs %+v", a, b)
	}
}
