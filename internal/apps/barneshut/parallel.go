package barneshut

import (
	"fmt"
	"math"
	"sync"

	"fxpar/internal/comm"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Config describes a Barnes-Hut run.
type Config struct {
	N     int     // number of particles
	Theta float64 // opening parameter (smaller = more accurate)
	// K is the number of replicated top tree levels per split
	// (partition_bh_tree's fixed constant). Section 5.3: at least log2(P)
	// to avoid excessive communication, within a small multiple of log2(P)
	// to bound space. 0 selects ceil(log2 P)+1.
	K    int
	Seed int64
}

// DefaultConfig returns a moderate uniform-cube workload.
func DefaultConfig() Config { return Config{N: 2048, Theta: 0.5, Seed: 1} }

// Result of a run.
type Result struct {
	Makespan float64
	// Forces holds the force on each particle in tree order (gathered from
	// all processors).
	Forces []Vec3
	// Particles holds the tree-ordered particles (for verification).
	Particles []Particle
	// MaxWorklist is the largest worklist handed from children to a parent
	// subgroup; WorklistTotal sums all handed-up worklist lengths.
	MaxWorklist   int
	WorklistTotal int
	// MaxPartialNodes is the largest node count of any pruned tree,
	// verifying the partial-tree memory bound.
	MaxPartialNodes int
}

// workItem carries a worklist particle to the parent subgroup.
type workItem struct {
	Idx int
	P   Particle
}

// collector accumulates cross-processor statistics (host-side, values are
// virtual-time-independent so determinism is preserved).
type collector struct {
	mu            sync.Mutex
	maxWorklist   int
	totalWorklist int
	maxNodes      int
	forces        map[int]Vec3
}

func (c *collector) recordWorklist(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.totalWorklist += n
	if n > c.maxWorklist {
		c.maxWorklist = n
	}
}

func (c *collector) recordNodes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.maxNodes {
		c.maxNodes = n
	}
}

func (c *collector) recordForces(pairs []idxForce) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pairs {
		c.forces[p.Idx] = p.F
	}
}

type idxForce struct {
	Idx int
	F   Vec3
}

// Run computes one Barnes-Hut force evaluation with nested task parallelism
// and returns the forces along with worklist and memory statistics.
func Run(mach *machine.Machine, cfg Config) Result {
	if cfg.N < 1 {
		panic(fmt.Sprintf("barneshut: N = %d", cfg.N))
	}
	if cfg.Theta <= 0 {
		panic(fmt.Sprintf("barneshut: Theta = %g", cfg.Theta))
	}
	k := cfg.K
	if k == 0 {
		k = int(math.Ceil(math.Log2(float64(mach.N())))) + 1
	}
	col := &collector{forces: make(map[int]Vec3)}
	var particles []Particle
	runStats := fx.Run(mach, func(p *fx.Proc) {
		// build_bh_tree: the balanced build is deterministic, so every
		// processor constructs an identical copy; the cost charged models
		// the parallel quicksort-like build of Section 5.3 (the memory
		// bound of the *partial* trees is what Figure 7 is about, and is
		// measured on the pruned copies below).
		ps := UniformParticles(cfg.N, cfg.Seed)
		tree := Build(ps)
		np := p.NumberOfProcessors()
		p.Compute(float64(cfg.N) * math.Log2(float64(cfg.N)+1) * BuildFlops / float64(np))
		if p.VP() == 0 {
			particles = ps
		}
		out := make(map[int]Vec3)
		missing := computeForce(p, cfg, k, ps, tree, 0, cfg.N, out, col)
		if len(missing) != 0 {
			panic(fmt.Sprintf("barneshut: %d particles unresolved at the root (tree has no remote branches)", len(missing)))
		}
		pairs := make([]idxForce, 0, len(out))
		for i, f := range out {
			pairs = append(pairs, idxForce{i, f})
		}
		col.recordForces(pairs)
	})
	res := Result{
		Makespan:        runStats.MakespanTime(),
		Particles:       particles,
		Forces:          make([]Vec3, cfg.N),
		MaxWorklist:     col.maxWorklist,
		WorklistTotal:   col.totalWorklist,
		MaxPartialNodes: col.maxNodes,
	}
	if len(col.forces) != cfg.N {
		panic(fmt.Sprintf("barneshut: computed %d of %d forces", len(col.forces), cfg.N))
	}
	for i, f := range col.forces {
		res.Forces[i] = f
	}
	return res
}

// computeForce is Figure 7's compute_force: at a single processor, traverse
// for every owned particle, worklisting those that hit remote branches; at a
// larger subgroup, split particles and processors in half, recurse on
// pruned trees inside ON blocks, then retry the children's worklists against
// this level's fuller tree, passing a (much smaller) worklist up.
func computeForce(p *fx.Proc, cfg Config, k int, ps []Particle, tree *Node,
	lo, hi int, out map[int]Vec3, col *collector) []workItem {
	np := p.NumberOfProcessors()
	if np == 1 || hi-lo == 1 {
		if np > 1 && p.VP() != 0 {
			return nil // degenerate split: one particle, several processors
		}
		var missing []workItem
		visits := 0
		for i := lo; i < hi; i++ {
			f, v, ok := Traverse(tree, ps[i], i, cfg.Theta)
			visits += v
			if ok {
				out[i] = f
			} else {
				missing = append(missing, workItem{i, ps[i]})
			}
		}
		p.Compute(float64(visits) * InteractFlops)
		return missing
	}

	mid := lo + (hi-lo)/2
	p1 := np / 2
	part := p.Partition(group.Sub("subTreeG1", p1), group.Sub("subTreeG2", np-p1))
	var myMissing []workItem
	p.TaskRegion(part, func(r *fx.Region) {
		r.On("subTreeG1", func() {
			t1 := Prune(tree, k, lo, mid, lo, hi)
			col.recordNodes(t1.CountNodes())
			p.Compute(float64(t1.CountNodes()) * 4) // partition_bh_tree copy cost
			myMissing = computeForce(p, cfg, k, ps, t1, lo, mid, out, col)
		})
		r.On("subTreeG2", func() {
			t2 := Prune(tree, k, mid, hi, lo, hi)
			col.recordNodes(t2.CountNodes())
			p.Compute(float64(t2.CountNodes()) * 4)
			myMissing = computeForce(p, cfg, k, ps, t2, mid, hi, out, col)
		})
		// Parent scope: pool the children's worklists across the whole
		// subgroup and retry against this level's fuller tree.
		parts := comm.AllGather(p.Proc, p.Group(), myMissing)
		var wl []workItem
		for _, part := range parts {
			wl = append(wl, part...)
		}
		col.recordWorklist(len(wl))
		myMissing = nil
		visits := 0
		for j := p.VP(); j < len(wl); j += np {
			f, v, ok := Traverse(tree, wl[j].P, wl[j].Idx, cfg.Theta)
			visits += v
			if ok {
				out[wl[j].Idx] = f
			} else {
				myMissing = append(myMissing, wl[j])
			}
		}
		p.Compute(float64(visits) * InteractFlops)
	})
	return myMissing
}
