package barneshut

import (
	"math"
	"testing"
	"testing/quick"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.Paragon())
}

func TestBuildTreeInvariants(t *testing.T) {
	ps := UniformParticles(257, 3)
	tree := Build(ps)
	if tree.Lo != 0 || tree.Hi != 257 {
		t.Fatalf("root range [%d,%d)", tree.Lo, tree.Hi)
	}
	if tree.CountNodes() != 2*257-1 {
		t.Errorf("node count %d, want %d", tree.CountNodes(), 2*257-1)
	}
	var walk func(n *Node, depth int) int
	walk = func(n *Node, depth int) int {
		if n.IsLeaf() {
			if n.P != ps[n.Lo] {
				t.Errorf("leaf %d does not hold its tree-ordered particle", n.Lo)
			}
			return 1
		}
		if n.Left.Lo != n.Lo || n.Right.Hi != n.Hi || n.Left.Hi != n.Right.Lo {
			t.Errorf("child ranges inconsistent at [%d,%d)", n.Lo, n.Hi)
		}
		// Balanced: halves differ by at most one.
		lh, rh := n.Left.Hi-n.Left.Lo, n.Right.Hi-n.Right.Lo
		if lh-rh > 1 || rh-lh > 1 {
			t.Errorf("unbalanced split %d/%d at [%d,%d)", lh, rh, n.Lo, n.Hi)
		}
		// Mass conservation.
		if math.Abs(n.Mass-(n.Left.Mass+n.Right.Mass)) > 1e-12 {
			t.Errorf("mass not conserved at [%d,%d)", n.Lo, n.Hi)
		}
		return walk(n.Left, depth+1) + walk(n.Right, depth+1)
	}
	if leaves := walk(tree, 0); leaves != 257 {
		t.Errorf("%d leaves", leaves)
	}
}

func TestBuildCOMProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed)%100 + 2
		ps := UniformParticles(n, seed)
		tree := Build(ps)
		// Root COM equals the explicit center of mass.
		var com Vec3
		var mass float64
		for _, p := range ps {
			com = com.Add(p.Pos.Scale(p.Mass))
			mass += p.Mass
		}
		com = com.Scale(1 / mass)
		return com.Sub(tree.COM).Norm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPruneKeepsOwnHalfAndStubsOther(t *testing.T) {
	ps := UniformParticles(128, 7)
	tree := Build(ps)
	k := 3
	t1 := Prune(tree, k, 0, 64, 0, 128)
	// All leaves of my half must be reachable and non-remote.
	var countLeaves func(n *Node) int
	var sawRemote bool
	countLeaves = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Remote {
			sawRemote = true
			if n.Lo >= 0 && n.Hi <= 64 {
				t.Errorf("remote stub inside my half: [%d,%d)", n.Lo, n.Hi)
			}
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return countLeaves(n.Left) + countLeaves(n.Right)
	}
	leaves := countLeaves(t1)
	if leaves < 64 {
		t.Errorf("pruned tree lost own-half leaves: %d < 64", leaves)
	}
	if !sawRemote {
		t.Error("pruned tree has no remote stubs")
	}
	// Memory bound: own half (2*64-1 nodes) + replicated top levels + stubs.
	full := tree.CountNodes()
	if got := t1.CountNodes(); got >= full {
		t.Errorf("pruned tree (%d nodes) not smaller than full tree (%d)", got, full)
	}
}

func TestTraverseMatchesDirectOnCompleteTree(t *testing.T) {
	n := 300
	ps := UniformParticles(n, 11)
	tree := Build(ps) // Build reorders ps into tree order
	direct := DirectForces(ps)
	maxRel := 0.0
	for i := range ps {
		f, _, ok := Traverse(tree, ps[i], i, 0.3)
		if !ok {
			t.Fatalf("complete tree traversal hit a remote stub for particle %d", i)
		}
		rel := f.Sub(direct[i]).Norm() / (direct[i].Norm() + 1e-12)
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.05 {
		t.Errorf("max relative force error %.3f > 5%% at theta=0.3", maxRel)
	}
}

func TestTraverseThetaZeroIsExact(t *testing.T) {
	n := 64
	ps := UniformParticles(n, 5)
	tree := Build(ps)
	direct := DirectForces(ps)
	for i := range ps {
		f, _, ok := Traverse(tree, ps[i], i, 1e-9)
		if !ok {
			t.Fatal("unexpected remote")
		}
		if f.Sub(direct[i]).Norm() > 1e-9*(direct[i].Norm()+1) {
			t.Errorf("theta~0 traversal differs from direct at %d", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{N: 256, Theta: 0.5, Seed: 9}
	seq := Run(testMachine(1), cfg)
	for _, procs := range []int{2, 4, 8} {
		par := Run(testMachine(procs), cfg)
		for i := range seq.Forces {
			if par.Forces[i].Sub(seq.Forces[i]).Norm() > 1e-9 {
				t.Errorf("%d procs: force %d differs: %v vs %v", procs, i, par.Forces[i], seq.Forces[i])
				break
			}
		}
	}
}

func TestWorklistSmall(t *testing.T) {
	// Section 5.3: the worklist passed up is the boundary-layer population
	// (O(n^(2/3)) for uniform particles with enough replicated levels).
	// With k deep enough that replicated remote cells are a few particles
	// wide, only particles near subgroup boundaries propagate upward.
	cfg := Config{N: 1024, Theta: 1.0, Seed: 13, K: 8}
	res := Run(testMachine(8), cfg)
	if res.MaxWorklist > cfg.N/3 {
		t.Errorf("max worklist %d is not a boundary-layer fraction of n=%d", res.MaxWorklist, cfg.N)
	}
	if res.MaxWorklist == 0 {
		t.Error("expected some worklist traffic at k=8 (boundary particles must propagate)")
	}
	// Full replication (k = tree depth) must eliminate worklists entirely.
	full := Run(testMachine(8), Config{N: 1024, Theta: 1.0, Seed: 13, K: 10})
	if full.WorklistTotal != 0 {
		t.Errorf("fully replicated tree still produced %d worklist items", full.WorklistTotal)
	}
}

func TestPartialTreeMemoryBound(t *testing.T) {
	cfg := Config{N: 1024, Theta: 0.5, Seed: 13, K: 4}
	res := Run(testMachine(8), cfg)
	fullNodes := 2*cfg.N - 1
	if res.MaxPartialNodes >= fullNodes {
		t.Errorf("partial tree (%d nodes) as large as the full tree (%d)", res.MaxPartialNodes, fullNodes)
	}
	// Top-level split: own half (2*(n/2)-1) + 2^k replicated + stubs.
	bound := (cfg.N - 1) + (1 << (cfg.K + 2))
	if res.MaxPartialNodes > bound {
		t.Errorf("partial tree %d nodes exceeds bound %d", res.MaxPartialNodes, bound)
	}
}

func TestSmallerKMoreWorklist(t *testing.T) {
	// Replicating fewer levels must not reduce worklist traffic.
	cfg := Config{N: 1024, Theta: 0.8, Seed: 21}
	small := Run(testMachine(8), Config{N: cfg.N, Theta: cfg.Theta, Seed: cfg.Seed, K: 1})
	large := Run(testMachine(8), Config{N: cfg.N, Theta: cfg.Theta, Seed: cfg.Seed, K: 6})
	if small.WorklistTotal < large.WorklistTotal {
		t.Errorf("k=1 worklist %d < k=6 worklist %d", small.WorklistTotal, large.WorklistTotal)
	}
}

func TestParallelSpeedup(t *testing.T) {
	cfg := Config{N: 2048, Theta: 0.5, Seed: 2}
	t1 := Run(testMachine(1), cfg).Makespan
	t8 := Run(testMachine(8), cfg).Makespan
	if t8 >= t1 {
		t.Errorf("no speedup: 1 proc %.4fs, 8 procs %.4fs", t1, t8)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{N: 512, Theta: 0.5, Seed: 4}
	a := Run(testMachine(4), cfg)
	b := Run(testMachine(4), cfg)
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
	if a.WorklistTotal != b.WorklistTotal {
		t.Errorf("worklist differs: %d vs %d", a.WorklistTotal, b.WorklistTotal)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if v.Add(w) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if w.Sub(v) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-15 {
		t.Error("Norm")
	}
}
