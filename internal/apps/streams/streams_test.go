package streams

import (
	"sync"
	"testing"

	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.Paragon())
}

func TestSingleModuleNoPartition(t *testing.T) {
	m := testMachine(4)
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, 1, 4, func(p *fx.Proc, mod int) {
			if mod != 0 || p.NumberOfProcessors() != 4 || p.Depth() != 1 {
				t.Errorf("mod=%d np=%d depth=%d", mod, p.NumberOfProcessors(), p.Depth())
			}
		})
	})
}

func TestModulesSplitEvenly(t *testing.T) {
	m := testMachine(6)
	var mu sync.Mutex
	seen := map[int]int{}
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, 3, 6, func(p *fx.Proc, mod int) {
			if p.NumberOfProcessors() != 2 {
				t.Errorf("module %d np=%d", mod, p.NumberOfProcessors())
			}
			mu.Lock()
			seen[mod]++
			mu.Unlock()
		})
	})
	for mod := 0; mod < 3; mod++ {
		if seen[mod] != 2 {
			t.Errorf("module %d ran on %d procs", mod, seen[mod])
		}
	}
}

func TestIdleProcessorsSkip(t *testing.T) {
	m := testMachine(5)
	stats := fx.Run(m, func(p *fx.Proc) {
		RunModules(p, 2, 4, func(p *fx.Proc, mod int) {
			p.Compute(1000)
		})
	})
	if stats.Procs[4].Finish != 0 {
		t.Errorf("idle processor advanced to %g", stats.Procs[4].Finish)
	}
}

func TestSingleModuleWithIdle(t *testing.T) {
	m := testMachine(5)
	var mu sync.Mutex
	ran := 0
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, 1, 3, func(p *fx.Proc, mod int) {
			if p.NumberOfProcessors() != 3 {
				t.Errorf("np = %d", p.NumberOfProcessors())
			}
			mu.Lock()
			ran++
			mu.Unlock()
		})
	})
	if ran != 3 {
		t.Errorf("ran on %d procs", ran)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	cases := []struct{ modules, used int }{
		{0, 4}, {3, 4}, {2, 6}, {2, 1},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("modules=%d used=%d accepted", tc.modules, tc.used)
				}
			}()
			m := testMachine(4)
			fx.Run(m, func(p *fx.Proc) {
				RunModules(p, tc.modules, tc.used, func(*fx.Proc, int) {})
			})
		}()
	}
}
