package streams

import (
	"sync"
	"testing"

	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.Paragon())
}

func TestSingleModuleNoPartition(t *testing.T) {
	m := testMachine(4)
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, []int{4}, func(p *fx.Proc, mod int) {
			if mod != 0 || p.NumberOfProcessors() != 4 || p.Depth() != 1 {
				t.Errorf("mod=%d np=%d depth=%d", mod, p.NumberOfProcessors(), p.Depth())
			}
		})
	})
}

func TestModulesSplitEvenly(t *testing.T) {
	m := testMachine(6)
	var mu sync.Mutex
	seen := map[int]int{}
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, Uniform(3, 2), func(p *fx.Proc, mod int) {
			if p.NumberOfProcessors() != 2 {
				t.Errorf("module %d np=%d", mod, p.NumberOfProcessors())
			}
			mu.Lock()
			seen[mod]++
			mu.Unlock()
		})
	})
	for mod := 0; mod < 3; mod++ {
		if seen[mod] != 2 {
			t.Errorf("module %d ran on %d procs", mod, seen[mod])
		}
	}
}

func TestIdleProcessorsSkip(t *testing.T) {
	m := testMachine(5)
	stats := fx.Run(m, func(p *fx.Proc) {
		RunModules(p, []int{2, 2}, func(p *fx.Proc, mod int) {
			p.Compute(1000)
		})
	})
	if stats.Procs[4].Finish != 0 {
		t.Errorf("idle processor advanced to %g", stats.Procs[4].Finish)
	}
}

func TestSingleModuleWithIdle(t *testing.T) {
	m := testMachine(5)
	var mu sync.Mutex
	ran := 0
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, []int{3}, func(p *fx.Proc, mod int) {
			if p.NumberOfProcessors() != 3 {
				t.Errorf("np = %d", p.NumberOfProcessors())
			}
			mu.Lock()
			ran++
			mu.Unlock()
		})
	})
	if ran != 3 {
		t.Errorf("ran on %d procs", ran)
	}
}

func TestUnevenModuleSizes(t *testing.T) {
	m := testMachine(7)
	var mu sync.Mutex
	seen := map[int]int{}
	fx.Run(m, func(p *fx.Proc) {
		RunModules(p, []int{3, 2, 2}, func(p *fx.Proc, mod int) {
			want := 2
			if mod == 0 {
				want = 3
			}
			if p.NumberOfProcessors() != want {
				t.Errorf("module %d np=%d, want %d", mod, p.NumberOfProcessors(), want)
			}
			mu.Lock()
			seen[mod]++
			mu.Unlock()
		})
	})
	if seen[0] != 3 || seen[1] != 2 || seen[2] != 2 {
		t.Errorf("module membership = %v", seen)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	cases := [][]int{
		{},        // no modules
		{3, 2},    // uses 5 of 4
		{2, 2, 2}, // uses 6 of 4
		{0, 2},    // non-positive size
		{-1},      // non-positive size
	}
	for _, sizes := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sizes=%v accepted", sizes)
				}
			}()
			m := testMachine(4)
			fx.Run(m, func(p *fx.Proc) {
				RunModules(p, sizes, func(*fx.Proc, int) {})
			})
		}()
	}
}

func TestUniform(t *testing.T) {
	got := Uniform(3, 2)
	if len(got) != 3 || got[0] != 2 || got[2] != 2 {
		t.Errorf("Uniform(3,2) = %v", got)
	}
}
