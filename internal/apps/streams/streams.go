// Package streams holds the shared harness structure of the stream-based
// sensor applications (FFT-Hist, radar, stereo): dividing the machine into
// replicated modules (Section 3.3) that process alternate data sets, with
// leftover processors idling — the skeleton every one of those programs
// shares around its per-module pipeline or data-parallel body.
package streams

import (
	"fmt"

	"fxpar/internal/fx"
	"fxpar/internal/group"
)

// RunModules partitions the current group into one subgroup per entry of
// sizes — sizes[i] processors for module i, not necessarily equal, so the
// optimizer can hand leftover processors to some modules — with any
// remaining processors idling (like the nodes the paper's data-parallel
// radar could not exploit), and runs body on each module with its index.
// With one module and no idle processors the body runs directly on the
// current group, avoiding a needless partition level. The sizes must be
// positive and sum to at most the current group size.
func RunModules(p *fx.Proc, sizes []int, body func(p *fx.Proc, module int)) {
	np := p.NumberOfProcessors()
	modules := len(sizes)
	used := 0
	for _, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("streams: non-positive module size in %v", sizes))
		}
		used += s
	}
	if modules < 1 || used > np {
		panic(fmt.Sprintf("streams: cannot run modules %v on %d processors", sizes, np))
	}
	idle := np - used
	if modules == 1 && idle == 0 {
		body(p, 0)
		return
	}
	specs := make([]group.Spec, 0, modules+1)
	for i, s := range sizes {
		specs = append(specs, group.Sub(ModuleName(i), s))
	}
	if idle > 0 {
		specs = append(specs, group.Sub("idle", idle))
	}
	part := p.Partition(specs...)
	p.TaskRegion(part, func(r *fx.Region) {
		for i := 0; i < modules; i++ {
			i := i
			r.On(ModuleName(i), func() {
				body(p, i)
			})
		}
	})
}

// Uniform returns the sizes slice of modules equal modules of per
// processors each.
func Uniform(modules, per int) []int {
	sizes := make([]int, modules)
	for i := range sizes {
		sizes[i] = per
	}
	return sizes
}

// ModuleName returns the subgroup name of module i.
func ModuleName(i int) string { return fmt.Sprintf("mod%d", i) }
