// Package streams holds the shared harness structure of the stream-based
// sensor applications (FFT-Hist, radar, stereo): dividing the machine into
// replicated modules (Section 3.3) that process alternate data sets, with
// leftover processors idling — the skeleton every one of those programs
// shares around its per-module pipeline or data-parallel body.
package streams

import (
	"fmt"

	"fxpar/internal/fx"
	"fxpar/internal/group"
)

// RunModules partitions the current group into `modules` equal subgroups
// using the first `used` processors (the rest idle, like the nodes the
// paper's data-parallel radar could not exploit) and runs body on each
// module with its index. With one module and no idle processors the body
// runs directly on the current group, avoiding a needless partition level.
// used must be divisible by modules and not exceed the current group.
func RunModules(p *fx.Proc, modules, used int, body func(p *fx.Proc, module int)) {
	np := p.NumberOfProcessors()
	if modules < 1 || used < modules || used > np || used%modules != 0 {
		panic(fmt.Sprintf("streams: cannot run %d modules on %d of %d processors", modules, used, np))
	}
	idle := np - used
	if modules == 1 && idle == 0 {
		body(p, 0)
		return
	}
	per := used / modules
	specs := make([]group.Spec, 0, modules+1)
	for i := 0; i < modules; i++ {
		specs = append(specs, group.Sub(ModuleName(i), per))
	}
	if idle > 0 {
		specs = append(specs, group.Sub("idle", idle))
	}
	part := p.Partition(specs...)
	p.TaskRegion(part, func(r *fx.Region) {
		for i := 0; i < modules; i++ {
			i := i
			r.On(ModuleName(i), func() {
				body(p, i)
			})
		}
	})
}

// ModuleName returns the subgroup name of module i.
func ModuleName(i int) string { return fmt.Sprintf("mod%d", i) }
