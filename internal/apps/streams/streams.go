// Package streams holds the shared harness structure of the stream-based
// sensor applications (FFT-Hist, radar, stereo): dividing the machine into
// replicated modules (Section 3.3) that process alternate data sets, with
// leftover processors idling — the skeleton every one of those programs
// shares around its per-module pipeline or data-parallel body.
package streams

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"fxpar/internal/fx"
	"fxpar/internal/group"
)

// partCache memoizes the partition template by (parent group, sizes). Under
// SPMD every processor of the group executes the same RunModules call, so
// without sharing, each of P processors would build its own O(modules)
// template — an O(P·modules) tax per region that dominated the P≥16384
// telemetry soak. Partitions are immutable after construction, so one
// template is safe to share across processors; construction happens on the
// host side only and never touches virtual time.
var partCache struct {
	sync.Mutex
	m map[partKey]*group.Partition
}

type partKey struct {
	parent *group.Group
	sizes  string
}

// sharedPartition returns the (possibly cached) partition of the current
// group into module subgroups of the given sizes plus an optional idle tail.
func sharedPartition(p *fx.Proc, sizes []int, idle int) *group.Partition {
	var b strings.Builder
	for i, s := range sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	key := partKey{parent: p.Group(), sizes: b.String()}
	partCache.Lock()
	defer partCache.Unlock()
	if part, ok := partCache.m[key]; ok {
		return part
	}
	if partCache.m == nil || len(partCache.m) >= 256 {
		partCache.m = make(map[partKey]*group.Partition, 16)
	}
	specs := make([]group.Spec, 0, len(sizes)+1)
	for i, s := range sizes {
		specs = append(specs, group.Sub(ModuleName(i), s))
	}
	if idle > 0 {
		specs = append(specs, group.Sub("idle", idle))
	}
	part := p.Partition(specs...)
	partCache.m[key] = part
	return part
}

// RunModules partitions the current group into one subgroup per entry of
// sizes — sizes[i] processors for module i, not necessarily equal, so the
// optimizer can hand leftover processors to some modules — with any
// remaining processors idling (like the nodes the paper's data-parallel
// radar could not exploit), and runs body on each module with its index.
// With one module and no idle processors the body runs directly on the
// current group, avoiding a needless partition level. The sizes must be
// positive and sum to at most the current group size.
func RunModules(p *fx.Proc, sizes []int, body func(p *fx.Proc, module int)) {
	np := p.NumberOfProcessors()
	modules := len(sizes)
	used := 0
	for _, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("streams: non-positive module size in %v", sizes))
		}
		used += s
	}
	if modules < 1 || used > np {
		panic(fmt.Sprintf("streams: cannot run modules %v on %d processors", sizes, np))
	}
	idle := np - used
	if modules == 1 && idle == 0 {
		body(p, 0)
		return
	}
	part := sharedPartition(p, sizes, idle)
	// Each processor enters only its own module's On block. Iterating every
	// module would cost O(modules) per processor even though a non-member On
	// is a no-op; an On entered by a non-member emits nothing and advances no
	// virtual time, so dispatching directly leaves traces byte-identical.
	module, ok := part.IndexOf(p.ID())
	p.TaskRegion(part, func(r *fx.Region) {
		if !ok || module >= modules { // idle tail
			return
		}
		r.On(ModuleName(module), func() {
			body(p, module)
		})
	})
}

// Uniform returns the sizes slice of modules equal modules of per
// processors each.
func Uniform(modules, per int) []int {
	sizes := make([]int, modules)
	for i := range sizes {
		sizes[i] = per
	}
	return sizes
}

// ModuleName returns the subgroup name of module i.
func ModuleName(i int) string { return fmt.Sprintf("mod%d", i) }
