// Package airshed implements the Airshed air quality simulation of Section
// 5.2 (McRae & Russell's CIT photochemical model): the concentration matrix
// (atmospheric layers x grid points x chemical species) is updated hourly by
// a mainly-sequential input phase, a preprocessing phase, a runtime-
// determined number of iterations of transport/chemistry/transport steps,
// and a mainly-sequential output phase.
//
// The sequential input and output phases consume only a few percent of the
// one-processor time, but become the bottleneck once the computation is
// sped up by data parallelism — the Amdahl effect of Figure 6. The task
// parallel version separates input and output into tasks on their own
// single-processor subgroups: the input task preprocesses hour h+1 while the
// main subgroup computes hour h, and the main subgroup hands raw results to
// the output task and continues.
package airshed

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Config describes the airshed workload. The paper's typical dimensions are
// 5 layers, 500-5000 grid points, 35 species.
type Config struct {
	Layers  int
	Grid    int
	Species int
	Hours   int
	// Steps is the base number of simulation iterations per hour; the
	// actual count varies with the hourly input (Steps + hour%2), as the
	// paper notes it is determined at runtime.
	Steps int
	// ChemFlops, TransFlops, PreFlops are modeled per-element costs of the
	// chemistry, transport and preprocessing phases.
	ChemFlops  float64
	TransFlops float64
	PreFlops   float64
}

// DefaultConfig returns a workload whose serial I/O fraction is ~2% of the
// sequential time, matching Section 5.2.
func DefaultConfig() Config {
	return Config{
		Layers: 5, Grid: 2000, Species: 35,
		Hours: 6, Steps: 3,
		ChemFlops: 220, TransFlops: 25, PreFlops: 10,
	}
}

// Variant selects the program structure of Figure 6.
type Variant int

const (
	// DataParallel runs every phase on all processors, with serial I/O on
	// processor 0.
	DataParallel Variant = iota
	// TaskIO separates input and output into their own single-processor
	// subgroups overlapping the main computation.
	TaskIO
)

func (v Variant) String() string {
	if v == DataParallel {
		return "data-parallel"
	}
	return "task+data-parallel"
}

// Result of a run.
type Result struct {
	Makespan float64
	// Checksums maps hour to the global sum of the concentration matrix
	// after that hour's simulation — verified identical across variants.
	Checksums map[int]float64
}

func (c Config) elems() int { return c.Layers * c.Grid * c.Species }
func (c Config) bytes() int { return c.elems() * 8 }

func (c Config) nsteps(hour int) int { return c.Steps + hour%2 }

// initial returns the concentration of (layer, grid, species) at the start
// of the given hour.
func initial(hour, l, g, s int) float64 {
	h := uint32(hour*2654435761) ^ uint32(l*97+g*40503+s*9973)
	h ^= h >> 13
	h *= 1103515245
	h ^= h >> 16
	return 0.1 + float64(h%1024)/2048
}

// layout returns the concentration matrix layout over g: grid points
// block-distributed, layers and species collapsed.
func layout(g *group.Group, cfg Config) *dist.Layout {
	return dist.MustLayout(g,
		[]int{cfg.Layers, cfg.Grid, cfg.Species},
		[]dist.Axis{dist.CollapsedAxis(), dist.BlockAxis(), dist.CollapsedAxis()},
		[]int{1, g.Size(), 1})
}

// fillHour populates a's local part with the hour's initial conditions.
func fillHour(a *dist.Array[float64], hour int) {
	a.FillFunc(func(idx []int) float64 {
		return initial(hour, idx[0], idx[1], idx[2])
	})
}

// pretrans is the preprocessing phase: a cheap local pass.
func pretrans(p *fx.Proc, a *dist.Array[float64], cfg Config) {
	local := a.Local()
	for i, v := range local {
		local[i] = v * (1 + 1e-3)
	}
	p.Compute(float64(len(local)) * cfg.PreFlops)
}

// chemistry is the expensive local phase.
func chemistry(p *fx.Proc, a *dist.Array[float64], cfg Config) {
	local := a.Local()
	for i, v := range local {
		local[i] = v + 0.01*(0.5-v)*v
	}
	p.Compute(float64(len(local)) * cfg.ChemFlops)
}

// transport advects concentrations along the grid dimension: each grid
// point mixes with its predecessor, which requires one halo slice from the
// left neighbour in the block distribution.
func transport(p *fx.Proc, a *dist.Array[float64], cfg Config) {
	if !a.IsMember() {
		return
	}
	g := a.Layout().Group()
	localG := a.LocalShape()[1]
	if localG == 0 {
		return
	}
	S, L := cfg.Species, cfg.Layers
	local := a.Local()
	rank := a.Rank()
	// Non-empty ranks form a contiguous prefix.
	size := 0
	for r := 0; r < g.Size(); r++ {
		if a.Layout().LocalCount(r) > 0 {
			size++
		}
	}
	slice := func(l, lg int) []float64 {
		off := (l*localG + lg) * S
		return local[off : off+S]
	}
	// Exchange boundary slices: my last grid slice goes right.
	var halo []float64 // left neighbour's last slice, per layer
	if size > 1 {
		if rank < size-1 {
			buf := make([]float64, 0, L*S)
			for l := 0; l < L; l++ {
				buf = append(buf, slice(l, localG-1)...)
			}
			p.Send(g.Phys(rank+1), buf, L*S*8)
		}
		if rank > 0 {
			halo = p.Recv(g.Phys(rank - 1)).Data.([]float64)
		}
	}
	const k = 0.25
	for l := 0; l < L; l++ {
		for lg := localG - 1; lg >= 0; lg-- {
			cur := slice(l, lg)
			var prev []float64
			switch {
			case lg > 0:
				prev = slice(l, lg-1)
			case halo != nil:
				prev = halo[l*S : (l+1)*S]
			default:
				prev = cur // global left edge: no inflow
			}
			for s := 0; s < S; s++ {
				cur[s] -= k * (cur[s] - prev[s])
			}
		}
	}
	p.Compute(float64(L*localG*S) * cfg.TransFlops)
}

// simulateHour runs the hour's transport/chemistry/transport iterations on
// the array's group.
func simulateHour(p *fx.Proc, a *dist.Array[float64], cfg Config, hour int) {
	for step := 0; step < cfg.nsteps(hour); step++ {
		transport(p, a, cfg)
		chemistry(p, a, cfg)
		transport(p, a, cfg)
	}
}

func checksum(full []float64) float64 {
	sum := 0.0
	for _, v := range full {
		sum += v
	}
	return sum
}

// Run executes the airshed simulation and returns makespan and per-hour
// checksums. TaskIO requires at least 3 processors.
func Run(mach *machine.Machine, cfg Config, v Variant) Result {
	res := Result{Checksums: make(map[int]float64)}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(hour int, sum float64) {
		<-mu
		res.Checksums[hour] = sum
		mu <- struct{}{}
	}
	var runStats machine.RunStats
	switch v {
	case DataParallel:
		runStats = fx.Run(mach, func(p *fx.Proc) { runDataParallel(p, cfg, record) })
	case TaskIO:
		if mach.N() < 3 {
			panic(fmt.Sprintf("airshed: TaskIO needs >= 3 processors, machine has %d", mach.N()))
		}
		runStats = fx.Run(mach, func(p *fx.Proc) { runTaskIO(p, cfg, record) })
	default:
		panic(fmt.Sprintf("airshed: unknown variant %d", v))
	}
	res.Makespan = runStats.MakespanTime()
	return res
}

func runDataParallel(p *fx.Proc, cfg Config, record func(int, float64)) {
	g := p.Group()
	a := dist.New[float64](p.Proc, layout(g, cfg))
	for hour := 0; hour < cfg.Hours; hour++ {
		// inputhour: serial read on processor 0, then scatter.
		var full []float64
		if a.Rank() == 0 {
			p.IO(cfg.bytes())
			full = make([]float64, cfg.elems())
			idx := 0
			for l := 0; l < cfg.Layers; l++ {
				for gp := 0; gp < cfg.Grid; gp++ {
					for s := 0; s < cfg.Species; s++ {
						full[idx] = initial(hour, l, gp, s)
						idx++
					}
				}
			}
		}
		dist.ScatterGlobal(p.Proc, a, full)
		pretrans(p, a, cfg)
		simulateHour(p, a, cfg, hour)
		// outputhour: gather and serial write on processor 0.
		out := dist.GatherGlobal(p.Proc, a)
		if out != nil {
			record(hour, checksum(out))
			p.IO(cfg.bytes())
		}
	}
}

func runTaskIO(p *fx.Proc, cfg Config, record func(int, float64)) {
	n := p.NumberOfProcessors()
	part := p.Partition(
		group.Sub("in", 1),
		group.Sub("out", 1),
		group.Sub("main", n-2),
	)
	gIn, gOut, gMain := part.Group("in"), part.Group("out"), part.Group("main")
	ain := dist.New[float64](p.Proc, layout(gIn, cfg))
	a := dist.New[float64](p.Proc, layout(gMain, cfg))
	aout := dist.New[float64](p.Proc, layout(gOut, cfg))
	p.TaskRegion(part, func(r *fx.Region) {
		for hour := 0; hour < cfg.Hours; hour++ {
			hour := hour
			r.On("in", func() {
				// The input task reads and preprocesses the hour while the
				// main subgroup is still computing the previous one.
				p.IO(cfg.bytes())
				fillHour(ain, hour)
				pretrans(p, ain, cfg)
			})
			dist.Assign(p.Proc, a, ain)
			r.On("main", func() {
				simulateHour(p, a, cfg, hour)
			})
			// Transfer raw output and continue with the next hour.
			dist.Assign(p.Proc, aout, a)
			r.On("out", func() {
				record(hour, checksum(aout.Local()))
				p.IO(cfg.bytes())
			})
		}
	})
}
