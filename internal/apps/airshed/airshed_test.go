package airshed

import (
	"math"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func smallConfig() Config {
	return Config{
		Layers: 3, Grid: 64, Species: 5,
		Hours: 2, Steps: 2,
		ChemFlops: 220, TransFlops: 25, PreFlops: 10,
	}
}

func run(t *testing.T, procs int, cfg Config, v Variant) Result {
	t.Helper()
	m := machine.New(procs, sim.Paragon())
	return Run(m, cfg, v)
}

func TestDataParallelCompletes(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 4, cfg, DataParallel)
	if len(res.Checksums) != cfg.Hours {
		t.Fatalf("recorded %d hours", len(res.Checksums))
	}
	for h, sum := range res.Checksums {
		if sum <= 0 || math.IsNaN(sum) {
			t.Errorf("hour %d checksum %g", h, sum)
		}
	}
}

func TestVariantsAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 1, cfg, DataParallel)
	for _, procs := range []int{2, 4, 7} {
		res := run(t, procs, cfg, DataParallel)
		for h := 0; h < cfg.Hours; h++ {
			if math.Abs(res.Checksums[h]-ref.Checksums[h]) > 1e-9*math.Abs(ref.Checksums[h]) {
				t.Errorf("DP %d procs hour %d: %g != %g", procs, h, res.Checksums[h], ref.Checksums[h])
			}
		}
	}
	for _, procs := range []int{3, 4, 8} {
		res := run(t, procs, cfg, TaskIO)
		for h := 0; h < cfg.Hours; h++ {
			if math.Abs(res.Checksums[h]-ref.Checksums[h]) > 1e-9*math.Abs(ref.Checksums[h]) {
				t.Errorf("TaskIO %d procs hour %d: %g != %g", procs, h, res.Checksums[h], ref.Checksums[h])
			}
		}
	}
}

func TestTaskIOBeatsDataParallelAtScale(t *testing.T) {
	// With serial I/O as the bottleneck, the task version must be faster
	// at high processor counts (Figure 6).
	cfg := Config{
		Layers: 3, Grid: 256, Species: 8,
		Hours: 3, Steps: 2,
		ChemFlops: 220, TransFlops: 25, PreFlops: 10,
	}
	dp := run(t, 16, cfg, DataParallel)
	task := run(t, 16, cfg, TaskIO)
	if task.Makespan >= dp.Makespan {
		t.Errorf("task makespan %.3f >= DP %.3f at 16 procs", task.Makespan, dp.Makespan)
	}
}

func TestSpeedupCurveShape(t *testing.T) {
	// DP speedup must flatten: the efficiency at 16 processors must be
	// well below the efficiency at 2.
	cfg := smallConfig()
	t1 := run(t, 1, cfg, DataParallel).Makespan
	t2 := run(t, 2, cfg, DataParallel).Makespan
	t16 := run(t, 16, cfg, DataParallel).Makespan
	eff2 := t1 / t2 / 2
	eff16 := t1 / t16 / 16
	if eff16 >= eff2 {
		t.Errorf("DP efficiency did not decay: eff2=%.3f eff16=%.3f", eff2, eff16)
	}
	if t16 >= t2 {
		t.Errorf("no speedup at all: t2=%.3f t16=%.3f", t2, t16)
	}
}

func TestNstepsVaries(t *testing.T) {
	cfg := smallConfig()
	if cfg.nsteps(0) == cfg.nsteps(1) {
		t.Error("nsteps should vary with the hour")
	}
}

func TestTaskIONeedsThreeProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(t, 2, smallConfig(), TaskIO)
}

func TestDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := run(t, 8, cfg, TaskIO)
	b := run(t, 8, cfg, TaskIO)
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
}
