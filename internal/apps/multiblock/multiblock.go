// Package multiblock implements the multiblock-application pattern the
// paper's introduction motivates and Figure 1 sketches: "multiblock codes
// containing irregularly structured regular meshes are more naturally
// programmed as interacting tasks with each task representing a regular
// mesh". A chain of rectangular blocks of different widths is relaxed with
// Jacobi iterations; each block lives on its own processor subgroup
// (parallel sections), computes its step inside an ON block, and the shared
// boundary columns are exchanged by parent-scope array-section assignments
// between subgroup arrays — exactly the proca/procb/transfer structure of
// Figure 1.
package multiblock

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Config describes the block chain. Every block has H rows; block i has
// Widths[i] columns of which columns 0 and Widths[i]-1 are halo/boundary
// columns. Adjacent blocks share an interface: block i's last interior
// column feeds block i+1's left halo and vice versa. The chain's outer
// boundary columns are fixed at Left and Right; the top and bottom rows are
// fixed at zero.
type Config struct {
	H      int
	Widths []int
	Iters  int
	Left   float64
	Right  float64
}

// DefaultConfig is a three-block chain of unequal widths.
func DefaultConfig() Config {
	return Config{H: 64, Widths: []int{40, 24, 56}, Iters: 30, Left: 100, Right: 0}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.H < 3 {
		return fmt.Errorf("multiblock: H = %d", c.H)
	}
	if len(c.Widths) == 0 {
		return fmt.Errorf("multiblock: no blocks")
	}
	for i, w := range c.Widths {
		if w < 3 {
			return fmt.Errorf("multiblock: block %d width %d < 3", i, w)
		}
	}
	if c.Iters < 0 {
		return fmt.Errorf("multiblock: Iters = %d", c.Iters)
	}
	return nil
}

// JacobiFlops is the modeled per-cell cost of one relaxation update.
const JacobiFlops = 5

// Result of a run.
type Result struct {
	Makespan float64
	// Blocks holds each block's final values in row-major order (gathered;
	// only filled when gather is requested).
	Blocks [][]float64
}

// Run relaxes the chain with one subgroup per block; procsPerBlock must sum
// to at most the machine size (leftover processors idle). The returned
// blocks are gathered for verification.
func Run(mach *machine.Machine, cfg Config, procsPerBlock []int) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(procsPerBlock) != len(cfg.Widths) {
		panic(fmt.Sprintf("multiblock: %d processor counts for %d blocks", len(procsPerBlock), len(cfg.Widths)))
	}
	total := 0
	for _, q := range procsPerBlock {
		total += q
	}
	if total > mach.N() {
		panic(fmt.Sprintf("multiblock: %d processors requested, machine has %d", total, mach.N()))
	}
	res := Result{Blocks: make([][]float64, len(cfg.Widths))}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	runStats := fx.Run(mach, func(p *fx.Proc) {
		specs := make([]group.Spec, 0, len(cfg.Widths)+1)
		for i, q := range procsPerBlock {
			specs = append(specs, group.Sub(blockName(i), q))
		}
		if idle := mach.N() - total; idle > 0 {
			specs = append(specs, group.Sub("idle", idle))
		}
		part := p.Partition(specs...)

		// SUBGROUP(block i) :: mesh_i
		blocks := make([]*dist.Array[float64], len(cfg.Widths))
		next := make([]*dist.Array[float64], len(cfg.Widths))
		for i := range cfg.Widths {
			g := part.Group(blockName(i))
			blocks[i] = dist.New[float64](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.Widths[i]))
			next[i] = dist.New[float64](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.Widths[i]))
			initBlock(blocks[i], cfg, i)
			initBlock(next[i], cfg, i)
		}

		p.TaskRegion(part, func(r *fx.Region) {
			for it := 0; it < cfg.Iters; it++ {
				// Parent scope: exchange interface columns (Figure 1's
				// transfer). Only the owners of each pair participate.
				for i := 0; i+1 < len(blocks); i++ {
					wa := cfg.Widths[i]
					// A's last interior column -> B's left halo.
					dist.CopySection(p.Proc, blocks[i+1], []int{0, 0},
						blocks[i], []int{0, wa - 2}, []int{cfg.H, 1})
					// B's first interior column -> A's right halo.
					dist.CopySection(p.Proc, blocks[i], []int{0, wa - 1},
						blocks[i+1], []int{0, 1}, []int{cfg.H, 1})
				}
				// Subgroup scope: one Jacobi step per block.
				for i := range blocks {
					i := i
					r.On(blockName(i), func() {
						jacobiStep(p, blocks[i], next[i])
					})
				}
				// Buffer swap in parent scope (a pure local pointer swap)
				// so every processor's descriptors stay consistent.
				for i := range blocks {
					blocks[i], next[i] = next[i], blocks[i]
				}
			}
		})

		for i := range blocks {
			if full := dist.GatherGlobal(p.Proc, blocks[i]); full != nil {
				<-mu
				res.Blocks[i] = full
				mu <- struct{}{}
			}
		}
	})
	res.Makespan = runStats.MakespanTime()
	return res
}

func blockName(i int) string { return fmt.Sprintf("block%d", i) }

// initBlock sets the initial temperatures: zero everywhere except the
// chain's outer boundary columns.
func initBlock(a *dist.Array[float64], cfg Config, i int) {
	if !a.IsMember() {
		return
	}
	w := cfg.Widths[i]
	a.FillFunc(func(idx []int) float64 {
		if i == 0 && idx[1] == 0 {
			return cfg.Left
		}
		if i == len(cfg.Widths)-1 && idx[1] == w-1 {
			return cfg.Right
		}
		return 0
	})
}

// jacobiStep computes one relaxation step of a block on its subgroup,
// exchanging ghost rows with subgroup neighbours. Halo columns (0 and w-1)
// and the top/bottom rows are copied through unchanged.
func jacobiStep(p *fx.Proc, cur, next *dist.Array[float64]) {
	if !cur.IsMember() || len(cur.Local()) == 0 {
		return
	}
	above, below := dist.HaloRows(p.Proc, cur, 1)
	w := cur.LocalShape()[1]
	rows := cur.LocalShape()[0]
	h := cur.Layout().Shape()[0]
	local := cur.Local()
	out := next.Local()
	rowAt := func(r int) []float64 {
		switch {
		case r >= 0 && r < rows:
			return local[r*w : (r+1)*w]
		case r < 0:
			return above
		default:
			return below
		}
	}
	for r := 0; r < rows; r++ {
		gi := cur.GlobalRowOfLocal(r)
		dst := out[r*w : (r+1)*w]
		src := local[r*w : (r+1)*w]
		if gi == 0 || gi == h-1 {
			copy(dst, src)
			continue
		}
		up, down := rowAt(r-1), rowAt(r+1)
		dst[0] = src[0]
		dst[w-1] = src[w-1]
		for j := 1; j < w-1; j++ {
			dst[j] = 0.25 * (up[j] + down[j] + src[j-1] + src[j+1])
		}
	}
	p.Compute(float64(rows*w) * JacobiFlops)
}

// Reference runs the same relaxation sequentially on the equivalent single
// global mesh and returns it split back into the chain's blocks (including
// their halo columns) for exact comparison with Run.
func Reference(cfg Config) [][]float64 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Global mesh: end boundary columns plus each block's interior columns.
	totalW := 2
	for _, w := range cfg.Widths {
		totalW += w - 2
	}
	cur := make([]float64, cfg.H*totalW)
	nxt := make([]float64, cfg.H*totalW)
	for i := 0; i < cfg.H; i++ {
		cur[i*totalW] = cfg.Left
		cur[i*totalW+totalW-1] = cfg.Right
	}
	copy(nxt, cur)
	for it := 0; it < cfg.Iters; it++ {
		for i := 1; i < cfg.H-1; i++ {
			for j := 1; j < totalW-1; j++ {
				nxt[i*totalW+j] = 0.25 * (cur[(i-1)*totalW+j] + cur[(i+1)*totalW+j] +
					cur[i*totalW+j-1] + cur[i*totalW+j+1])
			}
		}
		cur, nxt = nxt, cur
	}
	// Split into blocks with halo columns.
	out := make([][]float64, len(cfg.Widths))
	start := 1 // first interior global column of block 0
	for b, w := range cfg.Widths {
		blk := make([]float64, cfg.H*w)
		for i := 0; i < cfg.H; i++ {
			for j := 0; j < w; j++ {
				gj := start + j - 1 // block col 0 = global col start-1
				blk[i*w+j] = cur[i*totalW+gj]
			}
		}
		out[b] = blk
		start += w - 2
	}
	return out
}
