package multiblock

import (
	"math"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func smallConfig() Config {
	return Config{H: 10, Widths: []int{8, 5, 7}, Iters: 12, Left: 50, Right: -10}
}

func run(t *testing.T, procs int, cfg Config, per []int) Result {
	t.Helper()
	m := machine.New(procs, sim.Paragon())
	return Run(m, cfg, per)
}

// compareInterior checks the parallel blocks against the reference on all
// interior columns plus the chain's fixed outer boundary (halo columns of
// the parallel version are stale by design after the last iteration).
func compareInterior(t *testing.T, cfg Config, got, want [][]float64) {
	t.Helper()
	for b, w := range cfg.Widths {
		loJ, hiJ := 1, w-1
		if b == 0 {
			loJ = 0
		}
		if b == len(cfg.Widths)-1 {
			hiJ = w
		}
		for i := 0; i < cfg.H; i++ {
			for j := loJ; j < hiJ; j++ {
				g, r := got[b][i*w+j], want[b][i*w+j]
				if math.Abs(g-r) > 1e-12*(math.Abs(r)+1) {
					t.Fatalf("block %d cell (%d,%d): %g != reference %g", b, i, j, g, r)
				}
			}
		}
	}
}

func TestMatchesReferenceOneProcPerBlock(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 3, cfg, []int{1, 1, 1})
	compareInterior(t, cfg, res.Blocks, Reference(cfg))
}

func TestMatchesReferenceMultiProcBlocks(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 7, cfg, []int{3, 2, 2})
	compareInterior(t, cfg, res.Blocks, Reference(cfg))
}

func TestMatchesReferenceWithIdleProcs(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 6, cfg, []int{2, 1, 1}) // 2 idle
	compareInterior(t, cfg, res.Blocks, Reference(cfg))
}

func TestSingleBlock(t *testing.T) {
	cfg := Config{H: 8, Widths: []int{9}, Iters: 10, Left: 10, Right: 20}
	res := run(t, 2, cfg, []int{2})
	compareInterior(t, cfg, res.Blocks, Reference(cfg))
}

func TestZeroIterationsKeepsInitialState(t *testing.T) {
	cfg := Config{H: 5, Widths: []int{4, 4}, Iters: 0, Left: 7, Right: 3}
	res := run(t, 2, cfg, []int{1, 1})
	for i := 0; i < cfg.H; i++ {
		if res.Blocks[0][i*4] != 7 {
			t.Errorf("left boundary row %d = %g", i, res.Blocks[0][i*4])
		}
		if res.Blocks[1][i*4+3] != 3 {
			t.Errorf("right boundary row %d = %g", i, res.Blocks[1][i*4+3])
		}
	}
}

func TestHeatFlowsAcrossBlocks(t *testing.T) {
	// With a hot left boundary, heat must reach the last block's interior
	// after enough iterations — i.e. the couplings genuinely transfer data.
	cfg := Config{H: 8, Widths: []int{6, 6, 6}, Iters: 60, Left: 100, Right: 0}
	res := run(t, 3, cfg, []int{1, 1, 1})
	last := res.Blocks[2]
	w := 6
	mid := last[(cfg.H/2)*w+2]
	if mid <= 0 {
		t.Errorf("no heat reached block 2 interior: %g", mid)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{H: 2, Widths: []int{5}, Iters: 1},
		{H: 5, Widths: nil, Iters: 1},
		{H: 5, Widths: []int{2}, Iters: 1},
		{H: 5, Widths: []int{5}, Iters: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTooManyProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(t, 2, smallConfig(), []int{2, 2, 2})
}

func TestDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := run(t, 5, cfg, []int{2, 2, 1})
	b := run(t, 5, cfg, []int{2, 2, 1})
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
}

func TestBlocksRunConcurrently(t *testing.T) {
	// Three equal blocks on three subgroups should take roughly the time of
	// one block, not three (parallel sections actually overlap).
	// The blocks are coupled, so each iteration synchronizes neighbours
	// (coupling latency is genuinely on the critical path); but the three
	// compute phases must still overlap — well under 3x the single-block
	// time, which is what a serialized execution would cost.
	cfg := Config{H: 32, Widths: []int{20, 20, 20}, Iters: 20, Left: 1, Right: 0}
	three := run(t, 3, cfg, []int{1, 1, 1})
	one := run(t, 1, Config{H: 32, Widths: []int{20}, Iters: 20, Left: 1, Right: 0}, []int{1})
	if three.Makespan > one.Makespan*2.5 {
		t.Errorf("three blocks on three procs (%.4fs) look serialized vs one block (%.4fs)",
			three.Makespan, one.Makespan)
	}
}
