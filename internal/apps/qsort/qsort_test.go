package qsort

import (
	"testing"
	"testing/quick"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.Paragon())
}

func TestRunSortsAcrossProcCounts(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 8} {
		res := Run(testMachine(procs), 500, 42)
		if !res.Sorted {
			t.Errorf("%d procs: not sorted / multiset changed", procs)
		}
	}
}

func TestSortHandlesDuplicates(t *testing.T) {
	for _, procs := range []int{1, 4} {
		m := testMachine(procs)
		var ok bool
		fx.Run(m, func(p *fx.Proc) {
			g := p.Group()
			n := 200
			a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{n}, []dist.Axis{dist.BlockAxis()}, []int{g.Size()}))
			a.FillFunc(func(idx []int) int64 { return int64(idx[0] % 3) }) // heavy duplication
			Sort(p, a)
			full := dist.GatherGlobal(p.Proc, a)
			if full != nil {
				ok = true
				for i := 1; i < n; i++ {
					if full[i-1] > full[i] {
						ok = false
					}
				}
				counts := map[int64]int{}
				for _, v := range full {
					counts[v]++
				}
				for v := int64(0); v < 3; v++ {
					want := n / 3
					if int(v) < n%3 {
						want++
					}
					if counts[v] != want {
						ok = false
					}
				}
			}
		})
		if !ok {
			t.Errorf("%d procs: duplicate-heavy sort failed", procs)
		}
	}
}

func TestSortAllEqual(t *testing.T) {
	m := testMachine(4)
	fx.Run(m, func(p *fx.Proc) {
		g := p.Group()
		a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{64}, []dist.Axis{dist.BlockAxis()}, []int{4}))
		a.FillFunc(func([]int) int64 { return 7 })
		Sort(p, a)
		for _, v := range a.Local() {
			if v != 7 {
				t.Errorf("all-equal sort changed a value to %d", v)
			}
		}
	})
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	for _, reversed := range []bool{false, true} {
		m := testMachine(4)
		var ok bool
		fx.Run(m, func(p *fx.Proc) {
			g := p.Group()
			n := 128
			a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{n}, []dist.Axis{dist.BlockAxis()}, []int{4}))
			a.FillFunc(func(idx []int) int64 {
				if reversed {
					return int64(n - idx[0])
				}
				return int64(idx[0])
			})
			Sort(p, a)
			sorted := IsSorted(p, a)
			if p.VP() == 0 {
				ok = sorted
			}
		})
		if !ok {
			t.Errorf("reversed=%v: not sorted", reversed)
		}
	}
}

func TestSortTinyInputs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		m := testMachine(2)
		fx.Run(m, func(p *fx.Proc) {
			g := p.Group()
			a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{n}, []dist.Axis{dist.BlockAxis()}, []int{2}))
			a.FillFunc(func(idx []int) int64 { return int64(-idx[0]) })
			Sort(p, a)
			if !IsSorted(p, a) && p.VP() == 0 {
				t.Errorf("n=%d: not sorted", n)
			}
		})
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8, pSeed uint8) bool {
		n := int(nSeed)%300 + 1
		procs := int(pSeed)%6 + 1
		res := Run(testMachine(procs), n, seed)
		return res.Sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelSortFasterThanSequential(t *testing.T) {
	n := 20000
	seq := Run(testMachine(1), n, 7)
	par := Run(testMachine(8), n, 7)
	if !seq.Sorted || !par.Sorted {
		t.Fatal("sort failed")
	}
	if par.Makespan >= seq.Makespan {
		t.Errorf("8-proc sort (%.4fs) not faster than sequential (%.4fs)", par.Makespan, seq.Makespan)
	}
}

func TestComputeSubgroupSizes(t *testing.T) {
	cases := []struct {
		np, nLess, nGr, want int
	}{
		{4, 50, 50, 2},
		{4, 1, 99, 1},  // at least one processor
		{4, 99, 1, 3},  // at most np-1
		{2, 100, 1, 1}, // clamped
		{8, 30, 10, 6}, // proportional
	}
	for _, tc := range cases {
		if got := computeSubgroupSizes(tc.np, tc.nLess, tc.nGr); got != tc.want {
			t.Errorf("computeSubgroupSizes(%d,%d,%d) = %d, want %d", tc.np, tc.nLess, tc.nGr, got, tc.want)
		}
	}
}

func TestDeterministicMakespan(t *testing.T) {
	a := Run(testMachine(4), 1000, 3)
	b := Run(testMachine(4), 1000, 3)
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
}
