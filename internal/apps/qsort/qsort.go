// Package qsort implements the dynamically nested task-parallel quicksort of
// Figure 4: the distributed key array is partitioned around a pivot, the
// current processors are divided into two subgroups proportionally to the
// partition sizes, each subgroup sorts its side recursively (further
// dividing its own processors), and the sorted sides are merged back.
//
// Deviation from Figure 4, documented in DESIGN.md: the partition is
// three-way (less / equal / greater) so that duplicate keys cannot produce
// degenerate recursions; the equal band needs no recursive sort.
package qsort

import (
	"cmp"
	"math"
	"sort"

	"fxpar/internal/comm"
	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// CompareFlops is the modeled cost of one comparison-and-move.
const CompareFlops = 4

// Sort sorts the 1D block-distributed array a — which must be mapped onto
// the caller's current processor group — in place.
func Sort[T cmp.Ordered](p *fx.Proc, a *dist.Array[T]) {
	n := a.Layout().Shape()[0]
	sortRec(p, a, n)
}

func sortRec[T cmp.Ordered](p *fx.Proc, a *dist.Array[T], n int) {
	if n <= 1 {
		return
	}
	g := p.Group()
	if g.Size() == 1 {
		// qsort_sequential of Figure 4.
		local := a.Local()
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
		p.Compute(float64(n) * math.Log2(float64(n)+1) * CompareFlops)
		return
	}

	pivot := pickPivot(p, a, n)

	// count_less_than_pivot (and the equal band, for robustness).
	type cnt struct{ Less, Eq int }
	local := a.Local()
	mine := cnt{}
	for _, v := range local {
		switch {
		case v < pivot:
			mine.Less++
		case v == pivot:
			mine.Eq++
		}
	}
	p.Compute(float64(len(local)) * 2)
	totals := comm.AllReduce(p.Proc, g, mine, func(x, y cnt) cnt {
		return cnt{x.Less + y.Less, x.Eq + y.Eq}
	})
	nLess, nEq := totals.Less, totals.Eq
	nGreater := n - nLess - nEq

	switch {
	case nLess == 0 && nGreater == 0:
		return // all keys equal: already sorted
	case nLess == 0 || nGreater == 0:
		// One-sided recursion on the whole group: pack the non-equal band,
		// sort it, and merge around the equal band.
		m := nLess + nGreater
		side := dist.New[T](p.Proc, dist.MustLayout(g, []int{m}, []dist.Axis{dist.BlockAxis()}, []int{g.Size()}))
		if nLess > 0 {
			dist.PackInto(p.Proc, side, a, 0, func(v T) bool { return v < pivot })
		} else {
			dist.PackInto(p.Proc, side, a, 0, func(v T) bool { return v > pivot })
		}
		p.Compute(float64(len(local)) * 2)
		sortRec(p, side, m)
		if nLess > 0 {
			dist.CopyRange1D(p.Proc, a, 0, side)
			dist.FillRange1D(a, nLess, nLess+nEq, pivot)
		} else {
			dist.FillRange1D(a, 0, nEq, pivot)
			dist.CopyRange1D(p.Proc, a, nEq, side)
		}
		return
	}

	// compute_subgroup_sizes: processors proportional to the two sides.
	p1 := computeSubgroupSizes(g.Size(), nLess, nGreater)
	sortHelper(p, a, n, nLess, nEq, nGreater, p1, g.Size()-p1, pivot)
}

// pickPivot returns the median of the first, middle and last keys,
// broadcast to every group member.
func pickPivot[T cmp.Ordered](p *fx.Proc, a *dist.Array[T], n int) T {
	idxs := []int{0, n / 2, n - 1}
	vals := make([]T, 3)
	for k, i := range idxs {
		vals[k] = elemBcast(p, a, i)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[1]
}

// elemBcast fetches a[i] on every member of a's group.
func elemBcast[T cmp.Ordered](p *fx.Proc, a *dist.Array[T], i int) T {
	g := a.Layout().Group()
	owner := a.Layout().OwnerRank(i)
	var v T
	if a.Rank() == owner {
		v = a.At(i)
	}
	out := comm.Bcast(p.Proc, g, owner, []T{v})
	return out[0]
}

// computeSubgroupSizes of Figure 4: split np processors proportionally to
// the side sizes, at least one each.
func computeSubgroupSizes(np, nLess, nGreater int) int {
	p1 := int(math.Round(float64(np) * float64(nLess) / float64(nLess+nGreater)))
	if p1 < 1 {
		p1 = 1
	}
	if p1 > np-1 {
		p1 = np - 1
	}
	return p1
}

// sortHelper is qsort_helper of Figure 4: declare the partition, map the
// side arrays onto the subgroups, pack, recurse on each subgroup inside its
// ON block, and merge.
func sortHelper[T cmp.Ordered](p *fx.Proc, a *dist.Array[T],
	n, nLess, nEq, nGreater, p1, p2 int, pivot T) {
	part := p.Partition(group.Sub("lessG", p1), group.Sub("greaterEqG", p2))
	gLess, gGr := part.Group("lessG"), part.Group("greaterEqG")
	aLess := dist.New[T](p.Proc, dist.MustLayout(gLess, []int{nLess}, []dist.Axis{dist.BlockAxis()}, []int{p1}))
	aGr := dist.New[T](p.Proc, dist.MustLayout(gGr, []int{nGreater}, []dist.Axis{dist.BlockAxis()}, []int{p2}))
	p.TaskRegion(part, func(r *fx.Region) {
		// pick_less_than_pivot / pick_greater_equal_to_pivot.
		dist.PackInto(p.Proc, aLess, a, 0, func(v T) bool { return v < pivot })
		dist.PackInto(p.Proc, aGr, a, 0, func(v T) bool { return v > pivot })
		p.Compute(float64(len(a.Local())) * 4)
		r.On("lessG", func() {
			sortRec(p, aLess, nLess)
		})
		r.On("greaterEqG", func() {
			sortRec(p, aGr, nGreater)
		})
		// merge_result: sorted(less) ++ equal band ++ sorted(greater).
		dist.CopyRange1D(p.Proc, a, 0, aLess)
		dist.FillRange1D(a, nLess, nLess+nEq, pivot)
		dist.CopyRange1D(p.Proc, a, nLess+nEq, aGr)
	})
}

// Result summarizes a benchmark sort.
type Result struct {
	Makespan float64
	Sorted   bool
	N        int
}

// keyAt generates key i of the synthetic input.
func keyAt(seed int64, i int) int64 {
	h := uint64(i)*0x9e3779b97f4a7c15 + uint64(seed)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return int64(h % 1_000_003)
}

// Run sorts n synthetic keys on the machine and verifies the result.
func Run(mach *machine.Machine, n int, seed int64) Result {
	res := Result{N: n}
	runStats := fx.Run(mach, func(p *fx.Proc) {
		g := p.Group()
		a := dist.New[int64](p.Proc, dist.MustLayout(g, []int{n}, []dist.Axis{dist.BlockAxis()}, []int{g.Size()}))
		a.FillFunc(func(idx []int) int64 { return keyAt(seed, idx[0]) })
		Sort(p, a)
		full := dist.GatherGlobal(p.Proc, a)
		if full != nil {
			res.Sorted = sortedAndSameMultiset(full, n, seed)
		}
	})
	res.Makespan = runStats.MakespanTime()
	return res
}

func sortedAndSameMultiset(full []int64, n int, seed int64) bool {
	if len(full) != n {
		return false
	}
	for i := 1; i < n; i++ {
		if full[i-1] > full[i] {
			return false
		}
	}
	want := make([]int64, n)
	for i := range want {
		want[i] = keyAt(seed, i)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if full[i] != want[i] {
			return false
		}
	}
	return true
}

// IsSorted checks order of a block-distributed array: each processor checks
// its local run and the boundary with its right neighbour, and the verdicts
// are combined across the group.
func IsSorted[T cmp.Ordered](p *fx.Proc, a *dist.Array[T]) bool {
	g := a.Layout().Group()
	if a.Rank() < 0 {
		return true
	}
	local := a.Local()
	ok := 1
	for i := 1; i < len(local); i++ {
		if local[i-1] > local[i] {
			ok = 0
		}
	}
	// Boundary exchange: send my first element left.
	size := 0
	for r := 0; r < g.Size(); r++ {
		if a.Layout().LocalCount(r) > 0 {
			size++
		}
	}
	rank := a.Rank()
	if rank < size && len(local) > 0 {
		if rank > 0 {
			comm.Send(p.Proc, g, rank-1, []T{local[0]})
		}
		if rank < size-1 {
			next := comm.Recv[T](p.Proc, g, rank+1)
			if local[len(local)-1] > next[0] {
				ok = 0
			}
		}
	}
	return comm.AllReduce(p.Proc, g, ok, func(x, y int) int { return x * y }) == 1
}
