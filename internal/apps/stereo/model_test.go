package stereo

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func TestBuildModelShapes(t *testing.T) {
	cfg := DefaultConfig()
	m := BuildModel(sim.Paragon(), cfg, 64)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The diff stage carries the serial camera input; it must dominate the
	// depth stage at every width.
	for p := 1; p <= 64; p *= 2 {
		if m.StageT[0][p] < m.StageT[2][p] {
			t.Errorf("p=%d: diff stage %.5f below depth stage %.5f", p, m.StageT[0][p], m.StageT[2][p])
		}
	}
}

func TestModelFindsTaskMappingForPaperGoalRatio(t *testing.T) {
	cfg := DefaultConfig()
	m := BuildModel(sim.Paragon(), cfg, 64)
	goal := (10.0 / 3.64) / m.DPT[64] // the paper's Table 1 ratio
	c, err := mapping.Optimize(m, goal)
	if err != nil {
		t.Fatalf("paper's stereo goal infeasible: %v", err)
	}
	if c.Modules == 1 && len(c.StageProcs) == 1 {
		t.Errorf("2.75x DP goal met by plain data parallelism: %v", c)
	}
}
