package stereo

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/stats"
)

// stageBody returns the program of stage s of the stereo pipeline run in
// isolation for one data set: the unit of both plain measurement and traced
// capture.
func stageBody(cfg Config, s int) func(*fx.Proc) {
	return func(px *fx.Proc) {
		g := px.Group()
		vol := newVolume(px, g, cfg)
		switch s {
		case 0: // diff: camera read + scatter + SSD volume
			diffStage(px, vol, cfg, 0)
		case 1: // error: window sums with halo exchange
			errorStage(px, vol, cfg)
		case 2: // depth: argmin + reduce + depth-image write
			depth := dist.New[int32](px.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
			depthStage(px, vol, depth, cfg, 0, stats.NewStream(), func(int, int64) {})
		default:
			panic(fmt.Sprintf("stereo: no stage %d", s))
		}
	}
}

// measureStage simulates stage s of the stereo program in isolation on p
// processors for one data set and returns the virtual makespan.
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	if p > cfg.H {
		p = cfg.H // all stages distribute over the H image rows
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, stageBody(cfg, s))
	return st.MakespanTime()
}

// captureStage runs the same isolated stage simulation under a skeleton sink
// and returns the folded communication skeleton alongside the live makespan.
func captureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	if p > cfg.H {
		p = cfg.H
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	st := fx.Run(mach, stageBody(cfg, s))
	sk, err := sink.Skeleton()
	return sk, st.MakespanTime(), err
}

// measureDP simulates the whole stereo program data-parallel on p
// processors for a single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.H {
		p = cfg.H
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// captureDP is the traced variant of measureDP; its live value is a stream
// latency, so ReplayOptions.Eval keeps these cells on the live path.
func captureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	if p > cfg.H {
		p = cfg.H
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	res := Run(mach, one, DataParallel(p))
	sk, err := sink.Skeleton()
	return sk, res.Stream.Latency, err
}

// replayCells rewrites the measurement closures replay-first; see
// ffthist.replayCells for the pattern.
func replayCells(r *mapping.ReplayOptions, cost sim.CostModel, cfg Config, eng machine.Engine,
	stage func(s, p int) float64, dp func(p int) float64) (func(s, p int) float64, func(p int) float64) {
	params := fmt.Sprintf("W=%d,H=%d,D=%d,Win=%d", cfg.W, cfg.H, cfg.Disparities, cfg.Window)
	rStage := func(s, p int) float64 {
		key := skeleton.StoreKey{App: "stereo.stage", Params: fmt.Sprintf("%s,s=%d", params, s),
			Mapping: "isolated", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureStage(base, cfg, s, p, eng)
		}); ok {
			return v
		}
		return stage(s, p)
	}
	rDP := func(p int) float64 {
		key := skeleton.StoreKey{App: "stereo.dp", Params: params, Mapping: "dp", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureDP(base, cfg, p, eng)
		}); ok {
			return v
		}
		return dp(p)
	}
	return rStage, rDP
}

// Spec returns the content-keyed table spec MeasuredModel memoizes its cost
// tables under; exported for the serving layer's request dedupe (see
// ffthist.Spec).
func Spec(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) mapping.TableSpec {
	return mapping.TableSpec{
		App:    "stereo",
		Params: fmt.Sprintf("W=%d,H=%d,D=%d,Win=%d", cfg.W, cfg.H, cfg.Disparities, cfg.Window) + opt.Replay.SpecSuffix(cost),
		P:      maxP,
		Stages: BuildModel(cost, cfg, maxP).StageNames,
		Cost:   cost,
	}
}

// MeasuredModel builds the stereo cost model from isolated stage
// simulations memoized by content key; see ffthist.MeasuredModel for the
// contract (including the replay-first path under opt.Replay).
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP)
	spec := Spec(cost, cfg, maxP, opt)
	stage := func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) }
	dp := func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) }
	if opt.Replay != nil && opt.Replay.Store != nil {
		stage, dp = replayCells(opt.Replay, cost, cfg, opt.Engine, stage, dp)
	}
	tab, src, err := mapping.BuildTables(spec, opt, stage, dp)
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
