package stereo

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/stats"
)

// measureStage simulates stage s of the stereo program in isolation on p
// processors for one data set and returns the virtual makespan.
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	if p > cfg.H {
		p = cfg.H // all stages distribute over the H image rows
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, func(px *fx.Proc) {
		g := px.Group()
		vol := newVolume(px, g, cfg)
		switch s {
		case 0: // diff: camera read + scatter + SSD volume
			diffStage(px, vol, cfg, 0)
		case 1: // error: window sums with halo exchange
			errorStage(px, vol, cfg)
		case 2: // depth: argmin + reduce + depth-image write
			depth := dist.New[int32](px.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
			depthStage(px, vol, depth, cfg, 0, stats.NewStream(), func(int, int64) {})
		default:
			panic(fmt.Sprintf("stereo: no stage %d", s))
		}
	})
	return st.MakespanTime()
}

// measureDP simulates the whole stereo program data-parallel on p
// processors for a single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.H {
		p = cfg.H
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// MeasuredModel builds the stereo cost model from isolated stage
// simulations memoized by content key; see ffthist.MeasuredModel for the
// contract.
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP)
	spec := mapping.TableSpec{
		App:    "stereo",
		Params: fmt.Sprintf("W=%d,H=%d,D=%d,Win=%d", cfg.W, cfg.H, cfg.Disparities, cfg.Window),
		P:      maxP,
		Stages: closed.StageNames,
		Cost:   cost,
	}
	tab, src, err := mapping.BuildTables(spec, opt,
		func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) },
		func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) })
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
