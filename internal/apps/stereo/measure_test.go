package stereo

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// TestHeterogeneousModulesAgree: modules of different widths must produce
// the same depth checksums as the reference mapping.
func TestHeterogeneousModulesAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 4, cfg, DataParallel(4))
	mp := Mapping{Modules: 2, Stages: []int{3}, WideModules: 1, WideStages: []int{4}}
	res := run(t, 7, cfg, mp)
	if res.Stream.Sets != cfg.Sets {
		t.Fatalf("%v: completed %d of %d sets", mp, res.Stream.Sets, cfg.Sets)
	}
	for set := 0; set < cfg.Sets; set++ {
		if res.DepthSum[set] != ref.DepthSum[set] {
			t.Errorf("set %d: depth sum %d, reference %d", set, res.DepthSum[set], ref.DepthSum[set])
		}
	}
}

// TestMeasuredModelFeasible: the measured stereo model validates and
// supports optimization; entries stay positive.
func TestMeasuredModelFeasible(t *testing.T) {
	cfg := smallConfig()
	cost := sim.Paragon()
	const maxP = 8
	mapping.ResetTableMemo()
	m, _, err := MeasuredModel(cost, cfg, maxP, mapping.BuildOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := range m.StageT {
		for p := 1; p <= maxP; p++ {
			if m.StageT[s][p] <= 0 {
				t.Fatalf("StageT[%d][%d] = %g", s, p, m.StageT[s][p])
			}
		}
	}
	if _, err := mapping.Optimize(m, 0); err != nil {
		t.Fatal(err)
	}
}
