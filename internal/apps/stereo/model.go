package stereo

import (
	"math"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// BuildModel constructs the mapper's cost model for the stereo program.
func BuildModel(cost sim.CostModel, cfg Config, maxP int) mapping.Model {
	pixels := cfg.H * cfg.W
	volElems := cfg.Disparities * pixels
	volBytes := float64(volElems * 8)
	imgBytes := float64(3 * pixels * 8)

	rowsPer := func(p int) float64 { return math.Ceil(float64(cfg.H) / float64(p)) }
	share := func(p int) float64 { return rowsPer(p) * float64(cfg.W) * float64(cfg.Disparities) }

	diff := func(p int) float64 {
		t := cost.IOTime(3 * pixels * 8) // serial camera read on rank 0
		if p > 1 {
			t += 3 * (float64(p-1)*cost.SendOverhead + cost.Alpha + imgBytes/3/float64(p)*cost.Beta)
		}
		return t + share(p)*DiffFlops*2/cost.FlopRate
	}
	errT := func(p int) float64 {
		t := share(p) * ErrorFlops / cost.FlopRate
		if p > 1 {
			// Two halo exchanges with neighbours.
			t += 2 * (cost.SendOverhead + cost.Alpha + float64(cfg.Disparities*cfg.Window*cfg.W*8)*cost.Beta)
		}
		return t
	}
	depth := func(p int) float64 {
		t := share(p) * DepthFlops / cost.FlopRate
		if p > 1 {
			t += math.Ceil(math.Log2(float64(p))) * (cost.SendOverhead + cost.Alpha)
		}
		return t + cost.IOTime(pixels*4)
	}
	xfer := func(a, b int) float64 {
		return float64(b)*cost.SendOverhead + cost.Alpha + volBytes/float64(a*b)*cost.Beta
	}

	m := mapping.Model{
		P:          maxP,
		StageNames: []string{"diff", "error", "depth"},
		StageT:     make([][]float64, 3),
		DPT:        make([]float64, maxP+1),
		Caps:       []int{cfg.H, cfg.H, cfg.H},
		Xfer:       func(s, a, b int) float64 { return xfer(a, b) },
	}
	for s := range m.StageT {
		m.StageT[s] = make([]float64, maxP+1)
	}
	for p := 1; p <= maxP; p++ {
		pd := p
		if pd > cfg.H {
			pd = cfg.H
		}
		m.StageT[0][p] = diff(pd)
		m.StageT[1][p] = errT(pd)
		m.StageT[2][p] = depth(pd)
		m.DPT[p] = m.StageT[0][pd] + m.StageT[1][pd] + m.StageT[2][pd]
	}
	return m
}

// ChoiceToMapping converts a mapper Choice into a runnable Mapping.
func ChoiceToMapping(c mapping.Choice) Mapping {
	return Mapping{
		Modules: c.Modules, Stages: append([]int(nil), c.StageProcs...),
		WideModules: c.WideModules, WideStages: append([]int(nil), c.WideStageProcs...),
	}
}
