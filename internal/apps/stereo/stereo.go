// Package stereo implements the CMU multibaseline stereo benchmark of
// Section 5.1 (Okutomi & Kanade): each data set is a triple of camera
// images; processing computes difference images (sum of squared differences
// between corresponding pixels of the match images for each candidate
// disparity), error images (sum over a surrounding pixel window), and the
// depth image (per-pixel minimum over disparities).
//
// The three steps form a natural 3-stage data parallel pipeline; the error
// step needs halo rows from neighbouring processors (a window sum across the
// block-distributed image rows), which exercises subgroup-internal
// communication inside an ON block.
package stereo

import (
	"fmt"

	"fxpar/internal/apps/streams"
	"fxpar/internal/comm"
	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/stats"
)

// Config describes the stereo workload. Images are H-by-W pixels; the
// paper's data set is 256x240 (W=256, H=240) with three cameras.
type Config struct {
	W, H        int
	Disparities int // candidate disparities searched
	Window      int // half-width of the error window (full window 2w+1)
	Sets        int
}

// DefaultConfig is the paper's 256x240 data set.
func DefaultConfig() Config {
	return Config{W: 256, H: 240, Disparities: 16, Window: 2, Sets: 8}
}

// Mapping: Modules replicas of either a data-parallel module (one entry) or
// a 3-stage pipeline (diff, error, depth). The first WideModules modules
// run with WideStages instead of Stages — the optimizer's way of spending
// the P mod Modules leftover processors.
type Mapping struct {
	Modules     int
	Stages      []int
	WideModules int
	WideStages  []int
}

// DataParallel returns the data-parallel mapping on p processors.
func DataParallel(p int) Mapping { return Mapping{Modules: 1, Stages: []int{p}} }

// ModuleStages returns the per-stage processor counts of module i.
func (mp Mapping) ModuleStages(i int) []int {
	if i < mp.WideModules {
		return mp.WideStages
	}
	return mp.Stages
}

// ModuleSizes returns the total processors of each module, in module order.
func (mp Mapping) ModuleSizes() []int {
	sizes := make([]int, mp.Modules)
	for i := range sizes {
		for _, q := range mp.ModuleStages(i) {
			sizes[i] += q
		}
	}
	return sizes
}

// Procs returns the processors the mapping occupies.
func (mp Mapping) Procs() int {
	s := 0
	for _, sz := range mp.ModuleSizes() {
		s += sz
	}
	return s
}

// Validate checks the mapping.
func (mp Mapping) Validate(total int, cfg Config) error {
	if mp.Modules < 1 {
		return fmt.Errorf("stereo: Modules = %d", mp.Modules)
	}
	if mp.WideModules < 0 || (mp.WideModules > 0 && mp.WideModules >= mp.Modules) {
		return fmt.Errorf("stereo: WideModules = %d of %d", mp.WideModules, mp.Modules)
	}
	checkStages := func(stages []int) error {
		if len(stages) != 1 && len(stages) != 3 {
			return fmt.Errorf("stereo: need 1 or 3 stage sizes, got %v", stages)
		}
		for _, q := range stages {
			if q < 1 {
				return fmt.Errorf("stereo: non-positive stage size in %v", stages)
			}
			if q > cfg.H {
				return fmt.Errorf("stereo: stage of %d processors exceeds %d image rows", q, cfg.H)
			}
		}
		return nil
	}
	if err := checkStages(mp.Stages); err != nil {
		return err
	}
	if mp.WideModules > 0 {
		if err := checkStages(mp.WideStages); err != nil {
			return err
		}
		if len(mp.WideStages) != len(mp.Stages) {
			return fmt.Errorf("stereo: wide stages %v mismatch narrow %v", mp.WideStages, mp.Stages)
		}
	} else if mp.WideStages != nil {
		return fmt.Errorf("stereo: WideStages %v with zero WideModules", mp.WideStages)
	}
	if mp.Procs() > total {
		return fmt.Errorf("stereo: mapping uses %d processors, machine has %d", mp.Procs(), total)
	}
	return nil
}

func (mp Mapping) String() string {
	shape := func(stages []int) string {
		if len(stages) == 1 {
			return fmt.Sprintf("dp %d", stages[0])
		}
		return fmt.Sprintf("pipeline%v", stages)
	}
	if mp.WideModules > 0 {
		return fmt.Sprintf("replicated(%d x %s + %d x %s)",
			mp.WideModules, shape(mp.WideStages), mp.Modules-mp.WideModules, shape(mp.Stages))
	}
	if len(mp.Stages) == 1 {
		if mp.Modules == 1 {
			return fmt.Sprintf("data-parallel(%d)", mp.Stages[0])
		}
		return fmt.Sprintf("replicated(%d x dp %d)", mp.Modules, mp.Stages[0])
	}
	return fmt.Sprintf("replicated(%d x pipeline%v)", mp.Modules, mp.Stages)
}

// Result of a run. DepthSum maps data set index to the sum of the depth
// image's disparity indices — a checksum verified across mappings.
type Result struct {
	Stream   stats.Result
	DepthSum map[int]int64
	Makespan float64
}

// Cost constants (flops per pixel) for the three phases.
const (
	DiffFlops  = 3 // subtract, square, accumulate — per pixel per disparity per match image
	ErrorFlops = 4 // separable window sum, two passes of add+store
	DepthFlops = 1 // compare per disparity
)

// scene returns the "true" disparity at pixel (i, j) of set s: a blocky
// pattern so window sums have clear minima.
func scene(s, i, j, disparities int) int {
	return ((i/24)*7 + (j/32)*3 + s) % disparities
}

// refPixel generates the reference image.
func refPixel(s, i, j int) float64 {
	h := uint32(s*2654435761) ^ uint32(i*40503+j*9973)
	h ^= h >> 13
	h *= 1103515245
	h ^= h >> 16
	return float64(h%4096) / 4096
}

// matchPixel generates match image m: the reference shifted by the scene
// disparity (per epipolar geometry, match m at disparity d sees pixel
// (i, j-d*m)); pixels shifted out of range replicate the edge.
func matchPixel(s, m, i, j, disparities int) float64 {
	d := scene(s, i, j, disparities)
	jj := j - d*m
	if jj < 0 {
		jj = 0
	}
	return refPixel(s, i, jj)
}

// Run executes the stream under the mapping.
func Run(mach *machine.Machine, cfg Config, mp Mapping) Result {
	if err := mp.Validate(mach.N(), cfg); err != nil {
		panic(err)
	}
	meter := stats.NewStream()
	res := Result{DepthSum: make(map[int]int64)}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(set int, sum int64) {
		<-mu
		res.DepthSum[set] = sum
		mu <- struct{}{}
	}
	runStats := fx.Run(mach, func(p *fx.Proc) {
		streams.RunModules(p, mp.ModuleSizes(), func(p *fx.Proc, module int) {
			runModule(p, cfg, mp.ModuleStages(module), module, mp.Modules, meter, record)
		})
	})
	res.Stream = meter.Summarize()
	res.Makespan = runStats.MakespanTime()
	return res
}

// RunCaptureDepth processes data set 0 data-parallel on the whole machine
// and returns the full depth image in row-major order — used by tests and
// diagnostics to validate the stereo pipeline against the generating scene.
func RunCaptureDepth(mach *machine.Machine, cfg Config) []int32 {
	var captured []int32
	meter := stats.NewStream()
	fx.Run(mach, func(p *fx.Proc) {
		g := p.Group()
		vol := newVolume(p, g, cfg)
		depth := dist.New[int32](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
		if vol.Rank() == 0 {
			meter.Inject(0, p.Now())
		}
		diffStage(p, vol, cfg, 0)
		errorStage(p, vol, cfg)
		depthStage(p, vol, depth, cfg, 0, meter, func(int, int64) {})
		full := dist.GatherGlobal(p.Proc, depth)
		if full != nil {
			captured = full
		}
	})
	return captured
}

func runModule(p *fx.Proc, cfg Config, stages []int, first, stride int,
	meter *stats.Stream, record func(int, int64)) {
	if len(stages) == 1 {
		g := p.Group()
		vol := newVolume(p, g, cfg)
		depth := dist.New[int32](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
		for set := first; set < cfg.Sets; set += stride {
			if vol.Rank() == 0 {
				meter.Inject(set, p.Now())
			}
			diffStage(p, vol, cfg, set)
			errorStage(p, vol, cfg)
			depthStage(p, vol, depth, cfg, set, meter, record)
		}
		return
	}
	g := p.Group()
	g1 := g.Subrange(0, stages[0])
	g2 := g.Subrange(stages[0], stages[0]+stages[1])
	g3 := g.Subrange(stages[0]+stages[1], stages[0]+stages[1]+stages[2])
	vol1 := newVolume(p, g1, cfg)
	vol2 := newVolume(p, g2, cfg)
	vol3 := newVolume(p, g3, cfg)
	depth := dist.New[int32](p.Proc, dist.RowBlock2D(g3, cfg.H, cfg.W))
	fx.PipelineLoop(p, fx.PipelineSpec{
		Sets: cfg.Sets, First: first, Stride: stride,
		Stages: []fx.Stage{
			{Name: "Gdiff", Procs: stages[0], Body: func(set int) {
				if vol1.Rank() == 0 {
					meter.Inject(set, p.Now())
				}
				diffStage(p, vol1, cfg, set)
			}},
			{Name: "Gerr", Procs: stages[1], Body: func(set int) { errorStage(p, vol2, cfg) }},
			{Name: "Gdep", Procs: stages[2], Body: func(set int) {
				depthStage(p, vol3, depth, cfg, set, meter, record)
			}},
		},
		Transfer: []func(int){
			func(int) { dist.Assign(p.Proc, vol2, vol1) },
			func(int) { dist.Assign(p.Proc, vol3, vol2) },
		},
	})
}

// newVolume allocates the (Disparities, H, W) difference volume distributed
// over the image rows.
func newVolume(p *fx.Proc, g *group.Group, cfg Config) *dist.Array[float64] {
	l := dist.MustLayout(g,
		[]int{cfg.Disparities, cfg.H, cfg.W},
		[]dist.Axis{dist.CollapsedAxis(), dist.BlockAxis(), dist.CollapsedAxis()},
		[]int{1, g.Size(), 1})
	return dist.New[float64](p.Proc, l)
}

// diffStage reads the camera images (serial I/O on the stage's rank 0,
// scattered row-block) and computes the SSD difference volume.
func diffStage(p *fx.Proc, vol *dist.Array[float64], cfg Config, set int) {
	if !vol.IsMember() {
		return
	}
	g := vol.Layout().Group()
	// Input: three images; rank 0 reads them, then scatters rows.
	ref := dist.New[float64](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
	m1 := dist.New[float64](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
	m2 := dist.New[float64](p.Proc, dist.RowBlock2D(g, cfg.H, cfg.W))
	var fRef, fM1, fM2 []float64
	if vol.Rank() == 0 {
		p.IO(3 * cfg.H * cfg.W * 8)
		fRef = make([]float64, cfg.H*cfg.W)
		fM1 = make([]float64, cfg.H*cfg.W)
		fM2 = make([]float64, cfg.H*cfg.W)
		for i := 0; i < cfg.H; i++ {
			for j := 0; j < cfg.W; j++ {
				fRef[i*cfg.W+j] = refPixel(set, i, j)
				fM1[i*cfg.W+j] = matchPixel(set, 1, i, j, cfg.Disparities)
				fM2[i*cfg.W+j] = matchPixel(set, 2, i, j, cfg.Disparities)
			}
		}
	}
	dist.ScatterGlobal(p.Proc, ref, fRef)
	dist.ScatterGlobal(p.Proc, m1, fM1)
	dist.ScatterGlobal(p.Proc, m2, fM2)

	// vol[d][i][j] = sum over match images m of (ref[i][j-d*m] - match_m[i][j])^2,
	// following the match geometry of matchPixel (edge-replicated).
	localRows := ref.LocalShape()[0]
	w := cfg.W
	volLocal := vol.Local()
	for d := 0; d < cfg.Disparities; d++ {
		for li := 0; li < localRows; li++ {
			refRow := ref.Local()[li*w : (li+1)*w]
			m1Row := m1.Local()[li*w : (li+1)*w]
			m2Row := m2.Local()[li*w : (li+1)*w]
			out := volLocal[(d*localRows+li)*w : (d*localRows+li+1)*w]
			for j := 0; j < w; j++ {
				jd1 := j - d
				if jd1 < 0 {
					jd1 = 0
				}
				jd2 := j - 2*d
				if jd2 < 0 {
					jd2 = 0
				}
				e1 := refRow[jd1] - m1Row[j]
				e2 := refRow[jd2] - m2Row[j]
				out[j] = e1*e1 + e2*e2
			}
		}
	}
	p.Compute(float64(cfg.Disparities*localRows*w) * DiffFlops * 2)
}

// errorStage replaces each difference value with the sum over a
// (2w+1)x(2w+1) window, using separable passes; the vertical pass exchanges
// halo rows with neighbouring processors of the stage subgroup.
func errorStage(p *fx.Proc, vol *dist.Array[float64], cfg Config) {
	if !vol.IsMember() {
		return
	}
	g := vol.Layout().Group()
	w := cfg.W
	win := cfg.Window
	localRows := vol.LocalShape()[1]
	local := vol.Local()
	rank := vol.Rank()
	// BLOCK distribution can leave trailing ranks empty (ceil division);
	// the non-empty ranks form a contiguous prefix that carries the halo
	// protocol. Empty ranks skip the stage entirely.
	size := 0
	for r := 0; r < g.Size(); r++ {
		if vol.Layout().LocalCount(r) > 0 {
			size++
		}
	}
	if localRows == 0 {
		return
	}
	if rank < size-1 && localRows < win {
		panic(fmt.Sprintf("stereo: interior rank %d holds %d rows < window %d; halo exchange would span several processors", rank, localRows, win))
	}

	// Horizontal pass (in place via temp row).
	tmp := make([]float64, w)
	for d := 0; d < cfg.Disparities; d++ {
		for li := 0; li < localRows; li++ {
			row := local[(d*localRows+li)*w : (d*localRows+li+1)*w]
			for j := 0; j < w; j++ {
				s := 0.0
				for k := -win; k <= win; k++ {
					jj := j + k
					if jj < 0 {
						jj = 0
					} else if jj >= w {
						jj = w - 1
					}
					s += row[jj]
				}
				tmp[j] = s
			}
			copy(row, tmp)
		}
	}

	// Halo exchange: send my top win rows down to rank-1 and bottom win rows
	// up to rank+1 (all disparities), then receive the neighbours' halos.
	rowBytes := w * 8
	packRows := func(fromTop bool) []float64 {
		buf := make([]float64, 0, cfg.Disparities*win*w)
		for d := 0; d < cfg.Disparities; d++ {
			for k := 0; k < win; k++ {
				li := k
				if !fromTop {
					li = localRows - win + k
				}
				if li < 0 || li >= localRows {
					li = clamp(li, 0, localRows-1)
				}
				buf = append(buf, local[(d*localRows+li)*w:(d*localRows+li+1)*w]...)
			}
		}
		return buf
	}
	var above, below []float64
	if win > 0 && size > 1 {
		if rank > 0 {
			p.Send(g.Phys(rank-1), packRows(true), cfg.Disparities*win*rowBytes)
		}
		if rank < size-1 {
			p.Send(g.Phys(rank+1), packRows(false), cfg.Disparities*win*rowBytes)
		}
		if rank > 0 {
			above = p.Recv(g.Phys(rank - 1)).Data.([]float64)
		}
		if rank < size-1 {
			below = p.Recv(g.Phys(rank + 1)).Data.([]float64)
		}
	}
	haloRow := func(buf []float64, d, k int) []float64 {
		off := (d*win + k) * w
		return buf[off : off+w]
	}

	// Vertical pass.
	out := make([]float64, len(local))
	for d := 0; d < cfg.Disparities; d++ {
		for li := 0; li < localRows; li++ {
			dst := out[(d*localRows+li)*w : (d*localRows+li+1)*w]
			for j := 0; j < w; j++ {
				dst[j] = 0
			}
			for k := -win; k <= win; k++ {
				gi := li + k
				var src []float64
				switch {
				case gi >= 0 && gi < localRows:
					src = local[(d*localRows+gi)*w : (d*localRows+gi+1)*w]
				case gi < 0 && above != nil:
					src = haloRow(above, d, win+gi) // gi in [-win,-1] -> [0,win)
				case gi >= localRows && below != nil:
					src = haloRow(below, d, gi-localRows)
				case gi < 0: // global top edge: replicate
					src = local[(d*localRows)*w : (d*localRows+1)*w]
				default: // global bottom edge: replicate
					src = local[(d*localRows+localRows-1)*w : (d*localRows+localRows)*w]
				}
				for j := 0; j < w; j++ {
					dst[j] += src[j]
				}
			}
		}
	}
	copy(local, out)
	p.Compute(float64(cfg.Disparities*localRows*w) * ErrorFlops)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// depthStage computes the per-pixel argmin over disparities, checksums the
// depth image, and completes the data set on the stage's rank 0.
func depthStage(p *fx.Proc, vol *dist.Array[float64], depth *dist.Array[int32],
	cfg Config, set int, meter *stats.Stream, record func(int, int64)) {
	if !vol.IsMember() {
		return
	}
	w := cfg.W
	localRows := vol.LocalShape()[1]
	local := vol.Local()
	var sum int64
	for li := 0; li < localRows; li++ {
		drow := depth.Local()[li*w : (li+1)*w]
		for j := 0; j < w; j++ {
			best := local[li*w+j]
			bestD := 0
			for d := 1; d < cfg.Disparities; d++ {
				v := local[(d*localRows+li)*w+j]
				if v < best {
					best = v
					bestD = d
				}
			}
			drow[j] = int32(bestD)
			sum += int64(bestD)
		}
	}
	p.Compute(float64(cfg.Disparities*localRows*w) * DepthFlops)
	g := vol.Layout().Group()
	total := comm.Reduce(p.Proc, g, 0, sum, func(x, y int64) int64 { return x + y })
	if vol.Rank() == 0 {
		p.IO(cfg.H * cfg.W * 4)
		meter.Complete(set, p.Now())
		record(set, total)
	}
}
