package stereo

import (
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func smallConfig() Config {
	return Config{W: 32, H: 24, Disparities: 4, Window: 2, Sets: 5}
}

func run(t *testing.T, procs int, cfg Config, mp Mapping) Result {
	t.Helper()
	m := machine.New(procs, sim.Paragon())
	return Run(m, cfg, mp)
}

func TestValidate(t *testing.T) {
	cfg := smallConfig()
	cases := []struct {
		mp    Mapping
		procs int
		ok    bool
	}{
		{DataParallel(4), 4, true},
		{Mapping{Modules: 1, Stages: []int{2, 2, 2}}, 6, true},
		{Mapping{Modules: 2, Stages: []int{3}}, 8, true},
		{Mapping{Modules: 1, Stages: []int{2, 2}}, 4, false},
		{DataParallel(25), 32, false}, // exceeds H rows
		{DataParallel(5), 4, false},
	}
	for _, tc := range cases {
		err := tc.mp.Validate(tc.procs, cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%v on %d: err=%v want ok=%v", tc.mp, tc.procs, err, tc.ok)
		}
	}
}

func TestDepthRecoversScene(t *testing.T) {
	// With noise-free shifted match images and block-constant disparities,
	// the argmin depth must match the generating scene away from block and
	// image boundaries. Single processor, single set.
	cfg := Config{W: 64, H: 48, Disparities: 4, Window: 1, Sets: 1}
	m := machine.New(1, sim.Paragon())
	var captured []int32
	fxRunCapture(m, cfg, &captured)
	errs := 0
	checked := 0
	for i := 8; i < cfg.H-8; i++ {
		for j := 16; j < cfg.W-8; j++ {
			// Skip pixels near disparity-block boundaries.
			if (i%24) < 3 || (i%24) > 20 || (j%32) < 9 || (j%32) > 28 {
				continue
			}
			checked++
			want := scene(0, i, j, cfg.Disparities)
			if int(captured[i*cfg.W+j]) != want {
				errs++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pixels checked")
	}
	if float64(errs) > 0.05*float64(checked) {
		t.Errorf("depth wrong at %d/%d interior pixels", errs, checked)
	}
}

// fxRunCapture runs the data-parallel program on one processor and captures
// the depth image of set 0 via the package internals.
func fxRunCapture(m *machine.Machine, cfg Config, out *[]int32) {
	res := RunCaptureDepth(m, cfg)
	*out = res
}

func TestMappingsAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 1, cfg, DataParallel(1))
	for _, tc := range []struct {
		procs int
		mp    Mapping
	}{
		{4, DataParallel(4)},
		{6, Mapping{Modules: 1, Stages: []int{2, 2, 2}}},
		{8, Mapping{Modules: 2, Stages: []int{4}}},
		{10, Mapping{Modules: 2, Stages: []int{2, 2, 1}}},
		{3, DataParallel(3)}, // uneven rows
	} {
		res := run(t, tc.procs, cfg, tc.mp)
		if res.Stream.Sets != cfg.Sets {
			t.Errorf("%v completed %d sets", tc.mp, res.Stream.Sets)
			continue
		}
		for set := 0; set < cfg.Sets; set++ {
			if res.DepthSum[set] != ref.DepthSum[set] {
				t.Errorf("%v set %d: depth checksum %d != %d", tc.mp, set, res.DepthSum[set], ref.DepthSum[set])
			}
		}
	}
}

func TestPipelineAndReplicationImproveThroughput(t *testing.T) {
	cfg := Config{W: 64, H: 24, Disparities: 8, Window: 2, Sets: 10}
	dp := run(t, 8, cfg, DataParallel(8))
	pl := run(t, 8, cfg, Mapping{Modules: 1, Stages: []int{4, 2, 2}})
	rep := run(t, 8, cfg, Mapping{Modules: 2, Stages: []int{4}})
	if pl.Stream.Throughput <= dp.Stream.Throughput &&
		rep.Stream.Throughput <= dp.Stream.Throughput {
		t.Errorf("neither pipeline (%.2f) nor replication (%.2f) beat DP (%.2f)",
			pl.Stream.Throughput, rep.Stream.Throughput, dp.Stream.Throughput)
	}
	if dp.Stream.Latency > pl.Stream.Latency {
		t.Errorf("DP latency %.4f should not exceed pipeline latency %.4f",
			dp.Stream.Latency, pl.Stream.Latency)
	}
}

func TestModelOptimizeFeasible(t *testing.T) {
	cfg := smallConfig()
	model := BuildModel(sim.Paragon(), cfg, 8)
	c, err := mapping.Optimize(model, 0)
	if err != nil {
		t.Fatal(err)
	}
	mp := ChoiceToMapping(c)
	if err := mp.Validate(8, cfg); err != nil {
		t.Fatalf("mapper produced invalid mapping %v: %v", mp, err)
	}
	res := run(t, 8, cfg, mp)
	if res.Stream.Sets != cfg.Sets {
		t.Errorf("completed %d sets", res.Stream.Sets)
	}
}
