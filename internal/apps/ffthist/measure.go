package ffthist

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/stats"
)

// measureStage simulates stage s of FFT-Hist in isolation on p processors
// for one data set and returns the virtual makespan — one cell of the
// measured cost table t(s, p). The simulation is deterministic in virtual
// time, so the result is a pure function of (cost, cfg, s, p).
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	if p > cfg.N {
		p = cfg.N // stages distribute over the N matrix rows
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, func(px *fx.Proc) {
		g := px.Group()
		a := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.N, cfg.N))
		switch s {
		case 0: // cffts: sensor read + scatter + column FFTs
			inputSet(px, a, 0, cfg.N)
			fftLocalRows(px, a)
		case 1: // rffts: row FFTs only
			fftLocalRows(px, a)
		case 2: // hist: histogram + reduction + result write
			histSet(px, a, cfg, 0, stats.NewStream(), func(int, []int64) {})
		default:
			panic(fmt.Sprintf("ffthist: no stage %d", s))
		}
	})
	return st.MakespanTime()
}

// measureDP simulates the whole program data-parallel on p processors for a
// single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.N {
		p = cfg.N
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// MeasuredModel builds the mapper's cost model for FFT-Hist by simulating
// every stage at every candidate processor count (and the data-parallel
// whole program), instead of using BuildModel's closed forms. The
// measurement campaign fans out over opt.Workers host workers and is
// memoized under a content key of (app, parameters, machine size, cost
// constants) — see mapping.BuildTables — so repeated builds, in-process or
// across process invocations with opt.CacheDir set, skip the simulations
// entirely. The returned source says where the tables came from.
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP) // reuse caps and transfer-cost structure
	spec := mapping.TableSpec{
		App:    "ffthist",
		Params: fmt.Sprintf("N=%d,Bins=%d", cfg.N, cfg.Bins),
		P:      maxP,
		Stages: closed.StageNames,
		Cost:   cost,
	}
	tab, src, err := mapping.BuildTables(spec, opt,
		func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) },
		func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) })
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
