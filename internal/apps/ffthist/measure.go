package ffthist

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/stats"
)

// stageBody returns the program of stage s of FFT-Hist run in isolation for
// one data set: the unit of both plain measurement and traced capture.
func stageBody(cfg Config, s int) func(*fx.Proc) {
	return func(px *fx.Proc) {
		g := px.Group()
		a := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.N, cfg.N))
		switch s {
		case 0: // cffts: sensor read + scatter + column FFTs
			inputSet(px, a, 0, cfg.N)
			fftLocalRows(px, a)
		case 1: // rffts: row FFTs only
			fftLocalRows(px, a)
		case 2: // hist: histogram + reduction + result write
			histSet(px, a, cfg, 0, stats.NewStream(), func(int, []int64) {})
		default:
			panic(fmt.Sprintf("ffthist: no stage %d", s))
		}
	}
}

// measureStage simulates stage s of FFT-Hist in isolation on p processors
// for one data set and returns the virtual makespan — one cell of the
// measured cost table t(s, p). The simulation is deterministic in virtual
// time, so the result is a pure function of (cost, cfg, s, p).
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	if p > cfg.N {
		p = cfg.N // stages distribute over the N matrix rows
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, stageBody(cfg, s))
	return st.MakespanTime()
}

// captureStage runs the same isolated stage simulation under a skeleton sink
// and returns the folded communication skeleton alongside the live makespan:
// the traced half of the replay backend's miss path.
func captureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	if p > cfg.N {
		p = cfg.N
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	st := fx.Run(mach, stageBody(cfg, s))
	sk, err := sink.Skeleton()
	return sk, st.MakespanTime(), err
}

// measureDP simulates the whole program data-parallel on p processors for a
// single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.N {
		p = cfg.N
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// captureDP is the traced variant of measureDP. Its live value is a stream
// latency, not a DAG makespan, so ReplayOptions.Eval will detect the
// mismatch and keep these cells on the live path — the capture exists so
// that detection is automatic rather than hard-coded per app.
func captureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	if p > cfg.N {
		p = cfg.N
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	res := Run(mach, one, DataParallel(p))
	sk, err := sink.Skeleton()
	return sk, res.Stream.Latency, err
}

// replayCells rewrites the BuildTables measurement closures replay-first:
// each cell consults the skeleton store and answers by analytic re-cost when
// it can, falling back to the live simulation otherwise. Shared verbatim in
// shape by the radar and stereo packages.
func replayCells(r *mapping.ReplayOptions, cost sim.CostModel, cfg Config, eng machine.Engine,
	stage func(s, p int) float64, dp func(p int) float64) (func(s, p int) float64, func(p int) float64) {
	params := fmt.Sprintf("N=%d,Bins=%d", cfg.N, cfg.Bins)
	rStage := func(s, p int) float64 {
		key := skeleton.StoreKey{App: "ffthist.stage", Params: fmt.Sprintf("%s,s=%d", params, s),
			Mapping: "isolated", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureStage(base, cfg, s, p, eng)
		}); ok {
			return v
		}
		return stage(s, p)
	}
	rDP := func(p int) float64 {
		key := skeleton.StoreKey{App: "ffthist.dp", Params: params, Mapping: "dp", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureDP(base, cfg, p, eng)
		}); ok {
			return v
		}
		return dp(p)
	}
	return rStage, rDP
}

// Spec returns the content-keyed table spec MeasuredModel memoizes its cost
// tables under. It is exported so the serving layer (internal/serve) can
// dedupe identical optimize requests on exactly the key the cache uses —
// the stream length (Sets) is deliberately absent, so requests differing
// only in stream length share one table build.
func Spec(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) mapping.TableSpec {
	return mapping.TableSpec{
		App:    "ffthist",
		Params: fmt.Sprintf("N=%d,Bins=%d", cfg.N, cfg.Bins) + opt.Replay.SpecSuffix(cost),
		P:      maxP,
		Stages: BuildModel(cost, cfg, maxP).StageNames,
		Cost:   cost,
	}
}

// MeasuredModel builds the mapper's cost model for FFT-Hist by simulating
// every stage at every candidate processor count (and the data-parallel
// whole program), instead of using BuildModel's closed forms. The
// measurement campaign fans out over opt.Workers host workers and is
// memoized under a content key of (app, parameters, machine size, cost
// constants) — see mapping.BuildTables — so repeated builds, in-process or
// across process invocations with opt.CacheDir set, skip the simulations
// entirely. The returned source says where the tables came from.
//
// With opt.Replay set, each cell is answered replay-first from the skeleton
// store: a hit costs one analytic DAG evaluation instead of a simulation,
// and a miss runs one live traced simulation that populates the store for
// every build after it.
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP) // reuse caps and transfer-cost structure
	spec := Spec(cost, cfg, maxP, opt)
	stage := func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) }
	dp := func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) }
	if opt.Replay != nil && opt.Replay.Store != nil {
		stage, dp = replayCells(opt.Replay, cost, cfg, opt.Engine, stage, dp)
	}
	tab, src, err := mapping.BuildTables(spec, opt, stage, dp)
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
