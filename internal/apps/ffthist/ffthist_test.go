package ffthist

import (
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func smallConfig() Config { return Config{N: 16, Sets: 6, Bins: 8} }

func run(t *testing.T, procs int, cfg Config, mp Mapping) Result {
	t.Helper()
	m := machine.New(procs, sim.Paragon())
	return Run(m, cfg, mp)
}

func TestMappingValidate(t *testing.T) {
	cases := []struct {
		mp    Mapping
		procs int
		ok    bool
	}{
		{DataParallel(8), 8, true},
		{Pipeline(2, 4, 2), 8, true},
		{Mapping{Modules: 2, Stages: []int{4}}, 8, true},
		{Mapping{Modules: 2, Stages: []int{2, 1, 1}}, 8, true},
		{DataParallel(8), 9, true}, // one idle processor is allowed
		{DataParallel(9), 8, false},
		{Mapping{Modules: 0, Stages: []int{8}}, 8, false},
		{Mapping{Modules: 1, Stages: []int{4, 4}}, 8, false},
		{Mapping{Modules: 1, Stages: []int{0, 4, 4}}, 8, false},
	}
	for _, tc := range cases {
		err := tc.mp.Validate(tc.procs)
		if (err == nil) != tc.ok {
			t.Errorf("%v on %d procs: err=%v, want ok=%v", tc.mp, tc.procs, err, tc.ok)
		}
	}
}

func TestMappingString(t *testing.T) {
	if got := DataParallel(64).String(); got != "data-parallel(64)" {
		t.Errorf("got %q", got)
	}
	if got := Pipeline(1, 2, 3).String(); got != "pipeline(1,2,3)" {
		t.Errorf("got %q", got)
	}
	if got := (Mapping{Modules: 2, Stages: []int{4}}).String(); got != "replicated(2 modules x dp 4)" {
		t.Errorf("got %q", got)
	}
}

func TestDataParallelCompletesAllSets(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 4, cfg, DataParallel(4))
	if res.Stream.Sets != cfg.Sets {
		t.Fatalf("completed %d sets, want %d", res.Stream.Sets, cfg.Sets)
	}
	if len(res.Hists) != cfg.Sets {
		t.Fatalf("recorded %d histograms", len(res.Hists))
	}
	for set, h := range res.Hists {
		var total int64
		for _, c := range h {
			total += c
		}
		if total != int64(cfg.N*cfg.N) {
			t.Errorf("set %d histogram sums to %d, want %d", set, total, cfg.N*cfg.N)
		}
	}
}

// All mappings must compute identical histograms: the directives are
// assertions, not semantics (Section 2.2).
func TestMappingsAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 4, cfg, DataParallel(4))
	mappings := []struct {
		procs int
		mp    Mapping
	}{
		{1, DataParallel(1)},
		{6, Pipeline(2, 3, 1)},
		{3, Pipeline(1, 1, 1)},
		{8, Mapping{Modules: 2, Stages: []int{4}}},
		{8, Mapping{Modules: 2, Stages: []int{2, 1, 1}}},
		{6, Mapping{Modules: 3, Stages: []int{2}}},
	}
	for _, tc := range mappings {
		res := run(t, tc.procs, cfg, tc.mp)
		if res.Stream.Sets != cfg.Sets {
			t.Errorf("%v: completed %d sets", tc.mp, res.Stream.Sets)
			continue
		}
		for set := 0; set < cfg.Sets; set++ {
			want, got := ref.Hists[set], res.Hists[set]
			if len(got) != len(want) {
				t.Errorf("%v set %d: missing histogram", tc.mp, set)
				continue
			}
			for b := range want {
				if got[b] != want[b] {
					t.Errorf("%v set %d bin %d: %d != %d", tc.mp, set, b, got[b], want[b])
					break
				}
			}
		}
	}
}

func TestPipelineImprovesThroughput(t *testing.T) {
	// With the serial per-set input on stage 1, a pipeline must beat the
	// data-parallel mapping on throughput for a long enough stream.
	cfg := Config{N: 32, Sets: 10, Bins: 16}
	dp := run(t, 6, cfg, DataParallel(6))
	pl := run(t, 6, cfg, Pipeline(2, 2, 2))
	if pl.Stream.Throughput <= dp.Stream.Throughput {
		t.Errorf("pipeline throughput %.2f <= data-parallel %.2f",
			pl.Stream.Throughput, dp.Stream.Throughput)
	}
	// And data-parallel must win on latency (Figure 5, leftmost mapping).
	if dp.Stream.Latency >= pl.Stream.Latency {
		t.Errorf("data-parallel latency %.4f >= pipeline %.4f",
			dp.Stream.Latency, pl.Stream.Latency)
	}
}

func TestReplicationScalesThroughput(t *testing.T) {
	cfg := Config{N: 32, Sets: 12, Bins: 16}
	one := run(t, 4, cfg, DataParallel(4))
	two := run(t, 8, cfg, Mapping{Modules: 2, Stages: []int{4}})
	if two.Stream.Throughput < one.Stream.Throughput*1.5 {
		t.Errorf("2 modules throughput %.2f not ~2x single %.2f",
			two.Stream.Throughput, one.Stream.Throughput)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := smallConfig()
	a := run(t, 6, cfg, Pipeline(2, 3, 1))
	b := run(t, 6, cfg, Pipeline(2, 3, 1))
	if a.Stream.Throughput != b.Stream.Throughput || a.Stream.Latency != b.Stream.Latency {
		t.Errorf("virtual-time results differ across runs: %+v vs %+v", a.Stream, b.Stream)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two N")
		}
	}()
	run(t, 2, Config{N: 12, Sets: 1, Bins: 4}, DataParallel(2))
}
