package ffthist

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// TestHeterogeneousModulesAgree: a mapping whose first module is one
// processor wider must still compute identical histograms — the wide module
// just finishes its share faster.
func TestHeterogeneousModulesAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 4, cfg, DataParallel(4))
	cases := []struct {
		procs int
		mp    Mapping
	}{
		{7, Mapping{Modules: 2, Stages: []int{3}, WideModules: 1, WideStages: []int{4}}},
		{9, Mapping{Modules: 2, Stages: []int{1, 2, 1}, WideModules: 1, WideStages: []int{2, 2, 1}}},
		{10, Mapping{Modules: 3, Stages: []int{3}, WideModules: 1, WideStages: []int{4}}},
	}
	for _, tc := range cases {
		res := run(t, tc.procs, cfg, tc.mp)
		if res.Stream.Sets != cfg.Sets {
			t.Errorf("%v: completed %d of %d sets", tc.mp, res.Stream.Sets, cfg.Sets)
			continue
		}
		for set := 0; set < cfg.Sets; set++ {
			want, got := ref.Hists[set], res.Hists[set]
			if len(got) != len(want) {
				t.Errorf("%v set %d: missing histogram", tc.mp, set)
				continue
			}
			for b := range want {
				if got[b] != want[b] {
					t.Errorf("%v set %d bin %d: %d != %d", tc.mp, set, b, got[b], want[b])
					break
				}
			}
		}
	}
}

// TestMeasuredModelTracksClosedForm: the simulation-measured tables must
// stay within a factor-2 band of the closed forms they replace — same
// constants, same kernels, so a larger drift means one of the two is wrong.
func TestMeasuredModelTracksClosedForm(t *testing.T) {
	cfg := Config{N: 16, Sets: 1, Bins: 8}
	const maxP = 8
	cost := sim.Paragon()
	closed := BuildModel(cost, cfg, maxP)
	mapping.ResetTableMemo()
	measured, src, err := MeasuredModel(cost, cfg, maxP, mapping.BuildOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if src != mapping.SourceComputed {
		t.Fatalf("first build came from %v", src)
	}
	if err := measured.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := range measured.StageT {
		for p := 1; p <= maxP; p++ {
			got, want := measured.StageT[s][p], closed.StageT[s][p]
			if got <= 0 {
				t.Fatalf("measured StageT[%d][%d] = %g", s, p, got)
			}
			if r := got / want; r < 0.5 || r > 2 {
				t.Errorf("stage %d p=%d: measured %.6f vs closed %.6f (ratio %.2f)", s, p, got, want, r)
			}
		}
	}
	for p := 1; p <= maxP; p++ {
		if r := measured.DPT[p] / closed.DPT[p]; r < 0.5 || r > 2 {
			t.Errorf("DPT p=%d: measured %.6f vs closed %.6f (ratio %.2f)", p, measured.DPT[p], closed.DPT[p], r)
		}
	}

	// The optimizer must be able to run on the measured model.
	if _, err := mapping.Optimize(measured, 0); err != nil {
		t.Fatal(err)
	}

	// Rebuilding hits the in-process memo.
	if _, src, err := MeasuredModel(cost, cfg, maxP, mapping.BuildOptions{}); err != nil || src != mapping.SourceMemory {
		t.Errorf("rebuild: src=%v err=%v, want memory hit", src, err)
	}
}

// TestMeasuredModelDiskCache: a fresh process (simulated by clearing the
// memo) must load the tables from CacheDir without simulating.
func TestMeasuredModelDiskCache(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 16, Sets: 1, Bins: 8}
	cost := sim.Paragon()
	mapping.ResetTableMemo()
	if _, src, err := MeasuredModel(cost, cfg, 4, mapping.BuildOptions{CacheDir: dir}); err != nil || src != mapping.SourceComputed {
		t.Fatalf("cold: src=%v err=%v", src, err)
	}
	mapping.ResetTableMemo()
	m, src, err := MeasuredModel(cost, cfg, 4, mapping.BuildOptions{CacheDir: dir})
	if err != nil || src != mapping.SourceDisk {
		t.Fatalf("warm: src=%v err=%v", src, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
