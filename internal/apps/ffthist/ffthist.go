// Package ffthist implements the FFT-Hist image processing kernel of
// Sections 3.2/3.3 and Figure 2: a stream of N-by-N complex arrays flows
// through column FFTs, row FFTs and histogramming. It supports the paper's
// three mapping families —
//
//   - pure data parallelism (Figure 2(a)): every stage on all processors,
//   - a 3-stage data-parallel pipeline (Figure 2(c)): subgroups G1/G2/G3
//     connected by parent-scope array assignments,
//   - replicated (modules) data parallelism (Figure 3): alternate data sets
//     on disjoint subgroups, each module itself data-parallel or pipelined,
//
// all over the same numerical kernels, so results are comparable across
// mappings (tests verify the histograms are identical).
//
// Orientation trick: stage 1 stores the array transposed (column j of the
// data set is local row j), so "column FFTs" are local row FFTs, and the
// corner turn to row orientation is the parent-scope Transpose2D — the
// communication the paper's A2 = A1 assignment performs.
package ffthist

import (
	"fmt"

	"fxpar/internal/apps/streams"
	"fxpar/internal/comm"
	"fxpar/internal/dist"
	"fxpar/internal/fft"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/stats"
)

// Config describes the workload.
type Config struct {
	// N is the data set edge: each data set is an N-by-N complex array.
	N int
	// Sets is the stream length.
	Sets int
	// Bins is the number of histogram buckets.
	Bins int
	// SketchStats meters the stream in sketch mode (stats.NewSketchStream):
	// O(in-flight) meter memory and sketch-derived latency quantiles instead
	// of per-set retention — the scale tier's setting for long streams on
	// large machines.
	SketchStats bool
}

// DefaultConfig returns the 256x256 workload of Table 1 with a short stream.
func DefaultConfig() Config { return Config{N: 256, Sets: 8, Bins: 64} }

// Mapping selects how processors are applied to the stream.
type Mapping struct {
	// Modules is the replication factor: the machine is divided into this
	// many modules processing alternate data sets (Section 3.3).
	Modules int
	// Stages gives processors per pipeline stage within one module
	// (Figure 2(c)); len 3 for the cffts/rffts/hist pipeline. A single
	// entry means the module runs all phases data-parallel on that many
	// processors (Figure 2(a)).
	Stages []int
	// WideModules of the Modules (the first ones) run with WideStages
	// instead of Stages — how the optimizer spends the P mod Modules
	// leftover processors. Zero for homogeneous mappings.
	WideModules int
	// WideStages gives processors per stage of each wide module; nil when
	// WideModules == 0.
	WideStages []int
}

// DataParallel returns the pure data-parallel mapping on p processors.
func DataParallel(p int) Mapping { return Mapping{Modules: 1, Stages: []int{p}} }

// Pipeline returns a single-module 3-stage pipeline mapping.
func Pipeline(pc, pr, ph int) Mapping { return Mapping{Modules: 1, Stages: []int{pc, pr, ph}} }

// ModuleStages returns the per-stage processor counts of module i (the
// first WideModules modules are the wide ones).
func (mp Mapping) ModuleStages(i int) []int {
	if i < mp.WideModules {
		return mp.WideStages
	}
	return mp.Stages
}

// ModuleSizes returns the total processors of each module, in module order.
func (mp Mapping) ModuleSizes() []int {
	sizes := make([]int, mp.Modules)
	for i := range sizes {
		for _, q := range mp.ModuleStages(i) {
			sizes[i] += q
		}
	}
	return sizes
}

// Procs returns the total processors the mapping uses.
func (mp Mapping) Procs() int {
	s := 0
	for _, sz := range mp.ModuleSizes() {
		s += sz
	}
	return s
}

// Validate checks the mapping against a machine size.
func (mp Mapping) Validate(total int) error {
	if mp.Modules < 1 {
		return fmt.Errorf("ffthist: Modules = %d", mp.Modules)
	}
	if mp.WideModules < 0 || (mp.WideModules > 0 && mp.WideModules >= mp.Modules) {
		return fmt.Errorf("ffthist: WideModules = %d of %d", mp.WideModules, mp.Modules)
	}
	checkStages := func(stages []int) error {
		if len(stages) != 1 && len(stages) != 3 {
			return fmt.Errorf("ffthist: need 1 or 3 stage sizes, got %v", stages)
		}
		for _, q := range stages {
			if q < 1 {
				return fmt.Errorf("ffthist: non-positive stage size in %v", stages)
			}
		}
		return nil
	}
	if err := checkStages(mp.Stages); err != nil {
		return err
	}
	if mp.WideModules > 0 {
		if err := checkStages(mp.WideStages); err != nil {
			return err
		}
		if len(mp.WideStages) != len(mp.Stages) {
			return fmt.Errorf("ffthist: wide stages %v mismatch narrow %v", mp.WideStages, mp.Stages)
		}
	} else if mp.WideStages != nil {
		return fmt.Errorf("ffthist: WideStages %v with zero WideModules", mp.WideStages)
	}
	if mp.Procs() > total {
		return fmt.Errorf("ffthist: mapping uses %d processors, machine has only %d", mp.Procs(), total)
	}
	return nil
}

func (mp Mapping) String() string {
	shape := func(stages []int) string {
		if len(stages) == 1 {
			return fmt.Sprintf("dp %d", stages[0])
		}
		return fmt.Sprintf("pipeline(%d,%d,%d)", stages[0], stages[1], stages[2])
	}
	if mp.WideModules > 0 {
		return fmt.Sprintf("replicated(%d x %s + %d x %s)",
			mp.WideModules, shape(mp.WideStages), mp.Modules-mp.WideModules, shape(mp.Stages))
	}
	if len(mp.Stages) == 1 {
		if mp.Modules == 1 {
			return fmt.Sprintf("data-parallel(%d)", mp.Stages[0])
		}
		return fmt.Sprintf("replicated(%d modules x dp %d)", mp.Modules, mp.Stages[0])
	}
	if mp.Modules == 1 {
		return fmt.Sprintf("pipeline(%d,%d,%d)", mp.Stages[0], mp.Stages[1], mp.Stages[2])
	}
	return fmt.Sprintf("replicated(%d modules x pipeline(%d,%d,%d))", mp.Modules, mp.Stages[0], mp.Stages[1], mp.Stages[2])
}

// Result of a run.
type Result struct {
	Stream stats.Result
	// Hists maps data set index to its histogram, for cross-mapping
	// verification.
	Hists map[int][]int64
	// Makespan is the maximum processor finish time.
	Makespan float64
	// Stats is the raw per-processor machine statistics of the run.
	Stats machine.RunStats
}

// sample generates element (i, j) of data set s deterministically.
func sample(s, i, j, n int) complex128 {
	h := uint32(s*2654435761) ^ uint32(i*40503+j*9973)
	h ^= h >> 13
	h *= 1103515245
	h ^= h >> 16
	re := float64(h%1024)/1024 - 0.5
	im := float64((h>>10)%1024)/1024 - 0.5
	return complex(re, im)
}

// histMax is the histogram range upper bound; FFT outputs of unit-scale
// inputs of size N are bounded well within N.
func histMax(n int) float64 { return float64(n) }

// Run executes the stream under the given mapping and returns metered
// results. The mapping must exactly cover the machine.
func Run(mach *machine.Machine, cfg Config, mp Mapping) Result {
	if err := mp.Validate(mach.N()); err != nil {
		panic(err)
	}
	if cfg.N <= 0 || cfg.N&(cfg.N-1) != 0 {
		panic(fmt.Sprintf("ffthist: N must be a positive power of two, got %d", cfg.N))
	}
	meter := stats.NewStream()
	if cfg.SketchStats {
		meter = stats.NewSketchStream()
	}
	res := Result{Hists: make(map[int][]int64)}
	var histMu chan struct{} = make(chan struct{}, 1)
	histMu <- struct{}{}
	record := func(set int, h []int64) {
		<-histMu
		res.Hists[set] = h
		histMu <- struct{}{}
	}

	runStats := fx.Run(mach, func(p *fx.Proc) {
		streams.RunModules(p, mp.ModuleSizes(), func(p *fx.Proc, module int) {
			runModule(p, cfg, mp.ModuleStages(module), module, mp.Modules, meter, record)
		})
	})
	res.Stream = meter.Summarize()
	res.Makespan = runStats.MakespanTime()
	res.Stats = runStats
	return res
}

// runModule processes data sets first, first+stride, ... < cfg.Sets on the
// current group.
func runModule(p *fx.Proc, cfg Config, stages []int, first, stride int,
	meter *stats.Stream, record func(int, []int64)) {
	if len(stages) == 1 {
		runDataParallel(p, cfg, first, stride, meter, record)
		return
	}
	runPipeline(p, cfg, stages, first, stride, meter, record)
}

// inputSet models reading one data set from the sensor stream: rank 0 of g
// performs the (serial) I/O, generates the transposed data, and scatters it
// over the stage-1 array.
func inputSet(p *fx.Proc, a *dist.Array[complex128], set, n int) {
	if !a.IsMember() {
		return
	}
	var full []complex128
	if a.Rank() == 0 {
		p.IO(n * n * 16)
		full = make([]complex128, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// Transposed orientation: local row i holds column i.
				full[i*n+j] = sample(set, j, i, n)
			}
		}
	}
	dist.ScatterGlobal(p.Proc, a, full)
}

// fftLocalRows runs forward FFTs over every local row and charges the cost.
func fftLocalRows(p *fx.Proc, a *dist.Array[complex128]) {
	if !a.IsMember() || len(a.Local()) == 0 {
		return
	}
	flops := fft.Rows(a.Local(), a.LocalShape()[1])
	p.Compute(flops)
}

// histSet computes the distributed histogram of a, reduces it to the
// group's rank 0, which writes it out and records completion.
func histSet(p *fx.Proc, a *dist.Array[complex128], cfg Config, set int,
	meter *stats.Stream, record func(int, []int64)) {
	if !a.IsMember() {
		return
	}
	counts, flops := fft.Histogram(a.Local(), cfg.Bins, histMax(cfg.N))
	p.Compute(flops)
	g := a.Layout().Group()
	total := comm.ReduceSlice(p.Proc, g, 0, counts, func(x, y int64) int64 { return x + y })
	if a.Rank() == 0 {
		p.IO(cfg.Bins * 8)
		meter.Complete(set, p.Now())
		record(set, total)
	}
}

// Data-parallel module: every phase on the whole current group (Figure 2(a),
// and one module of Figure 3).
func runDataParallel(p *fx.Proc, cfg Config, first, stride int,
	meter *stats.Stream, record func(int, []int64)) {
	g := p.Group()
	// aT holds the data set transposed (stage-1 orientation); b holds it in
	// natural row orientation after the corner turn.
	aT := dist.New[complex128](p.Proc, dist.RowBlock2D(g, cfg.N, cfg.N))
	b := dist.New[complex128](p.Proc, dist.RowBlock2D(g, cfg.N, cfg.N))
	for set := first; set < cfg.Sets; set += stride {
		if aT.Rank() == 0 {
			meter.Inject(set, p.Now())
		}
		inputSet(p, aT, set, cfg.N)
		fftLocalRows(p, aT)             // column FFTs (transposed orientation)
		dist.Transpose2D(p.Proc, b, aT) // corner turn
		fftLocalRows(p, b)              // row FFTs
		histSet(p, b, cfg, set, meter, record)
	}
}

// Pipeline module: Figure 2(c). Three subgroups connected by parent-scope
// assignments; the corner turn is the G1->G2 transfer.
func runPipeline(p *fx.Proc, cfg Config, stages []int, first, stride int,
	meter *stats.Stream, record func(int, []int64)) {
	g := p.Group()
	g1 := g.Subrange(0, stages[0])
	g2 := g.Subrange(stages[0], stages[0]+stages[1])
	g3 := g.Subrange(stages[0]+stages[1], stages[0]+stages[1]+stages[2])
	a1 := dist.New[complex128](p.Proc, dist.RowBlock2D(g1, cfg.N, cfg.N)) // transposed orientation
	a2 := dist.New[complex128](p.Proc, dist.RowBlock2D(g2, cfg.N, cfg.N))
	a3 := dist.New[complex128](p.Proc, dist.RowBlock2D(g3, cfg.N, cfg.N))
	fx.PipelineLoop(p, fx.PipelineSpec{
		Sets: cfg.Sets, First: first, Stride: stride,
		Stages: []fx.Stage{
			{Name: "G1", Procs: stages[0], Body: func(set int) {
				if a1.Rank() == 0 {
					meter.Inject(set, p.Now())
				}
				inputSet(p, a1, set, cfg.N)
				fftLocalRows(p, a1) // cffts
			}},
			{Name: "G2", Procs: stages[1], Body: func(set int) {
				fftLocalRows(p, a2) // rffts
			}},
			{Name: "G3", Procs: stages[2], Body: func(set int) {
				histSet(p, a3, cfg, set, meter, record) // hist
			}},
		},
		Transfer: []func(int){
			func(int) { dist.Transpose2D(p.Proc, a2, a1) }, // A2 = A1 (corner turn)
			func(int) { dist.Assign(p.Proc, a3, a2) },      // A3 = A2
		},
	})
}
