package ffthist_test

import (
	"math"
	"reflect"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func sketchRun(eng machine.Engine, sketch bool) ffthist.Result {
	m := machine.New(8, sim.Paragon())
	m.SetEngine(eng)
	cfg := ffthist.Config{N: 32, Sets: 12, Bins: 16, SketchStats: sketch}
	return ffthist.Run(m, cfg, ffthist.Pipeline(4, 2, 2))
}

// TestSketchStatsMatchesExact: the sketch-mode meter changes only how
// latency statistics are summarized — histograms, makespan, set counts, and
// throughput are identical, and the latency figures agree within one sketch
// bin.
func TestSketchStatsMatchesExact(t *testing.T) {
	exact := sketchRun(machine.Goroutine(), false)
	sk := sketchRun(machine.Goroutine(), true)
	if !reflect.DeepEqual(exact.Hists, sk.Hists) {
		t.Errorf("histograms differ between stat modes")
	}
	if exact.Makespan != sk.Makespan {
		t.Errorf("makespan %g vs %g", exact.Makespan, sk.Makespan)
	}
	if exact.Stream.Sets != sk.Stream.Sets || exact.Stream.Throughput != sk.Stream.Throughput ||
		exact.Stream.MaxLatency != sk.Stream.MaxLatency {
		t.Errorf("exact-fold stream fields differ:\n%+v\n%+v", exact.Stream, sk.Stream)
	}
	if !sk.Stream.Sketched || exact.Stream.Sketched {
		t.Errorf("Sketched flags: exact=%v sketch=%v", exact.Stream.Sketched, sk.Stream.Sketched)
	}
	rel := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(a, b) }
	if rel(exact.Stream.Latency, sk.Stream.Latency) > 0.07 ||
		rel(exact.Stream.LatencyP50, sk.Stream.LatencyP50) > 0.07 ||
		rel(exact.Stream.LatencyP99, sk.Stream.LatencyP99) > 0.07 {
		t.Errorf("latency stats more than one bin apart:\nexact  %+v\nsketch %+v", exact.Stream, sk.Stream)
	}
}

// TestSketchStatsDeterministicAcrossEngines: the sketch-mode Result is an
// exact virtual-time artifact — identical across engines despite Complete
// calls arriving in host-scheduling order.
func TestSketchStatsDeterministicAcrossEngines(t *testing.T) {
	g := sketchRun(machine.Goroutine(), true)
	c := sketchRun(machine.Coop(3), true)
	if g.Stream != c.Stream {
		t.Errorf("sketch-mode stream results differ across engines:\n%+v\n%+v", g.Stream, c.Stream)
	}
	if !reflect.DeepEqual(g.Hists, c.Hists) {
		t.Errorf("histograms differ across engines")
	}
}
