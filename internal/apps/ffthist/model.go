package ffthist

import (
	"math"

	"fxpar/internal/fft"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// BuildModel constructs the mapper's cost model for FFT-Hist on a machine of
// maxP processors with the given cost model. The tables are closed forms
// over the same constants the simulator charges (flop counts, alpha/beta,
// I/O rate), so the mapper's ranking agrees with simulation; the harnesses
// still simulate the chosen mapping to report measured numbers.
func BuildModel(cost sim.CostModel, cfg Config, maxP int) mapping.Model {
	n := cfg.N
	bytes := float64(n * n * 16)

	rowsPer := func(p int) float64 { return math.Ceil(float64(n) / float64(p)) }
	fftStage := func(p int) float64 { return rowsPer(p) * fft.Flops(n) / cost.FlopRate }

	input := func(p int) float64 {
		t := cost.IOTime(n * n * 16) // serial sensor read on the stage's rank 0
		if p > 1 {
			// Scatter from rank 0: p-1 injections, then the last message's
			// wire time.
			t += float64(p-1)*cost.SendOverhead + cost.Alpha + bytes/float64(p)*cost.Beta
		}
		return t
	}
	hist := func(p int) float64 {
		t := float64(n*n) / float64(p) * fft.HistFlops / cost.FlopRate
		if p > 1 {
			t += math.Ceil(math.Log2(float64(p))) * (cost.SendOverhead + cost.Alpha)
		}
		return t + cost.IOTime(cfg.Bins*8)
	}
	xferBytes := func(a, b int) float64 {
		// a senders each split their 1/a share into b messages.
		return float64(b)*cost.SendOverhead + cost.Alpha + bytes/float64(a*b)*cost.Beta
	}

	m := mapping.Model{
		P:          maxP,
		StageNames: []string{"cffts", "rffts", "hist"},
		StageT:     make([][]float64, 3),
		DPT:        make([]float64, maxP+1),
		Caps:       []int{n, n, n},
		Xfer: func(s, a, b int) float64 {
			return xferBytes(a, b)
		},
	}
	for s := range m.StageT {
		m.StageT[s] = make([]float64, maxP+1)
	}
	for p := 1; p <= maxP; p++ {
		m.StageT[0][p] = input(p) + fftStage(p)
		m.StageT[1][p] = fftStage(p)
		m.StageT[2][p] = hist(p)
		pd := p
		if pd > n {
			pd = n
		}
		m.DPT[p] = m.StageT[0][pd] + xferBytes(pd, pd) + m.StageT[1][pd] + m.StageT[2][pd]
	}
	return m
}

// ChoiceToMapping converts a mapper Choice into a runnable Mapping.
// Processors the choice leaves unused simply idle (as in the paper's
// data-parallel radar program, which could not use all 64 nodes).
func ChoiceToMapping(c mapping.Choice) Mapping {
	return Mapping{
		Modules: c.Modules, Stages: append([]int(nil), c.StageProcs...),
		WideModules: c.WideModules, WideStages: append([]int(nil), c.WideStageProcs...),
	}
}
