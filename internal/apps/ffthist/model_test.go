package ffthist

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func TestBuildModelShapes(t *testing.T) {
	cfg := DefaultConfig()
	m := BuildModel(sim.Paragon(), cfg, 64)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stage times must decrease (weakly) with processors until the cap.
	for s := range m.StageT {
		for p := 2; p <= 64; p++ {
			// Allow the fixed terms (I/O, scatter, reduce) to flatten the
			// curve, but never let compute time grow with processors by
			// more than the added coordination overhead.
			if m.StageT[s][p] > m.StageT[s][1] {
				t.Errorf("stage %d slower on %d procs (%.5f) than on 1 (%.5f)",
					s, p, m.StageT[s][p], m.StageT[s][1])
			}
		}
	}
	// DP time includes all stages: it must exceed each individual stage.
	for s := range m.StageT {
		if m.DPT[64] < m.StageT[s][64] {
			t.Errorf("DP time %.5f below stage %d time %.5f", m.DPT[64], s, m.StageT[s][64])
		}
	}
}

func TestModelOptimizeAndRun(t *testing.T) {
	cfg := Config{N: 32, Sets: 6, Bins: 16}
	m := BuildModel(sim.Paragon(), cfg, 12)
	// Latency-only: must be a valid runnable mapping.
	c, err := mapping.Optimize(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	mp := ChoiceToMapping(c)
	if err := mp.Validate(12); err != nil {
		t.Fatalf("invalid mapping %v: %v", mp, err)
	}
	// A tight goal must produce a different mapping with more predicted
	// throughput.
	c2, err := mapping.Optimize(m, 2.5/m.DPT[12])
	if err != nil {
		t.Fatal(err)
	}
	if c2.PredThroughput <= c.PredThroughput {
		t.Errorf("tight goal did not raise predicted throughput: %v vs %v", c2, c)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.N != 256 || cfg.Sets <= 0 || cfg.Bins <= 0 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}
