package radar

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/stats"
)

// stageBody returns the program of stage s of the radar pipeline run in
// isolation for one data set: the unit of both plain measurement and traced
// capture.
func stageBody(cfg Config, s int) func(*fx.Proc) {
	return func(px *fx.Proc) {
		g := px.Group()
		switch s {
		case 0: // input: serial sensor read + scatter of the gate-major matrix
			a0 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Gates, cfg.Rows))
			inputSet(px, a0, cfg, 0)
		case 1: // fft over the corner-turned rows
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			fftRows(px, a1)
		case 2: // scale
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			scaleLocal(px, a1, cfg.Scale)
		case 3: // threshold + reduce + detection write-out
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			// The report I/O is data-dependent (detections found); real data
			// sets yield one detection per row by construction, so pre-plant
			// one per local row for a representative output volume.
			if a1.IsMember() {
				rows := a1.LocalShape()[0]
				for r := 0; r < rows; r++ {
					a1.Local()[r*cfg.Gates] = complex(1, 0)
				}
			}
			thresholdAndReport(px, a1, cfg, 0, stats.NewStream(), func(int, int) {})
		default:
			panic(fmt.Sprintf("radar: no stage %d", s))
		}
	}
}

// stageProcs clamps a requested processor count to stage s's cap.
func stageProcs(cfg Config, s, p int) int {
	caps := []int{cfg.Gates, cfg.Rows, cfg.Rows, cfg.Rows}
	if p > caps[s] {
		return caps[s]
	}
	return p
}

// measureStage simulates stage s of the radar program in isolation on p
// processors for one data set and returns the virtual makespan.
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	mach := machine.New(stageProcs(cfg, s, p), cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, stageBody(cfg, s))
	return st.MakespanTime()
}

// captureStage runs the same isolated stage simulation under a skeleton sink
// and returns the folded communication skeleton alongside the live makespan.
func captureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	mach := machine.New(stageProcs(cfg, s, p), cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	st := fx.Run(mach, stageBody(cfg, s))
	sk, err := sink.Skeleton()
	return sk, st.MakespanTime(), err
}

// measureDP simulates the whole radar program data-parallel on p processors
// for a single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.Rows {
		p = cfg.Rows // the data-parallel program cannot use more than Rows
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// captureDP is the traced variant of measureDP; its live value is a stream
// latency, so ReplayOptions.Eval keeps these cells on the live path.
func captureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) (*skeleton.Skeleton, float64, error) {
	if p > cfg.Rows {
		p = cfg.Rows
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	sink := skeleton.NewSink(cost, "")
	mach.SetTracer(sink)
	res := Run(mach, one, DataParallel(p))
	sk, err := sink.Skeleton()
	return sk, res.Stream.Latency, err
}

// replayCells rewrites the measurement closures replay-first; see
// ffthist.replayCells for the pattern.
func replayCells(r *mapping.ReplayOptions, cost sim.CostModel, cfg Config, eng machine.Engine,
	stage func(s, p int) float64, dp func(p int) float64) (func(s, p int) float64, func(p int) float64) {
	params := fmt.Sprintf("Gates=%d,Rows=%d,Scale=%g,Thr=%g", cfg.Gates, cfg.Rows, cfg.Scale, cfg.Threshold)
	rStage := func(s, p int) float64 {
		key := skeleton.StoreKey{App: "radar.stage", Params: fmt.Sprintf("%s,s=%d", params, s),
			Mapping: "isolated", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureStage(base, cfg, s, p, eng)
		}); ok {
			return v
		}
		return stage(s, p)
	}
	rDP := func(p int) float64 {
		key := skeleton.StoreKey{App: "radar.dp", Params: params, Mapping: "dp", P: p}
		if v, ok := r.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			return captureDP(base, cfg, p, eng)
		}); ok {
			return v
		}
		return dp(p)
	}
	return rStage, rDP
}

// Spec returns the content-keyed table spec MeasuredModel memoizes its cost
// tables under; exported for the serving layer's request dedupe (see
// ffthist.Spec).
func Spec(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) mapping.TableSpec {
	return mapping.TableSpec{
		App:    "radar",
		Params: fmt.Sprintf("Gates=%d,Rows=%d,Scale=%g,Thr=%g", cfg.Gates, cfg.Rows, cfg.Scale, cfg.Threshold) + opt.Replay.SpecSuffix(cost),
		P:      maxP,
		Stages: BuildModel(cost, cfg, maxP).StageNames,
		Cost:   cost,
	}
}

// MeasuredModel builds the radar cost model from isolated stage simulations
// memoized by content key; see ffthist.MeasuredModel for the contract
// (including the replay-first path under opt.Replay).
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP)
	spec := Spec(cost, cfg, maxP, opt)
	stage := func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) }
	dp := func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) }
	if opt.Replay != nil && opt.Replay.Store != nil {
		stage, dp = replayCells(opt.Replay, cost, cfg, opt.Engine, stage, dp)
	}
	tab, src, err := mapping.BuildTables(spec, opt, stage, dp)
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
