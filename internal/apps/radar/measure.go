package radar

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/fx"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/stats"
)

// measureStage simulates stage s of the radar program in isolation on p
// processors for one data set and returns the virtual makespan.
func measureStage(cost sim.CostModel, cfg Config, s, p int, eng machine.Engine) float64 {
	caps := []int{cfg.Gates, cfg.Rows, cfg.Rows, cfg.Rows}
	if p > caps[s] {
		p = caps[s]
	}
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	st := fx.Run(mach, func(px *fx.Proc) {
		g := px.Group()
		switch s {
		case 0: // input: serial sensor read + scatter of the gate-major matrix
			a0 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Gates, cfg.Rows))
			inputSet(px, a0, cfg, 0)
		case 1: // fft over the corner-turned rows
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			fftRows(px, a1)
		case 2: // scale
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			scaleLocal(px, a1, cfg.Scale)
		case 3: // threshold + reduce + detection write-out
			a1 := dist.New[complex128](px.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
			// The report I/O is data-dependent (detections found); real data
			// sets yield one detection per row by construction, so pre-plant
			// one per local row for a representative output volume.
			if a1.IsMember() {
				rows := a1.LocalShape()[0]
				for r := 0; r < rows; r++ {
					a1.Local()[r*cfg.Gates] = complex(1, 0)
				}
			}
			thresholdAndReport(px, a1, cfg, 0, stats.NewStream(), func(int, int) {})
		default:
			panic(fmt.Sprintf("radar: no stage %d", s))
		}
	})
	return st.MakespanTime()
}

// measureDP simulates the whole radar program data-parallel on p processors
// for a single data set and returns the per-set latency.
func measureDP(cost sim.CostModel, cfg Config, p int, eng machine.Engine) float64 {
	if p > cfg.Rows {
		p = cfg.Rows // the data-parallel program cannot use more than Rows
	}
	one := cfg
	one.Sets = 1
	mach := machine.New(p, cost)
	mach.SetEngine(eng)
	res := Run(mach, one, DataParallel(p))
	return res.Stream.Latency
}

// MeasuredModel builds the radar cost model from isolated stage simulations
// memoized by content key; see ffthist.MeasuredModel for the contract.
func MeasuredModel(cost sim.CostModel, cfg Config, maxP int, opt mapping.BuildOptions) (mapping.Model, mapping.TableSource, error) {
	closed := BuildModel(cost, cfg, maxP)
	spec := mapping.TableSpec{
		App:    "radar",
		Params: fmt.Sprintf("Gates=%d,Rows=%d,Scale=%g,Thr=%g", cfg.Gates, cfg.Rows, cfg.Scale, cfg.Threshold),
		P:      maxP,
		Stages: closed.StageNames,
		Cost:   cost,
	}
	tab, src, err := mapping.BuildTables(spec, opt,
		func(s, p int) float64 { return measureStage(cost, cfg, s, p, opt.Engine) },
		func(p int) float64 { return measureDP(cost, cfg, p, opt.Engine) })
	if err != nil {
		return mapping.Model{}, src, err
	}
	return tab.Model(spec, maxP, closed.Caps, closed.Xfer), src, nil
}
