package radar

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// TestHeterogeneousModulesAgree: modules of different widths must report
// the same detections per data set as the reference.
func TestHeterogeneousModulesAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 1, cfg, DataParallel(1))
	mp := Mapping{Modules: 2, Stages: []int{2}, WideModules: 1, WideStages: []int{3}}
	res := run(t, 5, cfg, mp)
	if res.Stream.Sets != cfg.Sets {
		t.Fatalf("%v: completed %d of %d sets", mp, res.Stream.Sets, cfg.Sets)
	}
	for set := 0; set < cfg.Sets; set++ {
		if res.Kept[set] != ref.Kept[set] {
			t.Errorf("set %d: kept %d, reference %d", set, res.Kept[set], ref.Kept[set])
		}
	}
}

// TestMeasuredModelFeasible: the measured radar model validates, stays
// positive, respects the row cap structure, and supports optimization.
func TestMeasuredModelFeasible(t *testing.T) {
	cfg := smallConfig()
	cost := sim.Paragon()
	const maxP = 12
	mapping.ResetTableMemo()
	m, _, err := MeasuredModel(cost, cfg, maxP, mapping.BuildOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	closed := BuildModel(cost, cfg, maxP)
	for s := range m.StageT {
		for p := 1; p <= maxP; p++ {
			if m.StageT[s][p] <= 0 {
				t.Fatalf("StageT[%d][%d] = %g", s, p, m.StageT[s][p])
			}
			if r := m.StageT[s][p] / closed.StageT[s][p]; r < 0.4 || r > 2.5 {
				t.Errorf("stage %d p=%d: measured %.6f vs closed %.6f (ratio %.2f)",
					s, p, m.StageT[s][p], closed.StageT[s][p], r)
			}
		}
		// Beyond the row cap the tables must flatten, like the closed form.
		if m.StageT[s][maxP] > m.StageT[s][cfg.Rows]*1.0001 && s > 0 {
			t.Errorf("stage %d grows past the row cap: %g vs %g", s, m.StageT[s][maxP], m.StageT[s][cfg.Rows])
		}
	}
	if _, err := mapping.Optimize(m, 0); err != nil {
		t.Fatal(err)
	}
}
