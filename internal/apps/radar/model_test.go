package radar

import (
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func TestBuildModelCaps(t *testing.T) {
	cfg := DefaultConfig()
	m := BuildModel(sim.Paragon(), cfg, 64)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The FFT stage time must stop improving past the row cap: more
	// processors than rows cannot speed up row-parallel work.
	if m.StageT[1][cfg.Rows] != m.StageT[1][64] {
		t.Errorf("fft stage keeps scaling past the row cap: %g vs %g",
			m.StageT[1][cfg.Rows], m.StageT[1][64])
	}
	if m.Caps[1] != cfg.Rows {
		t.Errorf("fft cap = %d, want %d", m.Caps[1], cfg.Rows)
	}
	// The input stage is dominated by serial I/O: nearly flat in p.
	if m.StageT[0][64] < m.StageT[0][1]*0.5 {
		t.Errorf("input stage scaled too well: %g -> %g", m.StageT[0][1], m.StageT[0][64])
	}
}

func TestModelPrefersReplicationWithIdleProcs(t *testing.T) {
	// With 64 processors but only 40 usable by data parallelism, a
	// throughput goal above the DP rate must yield a multi-module (or
	// pipeline) choice using more than 40 processors total.
	cfg := DefaultConfig()
	m := BuildModel(sim.Paragon(), cfg, 64)
	dpThr := 1 / m.DPT[64]
	c, err := mapping.Optimize(m, 2*dpThr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules == 1 && len(c.StageProcs) == 1 {
		t.Errorf("goal 2x DP chose plain data parallelism: %v", c)
	}
	if c.PredThroughput < 2*dpThr {
		t.Errorf("choice %v misses the goal", c)
	}
}
