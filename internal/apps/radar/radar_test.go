package radar

import (
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func smallConfig() Config {
	return Config{Gates: 32, Rows: 8, Sets: 6, Scale: 1.0 / 32, Threshold: 0.05}
}

func run(t *testing.T, procs int, cfg Config, mp Mapping) Result {
	t.Helper()
	m := machine.New(procs, sim.Paragon())
	return Run(m, cfg, mp)
}

func TestValidate(t *testing.T) {
	cfg := smallConfig()
	cases := []struct {
		mp    Mapping
		procs int
		ok    bool
	}{
		{DataParallel(4), 4, true},
		{DataParallel(8), 16, true}, // idle procs allowed
		{Mapping{Modules: 2, Stages: []int{1, 2, 1, 1}}, 10, true},
		{Mapping{Modules: 1, Stages: []int{1, 9, 1, 1}}, 16, false}, // fft stage over row cap
		{Mapping{Modules: 1, Stages: []int{1, 2}}, 4, false},        // wrong stage count
		{DataParallel(9), 16, false},                                // dp over row cap
	}
	for _, tc := range cases {
		err := tc.mp.Validate(tc.procs, cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%v on %d: err=%v want ok=%v", tc.mp, tc.procs, err, tc.ok)
		}
	}
}

func TestDataParallelCompletes(t *testing.T) {
	cfg := smallConfig()
	res := run(t, 4, cfg, DataParallel(4))
	if res.Stream.Sets != cfg.Sets {
		t.Fatalf("completed %d sets", res.Stream.Sets)
	}
	for set, kept := range res.Kept {
		if kept <= 0 || kept >= cfg.Gates*cfg.Rows {
			t.Errorf("set %d kept %d detections (degenerate)", set, kept)
		}
	}
}

func TestMappingsAgree(t *testing.T) {
	cfg := smallConfig()
	ref := run(t, 1, cfg, DataParallel(1))
	for _, tc := range []struct {
		procs int
		mp    Mapping
	}{
		{4, DataParallel(4)},
		{6, Mapping{Modules: 1, Stages: []int{1, 3, 1, 1}}},
		{8, Mapping{Modules: 2, Stages: []int{4}}},
		{12, Mapping{Modules: 2, Stages: []int{1, 3, 1, 1}}},
	} {
		res := run(t, tc.procs, cfg, tc.mp)
		if res.Stream.Sets != cfg.Sets {
			t.Errorf("%v completed %d sets", tc.mp, res.Stream.Sets)
			continue
		}
		for set := 0; set < cfg.Sets; set++ {
			if res.Kept[set] != ref.Kept[set] {
				t.Errorf("%v set %d: kept %d != %d", tc.mp, set, res.Kept[set], ref.Kept[set])
			}
		}
	}
}

func TestIdleProcessorsCapDataParallel(t *testing.T) {
	// With more processors than rows, the data-parallel program must leave
	// the excess idle: a 16-proc DP run is no faster than an 8-proc one.
	cfg := smallConfig()
	eight := run(t, 8, cfg, DataParallel(8))
	sixteen := run(t, 16, cfg, DataParallel(8)) // 8 idle
	ratio := sixteen.Stream.Throughput / eight.Stream.Throughput
	if ratio > 1.05 || ratio < 0.95 {
		t.Errorf("idle processors changed throughput: %.3f vs %.3f", sixteen.Stream.Throughput, eight.Stream.Throughput)
	}
}

func TestReplicationUsesIdleProcessors(t *testing.T) {
	// The paper's headline radar result: task parallelism exploits the
	// processors data parallelism cannot, raising throughput at ~equal
	// latency.
	cfg := Config{Gates: 64, Rows: 8, Sets: 12, Scale: 1.0 / 64, Threshold: 0.05}
	dp := run(t, 16, cfg, DataParallel(8))
	rep := run(t, 16, cfg, Mapping{Modules: 2, Stages: []int{8}})
	if rep.Stream.Throughput < dp.Stream.Throughput*1.5 {
		t.Errorf("replication throughput %.2f not ~2x data-parallel %.2f",
			rep.Stream.Throughput, dp.Stream.Throughput)
	}
	if rep.Stream.Latency > dp.Stream.Latency*1.3 {
		t.Errorf("replication latency %.4f much worse than DP %.4f",
			rep.Stream.Latency, dp.Stream.Latency)
	}
}

func TestModelOptimizeFeasible(t *testing.T) {
	cfg := smallConfig()
	model := BuildModel(sim.Paragon(), cfg, 16)
	c, err := mapping.Optimize(model, 0)
	if err != nil {
		t.Fatal(err)
	}
	mp := ChoiceToMapping(c)
	if err := mp.Validate(16, cfg); err != nil {
		t.Fatalf("mapper produced invalid mapping %v: %v", mp, err)
	}
	res := run(t, 16, cfg, mp)
	if res.Stream.Sets != cfg.Sets {
		t.Errorf("mapped run completed %d sets", res.Stream.Sets)
	}
}

func TestBadGatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(t, 2, Config{Gates: 33, Rows: 4, Sets: 1}, DataParallel(2))
}
