package radar

import (
	"math"

	"fxpar/internal/fft"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// BuildModel constructs the mapper's cost model for the radar program.
// The compute stages are capped at cfg.Rows processors — the parallelism
// limit "because of the structure of parallelization" that kept the paper's
// data-parallel radar from using all 64 nodes.
func BuildModel(cost sim.CostModel, cfg Config, maxP int) mapping.Model {
	elems := cfg.Gates * cfg.Rows
	bytes := float64(elems * 16)

	input := func(p int) float64 {
		t := cost.IOTime(elems * 16)
		if p > 1 {
			t += float64(p-1)*cost.SendOverhead + cost.Alpha + bytes/float64(p)*cost.Beta
		}
		return t
	}
	fftT := func(p int) float64 {
		return math.Ceil(float64(cfg.Rows)/float64(p)) * fft.Flops(cfg.Gates) / cost.FlopRate
	}
	scaleT := func(p int) float64 {
		return float64(elems) / float64(p) * fft.ScaleFlops / cost.FlopRate
	}
	thrT := func(p int) float64 {
		t := float64(elems) / float64(p) * fft.ThresholdFlops / cost.FlopRate
		if p > 1 {
			t += math.Ceil(math.Log2(float64(p))) * (cost.SendOverhead + cost.Alpha)
		}
		return t + cost.IOTime(64)
	}
	xfer := func(a, b int) float64 {
		return float64(b)*cost.SendOverhead + cost.Alpha + bytes/float64(a*b)*cost.Beta
	}

	m := mapping.Model{
		P:          maxP,
		StageNames: []string{"input", "fft", "scale", "threshold"},
		StageT:     make([][]float64, 4),
		DPT:        make([]float64, maxP+1),
		Caps:       []int{cfg.Gates, cfg.Rows, cfg.Rows, cfg.Rows},
		Xfer:       func(s, a, b int) float64 { return xfer(a, b) },
	}
	for s := range m.StageT {
		m.StageT[s] = make([]float64, maxP+1)
	}
	for p := 1; p <= maxP; p++ {
		m.StageT[0][p] = input(p)
		m.StageT[1][p] = fftT(min(p, cfg.Rows))
		m.StageT[2][p] = scaleT(min(p, cfg.Rows))
		m.StageT[3][p] = thrT(min(p, cfg.Rows))
		pd := min(p, cfg.Rows)
		m.DPT[p] = input(pd) + xfer(pd, pd) + fftT(pd) + xfer(pd, pd) + scaleT(pd) + thrT(pd)
	}
	return m
}

// ChoiceToMapping converts a mapper Choice into a runnable Mapping.
func ChoiceToMapping(c mapping.Choice) Mapping {
	return Mapping{
		Modules: c.Modules, Stages: append([]int(nil), c.StageProcs...),
		WideModules: c.WideModules, WideStages: append([]int(nil), c.WideStageProcs...),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
