// Package radar implements the narrowband tracking radar benchmark of
// Section 5.1 (developed at MIT Lincoln Labs): each data set is processed by
// a corner turn to form the transposed matrix, independent row FFTs,
// scaling, and thresholding.
//
// The data-parallel version of this program cannot use more processors than
// the matrix has rows (channels x beams = 40 for the paper's 512x10x4 data
// set) — "the structure of parallelization" — which is why the paper's task
// version improved throughput 3x with no latency cost: pipelining and
// replication put the idle processors to work. The same structure is
// reproduced here: stages are capped at Rows processors.
package radar

import (
	"fmt"
	"math"

	"fxpar/internal/apps/streams"
	"fxpar/internal/comm"
	"fxpar/internal/dist"
	"fxpar/internal/fft"
	"fxpar/internal/fx"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/stats"
)

// Config describes the radar workload. A data set is a Gates-by-Rows
// complex matrix as it arrives from the sensor (gate-major), corner-turned
// into Rows-by-Gates for row FFTs. The paper's data set is 512x10x4:
// Gates=512, Rows=10 channels x 4 beams=40.
type Config struct {
	Gates     int // FFT length; power of two
	Rows      int // channels x beams
	Sets      int
	Scale     float64 // scaling factor applied after the FFTs
	Threshold float64 // detection threshold
}

// DefaultConfig is the paper's 512x10x4 data set.
func DefaultConfig() Config {
	return Config{Gates: 512, Rows: 40, Sets: 8, Scale: 1.0 / 512, Threshold: 0.05}
}

// Mapping mirrors ffthist.Mapping: Modules replicas, each either
// data-parallel (one stage size) or a 4-stage pipeline
// (input/corner-turn, FFT, scale, threshold). The first WideModules
// modules run with WideStages instead of Stages — the optimizer's way of
// spending the P mod Modules leftover processors.
type Mapping struct {
	Modules     int
	Stages      []int
	WideModules int
	WideStages  []int
}

// DataParallel returns the data-parallel mapping on p processors.
func DataParallel(p int) Mapping { return Mapping{Modules: 1, Stages: []int{p}} }

// ModuleStages returns the per-stage processor counts of module i.
func (mp Mapping) ModuleStages(i int) []int {
	if i < mp.WideModules {
		return mp.WideStages
	}
	return mp.Stages
}

// ModuleSizes returns the total processors of each module, in module order.
func (mp Mapping) ModuleSizes() []int {
	sizes := make([]int, mp.Modules)
	for i := range sizes {
		for _, q := range mp.ModuleStages(i) {
			sizes[i] += q
		}
	}
	return sizes
}

// Procs returns the processors the mapping occupies.
func (mp Mapping) Procs() int {
	s := 0
	for _, sz := range mp.ModuleSizes() {
		s += sz
	}
	return s
}

// Validate checks the mapping against the machine and workload: pipelines
// have 4 stages, and compute stages cannot exceed the row cap.
func (mp Mapping) Validate(total int, cfg Config) error {
	if mp.Modules < 1 {
		return fmt.Errorf("radar: Modules = %d", mp.Modules)
	}
	if mp.WideModules < 0 || (mp.WideModules > 0 && mp.WideModules >= mp.Modules) {
		return fmt.Errorf("radar: WideModules = %d of %d", mp.WideModules, mp.Modules)
	}
	checkStages := func(stages []int) error {
		if len(stages) != 1 && len(stages) != 4 {
			return fmt.Errorf("radar: need 1 or 4 stage sizes, got %v", stages)
		}
		for i, q := range stages {
			if q < 1 {
				return fmt.Errorf("radar: non-positive stage size in %v", stages)
			}
			if (len(stages) == 1 || i > 0) && q > cfg.Rows {
				return fmt.Errorf("radar: stage %d uses %d processors but only %d rows exist", i, q, cfg.Rows)
			}
		}
		return nil
	}
	if err := checkStages(mp.Stages); err != nil {
		return err
	}
	if mp.WideModules > 0 {
		if err := checkStages(mp.WideStages); err != nil {
			return err
		}
		if len(mp.WideStages) != len(mp.Stages) {
			return fmt.Errorf("radar: wide stages %v mismatch narrow %v", mp.WideStages, mp.Stages)
		}
	} else if mp.WideStages != nil {
		return fmt.Errorf("radar: WideStages %v with zero WideModules", mp.WideStages)
	}
	if mp.Procs() > total {
		return fmt.Errorf("radar: mapping uses %d processors, machine has %d", mp.Procs(), total)
	}
	return nil
}

func (mp Mapping) String() string {
	shape := func(stages []int) string {
		if len(stages) == 1 {
			return fmt.Sprintf("dp %d", stages[0])
		}
		return fmt.Sprintf("pipeline%v", stages)
	}
	if mp.WideModules > 0 {
		return fmt.Sprintf("replicated(%d x %s + %d x %s)",
			mp.WideModules, shape(mp.WideStages), mp.Modules-mp.WideModules, shape(mp.Stages))
	}
	if len(mp.Stages) == 1 {
		if mp.Modules == 1 {
			return fmt.Sprintf("data-parallel(%d)", mp.Stages[0])
		}
		return fmt.Sprintf("replicated(%d x dp %d)", mp.Modules, mp.Stages[0])
	}
	return fmt.Sprintf("replicated(%d x pipeline%v)", mp.Modules, mp.Stages)
}

// Result of a run. Kept maps data set index to the number of
// above-threshold detections, for cross-mapping verification.
type Result struct {
	Stream   stats.Result
	Kept     map[int]int
	Makespan float64
}

// sample generates element (gate, row) of data set s: background noise plus
// one unit-amplitude tone per row. The row FFT concentrates the tone into a
// single bin of magnitude ~Gates, so after 1/Gates scaling each row yields
// exactly one above-threshold detection over the noise floor.
func sample(s, gate, row, gates int) complex128 {
	h := uint32(s*2246822519) ^ uint32(gate*2654435761+row*40503)
	h ^= h >> 15
	h *= 2246822519
	h ^= h >> 13
	re := (float64(h%2048)/2048 - 0.5) * 0.2
	im := (float64((h>>11)%2048)/2048 - 0.5) * 0.2
	k0 := (uint32(s*31+row*17) * 2654435761 >> 16) % uint32(gates) // per-row target frequency
	phase := 2 * math.Pi * float64(k0) * float64(gate) / float64(gates)
	return complex(re+math.Cos(phase), im+math.Sin(phase))
}

// Run executes the stream under the mapping.
func Run(mach *machine.Machine, cfg Config, mp Mapping) Result {
	if err := mp.Validate(mach.N(), cfg); err != nil {
		panic(err)
	}
	if cfg.Gates&(cfg.Gates-1) != 0 || cfg.Gates <= 0 {
		panic(fmt.Sprintf("radar: Gates must be a power of two, got %d", cfg.Gates))
	}
	meter := stats.NewStream()
	res := Result{Kept: make(map[int]int)}
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(set, kept int) {
		<-mu
		res.Kept[set] = kept
		mu <- struct{}{}
	}
	runStats := fx.Run(mach, func(p *fx.Proc) {
		streams.RunModules(p, mp.ModuleSizes(), func(p *fx.Proc, module int) {
			runModule(p, cfg, mp.ModuleStages(module), module, mp.Modules, meter, record)
		})
	})
	res.Stream = meter.Summarize()
	res.Makespan = runStats.MakespanTime()
	return res
}

func runModule(p *fx.Proc, cfg Config, stages []int, first, stride int,
	meter *stats.Stream, record func(int, int)) {
	if len(stages) == 1 {
		runDataParallel(p, cfg, stages[0], first, stride, meter, record)
		return
	}
	runPipeline(p, cfg, stages, first, stride, meter, record)
}

// inputSet reads one gate-major data set on rank 0 of a's group and
// scatters it.
func inputSet(p *fx.Proc, a *dist.Array[complex128], cfg Config, set int) {
	if !a.IsMember() {
		return
	}
	var full []complex128
	if a.Rank() == 0 {
		p.IO(cfg.Gates * cfg.Rows * 16)
		full = make([]complex128, cfg.Gates*cfg.Rows)
		for g := 0; g < cfg.Gates; g++ {
			for r := 0; r < cfg.Rows; r++ {
				full[g*cfg.Rows+r] = sample(set, g, r, cfg.Gates)
			}
		}
	}
	dist.ScatterGlobal(p.Proc, a, full)
}

func fftRows(p *fx.Proc, a *dist.Array[complex128]) {
	if !a.IsMember() || len(a.Local()) == 0 {
		return
	}
	p.Compute(fft.Rows(a.Local(), a.LocalShape()[1]))
}

func scaleLocal(p *fx.Proc, a *dist.Array[complex128], s float64) {
	if !a.IsMember() {
		return
	}
	p.Compute(fft.Scale(a.Local(), s))
}

// thresholdAndReport thresholds locally, reduces the detection count to
// rank 0, which writes the detections out and completes the set.
func thresholdAndReport(p *fx.Proc, a *dist.Array[complex128], cfg Config,
	set int, meter *stats.Stream, record func(int, int)) {
	if !a.IsMember() {
		return
	}
	kept, flops := fft.Threshold(a.Local(), cfg.Threshold)
	p.Compute(flops)
	g := a.Layout().Group()
	total := comm.Reduce(p.Proc, g, 0, kept, func(x, y int) int { return x + y })
	if a.Rank() == 0 {
		p.IO(total * 8)
		meter.Complete(set, p.Now())
		record(set, total)
	}
}

func runDataParallel(p *fx.Proc, cfg Config, procs, first, stride int,
	meter *stats.Stream, record func(int, int)) {
	// The data-parallel program cannot exploit more processors than rows.
	useful := procs
	if useful > cfg.Rows {
		useful = cfg.Rows
	}
	body := func() {
		g := p.Group()
		a0 := dist.New[complex128](p.Proc, dist.RowBlock2D(g, cfg.Gates, cfg.Rows))
		a1 := dist.New[complex128](p.Proc, dist.RowBlock2D(g, cfg.Rows, cfg.Gates))
		for set := first; set < cfg.Sets; set += stride {
			if a0.Rank() == 0 {
				meter.Inject(set, p.Now())
			}
			inputSet(p, a0, cfg, set)
			dist.Transpose2D(p.Proc, a1, a0) // corner turn
			fftRows(p, a1)
			scaleLocal(p, a1, cfg.Scale)
			thresholdAndReport(p, a1, cfg, set, meter, record)
		}
	}
	if useful < p.NumberOfProcessors() {
		p.OnProcs(0, useful, body)
	} else {
		body()
	}
}

func runPipeline(p *fx.Proc, cfg Config, stages []int, first, stride int,
	meter *stats.Stream, record func(int, int)) {
	g := p.Group()
	lo := 0
	subs := make([]*group.Group, 4)
	for i, q := range stages {
		subs[i] = g.Subrange(lo, lo+q)
		lo += q
	}
	a0 := dist.New[complex128](p.Proc, dist.RowBlock2D(subs[0], cfg.Gates, cfg.Rows))
	a1 := dist.New[complex128](p.Proc, dist.RowBlock2D(subs[1], cfg.Rows, cfg.Gates))
	a2 := dist.New[complex128](p.Proc, dist.RowBlock2D(subs[2], cfg.Rows, cfg.Gates))
	a3 := dist.New[complex128](p.Proc, dist.RowBlock2D(subs[3], cfg.Rows, cfg.Gates))
	fx.PipelineLoop(p, fx.PipelineSpec{
		Sets: cfg.Sets, First: first, Stride: stride,
		Stages: []fx.Stage{
			{Name: "Gin", Procs: stages[0], Body: func(set int) {
				if a0.Rank() == 0 {
					meter.Inject(set, p.Now())
				}
				inputSet(p, a0, cfg, set)
			}},
			{Name: "Gfft", Procs: stages[1], Body: func(set int) { fftRows(p, a1) }},
			{Name: "Gscale", Procs: stages[2], Body: func(set int) { scaleLocal(p, a2, cfg.Scale) }},
			{Name: "Gthr", Procs: stages[3], Body: func(set int) {
				thresholdAndReport(p, a3, cfg, set, meter, record)
			}},
		},
		Transfer: []func(int){
			func(int) { dist.Transpose2D(p.Proc, a1, a0) }, // corner turn
			func(int) { dist.Assign(p.Proc, a2, a1) },
			func(int) { dist.Assign(p.Proc, a3, a2) },
		},
	})
}
