package metrics

// The quantile sketch lives in the dependency-free internal/sketch package so
// that low-level consumers (internal/stats) can use it without importing
// metrics — which imports trace, and would otherwise close an import cycle
// through trace's in-package tests. These aliases keep metrics.Sketch the
// canonical name for report-level code and for the scale-tier API surface.

import (
	"strings"

	"fxpar/internal/sketch"
)

// Sketch is the mergeable deterministic quantile sketch; see the sketch
// package for binning and merge-invariance details.
type Sketch = sketch.Sketch

// SketchBins is the sketch's fixed bin count.
const SketchBins = sketch.SketchBins

// ExactQuantile computes the reference order statistic the sketch
// approximates (1-based ceil(q*n) rank over the raw values).
func ExactQuantile(values []float64, q float64) float64 {
	return sketch.ExactQuantile(values, q)
}

// SameBin reports whether two values land in the same sketch bin — the
// "within one bin" acceptance predicate for sketch-vs-exact comparisons.
func SameBin(a, b float64) bool { return sketch.SameBin(a, b) }

// WriteSketchText renders a labeled one-line digest of a sketch.
func WriteSketchText(w *strings.Builder, name string, s *Sketch) {
	sketch.WriteSketchText(w, name, s)
}
