package metrics

// Streaming aggregation: the same per-(group, operation) registry the
// post-hoc FromTrace pipeline produces, maintained online as the run emits
// events, in O(procs + groups) memory — no event slice is ever retained.
//
// Byte-identical snapshots are guaranteed by construction, not by luck: all
// accumulation is per-processor (each processor's events arrive in program
// order, whether live from its goroutine or post-hoc from a sorted slice),
// and a snapshot merges the per-processor partial registries in ascending
// processor order. FromTrace is implemented on exactly this code — it feeds
// the sorted event slice through the same per-processor fold and the same
// merge — so the online and post-hoc paths cannot drift apart, down to
// float-summation associativity.

import (
	"sync"
	"sync/atomic"

	"fxpar/internal/machine"
	"fxpar/internal/trace"
)

// frame is one open span on a processor's stack: where it started and the
// pre-resolved registry cell its closure will credit.
type frame struct {
	start float64
	cell  *OpMetrics
}

// procState folds one processor's event stream into a partial registry. It
// is single-writer: only the owning processor goroutine (or the FromTrace
// loop) feeds it.
type procState struct {
	reg  *Registry
	root *OpMetrics
	// cells caches label -> cell so steady-state span traffic does not
	// re-split labels or re-build map keys (zero allocations per event).
	cells map[string]*OpMetrics
	stack []frame
	seen  bool
	// Partial totals; Makespan/Events/Procs/SpanKinds are finalized by merge.
	totals   Totals
	makespan float64
	events   int
}

func newProcState() *procState {
	return &procState{reg: NewRegistry(), cells: make(map[string]*OpMetrics)}
}

// rootCell returns (creating on first use) the ("(root)", "(program)") cell
// for events outside every span.
func (st *procState) rootCell() *OpMetrics {
	if st.root == nil {
		st.root = st.reg.Op("(root)", "(program)")
	}
	return st.root
}

// feed folds one event. Events must arrive in the processor's program order.
func (st *procState) feed(e machine.Event) {
	st.seen = true
	st.events++
	if e.End > st.makespan {
		st.makespan = e.End
	}
	switch e.Kind {
	case machine.EvSpanBegin:
		if len(st.stack) == 0 {
			// Top-level span markers are attributed to the root scope, which
			// materializes the root cell exactly as the post-hoc owner walk did.
			st.rootCell()
		}
		cell := st.cells[e.Label]
		if cell == nil {
			cell = st.reg.Op(keyOf(e.Label))
			st.cells[e.Label] = cell
		}
		st.stack = append(st.stack, frame{start: e.Start, cell: cell})
	case machine.EvSpanEnd:
		if len(st.stack) == 0 {
			st.rootCell() // unmatched end: owned by the root scope
			return
		}
		f := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		d := e.Start - f.start
		f.cell.Spans++
		f.cell.Time += d
		f.cell.Dur.Add(d)
	default:
		m := st.rootCell()
		if len(st.stack) > 0 {
			m = st.stack[len(st.stack)-1].cell
		}
		d := e.End - e.Start
		switch e.Kind {
		case machine.EvCompute:
			m.Compute += d
			st.totals.Compute += d
		case machine.EvWait:
			m.Wait += d
			st.totals.Wait += d
		case machine.EvSend:
			m.Send += d
			m.MsgsSent++
			m.BytesSent += int64(e.Bytes)
			st.totals.Send += d
			st.totals.Msgs++
			st.totals.Bytes += int64(e.Bytes)
		case machine.EvRecv:
			m.MsgsRecvd++
			m.BytesRecvd += int64(e.Bytes)
		case machine.EvIO:
			m.IO += d
			st.totals.IO += d
		case machine.EvFault:
			m.Faults++
			st.totals.Faults++
		case machine.EvTimeout:
			// A timed-out receive window is wait time that bought nothing;
			// it accrues into Wait and is counted separately.
			m.Timeouts++
			m.Wait += d
			st.totals.Timeouts++
			st.totals.Wait += d
		case machine.EvRetry:
			m.Retries++
			st.totals.Retries++
		}
	}
}

// mergeInto folds one processor's partial registry into out. Callers merge
// processors in ascending id order, so per-key field additions happen in a
// fixed order and the merged floats are a pure function of the partials.
// Per-key accumulation is independent across keys, so the iteration order of
// st.reg.ops does not matter.
func mergeInto(out *Registry, st *procState) {
	if st == nil || !st.seen {
		return
	}
	for k, m := range st.reg.ops {
		dst := out.ops[k]
		if dst == nil {
			dst = &OpMetrics{Group: m.Group, Op: m.Op}
			out.ops[k] = dst
		}
		dst.Spans += m.Spans
		dst.Time += m.Time
		dst.Compute += m.Compute
		dst.Wait += m.Wait
		dst.Send += m.Send
		dst.IO += m.IO
		dst.MsgsSent += m.MsgsSent
		dst.BytesSent += m.BytesSent
		dst.MsgsRecvd += m.MsgsRecvd
		dst.BytesRecvd += m.BytesRecvd
		dst.Faults += m.Faults
		dst.Timeouts += m.Timeouts
		dst.Retries += m.Retries
		for i := range dst.Dur.Buckets {
			dst.Dur.Buckets[i] += m.Dur.Buckets[i]
		}
	}
	out.totals.Compute += st.totals.Compute
	out.totals.Wait += st.totals.Wait
	out.totals.Send += st.totals.Send
	out.totals.IO += st.totals.IO
	out.totals.Msgs += st.totals.Msgs
	out.totals.Bytes += st.totals.Bytes
	out.totals.Faults += st.totals.Faults
	out.totals.Timeouts += st.totals.Timeouts
	out.totals.Retries += st.totals.Retries
	out.totals.Events += st.events
	out.totals.Procs++
	if st.makespan > out.totals.Makespan {
		out.totals.Makespan = st.makespan
	}
}

// The merge topology. A flat left fold over P partials costs O(P) sequential
// registry merges on the snapshot path; at P=65536 that dominates snapshot
// latency. Instead both pipelines merge through the same fixed tree: the
// partials of processors that saw events are compacted (ascending processor
// order), folded sequentially into leaves of mergeChunk consecutive partials,
// and the leaves are merged pairwise until one registry remains — O(log P)
// levels, with the pair merges of wide levels running in parallel. The
// topology is a pure function of the compacted partial sequence, never of
// processor count, host parallelism, or which level ran on which goroutine,
// so float sums group identically online (StreamSink.Registry) and post-hoc
// (FromTrace) and the byte-identity contract between them survives scale.
const (
	// mergeChunk is the leaf width: partials per sequential leaf fold.
	mergeChunk = 8
	// mergeParallelMin is the leaf count above which tree levels fan out to
	// goroutines; below it the coordination costs more than the merges.
	mergeParallelMin = 16
)

// mergeRegistries folds src into dst: per-key cell additions plus totals.
// Makespan folds by max, so it commutes and associates exactly; the float
// sums are grouped by the fixed tree.
func mergeRegistries(dst, src *Registry) {
	for k, m := range src.ops {
		d := dst.ops[k]
		if d == nil {
			d = &OpMetrics{Group: m.Group, Op: m.Op}
			dst.ops[k] = d
		}
		d.Spans += m.Spans
		d.Time += m.Time
		d.Compute += m.Compute
		d.Wait += m.Wait
		d.Send += m.Send
		d.IO += m.IO
		d.MsgsSent += m.MsgsSent
		d.BytesSent += m.BytesSent
		d.MsgsRecvd += m.MsgsRecvd
		d.BytesRecvd += m.BytesRecvd
		d.Faults += m.Faults
		d.Timeouts += m.Timeouts
		d.Retries += m.Retries
		for i := range d.Dur.Buckets {
			d.Dur.Buckets[i] += m.Dur.Buckets[i]
		}
	}
	dst.totals.Compute += src.totals.Compute
	dst.totals.Wait += src.totals.Wait
	dst.totals.Send += src.totals.Send
	dst.totals.IO += src.totals.IO
	dst.totals.Msgs += src.totals.Msgs
	dst.totals.Bytes += src.totals.Bytes
	dst.totals.Faults += src.totals.Faults
	dst.totals.Timeouts += src.totals.Timeouts
	dst.totals.Retries += src.totals.Retries
	dst.totals.Events += src.totals.Events
	dst.totals.Procs += src.totals.Procs
	if src.totals.Makespan > dst.totals.Makespan {
		dst.totals.Makespan = src.totals.Makespan
	}
}

// mergeTree reduces leaf registries pairwise — leaf i merges with leaf i+1,
// the winners pair again — until one remains. Pairs within a level are
// independent, so wide levels run them concurrently; the grouping (and hence
// every float sum) is fixed by leaf position alone.
func mergeTree(leaves []*Registry) *Registry {
	if len(leaves) == 0 {
		return NewRegistry()
	}
	for len(leaves) > 1 {
		next := make([]*Registry, 0, (len(leaves)+1)/2)
		pairs := len(leaves) / 2
		if pairs >= mergeParallelMin/2 {
			var wg sync.WaitGroup
			wg.Add(pairs)
			for i := 0; i < pairs; i++ {
				go func(i int) {
					defer wg.Done()
					mergeRegistries(leaves[2*i], leaves[2*i+1])
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < pairs; i++ {
				mergeRegistries(leaves[2*i], leaves[2*i+1])
			}
		}
		for i := 0; i < pairs; i++ {
			next = append(next, leaves[2*i])
		}
		if len(leaves)%2 == 1 {
			next = append(next, leaves[len(leaves)-1])
		}
		leaves = next
	}
	return leaves[0]
}

// mergeStates folds per-processor partial registries (ascending processor
// order, unseen processors skipped) through the shared merge tree.
func mergeStates(states []*procState) *Registry {
	var leaves []*Registry
	var leaf *Registry
	inLeaf := 0
	for _, st := range states {
		if st == nil || !st.seen {
			continue
		}
		if inLeaf == 0 {
			leaf = NewRegistry()
			leaves = append(leaves, leaf)
		}
		mergeInto(leaf, st)
		if inLeaf++; inLeaf == mergeChunk {
			inLeaf = 0
		}
	}
	out := mergeTree(leaves)
	out.totals.SpanKinds = len(out.ops)
	return out
}

// streamShard pairs a processor's fold state with the mutex that lets
// Snapshot read it mid-run. The owning processor goroutine is the only
// writer, so the lock is uncontended on the record path.
type streamShard struct {
	mu sync.Mutex
	st *procState
}

// StreamSink is a machine.Tracer that maintains the per-(group, operation)
// registry online. Its Snapshot is byte-identical to
// FromTrace(collector.Events()).Snapshot() for the same run, while retaining
// no events: memory is O(procs + distinct (group, op) keys).
type StreamSink struct {
	shards  []streamShard
	dropped atomic.Int64
}

var _ machine.Tracer = (*StreamSink)(nil)

// NewStreamSink returns a sink for a machine of the given processor count.
func NewStreamSink(procs int) *StreamSink {
	s := &StreamSink{shards: make([]streamShard, procs)}
	for i := range s.shards {
		s.shards[i].st = newProcState()
	}
	return s
}

// Record implements machine.Tracer. Events whose processor id is outside
// [0, procs) are counted in Dropped and otherwise ignored.
func (s *StreamSink) Record(e machine.Event) {
	if e.Proc < 0 || e.Proc >= len(s.shards) {
		s.dropped.Add(1)
		return
	}
	sh := &s.shards[e.Proc]
	sh.mu.Lock()
	sh.st.feed(e)
	sh.mu.Unlock()
}

// Dropped returns the number of events ignored for an out-of-range
// processor id.
func (s *StreamSink) Dropped() int64 { return s.dropped.Load() }

// Registry merges the per-processor partials into a full registry. Safe to
// call mid-run: each processor's partial is read under its lock (the result
// is then a causally consistent per-processor prefix, not a global cut).
// The leaf folds and the pairwise tree above them are the same fixed
// topology FromTrace uses, so the two pipelines stay byte-identical.
func (s *StreamSink) Registry() *Registry {
	var leaves []*Registry
	var leaf *Registry
	inLeaf := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.st.seen {
			if inLeaf == 0 {
				leaf = NewRegistry()
				leaves = append(leaves, leaf)
			}
			mergeInto(leaf, sh.st)
			if inLeaf++; inLeaf == mergeChunk {
				inLeaf = 0
			}
		}
		sh.mu.Unlock()
	}
	out := mergeTree(leaves)
	out.totals.SpanKinds = len(out.ops)
	return out
}

// Snapshot merges and materializes the registry in sorted order.
func (s *StreamSink) Snapshot() Snapshot { return s.Registry().Snapshot() }

// FromTrace builds a registry from a run's events (typically
// Collector.Events(); any order is accepted, the input is not modified).
// The result is a pure function of the event values, which are virtual-time
// deterministic — and it is computed by the same per-processor fold and
// merge as StreamSink, so the two pipelines agree byte for byte.
func FromTrace(evs []machine.Event) *Registry {
	sorted := append([]machine.Event(nil), evs...)
	trace.SortEvents(sorted)
	var states []*procState
	var cur *procState
	lastProc := 0
	for _, e := range sorted {
		if cur == nil || e.Proc != lastProc {
			cur = newProcState()
			states = append(states, cur) // sorted input: ascending proc order
			lastProc = e.Proc
		}
		cur.feed(e)
	}
	return mergeStates(states)
}
