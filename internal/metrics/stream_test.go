package metrics_test

import (
	"bytes"
	"math"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// TestStreamSinkMatchesFromTraceByteForByte is the tentpole acceptance test:
// a run traced through both a full Collector and the online StreamSink (via
// trace.Tee) must yield byte-identical snapshot JSON from the two pipelines,
// even though the sink never retained an event.
func TestStreamSinkMatchesFromTraceByteForByte(t *testing.T) {
	const procs = 6
	col := &trace.Collector{}
	sink := metrics.NewStreamSink(procs)
	m := machine.New(procs, sim.Paragon())
	m.SetTracer(trace.Tee(col, sink))
	ffthist.Run(m, ffthist.Config{N: 32, Sets: 4, Bins: 16}, ffthist.Pipeline(2, 2, 2))

	if d := sink.Dropped(); d != 0 {
		t.Fatalf("StreamSink dropped %d events", d)
	}
	live, err := sink.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	posthoc, err := metrics.FromTrace(col.Events()).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, posthoc) {
		t.Errorf("streaming snapshot differs from post-hoc pipeline:\n--- streaming\n%s\n--- post-hoc\n%s", live, posthoc)
	}
}

// TestStreamSinkSnapshotRepeatable: snapshotting twice after the run must
// give identical bytes (merging does not mutate the per-processor partials).
func TestStreamSinkSnapshotRepeatable(t *testing.T) {
	sink := metrics.NewStreamSink(2)
	m := machine.New(2, sim.Paragon())
	m.SetTracer(sink)
	ffthist.Run(m, ffthist.Config{N: 16, Sets: 2, Bins: 8}, ffthist.DataParallel(2))
	a, err := sink.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sink.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("repeated snapshots of the same sink differ")
	}
}

// TestStreamSinkSteadyStateNoAllocs guards the O(procs + groups) memory
// claim: once a span label has been seen, recording further events — span
// traffic included — must not allocate. An event-retaining sink could not
// pass this (appends eventually grow a slice).
func TestStreamSinkSteadyStateNoAllocs(t *testing.T) {
	sink := metrics.NewStreamSink(1)
	evs := []machine.Event{
		{Proc: 0, Kind: machine.EvSpanBegin, Start: 0, End: 0, Seq: 1, Label: "on:work:group[0]"},
		{Proc: 0, Kind: machine.EvCompute, Start: 0, End: 1, Seq: 2},
		{Proc: 0, Kind: machine.EvSend, Start: 1, End: 2, Seq: 3, Peer: 0, Bytes: 8},
		{Proc: 0, Kind: machine.EvWait, Start: 2, End: 3, Seq: 4, Peer: 0},
		{Proc: 0, Kind: machine.EvRecv, Start: 3, End: 3, Seq: 5, Peer: 0, Bytes: 8},
		{Proc: 0, Kind: machine.EvIO, Start: 3, End: 4, Seq: 6},
		{Proc: 0, Kind: machine.EvSpanEnd, Start: 4, End: 4, Seq: 7, Label: "on:work:group[0]"},
	}
	// Warm the label cache and the span stack's capacity.
	for _, e := range evs {
		sink.Record(e)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, e := range evs {
			sink.Record(e)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state StreamSink.Record allocates %.1f times per batch; want 0", allocs)
	}
}

// TestStreamSinkDropsOutOfRangeProc: events for unknown processors are
// counted, not folded (and must not panic).
func TestStreamSinkDropsOutOfRangeProc(t *testing.T) {
	sink := metrics.NewStreamSink(2)
	sink.Record(machine.Event{Proc: 5, Kind: machine.EvCompute, Start: 0, End: 1})
	sink.Record(machine.Event{Proc: -1, Kind: machine.EvCompute, Start: 0, End: 1})
	if got := sink.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	if snap := sink.Snapshot(); snap.Totals.Events != 0 {
		t.Errorf("dropped events leaked into totals: %+v", snap.Totals)
	}
}

// TestHistogramClampsMalformedDurations is the regression test for the
// negative/NaN clamp: a malformed span whose end marker precedes its begin
// (End < Start) yields a negative duration, which must land in bucket 0
// instead of indexing the bucket array with int(Log2(negative)).
func TestHistogramClampsMalformedDurations(t *testing.T) {
	var h metrics.Histogram
	h.Add(-1.0)
	h.Add(math.NaN())
	h.Add(0)
	h.Add(math.Inf(-1))
	if h.Buckets[0] != 4 {
		t.Errorf("bucket 0 = %d, want 4 (all malformed durations clamp there)", h.Buckets[0])
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}

	// End-to-end: a hand-built trace whose span end precedes its begin.
	evs := []machine.Event{
		{Proc: 0, Kind: machine.EvSpanBegin, Start: 10, End: 10, Seq: 1, Label: "bad:group[0]"},
		{Proc: 0, Kind: machine.EvSpanEnd, Start: 5, End: 5, Seq: 2, Label: "bad:group[0]"},
	}
	snap := metrics.FromTrace(evs).Snapshot()
	var bad *metrics.OpMetrics
	for i := range snap.Ops {
		if snap.Ops[i].Op == "bad" {
			bad = &snap.Ops[i]
		}
	}
	if bad == nil {
		t.Fatalf("no metrics cell for the malformed span: %+v", snap.Ops)
	}
	if bad.Spans != 1 || bad.Dur.Buckets[0] != 1 {
		t.Errorf("malformed span: Spans=%d Buckets[0]=%d, want 1 and 1", bad.Spans, bad.Dur.Buckets[0])
	}
}
