// Package metrics aggregates a traced run into a deterministic registry of
// counters and histograms keyed by (group, operation): how many messages and
// bytes each subgroup exchanged, how long it waited at subset barriers, how
// much compute/idle/IO time each ON scope consumed. It is fed from the same
// tracer hooks that drive the Gantt and critical-path views — the registry
// is a pure function of the event stream, so two identical runs produce
// byte-identical snapshots regardless of host scheduling.
//
// The (group, operation) key comes from the span-label convention shared by
// the fx runtime and the comm collectives ("op:detail:group[...]"): leaf
// events are attributed to their innermost enclosing span, whose label names
// both the operation ("barrier", "on:G2", ...) and the processor group it
// ran on. Events outside any span are accounted under ("(root)",
// "(program)").
package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"fxpar/internal/trace"
)

// HistBuckets is the number of log2 duration buckets kept per operation.
// Bucket i counts span activations with duration in [2^i, 2^(i+1))
// microseconds; bucket 0 also absorbs sub-microsecond activations.
const HistBuckets = 32

// Histogram is a fixed-shape log2 histogram of virtual durations.
type Histogram struct {
	Buckets [HistBuckets]int64 `json:"buckets"`
}

// Add records one duration in seconds. Durations below one microsecond land
// in bucket 0 — including zero, negative values (a malformed event whose End
// precedes its Start) and NaN, which would otherwise index the bucket array
// with a negative int(math.Log2(us)).
func (h *Histogram) Add(seconds float64) {
	us := seconds * 1e6
	b := 0
	if us >= 1 { // false for NaN and negatives: they clamp to bucket 0
		b = int(math.Log2(us))
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
		if b < 0 { // paranoia against Log2 edge cases just above 1
			b = 0
		}
	}
	h.Buckets[b]++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// nonZero renders the histogram compactly for the text snapshot:
// "lo..hi us: count" per occupied bucket.
func (h *Histogram) nonZero() string {
	var buf bytes.Buffer
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if buf.Len() > 0 {
			buf.WriteString("  ")
		}
		fmt.Fprintf(&buf, "[%g,%g)us:%d", math.Pow(2, float64(i)), math.Pow(2, float64(i+1)), c)
	}
	return buf.String()
}

// OpMetrics accumulates everything observed for one (group, operation) key.
type OpMetrics struct {
	Group string `json:"group"`
	Op    string `json:"op"`
	// Spans counts activations (per member processor; a barrier on a
	// 4-processor group counts 4).
	Spans int64 `json:"spans"`
	// Time is the total virtual time inside the operation's spans, summed
	// over member processors.
	Time float64 `json:"time"`
	// Compute, Wait, Send, IO are leaf time inside the operation's spans
	// (innermost attribution: time inside a barrier nested in an ON block
	// counts toward the barrier, not the ON block).
	Compute float64 `json:"compute"`
	Wait    float64 `json:"wait"`
	Send    float64 `json:"send"`
	IO      float64 `json:"io"`
	// MsgsSent/BytesSent count message injections; MsgsRecvd/BytesRecvd
	// count consumptions.
	MsgsSent   int64 `json:"msgsSent"`
	BytesSent  int64 `json:"bytesSent"`
	MsgsRecvd  int64 `json:"msgsRecvd"`
	BytesRecvd int64 `json:"bytesRecvd"`
	// Faults, Timeouts, Retries count chaos markers attributed to the
	// operation (fault-plan perturbations, timed-out receive windows, and
	// retry attempts). omitempty keeps healthy snapshots byte-identical to
	// pre-chaos baselines; EvTimeout durations also accrue into Wait.
	Faults   int64 `json:"faults,omitempty"`
	Timeouts int64 `json:"timeouts,omitempty"`
	Retries  int64 `json:"retries,omitempty"`
	// Dur is the histogram of individual span durations.
	Dur Histogram `json:"dur"`
}

// Totals summarizes the whole run.
type Totals struct {
	Procs     int     `json:"procs"`
	Events    int     `json:"events"`
	Makespan  float64 `json:"makespan"`
	Compute   float64 `json:"compute"`
	Wait      float64 `json:"wait"`
	Send      float64 `json:"send"`
	IO        float64 `json:"io"`
	Msgs      int64   `json:"msgs"`
	Bytes     int64   `json:"bytes"`
	SpanKinds int     `json:"spanKinds"`
	// Chaos totals (see OpMetrics); zero — and absent from JSON — on
	// healthy runs.
	Faults   int64 `json:"faults,omitempty"`
	Timeouts int64 `json:"timeouts,omitempty"`
	Retries  int64 `json:"retries,omitempty"`
}

// Registry accumulates per-(group, operation) metrics. The zero value is
// not ready; use NewRegistry or FromTrace.
type Registry struct {
	ops    map[string]*OpMetrics // key: group + "\x00" + op
	totals Totals
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]*OpMetrics)}
}

// Op returns (creating on first use) the metrics cell for a key.
func (r *Registry) Op(group, op string) *OpMetrics {
	k := group + "\x00" + op
	m := r.ops[k]
	if m == nil {
		m = &OpMetrics{Group: group, Op: op}
		r.ops[k] = m
	}
	return m
}

// keyOf derives the (group, op) key for a span label.
func keyOf(label string) (group, op string) {
	op, group = trace.SplitLabel(label)
	if group == "" {
		group = "(none)"
	}
	return group, op
}

// FromTrace (see stream.go) builds a registry from a run's events using the
// same per-processor fold that powers the online StreamSink.

// Snapshot is a deterministic, serializable view of a registry: operations
// sorted by (group, op).
type Snapshot struct {
	Totals Totals      `json:"totals"`
	Ops    []OpMetrics `json:"ops"`
}

// Snapshot materializes the registry in sorted order.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Totals: r.totals, Ops: make([]OpMetrics, 0, len(r.ops))}
	for _, m := range r.ops {
		s.Ops = append(s.Ops, *m)
	}
	sort.Slice(s.Ops, func(i, j int) bool {
		if s.Ops[i].Group != s.Ops[j].Group {
			return s.Ops[i].Group < s.Ops[j].Group
		}
		return s.Ops[i].Op < s.Ops[j].Op
	})
	return s
}

// JSON renders the snapshot as indented JSON with a trailing newline. The
// output is byte-identical across identical runs.
func (s Snapshot) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteText renders the snapshot as an aligned table: one row per
// (group, operation), heaviest total time first within each group.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "procs %d  events %d  makespan %.6f s\n", s.Totals.Procs, s.Totals.Events, s.Totals.Makespan)
	fmt.Fprintf(w, "totals: compute %.6f s  wait %.6f s  send %.6f s  io %.6f s  msgs %d  bytes %d\n",
		s.Totals.Compute, s.Totals.Wait, s.Totals.Send, s.Totals.IO, s.Totals.Msgs, s.Totals.Bytes)
	if len(s.Ops) == 0 {
		return
	}
	wg, wo := len("group"), len("op")
	for _, m := range s.Ops {
		if len(m.Group) > wg {
			wg = len(m.Group)
		}
		if len(m.Op) > wo {
			wo = len(m.Op)
		}
	}
	fmt.Fprintf(w, "%-*s %-*s %7s %11s %11s %11s %11s %11s %9s %11s %9s %11s\n",
		wg, "group", wo, "op", "spans", "time(s)", "compute(s)", "wait(s)", "send(s)", "io(s)",
		"msgsSent", "bytesSent", "msgsRecv", "bytesRecv")
	for _, m := range s.Ops {
		fmt.Fprintf(w, "%-*s %-*s %7d %11.6f %11.6f %11.6f %11.6f %11.6f %9d %11d %9d %11d\n",
			wg, m.Group, wo, m.Op, m.Spans, m.Time, m.Compute, m.Wait, m.Send, m.IO,
			m.MsgsSent, m.BytesSent, m.MsgsRecvd, m.BytesRecvd)
	}
}

// WriteHistograms renders the per-operation duration histograms (occupied
// buckets only), for operations with at least one activation.
func (s Snapshot) WriteHistograms(w io.Writer) {
	for _, m := range s.Ops {
		if m.Dur.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%s %s: %s\n", m.Group, m.Op, m.Dur.nonZero())
	}
}
