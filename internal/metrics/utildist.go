package metrics

// Utilization at scale: a per-processor utilization table is unreadable (and
// unrenderable) at P=65536. UtilDistribution folds a UtilSink snapshot into
// per-activity sketches — the distribution of per-processor compute, send,
// wait, and IO time plus the busy fraction — so fxprof can print five
// summary lines instead of P rows, with the same determinism guarantees as
// every other sketch (fixed bins, fixed fold order).

import (
	"fmt"
	"io"
	"strings"

	"fxpar/internal/trace"
)

// UtilDist summarizes the per-processor utilization distribution of a run.
type UtilDist struct {
	Procs int `json:"procs"`
	// Compute/Send/Wait/IO are distributions of per-processor virtual
	// seconds in each activity.
	Compute Sketch `json:"compute"`
	Send    Sketch `json:"send"`
	Wait    Sketch `json:"wait"`
	IO      Sketch `json:"io"`
	// Busy is the distribution of per-processor busy fraction
	// ((compute+send+io) / trace extent), in [0, 1].
	Busy Sketch `json:"busy"`
}

// UtilDistribution folds a utilization snapshot, processors in ascending id
// order (the sketch's integer bins make the order irrelevant to the result;
// the fixed order keeps it obviously deterministic).
func UtilDistribution(snap trace.UtilSnapshot) UtilDist {
	d := UtilDist{Procs: len(snap.PerProc)}
	span := snap.End - snap.Start
	for _, u := range snap.PerProc {
		d.Compute.Add(u.Compute)
		d.Send.Add(u.Send)
		d.Wait.Add(u.Wait)
		d.IO.Add(u.IO)
		if span > 0 {
			d.Busy.Add((u.Compute + u.Send + u.IO) / span)
		}
	}
	return d
}

// WriteText renders one summary line per activity.
func (d UtilDist) WriteText(w io.Writer) {
	fmt.Fprintf(w, "utilization distribution over %d procs (per-proc virtual seconds)\n", d.Procs)
	var sb strings.Builder
	WriteSketchText(&sb, "compute", &d.Compute)
	WriteSketchText(&sb, "send", &d.Send)
	WriteSketchText(&sb, "wait", &d.Wait)
	WriteSketchText(&sb, "io", &d.IO)
	WriteSketchText(&sb, "busy-frac", &d.Busy)
	io.WriteString(w, sb.String()) //nolint:errcheck // best-effort rendering
}
