package metrics_test

// Satellite property test for the scale tier: the StreamSink fold is
// byte-identical under every permutation of shard feeding order, because
// accumulation is per-processor and the merge runs through a fixed tree
// keyed on ascending processor order — never on arrival order. Verified at
// P=64 on both engines, healthy and under chaos.

import (
	"bytes"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// permute64 returns a deterministic pseudo-random permutation of [0, n)
// derived from seed (splitmix64-style Fisher-Yates; no global RNG so the
// test is reproducible).
func permute64(n int, seed uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func permRunEvents(t *testing.T, eng machine.Engine, chaos bool) []machine.Event {
	t.Helper()
	const procs = 64
	col := &trace.Collector{}
	m := machine.New(procs, sim.Paragon())
	m.SetEngine(eng)
	m.SetTracer(col)
	if chaos {
		prof, err := fault.ProfileByName("flaky")
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaults(fault.New(7, prof))
	}
	ffthist.Run(m, ffthist.Config{N: 32, Sets: 8, Bins: 16}, ffthist.DataParallel(procs))
	return col.Events()
}

// TestStreamSinkFoldPermutationInvariant feeds the same event stream into
// fresh sinks with the per-processor event groups delivered in permuted
// processor order, and demands byte-identical snapshots — equal to the
// post-hoc FromTrace registry, too.
func TestStreamSinkFoldPermutationInvariant(t *testing.T) {
	const procs = 64
	for _, tc := range []struct {
		name  string
		eng   machine.Engine
		chaos bool
	}{
		{"goroutine-healthy", machine.Goroutine(), false},
		{"coop-healthy", machine.Coop(4), false},
		{"goroutine-chaos", machine.Goroutine(), true},
		{"coop-chaos", machine.Coop(4), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evs := permRunEvents(t, tc.eng, tc.chaos)
			byProc := make([][]machine.Event, procs)
			for _, e := range evs {
				byProc[e.Proc] = append(byProc[e.Proc], e)
			}
			want, err := metrics.FromTrace(evs).Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}
			if tc.chaos && !bytes.Contains(want, []byte("faults")) {
				t.Fatalf("chaos run produced no fault markers; the chaotic case is not exercising chaos")
			}
			for trial := 0; trial < 12; trial++ {
				sink := metrics.NewStreamSink(procs)
				for _, p := range permute64(procs, uint64(trial)*0x1234567+1) {
					for _, e := range byProc[p] {
						sink.Record(e)
					}
				}
				got, err := sink.Snapshot().JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trial %d: permuted shard feed diverged from post-hoc snapshot", trial)
				}
			}
		})
	}
}
