package metrics

import (
	"bytes"
	"testing"

	"fxpar/internal/machine"
)

// TestChaosEventsCounted: EvFault/EvTimeout/EvRetry events land in the new
// chaos counters (with the EvTimeout window also counted as wait time), on
// both the streaming and post-hoc paths — which must stay byte-identical.
func TestChaosEventsCounted(t *testing.T) {
	evs := []machine.Event{
		{Proc: 0, Kind: machine.EvSpanBegin, Seq: 1, Label: "bcast:group[0-1]"},
		{Proc: 0, Kind: machine.EvFault, Seq: 2, Start: 1, End: 1, Peer: 1, Label: machine.FaultDelay},
		{Proc: 0, Kind: machine.EvTimeout, Seq: 3, Start: 1, End: 3, Peer: 1},
		{Proc: 0, Kind: machine.EvRetry, Seq: 4, Start: 3, End: 3, Peer: 1},
		{Proc: 0, Kind: machine.EvSpanEnd, Seq: 5, Start: 4, End: 4, Label: "bcast:group[0-1]"},
		{Proc: 1, Kind: machine.EvFault, Seq: 1, Start: 2, End: 2, Peer: -1, Label: machine.FaultDeath},
	}
	reg := FromTrace(evs)
	snap := reg.Snapshot()
	if snap.Totals.Faults != 2 || snap.Totals.Timeouts != 1 || snap.Totals.Retries != 1 {
		t.Errorf("totals faults/timeouts/retries = %d/%d/%d, want 2/1/1",
			snap.Totals.Faults, snap.Totals.Timeouts, snap.Totals.Retries)
	}
	if snap.Totals.Wait != 2 {
		t.Errorf("timed-out window not counted as wait: %g, want 2", snap.Totals.Wait)
	}
	var bcast *OpMetrics
	for i := range snap.Ops {
		if snap.Ops[i].Op == "bcast" {
			bcast = &snap.Ops[i]
		}
	}
	if bcast == nil {
		t.Fatal("no bcast op in snapshot")
	}
	if bcast.Faults != 1 || bcast.Timeouts != 1 || bcast.Retries != 1 {
		t.Errorf("bcast faults/timeouts/retries = %d/%d/%d, want 1/1/1",
			bcast.Faults, bcast.Timeouts, bcast.Retries)
	}

	sink := NewStreamSink(2)
	for _, e := range evs {
		sink.Record(e)
	}
	a, err := sink.Registry().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("streaming and post-hoc snapshots diverge on chaos events:\n%s\nvs\n%s", a, b)
	}
}

// TestHealthySnapshotHasNoChaosFields: the chaos counters are omitted from
// JSON when zero, so healthy-run snapshots stay byte-compatible with
// baselines recorded before fault injection existed.
func TestHealthySnapshotHasNoChaosFields(t *testing.T) {
	evs := []machine.Event{
		{Proc: 0, Kind: machine.EvCompute, Seq: 1, Start: 0, End: 1},
	}
	out, err := FromTrace(evs).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"faults", "timeouts", "retries"} {
		if bytes.Contains(out, []byte(field)) {
			t.Errorf("healthy snapshot contains %q:\n%s", field, out)
		}
	}
}
