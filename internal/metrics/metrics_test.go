package metrics_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/metrics"
	"fxpar/internal/sim"
	"fxpar/internal/trace"
)

// intCost makes every event boundary an exact integer in virtual seconds.
func intCost() sim.CostModel {
	return sim.CostModel{FlopRate: 1, Alpha: 1, SendOverhead: 1, BarrierAlpha: 1, IORate: 1}
}

func TestFromTraceAttributesToInnermostSpan(t *testing.T) {
	c := &trace.Collector{}
	m := machine.New(2, intCost())
	m.SetTracer(c)
	m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.BeginSpan("on:prod:group[0]")
			p.Compute(10)
			p.BeginSpan("bcast:group[0 1]")
			p.Send(1, 99, 4)
			p.EndSpan()
			p.EndSpan()
		} else {
			p.BeginSpan("on:cons:group[1]")
			p.Recv(0)
			p.Compute(2)
			p.EndSpan()
			p.IO(3) // outside any span -> (root)/(program)
		}
	})
	snap := metrics.FromTrace(c.Events()).Snapshot()

	cell := func(group, op string) *metrics.OpMetrics {
		for i := range snap.Ops {
			if snap.Ops[i].Group == group && snap.Ops[i].Op == op {
				return &snap.Ops[i]
			}
		}
		t.Fatalf("no cell (%s, %s) in %+v", group, op, snap.Ops)
		return nil
	}

	prod := cell("group[0]", "on:prod")
	if prod.Compute != 10 || prod.MsgsSent != 0 || prod.Spans != 1 {
		t.Errorf("prod cell = %+v; want compute 10, no sends (bcast span owns them)", prod)
	}
	bc := cell("group[0 1]", "bcast")
	if bc.MsgsSent != 1 || bc.BytesSent != 4 || bc.Send != 1 {
		t.Errorf("bcast cell = %+v; want the send attributed here", bc)
	}
	cons := cell("group[1]", "on:cons")
	if cons.Compute != 2 || cons.Wait != 12 || cons.MsgsRecvd != 1 || cons.BytesRecvd != 4 {
		t.Errorf("cons cell = %+v; want compute 2, wait 12, 1 msg / 4 bytes received", cons)
	}
	root := cell("(root)", "(program)")
	if root.IO != 3 {
		t.Errorf("root cell = %+v; want the un-spanned IO accounted here", root)
	}

	if snap.Totals.Msgs != 1 || snap.Totals.Bytes != 4 || snap.Totals.Compute != 12 ||
		snap.Totals.Procs != 2 || snap.Totals.Makespan != 17 {
		t.Errorf("totals = %+v", snap.Totals)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h metrics.Histogram
	h.Add(0)       // sub-microsecond -> bucket 0
	h.Add(3e-6)    // 3 us -> [2,4) = bucket 1
	h.Add(1000e-6) // 1000 us -> [512,1024)us = bucket 9
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[9] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
}

// tracedFFTHist runs the paper's FFT-Hist pipeline once under tracing and
// returns the metrics JSON and the critical-path report.
func tracedFFTHist(t *testing.T) ([]byte, string) {
	t.Helper()
	c := &trace.Collector{}
	m := machine.New(6, sim.Paragon())
	m.SetTracer(c)
	ffthist.Run(m, ffthist.Config{N: 32, Sets: 4, Bins: 16}, ffthist.Pipeline(2, 2, 2))
	evs := c.Events()
	js, err := metrics.FromTrace(evs).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	trace.ComputeCriticalPath(evs).WriteReport(&buf)
	return js, buf.String()
}

// TestTracedRunDeterminism is the acceptance test of the observability layer:
// two identical traced runs must produce byte-identical metrics snapshots and
// critical-path reports, no matter how the host scheduler interleaved the
// processor goroutines. (CI runs this under -race as well.)
func TestTracedRunDeterminism(t *testing.T) {
	js1, cp1 := tracedFFTHist(t)
	js2, cp2 := tracedFFTHist(t)
	if !bytes.Equal(js1, js2) {
		t.Errorf("metrics JSON differs between identical runs:\n%s\n---\n%s", js1, js2)
	}
	if cp1 != cp2 {
		t.Errorf("critical-path report differs between identical runs:\n%s\n---\n%s", cp1, cp2)
	}
	if !json.Valid(js1) {
		t.Error("metrics snapshot is not valid JSON")
	}
	// The pipeline's stage subgroups must be visible as metric keys.
	for _, want := range []string{`"group[0 1]"`, `"group[2 3]"`, `"group[4 5]"`, `"op": "reduce"`} {
		if !strings.Contains(string(js1), want) {
			t.Errorf("metrics JSON missing %s", want)
		}
	}
	if !strings.Contains(cp1, "by span") || !strings.Contains(cp1, "group[") {
		t.Errorf("critical-path report lacks span attribution:\n%s", cp1)
	}
}

func TestSnapshotTextAndHistogramsRender(t *testing.T) {
	js, _ := tracedFFTHist(t)
	var snap metrics.Snapshot
	if err := json.Unmarshal(js, &snap); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	snap.WriteText(&txt)
	if !strings.Contains(txt.String(), "group") || !strings.Contains(txt.String(), "reduce") {
		t.Errorf("text snapshot:\n%s", txt.String())
	}
	var hist bytes.Buffer
	snap.WriteHistograms(&hist)
	if !strings.Contains(hist.String(), ")us:") {
		t.Errorf("histogram rendering empty:\n%s", hist.String())
	}
}
