package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"fxpar/internal/dist"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// seqDFT2D computes the 2D DFT directly (O(n^4)) for verification.
func seqDFT2D(in []complex128, n int) []complex128 {
	out := make([]complex128, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			var sum complex128
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					phase := -2 * math.Pi * (float64(u*i)/float64(n) + float64(v*j)/float64(n))
					sum += in[i*n+j] * cmplx.Exp(complex(0, phase))
				}
			}
			out[u*n+v] = sum
		}
	}
	return out
}

func distFFTSetup(p *machine.Proc, procs, n int) (dst, src, work *dist.Array[complex128]) {
	g := group.World(procs)
	src = dist.New[complex128](p, dist.RowBlock2D(g, n, n))
	dst = dist.New[complex128](p, dist.RowBlock2D(g, n, n))
	work = dist.New[complex128](p, dist.RowBlock2D(g, n, n))
	return
}

func TestDist2DMatchesDirectDFT(t *testing.T) {
	const n = 8
	for _, procs := range []int{1, 2, 4} {
		m := machine.New(procs, sim.Paragon())
		m.Run(func(p *machine.Proc) {
			dst, src, work := distFFTSetup(p, procs, n)
			src.FillFunc(func(idx []int) complex128 {
				return complex(float64(idx[0]*3+idx[1])/10, float64(idx[0]-idx[1])/7)
			})
			input := make([]complex128, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					input[i*n+j] = complex(float64(i*3+j)/10, float64(i-j)/7)
				}
			}
			want := seqDFT2D(input, n)
			Dist2D(p, dst, src, work, false)
			full := dist.GatherGlobal(p, dst)
			if full != nil {
				for k := range want {
					if cmplx.Abs(full[k]-want[k]) > 1e-9 {
						t.Errorf("procs=%d: element %d = %v, want %v", procs, k, full[k], want[k])
						break
					}
				}
			}
		})
	}
}

func TestDist2DRoundTrip(t *testing.T) {
	const n = 16
	m := machine.New(4, sim.Paragon())
	m.Run(func(p *machine.Proc) {
		dst, src, work := distFFTSetup(p, 4, n)
		inv := dist.New[complex128](p, dist.RowBlock2D(group.World(4), n, n))
		src.FillFunc(func(idx []int) complex128 {
			return complex(math.Sin(float64(idx[0])), math.Cos(float64(idx[1])))
		})
		orig := append([]complex128(nil), src.Local()...)
		Dist2D(p, dst, src, work, false)
		Dist2D(p, inv, dst, work, true)
		for i, v := range inv.Local() {
			if cmplx.Abs(v-orig[i]) > 1e-9 {
				t.Errorf("round trip differs at local %d: %v vs %v", i, v, orig[i])
				break
			}
		}
	})
}

func TestDist2DRejectsBadShapes(t *testing.T) {
	m := machine.New(2, sim.Paragon())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := dist.New[complex128](p, dist.RowBlock2D(g, 8, 4))
		dst := dist.New[complex128](p, dist.RowBlock2D(g, 8, 4))
		work := dist.New[complex128](p, dist.RowBlock2D(g, 8, 4))
		Dist2D(p, dst, src, work, false)
	})
}
