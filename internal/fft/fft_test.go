package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestForwardKnownValues(t *testing.T) {
	// FFT of a constant signal: all energy in bin 0.
	x := []complex128{1, 1, 1, 1}
	Forward(x)
	if !almostEqual(x[0], 4, 1e-12) {
		t.Errorf("x[0] = %v", x[0])
	}
	for i := 1; i < 4; i++ {
		if !almostEqual(x[i], 0, 1e-12) {
			t.Errorf("x[%d] = %v", i, x[i])
		}
	}
}

func TestForwardImpulse(t *testing.T) {
	// FFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if !almostEqual(v, 1, 1e-12) {
			t.Errorf("x[%d] = %v", i, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// exp(2*pi*i*k0*t/n) concentrates in bin k0.
	n, k0 := 16, 3
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k0*i)/float64(n)))
	}
	Forward(x)
	for k, v := range x {
		want := complex(0, 0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if !almostEqual(v, want, 1e-9) {
			t.Errorf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestInverseRoundTripProperty(t *testing.T) {
	f := func(seed int64, lgSeed uint8) bool {
		n := 1 << (lgSeed%8 + 1) // 2..256
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			orig[i] = x[i]
		}
		Forward(x)
		Inverse(x)
		for i := range x {
			if !almostEqual(x[i], orig[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 = (1/n) sum |X|^2.
	f := func(seed int64) bool {
		n := 64
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		var et float64
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		Forward(x)
		var ef float64
		for _, v := range x {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(et-ef/float64(n)) < 1e-9*et+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 32
		rng := rand.New(rand.NewSource(seed))
		a := make([]complex128, n)
		b := make([]complex128, n)
		s := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.Float64(), rng.Float64())
			b[i] = complex(rng.Float64(), rng.Float64())
			s[i] = a[i] + b[i]
		}
		Forward(a)
		Forward(b)
		Forward(s)
		for i := 0; i < n; i++ {
			if !almostEqual(s[i], a[i]+b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward(make([]complex128, 6))
}

func TestEmptyAndSingle(t *testing.T) {
	Forward(nil) // must not panic
	x := []complex128{5}
	Forward(x)
	if x[0] != 5 {
		t.Errorf("length-1 FFT changed value: %v", x[0])
	}
}

func TestRows(t *testing.T) {
	// Two constant rows of width 4.
	data := []complex128{1, 1, 1, 1, 2, 2, 2, 2}
	flops := Rows(data, 4)
	if !almostEqual(data[0], 4, 1e-12) || !almostEqual(data[4], 8, 1e-12) {
		t.Errorf("row FFTs wrong: %v", data)
	}
	if flops != 2*Flops(4) {
		t.Errorf("flops = %g", flops)
	}
}

func TestRowsBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Rows(make([]complex128, 7), 4)
}

func TestFlops(t *testing.T) {
	if Flops(1) != 0 {
		t.Errorf("Flops(1) = %g", Flops(1))
	}
	if got := Flops(256); got != 5*256*8 {
		t.Errorf("Flops(256) = %g", got)
	}
}

func TestHistogram(t *testing.T) {
	data := []complex128{0, 1, 2, 3, complex(100, 0)}
	counts, flops := Histogram(data, 4, 4)
	// |0|->bin0 |1|->bin1 |2|->bin2 |3|->bin3 |100|->clamped to bin3
	want := []int64{1, 1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
		}
	}
	if flops != 5*HistFlops {
		t.Errorf("flops = %g", flops)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(seed int64, binsSeed uint8) bool {
		bins := int(binsSeed)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]complex128, 200)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		counts, _ := Histogram(data, bins, 2.5)
		var total int64
		for _, c := range counts {
			total += c
		}
		return total == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram(nil, 0, 1)
}

func TestScale(t *testing.T) {
	data := []complex128{1, complex(2, 2)}
	flops := Scale(data, 0.5)
	if data[0] != 0.5 || data[1] != complex(1, 1) {
		t.Errorf("scaled = %v", data)
	}
	if flops != 2*ScaleFlops {
		t.Errorf("flops = %g", flops)
	}
}

func TestThreshold(t *testing.T) {
	data := []complex128{complex(0.1, 0), complex(5, 0), complex(0, 3)}
	kept, flops := Threshold(data, 1)
	if kept != 2 {
		t.Errorf("kept = %d", kept)
	}
	if data[0] != 0 || data[1] == 0 || data[2] == 0 {
		t.Errorf("thresholded = %v", data)
	}
	if flops != 3*ThresholdFlops {
		t.Errorf("flops = %g", flops)
	}
}
