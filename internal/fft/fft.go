// Package fft provides the numerical kernels of the sensor applications:
// an iterative radix-2 complex FFT, batched row FFTs, and magnitude
// histograms. Values are really computed (so results can be verified across
// task mappings); cost constants let callers charge the matching virtual
// time to the simulated machine.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Flops returns the standard operation count of one radix-2 FFT of length n:
// 5 n log2 n real floating point operations.
func Flops(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// InPlace performs an in-place decimation-in-time radix-2 FFT of x, whose
// length must be a power of two. inverse selects the inverse transform
// (including the 1/n scaling).
func InPlace(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wbase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wbase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// Forward is InPlace(x, false).
func Forward(x []complex128) { InPlace(x, false) }

// Inverse is InPlace(x, true).
func Inverse(x []complex128) { InPlace(x, true) }

// Rows applies a forward FFT to each length-w row of a row-major matrix
// stored in data (len must be a multiple of w) and returns the total flop
// count for cost accounting.
func Rows(data []complex128, w int) float64 {
	if w <= 0 || len(data)%w != 0 {
		panic(fmt.Sprintf("fft: Rows with width %d on %d elements", w, len(data)))
	}
	rows := len(data) / w
	for r := 0; r < rows; r++ {
		Forward(data[r*w : (r+1)*w])
	}
	return float64(rows) * Flops(w)
}

// HistFlops is the modeled per-element cost of histogramming (magnitude,
// compare, increment).
const HistFlops = 8

// Histogram bins the magnitudes of data into bins buckets over [0, max);
// values >= max land in the last bucket. It returns the counts and the flop
// cost.
func Histogram(data []complex128, bins int, max float64) ([]int64, float64) {
	if bins <= 0 || max <= 0 {
		panic(fmt.Sprintf("fft: Histogram with bins=%d max=%g", bins, max))
	}
	counts := make([]int64, bins)
	scale := float64(bins) / max
	for _, v := range data {
		m := cmplx.Abs(v)
		b := int(m * scale)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, float64(len(data)) * HistFlops
}

// ScaleFlops is the per-element cost of the radar scaling step.
const ScaleFlops = 2

// Scale multiplies every element by s and returns the flop cost.
func Scale(data []complex128, s float64) float64 {
	c := complex(s, 0)
	for i := range data {
		data[i] *= c
	}
	return float64(len(data)) * ScaleFlops
}

// ThresholdFlops is the per-element cost of the radar thresholding step.
const ThresholdFlops = 3

// Threshold zeroes elements with magnitude below t, returning the number of
// surviving elements and the flop cost.
func Threshold(data []complex128, t float64) (kept int, flops float64) {
	t2 := t * t
	for i, v := range data {
		re, im := real(v), imag(v)
		if re*re+im*im < t2 {
			data[i] = 0
		} else {
			kept++
		}
	}
	return kept, float64(len(data)) * ThresholdFlops
}
