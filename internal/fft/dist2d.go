package fft

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/machine"
)

// Dist2D computes the 2D FFT of a distributed N-by-N array using the
// transpose method the sensor applications inline: row FFTs, corner turn,
// row FFTs, corner turn back. src and dst must be row-block 2D arrays of
// the same square shape over the same group; work and work2 are scratch
// arrays with the same layout (callers reuse them across data sets). The
// result lands in dst in natural orientation. Returns nothing; cost is
// charged to the calling processors.
//
// Sequence: dst = F_cols(F_rows(src)) computed as
// transpose(F_rows(transpose(F_rows(src)))).
func Dist2D(p *machine.Proc, dst, src, work *dist.Array[complex128], inverse bool) {
	shape := src.Layout().Shape()
	if len(shape) != 2 || shape[0] != shape[1] {
		panic(fmt.Sprintf("fft: Dist2D needs a square 2D array, got %v", shape))
	}
	n := shape[0]
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: Dist2D size %d is not a power of two", n))
	}
	// Row FFTs on the source, into dst's storage via local compute: copy
	// src locals to work, transform, transpose into dst, transform again,
	// transpose back.
	if work.IsMember() {
		copy(work.Local(), src.Local())
		p.Compute(rowsInPlace(work, inverse))
	}
	dist.Transpose2D(p, dst, work)
	if dst.IsMember() {
		p.Compute(rowsInPlace(dst, inverse))
	}
	dist.Transpose2D(p, work, dst)
	if work.IsMember() {
		copy(dst.Local(), work.Local())
	}
}

func rowsInPlace(a *dist.Array[complex128], inverse bool) float64 {
	local := a.Local()
	if len(local) == 0 {
		return 0
	}
	w := a.LocalShape()[1]
	rows := len(local) / w
	for r := 0; r < rows; r++ {
		InPlace(local[r*w:(r+1)*w], inverse)
	}
	return float64(rows) * Flops(w)
}
