package par

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.CostModel{
		FlopRate: 1e6, Alpha: 1e-4, Beta: 1e-7, SendOverhead: 1e-5, IORate: 1e6,
	})
}

func TestRangePartitions(t *testing.T) {
	f := func(nSeed, pSeed uint8) bool {
		n := int(nSeed)
		size := int(pSeed)%16 + 1
		covered := 0
		prevHi := 0
		for r := 0; r < size; r++ {
			lo, hi := Range(n, size, r)
			if lo != prevHi {
				return false // gaps or overlaps
			}
			if hi-lo < 0 || hi-lo > n/size+1 {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeBalance(t *testing.T) {
	lo0, hi0 := Range(10, 3, 0)
	lo1, hi1 := Range(10, 3, 1)
	lo2, hi2 := Range(10, 3, 2)
	if hi0-lo0 != 4 || hi1-lo1 != 3 || hi2-lo2 != 3 {
		t.Errorf("ranges: [%d,%d) [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1, lo2, hi2)
	}
}

func TestForCoversAllIterations(t *testing.T) {
	n := 4
	m := testMachine(n)
	hits := make([]int, 103)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		For(p, g, len(hits), func(i int) {
			<-mu
			hits[i]++
			mu <- struct{}{}
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Errorf("iteration %d executed %d times", i, h)
		}
	}
}

func TestForNonMemberSkips(t *testing.T) {
	m := testMachine(3)
	stats := m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1})
		For(p, sub, 10, func(i int) { p.Compute(1000) })
	})
	if stats.Procs[2].Finish != 0 {
		t.Errorf("non-member advanced its clock: %g", stats.Procs[2].Finish)
	}
}

func TestDoMergeSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			got := DoMerge(p, g, 100, 0,
				func(acc, i int) int { return acc + i },
				func(a, b int) int { return a + b })
			if got != 4950 {
				t.Errorf("n=%d: sum = %d", n, got)
			}
		})
	}
}

func TestSumFloat64(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		got := SumFloat64(p, g, 10, func(i int) float64 { return float64(i) * 0.5 })
		if got != 22.5 {
			t.Errorf("sum = %g", got)
		}
	})
}

func TestMinIndex(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		v, i := MinIndex(p, g, 50, func(i int) float64 {
			return float64((i - 33) * (i - 33))
		})
		if i != 33 || v != 0 {
			t.Errorf("min = %g at %d, want 0 at 33", v, i)
		}
	})
}

func TestMinIndexTieBreaksLow(t *testing.T) {
	n := 3
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		_, i := MinIndex(p, g, 30, func(i int) float64 { return 7 })
		if i != 0 {
			t.Errorf("tie broken to %d, want 0", i)
		}
	})
}

func TestDoMergeNonMember(t *testing.T) {
	m := testMachine(3)
	m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1})
		got := DoMerge(p, sub, 10, 0,
			func(acc, i int) int { return acc + 1 },
			func(a, b int) int { return a + b })
		if p.ID() == 2 && got != 0 {
			t.Errorf("non-member got %d", got)
		}
		if p.ID() != 2 && got != 10 {
			t.Errorf("member got %d", got)
		}
	})
}

func TestForCyclicCoversAll(t *testing.T) {
	n := 3
	m := testMachine(n)
	hits := make([]int, 50)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	owner := make([]int, 50)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		ForCyclic(p, g, len(hits), func(i int) {
			<-gate
			hits[i]++
			owner[i] = p.ID()
			gate <- struct{}{}
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Errorf("iteration %d ran %d times", i, h)
		}
		if owner[i] != i%n {
			t.Errorf("iteration %d ran on proc %d, want %d (cyclic)", i, owner[i], i%n)
		}
	}
}

func TestForCyclicNonMember(t *testing.T) {
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0})
		ran := 0
		ForCyclic(p, sub, 10, func(int) { ran++ })
		if p.ID() == 1 && ran != 0 {
			t.Errorf("non-member ran %d iterations", ran)
		}
	})
}

func TestDoMergeCyclicMatchesBlock(t *testing.T) {
	n := 4
	m := testMachine(n)
	m.Run(func(p *machine.Proc) {
		g := group.World(n)
		blk := DoMerge(p, g, 100, 0,
			func(acc, i int) int { return acc + i*i },
			func(a, b int) int { return a + b })
		cyc := DoMergeCyclic(p, g, 100, 0,
			func(acc, i int) int { return acc + i*i },
			func(a, b int) int { return a + b })
		if blk != cyc {
			t.Errorf("block %d != cyclic %d", blk, cyc)
		}
	})
}
