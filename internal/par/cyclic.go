package par

import (
	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// ForCyclic runs body(i) for the calling processor's share of [0, n) dealt
// round-robin over g — the cyclic schedule HPF's INDEPENDENT loops use when
// iteration costs vary systematically with the index (block scheduling
// would then load-imbalance).
func ForCyclic(p *machine.Proc, g *group.Group, n int, body func(i int)) {
	r, ok := g.RankOf(p.ID())
	if !ok {
		return
	}
	for i := r; i < n; i += g.Size() {
		body(i)
	}
}

// DoMergeCyclic is DoMerge with a cyclic iteration schedule.
func DoMergeCyclic[T any](p *machine.Proc, g *group.Group, n int, init T,
	body func(acc T, i int) T, op func(a, b T) T) T {
	r, ok := g.RankOf(p.ID())
	if !ok {
		var zero T
		return zero
	}
	acc := init
	for i := r; i < n; i += g.Size() {
		acc = body(acc, i)
	}
	return comm.AllReduce(p, g, acc, op)
}
