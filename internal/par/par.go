// Package par implements Fx's loop-level data parallelism: block-partitioned
// parallel loops and do&merge-style reductions over the current processor
// group (Yang et al., "Do&merge: Integrating parallel loops and
// reductions"). These are thin but faithful: iterations are divided among
// the group, each processor runs its share, and per-processor partial
// results are merged with a user-supplied associative operation.
package par

import (
	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Range returns the block-partitioned iteration range [lo, hi) of processor
// rank r among size processors for a global range of n iterations. Ranges
// partition [0, n) and differ in length by at most one.
func Range(n, size, r int) (lo, hi int) {
	base := n / size
	extra := n % size
	lo = r*base + min(r, extra)
	hi = lo + base
	if r < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// For runs body(i) for the calling processor's share of the global
// iteration space [0, n), block-partitioned over g. It does not synchronize;
// follow with a barrier or a merge if the loop carries a dependence out.
func For(p *machine.Proc, g *group.Group, n int, body func(i int)) {
	r, ok := g.RankOf(p.ID())
	if !ok {
		return
	}
	lo, hi := Range(n, g.Size(), r)
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// DoMerge runs body over this processor's share of [0, n) accumulating into
// a value of type T seeded with init, then merges the per-processor partial
// values across g with the associative op, returning the merged result on
// every member (zero value on non-members).
func DoMerge[T any](p *machine.Proc, g *group.Group, n int, init T,
	body func(acc T, i int) T, op func(a, b T) T) T {
	r, ok := g.RankOf(p.ID())
	if !ok {
		var zero T
		return zero
	}
	lo, hi := Range(n, g.Size(), r)
	acc := init
	for i := lo; i < hi; i++ {
		acc = body(acc, i)
	}
	return comm.AllReduce(p, g, acc, op)
}

// SumFloat64 is DoMerge specialized to summation of float64 contributions.
func SumFloat64(p *machine.Proc, g *group.Group, n int, f func(i int) float64) float64 {
	return DoMerge(p, g, n, 0,
		func(acc float64, i int) float64 { return acc + f(i) },
		func(a, b float64) float64 { return a + b })
}

// MinIndex finds the global (value, index) minimum of f over [0, n), with
// ties broken toward the lower index. Every member gets the result.
func MinIndex(p *machine.Proc, g *group.Group, n int, f func(i int) float64) (float64, int) {
	type vi struct {
		V float64
		I int
	}
	r, ok := g.RankOf(p.ID())
	if !ok {
		return 0, -1
	}
	lo, hi := Range(n, g.Size(), r)
	best := vi{V: 0, I: -1}
	for i := lo; i < hi; i++ {
		v := f(i)
		if best.I < 0 || v < best.V || (v == best.V && i < best.I) {
			best = vi{V: v, I: i}
		}
	}
	merged := comm.AllReduce(p, g, best, func(a, b vi) vi {
		switch {
		case a.I < 0:
			return b
		case b.I < 0:
			return a
		case b.V < a.V, b.V == a.V && b.I < a.I:
			return b
		default:
			return a
		}
	})
	return merged.V, merged.I
}
