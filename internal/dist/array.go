package dist

import (
	"fmt"

	"fxpar/internal/machine"
)

// Array is a distributed array of element type T. Every processor of an
// SPMD program may hold the descriptor; only members of the owning group
// hold local storage. An Array value is the per-processor view: methods
// taking no rank argument operate on the calling processor's local part.
type Array[T any] struct {
	l *Layout
	p *machine.Proc
	// rank is this processor's rank in the owning group, or -1.
	rank int
	// localShape caches LocalShape(rank); nil for non-members.
	localShape []int
	// data is the local part in row-major order of local indices.
	data []T
}

// New allocates a distributed array with the given layout. Members of the
// layout's group allocate their local part (zero-valued); other processors
// get a storage-less descriptor, mirroring the Fx compiler's dynamic
// allocation in SPMD code.
func New[T any](p *machine.Proc, l *Layout) *Array[T] {
	a := &Array[T]{l: l, p: p, rank: -1}
	if r, ok := l.g.RankOf(p.ID()); ok {
		a.rank = r
		a.localShape = l.LocalShape(r)
		a.data = make([]T, l.LocalCount(r))
	}
	return a
}

// Layout returns the array's layout.
func (a *Array[T]) Layout() *Layout { return a.l }

// IsMember reports whether the calling processor owns part of the array.
func (a *Array[T]) IsMember() bool { return a.rank >= 0 }

// Rank returns this processor's rank in the owning group, or -1.
func (a *Array[T]) Rank() int { return a.rank }

// Local returns this processor's local part (row-major local order); nil on
// non-members. Mutating it mutates the array.
func (a *Array[T]) Local() []T { return a.data }

// LocalShape returns this processor's local extents; nil on non-members.
func (a *Array[T]) LocalShape() []int { return append([]int(nil), a.localShape...) }

// Has reports whether this processor owns the global index.
func (a *Array[T]) Has(idx ...int) bool {
	return a.rank >= 0 && a.l.OwnerRank(idx...) == a.rank
}

// At returns the element at a global index; it panics if this processor is
// not the owner (remote access requires explicit communication, as in any
// distributed-memory model).
func (a *Array[T]) At(idx ...int) T {
	return a.data[a.ownedOffset(idx)]
}

// Set stores the element at a global index owned by this processor.
func (a *Array[T]) Set(v T, idx ...int) {
	a.data[a.ownedOffset(idx)] = v
}

func (a *Array[T]) ownedOffset(idx []int) int {
	if a.rank < 0 {
		panic(fmt.Sprintf("dist: processor %d accessed %v of an array it holds no part of (%v)", a.p.ID(), idx, a.l))
	}
	if own := a.l.OwnerRank(idx...); own != a.rank {
		panic(fmt.Sprintf("dist: processor %d (rank %d) accessed %v owned by rank %d", a.p.ID(), a.rank, idx, own))
	}
	return a.l.localOffset(idx, a.localShape)
}

// GlobalOfLocal converts a local row-major offset to its global index.
func (a *Array[T]) GlobalOfLocal(offset int) []int {
	if a.rank < 0 {
		panic("dist: GlobalOfLocal on non-member")
	}
	return a.l.GlobalOfLocal(a.rank, offset)
}

// FillFunc sets every locally owned element to f(globalIndex). Members only;
// non-members return immediately. The index slice passed to f is reused
// across calls.
func (a *Array[T]) FillFunc(f func(idx []int) T) {
	if a.rank < 0 {
		return
	}
	a.eachLocal(func(off int, idx []int) {
		a.data[off] = f(idx)
	})
}

// eachLocal visits every local element in row-major local order with its
// global index.
func (a *Array[T]) eachLocal(visit func(off int, idx []int)) {
	nd := len(a.localShape)
	li := make([]int, nd)
	gi := make([]int, nd)
	c := a.l.coordsOfRank(a.rank)
	total := len(a.data)
	for off := 0; off < total; off++ {
		for d := 0; d < nd; d++ {
			gi[d] = a.l.dims[d].globalOf(c[d], li[d])
		}
		visit(off, gi)
		for d := nd - 1; d >= 0; d-- {
			li[d]++
			if li[d] < a.localShape[d] {
				break
			}
			li[d] = 0
		}
	}
}

// LocalRow returns the local storage for local row r of a rank-2 array as a
// mutable slice. It requires the second dimension to be collapsed or the
// local row to be contiguous (always true for row-major local storage).
func (a *Array[T]) LocalRow(r int) []T {
	if len(a.localShape) != 2 {
		panic("dist: LocalRow on non-2D array")
	}
	w := a.localShape[1]
	return a.data[r*w : (r+1)*w]
}

// NumLocalRows returns the number of local rows of a rank-2 array.
func (a *Array[T]) NumLocalRows() int {
	if a.rank < 0 {
		return 0
	}
	if len(a.localShape) != 2 {
		panic("dist: NumLocalRows on non-2D array")
	}
	return a.localShape[0]
}

// GlobalRowOfLocal returns the global row index of local row r (rank-2,
// first dimension distributed).
func (a *Array[T]) GlobalRowOfLocal(r int) int {
	c := a.l.coordsOfRank(a.rank)
	return a.l.dims[0].globalOf(c[0], r)
}
