package dist

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
)

func mkDim(t *testing.T, n, q int, a Axis) dim {
	t.Helper()
	d, err := newDim(n, q, a)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDimBlockBasics(t *testing.T) {
	d := mkDim(t, 10, 4, BlockAxis()) // b = 3
	wantOwner := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range wantOwner {
		if got := d.ownerOf(i); got != w {
			t.Errorf("ownerOf(%d) = %d, want %d", i, got, w)
		}
	}
	counts := []int{3, 3, 3, 1}
	for c, w := range counts {
		if got := d.localCount(c); got != w {
			t.Errorf("localCount(%d) = %d, want %d", c, got, w)
		}
	}
}

func TestDimBlockEmptyCoordinate(t *testing.T) {
	d := mkDim(t, 5, 4, BlockAxis()) // b=2: counts 2,2,1,0
	if got := d.localCount(3); got != 0 {
		t.Errorf("localCount(3) = %d, want 0", got)
	}
}

func TestDimCyclic(t *testing.T) {
	d := mkDim(t, 7, 3, CyclicAxis())
	for i := 0; i < 7; i++ {
		if got := d.ownerOf(i); got != i%3 {
			t.Errorf("ownerOf(%d) = %d", i, got)
		}
	}
	if d.localCount(0) != 3 || d.localCount(1) != 2 || d.localCount(2) != 2 {
		t.Errorf("counts = %d,%d,%d", d.localCount(0), d.localCount(1), d.localCount(2))
	}
}

func TestDimBlockCyclic(t *testing.T) {
	d := mkDim(t, 10, 2, BlockCyclicAxis(3))
	// Blocks: [0,3)->0 [3,6)->1 [6,9)->0 [9,10)->1
	owners := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	for i, w := range owners {
		if got := d.ownerOf(i); got != w {
			t.Errorf("ownerOf(%d) = %d, want %d", i, got, w)
		}
	}
	if d.localCount(0) != 6 || d.localCount(1) != 4 {
		t.Errorf("counts = %d,%d", d.localCount(0), d.localCount(1))
	}
}

// Property: for every kind, (ownerOf, localOf) and globalOf are inverse, the
// per-coordinate counts partition the extent, and local->global is strictly
// increasing.
func TestDimRoundTripProperty(t *testing.T) {
	f := func(nSeed, qSeed, bSeed uint8, kindSeed uint8) bool {
		n := int(nSeed)%100 + 1
		q := int(qSeed)%8 + 1
		var a Axis
		switch kindSeed % 4 {
		case 0:
			a, q = CollapsedAxis(), 1
		case 1:
			a = BlockAxis()
		case 2:
			a = CyclicAxis()
		default:
			a = BlockCyclicAxis(int(bSeed)%5 + 1)
		}
		d, err := newDim(n, q, a)
		if err != nil {
			return false
		}
		total := 0
		for c := 0; c < q; c++ {
			cnt := d.localCount(c)
			total += cnt
			prev := -1
			for l := 0; l < cnt; l++ {
				g := d.globalOf(c, l)
				if g <= prev {
					return false // not strictly increasing
				}
				prev = g
				if g < 0 || g >= n {
					return false
				}
				if d.ownerOf(g) != c || d.localOf(g) != l {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	g := group.World(4)
	if _, err := NewLayout(nil, []int{4}, []Axis{BlockAxis()}, []int{4}); err == nil {
		t.Error("nil group accepted")
	}
	if _, err := NewLayout(g, []int{4, 4}, []Axis{BlockAxis()}, []int{4}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := NewLayout(g, []int{4}, []Axis{BlockAxis()}, []int{3}); err == nil {
		t.Error("grid/group mismatch accepted")
	}
	if _, err := NewLayout(g, []int{4, 4}, []Axis{CollapsedAxis(), BlockAxis()}, []int{2, 2}); err == nil {
		t.Error("collapsed dim with grid > 1 accepted")
	}
	if _, err := NewLayout(g, []int{0}, []Axis{BlockAxis()}, []int{4}); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewLayout(g, []int{4}, []Axis{BlockCyclicAxis(0)}, []int{4}); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestLayoutOwnerAndLocal2D(t *testing.T) {
	g := group.World(4)
	l := RowBlock2D(g, 8, 6) // 2 rows per proc
	if got := l.OwnerRank(0, 3); got != 0 {
		t.Errorf("owner(0,3) = %d", got)
	}
	if got := l.OwnerRank(7, 0); got != 3 {
		t.Errorf("owner(7,0) = %d", got)
	}
	ls := l.LocalShape(1)
	if ls[0] != 2 || ls[1] != 6 {
		t.Errorf("local shape = %v", ls)
	}
	if got := l.LocalCount(2); got != 12 {
		t.Errorf("local count = %d", got)
	}
}

func TestLayoutGlobalOfLocalRoundTrip(t *testing.T) {
	g := group.World(6)
	l := MustLayout(g, []int{9, 10},
		[]Axis{BlockAxis(), CyclicAxis()}, []int{3, 2})
	for r := 0; r < 6; r++ {
		cnt := l.LocalCount(r)
		for off := 0; off < cnt; off++ {
			gi := l.GlobalOfLocal(r, off)
			if own := l.OwnerRank(gi...); own != r {
				t.Fatalf("rank %d offset %d -> %v owned by %d", r, off, gi, own)
			}
			if back := l.localOffset(gi, l.LocalShape(r)); back != off {
				t.Fatalf("rank %d offset %d -> %v -> offset %d", r, off, gi, back)
			}
		}
	}
}

// Property: every global index of a random 2D layout has exactly one owner,
// and local offsets are a bijection.
func TestLayoutPartitionProperty(t *testing.T) {
	f := func(rows, cols uint8, gridSeed uint8, kindA, kindB uint8) bool {
		r := int(rows)%12 + 1
		c := int(cols)%12 + 1
		grids := [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 1}, {2, 3}}
		grid := grids[int(gridSeed)%len(grids)]
		axisFor := func(k uint8, q int) Axis {
			if q == 1 {
				switch k % 2 {
				case 0:
					return CollapsedAxis()
				default:
					return BlockAxis()
				}
			}
			switch k % 3 {
			case 0:
				return BlockAxis()
			case 1:
				return CyclicAxis()
			default:
				return BlockCyclicAxis(2)
			}
		}
		g := group.World(grid[0] * grid[1])
		l, err := NewLayout(g, []int{r, c},
			[]Axis{axisFor(kindA, grid[0]), axisFor(kindB, grid[1])},
			[]int{grid[0], grid[1]})
		if err != nil {
			return false
		}
		seen := make(map[[2]int]bool)
		totalLocal := 0
		for rank := 0; rank < g.Size(); rank++ {
			cnt := l.LocalCount(rank)
			totalLocal += cnt
			for off := 0; off < cnt; off++ {
				gi := l.GlobalOfLocal(rank, off)
				key := [2]int{gi[0], gi[1]}
				if seen[key] {
					return false
				}
				seen[key] = true
				if l.OwnerRank(gi...) != rank {
					return false
				}
			}
		}
		return totalLocal == r*c && len(seen) == r*c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSameDistribution(t *testing.T) {
	g := group.World(4)
	a := RowBlock2D(g, 8, 4)
	b := RowBlock2D(g, 8, 4)
	if !SameDistribution(a, b) {
		t.Error("identical layouts reported different")
	}
	c := ColBlock2D(g, 8, 4)
	if SameDistribution(a, c) {
		t.Error("row vs col block reported same")
	}
	h := group.MustNew([]int{3, 2, 1, 0})
	d := RowBlock2D(h, 8, 4)
	if SameDistribution(a, d) {
		t.Error("different physical mapping reported same")
	}
}
