// Package dist implements HPF-style distributed arrays over processor
// groups: BLOCK, CYCLIC and BLOCK_CYCLIC distributions, local/global index
// arithmetic, and the parent-scope assignment (redistribution) operation
// with minimal-processor-subset participation that Section 4 of the paper
// identifies as essential for pipelined task parallelism.
//
// An array is mapped onto a processor *grid* laid over its owning group; a
// distribution kind per dimension determines which grid coordinate owns each
// global index. Every processor of an SPMD program holds an Array descriptor;
// only members of the owning group hold local storage (matching the Fx
// compiler's dynamic allocation strategy for SPMD code generation).
package dist

import (
	"fmt"

	"fxpar/internal/group"
)

// Kind is a per-dimension distribution kind.
type Kind int

const (
	// Collapsed dimensions are not distributed: the grid extent must be 1
	// and the single grid coordinate owns the whole dimension.
	Collapsed Kind = iota
	// Block assigns each grid coordinate one contiguous chunk of
	// ceil(n/q) indices.
	Block
	// Cyclic deals indices round-robin: coordinate k owns {k, k+q, ...}.
	Cyclic
	// BlockCyclic deals fixed-size blocks round-robin.
	BlockCyclic
)

func (k Kind) String() string {
	switch k {
	case Collapsed:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "BLOCK_CYCLIC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Axis describes the distribution of one dimension.
type Axis struct {
	Kind Kind
	// B is the block size for BlockCyclic; ignored otherwise.
	B int
}

// BlockAxis, CyclicAxis and CollapsedAxis are convenience constructors.
func BlockAxis() Axis            { return Axis{Kind: Block} }
func CyclicAxis() Axis           { return Axis{Kind: Cyclic} }
func CollapsedAxis() Axis        { return Axis{Kind: Collapsed} }
func BlockCyclicAxis(b int) Axis { return Axis{Kind: BlockCyclic, B: b} }

// dim holds the resolved per-dimension mapping: global extent n distributed
// over q grid coordinates. off is the alignment offset: index i of this
// array occupies position i+off of the distribution template (HPF ALIGN),
// so ownership formulas evaluate at i+off while local storage stays compact
// over [0, n).
type dim struct {
	n, q int
	kind Kind
	b    int // block size: ceil(template n/q) for Block, axis.B for BlockCyclic, template n for Collapsed
	off  int
}

func newDim(n, q int, a Axis) (dim, error) {
	if n <= 0 {
		return dim{}, fmt.Errorf("dist: non-positive extent %d", n)
	}
	if q <= 0 {
		return dim{}, fmt.Errorf("dist: non-positive grid extent %d", q)
	}
	d := dim{n: n, q: q, kind: a.Kind}
	switch a.Kind {
	case Collapsed:
		if q != 1 {
			return dim{}, fmt.Errorf("dist: collapsed dimension with grid extent %d", q)
		}
		d.b = n
	case Block:
		d.b = (n + q - 1) / q
	case Cyclic:
		d.b = 1
	case BlockCyclic:
		if a.B <= 0 {
			return dim{}, fmt.Errorf("dist: BLOCK_CYCLIC needs positive block size, got %d", a.B)
		}
		d.b = a.B
	default:
		return dim{}, fmt.Errorf("dist: unknown distribution kind %d", a.Kind)
	}
	return d, nil
}

// ownerOf returns the grid coordinate owning global index i.
func (d dim) ownerOf(i int) int {
	switch d.kind {
	case Collapsed:
		return 0
	case Block:
		return (i + d.off) / d.b
	case Cyclic:
		return (i + d.off) % d.q
	default: // BlockCyclic (off always 0)
		return (i / d.b) % d.q
	}
}

// cycStart returns, for a Cyclic dim, the smallest array index owned by c.
func (d dim) cycStart(c int) int {
	return ((c-d.off)%d.q + d.q) % d.q
}

// blkStart returns, for a Block dim, the smallest array index owned by c
// (may exceed n when c owns nothing).
func (d dim) blkStart(c int) int {
	lo := c*d.b - d.off
	if lo < 0 {
		lo = 0
	}
	return lo
}

// localOf returns the local index of global index i on its owner.
func (d dim) localOf(i int) int {
	switch d.kind {
	case Collapsed:
		return i
	case Block:
		return i - d.blkStart(d.ownerOf(i))
	case Cyclic:
		return (i - d.cycStart(d.ownerOf(i))) / d.q
	default: // BlockCyclic
		blk := i / d.b
		return (blk/d.q)*d.b + i%d.b
	}
}

// globalOf returns the global index of local index l on grid coordinate c.
func (d dim) globalOf(c, l int) int {
	switch d.kind {
	case Collapsed:
		return l
	case Block:
		return d.blkStart(c) + l
	case Cyclic:
		return d.cycStart(c) + l*d.q
	default: // BlockCyclic
		blk := l / d.b
		return (blk*d.q+c)*d.b + l%d.b
	}
}

// localCount returns how many global indices grid coordinate c owns.
func (d dim) localCount(c int) int {
	switch d.kind {
	case Collapsed:
		return d.n
	case Block:
		lo := d.blkStart(c)
		hi := (c+1)*d.b - d.off
		if hi > d.n {
			hi = d.n
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	case Cyclic:
		f := d.cycStart(c)
		if f >= d.n {
			return 0
		}
		return (d.n - f + d.q - 1) / d.q
	default: // BlockCyclic
		full := d.n / d.b           // complete blocks
		count := (full / d.q) * d.b // complete block rounds
		rem := full % d.q
		if c < rem {
			count += d.b
		}
		if tail := d.n % d.b; tail > 0 && full%d.q == c {
			count += tail
		}
		return count
	}
}

// Layout maps a global index space onto a processor grid over a group.
type Layout struct {
	shape []int
	axes  []Axis
	grid  []int
	dims  []dim
	g     *group.Group
	// gridStride[d] converts grid coordinates to a group rank, row-major.
	gridStride []int
}

// NewLayout creates a layout of the given global shape over g, with one
// Axis and one grid extent per dimension. The product of grid extents must
// equal the group size.
func NewLayout(g *group.Group, shape []int, axes []Axis, grid []int) (*Layout, error) {
	if g == nil || g.Size() == 0 {
		return nil, fmt.Errorf("dist: layout needs a non-empty group")
	}
	if len(shape) == 0 || len(shape) != len(axes) || len(shape) != len(grid) {
		return nil, fmt.Errorf("dist: shape/axes/grid rank mismatch: %d/%d/%d", len(shape), len(axes), len(grid))
	}
	prod := 1
	for _, q := range grid {
		if q <= 0 {
			return nil, fmt.Errorf("dist: non-positive grid extent %d", q)
		}
		prod *= q
	}
	if prod != g.Size() {
		return nil, fmt.Errorf("dist: grid %v has %d cells but group has %d processors", grid, prod, g.Size())
	}
	l := &Layout{
		shape: append([]int(nil), shape...),
		axes:  append([]Axis(nil), axes...),
		grid:  append([]int(nil), grid...),
		g:     g,
	}
	l.dims = make([]dim, len(shape))
	for i := range shape {
		d, err := newDim(shape[i], grid[i], axes[i])
		if err != nil {
			return nil, fmt.Errorf("dist: dimension %d: %w", i, err)
		}
		l.dims[i] = d
	}
	l.gridStride = make([]int, len(grid))
	s := 1
	for i := len(grid) - 1; i >= 0; i-- {
		l.gridStride[i] = s
		s *= grid[i]
	}
	return l, nil
}

// MustLayout is NewLayout but panics on error.
func MustLayout(g *group.Group, shape []int, axes []Axis, grid []int) *Layout {
	l, err := NewLayout(g, shape, axes, grid)
	if err != nil {
		panic(err)
	}
	return l
}

// NewLayout1D distributes a vector of n elements over all of g.
func NewLayout1D(g *group.Group, n int, a Axis) (*Layout, error) {
	return NewLayout(g, []int{n}, []Axis{a}, []int{g.Size()})
}

// RowBlock2D distributes rows of an r-by-c matrix in BLOCK fashion over g,
// with columns collapsed — the workhorse layout of the sensor applications
// (each processor owns whole contiguous rows).
func RowBlock2D(g *group.Group, r, c int) *Layout {
	return MustLayout(g, []int{r, c}, []Axis{BlockAxis(), CollapsedAxis()}, []int{g.Size(), 1})
}

// ColBlock2D distributes columns of an r-by-c matrix in BLOCK fashion.
func ColBlock2D(g *group.Group, r, c int) *Layout {
	return MustLayout(g, []int{r, c}, []Axis{CollapsedAxis(), BlockAxis()}, []int{1, g.Size()})
}

// NewAligned returns a layout for an array of the given shape aligned into
// base: element I of the new array lives at position I+offsets of base's
// distribution template, and is therefore owned by the same processor that
// owns that base element — the HPF ALIGN directive with integer offsets
// (Section 2.1: "alignment directives can be used only among variables
// mapped to the same subgroup"; the aligned array shares base's group).
// The aligned box must fit inside base; BLOCK_CYCLIC templates do not
// support nonzero offsets.
func NewAligned(base *Layout, shape, offsets []int) (*Layout, error) {
	nd := base.Rank()
	if len(shape) != nd || len(offsets) != nd {
		return nil, fmt.Errorf("dist: NewAligned rank mismatch: base %d, shape %d, offsets %d", nd, len(shape), len(offsets))
	}
	l := &Layout{
		shape:      append([]int(nil), shape...),
		axes:       append([]Axis(nil), base.axes...),
		grid:       append([]int(nil), base.grid...),
		g:          base.g,
		gridStride: append([]int(nil), base.gridStride...),
		dims:       make([]dim, nd),
	}
	for d := 0; d < nd; d++ {
		if shape[d] <= 0 {
			return nil, fmt.Errorf("dist: NewAligned non-positive extent %d in dimension %d", shape[d], d)
		}
		if offsets[d] < 0 || offsets[d]+shape[d] > base.shape[d] {
			return nil, fmt.Errorf("dist: NewAligned box [%d,%d) outside base extent %d in dimension %d",
				offsets[d], offsets[d]+shape[d], base.shape[d], d)
		}
		bd := base.dims[d]
		if bd.kind == BlockCyclic && offsets[d] != 0 {
			return nil, fmt.Errorf("dist: NewAligned does not support offsets into BLOCK_CYCLIC dimension %d", d)
		}
		l.dims[d] = dim{n: shape[d], q: bd.q, kind: bd.kind, b: bd.b, off: bd.off + offsets[d]}
	}
	return l, nil
}

// Rank returns the number of dimensions.
func (l *Layout) Rank() int { return len(l.shape) }

// Shape returns a copy of the global extents.
func (l *Layout) Shape() []int { return append([]int(nil), l.shape...) }

// Grid returns a copy of the processor grid extents.
func (l *Layout) Grid() []int { return append([]int(nil), l.grid...) }

// Group returns the owning group.
func (l *Layout) Group() *group.Group { return l.g }

// Size returns the number of global elements.
func (l *Layout) Size() int {
	n := 1
	for _, s := range l.shape {
		n *= s
	}
	return n
}

// coordsOfRank converts a group rank to grid coordinates (row-major).
func (l *Layout) coordsOfRank(r int) []int {
	c := make([]int, len(l.grid))
	for i := range l.grid {
		c[i] = (r / l.gridStride[i]) % l.grid[i]
	}
	return c
}

// rankOfCoords converts grid coordinates to a group rank.
func (l *Layout) rankOfCoords(c []int) int {
	r := 0
	for i := range c {
		r += c[i] * l.gridStride[i]
	}
	return r
}

// OwnerRank returns the group rank owning the global index.
func (l *Layout) OwnerRank(idx ...int) int {
	l.checkIndex(idx)
	r := 0
	for i, x := range idx {
		r += l.dims[i].ownerOf(x) * l.gridStride[i]
	}
	return r
}

// LocalShape returns the local extents on the given group rank.
func (l *Layout) LocalShape(rank int) []int {
	c := l.coordsOfRank(rank)
	out := make([]int, len(l.dims))
	for i, d := range l.dims {
		out[i] = d.localCount(c[i])
	}
	return out
}

// LocalCount returns the number of elements the given group rank owns.
func (l *Layout) LocalCount(rank int) int {
	n := 1
	for _, e := range l.LocalShape(rank) {
		n *= e
	}
	return n
}

// LocalOf returns the rank-local (row-major) offset of a global index; the
// caller must ensure the index is owned by that rank.
func (l *Layout) localOffset(idx []int, localShape []int) int {
	off := 0
	for i, x := range idx {
		off = off*localShape[i] + l.dims[i].localOf(x)
	}
	return off
}

// GlobalOfLocal converts a rank-local row-major offset back to a global
// index for the given rank.
func (l *Layout) GlobalOfLocal(rank, offset int) []int {
	c := l.coordsOfRank(rank)
	ls := l.LocalShape(rank)
	idx := make([]int, len(l.dims))
	for i := len(l.dims) - 1; i >= 0; i-- {
		li := offset % ls[i]
		offset /= ls[i]
		idx[i] = l.dims[i].globalOf(c[i], li)
	}
	return idx
}

func (l *Layout) checkIndex(idx []int) {
	if len(idx) != len(l.shape) {
		panic(fmt.Sprintf("dist: index rank %d for layout rank %d", len(idx), len(l.shape)))
	}
	for i, x := range idx {
		if x < 0 || x >= l.shape[i] {
			panic(fmt.Sprintf("dist: index %v out of shape %v", idx, l.shape))
		}
	}
}

// SameDistribution reports whether two layouts place every global index on
// the same *physical* processor (groups may differ as objects).
func SameDistribution(a, b *Layout) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	if a.g.Size() != b.g.Size() {
		return false
	}
	for r := 0; r < a.g.Size(); r++ {
		if a.g.Phys(r) != b.g.Phys(r) {
			return false
		}
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] || a.grid[i] != b.grid[i] {
			return false
		}
	}
	return true
}

func (l *Layout) String() string {
	return fmt.Sprintf("layout(shape=%v dist=%v grid=%v over %d procs)", l.shape, l.axes, l.grid, l.g.Size())
}
