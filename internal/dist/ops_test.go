package dist

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

func TestCShift1D(t *testing.T) {
	for _, shift := range []int{0, 1, 3, -2, 13, -13} {
		m := testMachine(3)
		m.Run(func(p *machine.Proc) {
			g := group.World(3)
			src := New[float64](p, MustLayout(g, []int{13}, []Axis{BlockAxis()}, []int{3}))
			dst := New[float64](p, MustLayout(g, []int{13}, []Axis{BlockAxis()}, []int{3}))
			src.FillFunc(func(idx []int) float64 { return float64(idx[0]) })
			CShift(p, dst, src, 0, shift)
			dst.eachLocal(func(off int, idx []int) {
				want := float64(((idx[0]+shift)%13 + 13) % 13)
				if dst.Local()[off] != want {
					t.Errorf("shift %d: dst[%d] = %v, want %v", shift, idx[0], dst.Local()[off], want)
				}
			})
		})
	}
}

func TestCShift2DAcrossLayouts(t *testing.T) {
	// Shift along the distributed axis between different distributions.
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		src := New[float64](p, MustLayout(g, []int{6, 5},
			[]Axis{BlockAxis(), CollapsedAxis()}, []int{4, 1}))
		dst := New[float64](p, MustLayout(g, []int{6, 5},
			[]Axis{CyclicAxis(), CollapsedAxis()}, []int{4, 1}))
		src.FillFunc(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) })
		CShift(p, dst, src, 0, 2)
		dst.eachLocal(func(off int, idx []int) {
			want := float64(((idx[0]+2)%6)*10 + idx[1])
			if dst.Local()[off] != want {
				t.Errorf("dst%v = %v, want %v", idx, dst.Local()[off], want)
			}
		})
	})
}

func TestEOShift(t *testing.T) {
	for _, shift := range []int{2, -3} {
		m := testMachine(2)
		m.Run(func(p *machine.Proc) {
			g := group.World(2)
			src := New[int64](p, MustLayout(g, []int{9}, []Axis{BlockAxis()}, []int{2}))
			dst := New[int64](p, MustLayout(g, []int{9}, []Axis{BlockAxis()}, []int{2}))
			src.FillFunc(func(idx []int) int64 { return int64(idx[0] + 1) })
			EOShift(p, dst, src, 0, shift, -7)
			dst.eachLocal(func(off int, idx []int) {
				j := idx[0] + shift
				want := int64(-7)
				if j >= 0 && j < 9 {
					want = int64(j + 1)
				}
				if dst.Local()[off] != want {
					t.Errorf("shift %d: dst[%d] = %d, want %d", shift, idx[0], dst.Local()[off], want)
				}
			})
		})
	}
}

func TestCShiftInverseProperty(t *testing.T) {
	f := func(nSeed, shiftSeed, pSeed uint8) bool {
		n := int(nSeed)%20 + 2
		shift := int(shiftSeed) % n
		procs := int(pSeed)%4 + 1
		m := testMachine(procs)
		ok := true
		m.Run(func(p *machine.Proc) {
			g := group.World(procs)
			a := New[float64](p, MustLayout(g, []int{n}, []Axis{BlockAxis()}, []int{procs}))
			b := New[float64](p, MustLayout(g, []int{n}, []Axis{BlockAxis()}, []int{procs}))
			c := New[float64](p, MustLayout(g, []int{n}, []Axis{BlockAxis()}, []int{procs}))
			a.FillFunc(func(idx []int) float64 { return float64(idx[0] * 3) })
			CShift(p, b, a, 0, shift)
			CShift(p, c, b, 0, -shift)
			a.eachLocal(func(off int, idx []int) {
				if c.Local()[off] != a.Local()[off] {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCopySectionBetweenSubgroups(t *testing.T) {
	// The multiblock pattern: block A's right edge column copied into block
	// B's left halo column, blocks living on disjoint subgroups.
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		gA := group.MustNew([]int{0, 1})
		gB := group.MustNew([]int{2, 3})
		a := New[float64](p, RowBlock2D(gA, 6, 8))
		bArr := New[float64](p, RowBlock2D(gB, 6, 10))
		if a.IsMember() {
			a.FillFunc(func(idx []int) float64 { return float64(idx[0]*100 + idx[1]) })
		}
		// Copy a's last column (col 7) into b's column 0.
		CopySection(p, bArr, []int{0, 0}, a, []int{0, 7}, []int{6, 1})
		if bArr.IsMember() {
			bArr.eachLocal(func(off int, idx []int) {
				if idx[1] != 0 {
					return
				}
				want := float64(idx[0]*100 + 7)
				if bArr.Local()[off] != want {
					t.Errorf("b[%d,0] = %v, want %v", idx[0], bArr.Local()[off], want)
				}
			})
		}
	})
}

func TestCopySectionInterior(t *testing.T) {
	m := testMachine(3)
	m.Run(func(p *machine.Proc) {
		g := group.World(3)
		src := New[int64](p, RowBlock2D(g, 5, 5))
		dst := New[int64](p, RowBlock2D(g, 7, 7))
		src.FillFunc(func(idx []int) int64 { return int64(idx[0]*10 + idx[1]) })
		CopySection(p, dst, []int{2, 3}, src, []int{1, 1}, []int{3, 2})
		dst.eachLocal(func(off int, idx []int) {
			i, j := idx[0], idx[1]
			want := int64(0)
			if i >= 2 && i < 5 && j >= 3 && j < 5 {
				want = int64((i-2+1)*10 + (j - 3 + 1))
			}
			if dst.Local()[off] != want {
				t.Errorf("dst[%d,%d] = %d, want %d", i, j, dst.Local()[off], want)
			}
		})
	})
}

func TestCopySectionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := New[int64](p, RowBlock2D(g, 4, 4))
		dst := New[int64](p, RowBlock2D(g, 4, 4))
		CopySection(p, dst, []int{0, 0}, src, []int{2, 2}, []int{3, 3})
	})
}

func TestReduceAxisSum(t *testing.T) {
	// Reduce a 2D array along each axis, with the source distributed along
	// the reduced axis (partials must combine across processors).
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		src := New[float64](p, MustLayout(g, []int{8, 5},
			[]Axis{BlockAxis(), CollapsedAxis()}, []int{4, 1}))
		src.FillFunc(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) })

		// Sum over axis 0 (the distributed one): out[j] = sum_i (10i + j).
		colSum := New[float64](p, MustLayout(g, []int{5}, []Axis{BlockAxis()}, []int{4}))
		ReduceAxis(p, colSum, src, 0, func(a, b float64) float64 { return a + b })
		colSum.eachLocal(func(off int, idx []int) {
			want := float64(10*(0+1+2+3+4+5+6+7) + 8*idx[0])
			if colSum.Local()[off] != want {
				t.Errorf("colSum[%d] = %v, want %v", idx[0], colSum.Local()[off], want)
			}
		})

		// Sum over axis 1 (collapsed locally): out[i] = sum_j (10i + j).
		rowSum := New[float64](p, MustLayout(g, []int{8}, []Axis{BlockAxis()}, []int{4}))
		ReduceAxis(p, rowSum, src, 1, func(a, b float64) float64 { return a + b })
		rowSum.eachLocal(func(off int, idx []int) {
			want := float64(50*idx[0] + (0 + 1 + 2 + 3 + 4))
			if rowSum.Local()[off] != want {
				t.Errorf("rowSum[%d] = %v, want %v", idx[0], rowSum.Local()[off], want)
			}
		})
	})
}

func TestReduceAxisMaxDisjointGroups(t *testing.T) {
	m := testMachine(5)
	m.Run(func(p *machine.Proc) {
		gSrc := group.MustNew([]int{0, 1, 2})
		gDst := group.MustNew([]int{3, 4})
		src := New[int64](p, MustLayout(gSrc, []int{6, 4},
			[]Axis{BlockAxis(), CollapsedAxis()}, []int{3, 1}))
		dst := New[int64](p, MustLayout(gDst, []int{4}, []Axis{BlockAxis()}, []int{2}))
		if src.IsMember() {
			src.FillFunc(func(idx []int) int64 { return int64((idx[0]*7+idx[1]*13)%23 - 5) })
		}
		if src.IsMember() || dst.IsMember() {
			ReduceAxis(p, dst, src, 0, func(a, b int64) int64 {
				if a > b {
					return a
				}
				return b
			})
		}
		if dst.IsMember() {
			dst.eachLocal(func(off int, idx []int) {
				want := int64(-1 << 62)
				for i := 0; i < 6; i++ {
					v := int64((i*7+idx[0]*13)%23 - 5)
					if v > want {
						want = v
					}
				}
				if dst.Local()[off] != want {
					t.Errorf("max[%d] = %d, want %d", idx[0], dst.Local()[off], want)
				}
			})
		}
	})
}

func TestReduceAxisShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := New[float64](p, RowBlock2D(g, 4, 4))
		dst := New[float64](p, MustLayout(g, []int{5}, []Axis{BlockAxis()}, []int{2}))
		ReduceAxis(p, dst, src, 0, func(a, b float64) float64 { return a + b })
	})
}

func TestRemapGather(t *testing.T) {
	// Remap with a partial mapping: pick the diagonal of a matrix into a
	// vector on a different group.
	m := testMachine(3)
	m.Run(func(p *machine.Proc) {
		g := group.World(3)
		gv := group.MustNew([]int{1})
		mat := New[float64](p, RowBlock2D(g, 6, 6))
		diag := New[float64](p, MustLayout(gv, []int{6}, []Axis{BlockAxis()}, []int{1}))
		mat.FillFunc(func(idx []int) float64 { return float64(idx[0]*6 + idx[1]) })
		Remap(p, diag, mat, func(srcIdx, dstIdx []int) bool {
			if srcIdx[0] != srcIdx[1] {
				return false
			}
			dstIdx[0] = srcIdx[0]
			return true
		})
		if diag.IsMember() {
			for i, v := range diag.Local() {
				if v != float64(i*7) {
					t.Errorf("diag[%d] = %v, want %v", i, v, float64(i*7))
				}
			}
		}
	})
}
