package dist

import (
	"fmt"

	"fxpar/internal/comm"
	"fxpar/internal/machine"
)

// Remap copies elements of src into dst under an arbitrary (partial) index
// mapping: for every source index S, mapIdx may fill dst index D (returning
// true) or skip the element (returning false). It generalizes Assign,
// Transpose2D and the HPF shift/section operations. Unmapped destination
// elements are left untouched.
//
// Matching protocol: the sender enumerates its own source elements in local
// row-major order; the receiver reproduces, for every source rank, that
// rank's enumeration from the layout alone. Both therefore agree on the
// per-pair element sequence without index headers. The receiver pass costs
// O(global source size / receivers) per receiver in the worst case; the
// structured operations below keep sections small where it matters.
//
// mapIdx must be deterministic and must not retain its argument slices
// (they are reused across calls). Participation is minimal: processors
// owning neither source nor destination return immediately.
func Remap[T any](p *machine.Proc, dst, src *Array[T], mapIdx func(srcIdx []int, dstIdx []int) bool) {
	isSender := src.rank >= 0
	isReceiver := dst.rank >= 0
	if !isSender && !isReceiver {
		return
	}
	elemBytes := comm.ElemBytes[T]()
	myID := p.ID()
	nd := dst.l.Rank()
	dstIdx := make([]int, nd)

	if isSender {
		buckets := make(map[int][]T)
		src.eachLocal(func(off int, srcIdx []int) {
			if !mapIdx(srcIdx, dstIdx) {
				return
			}
			r := dst.l.OwnerRank(dstIdx...)
			if dst.l.g.Phys(r) == myID {
				// Local path: place immediately (the receiver pass below
				// skips self pairs).
				dst.data[dst.l.localOffset(dstIdx, dst.localShape)] = src.data[off]
				return
			}
			buckets[r] = append(buckets[r], src.data[off])
		})
		for r := 0; r < dst.l.g.Size(); r++ {
			if vals := buckets[r]; len(vals) > 0 {
				p.Send(dst.l.g.Phys(r), vals, len(vals)*elemBytes)
			}
		}
	}

	if isReceiver && len(dst.data) > 0 {
		srcIdx := make([]int, src.l.Rank())
		for s := 0; s < src.l.g.Size(); s++ {
			if src.l.g.Phys(s) == myID {
				continue // local path handled on the sender side
			}
			cnt := src.l.LocalCount(s)
			if cnt == 0 {
				continue
			}
			// Destination offsets expected from s, in s's enumeration order.
			var offs []int
			for off := 0; off < cnt; off++ {
				gi := src.l.GlobalOfLocal(s, off)
				copy(srcIdx, gi)
				if !mapIdx(srcIdx, dstIdx) {
					continue
				}
				if dst.l.OwnerRank(dstIdx...) == dst.rank {
					offs = append(offs, dst.l.localOffset(dstIdx, dst.localShape))
				}
			}
			if len(offs) == 0 {
				continue
			}
			vals := recvSlice[T](p, src.l.g.Phys(s))
			if len(vals) != len(offs) {
				panic(fmt.Sprintf("dist: Remap expected %d elements from rank %d, got %d", len(offs), s, len(vals)))
			}
			for i, off := range offs {
				dst.data[off] = vals[i]
			}
		}
	}
}

// CShift implements HPF's CSHIFT: dst[..., i, ...] = src[..., (i+shift) mod
// n, ...] along the given axis. Shapes and ranks must match.
func CShift[T any](p *machine.Proc, dst, src *Array[T], axis, shift int) {
	checkShiftArgs(dst, src, axis)
	n := src.l.shape[axis]
	shift = ((shift % n) + n) % n
	Remap(p, dst, src, func(srcIdx, dstIdx []int) bool {
		copy(dstIdx, srcIdx)
		dstIdx[axis] = ((srcIdx[axis] - shift) % n + n) % n
		return true
	})
}

// EOShift implements HPF's EOSHIFT: elements shifted past the edge are
// dropped and vacated positions take the boundary value.
func EOShift[T any](p *machine.Proc, dst, src *Array[T], axis, shift int, boundary T) {
	checkShiftArgs(dst, src, axis)
	n := src.l.shape[axis]
	// Pre-fill the vacated band with the boundary value (local, no comm).
	if dst.rank >= 0 {
		dst.eachLocal(func(off int, idx []int) {
			j := idx[axis] + shift
			if j < 0 || j >= n {
				dst.data[off] = boundary
			}
		})
	}
	Remap(p, dst, src, func(srcIdx, dstIdx []int) bool {
		j := srcIdx[axis] - shift
		if j < 0 || j >= n {
			return false
		}
		copy(dstIdx, srcIdx)
		dstIdx[axis] = j
		return true
	})
}

func checkShiftArgs[T any](dst, src *Array[T], axis int) {
	if src.l.Rank() != dst.l.Rank() || axis < 0 || axis >= src.l.Rank() {
		panic(fmt.Sprintf("dist: shift axis %d of rank-%d arrays", axis, src.l.Rank()))
	}
	for d := range src.l.shape {
		if src.l.shape[d] != dst.l.shape[d] {
			panic(fmt.Sprintf("dist: shift shape mismatch %v vs %v", src.l.shape, dst.l.shape))
		}
	}
}

// CopySection copies the box of the given shape starting at srcOff in src
// to the box starting at dstOff in dst — the array-section assignment
// multiblock codes use to exchange block boundaries. Boxes must fit in both
// arrays.
func CopySection[T any](p *machine.Proc, dst *Array[T], dstOff []int, src *Array[T], srcOff, shape []int) {
	nd := src.l.Rank()
	if dst.l.Rank() != nd || len(dstOff) != nd || len(srcOff) != nd || len(shape) != nd {
		panic(fmt.Sprintf("dist: CopySection rank mismatch (src rank %d, dst rank %d, offs %d/%d, shape %d)",
			nd, dst.l.Rank(), len(srcOff), len(dstOff), len(shape)))
	}
	for d := 0; d < nd; d++ {
		if srcOff[d] < 0 || srcOff[d]+shape[d] > src.l.shape[d] ||
			dstOff[d] < 0 || dstOff[d]+shape[d] > dst.l.shape[d] || shape[d] <= 0 {
			panic(fmt.Sprintf("dist: CopySection box out of range: srcOff %v dstOff %v shape %v src %v dst %v",
				srcOff, dstOff, shape, src.l.shape, dst.l.shape))
		}
	}
	Remap(p, dst, src, func(srcIdx, dstIdx []int) bool {
		for d := 0; d < nd; d++ {
			rel := srcIdx[d] - srcOff[d]
			if rel < 0 || rel >= shape[d] {
				return false
			}
			dstIdx[d] = dstOff[d] + rel
		}
		return true
	})
}

// ReduceAxis reduces src along the given axis with op into dst, whose shape
// must equal src's shape with that axis removed. Every processor owning
// part of either array must call it. Partial results are combined first in
// each sender's local order and then in source-rank order at the
// destination owner — a deterministic order that may differ from sequential
// evaluation (relevant for non-associative floating point reductions).
func ReduceAxis[T any](p *machine.Proc, dst *Array[T], src *Array[T], axis int, op func(a, b T) T) {
	nd := src.l.Rank()
	if axis < 0 || axis >= nd || dst.l.Rank() != nd-1 {
		panic(fmt.Sprintf("dist: ReduceAxis axis %d of rank-%d into rank-%d", axis, nd, dst.l.Rank()))
	}
	for d, dd := 0, 0; d < nd; d++ {
		if d == axis {
			continue
		}
		if dst.l.shape[dd] != src.l.shape[d] {
			panic(fmt.Sprintf("dist: ReduceAxis shape mismatch: src %v minus axis %d vs dst %v", src.l.shape, axis, dst.l.shape))
		}
		dd++
	}
	isSender := src.rank >= 0
	isReceiver := dst.rank >= 0
	if !isSender && !isReceiver {
		return
	}
	elemBytes := comm.ElemBytes[T]()
	myID := p.ID()

	// reducedOf drops the axis coordinate.
	reducedOf := func(srcIdx []int, out []int) {
		dd := 0
		for d := 0; d < nd; d++ {
			if d == axis {
				continue
			}
			out[dd] = srcIdx[d]
			dd++
		}
	}

	// enumerate produces, for source rank s, the per-destination-rank
	// sequence of (first-occurrence-ordered) reduced indices. Both sender
	// and receiver run it, guaranteeing agreement.
	type partial struct {
		flat int // flattened reduced index (for dedup)
		off  int // destination local offset (receiver side)
	}
	strides := rowMajorStrides(dst.l.shape)
	enumerate := func(s int, visit func(flatIdx int, reduced []int)) {
		cnt := src.l.LocalCount(s)
		seen := make(map[int]bool)
		reduced := make([]int, nd-1)
		for off := 0; off < cnt; off++ {
			gi := src.l.GlobalOfLocal(s, off)
			reducedOf(gi, reduced)
			flat := 0
			for d, x := range reduced {
				flat += x * strides[d]
			}
			if seen[flat] {
				continue
			}
			seen[flat] = true
			visit(flat, reduced)
		}
	}

	// seeded tracks, on the receiver, which destination elements have
	// received their first contribution this call.
	var seeded []bool
	if isReceiver {
		seeded = make([]bool, len(dst.data))
	}
	combine := func(off int, v T) {
		if seeded[off] {
			dst.data[off] = op(dst.data[off], v)
		} else {
			dst.data[off] = v
			seeded[off] = true
		}
	}

	if isSender {
		// Compute local partials.
		partials := make(map[int]T)
		havePartial := make(map[int]bool)
		reduced := make([]int, nd-1)
		src.eachLocal(func(off int, idx []int) {
			reducedOf(idx, reduced)
			flat := 0
			for d, x := range reduced {
				flat += x * strides[d]
			}
			if havePartial[flat] {
				partials[flat] = op(partials[flat], src.data[off])
			} else {
				partials[flat] = src.data[off]
				havePartial[flat] = true
			}
		})
		// Bucket per destination owner in enumeration order.
		buckets := make(map[int][]T)
		enumerate(src.rank, func(flat int, reduced []int) {
			r := dst.l.OwnerRank(reduced...)
			if dst.l.g.Phys(r) == myID {
				return // handled in the receiver combine below
			}
			buckets[r] = append(buckets[r], partials[flat])
		})
		for r := 0; r < dst.l.g.Size(); r++ {
			if vals := buckets[r]; len(vals) > 0 {
				p.Send(dst.l.g.Phys(r), vals, len(vals)*elemBytes)
			}
		}
		if isReceiver {
			// Self contributions seed or extend the local combine state.
			enumerate(src.rank, func(flat int, reduced []int) {
				if dst.l.OwnerRank(reduced...) != dst.rank {
					return
				}
				combine(dst.l.localOffset(reduced, dst.localShape), partials[flat])
			})
		}
	}

	if isReceiver && len(dst.data) > 0 {
		for s := 0; s < src.l.g.Size(); s++ {
			if src.l.g.Phys(s) == myID {
				continue
			}
			var offs []int
			enumerate(s, func(flat int, reduced []int) {
				if dst.l.OwnerRank(reduced...) == dst.rank {
					offs = append(offs, dst.l.localOffset(reduced, dst.localShape))
				}
			})
			if len(offs) == 0 {
				continue
			}
			vals := recvSlice[T](p, src.l.g.Phys(s))
			if len(vals) != len(offs) {
				panic(fmt.Sprintf("dist: ReduceAxis expected %d partials from rank %d, got %d", len(offs), s, len(vals)))
			}
			for i, off := range offs {
				combine(off, vals[i])
			}
		}
	}
}
