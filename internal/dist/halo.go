package dist

import (
	"fmt"

	"fxpar/internal/comm"
	"fxpar/internal/machine"
)

// HaloRows exchanges h boundary rows of a 2D row-BLOCK array with the
// neighbouring ranks and returns the h rows just above and just below this
// processor's band (each h*width elements, row-major; nil at the global
// edges). It is the standard ghost-row pattern of stencil codes (stereo's
// window sums, multiblock relaxation).
//
// All owning processors must call it together. Trailing ranks that own no
// rows (ceil-division block layout) are excluded from the protocol. Interior
// processors must own at least h rows.
func HaloRows[T any](p *machine.Proc, a *Array[T], h int) (above, below []T) {
	l := a.Layout()
	if l.Rank() != 2 || l.dims[0].kind != Block || l.grid[0] != l.g.Size() {
		panic(fmt.Sprintf("dist: HaloRows needs a 2D row-BLOCK array, got %v", l))
	}
	if h <= 0 {
		panic(fmt.Sprintf("dist: HaloRows with h=%d", h))
	}
	if a.rank < 0 || len(a.data) == 0 {
		return nil, nil
	}
	w := a.localShape[1]
	rows := a.localShape[0]
	// Non-empty ranks form a contiguous prefix.
	size := 0
	for r := 0; r < l.g.Size(); r++ {
		if l.LocalCount(r) > 0 {
			size++
		}
	}
	rank := a.rank
	if rank < size-1 && rows < h {
		panic(fmt.Sprintf("dist: HaloRows interior rank %d owns %d rows < halo %d", rank, rows, h))
	}
	if size == 1 {
		return nil, nil
	}
	elem := comm.ElemBytes[T]()
	clampRow := func(r int) int {
		if r < 0 {
			return 0
		}
		if r >= rows {
			return rows - 1
		}
		return r
	}
	pack := func(top bool) []T {
		buf := make([]T, 0, h*w)
		for k := 0; k < h; k++ {
			r := k
			if !top {
				r = rows - h + k
			}
			r = clampRow(r)
			buf = append(buf, a.data[r*w:(r+1)*w]...)
		}
		return buf
	}
	if rank > 0 {
		p.Send(l.g.Phys(rank-1), pack(true), h*w*elem)
	}
	if rank < size-1 {
		p.Send(l.g.Phys(rank+1), pack(false), h*w*elem)
	}
	if rank > 0 {
		above = recvSlice[T](p, l.g.Phys(rank-1))
	}
	if rank < size-1 {
		below = recvSlice[T](p, l.g.Phys(rank+1))
	}
	return above, below
}
