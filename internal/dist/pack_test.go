package dist

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

func TestPackIntoFiltersInOrder(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		src := New[int64](p, MustLayout(g, []int{20}, []Axis{BlockAxis()}, []int{4}))
		src.FillFunc(func(idx []int) int64 { return int64(idx[0]) })
		dst := New[int64](p, MustLayout(g, []int{10}, []Axis{BlockAxis()}, []int{4}))
		n := PackInto(p, dst, src, 0, func(v int64) bool { return v%2 == 0 })
		if n != 10 {
			t.Errorf("packed %d, want 10", n)
		}
		full := GatherGlobal(p, dst)
		if full != nil {
			for i, v := range full {
				if v != int64(2*i) {
					t.Errorf("dst[%d] = %d, want %d", i, v, 2*i)
				}
			}
		}
	})
}

func TestPackIntoDisjointGroupsWithOffset(t *testing.T) {
	m := testMachine(5)
	m.Run(func(p *machine.Proc) {
		gSrc := group.MustNew([]int{0, 1})
		gDst := group.MustNew([]int{2, 3, 4})
		src := New[int64](p, MustLayout(gSrc, []int{12}, []Axis{BlockAxis()}, []int{2}))
		if src.IsMember() {
			src.FillFunc(func(idx []int) int64 { return int64(idx[0] * 10) })
		}
		dst := New[int64](p, MustLayout(gDst, []int{20}, []Axis{BlockAxis()}, []int{3}))
		if dst.IsMember() {
			dst.FillFunc(func([]int) int64 { return -1 })
		}
		n := 0
		if src.IsMember() || dst.IsMember() {
			n = PackInto(p, dst, src, 3, func(v int64) bool { return v >= 50 })
		}
		if (src.IsMember() || dst.IsMember()) && n != 7 {
			t.Errorf("proc %d: packed %d, want 7 (values 50..110)", p.ID(), n)
		}
		full := GatherGlobal(p, dst)
		if full != nil {
			for i := 0; i < 3; i++ {
				if full[i] != -1 {
					t.Errorf("dst[%d] = %d, want untouched -1", i, full[i])
				}
			}
			for k := 0; k < 7; k++ {
				if full[3+k] != int64((5+k)*10) {
					t.Errorf("dst[%d] = %d, want %d", 3+k, full[3+k], (5+k)*10)
				}
			}
			for i := 10; i < 20; i++ {
				if full[i] != -1 {
					t.Errorf("dst[%d] = %d, want untouched -1", i, full[i])
				}
			}
		}
	})
}

func TestCopyRange1D(t *testing.T) {
	m := testMachine(3)
	m.Run(func(p *machine.Proc) {
		g := group.World(3)
		src := New[float64](p, MustLayout(g, []int{7}, []Axis{BlockAxis()}, []int{3}))
		src.FillFunc(func(idx []int) float64 { return float64(idx[0]) + 0.5 })
		dst := New[float64](p, MustLayout(g, []int{15}, []Axis{BlockAxis()}, []int{3}))
		CopyRange1D(p, dst, 4, src)
		full := GatherGlobal(p, dst)
		if full != nil {
			for k := 0; k < 7; k++ {
				if full[4+k] != float64(k)+0.5 {
					t.Errorf("dst[%d] = %v", 4+k, full[4+k])
				}
			}
		}
	})
}

func TestFillRange1D(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		a := New[int32](p, MustLayout(g, []int{17}, []Axis{BlockAxis()}, []int{4}))
		FillRange1D(a, 5, 11, 9)
		full := GatherGlobal(p, a)
		if full != nil {
			for i, v := range full {
				want := int32(0)
				if i >= 5 && i < 11 {
					want = 9
				}
				if v != want {
					t.Errorf("a[%d] = %d, want %d", i, v, want)
				}
			}
		}
	})
}

func TestPackIntoOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := New[int64](p, MustLayout(g, []int{10}, []Axis{BlockAxis()}, []int{2}))
		dst := New[int64](p, MustLayout(g, []int{4}, []Axis{BlockAxis()}, []int{2}))
		PackInto(p, dst, src, 0, nil)
	})
}

func TestPackIntoRejectsNonBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := New[int64](p, MustLayout(g, []int{10}, []Axis{CyclicAxis()}, []int{2}))
		dst := New[int64](p, MustLayout(g, []int{10}, []Axis{BlockAxis()}, []int{2}))
		PackInto(p, dst, src, 0, nil)
	})
}

// Property: PackInto(keep) preserves exactly the kept subsequence.
func TestPackIntoProperty(t *testing.T) {
	f := func(nSeed, modSeed, pSeed uint8) bool {
		n := int(nSeed)%50 + 1
		mod := int64(modSeed)%5 + 2
		procs := int(pSeed)%4 + 1
		m := testMachine(procs)
		ok := true
		m.Run(func(p *machine.Proc) {
			g := group.World(procs)
			src := New[int64](p, MustLayout(g, []int{n}, []Axis{BlockAxis()}, []int{procs}))
			src.FillFunc(func(idx []int) int64 { return int64(idx[0]*idx[0]) % 97 })
			keep := func(v int64) bool { return v%mod == 0 }
			var want []int64
			for i := 0; i < n; i++ {
				v := int64(i*i) % 97
				if keep(v) {
					want = append(want, v)
				}
			}
			if len(want) == 0 {
				return
			}
			dst := New[int64](p, MustLayout(g, []int{len(want)}, []Axis{BlockAxis()}, []int{procs}))
			got := PackInto(p, dst, src, 0, keep)
			if got != len(want) {
				ok = false
				return
			}
			full := GatherGlobal(p, dst)
			if full != nil {
				for i := range want {
					if full[i] != want[i] {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
