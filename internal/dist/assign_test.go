package dist

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func testMachine(n int) *machine.Machine {
	return machine.New(n, sim.CostModel{
		FlopRate: 1e6, Alpha: 1e-4, Beta: 1e-7, SendOverhead: 1e-5, IORate: 1e6,
	})
}

// fillSeq fills an array with a deterministic function of the global index.
func fillSeq(a *Array[float64]) {
	a.FillFunc(func(idx []int) float64 {
		v := 0.0
		for _, x := range idx {
			v = v*1000 + float64(x)
		}
		return v
	})
}

func verifySeq(t *testing.T, p *machine.Proc, a *Array[float64], transposed bool) {
	t.Helper()
	if !a.IsMember() {
		return
	}
	a.eachLocal(func(off int, idx []int) {
		want := 0.0
		if transposed {
			for d := len(idx) - 1; d >= 0; d-- {
				want = want*1000 + float64(idx[d])
			}
		} else {
			for _, x := range idx {
				want = want*1000 + float64(x)
			}
		}
		if a.Local()[off] != want {
			t.Errorf("proc %d: element %v = %v, want %v", p.ID(), idx, a.Local()[off], want)
		}
	})
}

func TestArrayBasics(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		a := New[float64](p, RowBlock2D(g, 8, 4))
		if !a.IsMember() {
			t.Fatalf("proc %d not a member", p.ID())
		}
		row0 := p.ID() * 2
		if !a.Has(row0, 0) {
			t.Errorf("proc %d should own row %d", p.ID(), row0)
		}
		a.Set(42.0, row0, 3)
		if got := a.At(row0, 3); got != 42.0 {
			t.Errorf("At = %v", got)
		}
		if a.NumLocalRows() != 2 {
			t.Errorf("local rows = %d", a.NumLocalRows())
		}
		if got := a.GlobalRowOfLocal(1); got != row0+1 {
			t.Errorf("GlobalRowOfLocal(1) = %d", got)
		}
		r := a.LocalRow(0)
		if len(r) != 4 || r[3] != 42.0 {
			t.Errorf("LocalRow = %v", r)
		}
	})
}

func TestAtNonOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		a := New[int](p, MustLayout(group.World(2), []int{4}, []Axis{BlockAxis()}, []int{2}))
		a.At(0) // owned by rank 0 only; rank 1 panics
	})
}

func TestNonMemberDescriptor(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		sub := group.MustNew([]int{0, 1})
		a := New[int](p, MustLayout(sub, []int{10}, []Axis{BlockAxis()}, []int{2}))
		if p.ID() >= 2 {
			if a.IsMember() || a.Local() != nil || a.Rank() != -1 {
				t.Errorf("proc %d should be a bare descriptor", p.ID())
			}
			a.FillFunc(func([]int) int { return 1 }) // must be a no-op
		} else if len(a.Local()) != 5 {
			t.Errorf("proc %d local size %d", p.ID(), len(a.Local()))
		}
	})
}

// redistCase runs dst=src between two layouts and verifies contents.
func redistCase(t *testing.T, nProcs int, mk func(p *machine.Proc) (dst, src *Array[float64])) {
	t.Helper()
	m := testMachine(nProcs)
	m.Run(func(p *machine.Proc) {
		dst, src := mk(p)
		fillSeq(src)
		Assign(p, dst, src)
		verifySeq(t, p, dst, false)
	})
}

func TestAssignSameGroupBlockToCyclic(t *testing.T) {
	redistCase(t, 4, func(p *machine.Proc) (*Array[float64], *Array[float64]) {
		g := group.World(4)
		src := New[float64](p, MustLayout(g, []int{17}, []Axis{BlockAxis()}, []int{4}))
		dst := New[float64](p, MustLayout(g, []int{17}, []Axis{CyclicAxis()}, []int{4}))
		return dst, src
	})
}

func TestAssignDisjointSubgroups(t *testing.T) {
	// The pipeline statement A2 = A1 of Figure 2: source on procs {0,1},
	// destination on procs {2,3,4}.
	redistCase(t, 6, func(p *machine.Proc) (*Array[float64], *Array[float64]) {
		g1 := group.MustNew([]int{0, 1})
		g2 := group.MustNew([]int{2, 3, 4})
		src := New[float64](p, RowBlock2D(g1, 8, 5))
		dst := New[float64](p, RowBlock2D(g2, 8, 5))
		return dst, src
	})
}

func TestAssignOverlappingGroups(t *testing.T) {
	redistCase(t, 4, func(p *machine.Proc) (*Array[float64], *Array[float64]) {
		g1 := group.MustNew([]int{0, 1, 2})
		g2 := group.MustNew([]int{1, 2, 3})
		src := New[float64](p, MustLayout(g1, []int{11}, []Axis{BlockAxis()}, []int{3}))
		dst := New[float64](p, MustLayout(g2, []int{11}, []Axis{CyclicAxis()}, []int{3}))
		return dst, src
	})
}

func TestAssignBlockCyclicMix(t *testing.T) {
	redistCase(t, 4, func(p *machine.Proc) (*Array[float64], *Array[float64]) {
		g := group.World(4)
		src := New[float64](p, MustLayout(g, []int{23}, []Axis{BlockCyclicAxis(3)}, []int{4}))
		dst := New[float64](p, MustLayout(g, []int{23}, []Axis{BlockCyclicAxis(5)}, []int{4}))
		return dst, src
	})
}

func TestAssign2DRowToColBlock(t *testing.T) {
	redistCase(t, 4, func(p *machine.Proc) (*Array[float64], *Array[float64]) {
		g := group.World(4)
		src := New[float64](p, RowBlock2D(g, 9, 7))
		dst := New[float64](p, ColBlock2D(g, 9, 7))
		return dst, src
	})
}

func TestAssignSameLayoutIsLocal(t *testing.T) {
	m := testMachine(4)
	stats := m.Run(func(p *machine.Proc) {
		g := group.World(4)
		src := New[float64](p, RowBlock2D(g, 8, 4))
		dst := New[float64](p, RowBlock2D(g, 8, 4))
		fillSeq(src)
		Assign(p, dst, src)
		verifySeq(t, p, dst, false)
	})
	for _, ps := range stats.Procs {
		if ps.MsgsSent != 0 {
			t.Errorf("proc %d sent %d messages for an identical-layout assign", ps.ID, ps.MsgsSent)
		}
	}
}

func TestAssignMinimalSubsetSkips(t *testing.T) {
	// A processor in neither group must not synchronize or advance its
	// clock — Section 4's minimal processor subsets.
	m := testMachine(5)
	stats := m.Run(func(p *machine.Proc) {
		g1 := group.MustNew([]int{0, 1})
		g2 := group.MustNew([]int{2, 3})
		src := New[float64](p, RowBlock2D(g1, 4, 4))
		dst := New[float64](p, RowBlock2D(g2, 4, 4))
		fillSeq(src)
		Assign(p, dst, src)
	})
	outsider := stats.Procs[4]
	if outsider.Finish != 0 || outsider.MsgsSent != 0 {
		t.Errorf("outsider participated: finish=%g msgs=%d", outsider.Finish, outsider.MsgsSent)
	}
}

func TestTranspose2D(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		src := New[float64](p, RowBlock2D(g, 8, 6))
		dst := New[float64](p, RowBlock2D(g, 6, 8))
		fillSeq(src)
		Transpose2D(p, dst, src)
		// dst[i][j] must equal src[j][i] = j*1000 + i.
		dst.eachLocal(func(off int, idx []int) {
			want := float64(idx[1])*1000 + float64(idx[0])
			if dst.Local()[off] != want {
				t.Errorf("proc %d: dst%v = %v, want %v", p.ID(), idx, dst.Local()[off], want)
			}
		})
	})
}

func TestTransposeSquareInverse(t *testing.T) {
	// Transposing twice must reproduce the original, across different
	// group sizes including non-dividing ones.
	for _, n := range []int{1, 2, 3, 4, 7} {
		m := testMachine(n)
		m.Run(func(p *machine.Proc) {
			g := group.World(n)
			a := New[float64](p, RowBlock2D(g, 12, 12))
			b := New[float64](p, RowBlock2D(g, 12, 12))
			c := New[float64](p, RowBlock2D(g, 12, 12))
			fillSeq(a)
			Transpose2D(p, b, a)
			Transpose2D(p, c, b)
			a.eachLocal(func(off int, idx []int) {
				if c.Local()[off] != a.Local()[off] {
					t.Errorf("n=%d proc %d: double transpose differs at %v", n, p.ID(), idx)
				}
			})
		})
	}
}

func TestGatherScatterGlobal(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		a := New[float64](p, MustLayout(g, []int{3, 5}, []Axis{CyclicAxis(), BlockAxis()}, []int{2, 2}))
		fillSeq(a)
		full := GatherGlobal(p, a)
		if a.Rank() == 0 {
			for i := 0; i < 3; i++ {
				for j := 0; j < 5; j++ {
					want := float64(i)*1000 + float64(j)
					if full[i*5+j] != want {
						t.Errorf("full[%d,%d] = %v, want %v", i, j, full[i*5+j], want)
					}
				}
			}
		} else if full != nil {
			t.Error("non-root got data")
		}
		// Round trip through a second array.
		b := New[float64](p, RowBlock2D(g, 3, 5))
		ScatterGlobal(p, b, full)
		verifySeq(t, p, b, false)
	})
}

// Property: Assign preserves all data for random layout pairs.
func TestAssignPreservesDataProperty(t *testing.T) {
	axisChoices := []Axis{BlockAxis(), CyclicAxis(), BlockCyclicAxis(2), BlockCyclicAxis(3)}
	f := func(nSeed, aSeed, bSeed, splitSeed uint8) bool {
		n := int(nSeed)%40 + 1
		nProcs := 4
		m := testMachine(nProcs)
		ok := true
		m.Run(func(p *machine.Proc) {
			// Source on first k procs, dest on the rest (or overlapping).
			k := int(splitSeed)%3 + 1 // 1..3
			g1 := group.World(nProcs).Subrange(0, k)
			g2 := group.World(nProcs).Subrange(k-1, nProcs) // overlap by one
			la := MustLayout(g1, []int{n}, []Axis{axisChoices[int(aSeed)%4]}, []int{g1.Size()})
			lb := MustLayout(g2, []int{n}, []Axis{axisChoices[int(bSeed)%4]}, []int{g2.Size()})
			src := New[float64](p, la)
			dst := New[float64](p, lb)
			fillSeq(src)
			Assign(p, dst, src)
			if dst.IsMember() {
				dst.eachLocal(func(off int, idx []int) {
					if dst.Local()[off] != float64(idx[0]) {
						ok = false
					}
				})
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAssignShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := testMachine(2)
	m.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := New[float64](p, MustLayout(g, []int{4}, []Axis{BlockAxis()}, []int{2}))
		dst := New[float64](p, MustLayout(g, []int{5}, []Axis{BlockAxis()}, []int{2}))
		Assign(p, dst, src)
	})
}

func TestAssignFullGroupSynchronizes(t *testing.T) {
	// AssignFullGroup (the ablation) must produce the same data but force
	// participation of all union members.
	m := testMachine(4)
	stats := m.Run(func(p *machine.Proc) {
		g1 := group.MustNew([]int{0, 1})
		g2 := group.MustNew([]int{2, 3})
		src := New[float64](p, RowBlock2D(g1, 4, 4))
		dst := New[float64](p, RowBlock2D(g2, 4, 4))
		fillSeq(src)
		AssignFullGroup(p, dst, src)
		verifySeq(t, p, dst, false)
	})
	for _, ps := range stats.Procs {
		if ps.MsgsSent == 0 {
			t.Errorf("proc %d did not participate in the synchronizing assign", ps.ID)
		}
	}
}
