package dist

import (
	"testing"
	"testing/quick"

	"fxpar/internal/group"
	"fxpar/internal/machine"
)

func TestNewAlignedOwnership(t *testing.T) {
	g := group.World(4)
	base := MustLayout(g, []int{16}, []Axis{BlockAxis()}, []int{4}) // b = 4
	al, err := NewAligned(base, []int{6}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	// Element i of the aligned array is co-located with base element i+5.
	for i := 0; i < 6; i++ {
		if got, want := al.OwnerRank(i), base.OwnerRank(i+5); got != want {
			t.Errorf("aligned owner(%d) = %d, base owner(%d) = %d", i, got, i+5, want)
		}
	}
	// Counts: positions 5..10 -> base blocks: [5..7]->c1, [8..10]->c2.
	wantCounts := []int{0, 3, 3, 0}
	for c, w := range wantCounts {
		if got := al.LocalCount(c); got != w {
			t.Errorf("LocalCount(%d) = %d, want %d", c, got, w)
		}
	}
}

func TestNewAlignedCyclic(t *testing.T) {
	g := group.World(3)
	base := MustLayout(g, []int{12}, []Axis{CyclicAxis()}, []int{3})
	al, err := NewAligned(base, []int{7}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if al.OwnerRank(i) != (i+2)%3 {
			t.Errorf("owner(%d) = %d, want %d", i, al.OwnerRank(i), (i+2)%3)
		}
	}
}

func TestNewAlignedErrors(t *testing.T) {
	g := group.World(2)
	base := MustLayout(g, []int{10}, []Axis{BlockAxis()}, []int{2})
	if _, err := NewAligned(base, []int{6}, []int{5}); err == nil {
		t.Error("overflowing box accepted")
	}
	if _, err := NewAligned(base, []int{4}, []int{-1}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewAligned(base, []int{4, 4}, []int{0, 0}); err == nil {
		t.Error("rank mismatch accepted")
	}
	bc := MustLayout(g, []int{10}, []Axis{BlockCyclicAxis(2)}, []int{2})
	if _, err := NewAligned(bc, []int{4}, []int{1}); err == nil {
		t.Error("BLOCK_CYCLIC offset accepted")
	}
	if _, err := NewAligned(bc, []int{4}, []int{0}); err != nil {
		t.Errorf("zero-offset BLOCK_CYCLIC rejected: %v", err)
	}
}

// Property: aligned layouts keep the round-trip and partition invariants.
func TestAlignedRoundTripProperty(t *testing.T) {
	f := func(baseN, shapeSeed, offSeed, kindSeed, qSeed uint8) bool {
		bn := int(baseN)%40 + 4
		q := int(qSeed)%4 + 1
		var a Axis
		if kindSeed%2 == 0 {
			a = BlockAxis()
		} else {
			a = CyclicAxis()
		}
		g := group.World(q)
		base, err := NewLayout(g, []int{bn}, []Axis{a}, []int{q})
		if err != nil {
			return false
		}
		n := int(shapeSeed)%bn + 1
		off := int(offSeed) % (bn - n + 1)
		al, err := NewAligned(base, []int{n}, []int{off})
		if err != nil {
			return false
		}
		total := 0
		for r := 0; r < q; r++ {
			cnt := al.LocalCount(r)
			total += cnt
			prev := -1
			for l := 0; l < cnt; l++ {
				gi := al.GlobalOfLocal(r, l)
				if gi[0] <= prev || gi[0] < 0 || gi[0] >= n {
					return false
				}
				prev = gi[0]
				if al.OwnerRank(gi...) != r {
					return false
				}
				if al.localOffset(gi, al.LocalShape(r)) != l {
					return false
				}
				if base.OwnerRank(gi[0]+off) != r {
					return false // misaligned with the template
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAlignedAssignLocality: assigning between an array and a
// properly-aligned section of a template array needs no communication —
// the point of ALIGN.
func TestAlignedAssignLocality(t *testing.T) {
	m := testMachine(4)
	stats := m.Run(func(p *machine.Proc) {
		g := group.World(4)
		base := MustLayout(g, []int{16}, []Axis{BlockAxis()}, []int{4})
		template := New[float64](p, base)
		template.FillFunc(func(idx []int) float64 { return float64(idx[0]) })
		alLayout, err := NewAligned(base, []int{8}, []int{4})
		if err != nil {
			t.Error(err)
			return
		}
		section := New[float64](p, alLayout)
		// Copy template[4..12) into the aligned array: every element is
		// co-located, so no messages may flow.
		Remap(p, section, template, func(srcIdx, dstIdx []int) bool {
			j := srcIdx[0] - 4
			if j < 0 || j >= 8 {
				return false
			}
			dstIdx[0] = j
			return true
		})
		section.eachLocal(func(off int, idx []int) {
			if section.Local()[off] != float64(idx[0]+4) {
				t.Errorf("section[%d] = %v", idx[0], section.Local()[off])
			}
		})
	})
	for _, ps := range stats.Procs {
		if ps.MsgsSent != 0 {
			t.Errorf("proc %d sent %d messages for an aligned copy", ps.ID, ps.MsgsSent)
		}
	}
}

func TestAlignedArrayWith2D(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *machine.Proc) {
		g := group.World(4)
		base := RowBlock2D(g, 16, 8)
		al, err := NewAligned(base, []int{8, 8}, []int{4, 0})
		if err != nil {
			t.Fatal(err)
		}
		a := New[int64](p, al)
		a.FillFunc(func(idx []int) int64 { return int64(idx[0]*8 + idx[1]) })
		full := GatherGlobal(p, a)
		if full != nil {
			for i := 0; i < 64; i++ {
				if full[i] != int64(i) {
					t.Errorf("full[%d] = %d", i, full[i])
				}
			}
		}
	})
}
