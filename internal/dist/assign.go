package dist

import (
	"fmt"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// Assign implements the parent-scope array assignment dst = src between two
// distributed arrays with the same global shape but possibly different
// layouts, groups or subgroups — e.g. the pipeline statement A2 = A1 of
// Figure 2.
//
// Participation is minimal (Section 4, "Identification of minimal processor
// subsets"): a processor that owns no part of either array returns
// immediately without synchronizing, so other subgroups can run ahead —
// this is what makes data-parallel pipelines pipeline. Processors that own
// only source elements send and return; processors that own destination
// elements receive (or copy locally) exactly what they need. Empty messages
// are never exchanged.
func Assign[T any](p *machine.Proc, dst, src *Array[T]) {
	perm := make([]int, dst.l.Rank())
	for i := range perm {
		perm[i] = i
	}
	remapPerm(p, dst, src, perm)
}

// Transpose2D implements dst[i][j] = src[j][i] for rank-2 arrays — the
// "corner turn" of the radar benchmark and the middle step of the 2D FFT.
func Transpose2D[T any](p *machine.Proc, dst, src *Array[T]) {
	remapPerm(p, dst, src, []int{1, 0})
}

// remapPerm implements dst[I] = src[J] where J[perm[d]] = I[d]; that is,
// dst dimension d ranges over src dimension perm[d]. perm must be a
// permutation of the dimensions and shapes must agree accordingly.
//
// Correctness of message matching: both sides enumerate the transferred
// elements in destination global row-major order. The receiver's local
// row-major order is exactly that order restricted to its owned set
// (local-to-global maps are strictly increasing per dimension); the sender
// iterates its source dimensions in the order perm[0], perm[1], ..., which
// enumerates its owned source set in the same destination order. Restricted
// to one (sender, receiver) pair both sequences are the same set in the same
// order, so per-pair FIFO delivery needs no element indices on the wire.
func remapPerm[T any](p *machine.Proc, dst, src *Array[T], perm []int) {
	if src.l.Rank() != dst.l.Rank() || len(perm) != dst.l.Rank() {
		panic(fmt.Sprintf("dist: remap rank mismatch: src %v dst %v perm %v", src.l, dst.l, perm))
	}
	for d := range perm {
		if src.l.shape[perm[d]] != dst.l.shape[d] {
			panic(fmt.Sprintf("dist: remap shape mismatch: src %v dst %v perm %v", src.l.shape, dst.l.shape, perm))
		}
	}
	isSender := src.rank >= 0
	isReceiver := dst.rank >= 0
	if !isSender && !isReceiver {
		return // minimal processor subset: not a participant
	}

	elemBytes := comm.ElemBytes[T]()
	myID := p.ID()

	if isSender {
		// Enumerate my source elements in destination row-major order and
		// bucket values per destination rank.
		nd := src.l.Rank()
		srcCoords := src.l.coordsOfRank(src.rank)
		// Iterate src dims in order perm[0] (outermost) .. perm[nd-1].
		counters := make([]int, nd)  // counter for src dim perm[d]
		srcLocal := make([]int, nd)  // local index per src dim
		srcGlobal := make([]int, nd) // global index per src dim
		dstGlobal := make([]int, nd)
		// Local extent per iterated position.
		extents := make([]int, nd)
		for d := 0; d < nd; d++ {
			extents[d] = src.localShape[perm[d]]
		}
		total := 1
		for _, e := range extents {
			total *= e
		}
		buckets := make(map[int][]T)
		if total > 0 && len(src.data) > 0 {
			for it := 0; it < total; it++ {
				for d := 0; d < nd; d++ {
					sd := perm[d]
					srcLocal[sd] = counters[d]
					srcGlobal[sd] = src.l.dims[sd].globalOf(srcCoords[sd], counters[d])
					dstGlobal[d] = srcGlobal[sd]
				}
				dstRank := dst.l.OwnerRank(dstGlobal...)
				if dst.l.g.Phys(dstRank) != myID {
					// Local source offset in natural src row-major order.
					off := 0
					for sd := 0; sd < nd; sd++ {
						off = off*src.localShape[sd] + srcLocal[sd]
					}
					buckets[dstRank] = append(buckets[dstRank], src.data[off])
				}
				for d := nd - 1; d >= 0; d-- {
					counters[d]++
					if counters[d] < extents[d] {
						break
					}
					counters[d] = 0
				}
			}
		}
		// Send non-empty buckets in destination-rank order (determinism).
		for r := 0; r < dst.l.g.Size(); r++ {
			if vals := buckets[r]; len(vals) > 0 {
				p.Send(dst.l.g.Phys(r), vals, len(vals)*elemBytes)
			}
		}
	}

	if isReceiver {
		// Enumerate my destination elements in local row-major order (=
		// destination global row-major restricted to my set); resolve each
		// from local source storage or from the per-sender streams.
		nd := dst.l.Rank()
		srcGlobal := make([]int, nd)
		type pending struct {
			offsets []int
		}
		want := make(map[int]*pending) // src rank -> dst local offsets in order
		var srcOrder []int
		dst.eachLocal(func(off int, dstGlobal []int) {
			for d := 0; d < nd; d++ {
				srcGlobal[perm[d]] = dstGlobal[d]
			}
			sRank := src.l.OwnerRank(srcGlobal...)
			if src.l.g.Phys(sRank) == myID {
				// Local copy path (also covers overlapping groups).
				soff := src.l.localOffset(srcGlobal, src.localShape)
				dst.data[off] = src.data[soff]
				return
			}
			pd := want[sRank]
			if pd == nil {
				pd = &pending{}
				want[sRank] = pd
				srcOrder = append(srcOrder, sRank)
			}
			pd.offsets = append(pd.offsets, off)
		})
		// Receive from senders in ascending source-rank order. Senders are
		// distinct physical processors, so per-pair FIFO plus identical
		// enumeration order guarantees the k-th value from a sender is for
		// the k-th offset recorded for it.
		for _, s := range sortedInts(srcOrder) {
			vals := recvSlice[T](p, src.l.g.Phys(s))
			offs := want[s].offsets
			if len(vals) != len(offs) {
				panic(fmt.Sprintf("dist: processor %d expected %d elements from rank %d, got %d", myID, len(offs), s, len(vals)))
			}
			for i, off := range offs {
				dst.data[off] = vals[i]
			}
		}
	}
}

func recvSlice[T any](p *machine.Proc, srcPhys int) []T {
	msg := p.Recv(srcPhys)
	vals, ok := msg.Data.([]T)
	if !ok {
		panic(fmt.Sprintf("dist: processor %d expected []%T from %d, got %T", p.ID(), *new(T), srcPhys, msg.Data))
	}
	return vals
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// AssignFullGroup is the ablation counterpart of Assign: it performs the
// same data movement but makes *every* processor of the union of both
// groups synchronize on a barrier afterwards, modeling an implementation
// that cannot identify minimal processor subsets. Section 4 predicts this
// destroys pipelined task parallelism; BenchmarkAblationFullGroupAssign
// demonstrates it.
func AssignFullGroup[T any](p *machine.Proc, dst, src *Array[T]) {
	u := group.Union(src.l.g, dst.l.g)
	Assign(p, dst, src)
	if u.Contains(p.ID()) {
		comm.Barrier(p, u)
	}
}

// GatherGlobal collects the whole array in global row-major order at the
// owning group's rank 0 (nil elsewhere). Non-members return nil without
// synchronizing. Intended for result verification and output stages.
func GatherGlobal[T any](p *machine.Proc, a *Array[T]) []T {
	if a.rank < 0 {
		return nil
	}
	g := a.l.g
	if a.rank != 0 {
		if len(a.data) > 0 {
			p.Send(g.Phys(0), append([]T(nil), a.data...), len(a.data)*comm.ElemBytes[T]())
		}
		return nil
	}
	out := make([]T, a.l.Size())
	strides := rowMajorStrides(a.l.shape)
	place := func(rank int, vals []T) {
		off := 0
		for _, v := range vals {
			gi := a.l.GlobalOfLocal(rank, off)
			flat := 0
			for d, x := range gi {
				flat += x * strides[d]
			}
			out[flat] = v
			off++
		}
	}
	place(0, a.data)
	for r := 1; r < g.Size(); r++ {
		if a.l.LocalCount(r) == 0 {
			continue
		}
		place(r, recvSlice[T](p, g.Phys(r)))
	}
	return out
}

// ScatterGlobal distributes full (global row-major, significant at the
// owning group's rank 0) into the array. All members must call it.
func ScatterGlobal[T any](p *machine.Proc, a *Array[T], full []T) {
	if a.rank < 0 {
		return
	}
	g := a.l.g
	if a.rank == 0 {
		if len(full) != a.l.Size() {
			panic(fmt.Sprintf("dist: ScatterGlobal got %d elements for %v", len(full), a.l))
		}
		strides := rowMajorStrides(a.l.shape)
		for r := 0; r < g.Size(); r++ {
			cnt := a.l.LocalCount(r)
			if cnt == 0 {
				continue
			}
			vals := make([]T, cnt)
			for off := 0; off < cnt; off++ {
				gi := a.l.GlobalOfLocal(r, off)
				flat := 0
				for d, x := range gi {
					flat += x * strides[d]
				}
				vals[off] = full[flat]
			}
			if r == 0 {
				copy(a.data, vals)
			} else {
				p.Send(g.Phys(r), vals, cnt*comm.ElemBytes[T]())
			}
		}
		return
	}
	if len(a.data) > 0 {
		copy(a.data, recvSlice[T](p, g.Phys(0)))
	}
}

func rowMajorStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}
