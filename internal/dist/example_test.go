package dist_test

import (
	"fmt"

	"fxpar/internal/dist"
	"fxpar/internal/group"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// ExampleAssign shows the parent-scope pipeline assignment A2 = A1 between
// arrays mapped onto disjoint subgroups (Figure 2): only the owners
// participate.
func ExampleAssign() {
	mach := machine.New(4, sim.Paragon())
	stats := mach.Run(func(p *machine.Proc) {
		g1 := group.MustNew([]int{0, 1})
		g2 := group.MustNew([]int{2, 3})
		a1 := dist.New[int64](p, dist.RowBlock2D(g1, 4, 2))
		a2 := dist.New[int64](p, dist.RowBlock2D(g2, 4, 2))
		a1.FillFunc(func(idx []int) int64 { return int64(10*idx[0] + idx[1]) })
		dist.Assign(p, a2, a1) // A2 = A1
		if full := dist.GatherGlobal(p, a2); full != nil {
			fmt.Println("a2 =", full)
		}
	})
	fmt.Printf("all messages delivered; %d processors participated\n", len(stats.Procs))
	// Output:
	// a2 = [0 1 10 11 20 21 30 31]
	// all messages delivered; 4 processors participated
}

// ExampleCShift shows the HPF CSHIFT intrinsic on a distributed vector.
func ExampleCShift() {
	mach := machine.New(2, sim.Paragon())
	mach.Run(func(p *machine.Proc) {
		g := group.World(2)
		src := dist.New[int64](p, dist.MustLayout(g, []int{6}, []dist.Axis{dist.BlockAxis()}, []int{2}))
		dst := dist.New[int64](p, dist.MustLayout(g, []int{6}, []dist.Axis{dist.BlockAxis()}, []int{2}))
		src.FillFunc(func(idx []int) int64 { return int64(idx[0]) })
		dist.CShift(p, dst, src, 0, 2) // dst[i] = src[(i+2) mod 6]
		if full := dist.GatherGlobal(p, dst); full != nil {
			fmt.Println(full)
		}
	})
	// Output:
	// [2 3 4 5 0 1]
}

// ExampleNewAligned shows HPF ALIGN: an array aligned at offset 4 into a
// template is co-located with the template elements it aligns with.
func ExampleNewAligned() {
	mach := machine.New(4, sim.Paragon())
	mach.Run(func(p *machine.Proc) {
		g := group.World(4)
		template := dist.MustLayout(g, []int{16}, []dist.Axis{dist.BlockAxis()}, []int{4})
		aligned, err := dist.NewAligned(template, []int{8}, []int{4})
		if err != nil {
			panic(err)
		}
		if p.ID() == 0 {
			for i := 0; i < 8; i++ {
				fmt.Printf("aligned[%d] on rank %d (template[%d] on rank %d)\n",
					i, aligned.OwnerRank(i), i+4, template.OwnerRank(i+4))
			}
		}
	})
	// Output:
	// aligned[0] on rank 1 (template[4] on rank 1)
	// aligned[1] on rank 1 (template[5] on rank 1)
	// aligned[2] on rank 1 (template[6] on rank 1)
	// aligned[3] on rank 1 (template[7] on rank 1)
	// aligned[4] on rank 2 (template[8] on rank 2)
	// aligned[5] on rank 2 (template[9] on rank 2)
	// aligned[6] on rank 2 (template[10] on rank 2)
	// aligned[7] on rank 2 (template[11] on rank 2)
}
