package dist

import (
	"fmt"

	"fxpar/internal/comm"
	"fxpar/internal/group"
	"fxpar/internal/machine"
)

// PackInto implements the irregular redistribution behind the paper's
// quicksort (Figure 4): it copies the elements of the 1D block-distributed
// src that satisfy keep, in global order, into dst starting at global index
// dstStart, and returns the number of elements copied. keep == nil keeps
// everything (a plain section copy, used by merge_result).
//
// Both arrays must be 1D BLOCK-distributed (local order is then global
// order). Source and destination may live on different — even disjoint —
// subgroups; processors in neither group return immediately (and must not
// call in that case a value is still returned: 0 consistent participation is
// required of union members only).
func PackInto[T any](p *machine.Proc, dst, src *Array[T], dstStart int, keep func(T) bool) int {
	check1DBlock(src.l, "PackInto source")
	check1DBlock(dst.l, "PackInto destination")
	isSrc := src.rank >= 0
	isDst := dst.rank >= 0
	if !isSrc && !isDst {
		return 0
	}
	u := group.Union(src.l.g, dst.l.g)

	// Count kept elements per source rank and share the vector with every
	// participant: gather to the source group's rank 0, then broadcast over
	// the union group.
	srcSize := src.l.g.Size()
	var counts []int
	if isSrc {
		cnt := 0
		if keep == nil {
			cnt = len(src.data)
		} else {
			for _, v := range src.data {
				if keep(v) {
					cnt++
				}
			}
		}
		counts = comm.GatherFlat(p, src.l.g, 0, []int{cnt})
	}
	rootU, ok := u.RankOf(src.l.g.Phys(0))
	if !ok {
		panic("dist: union group missing source root")
	}
	counts = comm.Bcast(p, u, rootU, counts)
	prefix := make([]int, srcSize+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
	}
	total := prefix[srcSize]
	if dstStart+total > dst.l.shape[0] {
		panic(fmt.Sprintf("dist: PackInto writes [%d,%d) into destination of length %d",
			dstStart, dstStart+total, dst.l.shape[0]))
	}

	elemBytes := comm.ElemBytes[T]()
	myID := p.ID()
	dstDim := dst.l.dims[0]

	// placeLocal copies vals into dst's local storage for the global range
	// [gLo, gLo+len(vals)), which is contiguous in local storage for BLOCK.
	placeLocal := func(gLo int, vals []T) {
		if len(vals) == 0 {
			return
		}
		lo := dstDim.localOf(gLo)
		copy(dst.data[lo:lo+len(vals)], vals)
	}

	if isSrc && counts[src.rank] > 0 {
		kept := make([]T, 0, counts[src.rank])
		if keep == nil {
			kept = append(kept, src.data...)
		} else {
			for _, v := range src.data {
				if keep(v) {
					kept = append(kept, v)
				}
			}
		}
		gLo := dstStart + prefix[src.rank]
		gHi := gLo + len(kept)
		// Split [gLo, gHi) over destination block owners, ascending.
		for r := 0; r < dst.l.g.Size(); r++ {
			bLo := r * dstDim.b
			bHi := bLo + dstDim.b
			if bHi > dst.l.shape[0] {
				bHi = dst.l.shape[0]
			}
			lo, hi := maxInt(gLo, bLo), minInt(gHi, bHi)
			if lo >= hi {
				continue
			}
			seg := kept[lo-gLo : hi-gLo]
			if dst.l.g.Phys(r) == myID {
				placeLocal(lo, seg)
			} else {
				buf := append([]T(nil), seg...)
				p.Send(dst.l.g.Phys(r), buf, len(buf)*elemBytes)
			}
		}
	}

	if isDst && len(dst.data) > 0 {
		myLo := dst.rank * dstDim.b
		myHi := myLo + dstDim.b
		if myHi > dst.l.shape[0] {
			myHi = dst.l.shape[0]
		}
		for s := 0; s < srcSize; s++ {
			gLo := dstStart + prefix[s]
			gHi := gLo + counts[s]
			lo, hi := maxInt(gLo, myLo), minInt(gHi, myHi)
			if lo >= hi {
				continue
			}
			if src.l.g.Phys(s) == myID {
				continue // placed locally in the sender phase
			}
			vals := recvSlice[T](p, src.l.g.Phys(s))
			if len(vals) != hi-lo {
				panic(fmt.Sprintf("dist: PackInto expected %d elements from source rank %d, got %d", hi-lo, s, len(vals)))
			}
			placeLocal(lo, vals)
		}
	}
	return total
}

// CopyRange1D copies all of src into dst[dstStart : dstStart+len(src)] —
// the section assignment used by the paper's merge_result.
func CopyRange1D[T any](p *machine.Proc, dst *Array[T], dstStart int, src *Array[T]) {
	PackInto(p, dst, src, dstStart, nil)
}

// FillRange1D sets dst[lo:hi) to v; owners fill locally, no communication.
func FillRange1D[T any](dst *Array[T], lo, hi int, v T) {
	check1DBlock(dst.l, "FillRange1D destination")
	if dst.rank < 0 || len(dst.data) == 0 {
		return
	}
	d := dst.l.dims[0]
	myLo := dst.rank * d.b
	myHi := myLo + d.b
	if myHi > dst.l.shape[0] {
		myHi = dst.l.shape[0]
	}
	lo, hi = maxInt(lo, myLo), minInt(hi, myHi)
	for i := lo; i < hi; i++ {
		dst.data[d.localOf(i)] = v
	}
}

func check1DBlock(l *Layout, what string) {
	if l.Rank() != 1 || l.dims[0].kind != Block {
		panic(fmt.Sprintf("dist: %s must be a 1D BLOCK array, got %v", what, l))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
