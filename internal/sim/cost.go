// Package sim defines the virtual-time cost model used by the simulated
// multicomputer. All performance results in this repository are expressed in
// virtual seconds computed from this model, which makes them deterministic
// and independent of the host machine and the Go scheduler.
//
// The model is the classic alpha/beta (latency/bandwidth) model for
// communication plus a flop rate for computation:
//
//	message time  = Alpha + bytes*Beta
//	compute time  = flops / FlopRate
//	barrier time  = BarrierAlpha * ceil(log2 P)   (dissemination barrier)
//
// The Paragon preset approximates a mid-1990s Intel Paragon node: a few
// effective MFLOP/s, ~100 microsecond message latency, tens of MB/s
// bandwidth. Absolute agreement with the paper's 1996 testbed is not a goal;
// preserving cost *ratios* (and therefore mapping decisions, crossovers and
// speedup shapes) is.
package sim

import (
	"fmt"
	"math"
)

// CostModel holds the machine parameters for virtual-time accounting.
// The zero value is not useful; use a preset or fill every field.
type CostModel struct {
	// FlopRate is sustained floating point operations per second per node.
	FlopRate float64
	// Alpha is the fixed per-message latency in seconds.
	Alpha float64
	// Beta is the per-byte transfer time in seconds (1/bandwidth).
	Beta float64
	// SendOverhead is the CPU time the sender spends injecting a message.
	// It is charged to the sender's clock; Alpha+bytes*Beta is charged to
	// the wire (i.e. to the receiver's completion time).
	SendOverhead float64
	// MemByte is per-byte local copy cost (packing/unpacking).
	MemByte float64
	// BarrierAlpha is the per-round cost of a dissemination barrier.
	BarrierAlpha float64
	// IORate is bytes per second for the (single) I/O subsystem, used by
	// applications with explicit input/output phases (e.g. Airshed).
	IORate float64
	// PerHop is the additional wire latency per network hop on
	// topology-aware machines (machine.NewMesh). Zero models a flat
	// network; the Paragon preset keeps it zero because its per-hop cost
	// (~40 ns) is negligible against Alpha.
	PerHop float64
}

// Paragon returns a cost model loosely calibrated to a 64-node Intel
// Paragon of the mid 1990s.
func Paragon() CostModel {
	return CostModel{
		FlopRate:     10e6,       // 10 MFLOP/s effective
		Alpha:        120e-6,     // 120 us message latency
		Beta:         1 / 30e6,   // 30 MB/s
		SendOverhead: 40e-6,      // 40 us CPU injection cost
		MemByte:      1 / 200e6,  // 200 MB/s local copy
		BarrierAlpha: 80e-6,      // per dissemination round
		IORate:       5e6,        // 5 MB/s I/O subsystem
	}
}

// Workstation returns a model of a modern cluster node; used in tests to
// check that mapping decisions respond to the cost model.
func Workstation() CostModel {
	return CostModel{
		FlopRate:     1e9,
		Alpha:        5e-6,
		Beta:         1 / 1e9,
		SendOverhead: 1e-6,
		MemByte:      1 / 4e9,
		BarrierAlpha: 3e-6,
		IORate:       100e6,
	}
}

// FlopTime returns the virtual seconds to execute n floating point
// operations on one node.
func (c CostModel) FlopTime(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n / c.FlopRate
}

// WireTime returns the virtual seconds a message of the given size spends
// between send injection and availability at the receiver.
func (c CostModel) WireTime(bytes int) float64 {
	return c.Alpha + float64(bytes)*c.Beta
}

// CopyTime returns the virtual seconds to copy bytes locally.
func (c CostModel) CopyTime(bytes int) float64 {
	return float64(bytes) * c.MemByte
}

// BarrierTime returns the virtual seconds a dissemination barrier over p
// processors costs each participant.
func (c CostModel) BarrierTime(p int) float64 {
	if p <= 1 {
		return 0
	}
	return c.BarrierAlpha * math.Ceil(math.Log2(float64(p)))
}

// IOTime returns the virtual seconds to read or write bytes through the
// machine's I/O subsystem.
func (c CostModel) IOTime(bytes int) float64 {
	if c.IORate <= 0 {
		return 0
	}
	return float64(bytes) / c.IORate
}

// Validate reports an error if the model has non-positive core rates.
func (c CostModel) Validate() error {
	if c.FlopRate <= 0 {
		return fmt.Errorf("sim: FlopRate must be positive, got %g", c.FlopRate)
	}
	if c.Alpha < 0 || c.Beta < 0 || c.SendOverhead < 0 || c.MemByte < 0 || c.BarrierAlpha < 0 || c.PerHop < 0 {
		return fmt.Errorf("sim: negative cost parameter in %+v", c)
	}
	return nil
}
