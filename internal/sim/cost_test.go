package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParagonValid(t *testing.T) {
	if err := Paragon().Validate(); err != nil {
		t.Fatalf("Paragon preset invalid: %v", err)
	}
	if err := Workstation().Validate(); err != nil {
		t.Fatalf("Workstation preset invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	c := Paragon()
	c.FlopRate = 0
	if err := c.Validate(); err == nil {
		t.Error("zero FlopRate accepted")
	}
	c = Paragon()
	c.Alpha = -1
	if err := c.Validate(); err == nil {
		t.Error("negative Alpha accepted")
	}
	c = Paragon()
	c.Beta = -1e-9
	if err := c.Validate(); err == nil {
		t.Error("negative Beta accepted")
	}
}

func TestFlopTime(t *testing.T) {
	c := CostModel{FlopRate: 1e6}
	if got := c.FlopTime(1e6); got != 1.0 {
		t.Errorf("FlopTime(1e6) = %g, want 1", got)
	}
	if got := c.FlopTime(0); got != 0 {
		t.Errorf("FlopTime(0) = %g, want 0", got)
	}
	if got := c.FlopTime(-5); got != 0 {
		t.Errorf("FlopTime(-5) = %g, want 0", got)
	}
}

func TestWireTimeComponents(t *testing.T) {
	c := CostModel{Alpha: 1e-4, Beta: 1e-8}
	if got := c.WireTime(0); got != 1e-4 {
		t.Errorf("WireTime(0) = %g, want alpha", got)
	}
	want := 1e-4 + 1000*1e-8
	if got := c.WireTime(1000); math.Abs(got-want) > 1e-15 {
		t.Errorf("WireTime(1000) = %g, want %g", got, want)
	}
}

func TestWireTimeMonotonic(t *testing.T) {
	c := Paragon()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.WireTime(x) <= c.WireTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarrierTime(t *testing.T) {
	c := CostModel{BarrierAlpha: 1e-5}
	if got := c.BarrierTime(1); got != 0 {
		t.Errorf("BarrierTime(1) = %g, want 0", got)
	}
	if got := c.BarrierTime(2); got != 1e-5 {
		t.Errorf("BarrierTime(2) = %g, want 1 round", got)
	}
	if got := c.BarrierTime(64); math.Abs(got-6e-5) > 1e-18 {
		t.Errorf("BarrierTime(64) = %g, want 6 rounds", got)
	}
	if got := c.BarrierTime(65); math.Abs(got-7e-5) > 1e-18 {
		t.Errorf("BarrierTime(65) = %g, want 7 rounds", got)
	}
}

func TestIOTime(t *testing.T) {
	c := CostModel{IORate: 1e6}
	if got := c.IOTime(2e6); got != 2.0 {
		t.Errorf("IOTime = %g, want 2", got)
	}
	c.IORate = 0
	if got := c.IOTime(100); got != 0 {
		t.Errorf("IOTime with zero rate = %g, want 0", got)
	}
}

func TestCopyTime(t *testing.T) {
	c := CostModel{MemByte: 1e-9}
	if got := c.CopyTime(1000); math.Abs(got-1e-6) > 1e-18 {
		t.Errorf("CopyTime = %g, want 1e-6", got)
	}
}
