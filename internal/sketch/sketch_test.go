package sketch

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// sketchValues is a deterministic spread of awkward inputs: several octaves,
// bin-boundary values, underflow, duplicates.
func sketchValues() []float64 {
	r := rand.New(rand.NewSource(42))
	vals := []float64{0, 1e-12, 1e-9, 2e-9, 1, 1, 1, 2, 4, 1 << 20, 0.125, 0.1251}
	for i := 0; i < 500; i++ {
		vals = append(vals, math.Exp(r.Float64()*20-10)) // ~e^-10 .. e^10
	}
	return vals
}

func TestSketchQuantileWithinOneBinOfExact(t *testing.T) {
	vals := sketchValues()
	var s Sketch
	for _, v := range vals {
		s.Add(v)
	}
	if s.Count != int64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		exact := ExactQuantile(vals, q)
		est := s.Quantile(q)
		if !SameBin(exact, est) {
			t.Errorf("Quantile(%g) = %g not in the same bin as exact %g", q, est, exact)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %g, want Max %g", got, s.Max)
	}
	// The clamped-midpoint estimate never leaves the observed range.
	for _, q := range []float64{0, 0.5, 1} {
		if est := s.Quantile(q); est < s.Min || est > s.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, est, s.Min, s.Max)
		}
	}
}

func TestSketchMeanWithinBinWidthOfExact(t *testing.T) {
	vals := sketchValues()[4:] // drop underflow values, which bias the mean bin
	var s Sketch
	var sum float64
	for _, v := range vals {
		s.Add(v)
		sum += v
	}
	exact := sum / float64(len(vals))
	if got := s.Mean(); math.Abs(got-exact)/exact > 1.0/sketchSub {
		t.Errorf("Mean() = %g, exact %g: error beyond one bin width", got, exact)
	}
}

// TestSketchMergePermutationInvariant is the satellite property test at the
// sketch level: sharding the same values across 64 sketches and merging the
// shards in every one of a batch of random permutations (plus identity and
// reversal) must produce byte-identical results.
func TestSketchMergePermutationInvariant(t *testing.T) {
	vals := sketchValues()
	const shards = 64
	parts := make([]Sketch, shards)
	for i, v := range vals {
		parts[i%shards].Add(v)
	}
	merge := func(order []int) []byte {
		var total Sketch
		for _, i := range order {
			total.Merge(&parts[i])
		}
		b, err := json.Marshal(&total)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	identity := make([]int, shards)
	for i := range identity {
		identity[i] = i
	}
	want := merge(identity)
	reversed := make([]int, shards)
	for i := range reversed {
		reversed[i] = shards - 1 - i
	}
	r := rand.New(rand.NewSource(7))
	orders := [][]int{reversed}
	for k := 0; k < 50; k++ {
		p := r.Perm(shards)
		orders = append(orders, p)
	}
	for k, order := range orders {
		if got := merge(order); !bytes.Equal(got, want) {
			t.Fatalf("merge order %d produced different bytes:\n got %s\nwant %s", k, got, want)
		}
	}
	// Hierarchical (tree) merge must equal the flat fold too.
	var left, right Sketch
	for i := 0; i < shards/2; i++ {
		left.Merge(&parts[i])
	}
	for i := shards / 2; i < shards; i++ {
		right.Merge(&parts[i])
	}
	left.Merge(&right)
	b, _ := json.Marshal(&left)
	if !bytes.Equal(b, want) {
		t.Fatalf("tree merge produced different bytes:\n got %s\nwant %s", b, want)
	}
}

func TestSketchUnderflowAndOverflow(t *testing.T) {
	var s Sketch
	s.Add(math.NaN())
	s.Add(-1)
	s.Add(0)
	s.Add(1e-15)
	if s.Bins[0] != 4 {
		t.Errorf("underflow bin = %d, want 4", s.Bins[0])
	}
	huge := math.Ldexp(1, 40)
	s.Add(huge)
	if s.Bins[SketchBins-1] != 1 {
		t.Errorf("overflow bin = %d, want 1", s.Bins[SketchBins-1])
	}
	if s.Max != huge {
		t.Errorf("Max = %g, want %g", s.Max, huge)
	}
	if got := s.Quantile(1); got != huge {
		t.Errorf("Quantile(1) = %g, want %g (overflow estimate clamps to Max)", got, huge)
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	var s Sketch
	for _, v := range sketchValues() {
		s.Add(v)
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Sketch
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != s {
		t.Fatalf("round trip mismatch")
	}
	b2, _ := json.Marshal(&back)
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-marshal differs: %s vs %s", b, b2)
	}
	var empty Sketch
	if got := empty.Summary(); got != "empty" {
		t.Errorf("empty Summary = %q", got)
	}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty sketch quantile/mean not zero")
	}
}

func TestSketchBinBoundsConsistent(t *testing.T) {
	// Every bin's bounds must contain exactly the values that index to it.
	for i := 1; i < SketchBins-1; i++ {
		lo, hi := sketchBinBounds(i)
		if got := sketchIndex(lo); got != i {
			t.Fatalf("bin %d: lower bound %g indexes to %d", i, lo, got)
		}
		mid := lo + (hi-lo)/2
		if got := sketchIndex(mid); got != i {
			t.Fatalf("bin %d: midpoint %g indexes to %d", i, mid, got)
		}
	}
}
