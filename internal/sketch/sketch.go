package sketch

// Sketch is a mergeable, deterministic quantile sketch over non-negative
// virtual-time durations. It is the scale tier's replacement for raw-sample
// retention: memory is a fixed ~4KB regardless of how many values are added,
// and merging two sketches is pure integer addition plus min/max folds, so
// the result of merging any number of per-shard sketches is byte-identical
// under every merge order. That property is what lets per-proc telemetry
// shards fold up an O(log P) tree in whatever grouping is convenient while
// still producing one canonical answer.
//
// Binning is logarithmic with linear interpolation inside each octave
// (HDR-histogram style, computed from math.Frexp so no transcendental call
// sits on the hot path): sketchSub sub-buckets per power of two, giving a
// worst-case relative bin width of 1/sketchSub (12.5% at sketchSub=8).
// Quantile estimates clamp to the observed [Min, Max], so on small inputs
// the estimate is always within one bin of the exact order statistic —
// the contract the exact-vs-sketch equivalence tests pin.
//
// Bin 0 is the underflow bin: NaN, negative, and sub-nanosecond values all
// land there (matching Histogram's clamp semantics), and the final bin
// catches overflow beyond ~2^34 virtual seconds.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

const (
	// sketchSubBits fixes the sub-bucket count per octave; 8 sub-buckets
	// bound the relative error of a midpoint estimate at ~6.25%.
	sketchSubBits = 3
	sketchSub     = 1 << sketchSubBits
	// sketchMinExp is the exponent of the smallest distinguishable value:
	// 2^-30 s ≈ 0.93 ns of virtual time. Anything smaller is underflow.
	sketchMinExp = -30
	// sketchOctaves spans 2^-30 .. 2^34 seconds — far beyond any makespan
	// the simulator produces.
	sketchOctaves = 64
	// SketchBins is the fixed bin count: underflow + octaves*sub + overflow.
	SketchBins = sketchOctaves*sketchSub + 2
)

// sketchMinValue is the lower bound of bin 1 (2^sketchMinExp seconds).
var sketchMinValue = math.Ldexp(1, sketchMinExp)

// Sketch accumulates values into fixed log-spaced bins. The zero value is
// an empty sketch ready for use. Sketch is not concurrency-safe; shard it
// per writer and Merge the shards.
type Sketch struct {
	Count int64
	Min   float64
	Max   float64
	Bins  [SketchBins]int64
}

// sketchIndex maps a value to its bin. Pure function of the value: the same
// v always lands in the same bin on every platform (frexp is exact).
func sketchIndex(v float64) int {
	if !(v >= sketchMinValue) { // catches NaN, negatives, underflow
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	oct := exp - 1 - sketchMinExp
	if oct < 0 {
		return 0
	}
	if oct >= sketchOctaves {
		return SketchBins - 1
	}
	sub := int((frac*2 - 1) * sketchSub) // linear position inside the octave
	if sub >= sketchSub {
		sub = sketchSub - 1
	}
	return 1 + oct*sketchSub + sub
}

// sketchBinBounds returns the half-open value range [lo, hi) of a bin.
func sketchBinBounds(i int) (lo, hi float64) {
	switch {
	case i <= 0:
		return 0, sketchMinValue
	case i >= SketchBins-1:
		return math.Ldexp(1, sketchMinExp+sketchOctaves), math.Inf(1)
	}
	oct := (i - 1) / sketchSub
	sub := (i - 1) % sketchSub
	base := math.Ldexp(1, sketchMinExp+oct)
	step := base / sketchSub
	lo = base + float64(sub)*step
	return lo, lo + step
}

// Add records one value. NaN and negative values are clamped to 0 (the
// underflow bin), matching Histogram's semantics, so Min/Max stay ordered.
func (s *Sketch) Add(v float64) {
	if !(v >= 0) {
		v = 0
	}
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Count++
	s.Bins[sketchIndex(v)]++
}

// Merge folds o into s. Integer bin adds and min/max folds commute and
// associate exactly, so any merge order over any sharding of the same
// value multiset produces a byte-identical Sketch.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min, s.Max = o.Min, o.Max
	} else {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	for i := range s.Bins {
		s.Bins[i] += o.Bins[i]
	}
}

// binEstimate is the representative value reported for a bin: the midpoint,
// clamped to the observed [Min, Max] so estimates never leave the data's
// range (this is what makes small-P estimates land within one bin of exact).
func (s *Sketch) binEstimate(i int) float64 {
	if i >= SketchBins-1 {
		// The overflow bin has no midpoint; the observed Max is the best
		// (and a deterministic) representative.
		return s.Max
	}
	lo, hi := sketchBinBounds(i)
	mid := lo + (hi-lo)/2
	if mid < s.Min {
		mid = s.Min
	}
	if mid > s.Max {
		mid = s.Max
	}
	return mid
}

// Quantile returns the estimate for quantile q in [0, 1] (q=0.5 is the
// median, q=1 the max). The rank convention matches sorting the values and
// taking element ceil(q*Count) (1-based), so Quantile(1) == Max exactly and
// every estimate is the representative of the bin holding that order
// statistic. Returns 0 on an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i := range s.Bins {
		seen += s.Bins[i]
		if seen >= rank {
			return s.binEstimate(i)
		}
	}
	return s.Max
}

// Mean returns the bin-weighted mean: sum over bins of count*representative
// in fixed ascending bin order, divided by Count. Because it is computed
// from the (merge-order-invariant) bins rather than a running float sum, it
// is byte-identical however the sketch was sharded and merged — at the cost
// of the bin-width relative error. Returns 0 on an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	var sum float64
	for i := range s.Bins {
		if c := s.Bins[i]; c != 0 {
			sum += float64(c) * s.binEstimate(i)
		}
	}
	return sum / float64(s.Count)
}

// sketchJSON is the wire form: occupied bins as sorted [index, count]
// pairs, so the encoding is sparse, canonical, and diff-stable.
type sketchJSON struct {
	Count int64      `json:"count"`
	Min   float64    `json:"min"`
	Max   float64    `json:"max"`
	Bins  [][2]int64 `json:"bins"`
}

// MarshalJSON encodes the sketch sparsely: only occupied bins, in ascending
// index order. Two equal sketches always serialize to identical bytes.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	w := sketchJSON{Count: s.Count, Min: s.Min, Max: s.Max, Bins: [][2]int64{}}
	for i := range s.Bins {
		if s.Bins[i] != 0 {
			w.Bins = append(w.Bins, [2]int64{int64(i), s.Bins[i]})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the sparse form written by MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var w sketchJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Sketch{Count: w.Count, Min: w.Min, Max: w.Max}
	for _, b := range w.Bins {
		if b[0] < 0 || b[0] >= int64(SketchBins) {
			return fmt.Errorf("sketch: bin index %d out of range [0,%d)", b[0], SketchBins)
		}
		s.Bins[b[0]] = b[1]
	}
	return nil
}

// Summary renders the canonical one-line digest used by reports:
// count, min/p50/p90/p99/max. Durations are virtual seconds.
func (s *Sketch) Summary() string {
	if s.Count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d min=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g",
		s.Count, s.Min, s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99), s.Max)
}

// ExactQuantile is the reference the sketch is tested against: the same
// rank convention (1-based ceil(q*n) order statistic) computed from the raw
// values. Exported for reuse by stats' exact mode and by tests.
func ExactQuantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// SameBin reports whether two values land in the same sketch bin — the
// "within one bin" acceptance predicate for sketch-vs-exact comparisons.
func SameBin(a, b float64) bool {
	return sketchIndex(a) == sketchIndex(b)
}

// WriteSketchText renders a labeled multi-line view of one or more named
// sketches, aligned for terminal output.
func WriteSketchText(w *strings.Builder, name string, s *Sketch) {
	fmt.Fprintf(w, "%-12s %s\n", name, s.Summary())
}
