package machine

import (
	"sync"
	"testing"
)

// sliceTracer records events for assertions.
type sliceTracer struct {
	mu  sync.Mutex
	evs []Event
}

func (t *sliceTracer) Record(e Event) {
	t.mu.Lock()
	t.evs = append(t.evs, e)
	t.mu.Unlock()
}

func TestSpanEventsNestAndCarryDepth(t *testing.T) {
	m := New(1, testCost())
	tr := &sliceTracer{}
	m.SetTracer(tr)
	m.Run(func(p *Proc) {
		p.BeginSpan("outer")
		p.Compute(1000)
		p.BeginSpan("inner")
		p.Compute(2000)
		p.EndSpan()
		p.EndSpan()
	})
	wantKinds := []EventKind{EvSpanBegin, EvCompute, EvSpanBegin, EvCompute, EvSpanEnd, EvSpanEnd}
	wantLabels := []string{"outer", "", "inner", "", "inner", "outer"}
	wantDepths := []int{0, 0, 1, 0, 1, 0}
	if len(tr.evs) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %+v", len(tr.evs), len(wantKinds), tr.evs)
	}
	for i, e := range tr.evs {
		if e.Kind != wantKinds[i] || e.Label != wantLabels[i] || e.Depth != wantDepths[i] {
			t.Errorf("event %d = kind %v label %q depth %d, want %v %q %d",
				i, e.Kind, e.Label, e.Depth, wantKinds[i], wantLabels[i], wantDepths[i])
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	// The inner span's markers bracket exactly the second compute.
	if tr.evs[2].Start != 0.001 || tr.evs[4].Start != 0.003 {
		t.Errorf("inner span = [%g, %g], want [0.001, 0.003]", tr.evs[2].Start, tr.evs[4].Start)
	}
}

func TestSendRecvEventsCarryPeerAndBytes(t *testing.T) {
	m := New(2, testCost())
	tr := &sliceTracer{}
	m.SetTracer(tr)
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 64)
		} else {
			p.Recv(0)
		}
	})
	var send, wait, recv *Event
	for i := range tr.evs {
		e := &tr.evs[i]
		switch e.Kind {
		case EvSend:
			send = e
		case EvWait:
			wait = e
		case EvRecv:
			recv = e
		}
	}
	if send == nil || send.Peer != 1 || send.Bytes != 64 {
		t.Errorf("send event = %+v, want peer 1 bytes 64", send)
	}
	if wait == nil || wait.Peer != 0 || wait.Bytes != 64 {
		t.Errorf("wait event = %+v, want peer 0 bytes 64", wait)
	}
	if recv == nil || recv.Peer != 0 || recv.Bytes != 64 || recv.Start != recv.End {
		t.Errorf("recv marker = %+v, want zero-length with peer 0 bytes 64", recv)
	}
	if recv.End != wait.End {
		t.Errorf("recv marker at %g, want at wait end %g", recv.End, wait.End)
	}
}

func TestUnclosedSpanPanics(t *testing.T) {
	m := New(1, testCost())
	m.SetTracer(&sliceTracer{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for unclosed span")
		}
	}()
	m.Run(func(p *Proc) { p.BeginSpan("leak") })
}

func TestEndSpanWithoutBeginPanics(t *testing.T) {
	m := New(1, testCost())
	m.SetTracer(&sliceTracer{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for unmatched EndSpan")
		}
	}()
	m.Run(func(p *Proc) { p.EndSpan() })
}

func TestSpansFreeWithoutTracer(t *testing.T) {
	m := New(1, testCost())
	stats := m.Run(func(p *Proc) {
		p.BeginSpan("ignored")
		p.Compute(1000)
		p.EndSpan()
		if p.SpanDepth() != 0 {
			t.Error("span stack grew without a tracer")
		}
	})
	if stats.Procs[0].Finish != 0.001 {
		t.Errorf("finish = %g", stats.Procs[0].Finish)
	}
}

// TestNilTracerHotPathNoAllocs is the benchmark guard of the observability
// layer: with no tracer installed, the compute/send/recv hot path of the
// simulator — including the span calls the fx runtime and collectives now
// make — must not allocate at all. Proc is only goroutine-affine by
// convention, so driving both ends from the test goroutine is safe here.
func TestNilTracerHotPathNoAllocs(t *testing.T) {
	m := New(2, testCost())
	p0 := &Proc{m: m, id: 0}
	p1 := &Proc{m: m, id: 1}
	var payload any = []int{1, 2, 3, 4}
	// Warm the mailbox so its backing array reaches steady-state capacity.
	for i := 0; i < 4; i++ {
		p0.Send(1, payload, 32)
		p1.Recv(0)
	}
	allocs := testing.AllocsPerRun(500, func() {
		p0.Compute(100)
		p0.BeginSpan("untraced")
		p0.Send(1, payload, 32)
		p1.Recv(0)
		p0.EndSpan()
		p1.IO(64)
	})
	if allocs != 0 {
		t.Errorf("nil-tracer hot path allocates %.1f times per op, want 0", allocs)
	}
}

// TestMailboxReusesCapacity pins the head-index mailbox behaviour: a long
// alternating send/receive stream must not grow the queue.
func TestMailboxReusesCapacity(t *testing.T) {
	m := New(2, testCost())
	p0 := &Proc{m: m, id: 0}
	p1 := &Proc{m: m, id: 1}
	for i := 0; i < 1000; i++ {
		p0.Send(1, i, 8)
		got := p1.Recv(0)
		if got.Data.(int) != i {
			t.Fatalf("message %d: got %v", i, got.Data)
		}
	}
	mb := m.mail[1*m.n+0].Load()
	if mb == nil {
		t.Fatal("mailbox for pair (1,0) never materialized")
	}
	if cap(mb.queue) > 4 {
		t.Errorf("mailbox capacity grew to %d under alternating traffic", cap(mb.queue))
	}
}
