package machine

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// This file is the golden cross-check of the machine core's parallel
// setup/teardown machinery (tree.go): every spawn/fold tree, the arena proc
// state, the fault pre-scan via ProcFaultLister, and the SPSC mailbox
// representation must produce results byte-identical to the retained
// seed-loop reference implementations selected by the serialCore switch.
// "Byte-identical" means: the same RunStats, the same traced event values
// (compared after a canonical (proc, seq) sort — arrival order at the tracer
// is host-dependent, content is not), and the same failure text when a run
// panics (drain reports, RunError aggregates).

// golden is one run's complete observable output.
type golden struct {
	stats   RunStats
	events  []Event
	failure string
}

// goldenRun executes body on a fresh machine and captures everything a
// caller can observe. serial selects the seed-loop reference implementations
// for the duration of the run.
func goldenRun(t *testing.T, e Engine, n int, serial bool, fp FaultPlan, body func(*Proc)) golden {
	t.Helper()
	if serial {
		serialCore = true
		defer func() { serialCore = false }()
	}
	var g golden
	tr := &sliceTracer{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.failure = failureString(r)
			}
		}()
		m := New(n, testCost())
		m.SetEngine(e)
		m.SetTracer(tr)
		if fp != nil {
			m.SetFaults(fp)
		}
		g.stats = m.Run(body)
	}()
	g.events = tr.evs
	sort.Slice(g.events, func(i, j int) bool {
		if g.events[i].Proc != g.events[j].Proc {
			return g.events[i].Proc < g.events[j].Proc
		}
		return g.events[i].Seq < g.events[j].Seq
	})
	return g
}

// failureString renders a Run panic deterministically: RunError aggregates
// are expanded to every per-processor panic (already in ascending proc
// order), other panics (the drain report string) print as-is.
func failureString(r any) string {
	if re, ok := r.(*RunError); ok {
		parts := []string{re.Error()}
		for _, p := range re.Panics {
			parts = append(parts, fmt.Sprintf("proc %d: %v", p.Proc, p.Value))
		}
		return strings.Join(parts, "; ")
	}
	return fmt.Sprint(r)
}

func compareGolden(t *testing.T, label string, want, got golden) {
	t.Helper()
	if got.failure != want.failure {
		t.Fatalf("%s: failure diverges from reference:\n got: %q\nwant: %q", label, got.failure, want.failure)
	}
	if !reflect.DeepEqual(got.stats, want.stats) {
		for i := range want.stats.Procs {
			if i < len(got.stats.Procs) && got.stats.Procs[i] != want.stats.Procs[i] {
				t.Fatalf("%s: ProcStats[%d] = %+v, reference %+v", label, i, got.stats.Procs[i], want.stats.Procs[i])
			}
		}
		t.Fatalf("%s: RunStats shape diverges: %d procs vs reference %d",
			label, len(got.stats.Procs), len(want.stats.Procs))
	}
	if len(got.events) != len(want.events) {
		t.Fatalf("%s: %d events, reference %d", label, len(got.events), len(want.events))
	}
	for i := range want.events {
		if got.events[i] != want.events[i] {
			t.Fatalf("%s: event %d = %+v, reference %+v", label, i, got.events[i], want.events[i])
		}
	}
}

// ringBody is the cross-check workload: every processor opens a span, does
// id-dependent compute, sends to its successor, receives from its
// predecessor (a self-send-then-receive when n == 1), and does id-dependent
// IO — exercising spans, compute, send/recv wait accounting, and IO events
// with per-processor variation so index mixups cannot cancel out.
func ringBody(n int) func(*Proc) {
	return func(p *Proc) {
		next := (p.ID() + 1) % n
		prev := (p.ID() + n - 1) % n
		p.BeginSpan("ring")
		p.Compute(float64(40 + p.ID()%7))
		p.Send(next, p.ID(), 16+p.ID()%9)
		p.Recv(prev)
		p.IO(64 + p.ID()%5)
		p.EndSpan()
	}
}

// treeCheckEngines are the execution cores the tree mode is checked under:
// the condvar engine, the single-worker coop scheduler (slice mailboxes),
// and the sharded multi-worker coop scheduler (SPSC mailboxes).
func treeCheckEngines() []Engine {
	return []Engine{Goroutine(), Coop(1), Coop(4)}
}

// treeCheckSizes is the property test's P sweep: every size in [1, 257] —
// covering off-by-one splits, odd sizes, and every boundary of the small
// regime — plus 1<<10 (past spawnGrain, so treeSpawn actually forks) and
// 1<<14 (past initGrain, so the parallelFor trees and the parallel drain
// fold actually run parallel). Under the race detector the small range is
// decimated (the detector's ~10x slowdown times the CI engine matrix would
// dominate the suite) while every boundary and both tree-activating sizes
// are kept.
func treeCheckSizes() []int {
	var sizes []int
	if raceEnabled {
		sizes = append(sizes, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
			85, 127, 128, 129, 171, 255, 256, 257)
	} else {
		for n := 1; n <= 257; n++ {
			sizes = append(sizes, n)
		}
	}
	return append(sizes, 1<<10, 1<<14)
}

// TestTreeCoreMatchesSerialReference is the golden cross-check: for every
// machine size, a run under the spawn/fold trees (each engine) must be
// byte-identical — events, RunStats — to the seed-loop reference run. The
// serial spawn loop is also exercised once per size band under the SPSC
// mailboxes, so both (core mode) x (mailbox representation) combinations
// hold.
func TestTreeCoreMatchesSerialReference(t *testing.T) {
	for _, n := range treeCheckSizes() {
		body := ringBody(n)
		ref := goldenRun(t, Goroutine(), n, true, nil, body)
		if ref.failure != "" {
			t.Fatalf("P=%d: reference run failed: %s", n, ref.failure)
		}
		if len(ref.events) == 0 {
			t.Fatalf("P=%d: reference run recorded no events", n)
		}
		for _, e := range treeCheckEngines() {
			got := goldenRun(t, e, n, false, nil, body)
			compareGolden(t, fmt.Sprintf("P=%d %s/tree", n, e.Name()), ref, got)
		}
		if n%64 == 1 || n >= 1<<10 {
			got := goldenRun(t, Coop(4), n, true, nil, body)
			compareGolden(t, fmt.Sprintf("P=%d coop:4/serial", n), ref, got)
		}
	}
}

// drainBody leaves messages unconsumed: every third processor sends its
// successor an extra message nobody receives, so Run must panic with the
// drain report. The report's text (sorted pairs, capped listing, total) must
// be identical whether the drain walk ran serially or as a parallel fold.
func drainBody(n int) func(*Proc) {
	return func(p *Proc) {
		next := (p.ID() + 1) % n
		p.Send(next, nil, 8)
		if p.ID()%3 == 0 {
			p.Send(next, nil, 8)
		}
		p.Recv((p.ID() + n - 1) % n)
	}
}

func TestTreeDrainReportMatchesSerial(t *testing.T) {
	sizes := []int{3, 17, 130}
	if !raceEnabled {
		// Past initGrain the drain walk actually forks and merges.
		sizes = append(sizes, 1<<14)
	}
	for _, n := range sizes {
		body := drainBody(n)
		ref := goldenRun(t, Goroutine(), n, true, nil, body)
		if !strings.Contains(ref.failure, "unconsumed message(s) at program exit") {
			t.Fatalf("P=%d: reference run did not hit the drain report: %q", n, ref.failure)
		}
		for _, e := range treeCheckEngines() {
			got := goldenRun(t, e, n, false, nil, body)
			compareGolden(t, fmt.Sprintf("P=%d %s/tree drain", n, e.Name()), ref, got)
		}
	}
}

// slowTestPlan is an in-package fault plan implementing both FaultPlan and
// ProcFaultLister: processors congruent to 3 mod 11 run 2.5x slow, some
// messages are delayed or duplicated, nobody dies. probes counts SlowFactor
// and DeathTime consultations so the test can assert which pre-scan path Run
// took.
type slowTestPlan struct {
	probes atomic.Int64
}

func (tp *slowTestPlan) MessageFault(src, dst int, seq int64) MessageFault {
	var mf MessageFault
	if (src+dst+int(seq))%5 == 0 {
		mf.Delay = 3e-4
	}
	if (src*2+dst)%7 == 0 {
		mf.Duplicate = true
	}
	return mf
}

func (tp *slowTestPlan) SlowFactor(proc int) float64 {
	tp.probes.Add(1)
	if proc%11 == 3 {
		return 2.5
	}
	return 1
}

func (tp *slowTestPlan) DeathTime(proc int) (float64, bool) {
	tp.probes.Add(1)
	return 0, false
}

func (tp *slowTestPlan) ProcFaults(n int, visit func(proc int, slow, deathAt float64)) {
	for i := 3; i < n; i += 11 {
		visit(i, 2.5, 0)
	}
}

// TestFaultPreScanListerMatchesProbeLoop: a plan that can enumerate its
// victims must produce exactly the run the 2n-probe loop produces — and Run
// must actually use the lister (zero probes) in tree mode while the serial
// reference still probes every processor.
func TestFaultPreScanListerMatchesProbeLoop(t *testing.T) {
	for _, n := range []int{5, 64, 257, 1 << 10} {
		body := ringBody(n)
		refPlan := &slowTestPlan{}
		ref := goldenRun(t, Goroutine(), n, true, refPlan, body)
		if ref.failure != "" {
			t.Fatalf("P=%d: reference chaos run failed: %s", n, ref.failure)
		}
		if got := refPlan.probes.Load(); got != int64(2*n) {
			t.Fatalf("P=%d: serial reference made %d hook probes, want %d", n, got, 2*n)
		}
		for _, e := range treeCheckEngines() {
			plan := &slowTestPlan{}
			got := goldenRun(t, e, n, false, plan, body)
			if p := plan.probes.Load(); p != 0 {
				t.Errorf("P=%d %s: Run probed the hooks %d times despite the lister", n, e.Name(), p)
			}
			compareGolden(t, fmt.Sprintf("P=%d %s/tree lister", n, e.Name()), ref, got)
		}
	}
}

// killTestPlan adds a single death to slowTestPlan: the victim dies at its
// first post-compute operation, so its successor fails with DeadSenderError
// and Run panics with a two-panic RunError.
type killTestPlan struct {
	slowTestPlan
	victim int
}

func (tp *killTestPlan) DeathTime(proc int) (float64, bool) {
	tp.probes.Add(1)
	if proc == tp.victim {
		return 1e-7, true
	}
	return 0, false
}

func (tp *killTestPlan) ProcFaults(n int, visit func(proc int, slow, deathAt float64)) {
	for i := 0; i < n; i++ {
		slow, death := 0.0, 0.0
		if i%11 == 3 {
			slow = 2.5
		}
		if i == tp.victim {
			death = 1e-7
		}
		if slow > 0 || death > 0 {
			visit(i, slow, death)
		}
	}
}

// TestTreeCoreKillCascadeMatchesSerial: the failure path — death marker,
// panic capture, RunError aggregation and root-cause ordering — must be
// byte-identical between the tree core and the serial reference on every
// engine.
func TestTreeCoreKillCascadeMatchesSerial(t *testing.T) {
	for _, n := range []int{8, 130, 1 << 10} {
		plan := func() *killTestPlan { return &killTestPlan{victim: n / 2} }
		body := ringBody(n)
		ref := goldenRun(t, Goroutine(), n, true, plan(), body)
		if !strings.Contains(ref.failure, "died at virtual time") {
			t.Fatalf("P=%d: reference kill run did not fail with a death: %q", n, ref.failure)
		}
		for _, e := range treeCheckEngines() {
			got := goldenRun(t, e, n, false, plan(), body)
			compareGolden(t, fmt.Sprintf("P=%d %s/tree kill", n, e.Name()), ref, got)
		}
	}
}
