package machine

import (
	"runtime"
	"testing"
)

// Allocation guards for the scale-tier machine core: the panics bookkeeping
// must cost nothing on a clean run, the SPSC mailbox must recycle its nodes
// at steady state, and whole-run allocations must stay proportional to P
// (flat per processor) so a P=1M machine is P=16K times a constant, not
// something worse.

// TestPanicBookkeepingAllocationFree: the healthy path through the panic
// recorder — a deferred capture that finds no panic, then the post-run
// failed() check — performs zero allocations. The seed implementation
// allocated an O(P) []any slice per Run even when nothing panicked.
func TestPanicBookkeepingAllocationFree(t *testing.T) {
	var rec panicRecorder
	sawFailure := false
	allocs := testing.AllocsPerRun(200, func() {
		func() { defer rec.capture(7) }()
		if rec.failed() != nil {
			sawFailure = true
		}
	})
	if sawFailure {
		t.Fatal("healthy recorder reported failures")
	}
	if allocs != 0 {
		t.Errorf("healthy panic bookkeeping allocates %.1f per run, want 0", allocs)
	}
}

// TestPanicRecorderCapturesAndSorts: the recorder still does its job when
// processors do panic — every value captured, returned in ascending
// processor order regardless of capture order.
func TestPanicRecorderCapturesAndSorts(t *testing.T) {
	var rec panicRecorder
	boom := func(id int) {
		defer rec.capture(id)
		panic(id * 10)
	}
	for _, id := range []int{9, 2, 5} {
		func() {
			defer func() { recover() }() // capture re-panics through; absorb here
			boom(id)
		}()
	}
	failed := rec.failed()
	if len(failed) != 3 {
		t.Fatalf("recorded %d panics, want 3: %+v", len(failed), failed)
	}
	for i, want := range []int{2, 5, 9} {
		if failed[i].Proc != want || failed[i].Value != want*10 {
			t.Fatalf("failed[%d] = %+v, want proc %d value %d", i, failed[i], want, want*10)
		}
	}
}

// TestSPSCMailboxSteadyStateAllocFree: after the chain has grown to a
// cycle's depth once, a send/receive cycle through a multi-worker coop
// mailbox recycles consumed nodes instead of allocating — the lock-free
// representation keeps the slice representation's zero-alloc steady state.
func TestSPSCMailboxSteadyStateAllocFree(t *testing.T) {
	m := New(2, testCost())
	m.SetEngine(Coop(2))
	p0 := &Proc{m: m, id: 0}
	p1 := &Proc{m: m, id: 1}
	cycle := func() {
		for i := 0; i < 3; i++ {
			p0.Send(1, nil, 8)
		}
		for i := 0; i < 3; i++ {
			if _, ok := p1.TryRecv(0); !ok {
				t.Fatal("deposited message missing")
			}
		}
	}
	cycle() // warmup: grow the chain to the cycle's max depth
	if !m.mailboxFor(1, 0).spsc {
		t.Fatal("multi-worker coop mailbox did not use the SPSC representation")
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("SPSC steady-state send/receive cycle allocates %.1f, want 0", allocs)
	}
}

// runMallocs runs the ring workload untraced on a P-processor machine under
// the deterministic single-worker coop engine and returns the host
// allocation count of the whole Run.
func runMallocs(n int) float64 {
	m := New(n, testCost())
	m.SetEngine(Coop(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	m.Run(ringBody(n))
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs)
}

// TestRunAllocsPerProcFlat: allocations per processor must not grow with P
// across the sparse-directory regime — the arena proc state, mailbox slabs,
// inline pair caches, and allocation-free panics bookkeeping exist to make a
// clean large run cost a flat number of allocations per processor. The 1.25
// ceiling matches the checkobs -machine gate on the committed benchmark
// tier.
func TestRunAllocsPerProcFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation changes allocation counts")
	}
	small := runMallocs(4096) / 4096
	big := runMallocs(16384) / 16384
	t.Logf("allocs/proc: P=4096 %.2f, P=16384 %.2f", small, big)
	if big > small*1.25 {
		t.Errorf("allocs per proc grew from %.2f (P=4096) to %.2f (P=16384): spread %.2f > 1.25",
			small, big, big/small)
	}
}
