package machine

import (
	"sync"
)

// goroutineEngine is the preemptive execution core: one host goroutine per
// simulated processor, with blocked receivers parked on a per-mailbox
// condition variable and woken by the sender's Signal. The Go runtime
// schedules the processors; host execution order is arbitrary (virtual-time
// results are deterministic regardless). This is the original machine
// semantics and the default engine.
type goroutineEngine struct{}

var goroutineSingleton Engine = goroutineEngine{}

// Goroutine returns the preemptive goroutine-per-processor engine.
func Goroutine() Engine { return goroutineSingleton }

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (goroutineEngine) put(_ *Proc, mb *mailbox, msg Message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, msg)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (goroutineEngine) get(_ *Proc, mb *mailbox, _ int) Message {
	mb.mu.Lock()
	for mb.head == len(mb.queue) {
		mb.cond.Wait()
	}
	m := mb.take()
	mb.mu.Unlock()
	return m
}

func (goroutineEngine) tryGet(_ *Proc, mb *mailbox) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.take(), true
}

func (goroutineEngine) run(_ *Machine, procs []*Proc, body func(*Proc), panics []any) {
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p.id] = r
				}
			}()
			body(p)
		}(p)
	}
	wg.Wait()
}
