package machine

import (
	"sync"
)

// goroutineEngine is the preemptive execution core: one host goroutine per
// simulated processor, with blocked receivers parked on a per-mailbox
// condition variable and woken by the sender's Signal. The Go runtime
// schedules the processors; host execution order is arbitrary (virtual-time
// results are deterministic regardless). This is the original machine
// semantics and the default engine.
type goroutineEngine struct{}

var goroutineSingleton Engine = goroutineEngine{}

// Goroutine returns the preemptive goroutine-per-processor engine.
func Goroutine() Engine { return goroutineSingleton }

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) initMailbox(mb *mailbox) {
	mb.cond = sync.NewCond(&mb.mu)
}

func (goroutineEngine) put(_ *Proc, mb *mailbox, msg Message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, msg)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (goroutineEngine) wait(p *Proc, mb *mailbox, src int) bool {
	mb.mu.Lock()
	for mb.head == len(mb.queue) && !p.m.terminated(src) {
		mb.cond.Wait()
	}
	avail := mb.head < len(mb.queue)
	mb.mu.Unlock()
	return avail
}

func (goroutineEngine) tryGet(_ *Proc, mb *mailbox) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.take(), true
}

func (goroutineEngine) peek(_ *Proc, mb *mailbox) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.queue[mb.head], true
}

// senderTerminated broadcasts on every existing mailbox sourced at p: a
// receiver parked in wait re-checks and sees the termination flag.
// Broadcasting under the mailbox mutex orders the wakeup against a receiver
// that checked the flag just before it was set — by the time we hold the
// mutex, that receiver has either parked in cond.Wait (and gets the
// Broadcast) or not yet entered its check (and will see the flag). The
// per-source registry makes the walk O(out-degree); a mailbox created by a
// receiver concurrently with this termination is either in the snapshot or
// registered after it, in which case that receiver's wait observes the
// termination flag before parking (see Machine.mailboxFor).
func (goroutineEngine) senderTerminated(p *Proc) {
	for _, e := range p.m.mailboxesFrom(p.id) {
		e.mb.mu.Lock()
		e.mb.cond.Broadcast()
		e.mb.mu.Unlock()
	}
}

func (goroutineEngine) run(_ *Machine, procs []Proc, body func(*Proc), rec *panicRecorder) {
	var wg sync.WaitGroup
	wg.Add(len(procs))
	treeSpawn(len(procs), func(i int) {
		p := &procs[i]
		defer wg.Done()
		defer rec.capture(p.id)
		body(p)
	})
	wg.Wait()
}
