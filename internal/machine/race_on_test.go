//go:build race

package machine

// raceEnabled reports whether this test binary runs under the race
// detector, so sweep-style property tests can trim their size ranges to the
// detector's ~10x slowdown without losing boundary coverage.
const raceEnabled = true
