package machine

import (
	"errors"
	"reflect"
	"testing"
)

// rejectSampler drops every event while counting the consultations. It is
// deliberately allocation-free: the machine promises the emit path stays
// zero-alloc when a sampler rejects, and this stub must not hide a violation.
type rejectSampler struct{ calls int64 }

func (s *rejectSampler) SampleEvent(int, int64, EventKind) bool {
	s.calls++
	return false
}

// modSampler keeps every k-th event — a stateless function of (proc, seq),
// so the kept set must be engine-independent.
type modSampler struct{ k int64 }

func (s modSampler) SampleEvent(_ int, seq int64, _ EventKind) bool {
	return seq%s.k == 0
}

// TestSamplingRejectHotPathNoAllocs mirrors TestNilTracerHotPathNoAllocs
// with a tracer installed and a sampler dropping everything: the emit path
// — sequence advance, sampler consultation, early-out — must not allocate.
func TestSamplingRejectHotPathNoAllocs(t *testing.T) {
	m := New(2, testCost())
	m.SetTracer(&sliceTracer{})
	s := &rejectSampler{}
	m.SetSampler(s)
	p0 := &Proc{m: m, id: 0}
	p1 := &Proc{m: m, id: 1}
	var payload any = []int{1, 2, 3, 4}
	// Warm the mailbox and span stack to steady-state capacity.
	for i := 0; i < 4; i++ {
		p0.BeginSpan("warm")
		p0.Send(1, payload, 32)
		p1.Recv(0)
		p0.EndSpan()
	}
	allocs := testing.AllocsPerRun(500, func() {
		p0.Compute(100)
		p0.BeginSpan("sampled-out")
		p0.Send(1, payload, 32)
		p1.Recv(0)
		p0.EndSpan()
		p1.IO(64)
	})
	if allocs != 0 {
		t.Errorf("rejecting-sampler hot path allocates %.1f times per op, want 0", allocs)
	}
	if s.calls == 0 {
		t.Fatalf("sampler was never consulted")
	}
	if got := len(m.tracer.(*sliceTracer).evs); got != 0 {
		t.Errorf("rejecting sampler let %d events through", got)
	}
}

// TestSamplerSeqAdvancesForDroppedEvents pins the identity invariant: the
// per-processor sequence advances for every event, kept or dropped, so a
// recorded event's Seq is the same number it would carry unsampled.
func TestSamplerSeqAdvancesForDroppedEvents(t *testing.T) {
	run := func(sampler EventSampler) []Event {
		m := New(1, testCost())
		tr := &sliceTracer{}
		m.SetTracer(tr)
		m.SetSampler(sampler)
		m.Run(func(p *Proc) {
			p.BeginSpan("s")
			for i := 0; i < 6; i++ {
				p.Compute(1000)
			}
			p.EndSpan()
		})
		return tr.evs
	}
	full := run(nil)
	sampled := run(modSampler{k: 2})
	if len(sampled) >= len(full) {
		t.Fatalf("sampling dropped nothing: %d vs %d events", len(sampled), len(full))
	}
	bySeq := map[int64]Event{}
	for _, e := range full {
		bySeq[e.Seq] = e
	}
	for _, e := range sampled {
		want, ok := bySeq[e.Seq]
		if !ok {
			t.Fatalf("sampled event has Seq %d absent from the full trace", e.Seq)
		}
		if !reflect.DeepEqual(e, want) {
			t.Errorf("sampled event %+v differs from unsampled event with same Seq %+v", e, want)
		}
		if e.Seq%2 != 0 {
			t.Errorf("modSampler{2} kept odd Seq %d", e.Seq)
		}
	}
}

// TestSampledStreamIdenticalAcrossEngines: the kept set is a pure function
// of (proc, seq, kind), so both engines must record byte-identical sampled
// streams.
func TestSampledStreamIdenticalAcrossEngines(t *testing.T) {
	run := func(e Engine) []Event {
		m := New(8, testCost())
		m.SetEngine(e)
		tr := &sliceTracer{}
		m.SetTracer(tr)
		m.SetSampler(modSampler{k: 3})
		m.Run(func(p *Proc) {
			n := p.Machine().N()
			for round := 0; round < 5; round++ {
				p.Compute(float64(100 * (p.ID() + 1)))
				p.Send((p.ID()+1)%n, p.ID(), 16)
				p.Recv((p.ID() + n - 1) % n)
			}
		})
		evs := append([]Event(nil), tr.evs...)
		sortEventsForTest(evs)
		return evs
	}
	g := run(Goroutine())
	c := run(Coop(2))
	if !reflect.DeepEqual(g, c) {
		t.Fatalf("sampled streams differ across engines: %d vs %d events", len(g), len(c))
	}
	if len(g) == 0 {
		t.Fatalf("sampled stream is empty")
	}
}

// sortEventsForTest orders events by (proc, seq) — the canonical order used
// by trace.SortEvents, re-declared here because machine cannot import trace.
func sortEventsForTest(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j-1], evs[j]
			if a.Proc < b.Proc || (a.Proc == b.Proc && a.Seq <= b.Seq) {
				break
			}
			evs[j-1], evs[j] = b, a
		}
	}
}

// TestSparseMailboxDirectoryRing exercises the sparse pair directory used
// above denseMailProcs: a full-machine ring must run, drain, and register
// exactly the touched pairs in the per-source registry.
func TestSparseMailboxDirectoryRing(t *testing.T) {
	n := denseMailProcs + 1
	m := New(n, testCost())
	if m.mail != nil {
		t.Fatalf("machine of %d procs still uses the dense directory", n)
	}
	stats := m.Run(func(p *Proc) {
		nn := p.Machine().N()
		p.Send((p.ID()+1)%nn, p.ID(), 8)
		msg := p.Recv((p.ID() + nn - 1) % nn)
		if msg.Data.(int) != (p.ID()+nn-1)%nn {
			panic("wrong payload")
		}
	})
	if len(stats.Procs) != n {
		t.Fatalf("got %d proc stats, want %d", len(stats.Procs), n)
	}
	for src := 0; src < n; src++ {
		if got := len(m.mailboxesFrom(src)); got != 1 {
			t.Fatalf("proc %d registered %d mailboxes, want 1 (ring out-degree)", src, got)
		}
	}
}

// TestSparseDeadSenderCascades pins the registry-based termination broadcast
// on a sparse machine: a receiver blocked on a processor that exits without
// sending must fail with DeadSenderError instead of hanging.
func TestSparseDeadSenderCascades(t *testing.T) {
	n := denseMailProcs + 1
	m := New(n, testCost())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("run completed; want RunError with DeadSenderError")
		}
		re, ok := r.(*RunError)
		if !ok {
			t.Fatalf("panic value %T, want *RunError", r)
		}
		var dead *DeadSenderError
		if !errors.As(re, &dead) {
			t.Fatalf("RunError %v does not wrap DeadSenderError", re)
		}
		if dead.Src != 0 {
			t.Errorf("dead sender = %d, want 0", dead.Src)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 1 {
			p.Recv(0) // proc 0 exits immediately; this must fail, not hang
		}
	})
}
