package machine

import (
	"math"
	"strings"
	"testing"

	"fxpar/internal/sim"
)

// testCost is a simple model with round numbers for exact assertions.
func testCost() sim.CostModel {
	return sim.CostModel{
		FlopRate:     1e6,  // 1 us per flop
		Alpha:        1e-3, // 1 ms
		Beta:         1e-6, // 1 us per byte
		SendOverhead: 1e-4, // 100 us
		MemByte:      0,
		BarrierAlpha: 0,
		IORate:       1e6,
	}
}

func TestSendRecvTimestamp(t *testing.T) {
	m := New(2, testCost())
	var recvClock float64
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(1000) // 1 ms
			p.Send(1, []float64{1, 2, 3}, 24)
		case 1:
			msg := p.Recv(0)
			if msg.Src != 0 {
				t.Errorf("Src = %d, want 0", msg.Src)
			}
			if got := msg.Data.([]float64); len(got) != 3 || got[2] != 3 {
				t.Errorf("bad payload %v", got)
			}
			recvClock = p.Now()
		}
	})
	// Sender: 1 ms compute + 0.1 ms overhead = 1.1 ms at injection.
	// Wire: 1 ms alpha + 24 us = 1.024 ms. Arrival: 2.124 ms.
	want := 1e-3 + 1e-4 + 1e-3 + 24e-6
	if math.Abs(recvClock-want) > 1e-12 {
		t.Errorf("receiver clock = %g, want %g", recvClock, want)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	m := New(2, testCost())
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 42, 4)
		case 1:
			p.Compute(1e6) // 1 second, far past arrival
			before := p.Now()
			p.Recv(0)
			if p.Now() != before {
				t.Errorf("clock moved from %g to %g on late recv", before, p.Now())
			}
			if p.IdleTime() != 0 {
				t.Errorf("idle time %g for a message that was already there", p.IdleTime())
			}
		}
	})
}

func TestIdleAccounting(t *testing.T) {
	m := New(2, testCost())
	var idle float64
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(5000) // 5 ms
			p.Send(1, nil, 0)
		case 1:
			p.Recv(0)
			idle = p.IdleTime()
		}
	})
	want := 5e-3 + 1e-4 + 1e-3 // sender compute + overhead + alpha
	if math.Abs(idle-want) > 1e-12 {
		t.Errorf("idle = %g, want %g", idle, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		m := New(8, testCost())
		stats := m.Run(func(p *Proc) {
			// Ring exchange with data-dependent compute.
			n := p.Machine().N()
			for round := 0; round < 20; round++ {
				p.Compute(float64(100 * (p.ID() + 1)))
				p.Send((p.ID()+1)%n, p.ID(), 8)
				p.Recv((p.ID() - 1 + n) % n)
			}
		})
		out := make([]float64, len(stats.Procs))
		for i, ps := range stats.Procs {
			out[i] = ps.Finish
		}
		return out
	}
	a := run()
	for trial := 0; trial < 5; trial++ {
		b := run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: proc %d finish %g != %g (virtual time not deterministic)", trial, i, b[i], a[i])
			}
		}
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	m := New(2, testCost())
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 100; i++ {
				p.Send(1, i, 8)
			}
		case 1:
			for i := 0; i < 100; i++ {
				msg := p.Recv(0)
				if got := msg.Data.(int); got != i {
					t.Fatalf("message %d arrived out of order: got %d", i, got)
				}
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	m := New(1, testCost())
	m.Run(func(p *Proc) {
		p.Send(0, "hello", 5)
		msg := p.Recv(0)
		if msg.Data.(string) != "hello" {
			t.Errorf("self-send payload %v", msg.Data)
		}
	})
}

func TestTryRecv(t *testing.T) {
	m := New(2, testCost())
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 7, 8)
			p.Send(1, "done", 4)
		case 1:
			// Wait for the sentinel via blocking recv order: first message
			// must be 7, second "done".
			if v := p.Recv(0).Data.(int); v != 7 {
				t.Errorf("got %d", v)
			}
			if _, ok := p.TryRecv(0); !ok {
				// The second message may not have been deposited yet in real
				// time; fall back to blocking.
				msg := p.Recv(0)
				if msg.Data.(string) != "done" {
					t.Errorf("got %v", msg.Data)
				}
				return
			}
		}
	})
}

func TestUnconsumedMessagePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for unconsumed message")
		}
		if !strings.Contains(r.(string), "unconsumed") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	m := New(2, testCost())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, 8)
		}
	})
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from processor goroutine")
		}
	}()
	m := New(4, testCost())
	m.Run(func(p *Proc) {
		if p.ID() == 2 {
			panic("boom")
		}
	})
}

func TestStatsAccumulate(t *testing.T) {
	m := New(2, testCost())
	stats := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(1000)
			p.Send(1, []byte{1, 2, 3, 4}, 4)
			p.IO(1000)
		} else {
			p.Recv(0)
		}
	})
	p0 := stats.Procs[0]
	if p0.MsgsSent != 1 || p0.BytesSent != 4 {
		t.Errorf("sent stats = %d msgs / %d bytes", p0.MsgsSent, p0.BytesSent)
	}
	wantBusy := 1e-3 + 1e-4 + 1e-3 // compute + send overhead + IO of 1000 bytes
	if math.Abs(p0.Busy-wantBusy) > 1e-12 {
		t.Errorf("busy = %g, want %g", p0.Busy, wantBusy)
	}
	if got := stats.MakespanTime(); got < p0.Finish {
		t.Errorf("makespan %g < proc0 finish %g", got, p0.Finish)
	}
	if stats.TotalBusy() <= 0 {
		t.Error("TotalBusy should be positive")
	}
}

func TestElapseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := New(1, testCost())
	m.Run(func(p *Proc) { p.Elapse(-1) })
}

func TestInvalidDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := New(2, testCost())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(5, nil, 0)
		}
	})
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(0, testCost())
}
