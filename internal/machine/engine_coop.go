package machine

import (
	"fmt"
	"sync"
)

// coopEngine is the cooperative, dependency-driven execution core. All
// simulated processors are multiplexed onto a bounded set of host worker
// slots (default one): a processor runs uninterrupted until it blocks on an
// empty mailbox or finishes, then hands its slot directly to the ready
// processor with the lowest virtual clock — the cooperative analogue of a
// discrete-event scheduler. Blocked receivers are parked in a central
// ready/waiting structure instead of per-mailbox condition variables, and a
// deposit into a mailbox with a parked receiver moves that receiver to the
// ready heap; there is no per-message Signal and no host wakeup for
// messages whose receiver is still running.
//
// With one worker slot (the default), at most one processor executes at any
// host instant and every transfer of control flows through a channel
// handoff, so mailbox operations need no locks at all: a deposit is a plain
// slice append. Host execution order is then fully deterministic —
// lowest-virtual-clock-first — which also makes BlockTracer callbacks
// reproducible. With more slots, mailboxes fall back to mutex protection
// (still condvar-free).
//
// Virtual time is computed by the same max-rule as every engine, so all
// traced events, metrics, and RunStats are byte-identical to the goroutine
// engine's. Unlike the goroutine engine — where a cyclic wait hangs the run
// forever — the coop scheduler detects the all-blocked state and fails the
// run with a panic naming the blocked (receiver, sender) pairs.
type coopEngine struct {
	workers int
	// shuffled breaks same-clock ready-heap ties by a seeded hash of the
	// processor id instead of by id: a deterministic schedule perturbation
	// (selector suffix "+shuffle@SEED") used to flush out hidden
	// host-order dependencies. Virtual-time results must be — and are
	// asserted to be — identical either way.
	shuffled    bool
	shuffleSeed uint64
}

// Coop returns the cooperative run-queue engine with the given number of
// host worker slots; workers < 1 means one. One slot is the sweet spot for
// simulation campaigns: host parallelism comes from running independent
// simulations concurrently (internal/sweep), and a single-slot machine pays
// no synchronization on its message hot path.
func Coop(workers int) Engine {
	if workers < 1 {
		workers = 1
	}
	return &coopEngine{workers: workers}
}

// CoopShuffled is Coop with seeded tie-breaking of same-clock ready
// processors (the "coop:N+shuffle@SEED" selector).
func CoopShuffled(workers int, seed uint64) Engine {
	if workers < 1 {
		workers = 1
	}
	return &coopEngine{workers: workers, shuffled: true, shuffleSeed: seed}
}

func (e *coopEngine) Name() string {
	name := "coop"
	if e.workers != 1 {
		name = fmt.Sprintf("coop:%d", e.workers)
	}
	if e.shuffled {
		name = fmt.Sprintf("%s+shuffle@%d", name, e.shuffleSeed)
	}
	return name
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijection used
// to derive the shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// coop mailboxes have no condvar: receivers park in the scheduler.
func (e *coopEngine) newMailbox() *mailbox { return &mailbox{} }

// coopProc is the scheduler's per-processor state.
type coopProc struct {
	p   *Proc
	run *coopRun
	// wake is the processor's parking spot: buffered so a slot grant can
	// never be lost even if it arrives before the processor parks.
	wake chan struct{}
	// readyKey orders the ready heap: the virtual clock the processor will
	// resume at. Written by the owner before registering as a waiter, or by
	// the depositor that readied it (ordered by the mailbox handoff).
	readyKey float64
	// heapIdx is the position in the ready heap (-1 when not enqueued).
	heapIdx int
	// blockedSrc is the peer a blocked receive waits on (-1 when running).
	blockedSrc int
	// tie breaks same-readyKey heap comparisons before the id does: 0
	// normally (id order), a seeded hash of the id in shuffle mode.
	tie uint64
	// done marks a finished processor (written under run.mu).
	done bool
	// poison tells a parked processor to abort: the scheduler found the
	// machine deadlocked.
	poison bool
}

// coopRun is the shared scheduler state of one Machine.Run.
type coopRun struct {
	workers  int
	lockMail bool // workers > 1: mailboxes need their mutex
	// lockSched mirrors lockMail for the scheduler state below: with one
	// worker only one processor goroutine is ever between wake and park, and
	// every control transfer goes through a wake channel, so the channel
	// handoffs already order all scheduler accesses.
	lockSched bool

	mu      sync.Mutex
	ready   []*coopProc // min-heap by (readyKey, id)
	running int         // processors currently holding a worker slot
	live    int         // processors not yet finished
	cps     []coopProc
}

// lock/unlock guard the scheduler state; with a single worker the wake
// channel handoffs already serialize every access, so the mutex is skipped.
func (r *coopRun) lock() {
	if r.lockSched {
		r.mu.Lock()
	}
}

func (r *coopRun) unlock() {
	if r.lockSched {
		r.mu.Unlock()
	}
}

func (e *coopEngine) run(m *Machine, procs []*Proc, body func(*Proc), panics []any) {
	n := len(procs)
	w := e.workers
	if w > n {
		w = n
	}
	r := &coopRun{
		workers:   w,
		lockMail:  w > 1,
		lockSched: w > 1,
		ready:     make([]*coopProc, 0, n),
		live:      n,
		cps:       make([]coopProc, n),
	}
	for i := range r.cps {
		cp := &r.cps[i]
		cp.p = procs[i]
		cp.run = r
		cp.wake = make(chan struct{}, 1)
		cp.heapIdx = -1
		cp.blockedSrc = -1
		if e.shuffled {
			cp.tie = mix64(e.shuffleSeed ^ uint64(i))
		}
		procs[i].cp = cp
	}
	var wg sync.WaitGroup
	for i := range r.cps {
		wg.Add(1)
		go func(cp *coopProc) {
			defer wg.Done()
			<-cp.wake
			// finish runs after the recover below (LIFO), so the slot
			// handoff happens even when the body panics.
			defer r.finish(cp)
			defer func() {
				if rec := recover(); rec != nil {
					panics[cp.p.id] = rec
				}
			}()
			if cp.poison {
				panic(&DeadlockError{Proc: cp.p.id, Src: cp.blockedSrc, Blocked: r.blockedCount()})
			}
			body(cp.p)
		}(&r.cps[i])
	}
	// Seed: every processor is ready at clock 0; grant the first w slots in
	// heap order (ties broken by id, so processor 0 runs first).
	r.lock()
	for i := range r.cps {
		r.push(&r.cps[i])
	}
	first := make([]*coopProc, 0, w)
	for len(first) < w {
		cp := r.pop()
		if cp == nil {
			break
		}
		r.running++
		first = append(first, cp)
	}
	r.unlock()
	for _, cp := range first {
		cp.wake <- struct{}{}
	}
	wg.Wait()
}

func (e *coopEngine) put(p *Proc, mb *mailbox, msg Message) {
	cp := p.cp
	if cp == nil {
		// Proc driven outside Run (tests): single goroutine, no scheduler.
		mb.queue = append(mb.queue, msg)
		return
	}
	r := cp.run
	if r.lockMail {
		mb.mu.Lock()
	}
	mb.queue = append(mb.queue, msg)
	waiter := mb.waiter
	mb.waiter = nil
	if waiter != nil {
		// The parked receiver resumes at max(its clock, arrival) — order
		// the ready heap by that resume time. Reading the waiter's clock is
		// ordered by its waiter registration (it parked before we saw it).
		key := waiter.p.clock
		if msg.ArriveAt > key {
			key = msg.ArriveAt
		}
		waiter.readyKey = key
	}
	if r.lockMail {
		mb.mu.Unlock()
	}
	if waiter != nil {
		r.readyProc(waiter)
	}
}

// wait parks the caller until a message is deposited or the sender
// terminates; it never consumes. The termination check happens under the
// same mailbox critical section as the waiter registration, so it cannot
// race the terminating sender's scan: the scan runs after the termination
// flag is set, hence it either sees our registration or we saw the flag.
func (e *coopEngine) wait(p *Proc, mb *mailbox, src int) bool {
	cp := p.cp
	if cp == nil {
		// Proc driven outside Run (tests): only the already-deposited case
		// can succeed, there is no scheduler to yield to.
		if mb.head < len(mb.queue) {
			return true
		}
		panic(fmt.Sprintf("machine: processor %d blocking Recv from %d outside Run under the coop engine", p.id, src))
	}
	r := cp.run
	if r.lockMail {
		mb.mu.Lock()
	}
	if mb.head < len(mb.queue) {
		if r.lockMail {
			mb.mu.Unlock()
		}
		return true
	}
	if p.m.terminated(src) {
		if r.lockMail {
			mb.mu.Unlock()
		}
		return false
	}
	cp.blockedSrc = src
	cp.readyKey = p.clock
	mb.waiter = cp
	if r.lockMail {
		mb.mu.Unlock()
	}
	r.yield(cp)
	<-cp.wake
	if cp.poison {
		panic(&DeadlockError{Proc: cp.p.id, Src: cp.blockedSrc, Blocked: r.blockedCount()})
	}
	cp.blockedSrc = -1
	// A wakeup means a deposit — or the sender's termination — readied us;
	// the caller re-checks the queue (and calls wait again, which then
	// reports the termination).
	return true
}

func (e *coopEngine) tryGet(p *Proc, mb *mailbox) (Message, bool) {
	lock := p.cp != nil && p.cp.run.lockMail
	if lock {
		mb.mu.Lock()
		defer mb.mu.Unlock()
	}
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.take(), true
}

func (e *coopEngine) peek(p *Proc, mb *mailbox) (Message, bool) {
	lock := p.cp != nil && p.cp.run.lockMail
	if lock {
		mb.mu.Lock()
		defer mb.mu.Unlock()
	}
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.queue[mb.head], true
}

// senderTerminated readies every receiver parked on a mailbox sourced at p.
// Called from p's goroutine after the termination flag is set and before
// the scheduler's finish step, so the woken waiters reach the ready heap
// ahead of the all-blocked (deadlock) check that finish may run.
func (e *coopEngine) senderTerminated(p *Proc) {
	cp := p.cp
	if cp == nil {
		return
	}
	r := cp.run
	for _, e := range p.m.mailboxesFrom(p.id) {
		mb := e.mb
		if r.lockMail {
			mb.mu.Lock()
		}
		waiter := mb.waiter
		mb.waiter = nil
		if r.lockMail {
			mb.mu.Unlock()
		}
		if waiter != nil {
			// The waiter resumes at its own clock: nothing arrived, it will
			// observe the termination and fail or time out.
			r.readyProc(waiter)
		}
	}
}

// yield releases the caller's worker slot: hand it to the lowest-clock ready
// processor, or park it free. Called by a processor about to block; the
// caller parks on its wake channel immediately after.
func (r *coopRun) yield(cp *coopProc) {
	r.lock()
	if next := r.pop(); next != nil {
		r.unlock()
		next.wake <- struct{}{}
		return
	}
	r.running--
	if r.running == 0 {
		// Every live processor, caller included, is blocked on a receive
		// with no runnable sender: deadlock. Poison and reschedule all of
		// them so each aborts with a diagnostic instead of hanging forever.
		next := r.poisonAllLocked()
		r.unlock()
		if next != nil {
			next.wake <- struct{}{}
		}
		return
	}
	r.unlock()
}

// finish retires a completed processor and hands its slot on.
func (r *coopRun) finish(cp *coopProc) {
	r.lock()
	cp.done = true
	r.live--
	if next := r.pop(); next != nil {
		r.unlock()
		next.wake <- struct{}{}
		return
	}
	r.running--
	if r.running == 0 && r.live > 0 {
		next := r.poisonAllLocked()
		r.unlock()
		if next != nil {
			next.wake <- struct{}{}
		}
		return
	}
	r.unlock()
}

// readyProc moves a parked receiver to the ready set: grant it a free worker
// slot immediately, or enqueue it on the ready heap.
func (r *coopRun) readyProc(cp *coopProc) {
	r.lock()
	if r.running < r.workers {
		r.running++
		r.unlock()
		cp.wake <- struct{}{}
		return
	}
	r.push(cp)
	r.unlock()
}

// poisonAllLocked marks every unfinished processor as deadlocked and
// requeues it, then grants one slot so the poisoned processors unwind
// sequentially (each panic is captured per-processor and reported by Run).
// Returns the processor to wake, if any. Caller holds the scheduler lock.
func (r *coopRun) poisonAllLocked() *coopProc {
	for i := range r.cps {
		cp := &r.cps[i]
		if !cp.done && cp.heapIdx < 0 {
			cp.poison = true
			r.push(cp)
		}
	}
	next := r.pop()
	if next != nil {
		r.running++
	}
	return next
}

// blockedCount reports how many processors had not finished when the
// deadlock verdict was reached (for the DeadlockError diagnostic).
func (r *coopRun) blockedCount() int {
	r.lock()
	blocked := 0
	for i := range r.cps {
		if !r.cps[i].done {
			blocked++
		}
	}
	r.unlock()
	return blocked
}

// --- ready heap: min-heap by (readyKey, tie, id) ---------------------------

func coopLess(a, b *coopProc) bool {
	if a.readyKey != b.readyKey {
		return a.readyKey < b.readyKey
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.p.id < b.p.id
}

func (r *coopRun) push(cp *coopProc) {
	r.ready = append(r.ready, cp)
	i := len(r.ready) - 1
	cp.heapIdx = i
	for i > 0 {
		parent := (i - 1) / 2
		if !coopLess(r.ready[i], r.ready[parent]) {
			break
		}
		r.ready[i], r.ready[parent] = r.ready[parent], r.ready[i]
		r.ready[i].heapIdx = i
		r.ready[parent].heapIdx = parent
		i = parent
	}
}

func (r *coopRun) pop() *coopProc {
	n := len(r.ready)
	if n == 0 {
		return nil
	}
	top := r.ready[0]
	last := r.ready[n-1]
	r.ready[n-1] = nil
	r.ready = r.ready[:n-1]
	top.heapIdx = -1
	if n > 1 {
		r.ready[0] = last
		last.heapIdx = 0
		i := 0
		for {
			l, rt := 2*i+1, 2*i+2
			small := i
			if l < n-1 && coopLess(r.ready[l], r.ready[small]) {
				small = l
			}
			if rt < n-1 && coopLess(r.ready[rt], r.ready[small]) {
				small = rt
			}
			if small == i {
				break
			}
			r.ready[i], r.ready[small] = r.ready[small], r.ready[i]
			r.ready[i].heapIdx = i
			r.ready[small].heapIdx = small
			i = small
		}
	}
	return top
}
