package machine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// paddedAtomicU64 is an atomic.Uint64 padded out to a cache line so the
// per-shard minimum caches of adjacent shards don't false-share.
type paddedAtomicU64 struct {
	atomic.Uint64
	_ [56]byte
}

// coopEngine is the cooperative, dependency-driven execution core. All
// simulated processors are multiplexed onto a bounded set of host worker
// slots (default one): a processor runs uninterrupted until it blocks on an
// empty mailbox or finishes, then hands its slot directly to the ready
// processor with the lowest virtual clock — the cooperative analogue of a
// discrete-event scheduler. Blocked receivers are parked in a central
// ready/waiting structure instead of per-mailbox condition variables, and a
// deposit into a mailbox with a parked receiver moves that receiver to the
// ready heap; there is no per-message Signal and no host wakeup for
// messages whose receiver is still running.
//
// With one worker slot (the default), at most one processor executes at any
// host instant and every transfer of control flows through a channel
// handoff, so mailbox operations need no synchronization at all: a deposit
// is a plain slice append, and host execution order is fully deterministic
// — lowest-virtual-clock-first — which also makes BlockTracer callbacks
// reproducible.
//
// With more slots the engine stays lock-free on the message path: each
// ordered pair has one producer and one consumer, so mailboxes switch to
// the SPSC chain representation (spsc.go) and a parked receiver is a single
// atomic pointer the depositor claims with a Swap. The scheduler shards its
// ready heap per worker (contiguous processor blocks), with a lock-free
// minimum-key cache per shard so the lowest-clock handoff scans W atomics
// instead of taking a global lock; the global mutex guards only slot-count
// transitions and the deadlock verdict.
//
// Virtual time is computed by the same max-rule as every engine, so all
// traced events, metrics, and RunStats are byte-identical to the goroutine
// engine's. Unlike the goroutine engine — where a cyclic wait hangs the run
// forever — the coop scheduler detects the all-blocked state and fails the
// run with a panic naming the blocked (receiver, sender) pairs.
type coopEngine struct {
	workers int
	// shuffled breaks same-clock ready-heap ties by a seeded hash of the
	// processor id instead of by id: a deterministic schedule perturbation
	// (selector suffix "+shuffle@SEED") used to flush out hidden
	// host-order dependencies. Virtual-time results must be — and are
	// asserted to be — identical either way.
	shuffled    bool
	shuffleSeed uint64
}

// Coop returns the cooperative run-queue engine with the given number of
// host worker slots; workers < 1 means one. One slot pays no
// synchronization anywhere; more slots run independent processors in
// parallel on multi-core hosts (campaign-level parallelism via
// internal/sweep remains the alternative when many simulations are in
// flight).
func Coop(workers int) Engine {
	if workers < 1 {
		workers = 1
	}
	return &coopEngine{workers: workers}
}

// CoopShuffled is Coop with seeded tie-breaking of same-clock ready
// processors (the "coop:N+shuffle@SEED" selector).
func CoopShuffled(workers int, seed uint64) Engine {
	if workers < 1 {
		workers = 1
	}
	return &coopEngine{workers: workers, shuffled: true, shuffleSeed: seed}
}

func (e *coopEngine) Name() string {
	name := "coop"
	if e.workers != 1 {
		name = fmt.Sprintf("coop:%d", e.workers)
	}
	if e.shuffled {
		name = fmt.Sprintf("%s+shuffle@%d", name, e.shuffleSeed)
	}
	return name
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijection used
// to derive the shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Coop mailboxes have no condvar: receivers park in the scheduler. Beyond
// one worker the slice queue would need a mutex, so the mailbox switches to
// the lock-free SPSC chain instead. The representation is a property of the
// mailbox (not of the running processor) so Procs driven outside Run use
// the same code paths.
func (e *coopEngine) initMailbox(mb *mailbox) {
	if e.workers > 1 {
		mb.spscInit()
	}
}

// coopProc is the scheduler's per-processor state.
type coopProc struct {
	p   *Proc
	run *coopRun
	// wake is the processor's parking spot: buffered so a slot grant can
	// never be lost even if it arrives before the processor parks.
	wake chan struct{}
	// readyKey orders the ready heap: the virtual clock the processor will
	// resume at. Written by the owner before registering as a waiter, or by
	// the depositor that readied it (ordered by the atomic waiter claim).
	readyKey float64
	// heapIdx is the position in the (per-shard) ready heap (-1 when not
	// enqueued).
	heapIdx int
	// blockedSrc is the peer a blocked receive waits on (-1 when running).
	blockedSrc int
	// shard is the ready-heap shard this processor parks on (multi-worker).
	shard int32
	// tie breaks same-readyKey heap comparisons before the id does: 0
	// normally (id order), a seeded hash of the id in shuffle mode.
	tie uint64
	// done marks a finished processor (written under run.mu beyond one
	// worker).
	done bool
	// poison tells a parked processor to abort: the scheduler found the
	// machine deadlocked.
	poison bool
}

// shardEmpty is the minKey cache value of a shard with nothing ready; it
// compares greater than every Float64bits of a non-negative readyKey.
const shardEmpty = ^uint64(0)

// coopShard is one worker's slice of the ready structure: a min-heap under
// its own mutex plus a lock-free cache of the heap minimum's readyKey, so
// the cross-shard lowest-clock scan reads one atomic per shard. Padded to a
// cache line to keep neighbouring shards from false sharing.
type coopShard struct {
	mu     sync.Mutex
	ready  []*coopProc
	minKey paddedAtomicU64
}

// updateMin refreshes the shard's minimum-key cache; callers hold sh.mu.
// Virtual clocks are non-negative, so Float64bits preserves their order and
// shardEmpty sorts above all of them.
func (sh *coopShard) updateMin() {
	if len(sh.ready) == 0 {
		sh.minKey.Store(shardEmpty)
	} else {
		sh.minKey.Store(math.Float64bits(sh.ready[0].readyKey))
	}
}

// coopRun is the shared scheduler state of one Machine.Run.
type coopRun struct {
	workers int

	// mu guards running/live, the single-worker ready heap, and the
	// deadlock verdict. With a single worker the wake-channel handoffs
	// already serialize every scheduler access and the mutex is never
	// touched.
	mu      sync.Mutex
	ready   []*coopProc // single-worker ready min-heap by (readyKey, tie, id)
	running int         // processors currently holding a worker slot
	live    int         // processors not yet finished
	// shards is the per-worker sharded ready structure (nil with a single
	// worker); processor i parks on shard i/shardBlock.
	shards     []coopShard
	shardBlock int
	cps        []coopProc
}

func (e *coopEngine) run(m *Machine, procs []Proc, body func(*Proc), rec *panicRecorder) {
	n := len(procs)
	w := e.workers
	if w > n {
		w = n
	}
	r := &coopRun{
		workers: w,
		live:    n,
		cps:     make([]coopProc, n),
	}
	if w > 1 {
		r.shards = make([]coopShard, w)
		r.shardBlock = (n + w - 1) / w
	}
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cp := &r.cps[i]
			cp.p = &procs[i]
			cp.run = r
			cp.wake = make(chan struct{}, 1)
			cp.heapIdx = -1
			cp.blockedSrc = -1
			if r.shards != nil {
				cp.shard = int32(i / r.shardBlock)
			}
			if e.shuffled {
				cp.tie = mix64(e.shuffleSeed ^ uint64(i))
			}
			procs[i].cp = cp
		}
	})
	var wg sync.WaitGroup
	wg.Add(n)
	treeSpawn(n, func(i int) {
		cp := &r.cps[i]
		defer wg.Done()
		<-cp.wake
		// finish runs after the capture below (LIFO), so the slot handoff
		// happens even when the body panics.
		defer r.finish(cp)
		defer rec.capture(cp.p.id)
		if cp.poison {
			panic(&DeadlockError{Proc: cp.p.id, Src: cp.blockedSrc, Blocked: r.blockedCount()})
		}
		body(cp.p)
	})
	// Seed: every processor is ready at clock 0. With all keys equal and
	// ties broken by ascending id, an id-ordered slice already satisfies the
	// heap property, so the heaps are built by direct placement instead of n
	// pushes; shuffle mode perturbs the tie keys and sorts instead.
	r.seedReady(e.shuffled)
	// Grant the first w slots in heap order (processor 0 first by default).
	first := make([]*coopProc, 0, w)
	r.mu.Lock()
	for len(first) < w {
		cp := r.popAny()
		if cp == nil {
			break
		}
		r.running++
		first = append(first, cp)
	}
	r.mu.Unlock()
	for _, cp := range first {
		cp.wake <- struct{}{}
	}
	wg.Wait()
}

// seedReady fills the ready structure with every processor at key 0.
func (r *coopRun) seedReady(shuffled bool) {
	n := len(r.cps)
	if r.shards == nil {
		r.ready = make([]*coopProc, n)
		for i := range r.cps {
			r.ready[i] = &r.cps[i]
		}
		seedHeap(r.ready, shuffled)
		return
	}
	for s := range r.shards {
		// Both bounds clamp: when n is not a multiple of the block size the
		// last shards can start (not just end) past n and must come up empty.
		lo := s * r.shardBlock
		if lo > n {
			lo = n
		}
		hi := lo + r.shardBlock
		if hi > n {
			hi = n
		}
		sh := &r.shards[s]
		sh.ready = make([]*coopProc, 0, hi-lo)
		for i := lo; i < hi; i++ {
			sh.ready = append(sh.ready, &r.cps[i])
		}
		seedHeap(sh.ready, shuffled)
		sh.updateMin()
	}
}

// seedHeap establishes the heap invariant over a slice of equal-key
// processors: id order is already a valid min-heap (the tie-break is the
// id), shuffle mode sorts by the full comparator — a sorted slice is a
// valid heap too.
func seedHeap(h []*coopProc, shuffled bool) {
	if shuffled {
		sort.Slice(h, func(i, j int) bool { return coopLess(h[i], h[j]) })
	}
	for i, cp := range h {
		cp.heapIdx = i
	}
}

func (e *coopEngine) put(p *Proc, mb *mailbox, msg Message) {
	if mb.spsc {
		// Multi-worker path: publish the node, then claim any parked
		// receiver with one atomic Swap. The claim orders the readyKey
		// write: the receiver stored its clock before registering, and
		// stops touching its scheduling state until woken.
		mb.spscPut(msg)
		if w := mb.waiter.Swap(nil); w != nil {
			key := w.p.clock
			if msg.ArriveAt > key {
				key = msg.ArriveAt
			}
			w.readyKey = key
			w.run.readyProc(w)
		}
		return
	}
	// Slice path: single-worker scheduling (or a Proc driven outside Run —
	// cp == nil — where this goroutine is the only actor), so the append
	// needs no lock.
	mb.queue = append(mb.queue, msg)
	if w := mb.waiter.Swap(nil); w != nil {
		key := w.p.clock
		if msg.ArriveAt > key {
			key = msg.ArriveAt
		}
		w.readyKey = key
		w.run.readyProc(w)
	}
}

// wait parks the caller until a message is deposited or the sender
// terminates; it never consumes. Registration is an atomic store of the
// waiter pointer; the re-check after it closes the race with a concurrent
// depositor or terminating sender: they claim the registration with a Swap
// after their own publish, so either we observe their effect on the
// re-check (and claim ourselves back with a CAS) or they observe our
// registration and wake us — never neither, and the buffered wake channel
// makes "both" harmless.
func (e *coopEngine) wait(p *Proc, mb *mailbox, src int) bool {
	cp := p.cp
	if cp == nil {
		// Proc driven outside Run (tests): only the already-deposited case
		// can succeed, there is no scheduler to yield to.
		if mb.spsc {
			if mb.spscAny() {
				return true
			}
		} else if mb.head < len(mb.queue) {
			return true
		}
		panic(fmt.Sprintf("machine: processor %d blocking Recv from %d outside Run under the coop engine", p.id, src))
	}
	if mb.spsc {
		if mb.spscAny() {
			return true
		}
		if p.m.terminated(src) {
			return false
		}
		cp.blockedSrc = src
		cp.readyKey = p.clock
		mb.waiter.Store(cp)
		if mb.spscAny() || p.m.terminated(src) {
			if mb.waiter.CompareAndSwap(cp, nil) {
				// Claimed ourselves back before anyone saw the
				// registration; resume without parking.
				cp.blockedSrc = -1
				return true
			}
			// A depositor or the terminating sender claimed us and is
			// (or will be) waking us: fall through and park; the
			// buffered channel holds the grant.
		}
	} else {
		// Single-worker slice path: between the checks below and the yield
		// nothing else can run, so no re-check is needed.
		if mb.head < len(mb.queue) {
			return true
		}
		if p.m.terminated(src) {
			return false
		}
		cp.blockedSrc = src
		cp.readyKey = p.clock
		mb.waiter.Store(cp)
	}
	r := cp.run
	r.yield(cp)
	<-cp.wake
	if cp.poison {
		panic(&DeadlockError{Proc: cp.p.id, Src: cp.blockedSrc, Blocked: r.blockedCount()})
	}
	cp.blockedSrc = -1
	// A wakeup means a deposit — or the sender's termination — readied us;
	// the caller re-checks the queue (and calls wait again, which then
	// reports the termination).
	return true
}

func (e *coopEngine) tryGet(_ *Proc, mb *mailbox) (Message, bool) {
	if mb.spsc {
		return mb.spscPop()
	}
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.take(), true
}

func (e *coopEngine) peek(_ *Proc, mb *mailbox) (Message, bool) {
	if mb.spsc {
		return mb.spscPeek()
	}
	if mb.head == len(mb.queue) {
		return Message{}, false
	}
	return mb.queue[mb.head], true
}

// senderTerminated readies every receiver parked on a mailbox sourced at p.
// Called from p's goroutine after the termination flag is set and before
// the scheduler's finish step, so the woken waiters reach the ready heap
// ahead of the all-blocked (deadlock) check that finish may run. The
// atomic claim mirrors put's: a receiver that registered before our Swap is
// woken here; one that registers after observed the termination flag on its
// registration re-check (the flag store precedes this walk).
func (e *coopEngine) senderTerminated(p *Proc) {
	cp := p.cp
	if cp == nil {
		return
	}
	for _, ent := range p.m.mailboxesFrom(p.id) {
		if w := ent.mb.waiter.Swap(nil); w != nil {
			// The waiter resumes at its own clock (readyKey was set at
			// registration): nothing arrived, it will observe the
			// termination and fail or time out.
			w.run.readyProc(w)
		}
	}
}

// yield releases the caller's worker slot: hand it to the lowest-clock ready
// processor, or park it free. Called by a processor about to block; the
// caller parks on its wake channel immediately after.
func (r *coopRun) yield(cp *coopProc) {
	if r.shards != nil {
		// Fast path: direct handoff without the global lock.
		if next := r.popShards(); next != nil {
			next.wake <- struct{}{}
			return
		}
		r.mu.Lock()
		// Re-check under the lock before giving the slot up: a concurrent
		// slot-holder may have pushed a receiver after the scan above and
		// found no free slot. Once we hold mu, any processor it pushed is
		// visible (it released the shard before taking mu, or will take mu
		// after us and grant then) — and when we are the last slot holder
		// there is no concurrent pusher at all, so an empty re-check plus
		// running==1 is a sound deadlock verdict.
		if next := r.popShards(); next != nil {
			r.mu.Unlock()
			next.wake <- struct{}{}
			return
		}
		r.running--
		if r.running == 0 {
			next := r.poisonAllLocked()
			r.mu.Unlock()
			if next != nil {
				next.wake <- struct{}{}
			}
			return
		}
		r.mu.Unlock()
		return
	}
	if next := r.popSW(); next != nil {
		next.wake <- struct{}{}
		return
	}
	r.running--
	if r.running == 0 {
		// Every live processor, caller included, is blocked on a receive
		// with no runnable sender: deadlock. Poison and reschedule all of
		// them so each aborts with a diagnostic instead of hanging forever.
		if next := r.poisonAllLocked(); next != nil {
			next.wake <- struct{}{}
		}
	}
}

// finish retires a completed processor and hands its slot on.
func (r *coopRun) finish(cp *coopProc) {
	if r.shards != nil {
		r.mu.Lock()
		cp.done = true
		r.live--
		r.mu.Unlock()
		if next := r.popShards(); next != nil {
			next.wake <- struct{}{}
			return
		}
		r.mu.Lock()
		if next := r.popShards(); next != nil {
			r.mu.Unlock()
			next.wake <- struct{}{}
			return
		}
		r.running--
		if r.running == 0 && r.live > 0 {
			next := r.poisonAllLocked()
			r.mu.Unlock()
			if next != nil {
				next.wake <- struct{}{}
			}
			return
		}
		r.mu.Unlock()
		return
	}
	cp.done = true
	r.live--
	if next := r.popSW(); next != nil {
		next.wake <- struct{}{}
		return
	}
	r.running--
	if r.running == 0 && r.live > 0 {
		if next := r.poisonAllLocked(); next != nil {
			next.wake <- struct{}{}
		}
	}
}

// readyProc moves a parked receiver to the ready set: enqueue it on its
// shard (or the single heap), then grant a free worker slot to the best
// ready processor if one is available. Callers always hold a worker slot
// themselves (depositors and terminating senders run on granted slots),
// which is what makes the deadlock verdict in yield sound: running can only
// reach zero when no readyProc is in flight.
func (r *coopRun) readyProc(cp *coopProc) {
	if r.shards != nil {
		r.pushShard(cp)
		r.mu.Lock()
		if r.running < r.workers {
			if next := r.popShards(); next != nil {
				r.running++
				r.mu.Unlock()
				next.wake <- struct{}{}
				return
			}
		}
		r.mu.Unlock()
		return
	}
	if r.running < r.workers {
		r.running++
		cp.wake <- struct{}{}
		return
	}
	heapPush(&r.ready, cp)
}

// popAny removes the best ready processor from whichever structure this run
// uses. Callers hold r.mu in the multi-worker case when slot accounting
// depends on the answer.
func (r *coopRun) popAny() *coopProc {
	if r.shards != nil {
		return r.popShards()
	}
	return r.popSW()
}

// popSW pops the single-worker heap.
func (r *coopRun) popSW() *coopProc {
	return heapPop(&r.ready)
}

// pushShard enqueues cp on its home shard and refreshes the min cache.
func (r *coopRun) pushShard(cp *coopProc) {
	sh := &r.shards[cp.shard]
	sh.mu.Lock()
	heapPush(&sh.ready, cp)
	sh.updateMin()
	sh.mu.Unlock()
}

// popShards removes and returns the lowest-readyKey ready processor across
// all shards: scan the per-shard atomic min caches, lock only the best
// shard, re-check, pop. A stale cache (the shard emptied or its minimum
// changed between scan and lock) retries the scan; with no concurrent
// pushers (the case the deadlock verdict relies on) the caches are exact.
// Equal keys resolve to the lowest shard index, i.e. the lowest processor
// id under the default tie-break — matching the single-heap order.
func (r *coopRun) popShards() *coopProc {
	for {
		best := -1
		bestKey := shardEmpty
		for s := range r.shards {
			if k := r.shards[s].minKey.Load(); k < bestKey {
				best, bestKey = s, k
			}
		}
		if best < 0 {
			return nil
		}
		sh := &r.shards[best]
		sh.mu.Lock()
		if len(sh.ready) == 0 || math.Float64bits(sh.ready[0].readyKey) != bestKey {
			sh.updateMin()
			sh.mu.Unlock()
			continue
		}
		cp := heapPop(&sh.ready)
		sh.updateMin()
		sh.mu.Unlock()
		return cp
	}
}

// poisonAllLocked marks every unfinished processor as deadlocked and
// requeues it, then grants one slot so the poisoned processors unwind
// sequentially (each panic is captured per-processor and reported by Run).
// Returns the processor to wake, if any. The caller holds r.mu (or is the
// single worker); running is zero, so no heap operation is concurrent.
func (r *coopRun) poisonAllLocked() *coopProc {
	for i := range r.cps {
		cp := &r.cps[i]
		if !cp.done && cp.heapIdx < 0 {
			cp.poison = true
			if r.shards != nil {
				r.pushShard(cp)
			} else {
				heapPush(&r.ready, cp)
			}
		}
	}
	next := r.popAny()
	if next != nil {
		r.running++
	}
	return next
}

// blockedCount reports how many processors had not finished when the
// deadlock verdict was reached (for the DeadlockError diagnostic). The
// poisoned unwind is sequential (one granted slot), so by the time a
// poisoned processor builds its diagnostic the done flags are quiescent;
// the mutex still brackets the reads beyond one worker for the benefit of
// the race detector.
func (r *coopRun) blockedCount() int {
	if r.shards != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	blocked := 0
	for i := range r.cps {
		if !r.cps[i].done {
			blocked++
		}
	}
	return blocked
}

// --- ready heaps: min-heap by (readyKey, tie, id) --------------------------

func coopLess(a, b *coopProc) bool {
	if a.readyKey != b.readyKey {
		return a.readyKey < b.readyKey
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.p.id < b.p.id
}

func heapPush(h *[]*coopProc, cp *coopProc) {
	heap := append(*h, cp)
	*h = heap
	i := len(heap) - 1
	cp.heapIdx = i
	for i > 0 {
		parent := (i - 1) / 2
		if !coopLess(heap[i], heap[parent]) {
			break
		}
		heap[i], heap[parent] = heap[parent], heap[i]
		heap[i].heapIdx = i
		heap[parent].heapIdx = parent
		i = parent
	}
}

func heapPop(h *[]*coopProc) *coopProc {
	heap := *h
	n := len(heap)
	if n == 0 {
		return nil
	}
	top := heap[0]
	last := heap[n-1]
	heap[n-1] = nil
	heap = heap[:n-1]
	*h = heap
	top.heapIdx = -1
	if n > 1 {
		heap[0] = last
		last.heapIdx = 0
		i := 0
		for {
			l, rt := 2*i+1, 2*i+2
			small := i
			if l < n-1 && coopLess(heap[l], heap[small]) {
				small = l
			}
			if rt < n-1 && coopLess(heap[rt], heap[small]) {
				small = rt
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			heap[i].heapIdx = i
			heap[small].heapIdx = small
			i = small
		}
	}
	return top
}
