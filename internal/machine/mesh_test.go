package machine

import (
	"math"
	"testing"

	"fxpar/internal/sim"
)

func meshCost() sim.CostModel {
	c := testCost()
	c.PerHop = 1e-4 // 0.1 ms per hop, visible against alpha = 1 ms
	return c
}

func TestMeshHops(t *testing.T) {
	m := NewMesh(4, 2, meshCost())
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // directly below
		{0, 7, 4},  // opposite corner: 3 across + 1 down
		{3, 4, 4},
	}
	for _, tc := range cases {
		if got := m.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFlatMachineZeroHops(t *testing.T) {
	m := New(8, testCost())
	if m.Hops(0, 7) != 0 {
		t.Error("flat machine reports hops")
	}
}

func TestMeshMessageLatencyGrowsWithDistance(t *testing.T) {
	arrival := func(dst int) float64 {
		m := NewMesh(4, 2, meshCost())
		var at float64
		m.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Send(dst, 1, 8)
			case dst:
				p.Recv(0)
				at = p.Now()
			}
		})
		return at
	}
	near := arrival(1)
	far := arrival(7)
	wantDelta := 3 * 1e-4 // 3 extra hops
	if math.Abs((far-near)-wantDelta) > 1e-12 {
		t.Errorf("far-near = %g, want %g", far-near, wantDelta)
	}
}

func TestMeshInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(0, 4, testCost())
}

func TestNegativePerHopRejected(t *testing.T) {
	c := testCost()
	c.PerHop = -1
	if err := c.Validate(); err == nil {
		t.Error("negative PerHop accepted")
	}
}
