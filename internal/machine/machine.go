// Package machine implements the simulated distributed-memory multicomputer
// that stands in for the paper's 64-node Intel Paragon.
//
// Each processor is a goroutine with a private virtual clock. Processors
// exchange messages over per-ordered-pair FIFO mailboxes. A message carries
// the virtual time at which it becomes available at the receiver
// (send-injection time plus alpha + bytes*beta from the cost model); the
// receiver's clock advances to at least that time when it receives. Compute
// phases advance the local clock by flops/FlopRate. Because clocks only move
// through these rules, every virtual-time result is deterministic and
// independent of how the host schedules the goroutines.
//
// This mirrors the Fx communication substrate described in Section 4 of the
// paper: "direct deposit of data by a sender to a receiver's memory space" —
// sends never block, receives block until the datum has been deposited.
package machine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"fxpar/internal/sim"
)

// Message is a unit of point-to-point communication.
type Message struct {
	// Src is the sending processor's physical id.
	Src int
	// Data is the payload. The machine layer never copies it; senders must
	// not mutate a payload after sending (higher layers copy when needed).
	Data any
	// Bytes is the payload size used for cost accounting.
	Bytes int
	// ArriveAt is the virtual time at which the message is available at the
	// receiver.
	ArriveAt float64
}

// mailbox is an unbounded FIFO queue for one ordered (src,dst) pair. The
// consumed prefix is tracked with a head index (rather than re-slicing), so
// the backing array is reused once drained and a steady-state send/receive
// cycle allocates nothing. Blocking machinery is engine-specific: the
// goroutine engine parks receivers on cond, the coop engine parks them in
// its central scheduler and records them in waiter (and skips the mutex
// entirely when it runs on a single worker slot).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	head   int
	waiter *coopProc
}

// take removes and returns the head message. Callers have exclusive access
// (engine-dependent: mb.mu or single-slot scheduling) and have checked that
// the queue is non-empty.
func (mb *mailbox) take() Message {
	m := mb.queue[mb.head]
	mb.queue[mb.head] = Message{} // release the payload for GC
	mb.head++
	if mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	return m
}

// pending returns the number of unconsumed messages. Only valid when no
// processor goroutines are running (used by Run's exit check).
func (mb *mailbox) pending() int { return len(mb.queue) - mb.head }

// EventKind classifies a traced virtual-time interval.
type EventKind uint8

const (
	// EvCompute is local computation (Compute, Elapse, CopyBytes).
	EvCompute EventKind = iota
	// EvSend is message injection overhead.
	EvSend
	// EvWait is time spent blocked for a message that had not arrived.
	EvWait
	// EvIO is input/output time.
	EvIO
	// EvRecv is a zero-duration marker recorded at the instant a message is
	// consumed, carrying the peer and byte count. Together with EvSend
	// events and per-pair FIFO order it lets trace analysis reconstruct the
	// exact send->recv dependency edges of a run (any time spent blocked is
	// reported separately as the EvWait interval that precedes the marker).
	EvRecv
	// EvSpanBegin and EvSpanEnd are zero-duration markers bracketing a
	// named span opened with Proc.BeginSpan/EndSpan. Spans on one processor
	// follow strict stack discipline, so consumers can rebuild the nesting
	// with a simple stack walk over the per-processor event sequence.
	EvSpanBegin
	EvSpanEnd
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvWait:
		return "wait"
	case EvIO:
		return "io"
	case EvRecv:
		return "recv"
	case EvSpanBegin:
		return "span-begin"
	case EvSpanEnd:
		return "span-end"
	}
	return "?"
}

// Event is one virtual-time interval (or instant marker) on one processor.
type Event struct {
	Proc  int
	Kind  EventKind
	Start float64
	End   float64
	// Seq is the per-processor record sequence number (1, 2, ...). Each
	// processor records events in program order, so sorting a processor's
	// events by Seq reproduces the exact order of operations even when
	// several events share a virtual timestamp. It is assigned only while a
	// tracer is installed.
	Seq int64
	// Peer is the other processor of a send/recv/wait event (-1 when the
	// event has no peer).
	Peer int
	// Bytes is the payload size of a send/recv event or the byte count of
	// an IO event (0 otherwise).
	Bytes int
	// Label names the span for EvSpanBegin/EvSpanEnd events ("" otherwise).
	Label string
	// Depth is the span nesting depth at which a span event was recorded
	// (0 = outermost). Zero for non-span events.
	Depth int
}

// Tracer receives the events of a traced run. Record is called from
// processor goroutines concurrently; implementations must be safe for that.
// Event *values* are virtual times, so trace content is deterministic even
// though arrival order is not.
type Tracer interface {
	Record(Event)
}

// BlockTracer is an optional extension a Tracer may implement to observe a
// receive at the moment it blocks on the host: RecordBlocked(proc, src, now)
// is called when Recv finds no deposited message from src and is about to
// suspend the processor goroutine. Unlike Record events, these callbacks
// depend on host scheduling (whether the sender's deposit has host-happened
// yet), so they are NOT part of the deterministic event stream — they exist
// for flight recorders and stall detectors, which want to see a wait that
// may never finish. Implementations must be safe for concurrent use.
type BlockTracer interface {
	RecordBlocked(proc, src int, now float64)
}

// Machine is a simulated multicomputer with a fixed number of processors.
type Machine struct {
	n      int
	cost   sim.CostModel
	tracer Tracer
	eng    Engine
	// hops returns the network distance between two physical processors;
	// nil models a flat (distance-free) network.
	hops func(a, b int) int
	// mail[dst*n+src] is the FIFO from src to dst, allocated lazily on the
	// first send or receive touching the pair: a machine of n processors has
	// n^2 ordered pairs, but real programs use a tiny fraction of them, and
	// eager allocation made New(1024, ...) materialize ~1M mailboxes.
	mail []atomic.Pointer[mailbox]
}

// mailboxFor returns the FIFO from src to dst, creating it on first use.
// The sender and the receiver may race to create the same pair's mailbox;
// CompareAndSwap lets exactly one instance win, so all messages of an
// ordered pair flow through one queue and the per-pair FIFO guarantee is
// preserved.
func (m *Machine) mailboxFor(dst, src int) *mailbox {
	slot := &m.mail[dst*m.n+src]
	if mb := slot.Load(); mb != nil {
		return mb
	}
	mb := m.eng.newMailbox()
	if slot.CompareAndSwap(nil, mb) {
		return mb
	}
	return slot.Load()
}

// Hops returns the network distance between two processors (0 on a flat
// network).
func (m *Machine) Hops(a, b int) int {
	if m.hops == nil {
		return 0
	}
	return m.hops(a, b)
}

// SetTracer installs a tracer; it must be called before Run. A nil tracer
// (the default) disables tracing.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// SetEngine installs the execution engine Run will use; it must be called
// before the first Send, Recv, or Run (mailboxes are engine-specific). A nil
// engine is a no-op, so call sites can thread an optional engine without
// checking: m.SetEngine(cfg.Engine) leaves the default in place when no
// override was configured.
func (m *Machine) SetEngine(e Engine) {
	if e != nil {
		m.eng = e
	}
}

// Engine returns the machine's execution engine.
func (m *Machine) Engine() Engine { return m.eng }

// New creates a machine with n processors and the given cost model.
// It panics if n < 1 or the cost model is invalid, since a machine is
// construction-time configuration, not runtime input.
func New(n int, cost sim.CostModel) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("machine: need at least 1 processor, got %d", n))
	}
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	return &Machine{n: n, cost: cost, eng: defaultEngine, mail: make([]atomic.Pointer[mailbox], n*n)}
}

// NewMesh creates a machine whose cols*rows processors are arranged in a 2D
// mesh (processor id i at column i%cols, row i/cols, like the Intel
// Paragon): each message additionally pays cost.PerHop per Manhattan hop
// between sender and receiver. With PerHop > 0, the physical placement of
// processor subgroups matters — the implementation freedom Section 4 notes
// ("the implementation is free to choose any such legal assignment" and
// tries to minimize communication overheads).
func NewMesh(cols, rows int, cost sim.CostModel) *Machine {
	if cols < 1 || rows < 1 {
		panic(fmt.Sprintf("machine: invalid mesh %dx%d", cols, rows))
	}
	m := New(cols*rows, cost)
	m.hops = func(a, b int) int {
		ax, ay := a%cols, a/cols
		bx, by := b%cols, b/cols
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	return m
}

// N returns the number of processors.
func (m *Machine) N() int { return m.n }

// Cost returns the machine's cost model.
func (m *Machine) Cost() sim.CostModel { return m.cost }

// Proc is the per-processor handle available to SPMD code. It must only be
// used from the goroutine the machine created it on.
type Proc struct {
	m     *Machine
	id    int
	clock float64
	busy  float64
	idle  float64
	sent  int64
	recvd int64
	bytes int64
	// cp is the coop engine's scheduling state for this processor; nil under
	// other engines and for Procs driven outside Run (some tests).
	cp *coopProc
	// seq numbers every recorded event; spans is the stack of open span
	// labels. Both are touched only while a tracer is installed, so the
	// untraced hot path stays allocation-free.
	seq   int64
	spans []string
}

// ID returns the physical processor id in [0, N).
func (p *Proc) ID() int { return p.id }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// BusyTime returns accumulated compute (non-idle) virtual time.
func (p *Proc) BusyTime() float64 { return p.busy }

// IdleTime returns accumulated virtual time spent waiting for messages.
func (p *Proc) IdleTime() float64 { return p.idle }

// MsgsSent returns the number of messages this processor has sent.
func (p *Proc) MsgsSent() int64 { return p.sent }

// BytesSent returns the number of payload bytes this processor has sent.
func (p *Proc) BytesSent() int64 { return p.bytes }

// Tracing reports whether a tracer is installed. Callers that must build
// labels or other trace-only values check it first so the untraced path
// does no work (and no allocation).
func (p *Proc) Tracing() bool { return p.m.tracer != nil }

// trace records an interval if the machine has a tracer installed.
func (p *Proc) trace(kind EventKind, start, end float64) {
	if p.m.tracer != nil && end > start {
		p.seq++
		p.m.tracer.Record(Event{Proc: p.id, Kind: kind, Start: start, End: end, Seq: p.seq, Peer: -1})
	}
}

// BeginSpan opens a named span on this processor's timeline; it must be
// balanced by EndSpan before the SPMD body returns. Spans nest (stack
// discipline) and carry the nesting depth at which they were opened. With no
// tracer installed both calls are free; callers that concatenate label
// strings should guard with Tracing() to keep the untraced path
// allocation-free.
func (p *Proc) BeginSpan(label string) {
	if p.m.tracer == nil {
		return
	}
	p.seq++
	p.m.tracer.Record(Event{Proc: p.id, Kind: EvSpanBegin, Start: p.clock, End: p.clock,
		Seq: p.seq, Peer: -1, Label: label, Depth: len(p.spans)})
	p.spans = append(p.spans, label)
}

// EndSpan closes the innermost open span.
func (p *Proc) EndSpan() {
	if p.m.tracer == nil {
		return
	}
	if len(p.spans) == 0 {
		panic(fmt.Sprintf("machine: processor %d EndSpan without matching BeginSpan", p.id))
	}
	label := p.spans[len(p.spans)-1]
	p.spans = p.spans[:len(p.spans)-1]
	p.seq++
	p.m.tracer.Record(Event{Proc: p.id, Kind: EvSpanEnd, Start: p.clock, End: p.clock,
		Seq: p.seq, Peer: -1, Label: label, Depth: len(p.spans)})
}

// SpanDepth returns the number of currently open spans (0 when untraced).
func (p *Proc) SpanDepth() int { return len(p.spans) }

// Compute advances the clock by the time to execute flops floating point
// operations.
func (p *Proc) Compute(flops float64) {
	t := p.m.cost.FlopTime(flops)
	p.trace(EvCompute, p.clock, p.clock+t)
	p.clock += t
	p.busy += t
}

// Elapse advances the clock by an explicit number of virtual seconds,
// counted as busy time. Applications use it for phases whose cost is modeled
// rather than counted in flops (e.g. table lookups, I/O post-processing).
func (p *Proc) Elapse(seconds float64) {
	if seconds < 0 {
		panic("machine: Elapse with negative duration")
	}
	p.trace(EvCompute, p.clock, p.clock+seconds)
	p.clock += seconds
	p.busy += seconds
}

// CopyBytes charges the local-memory copy cost for n bytes.
func (p *Proc) CopyBytes(n int) {
	t := p.m.cost.CopyTime(n)
	p.trace(EvCompute, p.clock, p.clock+t)
	p.clock += t
	p.busy += t
}

// IO charges the cost of reading or writing n bytes through the I/O
// subsystem to this processor's clock. Serialization of I/O is a property of
// the program structure (the paper designates I/O processors), not of this
// call.
func (p *Proc) IO(n int) {
	t := p.m.cost.IOTime(n)
	if p.m.tracer != nil && t > 0 {
		p.seq++
		p.m.tracer.Record(Event{Proc: p.id, Kind: EvIO, Start: p.clock, End: p.clock + t,
			Seq: p.seq, Peer: -1, Bytes: n})
	}
	p.clock += t
	p.busy += t
}

// Send deposits a message for dst. It never blocks; the sender is charged
// only the injection overhead. bytes is the payload size for cost purposes.
func (p *Proc) Send(dst int, data any, bytes int) {
	if dst < 0 || dst >= p.m.n {
		panic(fmt.Sprintf("machine: Send to invalid processor %d (machine has %d)", dst, p.m.n))
	}
	if p.m.tracer != nil {
		// Recorded even when SendOverhead is zero: trace analysis matches
		// send events to recv markers to reconstruct dependency edges.
		p.seq++
		p.m.tracer.Record(Event{Proc: p.id, Kind: EvSend, Start: p.clock,
			End: p.clock + p.m.cost.SendOverhead, Seq: p.seq, Peer: dst, Bytes: bytes})
	}
	p.clock += p.m.cost.SendOverhead
	p.busy += p.m.cost.SendOverhead
	wire := p.m.cost.WireTime(bytes)
	if p.m.hops != nil {
		wire += float64(p.m.hops(p.id, dst)) * p.m.cost.PerHop
	}
	msg := Message{
		Src:      p.id,
		Data:     data,
		Bytes:    bytes,
		ArriveAt: p.clock + wire,
	}
	p.m.eng.put(p, p.m.mailboxFor(dst, p.id), msg)
	p.sent++
	p.bytes += int64(bytes)
}

// Recv blocks until the next message from src is available, advances the
// clock to its arrival time, and returns it.
func (p *Proc) Recv(src int) Message {
	if src < 0 || src >= p.m.n {
		panic(fmt.Sprintf("machine: Recv from invalid processor %d (machine has %d)", src, p.m.n))
	}
	mb := p.m.mailboxFor(p.id, src)
	var msg Message
	if bt, ok := p.m.tracer.(BlockTracer); ok {
		// Flight-recorder path: announce the block before suspending, so a
		// receive that never completes still leaves a trace of what the
		// processor was waiting for.
		var have bool
		if msg, have = p.m.eng.tryGet(p, mb); !have {
			bt.RecordBlocked(p.id, src, p.clock)
			msg = p.m.eng.get(p, mb, src)
		}
	} else {
		msg = p.m.eng.get(p, mb, src)
	}
	p.finishRecv(src, msg)
	return msg
}

// TryRecv receives a message from src if one has already been deposited.
// Used by tests; SPMD programs use Recv. It performs the same post-receive
// bookkeeping as Recv, so traced programs using it still emit the
// EvWait/EvRecv markers trace analysis matches against EvSend events.
func (p *Proc) TryRecv(src int) (Message, bool) {
	msg, ok := p.m.eng.tryGet(p, p.m.mailboxFor(p.id, src))
	if !ok {
		return Message{}, false
	}
	p.finishRecv(src, msg)
	return msg, true
}

// finishRecv is the post-receive bookkeeping shared by Recv and TryRecv:
// wait-time accounting with its EvWait interval, the EvRecv marker, and the
// received-message counter.
func (p *Proc) finishRecv(src int, msg Message) {
	if msg.ArriveAt > p.clock {
		if p.m.tracer != nil {
			p.seq++
			p.m.tracer.Record(Event{Proc: p.id, Kind: EvWait, Start: p.clock,
				End: msg.ArriveAt, Seq: p.seq, Peer: src, Bytes: msg.Bytes})
		}
		p.idle += msg.ArriveAt - p.clock
		p.clock = msg.ArriveAt
	}
	if p.m.tracer != nil {
		p.seq++
		p.m.tracer.Record(Event{Proc: p.id, Kind: EvRecv, Start: p.clock, End: p.clock,
			Seq: p.seq, Peer: src, Bytes: msg.Bytes})
	}
	p.recvd++
}

// ProcStats is the summary of one processor after a run.
type ProcStats struct {
	ID        int
	Finish    float64 // final clock value
	Busy      float64
	Idle      float64
	MsgsSent  int64
	BytesSent int64
}

// RunStats summarizes a completed SPMD run.
type RunStats struct {
	Procs []ProcStats
}

// MakespanTime returns the maximum finishing virtual time over processors.
func (s RunStats) MakespanTime() float64 {
	max := 0.0
	for _, p := range s.Procs {
		if p.Finish > max {
			max = p.Finish
		}
	}
	return max
}

// TotalBusy returns the sum of busy times over processors.
func (s RunStats) TotalBusy() float64 {
	sum := 0.0
	for _, p := range s.Procs {
		sum += p.Busy
	}
	return sum
}

// Run executes fn as an SPMD program on the machine's execution engine
// (goroutine-per-processor by default; see SetEngine), each invocation
// receiving its own Proc. It returns per-processor statistics after all
// processors finish. A Machine may be Run only once; mailboxes must be empty
// at exit (leftover messages indicate a protocol bug and cause a panic
// naming every undrained sender→receiver pair).
func (m *Machine) Run(fn func(*Proc)) RunStats {
	procs := make([]*Proc, m.n)
	panics := make([]any, m.n)
	for i := 0; i < m.n; i++ {
		procs[i] = &Proc{m: m, id: i}
	}
	m.eng.run(m, procs, func(p *Proc) {
		fn(p)
		if len(p.spans) != 0 {
			panic(fmt.Sprintf("machine: processor %d finished with %d unclosed span(s), innermost %q",
				p.id, len(p.spans), p.spans[len(p.spans)-1]))
		}
	}, panics)
	for id, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("machine: processor %d panicked: %v", id, r))
		}
	}
	if msg := m.drainReport(); msg != "" {
		panic(msg)
	}
	stats := RunStats{Procs: make([]ProcStats, m.n)}
	for i, p := range procs {
		stats.Procs[i] = ProcStats{
			ID: i, Finish: p.clock, Busy: p.busy, Idle: p.idle,
			MsgsSent: p.sent, BytesSent: p.bytes,
		}
	}
	return stats
}

// drainReport scans every mailbox after a run and, if any message was left
// unconsumed, formats a diagnostic naming each offending src->dst pair with
// its leftover count (capped at eight pairs so an all-to-all protocol bug
// stays readable). Returns "" when the machine drained cleanly.
func (m *Machine) drainReport() string {
	const maxPairs = 8
	total, pairs := 0, 0
	var list []string
	for dst := 0; dst < m.n; dst++ {
		for src := 0; src < m.n; src++ {
			q := m.mail[dst*m.n+src].Load()
			if q == nil || q.pending() == 0 {
				continue
			}
			total += q.pending()
			pairs++
			if len(list) < maxPairs {
				list = append(list, fmt.Sprintf("%d from %d to %d", q.pending(), src, dst))
			}
		}
	}
	if total == 0 {
		return ""
	}
	msg := fmt.Sprintf("machine: %d unconsumed message(s) at program exit: %s",
		total, strings.Join(list, ", "))
	if pairs > maxPairs {
		msg += fmt.Sprintf(", ... (%d more pair(s))", pairs-maxPairs)
	}
	return msg
}
