// Package machine implements the simulated distributed-memory multicomputer
// that stands in for the paper's 64-node Intel Paragon.
//
// Each processor is a goroutine with a private virtual clock. Processors
// exchange messages over per-ordered-pair FIFO mailboxes. A message carries
// the virtual time at which it becomes available at the receiver
// (send-injection time plus alpha + bytes*beta from the cost model); the
// receiver's clock advances to at least that time when it receives. Compute
// phases advance the local clock by flops/FlopRate. Because clocks only move
// through these rules, every virtual-time result is deterministic and
// independent of how the host schedules the goroutines.
//
// This mirrors the Fx communication substrate described in Section 4 of the
// paper: "direct deposit of data by a sender to a receiver's memory space" —
// sends never block, receives block until the datum has been deposited.
package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fxpar/internal/sim"
)

// Message is a unit of point-to-point communication.
type Message struct {
	// Src is the sending processor's physical id.
	Src int
	// Data is the payload. The machine layer never copies it; senders must
	// not mutate a payload after sending (higher layers copy when needed).
	Data any
	// Bytes is the payload size used for cost accounting.
	Bytes int
	// ArriveAt is the virtual time at which the message is available at the
	// receiver.
	ArriveAt float64
	// Dup marks a transport-level duplicate injected by a fault plan. The
	// receive path discards duplicates (recording an EvFault marker) instead
	// of delivering them to the application.
	Dup bool
}

// mailbox is an unbounded FIFO queue for one ordered (src,dst) pair, in one
// of two representations chosen by the engine at creation (initMailbox):
//
//   - Slice (goroutine engine, single-worker coop): queue/head, with the
//     consumed prefix tracked by a head index (rather than re-slicing) so the
//     backing array is reused once drained and a steady-state send/receive
//     cycle allocates nothing. The goroutine engine guards it with mu and
//     parks receivers on cond; the single-worker coop engine needs neither.
//
//   - SPSC chain (multi-worker coop): the lock-free node queue in spsc.go.
//     Each pair has exactly one producer and one consumer, so deposits and
//     consumes are single atomic publishes with pooled nodes — the coop
//     engine's mailboxes stay mutex-free at every worker count.
//
// Blocked coop receivers park in the scheduler and register themselves in
// waiter, claimed atomically (Swap) by the depositor or terminating sender.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
	head  int
	// waiter is the parked coop receiver, if any (see coopEngine.wait).
	waiter atomic.Pointer[coopProc]
	// spsc selects the chain representation; qhead is the consumer's stub
	// position, qtail/qfirst the producer's append point and oldest
	// recyclable node, stub the embedded initial node (see spsc.go).
	spsc   bool
	qhead  atomic.Pointer[msgNode]
	qtail  *msgNode
	qfirst *msgNode
	stub   msgNode
	// sendSeq counts messages sent through this pair, in sender program
	// order. Written only by the sending processor's goroutine, and only
	// while a fault plan or a tracer is installed: it is the deterministic
	// per-pair counter fault decisions are keyed on, and the PairSeq edge
	// identity recorded on EvSend events for skeleton capture.
	sendSeq int64
	// recvSeq counts real (non-duplicate) messages consumed from this pair,
	// in receiver program order. Written only by the receiving processor's
	// goroutine, and only while a tracer is installed: per-pair FIFO order
	// guarantees the k-th consumed message is the k-th sent one, so the
	// counter stamps EvRecv markers with the matching send's PairSeq.
	recvSeq int64
}

// take removes and returns the head message. Callers have exclusive access
// (engine-dependent: mb.mu or single-slot scheduling) and have checked that
// the queue is non-empty.
func (mb *mailbox) take() Message {
	m := mb.queue[mb.head]
	mb.queue[mb.head] = Message{} // release the payload for GC
	mb.head++
	if mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	return m
}

// pending returns the number of unconsumed messages. Only valid when no
// processor goroutines are running (used by Run's exit check). Transport
// duplicates injected by a fault plan are excluded: a receiver consumes a
// pair's real traffic without necessarily touching trailing duplicates, and
// leftovers of the transport layer are not a protocol bug.
func (mb *mailbox) pending() int {
	if mb.spsc {
		return mb.spscPending()
	}
	n := 0
	for i := mb.head; i < len(mb.queue); i++ {
		if !mb.queue[i].Dup {
			n++
		}
	}
	return n
}

// EventKind classifies a traced virtual-time interval.
type EventKind uint8

const (
	// EvCompute is local computation (Compute, Elapse, CopyBytes).
	EvCompute EventKind = iota
	// EvSend is message injection overhead.
	EvSend
	// EvWait is time spent blocked for a message that had not arrived.
	EvWait
	// EvIO is input/output time.
	EvIO
	// EvRecv is a zero-duration marker recorded at the instant a message is
	// consumed, carrying the peer and byte count. Together with EvSend
	// events and per-pair FIFO order it lets trace analysis reconstruct the
	// exact send->recv dependency edges of a run (any time spent blocked is
	// reported separately as the EvWait interval that precedes the marker).
	EvRecv
	// EvSpanBegin and EvSpanEnd are zero-duration markers bracketing a
	// named span opened with Proc.BeginSpan/EndSpan. Spans on one processor
	// follow strict stack discipline, so consumers can rebuild the nesting
	// with a simple stack walk over the per-processor event sequence.
	EvSpanBegin
	EvSpanEnd
	// EvFault is a zero-duration marker recording an injected perturbation;
	// Label names it (FaultDelay, FaultDup, FaultDupDrop, FaultSlow,
	// FaultDeath) and Peer carries the other processor where one applies.
	EvFault
	// EvTimeout is the interval a receiver spent waiting before giving up at
	// its virtual deadline (RecvTimeout); Peer is the awaited sender.
	EvTimeout
	// EvRetry is a zero-duration marker for one retransmission or retry
	// attempt toward Peer: transport-level resends on the send path, or a
	// comm-layer retry after a timed-out receive.
	EvRetry
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvWait:
		return "wait"
	case EvIO:
		return "io"
	case EvRecv:
		return "recv"
	case EvSpanBegin:
		return "span-begin"
	case EvSpanEnd:
		return "span-end"
	case EvFault:
		return "fault"
	case EvTimeout:
		return "timeout"
	case EvRetry:
		return "retry"
	}
	return "?"
}

// Event is one virtual-time interval (or instant marker) on one processor.
type Event struct {
	Proc  int
	Kind  EventKind
	Start float64
	End   float64
	// Seq is the per-processor record sequence number (1, 2, ...). Each
	// processor records events in program order, so sorting a processor's
	// events by Seq reproduces the exact order of operations even when
	// several events share a virtual timestamp. It is assigned only while a
	// tracer is installed.
	Seq int64
	// Peer is the other processor of a send/recv/wait event (-1 when the
	// event has no peer).
	Peer int
	// Bytes is the payload size of a send/recv event or the byte count of
	// an IO event (0 otherwise).
	Bytes int
	// Label names the span for EvSpanBegin/EvSpanEnd events ("" otherwise).
	Label string
	// Depth is the span nesting depth at which a span event was recorded
	// (0 = outermost). Zero for non-span events.
	Depth int
	// Dur is the charged duration exactly as the cost model produced it,
	// before the clock addition rounds: End == fl(Start + Dur) where fl is
	// one float64 rounding. It is recorded for events that advance the clock
	// by an increment (compute, io, send overhead, timeout) so skeleton
	// replay (internal/skeleton) can reproduce the machine's clock
	// arithmetic bitwise; it is zero for instant markers and for EvWait,
	// whose End is an absolute assignment (the message's arrival time).
	Dur float64
	// Wire is the full wire latency charged to the message of an EvSend
	// event: alpha + bytes*beta, plus any mesh per-hop cost and any
	// fault-injected delay. The message's arrival time at the receiver is
	// End + Wire (one rounding). Zero for all other kinds.
	Wire float64
	// PairSeq is the per-ordered-pair FIFO sequence number of the message an
	// EvSend or EvRecv event refers to: the k-th message sent through the
	// (src,dst) pair is consumed by the k-th real receive on it, so
	// (src, dst, PairSeq) is a stable identity for the dependence edge, used
	// by skeleton capture and assigned only while a tracer is installed.
	PairSeq int64
}

// Tracer receives the events of a traced run. Record is called from
// processor goroutines concurrently; implementations must be safe for that.
// Event *values* are virtual times, so trace content is deterministic even
// though arrival order is not.
type Tracer interface {
	Record(Event)
}

// BlockTracer is an optional extension a Tracer may implement to observe a
// receive at the moment it blocks on the host: RecordBlocked(proc, src, now)
// is called when Recv finds no deposited message from src and is about to
// suspend the processor goroutine. Unlike Record events, these callbacks
// depend on host scheduling (whether the sender's deposit has host-happened
// yet), so they are NOT part of the deterministic event stream — they exist
// for flight recorders and stall detectors, which want to see a wait that
// may never finish. Implementations must be safe for concurrent use.
type BlockTracer interface {
	RecordBlocked(proc, src int, now float64)
}

// EventSampler decides, per event, whether a traced run records it. The
// machine consults it (when installed) on every emit with the event's
// identity — (proc, seq, kind) — before building the Event value, so a
// rejected event costs one virtual-time-free callback and nothing else.
// Implementations must be pure functions of their inputs plus their own
// immutable configuration (they are called from processor goroutines
// concurrently, in host-schedule-dependent order) so that the set of kept
// events is byte-identical across engines and host parallelism; see
// internal/trace.Sampler for the canonical counter-based implementation.
type EventSampler interface {
	SampleEvent(proc int, seq int64, kind EventKind) bool
}

// denseMailProcs is the largest machine that keeps the O(n^2) dense mailbox
// directory (a flat pointer slice, one atomic load per lookup). Above it the
// machine switches to the sharded sparse directory: a 65536-processor dense
// directory alone would be ~34 GB, while real programs touch O(active pairs).
const denseMailProcs = 2048

// mailDirShards is the shard count of the sparse mailbox directory. A power
// of two so the shard index is a mask of the destination processor.
const mailDirShards = 256

// mailSlabSize is the number of mailboxes one sparse-directory slab chunk
// holds. Large machines materialize millions of pairs; carving them out of
// per-shard slabs amortizes the allocator to one malloc per mailSlabSize
// pairs instead of one each, which is most of what keeps allocs/proc flat
// as P grows.
const mailSlabSize = 64

// mailShard is one shard of the sparse mailbox directory, keyed on the
// flattened pair index dst*n+src. slab is the shard's current allocation
// chunk; mailboxes are handed out from it sequentially (under mu) and are
// never moved or freed — the directory map pins them.
type mailShard struct {
	mu   sync.Mutex
	m    map[int64]*mailbox
	slab []mailbox
}

// srcList registers every mailbox sourced at one processor, appended at
// mailbox creation. It is what lets senderTerminated and drainReport touch
// only the pairs that exist — O(out-degree) — instead of scanning all n
// destinations (O(n) per termination, O(n^2) per run, which dominated large
// machines).
type srcList struct {
	mu   sync.Mutex
	dsts []srcMailbox
}

type srcMailbox struct {
	dst int
	mb  *mailbox
}

// Machine is a simulated multicomputer with a fixed number of processors.
type Machine struct {
	n       int
	cost    sim.CostModel
	tracer  Tracer
	sampler EventSampler
	eng     Engine
	faults  FaultPlan
	// hops returns the network distance between two physical processors;
	// nil models a flat (distance-free) network.
	hops func(a, b int) int
	// mail[dst*n+src] is the FIFO from src to dst, allocated lazily on the
	// first send or receive touching the pair: a machine of n processors has
	// n^2 ordered pairs, but real programs use a tiny fraction of them, and
	// eager allocation made New(1024, ...) materialize ~1M mailboxes. nil on
	// machines larger than denseMailProcs, which use mailSparse instead.
	mail []atomic.Pointer[mailbox]
	// mailSparse is the sharded sparse pair directory of large machines:
	// memory is O(active pairs), lookups take one shard mutex (amortized
	// away by the per-Proc mailbox cache on the hot path).
	mailSparse []mailShard
	// bySrc[src] lists every mailbox sourced at src, in creation order.
	bySrc []srcList
	// term[i]/termAt[i] record whether and when processor i's SPMD body
	// terminated in the current Run, so a receiver blocked on it can fail
	// with DeadSenderError instead of waiting forever.
	term   []atomic.Uint32
	termAt []float64
}

// mailboxFor returns the FIFO from src to dst, creating it on first use.
// The sender and the receiver may race to create the same pair's mailbox;
// CompareAndSwap (dense directory) or the shard mutex (sparse directory)
// lets exactly one instance win, so all messages of an ordered pair flow
// through one queue and the per-pair FIFO guarantee is preserved.
//
// Every created mailbox is registered in bySrc[src] before mailboxFor
// returns. That ordering is what senderTerminated's registry walk relies
// on: a mailbox created by the sender is registered on the sender's own
// program path (before its termination), and a mailbox created by the
// receiver is registered — under bySrc[src].mu — before the receiver can
// park on it, so the terminating sender either snapshots it (registration
// first) or the receiver's wait observes the termination flag (snapshot
// first: the flag store precedes the snapshot's mutex critical section,
// which precedes the receiver's registration under the same mutex).
func (m *Machine) mailboxFor(dst, src int) *mailbox {
	if m.mail != nil {
		slot := &m.mail[dst*m.n+src]
		if mb := slot.Load(); mb != nil {
			return mb
		}
		mb := &mailbox{}
		m.eng.initMailbox(mb)
		if slot.CompareAndSwap(nil, mb) {
			m.registerMailbox(src, dst, mb)
			return mb
		}
		return slot.Load()
	}
	key := int64(dst)*int64(m.n) + int64(src)
	sh := &m.mailSparse[dst&(mailDirShards-1)]
	sh.mu.Lock()
	if mb, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return mb
	}
	if len(sh.slab) == 0 {
		sh.slab = make([]mailbox, mailSlabSize)
	}
	mb := &sh.slab[0]
	sh.slab = sh.slab[1:]
	m.eng.initMailbox(mb)
	if sh.m == nil {
		sh.m = make(map[int64]*mailbox)
	}
	sh.m[key] = mb
	sh.mu.Unlock()
	m.registerMailbox(src, dst, mb)
	return mb
}

// registerMailbox appends a freshly created mailbox to its source's list.
func (m *Machine) registerMailbox(src, dst int, mb *mailbox) {
	l := &m.bySrc[src]
	l.mu.Lock()
	l.dsts = append(l.dsts, srcMailbox{dst: dst, mb: mb})
	l.mu.Unlock()
}

// mailboxesFrom snapshots the mailboxes sourced at src, for termination
// broadcast and post-run drain checks. The copy keeps the per-src mutex
// critical section free of nested mailbox locks.
func (m *Machine) mailboxesFrom(src int) []srcMailbox {
	l := &m.bySrc[src]
	l.mu.Lock()
	out := append([]srcMailbox(nil), l.dsts...)
	l.mu.Unlock()
	return out
}

// Hops returns the network distance between two processors (0 on a flat
// network).
func (m *Machine) Hops(a, b int) int {
	if m.hops == nil {
		return 0
	}
	return m.hops(a, b)
}

// SetTracer installs a tracer; it must be called before Run. A nil tracer
// (the default) disables tracing.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// SetSampler installs an event sampler consulted on every traced emit; it
// must be called before Run. A nil sampler (the default) keeps every event.
// Sampling only filters which events reach the tracer — per-processor
// sequence numbers and per-pair FIFO counters advance for every event,
// kept or dropped, so the identities sampling is keyed on (and fault-plan
// decisions) are unchanged by the rate. With no tracer installed the
// sampler is never consulted.
func (m *Machine) SetSampler(s EventSampler) { m.sampler = s }

// SetEngine installs the execution engine Run will use; it must be called
// before the first Send, Recv, or Run (mailboxes are engine-specific). A nil
// engine is a no-op, so call sites can thread an optional engine without
// checking: m.SetEngine(cfg.Engine) leaves the default in place when no
// override was configured.
func (m *Machine) SetEngine(e Engine) {
	if e != nil {
		m.eng = e
	}
}

// Engine returns the machine's execution engine.
func (m *Machine) Engine() Engine { return m.eng }

// New creates a machine with n processors and the given cost model.
// It panics if n < 1 or the cost model is invalid, since a machine is
// construction-time configuration, not runtime input.
func New(n int, cost sim.CostModel) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("machine: need at least 1 processor, got %d", n))
	}
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		n: n, cost: cost, eng: defaultEngine,
		bySrc:  make([]srcList, n),
		term:   make([]atomic.Uint32, n),
		termAt: make([]float64, n),
	}
	if n <= denseMailProcs {
		m.mail = make([]atomic.Pointer[mailbox], n*n)
	} else {
		m.mailSparse = make([]mailShard, mailDirShards)
	}
	return m
}

// NewMesh creates a machine whose cols*rows processors are arranged in a 2D
// mesh (processor id i at column i%cols, row i/cols, like the Intel
// Paragon): each message additionally pays cost.PerHop per Manhattan hop
// between sender and receiver. With PerHop > 0, the physical placement of
// processor subgroups matters — the implementation freedom Section 4 notes
// ("the implementation is free to choose any such legal assignment" and
// tries to minimize communication overheads).
func NewMesh(cols, rows int, cost sim.CostModel) *Machine {
	if cols < 1 || rows < 1 {
		panic(fmt.Sprintf("machine: invalid mesh %dx%d", cols, rows))
	}
	m := New(cols*rows, cost)
	m.hops = func(a, b int) int {
		ax, ay := a%cols, a/cols
		bx, by := b%cols, b/cols
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	return m
}

// N returns the number of processors.
func (m *Machine) N() int { return m.n }

// Cost returns the machine's cost model.
func (m *Machine) Cost() sim.CostModel { return m.cost }

// Proc is the per-processor handle available to SPMD code. It must only be
// used from the goroutine the machine created it on.
type Proc struct {
	m     *Machine
	id    int
	clock float64
	busy  float64
	idle  float64
	sent  int64
	recvd int64
	bytes int64
	// cp is the coop engine's scheduling state for this processor; nil under
	// other engines and for Procs driven outside Run (some tests).
	cp *coopProc
	// seq numbers every recorded event; spans is the stack of open span
	// labels. Both are touched only while a tracer is installed, so the
	// untraced hot path stays allocation-free.
	seq   int64
	spans []string
	// mbFew/mbMore memoize sparse-directory lookups for this processor's own
	// pairs, so steady-state sends and receives on a large machine skip the
	// shard mutex. The first mbFewSize distinct pairs live in the inline
	// array (most processors of a structured program talk to O(1) peers:
	// butterfly partners, stage neighbours); only a processor that touches
	// more pairs — a scatter root, say — allocates the overflow map. The
	// previous per-proc map cost one allocation plus bucket memory on every
	// processor of a large machine; the array costs neither. Unused on dense
	// machines.
	mbFew  [mbFewSize]pairCacheEnt
	mbMore map[int64]*mailbox
	// slow (> 1) multiplies all local time, and deathAt (> 0) is the virtual
	// time this processor fails. Both are set by Run from the fault plan and
	// stay zero — inert single-compare guards — on healthy machines.
	slow    float64
	deathAt float64
}

// ID returns the physical processor id in [0, N).
func (p *Proc) ID() int { return p.id }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// BusyTime returns accumulated compute (non-idle) virtual time.
func (p *Proc) BusyTime() float64 { return p.busy }

// IdleTime returns accumulated virtual time spent waiting for messages.
func (p *Proc) IdleTime() float64 { return p.idle }

// MsgsSent returns the number of messages this processor has sent.
func (p *Proc) MsgsSent() int64 { return p.sent }

// BytesSent returns the number of payload bytes this processor has sent.
func (p *Proc) BytesSent() int64 { return p.bytes }

// Tracing reports whether a tracer is installed. Callers that must build
// labels or other trace-only values check it first so the untraced path
// does no work (and no allocation).
func (p *Proc) Tracing() bool { return p.m.tracer != nil }

// mbFewSize is the inline pair-cache capacity of a Proc. Sized for the
// reproduced apps' structured communication: log2(module size) butterfly
// partners plus a scatter source and a reduction peer all fit.
const mbFewSize = 8

// pairCacheEnt is one inline pair-cache entry; mb is nil while unused
// (pair key 0 is valid, so presence is keyed on the pointer).
type pairCacheEnt struct {
	key int64
	mb  *mailbox
}

// mailbox resolves the FIFO for an ordered pair on this processor's hot
// path: the dense directory's atomic load on small machines, the per-Proc
// cache (falling back to the sharded directory) on large ones.
func (p *Proc) mailbox(dst, src int) *mailbox {
	m := p.m
	if m.mail != nil {
		return m.mailboxFor(dst, src)
	}
	key := int64(dst)*int64(m.n) + int64(src)
	for i := range p.mbFew {
		e := &p.mbFew[i]
		if e.mb == nil {
			// First miss on a fresh slot: resolve and cache inline.
			e.key = key
			e.mb = m.mailboxFor(dst, src)
			return e.mb
		}
		if e.key == key {
			return e.mb
		}
	}
	if mb, ok := p.mbMore[key]; ok {
		return mb
	}
	mb := m.mailboxFor(dst, src)
	if p.mbMore == nil {
		p.mbMore = make(map[int64]*mailbox)
	}
	p.mbMore[key] = mb
	return mb
}

// keep advances the per-processor event sequence and consults the sampler.
// The sequence advances for every event — kept or dropped — so the
// (proc, seq) identity a sampling decision is keyed on is independent of
// the sampling rate; a sampled trace has gaps in Seq where events were
// dropped, but every recorded Seq means the same operation it would in the
// unsampled trace. Callers have already checked that a tracer is installed.
func (p *Proc) keep(kind EventKind) (int64, bool) {
	p.seq++
	if s := p.m.sampler; s != nil && !s.SampleEvent(p.id, p.seq, kind) {
		return p.seq, false
	}
	return p.seq, true
}

// trace records an interval of duration t starting at the current clock if
// the machine has a tracer installed. t is recorded verbatim as Event.Dur.
func (p *Proc) trace(kind EventKind, t float64) {
	if p.m.tracer != nil && t > 0 {
		if seq, ok := p.keep(kind); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: kind, Start: p.clock, End: p.clock + t,
				Seq: seq, Peer: -1, Dur: t})
		}
	}
}

// marker records a zero-duration event (EvFault, EvRetry) at the current
// clock if a tracer is installed.
func (p *Proc) marker(kind EventKind, peer, bytes int, label string) {
	if p.m.tracer != nil {
		if seq, ok := p.keep(kind); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: kind, Start: p.clock, End: p.clock,
				Seq: seq, Peer: peer, Bytes: bytes, Label: label})
		}
	}
}

// scale applies the processor's fault-plan slowdown to a local duration.
// Healthy processors have slow == 0 and pay a single compare.
func (p *Proc) scale(t float64) float64 {
	if p.slow > 1 {
		return t * p.slow
	}
	return t
}

// checkAlive kills the processor if its clock has reached the fault plan's
// death time. It is called at the start of every operation, so a processor
// dies at the first operation boundary at or after deathAt; healthy
// processors (deathAt == 0) pay a single compare.
func (p *Proc) checkAlive() {
	if p.deathAt > 0 && p.clock >= p.deathAt {
		p.die()
	}
}

// die records the death marker and unwinds the processor with a typed
// panic. The panic is captured by the engine and surfaced through Run's
// *RunError; every processor blocked on this one fails with
// *DeadSenderError in turn, so the failure cascades instead of hanging.
func (p *Proc) die() {
	p.deathAt = 0 // the death marker and panic fire once
	p.marker(EvFault, -1, 0, FaultDeath)
	panic(&ProcDeathError{Proc: p.id, At: p.clock})
}

// MarkRetry records an EvRetry marker: retry machinery in higher layers
// (comm's timeout-aware collectives) uses it to make attempt boundaries
// visible in traces. Free when untraced.
func (p *Proc) MarkRetry(peer, bytes int) {
	p.marker(EvRetry, peer, bytes, "")
}

// BeginSpan opens a named span on this processor's timeline; it must be
// balanced by EndSpan before the SPMD body returns. Spans nest (stack
// discipline) and carry the nesting depth at which they were opened. With no
// tracer installed both calls are free; callers that concatenate label
// strings should guard with Tracing() to keep the untraced path
// allocation-free.
func (p *Proc) BeginSpan(label string) {
	if p.m.tracer == nil {
		return
	}
	if seq, ok := p.keep(EvSpanBegin); ok {
		p.m.tracer.Record(Event{Proc: p.id, Kind: EvSpanBegin, Start: p.clock, End: p.clock,
			Seq: seq, Peer: -1, Label: label, Depth: len(p.spans)})
	}
	p.spans = append(p.spans, label)
}

// EndSpan closes the innermost open span.
func (p *Proc) EndSpan() {
	if p.m.tracer == nil {
		return
	}
	if len(p.spans) == 0 {
		panic(fmt.Sprintf("machine: processor %d EndSpan without matching BeginSpan", p.id))
	}
	label := p.spans[len(p.spans)-1]
	p.spans = p.spans[:len(p.spans)-1]
	if seq, ok := p.keep(EvSpanEnd); ok {
		p.m.tracer.Record(Event{Proc: p.id, Kind: EvSpanEnd, Start: p.clock, End: p.clock,
			Seq: seq, Peer: -1, Label: label, Depth: len(p.spans)})
	}
}

// SpanDepth returns the number of currently open spans (0 when untraced).
func (p *Proc) SpanDepth() int { return len(p.spans) }

// Compute advances the clock by the time to execute flops floating point
// operations.
func (p *Proc) Compute(flops float64) {
	p.checkAlive()
	t := p.scale(p.m.cost.FlopTime(flops))
	p.trace(EvCompute, t)
	p.clock += t
	p.busy += t
}

// Elapse advances the clock by an explicit number of virtual seconds,
// counted as busy time. Applications use it for phases whose cost is modeled
// rather than counted in flops (e.g. table lookups, I/O post-processing).
func (p *Proc) Elapse(seconds float64) {
	if seconds < 0 {
		panic("machine: Elapse with negative duration")
	}
	p.checkAlive()
	seconds = p.scale(seconds)
	p.trace(EvCompute, seconds)
	p.clock += seconds
	p.busy += seconds
}

// CopyBytes charges the local-memory copy cost for n bytes.
func (p *Proc) CopyBytes(n int) {
	p.checkAlive()
	t := p.scale(p.m.cost.CopyTime(n))
	p.trace(EvCompute, t)
	p.clock += t
	p.busy += t
}

// IO charges the cost of reading or writing n bytes through the I/O
// subsystem to this processor's clock. Serialization of I/O is a property of
// the program structure (the paper designates I/O processors), not of this
// call.
func (p *Proc) IO(n int) {
	p.checkAlive()
	t := p.scale(p.m.cost.IOTime(n))
	if p.m.tracer != nil && t > 0 {
		if seq, ok := p.keep(EvIO); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: EvIO, Start: p.clock, End: p.clock + t,
				Seq: seq, Peer: -1, Bytes: n, Dur: t})
		}
	}
	p.clock += t
	p.busy += t
}

// Send deposits a message for dst. It never blocks; the sender is charged
// only the injection overhead. bytes is the payload size for cost purposes.
func (p *Proc) Send(dst int, data any, bytes int) {
	if dst < 0 || dst >= p.m.n {
		panic(fmt.Sprintf("machine: Send to invalid processor %d (machine has %d)", dst, p.m.n))
	}
	p.checkAlive()
	overhead := p.scale(p.m.cost.SendOverhead)
	// The full wire latency (and the fault plan's verdict, which can extend
	// it) is computed before the send event is recorded, so the event carries
	// the complete edge: overhead duration, wire time, and the per-pair FIFO
	// sequence number. Skeleton capture (internal/skeleton) rebuilds the
	// exact dependence DAG from these three fields alone.
	wire := p.m.cost.WireTime(bytes)
	if p.m.hops != nil {
		wire += float64(p.m.hops(p.id, dst)) * p.m.cost.PerHop
	}
	mb := p.mailbox(dst, p.id)
	var mf MessageFault
	var seq int64
	if p.m.tracer != nil || p.m.faults != nil {
		seq = mb.sendSeq
		mb.sendSeq++
	}
	if p.m.faults != nil {
		mf = p.m.faults.MessageFault(p.id, dst, seq)
		if mf.Delay > 0 {
			wire += mf.Delay
		}
	}
	if p.m.tracer != nil {
		// Recorded even when SendOverhead is zero: trace analysis matches
		// send events to recv markers to reconstruct dependency edges.
		if eseq, ok := p.keep(EvSend); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: EvSend, Start: p.clock,
				End: p.clock + overhead, Seq: eseq, Peer: dst, Bytes: bytes,
				Dur: overhead, Wire: wire, PairSeq: seq})
		}
	}
	p.clock += overhead
	p.busy += overhead
	for k := 0; k < mf.Retries; k++ {
		p.marker(EvRetry, dst, bytes, "")
	}
	if mf.Delay > 0 {
		p.marker(EvFault, dst, bytes, FaultDelay)
	}
	msg := Message{
		Src:      p.id,
		Data:     data,
		Bytes:    bytes,
		ArriveAt: p.clock + wire,
	}
	p.m.eng.put(p, mb, msg)
	if mf.Duplicate {
		p.marker(EvFault, dst, bytes, FaultDup)
		dup := msg
		dup.Dup = true
		p.m.eng.put(p, mb, dup)
	}
	p.sent++
	p.bytes += int64(bytes)
}

// Recv blocks until the next message from src is available, advances the
// clock to its arrival time, and returns it. If src's SPMD body terminates
// — by death, panic, or normal return — with nothing deposited, Recv panics
// with *DeadSenderError instead of waiting forever, so failures cascade and
// the run unwinds.
func (p *Proc) Recv(src int) Message {
	if src < 0 || src >= p.m.n {
		panic(fmt.Sprintf("machine: Recv from invalid processor %d (machine has %d)", src, p.m.n))
	}
	p.checkAlive()
	mb := p.mailbox(p.id, src)
	for {
		msg, ok := p.waitMsg(mb, src)
		if !ok {
			fate, exitAt := p.m.senderFate(src)
			panic(&DeadSenderError{Proc: p.id, Src: src, At: p.clock,
				SrcPanicked: fate == termPanicked, SrcExitAt: exitAt})
		}
		if msg.Dup {
			p.dropDup(src, msg)
			continue
		}
		p.finishRecv(mb, src, msg)
		return msg
	}
}

// waitMsg blocks until a message from src is consumed from mb or src's
// termination proves none is coming (ok == false). The separation between
// the engine's wait (block until deposit or termination, don't consume) and
// tryGet (consume) is safe because each mailbox has a single consumer.
func (p *Proc) waitMsg(mb *mailbox, src int) (Message, bool) {
	if msg, ok := p.m.eng.tryGet(p, mb); ok {
		return msg, true
	}
	if bt, ok := p.m.tracer.(BlockTracer); ok {
		// Flight-recorder path: announce the block before suspending, so a
		// receive that never completes still leaves a trace of what the
		// processor was waiting for.
		bt.RecordBlocked(p.id, src, p.clock)
	}
	for {
		if !p.m.eng.wait(p, mb, src) {
			return Message{}, false
		}
		if msg, ok := p.m.eng.tryGet(p, mb); ok {
			return msg, true
		}
	}
}

// dropDup discards a transport-level duplicate at the receive path,
// recording the detection. Duplicates cost the receiver no virtual time:
// the filtering happens below the application's cost model.
func (p *Proc) dropDup(src int, msg Message) {
	p.marker(EvFault, src, msg.Bytes, FaultDupDrop)
}

// TryRecv receives a message from src if one has already been deposited.
// Used by tests; SPMD programs use Recv. It performs the same post-receive
// bookkeeping as Recv, so traced programs using it still emit the
// EvWait/EvRecv markers trace analysis matches against EvSend events.
func (p *Proc) TryRecv(src int) (Message, bool) {
	p.checkAlive()
	mb := p.mailbox(p.id, src)
	for {
		msg, ok := p.m.eng.tryGet(p, mb)
		if !ok {
			return Message{}, false
		}
		if msg.Dup {
			p.dropDup(src, msg)
			continue
		}
		p.finishRecv(mb, src, msg)
		return msg, true
	}
}

// RecvOutcome reports how a RecvTimeout completed.
type RecvOutcome int

const (
	// RecvOK: a message arrived by the deadline and was consumed.
	RecvOK RecvOutcome = iota
	// RecvTimedOut: the next message arrives after the deadline (it stays
	// queued for a later receive); the clock advanced to the deadline.
	RecvTimedOut
	// RecvSenderDead: the sender terminated with nothing deposited; the
	// clock advanced to the deadline.
	RecvSenderDead
)

func (o RecvOutcome) String() string {
	switch o {
	case RecvOK:
		return "ok"
	case RecvTimedOut:
		return "timed-out"
	case RecvSenderDead:
		return "sender-dead"
	}
	return "?"
}

// RecvTimeout is Recv with a virtual-time deadline of Now() + timeout. The
// decision is made purely in virtual time, so it is deterministic and
// engine-independent: the receiver suspends on the host until the next
// message is deposited or the sender terminates (the only ways to learn the
// virtual truth), then either consumes the message (ArriveAt <= deadline,
// RecvOK), leaves it queued and advances the clock to the deadline
// (RecvTimedOut), or reports the sender gone (RecvSenderDead). A timed-out
// or dead-sender receive records an EvTimeout interval. Note the host-level
// blocking means RecvTimeout detects virtual lateness and death — it does
// not bound host time if the sender neither deposits nor terminates.
func (p *Proc) RecvTimeout(src int, timeout float64) (Message, RecvOutcome) {
	if src < 0 || src >= p.m.n {
		panic(fmt.Sprintf("machine: RecvTimeout from invalid processor %d (machine has %d)", src, p.m.n))
	}
	if timeout < 0 {
		panic("machine: RecvTimeout with negative timeout")
	}
	p.checkAlive()
	deadline := p.clock + timeout
	mb := p.mailbox(p.id, src)
	for {
		if msg, ok := p.m.eng.peek(p, mb); ok {
			if msg.Dup {
				p.m.eng.tryGet(p, mb)
				p.dropDup(src, msg)
				continue
			}
			if msg.ArriveAt > deadline {
				p.timeoutAdvance(src, deadline, timeout)
				return Message{}, RecvTimedOut
			}
			msg, _ = p.m.eng.tryGet(p, mb)
			p.finishRecv(mb, src, msg)
			return msg, RecvOK
		}
		if !p.m.eng.wait(p, mb, src) {
			p.timeoutAdvance(src, deadline, timeout)
			return Message{}, RecvSenderDead
		}
	}
}

// timeoutAdvance charges the wait-until-deadline of a receive that gave up:
// an EvTimeout interval and idle time up to the virtual deadline. timeout is
// the caller's original increment (deadline == fl(clock + timeout)), recorded
// as the event's Dur.
func (p *Proc) timeoutAdvance(src int, deadline, timeout float64) {
	if p.m.tracer != nil && deadline > p.clock {
		if seq, ok := p.keep(EvTimeout); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: EvTimeout, Start: p.clock,
				End: deadline, Seq: seq, Peer: src, Dur: timeout})
		}
	}
	if deadline > p.clock {
		p.idle += deadline - p.clock
		p.clock = deadline
	}
}

// finishRecv is the post-receive bookkeeping shared by Recv and TryRecv:
// wait-time accounting with its EvWait interval, the EvRecv marker (stamped
// with the pair's FIFO sequence number), and the received-message counter.
func (p *Proc) finishRecv(mb *mailbox, src int, msg Message) {
	if msg.ArriveAt > p.clock {
		if p.m.tracer != nil {
			if seq, ok := p.keep(EvWait); ok {
				p.m.tracer.Record(Event{Proc: p.id, Kind: EvWait, Start: p.clock,
					End: msg.ArriveAt, Seq: seq, Peer: src, Bytes: msg.Bytes})
			}
		}
		p.idle += msg.ArriveAt - p.clock
		p.clock = msg.ArriveAt
	}
	if p.m.tracer != nil {
		// The pair's FIFO counter advances for every receive, sampled or
		// not, so a kept EvRecv always carries the PairSeq its matching
		// EvSend recorded.
		seq := mb.recvSeq
		mb.recvSeq++
		if eseq, ok := p.keep(EvRecv); ok {
			p.m.tracer.Record(Event{Proc: p.id, Kind: EvRecv, Start: p.clock, End: p.clock,
				Seq: eseq, Peer: src, Bytes: msg.Bytes, PairSeq: seq})
		}
	}
	p.recvd++
}

// ProcStats is the summary of one processor after a run.
type ProcStats struct {
	ID        int
	Finish    float64 // final clock value
	Busy      float64
	Idle      float64
	MsgsSent  int64
	BytesSent int64
}

// RunStats summarizes a completed SPMD run.
type RunStats struct {
	Procs []ProcStats
}

// MakespanTime returns the maximum finishing virtual time over processors.
func (s RunStats) MakespanTime() float64 {
	max := 0.0
	for _, p := range s.Procs {
		if p.Finish > max {
			max = p.Finish
		}
	}
	return max
}

// TotalBusy returns the sum of busy times over processors.
func (s RunStats) TotalBusy() float64 {
	sum := 0.0
	for _, p := range s.Procs {
		sum += p.Busy
	}
	return sum
}

// Run executes fn as an SPMD program on the machine's execution engine
// (goroutine-per-processor by default; see SetEngine), each invocation
// receiving its own Proc. It returns per-processor statistics after all
// processors finish. A Machine may be Run only once; mailboxes must be empty
// at exit (leftover messages indicate a protocol bug and cause a panic
// naming every undrained sender→receiver pair). If any processor panics —
// an application bug, a fault-plan death, or the resulting cascade of
// dead-sender failures — Run panics with a *RunError aggregating every
// processor's panic and naming the root cause.
func (m *Machine) Run(fn func(*Proc)) RunStats {
	// All P processor states live in one arena slice: one allocation instead
	// of P, initialized by a parallel fold instead of a serial O(P) loop.
	// Engines index into the arena directly and RunStats streams out of it
	// at the end, so no second O(P) pointer structure ever exists.
	procs := make([]Proc, m.n)
	parallelFor(m.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			procs[i].m = m
			procs[i].id = i
		}
	})
	m.applyProcFaults(procs)
	var rec panicRecorder
	m.eng.run(m, procs, func(p *Proc) {
		// Mark termination — and wake every receiver blocked on this
		// processor — whether the body returns or panics; the re-panic
		// preserves the engine's per-processor capture. The ordering
		// matters under the coop engine: waiters must reach the ready
		// queue before the scheduler's finish step runs its all-blocked
		// (deadlock) check.
		defer func() {
			r := recover()
			m.termAt[p.id] = p.clock
			if r != nil {
				m.term[p.id].Store(termPanicked)
			} else {
				m.term[p.id].Store(termExited)
			}
			m.eng.senderTerminated(p)
			if r != nil {
				panic(r)
			}
		}()
		if p.slow > 1 {
			p.marker(EvFault, -1, 0, FaultSlow)
		}
		fn(p)
		if len(p.spans) != 0 {
			panic(fmt.Sprintf("machine: processor %d finished with %d unclosed span(s), innermost %q",
				p.id, len(p.spans), p.spans[len(p.spans)-1]))
		}
	}, &rec)
	if failed := rec.failed(); failed != nil {
		panic(&RunError{Panics: failed})
	}
	if msg := m.drainReport(); msg != "" {
		panic(msg)
	}
	return m.foldStats(procs)
}

// applyProcFaults sets the per-processor slowdown and death time from the
// fault plan. A plan that can enumerate its victims (ProcFaultLister) is
// asked for exactly those — O(victims + plan scan) instead of 2*P hook
// probes; other plans fall back to the seed probe loop. serialCore forces
// the probe loop so the golden cross-check exercises both paths.
func (m *Machine) applyProcFaults(procs []Proc) {
	if m.faults == nil {
		return
	}
	if fl, ok := m.faults.(ProcFaultLister); ok && !serialCore {
		fl.ProcFaults(m.n, func(i int, slow, deathAt float64) {
			if slow > 1 {
				procs[i].slow = slow
			}
			if deathAt > 0 {
				procs[i].deathAt = deathAt
			}
		})
		return
	}
	for i := range procs {
		if s := m.faults.SlowFactor(i); s > 1 {
			procs[i].slow = s
		}
		if t, ok := m.faults.DeathTime(i); ok && t > 0 {
			procs[i].deathAt = t
		}
	}
}

// foldStats streams RunStats out of the proc arena with a parallel fold.
// Every element is index-addressed, so the result is byte-identical to the
// seed's serial copy loop.
func (m *Machine) foldStats(procs []Proc) RunStats {
	stats := RunStats{Procs: make([]ProcStats, m.n)}
	parallelFor(m.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := &procs[i]
			stats.Procs[i] = ProcStats{
				ID: i, Finish: p.clock, Busy: p.busy, Idle: p.idle,
				MsgsSent: p.sent, BytesSent: p.bytes,
			}
		}
	})
	return stats
}

// drainReport walks every created mailbox after a run (via the per-source
// registry, so the check is O(active pairs), not O(n^2); source ranges are
// folded in parallel on large machines) and, if any message was left
// unconsumed, formats a diagnostic naming each offending src->dst pair with
// its leftover count (capped at eight pairs so an all-to-all protocol bug
// stays readable). Pairs are reported in (dst, src) order — collection
// order is subrange- and host-schedule-dependent, so the collected pairs
// are sorted to keep the diagnostic deterministic. Returns "" when the
// machine drained cleanly.
func (m *Machine) drainReport() string {
	const maxPairs = 8
	type leftover struct{ dst, src, count int }
	total := 0
	var pairs []leftover
	var mu sync.Mutex
	parallelFor(m.n, func(lo, hi int) {
		sub := 0
		var local []leftover
		for src := lo; src < hi; src++ {
			for _, e := range m.bySrc[src].dsts {
				if n := e.mb.pending(); n > 0 {
					sub += n
					local = append(local, leftover{dst: e.dst, src: src, count: n})
				}
			}
		}
		if sub > 0 {
			mu.Lock()
			total += sub
			pairs = append(pairs, local...)
			mu.Unlock()
		}
	})
	if total == 0 {
		return ""
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].dst != pairs[j].dst {
			return pairs[i].dst < pairs[j].dst
		}
		return pairs[i].src < pairs[j].src
	})
	var list []string
	for i, p := range pairs {
		if i == maxPairs {
			break
		}
		list = append(list, fmt.Sprintf("%d from %d to %d", p.count, p.src, p.dst))
	}
	msg := fmt.Sprintf("machine: %d unconsumed message(s) at program exit: %s",
		total, strings.Join(list, ", "))
	if len(pairs) > maxPairs {
		msg += fmt.Sprintf(", ... (%d more pair(s))", len(pairs)-maxPairs)
	}
	return msg
}
