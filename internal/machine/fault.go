package machine

import (
	"fmt"
	"strings"
)

// This file defines the machine layer's fault-injection hook points and the
// typed failures a chaotic run can surface. The machine knows nothing about
// probabilities or seeds: a FaultPlan (implemented by internal/fault) is
// consulted at well-defined points with purely virtual-time/topology inputs,
// so the same plan produces byte-identical perturbations under every engine
// and host parallelism level.
//
// The injected faults model a *reliable* transport: a "dropped" message is
// retransmitted below the application (bounded retries, each adding backoff
// latency), and a duplicated message is delivered twice but filtered at the
// receive path. Consequently chaos without processor death never changes
// program results — only virtual timing — while death surfaces as typed
// errors (ProcDeathError at the dying processor, DeadSenderError at every
// processor left waiting on it), never as a hang.

// MessageFault describes the perturbations applied to a single message on
// the send path. The zero value is a healthy message.
type MessageFault struct {
	// Delay is extra wire latency in virtual seconds added on top of the
	// alpha + bytes*beta (+ hops) cost: jitter, congestion, and the backoff
	// of any modeled retransmissions.
	Delay float64
	// Retries is the number of transport-level retransmissions the message
	// needed before delivery ("drops" of a reliable link). Each is recorded
	// as an EvRetry marker; the latency they cost is part of Delay.
	Retries int
	// Duplicate delivers a second, transport-level copy of the message. The
	// receive path detects and discards it (recording an EvFault marker), so
	// duplication perturbs the queue and exercises filtering, never results.
	Duplicate bool
}

// FaultPlan decides the perturbations of a run. Implementations must be
// deterministic pure functions of their inputs (plus the plan's own seed):
// they are consulted from processor goroutines concurrently and in
// host-schedule-dependent order, and the simulation's results must not
// depend on either.
type FaultPlan interface {
	// MessageFault returns the perturbation for the seq-th message (0-based,
	// counted per ordered (src,dst) pair in sender program order).
	MessageFault(src, dst int, seq int64) MessageFault
	// SlowFactor returns the processor's compute-slowdown multiplier
	// (>= 1; values <= 1 mean healthy). It scales all local time: compute,
	// copies, IO, and send injection overhead — but not wire time.
	SlowFactor(proc int) float64
	// DeathTime returns the virtual time at which the processor fails, if
	// the plan kills it. A dead processor panics with *ProcDeathError at its
	// first operation at or after that time. Death times must be > 0.
	DeathTime(proc int) (float64, bool)
}

// ProcFaultLister is an optional interface a FaultPlan may implement to
// enumerate its per-processor faults directly. Run prefers it over probing
// SlowFactor and DeathTime for all n processors: visit is called — in any
// order, from the Run goroutine only — for each processor the plan actually
// perturbs, with slow <= 1 meaning no slowdown and deathAt <= 0 meaning no
// death, so a plan whose profile touches neither hook makes Run's fault
// pre-scan O(1) instead of O(P). The visited set must be exactly the
// processors for which the probe loop would have recorded something (the
// golden cross-check test holds implementations to that).
type ProcFaultLister interface {
	ProcFaults(n int, visit func(proc int, slow, deathAt float64))
}

// SetFaults installs a fault plan; it must be called before Run. A nil plan
// (the default) disables fault injection; the healthy hot path then costs
// one pointer test per operation and allocates nothing.
func (m *Machine) SetFaults(f FaultPlan) { m.faults = f }

// Faults returns the installed fault plan (nil when chaos is off).
func (m *Machine) Faults() FaultPlan { return m.faults }

// Labels of EvFault markers recorded by the machine layer.
const (
	// FaultDelay marks a message that left with injected extra latency.
	FaultDelay = "delay"
	// FaultDup marks the send of a transport-level duplicate.
	FaultDup = "dup"
	// FaultDupDrop marks a duplicate detected and discarded at the receiver.
	FaultDupDrop = "dup-drop"
	// FaultSlow marks a processor that runs with a slowdown factor (recorded
	// once, at virtual time 0).
	FaultSlow = "slow"
	// FaultDeath marks the instant a processor dies.
	FaultDeath = "death"
)

// ProcDeathError is the panic value of a processor killed by the fault plan.
type ProcDeathError struct {
	Proc int
	// At is the virtual time of death: the processor's clock at the first
	// operation at or after the plan's death time.
	At float64
}

func (e *ProcDeathError) Error() string {
	return fmt.Sprintf("machine: processor %d died at virtual time %g (fault plan)", e.Proc, e.At)
}

// DeadSenderError is the panic value of a receive that can never complete:
// the sender terminated — died, panicked, or exited — with the mailbox
// empty. It is how failure propagates: each processor blocked on a dead one
// fails in turn, so a chaotic run unwinds instead of hanging.
type DeadSenderError struct {
	// Proc is the receiving processor; Src the terminated sender.
	Proc, Src int
	// At is the receiver's clock when it gave up.
	At float64
	// SrcPanicked reports whether the sender terminated by panic (death or
	// program error) rather than by returning normally.
	SrcPanicked bool
	// SrcExitAt is the sender's clock when it terminated.
	SrcExitAt float64
}

func (e *DeadSenderError) Error() string {
	how := "exited"
	if e.SrcPanicked {
		how = "failed"
	}
	return fmt.Sprintf("machine: processor %d blocked on receive from %d, which %s at virtual time %g without sending",
		e.Proc, e.Src, how, e.SrcExitAt)
}

// DeadlockError is the panic value of every processor parked when the coop
// engine detects the all-blocked state: no processor is runnable and at
// least one is still waiting on a receive.
type DeadlockError struct {
	// Proc is the processor reporting, blocked on a receive from Src.
	Proc, Src int
	// Blocked is the number of processors that had not finished.
	Blocked int
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("machine: deadlock: processor %d blocked on receive from %d with no runnable sender (%d processor(s) blocked)",
		e.Proc, e.Src, e.Blocked)
}

// ProcPanic is one processor's captured panic value.
type ProcPanic struct {
	Proc  int
	Value any
}

// RunError is the panic value of Machine.Run when one or more processors
// panicked. It aggregates every captured panic and identifies the root
// cause: failure cascades (a death makes its receivers fail, whose receivers
// fail in turn) are demoted below the panic that started them.
type RunError struct {
	// Panics lists every processor panic in ascending processor order.
	Panics []ProcPanic
}

// panicRank orders panic values by how causal they are: an application panic
// or injected death is a root cause; deadlock verdicts and dead-sender
// cascades are consequences.
func panicRank(v any) int {
	switch v.(type) {
	case *ProcDeathError:
		return 1
	case *DeadlockError:
		return 2
	case *DeadSenderError:
		return 3
	}
	return 0
}

// Root returns the most causal processor panic: lowest rank class, then
// lowest processor id. Deterministic for a deterministic set of panics.
func (e *RunError) Root() ProcPanic {
	best := e.Panics[0]
	for _, p := range e.Panics[1:] {
		if panicRank(p.Value) < panicRank(best.Value) {
			best = p
		}
	}
	return best
}

func (e *RunError) Error() string {
	root := e.Root()
	var b strings.Builder
	fmt.Fprintf(&b, "machine: processor %d panicked: %v", root.Proc, root.Value)
	if n := len(e.Panics) - 1; n > 0 {
		fmt.Fprintf(&b, " (and %d more processor(s) failed)", n)
	}
	return b.String()
}

// Unwrap exposes every panic value that is itself an error, so errors.As
// finds *ProcDeathError, *DeadSenderError, or *DeadlockError through a
// recovered RunError.
func (e *RunError) Unwrap() []error {
	var errs []error
	for _, p := range e.Panics {
		if err, ok := p.Value.(error); ok {
			errs = append(errs, err)
		}
	}
	return errs
}

// Termination states of a processor within one Run, kept per-machine so
// receivers can distinguish "no message yet" from "never coming".
const (
	termRunning uint32 = iota
	termExited
	termPanicked
)

// terminated reports whether processor src's SPMD body has returned or
// panicked in the current Run.
func (m *Machine) terminated(src int) bool { return m.term[src].Load() != termRunning }

// senderFate returns how src terminated (termExited or termPanicked) and its
// clock at termination. Only meaningful after terminated(src) is true (the
// atomic load in terminated orders the termAt read).
func (m *Machine) senderFate(src int) (uint32, float64) {
	return m.term[src].Load(), m.termAt[src]
}

// ProcTerminated reports whether processor id's SPMD body has terminated in
// the current Run and, if so, whether it panicked (death or program error)
// and its virtual clock at termination. Higher layers use it to attribute a
// dead-sender failure to the member that actually died rather than to an
// intermediate that merely gave up.
func (m *Machine) ProcTerminated(id int) (done, panicked bool, at float64) {
	if id < 0 || id >= m.n {
		panic(fmt.Sprintf("machine: ProcTerminated of invalid processor %d (machine has %d)", id, m.n))
	}
	state := m.term[id].Load()
	if state == termRunning {
		return false, false, 0
	}
	return true, state == termPanicked, m.termAt[id]
}
