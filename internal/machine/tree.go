package machine

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file holds the machine core's parallel setup/teardown machinery: the
// binary spawn/fold trees that replace the serial O(P) loops Run used to
// perform (proc init, fault pre-scan, goroutine spawn, drain walk, stats
// fold), following Hanlon & Hollis, "Fast Distributed Process Creation" —
// a spawner that creates two sub-spawners reaches P leaves in O(log P)
// sequential steps instead of O(P).
//
// Every tree produces results byte-identical to the serial loops it
// replaced: the work items are index-addressed (arena[i], stats.Procs[i]),
// so the split order cannot change any output, and the one aggregation that
// is order-sensitive (the drain report) sorts its collected pairs exactly
// as the serial walk did. The serial reference implementations are retained
// behind the serialCore switch and a golden cross-check test
// (TestTreeCoreMatchesSerialReference) proves the equivalence run for run.

// serialCore selects the retained seed-loop reference implementations of
// Run's setup and teardown passes (and the engines' serial spawn loops)
// instead of the spawn/fold trees. It exists for the golden cross-check
// test; production code never sets it.
var serialCore bool

const (
	// initGrain is the subrange width below which setup/teardown passes
	// (proc init, fault pre-scan, stats fold, drain walk) run serially:
	// below it the per-goroutine cost outweighs the memory-bound loop body.
	initGrain = 8192
	// spawnGrain is the number of leaf goroutines one leaf spawner creates
	// serially; interior spawners fork a sub-spawner per half until ranges
	// fall below it.
	spawnGrain = 1024
)

// parallelFor runs fn over disjoint subranges tiling [0, n), splitting
// binary-tree style until ranges fall below initGrain, and returns when all
// of [0, n) has been processed. fn must not depend on subrange order. With
// serialCore set (or small n) it degenerates to the seed loop fn(0, n).
func parallelFor(n int, fn func(lo, hi int)) {
	if serialCore || n <= initGrain {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var split func(lo, hi int)
	split = func(lo, hi int) {
		for hi-lo > initGrain {
			mid := int(uint(lo+hi) >> 1)
			wg.Add(1)
			go func(l, h int) {
				defer wg.Done()
				split(l, h)
			}(mid, hi)
			hi = mid
		}
		fn(lo, hi)
	}
	split(0, n)
	wg.Wait()
}

// treeSpawn starts one goroutine per index in [0, n) running leaf(i),
// forking interior spawner goroutines binary-tree style so the launch takes
// O(log(n/spawnGrain)) sequential steps on the critical path instead of an
// O(n) serial loop. It does not wait for the leaves (callers sequence on
// their own WaitGroup); with serialCore set it is the seed spawn loop.
func treeSpawn(n int, leaf func(i int)) {
	if serialCore || n <= spawnGrain {
		for i := 0; i < n; i++ {
			go leaf(i)
		}
		return
	}
	var spawn func(lo, hi int)
	spawn = func(lo, hi int) {
		for hi-lo > spawnGrain {
			mid := int(uint(lo+hi) >> 1)
			go spawn(mid, hi)
			hi = mid
		}
		for i := lo; i < hi; i++ {
			go leaf(i)
		}
	}
	spawn(0, n)
}

// panicRecorder collects per-processor panics during a run. The healthy
// path is allocation-free and O(1): engines call capture (which does
// nothing when recover returns nil), and failed() answers from the atomic
// count without touching memory proportional to P — replacing the O(P)
// []any slice plus post-run scan the seed Run allocated even for clean
// runs.
type panicRecorder struct {
	count atomic.Int64
	mu    sync.Mutex
	procs []ProcPanic
}

// capture records the in-flight panic of processor id, if any. It must be
// invoked directly by a deferred call (recover only intercepts a panic when
// called directly from the deferred function).
func (r *panicRecorder) capture(id int) {
	if v := recover(); v != nil {
		r.record(id, v)
	}
}

func (r *panicRecorder) record(id int, v any) {
	r.mu.Lock()
	r.procs = append(r.procs, ProcPanic{Proc: id, Value: v})
	r.mu.Unlock()
	r.count.Add(1)
}

// failed returns every recorded panic in ascending processor order, or nil
// after a healthy run. Callers invoke it only after the engine's run has
// returned, so no capture is concurrent.
func (r *panicRecorder) failed() []ProcPanic {
	if r.count.Load() == 0 {
		return nil
	}
	out := r.procs
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}
