package machine

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// ringPanicRun executes the P=64 ring scenario in which processor 17
// panics with an application bug before sending, and returns the recovered
// *RunError. Every other processor sends to its successor and then receives
// from its predecessor, so exactly one receiver (18) is starved — the
// cascade must stop there, not unwind the whole ring.
func ringPanicRun(t *testing.T, e Engine) (re *RunError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: run with a panicking processor returned normally", e.Name())
		}
		var ok bool
		if re, ok = r.(*RunError); !ok {
			t.Fatalf("%s: panic value %T (%v), want *RunError", e.Name(), r, r)
		}
	}()
	const procs = 64
	m := New(procs, testCost())
	m.SetEngine(e)
	m.Run(func(p *Proc) {
		if p.ID() == 17 {
			panic("app bug: injected")
		}
		p.Send((p.ID()+1)%procs, p.ID(), 8)
		p.Recv((p.ID() + procs - 1) % procs)
	})
	return re
}

// TestRingPanicPropagation: an application panic on one processor must
// surface as a RunError whose root cause is that panic, with exactly the
// starved neighbour joining as a dead-sender cascade — identically on every
// engine, and without leaking the goroutine engine's worker goroutines.
func TestRingPanicPropagation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var first []ProcPanic
	for _, e := range engines() {
		re := ringPanicRun(t, e)

		root := re.Root()
		if root.Proc != 17 || root.Value != "app bug: injected" {
			t.Fatalf("%s: root = proc %d value %v, want proc 17 app bug", e.Name(), root.Proc, root.Value)
		}
		if len(re.Panics) != 2 {
			t.Fatalf("%s: %d processor panics %v, want exactly 2 (victim + starved receiver)",
				e.Name(), len(re.Panics), re.Panics)
		}
		var cascade *ProcPanic
		for i := range re.Panics {
			if re.Panics[i].Proc != 17 {
				cascade = &re.Panics[i]
			}
		}
		if cascade == nil || cascade.Proc != 18 {
			t.Fatalf("%s: cascade panics = %v, want processor 18", e.Name(), re.Panics)
		}
		ds, ok := cascade.Value.(*DeadSenderError)
		if !ok {
			t.Fatalf("%s: processor 18 panic %T (%v), want *DeadSenderError", e.Name(), cascade.Value, cascade.Value)
		}
		if ds.Proc != 18 || ds.Src != 17 || !ds.SrcPanicked {
			t.Fatalf("%s: DeadSenderError = %+v, want receiver 18 starved by panicked 17", e.Name(), ds)
		}

		if first == nil {
			first = re.Panics
		} else if !reflect.DeepEqual(re.Panics, first) {
			t.Fatalf("%s: panic set %v diverges from first engine's %v", e.Name(), re.Panics, first)
		}
	}

	// The panic path must still tear down every per-processor goroutine: a
	// failed run that leaks workers poisons every later run in the process.
	// Goroutine counts are noisy, so poll with a settle loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after panicking runs: %d goroutines, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
