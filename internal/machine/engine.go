package machine

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Engine is a pluggable execution core: the strategy that runs the simulated
// processors of a Machine on the host. The virtual-time semantics — clock
// advancement, the timestamp max-rule, per-pair FIFO delivery — live in the
// Machine/Proc layer and are identical under every engine, so two engines
// running the same program produce byte-identical traces, metrics, and
// RunStats; an engine only decides *how* the host executes the processors
// (one goroutine each vs a cooperative run queue) and therefore only changes
// host wall-clock.
//
// Engines are implemented inside this package (the interface has unexported
// methods); select one with Goroutine, Coop, or EngineByName and install it
// with Machine.SetEngine before Run.
type Engine interface {
	// Name returns the selector name of the engine ("goroutine", "coop",
	// "coop:4"), as accepted by EngineByName.
	Name() string

	// run executes body on every processor of the arena to completion,
	// spawning host goroutines tree-style (see tree.go). Each processor's
	// panic (if any) is captured into rec; run returns only after every
	// processor has finished or panicked.
	run(m *Machine, procs []Proc, body func(*Proc), rec *panicRecorder)

	// initMailbox equips a zeroed mailbox with the representation and
	// blocking machinery this engine needs: the goroutine engine attaches a
	// condvar, the single-worker coop engine uses the bare slice queue, and
	// the multi-worker coop engine switches it to the lock-free SPSC chain.
	// The machine layer owns allocation (sparse-directory mailboxes come
	// from per-shard slabs) and calls this exactly once per mailbox, before
	// any other goroutine can observe it.
	initMailbox(mb *mailbox)

	// put deposits msg into mb and wakes a blocked receiver if there is
	// one. p is the sending processor.
	put(p *Proc, mb *mailbox, msg Message)

	// wait blocks the calling processor p until mb holds a deposited
	// message or the sending processor src has terminated. It returns true
	// if a message is available (not consumed — the machine layer decides
	// whether to take it) and false if src terminated with mb empty, in
	// which case no message can ever arrive. Spurious true returns are
	// allowed; callers loop.
	wait(p *Proc, mb *mailbox, src int) bool

	// tryGet returns the next message from mb if one is already deposited.
	tryGet(p *Proc, mb *mailbox) (Message, bool)

	// peek returns a copy of the next message without consuming it.
	peek(p *Proc, mb *mailbox) (Message, bool)

	// senderTerminated wakes every receiver blocked on a message from p,
	// whose SPMD body has terminated (the machine marks termination before
	// calling this). Woken receivers re-check and fail with
	// DeadSenderError if their mailbox is empty.
	senderTerminated(p *Proc)
}

// EngineNames lists the accepted -engine selector values.
func EngineNames() []string { return []string{"goroutine", "coop"} }

// EngineByName resolves an -engine flag value: "goroutine" (or "") is the
// preemptive goroutine-per-processor engine, "coop" the cooperative
// run-queue engine on one host worker, and "coop:N" the cooperative engine
// on N host workers. A coop selector may carry a "+shuffle@SEED" suffix
// ("coop+shuffle@7", "coop:4+shuffle@7"): same-clock ready-queue ties are
// then broken by a seeded hash of the processor id instead of by id —
// a deterministic schedule perturbation that flushes out order-dependent
// bugs without changing any virtual-time result.
func EngineByName(name string) (Engine, error) {
	base, shuffled, seed, err := splitShuffle(name)
	if err != nil {
		return nil, err
	}
	switch {
	case base == "" || base == "goroutine":
		if shuffled {
			return nil, fmt.Errorf("machine: engine %q: +shuffle applies to coop engines only", name)
		}
		return Goroutine(), nil
	case base == "coop":
		if shuffled {
			return CoopShuffled(1, seed), nil
		}
		return Coop(1), nil
	case strings.HasPrefix(base, "coop:"):
		w, err := strconv.Atoi(base[len("coop:"):])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("machine: bad coop worker count in engine %q", name)
		}
		if shuffled {
			return CoopShuffled(w, seed), nil
		}
		return Coop(w), nil
	}
	return nil, fmt.Errorf("machine: unknown engine %q (have: %s)", name, strings.Join(EngineNames(), ", "))
}

// splitShuffle strips an optional "+shuffle@SEED" suffix from an engine
// selector.
func splitShuffle(name string) (base string, shuffled bool, seed uint64, err error) {
	base, spec, ok := strings.Cut(name, "+")
	if !ok {
		return name, false, 0, nil
	}
	sstr, found := strings.CutPrefix(spec, "shuffle@")
	if !found {
		return "", false, 0, fmt.Errorf("machine: bad engine modifier %q in %q (want +shuffle@SEED)", spec, name)
	}
	seed, perr := strconv.ParseUint(sstr, 10, 64)
	if perr != nil {
		return "", false, 0, fmt.Errorf("machine: bad shuffle seed in engine %q", name)
	}
	return base, true, seed, nil
}

// defaultEngine is the engine New installs. It honors the FXPAR_ENGINE
// environment variable so a whole test binary (or CI matrix leg) can be run
// under a different execution core without touching any call site.
var defaultEngine = engineFromEnv()

func engineFromEnv() Engine {
	name := os.Getenv("FXPAR_ENGINE")
	e, err := EngineByName(name)
	if err != nil {
		panic(err)
	}
	return e
}

// DefaultEngineName returns the selector name of the engine New installs:
// "goroutine" unless overridden by the FXPAR_ENGINE environment variable.
// Command-line tools use it as their -engine flag default.
func DefaultEngineName() string { return defaultEngine.Name() }
