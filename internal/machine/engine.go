package machine

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Engine is a pluggable execution core: the strategy that runs the simulated
// processors of a Machine on the host. The virtual-time semantics — clock
// advancement, the timestamp max-rule, per-pair FIFO delivery — live in the
// Machine/Proc layer and are identical under every engine, so two engines
// running the same program produce byte-identical traces, metrics, and
// RunStats; an engine only decides *how* the host executes the processors
// (one goroutine each vs a cooperative run queue) and therefore only changes
// host wall-clock.
//
// Engines are implemented inside this package (the interface has unexported
// methods); select one with Goroutine, Coop, or EngineByName and install it
// with Machine.SetEngine before Run.
type Engine interface {
	// Name returns the selector name of the engine ("goroutine", "coop",
	// "coop:4"), as accepted by EngineByName.
	Name() string

	// run executes body on every processor to completion. Each processor's
	// panic (if any) is captured into panics[proc.id]; run returns only
	// after every processor has finished or panicked.
	run(m *Machine, procs []*Proc, body func(*Proc), panics []any)

	// newMailbox allocates a mailbox with the blocking machinery this
	// engine needs (the goroutine engine attaches a condvar; the coop
	// engine parks receivers centrally and needs none).
	newMailbox() *mailbox

	// put deposits msg into mb and wakes a blocked receiver if there is
	// one. p is the sending processor.
	put(p *Proc, mb *mailbox, msg Message)

	// get returns the next message from mb, blocking the calling processor
	// until one is deposited. src is the sending processor id (used for
	// diagnostics).
	get(p *Proc, mb *mailbox, src int) Message

	// tryGet returns the next message from mb if one is already deposited.
	tryGet(p *Proc, mb *mailbox) (Message, bool)
}

// EngineNames lists the accepted -engine selector values.
func EngineNames() []string { return []string{"goroutine", "coop"} }

// EngineByName resolves an -engine flag value: "goroutine" (or "") is the
// preemptive goroutine-per-processor engine, "coop" the cooperative
// run-queue engine on one host worker, and "coop:N" the cooperative engine
// on N host workers.
func EngineByName(name string) (Engine, error) {
	switch {
	case name == "" || name == "goroutine":
		return Goroutine(), nil
	case name == "coop":
		return Coop(1), nil
	case strings.HasPrefix(name, "coop:"):
		w, err := strconv.Atoi(name[len("coop:"):])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("machine: bad coop worker count in engine %q", name)
		}
		return Coop(w), nil
	}
	return nil, fmt.Errorf("machine: unknown engine %q (have: %s)", name, strings.Join(EngineNames(), ", "))
}

// defaultEngine is the engine New installs. It honors the FXPAR_ENGINE
// environment variable so a whole test binary (or CI matrix leg) can be run
// under a different execution core without touching any call site.
var defaultEngine = engineFromEnv()

func engineFromEnv() Engine {
	name := os.Getenv("FXPAR_ENGINE")
	e, err := EngineByName(name)
	if err != nil {
		panic(err)
	}
	return e
}

// DefaultEngineName returns the selector name of the engine New installs:
// "goroutine" unless overridden by the FXPAR_ENGINE environment variable.
// Command-line tools use it as their -engine flag default.
func DefaultEngineName() string { return defaultEngine.Name() }
