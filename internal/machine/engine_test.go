package machine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestEngineByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"", "goroutine", false},
		{"goroutine", "goroutine", false},
		{"coop", "coop", false},
		{"coop:1", "coop", false},
		{"coop:4", "coop:4", false},
		{"coop:0", "", true},
		{"coop:x", "", true},
		{"fiber", "", true},
	}
	for _, c := range cases {
		e, err := EngineByName(c.in)
		if c.err {
			if err == nil {
				t.Errorf("EngineByName(%q): want error, got %v", c.in, e.Name())
			}
			continue
		}
		if err != nil {
			t.Errorf("EngineByName(%q): %v", c.in, err)
			continue
		}
		if e.Name() != c.want {
			t.Errorf("EngineByName(%q).Name() = %q, want %q", c.in, e.Name(), c.want)
		}
	}
}

func TestSetEngineNilKeepsDefault(t *testing.T) {
	m := New(2, testCost())
	def := m.Engine()
	m.SetEngine(nil)
	if m.Engine() != def {
		t.Fatal("SetEngine(nil) replaced the engine")
	}
	m.SetEngine(Coop(1))
	if m.Engine().Name() != "coop" {
		t.Fatalf("engine = %q after SetEngine(Coop(1))", m.Engine().Name())
	}
}

// engines lists every engine variant a cross-engine test should cover:
// the default goroutine core, the single-slot coop core (lock-free
// mailboxes), and a multi-slot coop core (locked mailboxes).
func engines() []Engine {
	return []Engine{Goroutine(), Coop(1), Coop(3)}
}

// TestEnginesProduceIdenticalResults runs the same message-heavy program
// under every engine and requires identical RunStats — virtual time is a
// property of the program and the cost model, never of the execution core.
func TestEnginesProduceIdenticalResults(t *testing.T) {
	run := func(e Engine) RunStats {
		m := New(8, testCost())
		m.SetEngine(e)
		return m.Run(func(p *Proc) {
			n := p.Machine().N()
			for round := 0; round < 5; round++ {
				p.Compute(float64(100 * (p.ID() + 1)))
				next, prev := (p.ID()+1)%n, (p.ID()+n-1)%n
				p.Send(next, p.ID(), 64)
				p.Recv(prev)
			}
		})
	}
	want := run(Goroutine())
	for _, e := range engines()[1:] {
		if got := run(e); !reflect.DeepEqual(got, want) {
			t.Errorf("engine %q RunStats diverge:\n got %+v\nwant %+v", e.Name(), got, want)
		}
	}
}

// TestEnginesProduceIdenticalTraces compares full event streams, per
// processor and in per-processor Seq order, across engines.
func TestEnginesProduceIdenticalTraces(t *testing.T) {
	run := func(e Engine) map[int][]Event {
		var tr sliceTracer
		m := New(4, testCost())
		m.SetEngine(e)
		m.SetTracer(&tr)
		m.Run(func(p *Proc) {
			p.BeginSpan("stage")
			p.Compute(float64(10 * (p.ID() + 1)))
			if p.ID() != 0 {
				p.Send(0, p.ID(), 32)
			} else {
				for src := 1; src < 4; src++ {
					p.Recv(src)
				}
			}
			p.EndSpan()
		})
		byProc := make(map[int][]Event)
		for _, ev := range tr.evs {
			byProc[ev.Proc] = append(byProc[ev.Proc], ev)
		}
		for _, evs := range byProc {
			sortEventsBySeq(evs)
		}
		return byProc
	}
	want := run(Goroutine())
	for _, e := range engines()[1:] {
		got := run(e)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("engine %q traces diverge", e.Name())
		}
	}
}

func sortEventsBySeq(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Seq < evs[j-1].Seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// TestCoopDetectsDeadlock: under the coop engine a cyclic wait is detected
// and reported instead of hanging the process like the goroutine engine
// would.
func TestCoopDetectsDeadlock(t *testing.T) {
	for _, e := range []Engine{Coop(1), Coop(2)} {
		t.Run(e.Name(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("deadlocked run returned without panicking")
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "blocked on receive") {
					t.Fatalf("panic = %q, want deadlock diagnostic", msg)
				}
			}()
			m := New(2, testCost())
			m.SetEngine(e)
			m.Run(func(p *Proc) {
				// Both processors wait on the other; neither ever sends.
				p.Recv(1 - p.ID())
			})
		})
	}
}

// TestRecvFromExitedProcFails: a receive from a processor that exited
// without sending is a dead-sender failure on every engine — it used to
// hang the goroutine engine forever and trip the coop engine's deadlock
// detector; now both report the root cause.
func TestRecvFromExitedProcFails(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.Name(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("run with an unsatisfiable receive returned without panicking")
				}
				re, ok := r.(*RunError)
				if !ok {
					t.Fatalf("panic value %T, want *RunError", r)
				}
				root := re.Root()
				ds, ok := root.Value.(*DeadSenderError)
				if !ok {
					t.Fatalf("root cause %T (%v), want *DeadSenderError", root.Value, root.Value)
				}
				if ds.Src != 0 || ds.SrcPanicked {
					t.Fatalf("DeadSenderError = %+v, want clean exit of processor 0", ds)
				}
				if !strings.Contains(re.Error(), "blocked on receive from 0") {
					t.Fatalf("error %q missing diagnostic", re.Error())
				}
			}()
			m := New(4, testCost())
			m.SetEngine(e)
			m.Run(func(p *Proc) {
				if p.ID() < 2 {
					return // finish immediately
				}
				p.Recv(0) // 0 has already exited: wait can never be satisfied
			})
		})
	}
}

// TestCoopBlockedRecvOutsideRunPanics: a standalone Proc (constructed by
// tests without Run) has no scheduler to park on; a Recv that would block
// must fail loudly rather than spin.
func TestCoopBlockedRecvOutsideRunPanics(t *testing.T) {
	m := New(2, testCost())
	m.SetEngine(Coop(1))
	p := &Proc{m: m, id: 0}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("blocking Recv outside Run did not panic under coop")
		}
		if !strings.Contains(fmt.Sprint(r), "outside Run") {
			t.Fatalf("panic = %q", r)
		}
	}()
	p.Recv(1)
}

// TestUnconsumedMessageNamesPairs: the drain failure names each offending
// (src, dst) pair with its leftover count.
func TestUnconsumedMessageNamesPairs(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.Name(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("undrained run returned without panicking")
				}
				msg := fmt.Sprint(r)
				for _, want := range []string{
					"3 unconsumed message(s)",
					"2 from 0 to 1",
					"1 from 2 to 3",
				} {
					if !strings.Contains(msg, want) {
						t.Errorf("drain panic %q missing %q", msg, want)
					}
				}
			}()
			m := New(4, testCost())
			m.SetEngine(e)
			m.Run(func(p *Proc) {
				switch p.ID() {
				case 0:
					p.Send(1, 1, 4) // never received
					p.Send(1, 2, 4) // never received
				case 2:
					p.Send(3, 3, 4) // never received
				}
			})
		})
	}
}

// TestUnconsumedMessagePairListIsCapped: a protocol bug touching many pairs
// reports a bounded list plus a remainder count.
func TestUnconsumedMessagePairListIsCapped(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("undrained run returned without panicking")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "12 unconsumed message(s)") {
			t.Errorf("drain panic %q missing total", msg)
		}
		if !strings.Contains(msg, "4 more pair(s)") {
			t.Errorf("drain panic %q missing the capped remainder", msg)
		}
	}()
	m := New(13, testCost())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for dst := 1; dst < 13; dst++ {
				p.Send(dst, dst, 4)
			}
		}
	})
}

// TestDefaultEngineName: the flag default reflects the package default.
func TestDefaultEngineName(t *testing.T) {
	if got := DefaultEngineName(); got != defaultEngine.Name() {
		t.Fatalf("DefaultEngineName() = %q, engine is %q", got, defaultEngine.Name())
	}
	if _, err := EngineByName(DefaultEngineName()); err != nil {
		t.Fatalf("DefaultEngineName() %q is not a valid selector: %v", DefaultEngineName(), err)
	}
}

// TestCoopManyProcsFewWorkers: hundreds of processors multiplexed on two
// host slots still complete a full ring pipeline.
func TestCoopManyProcsFewWorkers(t *testing.T) {
	m := New(300, testCost())
	m.SetEngine(Coop(2))
	stats := m.Run(func(p *Proc) {
		n := p.Machine().N()
		if p.ID() == 0 {
			p.Send(1, 0, 8)
			p.Recv(n - 1)
		} else {
			p.Recv(p.ID() - 1)
			p.Send((p.ID()+1)%n, p.ID(), 8)
		}
	})
	if len(stats.Procs) != 300 {
		t.Fatalf("stats for %d procs", len(stats.Procs))
	}
	if stats.MakespanTime() <= 0 {
		t.Fatal("ring pipeline produced zero makespan")
	}
}
