package machine

import "sync/atomic"

// This file implements the compact lock-free mailbox representation the
// multi-worker coop engine uses: an intrusive single-producer
// single-consumer linked queue (Vyukov's node-recycling SPSC design). Each
// ordered (src,dst) pair has exactly one producer (the sending processor)
// and one consumer (the receiving processor), so the only synchronization
// needed is one atomic release-store to publish a node and one atomic
// acquire-load to observe it — no mutex, no condvar, no CAS.
//
// Nodes are pooled inside the queue itself: the producer recycles the
// consumed prefix (every node strictly before the consumer's current stub)
// instead of allocating, so a steady-state send/receive cycle performs zero
// heap allocations — the property the slice-backed representation has under
// a single worker, preserved here under many. The first node (the initial
// stub) is embedded in the mailbox, so an idle pair costs no allocation at
// all beyond the mailbox itself (which the sparse directory slab-allocates
// in chunks).

// msgNode is one link of the SPSC chain.
type msgNode struct {
	next atomic.Pointer[msgNode]
	msg  Message
}

// spscInit switches the mailbox to the SPSC chain representation, pointing
// the chain at the embedded stub node. Called once at mailbox creation by
// the multi-worker coop engine, before any producer or consumer touches it.
func (mb *mailbox) spscInit() {
	mb.spsc = true
	mb.qhead.Store(&mb.stub)
	mb.qtail = &mb.stub
	mb.qfirst = &mb.stub
}

// spscPut appends msg. Producer-only. The oldest consumed node is recycled
// when available: qfirst trails the consumer's stub position, and any node
// strictly before it has been released by the consumer's qhead advance (an
// acquire-load of qhead observing the advance orders every consumer access
// to the node before our reuse).
func (mb *mailbox) spscPut(msg Message) {
	var n *msgNode
	if f := mb.qfirst; f != mb.qhead.Load() {
		mb.qfirst = f.next.Load()
		f.next.Store(nil)
		n = f
	} else {
		n = &msgNode{}
	}
	n.msg = msg
	mb.qtail.next.Store(n) // publish: release-store pairs with spscPop's load
	mb.qtail = n
}

// spscPop removes and returns the next message. Consumer-only. The popped
// node's payload is cleared before it becomes the new stub so the payload
// is released for GC and a recycled node never resurrects it.
func (mb *mailbox) spscPop() (Message, bool) {
	h := mb.qhead.Load()
	n := h.next.Load()
	if n == nil {
		return Message{}, false
	}
	msg := n.msg
	n.msg = Message{}
	mb.qhead.Store(n)
	return msg, true
}

// spscPeek returns a copy of the next message without consuming it.
// Consumer-only.
func (mb *mailbox) spscPeek() (Message, bool) {
	n := mb.qhead.Load().next.Load()
	if n == nil {
		return Message{}, false
	}
	return n.msg, true
}

// spscAny reports whether a message is deposited. Consumer-side.
func (mb *mailbox) spscAny() bool {
	return mb.qhead.Load().next.Load() != nil
}

// spscPending counts unconsumed non-duplicate messages. Only valid when no
// processor goroutines are running (Run's drain check).
func (mb *mailbox) spscPending() int {
	n := 0
	for node := mb.qhead.Load().next.Load(); node != nil; node = node.next.Load() {
		if !node.msg.Dup {
			n++
		}
	}
	return n
}
