package machine

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// stubPlan is a hand-scripted FaultPlan for machine-layer tests (the real
// seeded plans live in internal/fault, which depends on this package).
type stubPlan struct {
	msg   func(src, dst int, seq int64) MessageFault
	slow  map[int]float64
	death map[int]float64
}

func (s *stubPlan) MessageFault(src, dst int, seq int64) MessageFault {
	if s.msg == nil {
		return MessageFault{}
	}
	return s.msg(src, dst, seq)
}

func (s *stubPlan) SlowFactor(proc int) float64 {
	if f, ok := s.slow[proc]; ok {
		return f
	}
	return 1
}

func (s *stubPlan) DeathTime(proc int) (float64, bool) {
	t, ok := s.death[proc]
	return t, ok
}

// TestDelayFaultAddsWireTime: injected delay moves a message's arrival and
// the receiver's clock, deterministically, on every engine.
func TestDelayFaultAddsWireTime(t *testing.T) {
	const extra = 0.5
	run := func(e Engine, inject bool) RunStats {
		m := New(2, testCost())
		m.SetEngine(e)
		if inject {
			m.SetFaults(&stubPlan{msg: func(src, dst int, seq int64) MessageFault {
				return MessageFault{Delay: extra}
			}})
		}
		return m.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Send(1, "x", 8)
			} else {
				p.Recv(0)
			}
		})
	}
	for _, e := range engines() {
		healthy := run(e, false)
		chaotic := run(e, true)
		d := chaotic.Procs[1].Finish - healthy.Procs[1].Finish
		if math.Abs(d-extra) > 1e-12 {
			t.Errorf("%s: injected delay shifted receiver finish by %g, want %g", e.Name(), d, extra)
		}
		if chaotic.Procs[0].Finish != healthy.Procs[0].Finish {
			t.Errorf("%s: sender cost changed by a wire delay", e.Name())
		}
	}
}

// TestSlowdownScalesLocalTime: a slowdown factor multiplies compute and
// send-overhead time of the slowed processor only.
func TestSlowdownScalesLocalTime(t *testing.T) {
	run := func(slow map[int]float64) RunStats {
		m := New(2, testCost())
		if slow != nil {
			m.SetFaults(&stubPlan{slow: slow})
		}
		return m.Run(func(p *Proc) {
			p.Compute(1000)
			if p.ID() == 0 {
				p.Send(1, "x", 8)
			} else {
				p.Recv(0)
			}
		})
	}
	healthy := run(nil)
	chaotic := run(map[int]float64{0: 3})
	if got, want := chaotic.Procs[0].Busy, 3*healthy.Procs[0].Busy; math.Abs(got-want) > 1e-12 {
		t.Errorf("slowed busy = %g, want %g", got, want)
	}
	// Processor 1's own busy time is unchanged; only its wait grows.
	if chaotic.Procs[1].Busy != healthy.Procs[1].Busy {
		t.Errorf("healthy processor's busy time changed: %g vs %g", chaotic.Procs[1].Busy, healthy.Procs[1].Busy)
	}
}

// TestDuplicateIsDiscarded: a duplicated message is delivered once to the
// application, leaves no undrained mailbox, and records the discard.
func TestDuplicateIsDiscarded(t *testing.T) {
	for _, e := range engines() {
		var tr sliceTracer
		m := New(2, testCost())
		m.SetEngine(e)
		m.SetTracer(&tr)
		m.SetFaults(&stubPlan{msg: func(src, dst int, seq int64) MessageFault {
			return MessageFault{Duplicate: true}
		}})
		m.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Send(1, 7, 8)
				p.Send(1, 8, 8)
			} else {
				if got := p.Recv(0).Data.(int); got != 7 {
					t.Fatalf("%s: first recv = %d", e.Name(), got)
				}
				if got := p.Recv(0).Data.(int); got != 8 {
					t.Fatalf("%s: second recv = %d", e.Name(), got)
				}
			}
		})
		dups, drops := 0, 0
		for _, ev := range tr.evs {
			if ev.Kind == EvFault && ev.Label == FaultDup {
				dups++
			}
			if ev.Kind == EvFault && ev.Label == FaultDupDrop {
				drops++
			}
		}
		if dups != 2 {
			t.Errorf("%s: %d dup markers, want 2", e.Name(), dups)
		}
		// The duplicate of message 1 is discarded when receiving message 2;
		// the trailing duplicate of message 2 may stay in the mailbox (the
		// drain check must tolerate it — reaching here means it did).
		if drops != 1 {
			t.Errorf("%s: %d dup-drop markers, want 1", e.Name(), drops)
		}
	}
}

// TestRetransmitMarkers: modeled drops surface as EvRetry markers plus
// delay, never as message loss.
func TestRetransmitMarkers(t *testing.T) {
	var tr sliceTracer
	m := New(2, testCost())
	m.SetTracer(&tr)
	m.SetFaults(&stubPlan{msg: func(src, dst int, seq int64) MessageFault {
		if seq == 0 {
			return MessageFault{Retries: 2, Delay: 0.25}
		}
		return MessageFault{}
	}})
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, "a", 8)
			p.Send(1, "b", 8)
		} else {
			p.Recv(0)
			p.Recv(0)
		}
	})
	retries := 0
	for _, ev := range tr.evs {
		if ev.Kind == EvRetry {
			retries++
			if ev.Peer != 1 {
				t.Errorf("retry marker peer = %d, want 1", ev.Peer)
			}
		}
	}
	if retries != 2 {
		t.Errorf("%d retry markers, want 2", retries)
	}
}

// TestDeathPanicsTyped: a killed processor fails at the first operation at
// or after its death time; Run reports the death as the root cause and the
// receivers waiting on it as the cascade.
func TestDeathPanicsTyped(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.Name(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("run with a killed processor did not fail")
				}
				re, ok := r.(*RunError)
				if !ok {
					t.Fatalf("panic value %T, want *RunError", r)
				}
				root := re.Root()
				de, ok := root.Value.(*ProcDeathError)
				if !ok || de.Proc != 0 {
					t.Fatalf("root cause %v, want death of processor 0", root.Value)
				}
				// errors.As finds the typed causes through the aggregate.
				var ds *DeadSenderError
				if !errors.As(re, &ds) {
					t.Fatal("no DeadSenderError in the cascade")
				}
				if ds.Src != 0 || !ds.SrcPanicked {
					t.Fatalf("cascade error %+v, want panicked sender 0", ds)
				}
			}()
			m := New(2, testCost())
			m.SetEngine(e)
			m.SetFaults(&stubPlan{death: map[int]float64{0: 0.5}})
			m.Run(func(p *Proc) {
				if p.ID() == 0 {
					p.Elapse(1) // crosses the death time
					p.Compute(1)
					p.Send(1, "never", 8)
				} else {
					p.Recv(0)
				}
			})
		})
	}
}

// TestRecvTimeoutSemantics: the three outcomes, decided purely in virtual
// time, identical across engines.
func TestRecvTimeoutSemantics(t *testing.T) {
	type result struct {
		Outcome RecvOutcome
		Clock   float64
	}
	run := func(e Engine, senderDelay, timeout float64) (res result) {
		m := New(2, testCost())
		m.SetEngine(e)
		m.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				if senderDelay >= 0 {
					p.Elapse(senderDelay)
					p.Send(1, "x", 0)
				}
			case 1:
				_, out := p.RecvTimeout(0, timeout)
				res = result{Outcome: out, Clock: p.Now()}
				if out == RecvTimedOut {
					// The late message is still queued: a plain Recv gets it.
					p.Recv(0)
				}
			}
		})
		return res
	}
	for _, e := range engines() {
		// Arrives in time (sender sends at 0.1, alpha 1e-4 => ~0.1001).
		if got := run(e, 0.1, 1.0); got.Outcome != RecvOK {
			t.Errorf("%s: early message outcome = %v, want ok", e.Name(), got.Outcome)
		}
		// Arrives virtually late: timed out at the deadline, message stays.
		got := run(e, 0.5, 0.25)
		if got.Outcome != RecvTimedOut {
			t.Errorf("%s: late message outcome = %v, want timed-out", e.Name(), got.Outcome)
		}
		if math.Abs(got.Clock-0.25) > 1e-12 {
			t.Errorf("%s: timed-out receiver clock = %g, want the 0.25 deadline", e.Name(), got.Clock)
		}
		// Sender exits without sending: dead sender, clock at deadline.
		got = run(e, -1, 0.25)
		if got.Outcome != RecvSenderDead {
			t.Errorf("%s: dead sender outcome = %v, want sender-dead", e.Name(), got.Outcome)
		}
		if math.Abs(got.Clock-0.25) > 1e-12 {
			t.Errorf("%s: dead-sender receiver clock = %g, want the 0.25 deadline", e.Name(), got.Clock)
		}
	}
}

// TestChaosByteIdenticalAcrossEngines: the same scripted fault plan yields
// identical traces and stats under every engine and under the shuffled
// coop scheduler — determinism does not depend on host scheduling order.
func TestChaosByteIdenticalAcrossEngines(t *testing.T) {
	plan := func() *stubPlan {
		return &stubPlan{
			msg: func(src, dst int, seq int64) MessageFault {
				var mf MessageFault
				if (src+dst+int(seq))%3 == 0 {
					mf.Delay = 1e-3 * float64(1+seq%4)
				}
				if (src*7+int(seq))%5 == 0 {
					mf.Duplicate = true
				}
				if int(seq)%4 == 1 {
					mf.Retries = 1
					mf.Delay += 5e-4
				}
				return mf
			},
			slow: map[int]float64{2: 2.5},
		}
	}
	run := func(e Engine) (RunStats, []Event) {
		var tr sliceTracer
		m := New(8, testCost())
		m.SetEngine(e)
		m.SetTracer(&tr)
		m.SetFaults(plan())
		stats := m.Run(func(p *Proc) {
			n := p.Machine().N()
			for round := 0; round < 6; round++ {
				p.Compute(float64(50 * (p.ID() + 1)))
				p.Send((p.ID()+1)%n, p.ID(), 64)
				p.Recv((p.ID() + n - 1) % n)
			}
		})
		byProc := make(map[int][]Event)
		for _, ev := range tr.evs {
			byProc[ev.Proc] = append(byProc[ev.Proc], ev)
		}
		var flat []Event
		for id := 0; id < 8; id++ {
			evs := byProc[id]
			sortEventsBySeq(evs)
			flat = append(flat, evs...)
		}
		return stats, flat
	}
	baseStats, baseEvents := run(Goroutine())
	for _, e := range []Engine{Coop(1), Coop(4), CoopShuffled(1, 99), CoopShuffled(4, 7)} {
		stats, events := run(e)
		if !reflect.DeepEqual(stats, baseStats) {
			t.Errorf("%s: chaotic RunStats diverge from goroutine engine", e.Name())
		}
		if !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("%s: chaotic traces diverge from goroutine engine (%d vs %d events)",
				e.Name(), len(events), len(baseEvents))
		}
	}
}

// TestNilPlanHotPathNoAllocs: with no fault plan the added guards must not
// allocate (the existing nil-tracer guard covers the tracer side; this one
// pins the fault side on a machine that has a tracer-free fault check).
func TestNilPlanHotPathNoAllocs(t *testing.T) {
	m := New(2, testCost())
	p0 := &Proc{m: m, id: 0}
	p1 := &Proc{m: m, id: 1}
	p0.Send(1, nil, 64) // warm up the mailbox
	p1.TryRecv(0)
	allocs := testing.AllocsPerRun(200, func() {
		p0.Compute(10)
		p0.Send(1, nil, 64)
		p1.TryRecv(0)
		p1.Elapse(1e-6)
	})
	if allocs != 0 {
		t.Errorf("nil-fault-plan hot path allocates %.1f per op cycle, want 0", allocs)
	}
}

// TestShuffleEngineSelectors: the +shuffle@seed modifier parses, round
// trips through Name, and rejects bad forms.
func TestShuffleEngineSelectors(t *testing.T) {
	good := []string{"coop+shuffle@7", "coop:4+shuffle@7", "coop:2+shuffle@0"}
	for _, name := range good {
		e, err := EngineByName(name)
		if err != nil {
			t.Errorf("EngineByName(%q): %v", name, err)
			continue
		}
		if e.Name() != name {
			t.Errorf("EngineByName(%q).Name() = %q", name, e.Name())
		}
	}
	bad := []string{"goroutine+shuffle@7", "coop+shuffle@", "coop+shuffle@x", "coop+spin@1", "coop:0+shuffle@1"}
	for _, name := range bad {
		if e, err := EngineByName(name); err == nil {
			t.Errorf("EngineByName(%q) = %v, want error", name, e.Name())
		}
	}
}
