package machine

import (
	"testing"
)

// TestTryRecvEmitsTraceEvents is the regression test for the TryRecv
// bookkeeping bug: the non-blocking path used to skip the EvWait/EvRecv
// events and seq bumps that Recv emits, leaving traced timelines with
// missing receive markers and breaking send→recv edge matching.
func TestTryRecvEmitsTraceEvents(t *testing.T) {
	m := New(2, testCost())
	tr := &sliceTracer{}
	m.SetTracer(tr)
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 7, 64)
		case 1:
			// The message has a positive virtual arrival time while the
			// receiver's clock is still 0, so a wait interval must be traced
			// even on the non-blocking path.
			for {
				if _, ok := p.TryRecv(0); ok {
					return
				}
			}
		}
	})
	var wait, recv *Event
	for i := range tr.evs {
		e := &tr.evs[i]
		if e.Proc != 1 {
			continue
		}
		switch e.Kind {
		case EvWait:
			wait = e
		case EvRecv:
			recv = e
		}
	}
	if wait == nil {
		t.Fatal("TryRecv emitted no EvWait event for a not-yet-arrived message")
	}
	if recv == nil {
		t.Fatal("TryRecv emitted no EvRecv marker")
	}
	if wait.Peer != 0 || wait.Bytes != 64 || wait.Start != 0 || wait.End <= 0 {
		t.Errorf("wait event = %+v, want peer 0, bytes 64, span [0, arrival]", wait)
	}
	if recv.Peer != 0 || recv.Bytes != 64 || recv.Start != recv.End || recv.End != wait.End {
		t.Errorf("recv marker = %+v, want zero-length marker at wait end %g", recv, wait.End)
	}
	if recv.Seq != wait.Seq+1 {
		t.Errorf("seq numbers wait=%d recv=%d, want consecutive", wait.Seq, recv.Seq)
	}
}

// TestTryRecvMatchesRecvAccounting pins that both receive paths produce the
// same clock advance, idle time, and received-message count.
func TestTryRecvMatchesRecvAccounting(t *testing.T) {
	type obs struct {
		clock, idle float64
		recvd       int64
	}
	run := func(try bool) obs {
		m := New(2, testCost())
		var o obs
		m.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Compute(5000)
				p.Send(1, 1, 8)
			case 1:
				if try {
					for {
						if _, ok := p.TryRecv(0); ok {
							break
						}
					}
				} else {
					p.Recv(0)
				}
				o = obs{clock: p.Now(), idle: p.IdleTime(), recvd: 1}
			}
		})
		return o
	}
	blocking, nonblocking := run(false), run(true)
	if blocking != nonblocking {
		t.Errorf("TryRecv accounting %+v differs from Recv accounting %+v", nonblocking, blocking)
	}
}

// TestLargeMachineConstructionIsLazy guards the lazy-mailbox allocation:
// constructing a 1024-processor machine must not materialize the ~1M
// per-ordered-pair mailboxes up front. The directory, per-source registry,
// and termination slices plus the Machine header itself stay within a
// handful of O(n) allocations.
func TestLargeMachineConstructionIsLazy(t *testing.T) {
	allocs := testing.AllocsPerRun(10, func() {
		_ = New(1024, testCost())
	})
	if allocs > 5 {
		t.Errorf("New(1024) performs %.0f allocations, want <= 5 (mailboxes must be lazy)", allocs)
	}
	// Above the dense-directory threshold even the O(n^2) pointer slice is
	// disallowed: a 65536-processor machine must construct in O(n).
	allocs = testing.AllocsPerRun(3, func() {
		_ = New(denseMailProcs+1, testCost())
	})
	if allocs > 5 {
		t.Errorf("New(%d) performs %.0f allocations, want <= 5 (sparse directory must be O(n))",
			denseMailProcs+1, allocs)
	}
}

// TestLazyMailboxesMaterializeOnlyUsedPairs checks that after a run touching
// k ordered pairs, exactly those slots are non-nil.
func TestLazyMailboxesMaterializeOnlyUsedPairs(t *testing.T) {
	m := New(8, testCost())
	m.Run(func(p *Proc) {
		n := p.Machine().N()
		p.Send((p.ID()+1)%n, p.ID(), 8)
		p.Recv((p.ID() - 1 + n) % n)
	})
	live := 0
	for i := range m.mail {
		if m.mail[i].Load() != nil {
			live++
		}
	}
	if live != 8 {
		t.Errorf("%d mailboxes materialized for an 8-pair ring, want 8", live)
	}
}

// BenchmarkMachineNew1024 tracks machine-construction cost at the large
// machine size the sweep benchmark targets.
func BenchmarkMachineNew1024(b *testing.B) {
	cost := testCost()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(1024, cost)
	}
}
