// Package benchcmp compares benchmark snapshot files (the BENCH_*.json
// artifacts committed to this repository) against a freshly generated run,
// so CI can fail on regressions instead of silently re-uploading drifted
// numbers.
//
// Snapshots are treated as generic JSON: every numeric leaf becomes a
// flattened "Rows[3].Makespan"-style path, and corresponding leaves are
// compared under a relative tolerance. Virtual-time fields are deterministic
// and compare exactly at tolerance 0; host-time fields (wall seconds,
// throughput) vary run to run and are excluded with a skip pattern.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Diff is one discrepancy between baseline and current snapshots.
type Diff struct {
	Path string
	// Base and Cur are the two values; NaN marks a side where the path is
	// missing or non-numeric.
	Base, Cur float64
	// RelPct is the relative difference |cur-base|/|base| in percent
	// (infinite when base is 0 and cur is not).
	RelPct float64
}

func (d Diff) String() string {
	switch {
	case math.IsNaN(d.Base):
		return fmt.Sprintf("%s: missing from baseline (current %g)", d.Path, d.Cur)
	case math.IsNaN(d.Cur):
		return fmt.Sprintf("%s: missing from current run (baseline %g)", d.Path, d.Base)
	default:
		return fmt.Sprintf("%s: baseline %g, current %g (%+.3f%%)", d.Path, d.Base, d.Cur, d.RelPct)
	}
}

// Flatten decodes JSON and maps every numeric leaf to its flattened path
// ("Rows[3].Makespan"). Booleans flatten to 0/1; strings and nulls are
// ignored (they carry configuration, not measurements).
func Flatten(data []byte) (map[string]float64, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	flattenInto(out, "", v)
	return out, nil
}

func flattenInto(out map[string]float64, path string, v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			flattenInto(out, p, child)
		}
	case []any:
		for i, child := range x {
			flattenInto(out, path+"["+strconv.Itoa(i)+"]", child)
		}
	case float64:
		out[path] = x
	case bool:
		if x {
			out[path] = 1
		} else {
			out[path] = 0
		}
	}
}

// Compare reports every path whose values differ by more than tolerancePct
// percent (relative to the baseline value), plus paths present on only one
// side. Paths matching skip (which may be nil) are ignored entirely. The
// result is sorted by path.
func Compare(baseline, current map[string]float64, tolerancePct float64, skip *regexp.Regexp) []Diff {
	var diffs []Diff
	skipped := func(p string) bool { return skip != nil && skip.MatchString(p) }
	for p, b := range baseline {
		if skipped(p) {
			continue
		}
		c, ok := current[p]
		if !ok {
			diffs = append(diffs, Diff{Path: p, Base: b, Cur: math.NaN()})
			continue
		}
		if b == c {
			continue
		}
		rel := math.Inf(1)
		if b != 0 {
			rel = (c - b) / math.Abs(b) * 100
		}
		if math.Abs(rel) > tolerancePct {
			diffs = append(diffs, Diff{Path: p, Base: b, Cur: c, RelPct: rel})
		}
	}
	for p, c := range current {
		if skipped(p) {
			continue
		}
		if _, ok := baseline[p]; !ok {
			diffs = append(diffs, Diff{Path: p, Base: math.NaN(), Cur: c})
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Path < diffs[j].Path })
	return diffs
}

// CompareFiles compares two snapshot files on disk.
func CompareFiles(basePath, curPath string, tolerancePct float64, skipPattern string) ([]Diff, error) {
	var skip *regexp.Regexp
	if skipPattern != "" {
		var err error
		if skip, err = regexp.Compile(skipPattern); err != nil {
			return nil, fmt.Errorf("benchcmp: bad skip pattern: %w", err)
		}
	}
	base, err := loadFlat("baseline", basePath)
	if err != nil {
		return nil, err
	}
	cur, err := loadFlat("current", curPath)
	if err != nil {
		return nil, err
	}
	return Compare(base, cur, tolerancePct, skip), nil
}

// CompareToBaseline compares an in-memory snapshot (marshalled to JSON)
// against a baseline file.
func CompareToBaseline(basePath string, current any, tolerancePct float64, skipPattern string) ([]Diff, error) {
	var skip *regexp.Regexp
	if skipPattern != "" {
		var err error
		if skip, err = regexp.Compile(skipPattern); err != nil {
			return nil, fmt.Errorf("benchcmp: bad skip pattern: %w", err)
		}
	}
	base, err := loadFlat("baseline", basePath)
	if err != nil {
		return nil, err
	}
	js, err := json.Marshal(current)
	if err != nil {
		return nil, err
	}
	cur, err := Flatten(js)
	if err != nil {
		return nil, err
	}
	return Compare(base, cur, tolerancePct, skip), nil
}

// loadFlat reads and flattens one snapshot; role ("baseline"/"current")
// qualifies the error so a CI log says which side was missing or malformed.
func loadFlat(role, path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %s snapshot: %w", role, err)
	}
	flat, err := Flatten(data)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %s snapshot %s: malformed JSON: %w", role, path, err)
	}
	return flat, nil
}
