package benchcmp

import (
	"math"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestFlatten(t *testing.T) {
	flat, err := Flatten([]byte(`{
		"Procs": 64, "Quick": false, "Label": "ignored",
		"Rows": [{"Makespan": 1.5}, {"Makespan": 2.25}],
		"Nested": {"Deep": {"X": 3}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Procs": 64, "Quick": 0,
		"Rows[0].Makespan": 1.5, "Rows[1].Makespan": 2.25,
		"Nested.Deep.X": 3,
	}
	if len(flat) != len(want) {
		t.Errorf("flat = %v", flat)
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("%s = %g, want %g", k, flat[k], v)
		}
	}
}

func TestCompareToleranceAndSkip(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "hostSec": 1, "gone": 5}
	cur := map[string]float64{"a": 100.5, "b": 120, "hostSec": 9, "new": 7}

	diffs := Compare(base, cur, 1.0, regexp.MustCompile(`(?i)sec`))
	// a is within 1%, hostSec skipped; expect b drift, gone missing, new extra.
	if len(diffs) != 3 {
		t.Fatalf("diffs = %v", diffs)
	}
	if diffs[0].Path != "b" || math.Abs(diffs[0].RelPct-20) > 1e-9 {
		t.Errorf("diffs[0] = %v", diffs[0])
	}
	if diffs[1].Path != "gone" || !math.IsNaN(diffs[1].Cur) {
		t.Errorf("diffs[1] = %v", diffs[1])
	}
	if diffs[2].Path != "new" || !math.IsNaN(diffs[2].Base) {
		t.Errorf("diffs[2] = %v", diffs[2])
	}

	// Exact tolerance: identical maps produce no diffs.
	if d := Compare(base, base, 0, nil); len(d) != 0 {
		t.Errorf("self-compare diffs = %v", d)
	}
}

func TestCompareFilesAndBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	os.WriteFile(basePath, []byte(`{"x": 10, "wallSeconds": 3}`), 0o644)
	os.WriteFile(curPath, []byte(`{"x": 10, "wallSeconds": 99}`), 0o644)

	diffs, err := CompareFiles(basePath, curPath, 0, "Seconds")
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("diffs = %v", diffs)
	}

	diffs, err = CompareToBaseline(basePath, map[string]any{"x": 11, "wallSeconds": 0}, 5, "Seconds")
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || diffs[0].Path != "x" {
		t.Errorf("diffs = %v", diffs)
	}
	if _, err := CompareFiles(filepath.Join(dir, "missing.json"), curPath, 0, ""); err == nil {
		t.Error("missing baseline should error")
	}
	if _, err := CompareFiles(basePath, curPath, 0, "("); err == nil {
		t.Error("bad skip pattern should error")
	}
}
