package experiments

import (
	"fmt"
	"io"
	"time"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

// ReplayConfig scopes a skeleton-replay campaign: one FFT-Hist pipeline run
// is captured once into the skeleton store — plus one chaotic capture under
// a deterministic fault plan — and a sweep of campaign jobs varying only
// machine parameters (alpha, beta, flop rate, net scale) answers every job
// by one analytic DAG evaluation against the store instead of a full
// re-simulation. A sampled fraction of replayed jobs is cross-checked by
// re-simulating at the same parameters and asserting bitwise-equal
// makespans. The campaign closes with a replay-first mapping search: cost
// tables for several machine variants are built through the store, so the
// whole search costs one traced simulation per cell plus cheap re-costs.
//
// Everything except the Host* throughput fields is a pure function of
// (config minus Workers/Engine/StoreDir), so the report is a committable
// benchmark artifact (BENCH_replay.json, exact-diffed in CI with -skip
// '^Host').
type ReplayConfig struct {
	Procs int
	N     int
	Sets  int
	// Scales are the per-parameter multipliers of the sweep grid. Powers of
	// two keep the analytic re-cost bitwise equal to a fresh simulation
	// (scaling by 2^k is exact in IEEE-754), which is what lets the
	// cross-checks demand exact equality instead of a tolerance.
	Scales []float64
	// CheckEvery cross-checks every k-th grid job against a full
	// re-simulation (0: no cross-checks).
	CheckEvery int
	// ChaosSeed/ChaosProfile name the fault plan of the chaotic capture.
	ChaosSeed    uint64
	ChaosProfile string
	// SearchScales are the cost variants of the replay-first mapping
	// search: for each, FFT-Hist cost tables are built through the store
	// and the optimizer picks the latency-optimal mapping.
	SearchScales []float64
	// Workers bounds host parallelism (0 = GOMAXPROCS); Engine selects the
	// execution engine (nil: package default); StoreDir persists the
	// skeleton store on disk ("" = in-process). None of them changes a
	// deterministic report field.
	Workers  int
	Engine   machine.Engine
	StoreDir string
}

// DefaultReplay captures a 16-processor three-stage pipeline and sweeps a
// 4-parameter power-of-two grid.
func DefaultReplay() ReplayConfig {
	return ReplayConfig{
		Procs:        16,
		N:            64,
		Sets:         6,
		Scales:       []float64{0.25, 0.5, 1, 2, 4},
		CheckEvery:   4,
		ChaosSeed:    42,
		ChaosProfile: "flaky",
		SearchScales: []float64{1, 2, 4},
	}
}

// QuickReplay is a reduced variant.
func QuickReplay() ReplayConfig {
	cfg := DefaultReplay()
	cfg.Procs, cfg.N, cfg.Sets = 8, 32, 4
	cfg.Scales = []float64{0.5, 1, 2}
	cfg.SearchScales = []float64{1, 2}
	return cfg
}

// replayParams are the swept machine parameters. "netscale" is a uniform
// wire-time multiplier (skeleton.Params.NetScale); the others scale one
// sim.CostModel field.
var replayParams = []string{"alpha", "beta", "floprate", "netscale"}

// ReplayGridPoint is one campaign job: one analytic re-cost of the stored
// skeleton under one scaled machine parameter.
type ReplayGridPoint struct {
	Param    string
	Scale    float64
	Makespan float64
}

// ReplayCheck is one sampled grid job re-simulated at the same parameters.
// Exact records bitwise equality — the campaign's correctness currency; a
// false here is a Mismatch.
type ReplayCheck struct {
	Param  string
	Scale  float64
	Recost float64
	Sim    float64
	Exact  bool
}

// ReplaySearchRow is one cost variant of the replay-first mapping search.
type ReplaySearchRow struct {
	// Variant labels the machine ("base", "alpha x2", ...).
	Variant string
	// Best is the latency-optimal mapping the optimizer chose from the
	// replay-built tables.
	Best string
	// Latency is the model-predicted latency of that mapping.
	Latency float64
}

// ReplayBench is the campaign report. All fields except the Host* block are
// deterministic.
type ReplayBench struct {
	Name  string
	Procs int
	N     int
	Sets  int
	// SkeletonKey/Ops identify the healthy capture; Baseline is its
	// recorded makespan and IdentityExact whether re-costing at recorded
	// parameters reproduced it bitwise (false = determinism regression).
	SkeletonKey   string
	SkeletonOps   int
	Baseline      float64
	IdentityExact bool
	// Chaos identifies the chaotic capture ("seed:profile"). The chaotic
	// skeleton lives under its own store key — ChaosDistinctKey must be
	// true — and replays exactly at identity (ChaosIdentityExact).
	Chaos              string
	ChaosBaseline      float64
	ChaosIdentityExact bool
	ChaosDistinctKey   bool
	// Grid is the sweep, param-major, scale-minor; Checks the sampled
	// cross-checks; Mismatches counts inexact checks (must be zero).
	Grid       []ReplayGridPoint
	Checks     []ReplayCheck
	Mismatches int
	// Search is the replay-first mapping search across cost variants.
	Search []ReplaySearchRow
	// Store counters: how much simulation the store displaced. With a cold
	// store these are a pure function of the config.
	StoreMemoryHits int64
	StoreDiskHits   int64
	StoreCaptures   int64
	// Host-time throughput of replayed campaign jobs vs live-simulated
	// ones, and their ratio — the campaign's payoff measurement.
	// Host-dependent: excluded from exact-diff comparisons via -skip.
	HostReplaysPerSecond float64
	HostSimsPerSecond    float64
	HostSpeedup          float64
	HostSeconds          float64
}

// replayCost returns the campaign cost model with one parameter scaled;
// "netscale" is expressed through Params.NetScale instead, so the cost is
// returned unchanged.
func replayCost(base sim.CostModel, param string, scale float64) (sim.CostModel, skeleton.Params) {
	c := base
	switch param {
	case "alpha":
		c.Alpha *= scale
	case "beta":
		c.Beta *= scale
	case "floprate":
		c.FlopRate *= scale
	case "netscale":
		return c, skeleton.Params{NetScale: scale}
	default:
		panic("experiments: unknown replay parameter " + param)
	}
	return c, skeleton.Params{Cost: &c}
}

// simCost returns the cost model a live simulation needs to reproduce one
// grid point. A net scale s multiplies every wire time, which a simulation
// expresses by scaling alpha, beta and per-hop together (exact for
// power-of-two s).
func simCost(base sim.CostModel, param string, scale float64) sim.CostModel {
	if param != "netscale" {
		c, _ := replayCost(base, param, scale)
		return c
	}
	c := base
	c.Alpha *= scale
	c.Beta *= scale
	c.PerHop *= scale
	return c
}

// Replay runs the campaign: capture once (healthy and chaotic), replay
// everywhere, cross-check a sample, then drive a mapping search through the
// store.
func Replay(cfg ReplayConfig) (*ReplayBench, error) {
	base := sim.Paragon()
	appCfg := ffthist.Config{N: cfg.N, Sets: cfg.Sets, Bins: 64}
	mp := chaosMapping(cfg.Procs)
	store := skeleton.NewStore(cfg.StoreDir)
	prof, err := fault.ProfileByName(cfg.ChaosProfile)
	if err != nil {
		return nil, err
	}
	plan := fault.New(cfg.ChaosSeed, prof)

	rep := &ReplayBench{
		Name: "replay-ffthist", Procs: cfg.Procs, N: cfg.N, Sets: cfg.Sets,
		Chaos: plan.String(),
	}

	// capture runs one live traced pipeline simulation under fp.
	capture := func(fp machine.FaultPlan) func() (*skeleton.Skeleton, error) {
		return func() (*skeleton.Skeleton, error) {
			m := newMachine(cfg.Procs, base, cfg.Engine, fp)
			sink := skeleton.NewSink(base, chaosLabel(fp))
			m.SetTracer(sink)
			ffthist.Run(m, appCfg, mp)
			return sink.Skeleton()
		}
	}
	pipelineKey := func(chaos string) skeleton.StoreKey {
		return skeleton.StoreKey{
			App:     "ffthist.pipeline",
			Params:  fmt.Sprintf("N=%d,Sets=%d,Bins=%d", cfg.N, cfg.Sets, appCfg.Bins),
			Mapping: fmt.Sprintf("%+v", mp),
			P:       cfg.Procs,
			Chaos:   chaos,
			Cost:    base,
		}
	}

	// Healthy capture: one traced run populates the store; every campaign
	// job after this line is an analytic DAG evaluation.
	healthyKey := pipelineKey("")
	sk, _, err := store.GetOrCapture(healthyKey, capture(nil))
	if err != nil {
		return nil, err
	}
	skey, err := sk.Key()
	if err != nil {
		return nil, err
	}
	rep.SkeletonKey, rep.SkeletonOps, rep.Baseline = skey, sk.Ops(), sk.Makespan
	identity, err := sk.Recost(skeleton.Params{})
	if err != nil {
		return nil, err
	}
	rep.IdentityExact = identity == sk.Makespan

	// Chaotic capture: same scenario under the fault plan. The plan's
	// identity is part of the store key, so the two skeletons never alias;
	// replay at identity is exact because the baked-in fault schedule is
	// part of the recorded DAG.
	chaosKey := pipelineKey(plan.String())
	csk, _, err := store.GetOrCapture(chaosKey, capture(plan.Machine()))
	if err != nil {
		return nil, err
	}
	rep.ChaosDistinctKey = chaosKey.Key() != healthyKey.Key()
	rep.ChaosBaseline = csk.Makespan
	cid, err := csk.Recost(skeleton.Params{})
	if err != nil {
		return nil, err
	}
	rep.ChaosIdentityExact = cid == csk.Makespan

	// The sweep: every job consults the store and re-costs analytically.
	// Param-major, scale-minor — a deterministic order for every -j.
	type cell struct {
		param string
		scale float64
	}
	var cells []cell
	for _, p := range replayParams {
		for _, s := range cfg.Scales {
			cells = append(cells, cell{p, s})
		}
	}
	grid := sweep.MapNamed("replay-grid", cfg.Workers, len(cells), func(i int) (ReplayGridPoint, error) {
		ssk, _, ok := store.Get(healthyKey)
		if !ok {
			return ReplayGridPoint{}, fmt.Errorf("experiments: skeleton store lost the campaign capture")
		}
		_, p := replayCost(base, cells[i].param, cells[i].scale)
		mk, err := ssk.Recost(p)
		if err != nil {
			return ReplayGridPoint{}, err
		}
		return ReplayGridPoint{Param: cells[i].param, Scale: cells[i].scale, Makespan: mk}, nil
	})
	for _, r := range grid {
		if r.Err != nil {
			return nil, r.Err
		}
		rep.Grid = append(rep.Grid, r.Value)
	}

	// Cross-checks: every CheckEvery-th grid job re-simulated at the same
	// parameters. Power-of-two scales make the analytic re-cost perform the
	// exact rounding a fresh simulation performs, so the comparison is
	// bitwise, not approximate.
	if cfg.CheckEvery > 0 {
		for i := 0; i < len(cells); i += cfg.CheckEvery {
			c := simCost(base, cells[i].param, cells[i].scale)
			res := ffthist.Run(newMachine(cfg.Procs, c, cfg.Engine, nil), appCfg, mp)
			simMk := res.Stats.MakespanTime()
			re := rep.Grid[i].Makespan
			chk := ReplayCheck{Param: cells[i].param, Scale: cells[i].scale,
				Recost: re, Sim: simMk, Exact: re == simMk}
			if !chk.Exact {
				rep.Mismatches++
			}
			rep.Checks = append(rep.Checks, chk)
		}
	}

	// Replay-first mapping search: cost tables for each machine variant are
	// built through the store — one traced simulation per stage cell at the
	// base model, analytic re-costs for every other variant — and the
	// optimizer picks the latency-optimal mapping per variant.
	ropt := &mapping.ReplayOptions{Store: store, Base: base}
	for _, s := range cfg.SearchScales {
		variant := base
		variant.Alpha *= s
		variant.Beta *= s
		label := "base"
		if s != 1 {
			label = fmt.Sprintf("comm x%g", s)
		}
		model, _, err := ffthist.MeasuredModel(variant, appCfg, cfg.Procs,
			mapping.BuildOptions{Workers: cfg.Workers, Engine: cfg.Engine, Replay: ropt})
		if err != nil {
			return nil, err
		}
		choice, err := mapping.Optimize(model, 0)
		if err != nil {
			return nil, err
		}
		rep.Search = append(rep.Search, ReplaySearchRow{
			Variant: label, Best: choice.String(), Latency: choice.PredLatency})
	}

	stats := store.Stats()
	rep.StoreMemoryHits, rep.StoreDiskHits, rep.StoreCaptures = stats.Memory, stats.Disk, stats.Captured

	// Host-time throughput: replayed campaign jobs vs live-simulated ones.
	// The ratio is the backend's payoff — the acceptance bar is >= 20x.
	const replayReps, simReps = 64, 4
	t0 := time.Now()
	for i := 0; i < replayReps; i++ {
		_, p := replayCost(base, replayParams[i%len(replayParams)], 2)
		if _, err := sk.Recost(p); err != nil {
			return nil, err
		}
	}
	replayDur := time.Since(t0)
	t1 := time.Now()
	for i := 0; i < simReps; i++ {
		ffthist.Run(newMachine(cfg.Procs, base, cfg.Engine, nil), appCfg, mp)
	}
	simDur := time.Since(t1)
	if replayDur > 0 {
		rep.HostReplaysPerSecond = replayReps / replayDur.Seconds()
	}
	if simDur > 0 {
		rep.HostSimsPerSecond = simReps / simDur.Seconds()
	}
	if rep.HostSimsPerSecond > 0 {
		rep.HostSpeedup = rep.HostReplaysPerSecond / rep.HostSimsPerSecond
	}
	rep.HostSeconds = time.Since(t0).Seconds()
	return rep, nil
}

// WriteText prints the campaign report; the layout is deterministic apart
// from the final host-throughput block.
func (r *ReplayBench) WriteText(w io.Writer) {
	fmt.Fprintf(w, "=== %s: P=%d N=%d Sets=%d ===\n", r.Name, r.Procs, r.N, r.Sets)
	fmt.Fprintf(w, "skeleton %s, %d ops, baseline makespan %.6f s\n", r.SkeletonKey, r.SkeletonOps, r.Baseline)
	if r.IdentityExact {
		fmt.Fprintf(w, "determinism: replay at recorded parameters reproduces the makespan exactly\n")
	} else {
		fmt.Fprintf(w, "determinism: VIOLATED — replay at recorded parameters deviates\n")
	}
	fmt.Fprintf(w, "chaos capture %s: makespan %.6f s, identity exact: %v, distinct store key: %v\n",
		r.Chaos, r.ChaosBaseline, r.ChaosIdentityExact, r.ChaosDistinctKey)
	fmt.Fprintf(w, "\nreplay grid (scaled machine parameters, no re-simulation):\n")
	for _, g := range r.Grid {
		fmt.Fprintf(w, "  %-8s x%-6g -> %.6f s\n", g.Param, g.Scale, g.Makespan)
	}
	fmt.Fprintf(w, "\ncross-checks (re-simulated, bitwise):\n")
	for _, c := range r.Checks {
		verdict := "exact"
		if !c.Exact {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "  %-8s x%-6g replay %.6f s, sim %.6f s: %s\n",
			c.Param, c.Scale, c.Recost, c.Sim, verdict)
	}
	fmt.Fprintf(w, "mismatches: %d\n", r.Mismatches)
	fmt.Fprintf(w, "\nreplay-first mapping search (tables from the skeleton store):\n")
	for _, s := range r.Search {
		fmt.Fprintf(w, "  %-10s best %-16s latency %.6f s\n", s.Variant, s.Best, s.Latency)
	}
	fmt.Fprintf(w, "\nstore: %d memory hits, %d disk hits, %d captures\n",
		r.StoreMemoryHits, r.StoreDiskHits, r.StoreCaptures)
	fmt.Fprintf(w, "host throughput: %.0f replayed jobs/s vs %.1f live sims/s (%.0fx, %.2fs total)\n",
		r.HostReplaysPerSecond, r.HostSimsPerSecond, r.HostSpeedup, r.HostSeconds)
}
