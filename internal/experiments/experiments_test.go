package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

func TestTable1QuickShapes(t *testing.T) {
	rows := Table1(QuickTable1())
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if strings.Contains(r.Best, "infeasible") {
			t.Errorf("%s %s: %s", r.Name, r.Size, r.Best)
			continue
		}
		if r.DPThroughput <= 0 || r.TaskThroughput <= 0 {
			t.Errorf("%s %s: zero throughput (dp=%g task=%g)", r.Name, r.Size, r.DPThroughput, r.TaskThroughput)
			continue
		}
		// The paper's core claim: the task mapping beats the data-parallel
		// mapping on throughput in every row.
		if r.TaskThroughput <= r.DPThroughput {
			t.Errorf("%s %s: task throughput %.3f <= DP %.3f", r.Name, r.Size, r.TaskThroughput, r.DPThroughput)
		}
		// Latency may move either way (the paper's radar row holds latency
		// constant; FFT-Hist pays latency for throughput), but it must stay
		// within the same order of magnitude.
		if r.TaskLatency > 10*r.DPLatency {
			t.Errorf("%s %s: task latency %.4f blew up vs DP %.4f", r.Name, r.Size, r.TaskLatency, r.DPLatency)
		}
	}
}

// TestTable1UnderWorkstationModel reruns the experiment under a modern
// cost model: the paper's qualitative conclusion (task mappings beat data
// parallelism on throughput) must survive a three-orders-of-magnitude
// change in machine constants, even though the chosen mappings differ.
func TestTable1UnderWorkstationModel(t *testing.T) {
	cfg := QuickTable1()
	cfg.Cost = sim.Workstation()
	rows := Table1(cfg)
	for _, r := range rows {
		if strings.Contains(r.Best, "infeasible") {
			t.Errorf("%s %s: %s", r.Name, r.Size, r.Best)
			continue
		}
		if r.TaskThroughput <= r.DPThroughput {
			t.Errorf("%s %s: task %.1f <= DP %.1f under workstation model",
				r.Name, r.Size, r.TaskThroughput, r.DPThroughput)
		}
	}
}

func TestTable1Print(t *testing.T) {
	rows := Table1(QuickTable1())
	var buf bytes.Buffer
	PrintTable1(&buf, rows, 16)
	out := buf.String()
	for _, want := range []string{"FFT-Hist", "Radar", "Stereo", "Best Task-Data Parallel"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5QuickShapes(t *testing.T) {
	cfg := QuickFig5()
	rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// No constraint: latency-optimal is the pure data-parallel mapping
	// (Figure 5, left).
	if len(rows[0].Choice.StageProcs) != 1 || rows[0].Choice.Modules != 1 {
		t.Errorf("unconstrained choice = %v, want data-parallel", rows[0].Choice)
	}
	// Tighter constraints cannot decrease measured throughput or decrease
	// latency.
	for i := 1; i < len(rows); i++ {
		if rows[i].Choice.StageProcs == nil {
			t.Errorf("row %d infeasible", i)
			continue
		}
		if rows[i].Latency+1e-12 < rows[i-1].Latency {
			t.Errorf("row %d latency %.4f < row %d latency %.4f (constraint tightened)",
				i, rows[i].Latency, i-1, rows[i-1].Latency)
		}
	}
	// The tightest constraint must change the mapping away from pure DP.
	last := rows[len(rows)-1].Choice
	if len(last.StageProcs) == 1 && last.Modules == 1 {
		t.Errorf("tight constraint still chose pure data-parallel: %v", last)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows, cfg)
	if !strings.Contains(buf.String(), "processor allocation") {
		t.Error("diagram missing")
	}
}

// TestCampaignParallelismIsInvisible is the acceptance check for the
// host-parallel campaign driver: the rendered Table 1 and Figure 5 must be
// byte-identical whether the campaign runs on one host thread or several,
// with cold cost-table caches both times.
func TestCampaignParallelismIsInvisible(t *testing.T) {
	render := func(workers int) string {
		mapping.ResetTableMemo() // cold in-process cache for both runs
		t1 := QuickTable1()
		t1.Workers = workers
		f5 := QuickFig5()
		f5.Workers = workers
		var buf bytes.Buffer
		PrintTable1(&buf, Table1(t1), t1.Procs)
		rows, err := Fig5(f5)
		if err != nil {
			t.Fatal(err)
		}
		PrintFig5(&buf, rows, f5)
		return buf.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Errorf("-j1 and -j4 output differ:\n--- j1 ---\n%s\n--- j4 ---\n%s", serial, parallel)
	}
}

// TestTable1WarmDiskCache: with a populated cache directory, a fresh
// process (simulated by clearing the memo) sources every row's cost tables
// from disk and produces the same rows.
func TestTable1WarmDiskCache(t *testing.T) {
	cfg := QuickTable1()
	cfg.CacheDir = t.TempDir()
	mapping.ResetTableMemo()
	cold := Table1(cfg)
	mapping.ResetTableMemo()
	warm := Table1(cfg)
	for i, r := range warm {
		if r.ModelSource != "disk" {
			t.Errorf("row %d (%s %s): tables from %q, want disk", i, r.Name, r.Size, r.ModelSource)
		}
		c := cold[i]
		if r.Best != c.Best || r.TaskThroughput != c.TaskThroughput || r.TaskLatency != c.TaskLatency {
			t.Errorf("row %d differs warm vs cold: %+v vs %+v", i, r, c)
		}
	}
}

func TestFig6QuickShapes(t *testing.T) {
	points := Fig6(QuickFig6())
	if len(points) != 5 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].Procs != 1 || points[0].DPSpeedup < 0.99 || points[0].DPSpeedup > 1.01 {
		t.Errorf("baseline point wrong: %+v", points[0])
	}
	last := points[len(points)-1]
	if last.TaskSpeedup <= last.DPSpeedup {
		t.Errorf("at %d procs task speedup %.2f <= DP %.2f (Figure 6 shape violated)",
			last.Procs, last.TaskSpeedup, last.DPSpeedup)
	}
	// DP efficiency must decay with processors (Amdahl on serial I/O).
	first := points[1] // 2 procs
	effFirst := first.DPSpeedup / float64(first.Procs)
	effLast := last.DPSpeedup / float64(last.Procs)
	if effLast >= effFirst {
		t.Errorf("DP efficiency did not decay: %.3f -> %.3f", effFirst, effLast)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, points)
	if !strings.Contains(buf.String(), "task improves") {
		t.Error("print output malformed")
	}
}
