package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"fxpar/internal/fault"
)

// TestChaosCampaignNonLethalAllSurvive: under a non-lethal profile every
// seed must complete with output identical to the healthy run — the
// reliable-transport invariant, end to end through the campaign driver.
func TestChaosCampaignNonLethalAllSurvive(t *testing.T) {
	cfg := QuickChaos()
	prof, err := fault.ProfileByName("flaky")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Prof = prof
	rep := Chaos(cfg)
	if rep.Survived != rep.Seeds {
		for _, o := range rep.Outcomes {
			if o.Error != "" {
				t.Errorf("seed %d: %s", o.Seed, o.Error)
			}
		}
		t.Fatalf("non-lethal chaos killed runs: survived %d/%d", rep.Survived, rep.Seeds)
	}
	if rep.MinMakespan < rep.Baseline {
		t.Errorf("chaos sped a run up: min %g < baseline %g", rep.MinMakespan, rep.Baseline)
	}
}

// TestChaosCampaignLethalTerminates: a lethal profile yields a mix of
// typed-error failures and verified survivors — and the report is
// byte-identical across worker counts (determinism across -j).
func TestChaosCampaignLethalTerminates(t *testing.T) {
	cfg := QuickChaos() // havoc: every fault class including kills
	cfg.Seeds = 12
	cfg.Workers = 1
	want, err := json.Marshal(Chaos(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	got, err := json.Marshal(Chaos(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("chaos report differs between -j levels:\n%s\nvs\n%s", got, want)
	}
	var rep struct {
		Survived, Failed int
		Outcomes         []struct{ Error string }
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		found := false
		for _, o := range rep.Outcomes {
			if strings.Contains(o.Error, "died at virtual time") {
				found = true
			}
		}
		if !found {
			t.Errorf("failures carry no typed death diagnostics: %s", want)
		}
	}
}
