// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (Section 5): Table 1 (sensor programs:
// data parallel vs best task+data parallel), Figure 5 (latency-optimal
// FFT-Hist mappings under throughput constraints), and Figure 6 (Airshed
// speedup curves).
//
// Absolute throughput goals cannot be carried over from a 1996 Paragon, so
// each goal is expressed as the paper's ratio of (goal / measured
// data-parallel throughput) applied to this simulator's numbers — e.g.
// Table 1's FFT-Hist 256x256 goal of 8 data sets/s against a measured 3.90
// becomes a 2.05x ratio. This preserves the experiment's logic: how much
// extra throughput must task parallelism deliver, and at what latency cost.
package experiments

import (
	"fmt"
	"io"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/apps/radar"
	"fxpar/internal/apps/stereo"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/sweep"
)

// Table1Row is one program of Table 1.
type Table1Row struct {
	Name string
	Size string
	// Paper numbers for reference.
	PaperDPThroughput, PaperDPLatency     float64
	PaperGoal                             float64
	PaperTaskThroughput, PaperTaskLatency float64
	// Measured (simulated) numbers.
	DPThroughput, DPLatency     float64
	GoalRatio                   float64 // paper goal / paper DP throughput
	Goal                        float64 // GoalRatio x predicted DP throughput
	Best                        string  // chosen mapping
	TaskThroughput, TaskLatency float64
	ModelSource                 string // where the cost tables came from: computed | memory | disk
}

// Table1Config controls the workload scale (full = paper sizes; quick =
// reduced sizes for fast benchmarks with the same structure).
type Table1Config struct {
	Procs int
	Sets  int
	Quick bool
	// Cost overrides the machine cost model (zero value: Paragon). The
	// mapper's decisions respond to it — rerunning Table 1 under
	// sim.Workstation() shows different mappings winning.
	Cost sim.CostModel
	// Workers bounds host parallelism for the simulation campaign
	// (0 = GOMAXPROCS). All simulated times are identical for every value.
	Workers int
	// CacheDir, when non-empty, persists the measured cost tables to disk
	// so later runs skip the cost-table simulations entirely.
	CacheDir string
	// Engine selects the machine execution engine for every simulation of
	// the campaign (nil: the machine package default). Engines change only
	// host wall-clock, never a simulated number.
	Engine machine.Engine
	// Faults injects a deterministic chaos plan into the measured runs (nil:
	// no chaos). The cost-table measurements behind the optimizer stay
	// healthy — chaos perturbs the execution of the chosen mappings, not the
	// model they were chosen from — so the memoized tables remain valid and
	// shareable across chaotic and healthy campaigns.
	Faults machine.FaultPlan
	// Replay, when non-nil, answers cost-table cells from the skeleton
	// store by analytic re-cost instead of live simulation (see
	// mapping.ReplayOptions); table values are unchanged where the replay
	// is exact and fall back to live simulation everywhere else.
	Replay *mapping.ReplayOptions
}

// DefaultTable1 runs at the paper's scale: 64 processors.
func DefaultTable1() Table1Config { return Table1Config{Procs: 64, Sets: 8} }

// QuickTable1 is a reduced-size variant for unit tests and benchmarks.
func QuickTable1() Table1Config { return Table1Config{Procs: 16, Sets: 6, Quick: true} }

func (c Table1Config) cost() sim.CostModel {
	if c.Cost.FlopRate == 0 {
		return sim.Paragon()
	}
	return c.Cost
}

func (c Table1Config) buildOptions() mapping.BuildOptions {
	return mapping.BuildOptions{Workers: c.Workers, CacheDir: c.CacheDir, Engine: c.Engine, Replay: c.Replay}
}

// chaosLabel renders a fault plan's identity for skeleton store keys: the
// canonical "seed:profile" label, or "" for a healthy run. A skeleton
// captured under one plan bakes its faults into the op stream, so the label
// must distinguish every plan that could change the DAG.
func chaosLabel(fp machine.FaultPlan) string {
	if fp == nil {
		return ""
	}
	if s, ok := fp.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", fp)
}

// newMachine builds a machine running on the configured engine (the package
// default when eng is nil) with the configured fault plan (nil: none).
func newMachine(n int, cost sim.CostModel, eng machine.Engine, fp machine.FaultPlan) *machine.Machine {
	m := machine.New(n, cost)
	m.SetEngine(eng)
	m.SetFaults(fp)
	return m
}

// Table1 regenerates Table 1: for each sensor program, the data-parallel
// throughput/latency and the latency-optimal task+data parallel mapping
// meeting the paper's (relative) throughput goal.
//
// The four rows are independent simulation campaigns, so they run
// concurrently on up to cfg.Workers host threads; inside each row the cost
// tables are themselves measured in parallel. Every simulated number is
// byte-identical to a Workers=1 run.
func Table1(cfg Table1Config) []Table1Row {
	cost := cfg.cost()
	// FFT-Hist 256x256 and 512x512 (quick: 32/64), Radar 512x10x4
	// (quick: 64x8), Stereo 256x240 (quick: 64x24); paper numbers inline.
	n1, n2 := 256, 512
	if cfg.Quick {
		n1, n2 = 32, 64
	}
	builders := []func() Table1Row{
		func() Table1Row { return ffthistRow("FFT-Hist", n1, cfg, 3.90, .256, 8, 13.3, .293, cost) },
		func() Table1Row { return ffthistRow("FFT-Hist", n2, cfg, 1.99, .502, 2, 2.48, .807, cost) },
		func() Table1Row { return radarRow(cfg, cost) },
		func() Table1Row { return stereoRow(cfg, cost) },
	}
	res := sweep.MapNamed("table1", cfg.Workers, len(builders), func(i int) (Table1Row, error) {
		return builders[i](), nil
	})
	rows := make([]Table1Row, len(res))
	for i, r := range res {
		if r.Err != nil {
			rows[i].Best = "error: " + r.Err.Error()
			continue
		}
		rows[i] = r.Value
	}
	return rows
}

func ffthistRow(name string, n int, cfg Table1Config,
	pDP, pDPLat, pGoal, pTask, pTaskLat float64, cost sim.CostModel) Table1Row {
	appCfg := ffthist.Config{N: n, Sets: cfg.Sets, Bins: 64}
	row := Table1Row{
		Name: name, Size: fmt.Sprintf("%dx%d", n, n),
		PaperDPThroughput: pDP, PaperDPLatency: pDPLat, PaperGoal: pGoal,
		PaperTaskThroughput: pTask, PaperTaskLatency: pTaskLat,
		GoalRatio: pGoal / pDP,
	}
	model, src, err := ffthist.MeasuredModel(cost, appCfg, cfg.Procs, cfg.buildOptions())
	if err != nil {
		row.Best = "model: " + err.Error()
		return row
	}
	row.ModelSource = src.String()
	dpCap := cfg.Procs
	if dpCap > n {
		dpCap = n
	}
	dp := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, ffthist.DataParallel(dpCap))
	row.DPThroughput, row.DPLatency = dp.Stream.Throughput, dp.Stream.Latency
	row.Goal = row.GoalRatio / model.DPT[cfg.Procs]
	choice, err := mapping.Optimize(model, row.Goal)
	if err != nil {
		row.Best = "infeasible: " + err.Error()
		return row
	}
	row.Best = choice.String()
	task := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, ffthist.ChoiceToMapping(choice))
	row.TaskThroughput, row.TaskLatency = task.Stream.Throughput, task.Stream.Latency
	return row
}

func radarRow(cfg Table1Config, cost sim.CostModel) Table1Row {
	appCfg := radar.DefaultConfig()
	appCfg.Sets = cfg.Sets
	if cfg.Quick {
		appCfg = radar.Config{Gates: 64, Rows: 8, Sets: cfg.Sets, Scale: 1.0 / 64, Threshold: 0.05}
	}
	row := Table1Row{
		Name: "Radar", Size: fmt.Sprintf("%dx%d", appCfg.Gates, appCfg.Rows),
		PaperDPThroughput: 23.4, PaperDPLatency: .043, PaperGoal: 50,
		PaperTaskThroughput: 70.2, PaperTaskLatency: .043,
		GoalRatio: 50.0 / 23.4,
	}
	model, src, err := radar.MeasuredModel(cost, appCfg, cfg.Procs, cfg.buildOptions())
	if err != nil {
		row.Best = "model: " + err.Error()
		return row
	}
	row.ModelSource = src.String()
	dpCap := cfg.Procs
	if dpCap > appCfg.Rows {
		dpCap = appCfg.Rows
	}
	dp := radar.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, radar.DataParallel(dpCap))
	row.DPThroughput, row.DPLatency = dp.Stream.Throughput, dp.Stream.Latency
	row.Goal = row.GoalRatio / model.DPT[cfg.Procs]
	choice, err := mapping.Optimize(model, row.Goal)
	if err != nil {
		row.Best = "infeasible: " + err.Error()
		return row
	}
	row.Best = choice.String()
	task := radar.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, radar.ChoiceToMapping(choice))
	row.TaskThroughput, row.TaskLatency = task.Stream.Throughput, task.Stream.Latency
	return row
}

func stereoRow(cfg Table1Config, cost sim.CostModel) Table1Row {
	appCfg := stereo.DefaultConfig()
	appCfg.Sets = cfg.Sets
	if cfg.Quick {
		appCfg = stereo.Config{W: 64, H: 24, Disparities: 8, Window: 2, Sets: cfg.Sets}
	}
	row := Table1Row{
		Name: "Stereo", Size: fmt.Sprintf("%dx%d", appCfg.W, appCfg.H),
		PaperDPThroughput: 3.64, PaperDPLatency: .275, PaperGoal: 10,
		PaperTaskThroughput: 11.67, PaperTaskLatency: .514,
		GoalRatio: 10.0 / 3.64,
	}
	model, src, err := stereo.MeasuredModel(cost, appCfg, cfg.Procs, cfg.buildOptions())
	if err != nil {
		row.Best = "model: " + err.Error()
		return row
	}
	row.ModelSource = src.String()
	dpCap := cfg.Procs
	if dpCap > appCfg.H {
		dpCap = appCfg.H
	}
	dp := stereo.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, stereo.DataParallel(dpCap))
	row.DPThroughput, row.DPLatency = dp.Stream.Throughput, dp.Stream.Latency
	row.Goal = row.GoalRatio / model.DPT[cfg.Procs]
	choice, err := mapping.Optimize(model, row.Goal)
	if err != nil {
		row.Best = "infeasible: " + err.Error()
		return row
	}
	row.Best = choice.String()
	task := stereo.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, stereo.ChoiceToMapping(choice))
	row.TaskThroughput, row.TaskLatency = task.Stream.Throughput, task.Stream.Latency
	return row
}

// PrintTable1 writes the rows in the layout of the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row, procs int) {
	fmt.Fprintf(w, "Table 1: Performance results on %d simulated nodes (paper: 64-node Intel Paragon)\n\n", procs)
	fmt.Fprintf(w, "%-10s %-9s | %-21s | %-9s | %-38s | %s\n",
		"Program", "Size", "Data Parallel", "Goal", "Best Task-Data Parallel", "Paper (DP thr/lat -> task thr/lat @goal)")
	fmt.Fprintf(w, "%-10s %-9s | %10s %10s | %9s | %10s %10s %16s | %s\n",
		"", "", "thr(/s)", "lat(s)", "thr(/s)", "thr(/s)", "lat(s)", "mapping", "")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-9s | %10.3f %10.4f | %9.3f | %10.3f %10.4f %16s | %.2f/%.3f -> %.2f/%.3f @%.0f\n",
			r.Name, r.Size, r.DPThroughput, r.DPLatency, r.Goal,
			r.TaskThroughput, r.TaskLatency, r.Best,
			r.PaperDPThroughput, r.PaperDPLatency,
			r.PaperTaskThroughput, r.PaperTaskLatency, r.PaperGoal)
	}
}
