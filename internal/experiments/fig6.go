package experiments

import (
	"fmt"
	"io"
	"strings"

	"fxpar/internal/apps/airshed"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
)

// Fig6Point is one point of Figure 6's speedup plot.
type Fig6Point struct {
	Procs           int
	DPSpeedup       float64
	TaskSpeedup     float64 // 0 when the task variant needs more processors
	DPMakespan      float64
	TaskMakespan    float64
	TaskImprovement float64 // (DP - Task) / DP at this processor count
	// Err carries a chaos-induced failure (a processor-death cascade under a
	// lethal fault plan) as text; the point's speedups are then zero.
	Err string
}

// Fig6Config controls scale.
type Fig6Config struct {
	ProcCounts []int
	App        airshed.Config
	// Workers bounds host parallelism for the sweep (0 = GOMAXPROCS).
	Workers int
	// Engine selects the machine execution engine (nil: package default);
	// it changes only host wall-clock, never a simulated number.
	Engine machine.Engine
	// Faults injects a deterministic chaos plan into every point's runs
	// (nil: none). Under a lethal profile a point may fail; its Err field
	// carries the typed error text and its speedups stay zero.
	Faults machine.FaultPlan
	// Replay, when non-nil, memoizes every point's whole-run skeleton in
	// the store: a repeated sweep (same config, same chaos plan) answers
	// each point by one analytic DAG evaluation — bitwise equal to the live
	// makespan — instead of re-simulating. With the store's directory set
	// the memoization spans processes.
	Replay *mapping.ReplayOptions
}

// DefaultFig6 matches the paper's sweep up to 64 processors.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		ProcCounts: []int{1, 2, 4, 8, 16, 32, 64},
		App:        airshed.DefaultConfig(),
	}
}

// QuickFig6 is a reduced variant.
func QuickFig6() Fig6Config {
	return Fig6Config{
		ProcCounts: []int{1, 2, 4, 8, 16},
		App: airshed.Config{
			Layers: 3, Grid: 256, Species: 8,
			Hours: 2, Steps: 2,
			ChemFlops: 220, TransFlops: 25, PreFlops: 10,
		},
	}
}

// Fig6 regenerates Figure 6: Airshed speedup over the 1-processor time for
// the data-parallel and the task+data-parallel (separated I/O) versions.
// Every point is an independent simulation, so the whole sweep (baseline
// included) fans out over cfg.Workers host threads.
func Fig6(cfg Fig6Config) []Fig6Point {
	cost := sim.Paragon()
	// makespan answers one point's run replay-first when cfg.Replay is set
	// (whole-run makespans ARE skeleton makespans, so the replay is bitwise
	// exact) and by live simulation otherwise.
	makespan := func(p int, variant airshed.Variant, label string) float64 {
		key := skeleton.StoreKey{
			App:     "airshed",
			Params:  fmt.Sprintf("%+v", cfg.App),
			Mapping: label,
			P:       p,
			Chaos:   chaosLabel(cfg.Faults),
		}
		if v, ok := cfg.Replay.Eval(key, cost, func(base sim.CostModel) (*skeleton.Skeleton, float64, error) {
			m := newMachine(p, base, cfg.Engine, cfg.Faults)
			sink := skeleton.NewSink(base, chaosLabel(cfg.Faults))
			m.SetTracer(sink)
			res := airshed.Run(m, cfg.App, variant)
			sk, err := sink.Skeleton()
			return sk, res.Makespan, err
		}); ok {
			return v
		}
		return airshed.Run(newMachine(p, cost, cfg.Engine, cfg.Faults), cfg.App, variant).Makespan
	}
	// Job 0 is the 1-processor baseline; job i+1 simulates point i (both
	// program versions). Speedups are filled in after the barrier because
	// they all divide by the baseline.
	res := sweep.MapNamed("fig6", cfg.Workers, len(cfg.ProcCounts)+1, func(i int) (Fig6Point, error) {
		if i == 0 {
			return Fig6Point{Procs: 1, DPMakespan: makespan(1, airshed.DataParallel, "dp")}, nil
		}
		p := cfg.ProcCounts[i-1]
		pt := Fig6Point{Procs: p}
		pt.DPMakespan = makespan(p, airshed.DataParallel, "dp")
		if p >= 4 {
			pt.TaskMakespan = makespan(p, airshed.TaskIO, "taskio")
		}
		return pt, nil
	})
	t1 := res[0].Value.DPMakespan
	if res[0].Err != nil {
		t1 = 0 // chaotic baseline death: leave every speedup zero
	}
	points := make([]Fig6Point, 0, len(cfg.ProcCounts))
	for i, r := range res[1:] {
		pt := r.Value
		if r.Err != nil {
			pt = Fig6Point{Procs: cfg.ProcCounts[i], Err: r.Err.Error()}
		}
		if t1 > 0 && pt.DPMakespan > 0 {
			pt.DPSpeedup = t1 / pt.DPMakespan
		}
		if t1 > 0 && pt.TaskMakespan > 0 {
			pt.TaskSpeedup = t1 / pt.TaskMakespan
			pt.TaskImprovement = (pt.DPMakespan - pt.TaskMakespan) / pt.DPMakespan
		}
		points = append(points, pt)
	}
	return points
}

// PrintFig6 writes the speedup table and an ASCII plot of both curves.
func PrintFig6(w io.Writer, points []Fig6Point) {
	fmt.Fprintf(w, "Figure 6: Speedup of Airshed application (simulated)\n\n")
	fmt.Fprintf(w, "%6s %12s %12s %14s\n", "procs", "DP speedup", "task speedup", "task improves")
	maxSpeedup := 1.0
	for _, pt := range points {
		if pt.TaskSpeedup > maxSpeedup {
			maxSpeedup = pt.TaskSpeedup
		}
		if pt.DPSpeedup > maxSpeedup {
			maxSpeedup = pt.DPSpeedup
		}
	}
	for _, pt := range points {
		if pt.Err != "" {
			fmt.Fprintf(w, "%6d failed: %s\n", pt.Procs, pt.Err)
			continue
		}
		task := "-"
		imp := "-"
		if pt.TaskSpeedup > 0 {
			task = fmt.Sprintf("%.2f", pt.TaskSpeedup)
			imp = fmt.Sprintf("%.0f%%", pt.TaskImprovement*100)
		}
		fmt.Fprintf(w, "%6d %12.2f %12s %14s\n", pt.Procs, pt.DPSpeedup, task, imp)
	}
	fmt.Fprintln(w, "\n  speedup (D = data parallel, T = task+data parallel)")
	const width = 56
	for _, pt := range points {
		dp := int(pt.DPSpeedup / maxSpeedup * width)
		fmt.Fprintf(w, "  %4dp D|%s\n", pt.Procs, strings.Repeat("=", dp))
		if pt.TaskSpeedup > 0 {
			tk := int(pt.TaskSpeedup / maxSpeedup * width)
			fmt.Fprintf(w, "       T|%s\n", strings.Repeat("=", tk))
		}
	}
}
