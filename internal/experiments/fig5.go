package experiments

import (
	"fmt"
	"io"
	"strings"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
	"fxpar/internal/sweep"
)

// Fig5Row is one mapping of Figure 5: the latency-optimal mapping of the
// 512x512 FFT-Hist program under one throughput constraint.
type Fig5Row struct {
	Constraint string  // human-readable constraint
	Goal       float64 // sets/s (0 = none)
	Choice     mapping.Choice
	Mapping    ffthist.Mapping
	Throughput float64 // measured
	Latency    float64 // measured
	// Pipeline is the best single-module pipeline meeting the same goal
	// (the family shown in the paper's middle diagram), with its measured
	// numbers — zero value if no pipeline meets the goal.
	Pipeline           mapping.Choice
	PipelineThroughput float64
	PipelineLatency    float64
}

// Fig5Config controls scale.
type Fig5Config struct {
	Procs int
	N     int
	Sets  int
	// Workers bounds host parallelism (0 = GOMAXPROCS); CacheDir persists
	// the measured cost tables; Engine selects the machine execution engine
	// (nil: package default). None of them changes any simulated number.
	Workers  int
	CacheDir string
	Engine   machine.Engine
	// Faults injects a deterministic chaos plan into the measured mapping
	// runs (nil: none); the cost tables behind the optimizer stay healthy.
	Faults machine.FaultPlan
	// Replay, when non-nil, answers cost-table cells from the skeleton
	// store by analytic re-cost instead of live simulation (see
	// mapping.ReplayOptions).
	Replay *mapping.ReplayOptions
}

// DefaultFig5 matches the paper: 512x512 FFT-Hist on 64 processors.
func DefaultFig5() Fig5Config { return Fig5Config{Procs: 64, N: 512, Sets: 8} }

// QuickFig5 is a reduced variant.
func QuickFig5() Fig5Config { return Fig5Config{Procs: 16, N: 64, Sets: 6} }

// Fig5 regenerates Figure 5: the best mapping under no constraint, and
// under throughput constraints matching the paper's ratios (the paper used
// goals of 2 and 4 sets/s against a 1.99 sets/s data-parallel baseline).
//
// The cost tables come from memoized stage simulations (see
// mapping.BuildTables); the three constraint cases then run concurrently.
// The returned error is a table-construction failure — individual
// infeasible constraints are reported in their row instead.
func Fig5(cfg Fig5Config) ([]Fig5Row, error) {
	cost := sim.Paragon()
	appCfg := ffthist.Config{N: cfg.N, Sets: cfg.Sets, Bins: 64}
	opt := mapping.BuildOptions{Workers: cfg.Workers, CacheDir: cfg.CacheDir, Engine: cfg.Engine, Replay: cfg.Replay}
	model, _, err := ffthist.MeasuredModel(cost, appCfg, cfg.Procs, opt)
	if err != nil {
		return nil, err
	}
	dpThroughput := 1 / model.DPT[cfg.Procs]

	cases := []struct {
		label string
		goal  float64
	}{
		{"none (minimize latency)", 0},
		{"throughput >= 1.005x DP", 1.005 * dpThroughput}, // paper: goal 2 vs DP 1.99
		{"throughput >= 2.01x DP", 2.01 * dpThroughput},   // paper: goal 4 vs DP 1.99
	}
	res := sweep.MapNamed("fig5", cfg.Workers, len(cases), func(i int) (Fig5Row, error) {
		c := cases[i]
		row := Fig5Row{Constraint: c.label, Goal: c.goal}
		choice, err := mapping.Optimize(model, c.goal)
		if err != nil {
			row.Constraint += " [infeasible]"
			return row, nil
		}
		row.Choice = choice
		row.Mapping = ffthist.ChoiceToMapping(choice)
		r := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, row.Mapping)
		row.Throughput = r.Stream.Throughput
		row.Latency = r.Stream.Latency
		if pc, err := mapping.OptimizePipeline(model, c.goal); err == nil {
			row.Pipeline = pc
			pres := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, cfg.Faults), appCfg, ffthist.ChoiceToMapping(pc))
			row.PipelineThroughput = pres.Stream.Throughput
			row.PipelineLatency = pres.Stream.Latency
		}
		return row, nil
	})
	rows := make([]Fig5Row, len(res))
	for i, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
		rows[i] = r.Value
	}
	return rows, nil
}

// PrintFig5 writes the mappings with a processor-allocation diagram in the
// spirit of Figure 5.
func PrintFig5(w io.Writer, rows []Fig5Row, cfg Fig5Config) {
	fmt.Fprintf(w, "Figure 5: Mappings of a %dx%d FFT-Hist program on %d simulated nodes\n\n",
		cfg.N, cfg.N, cfg.Procs)
	for _, r := range rows {
		fmt.Fprintf(w, "Constraint: %s\n", r.Constraint)
		if r.Choice.StageProcs == nil {
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "  chosen mapping: %s\n", r.Choice)
		fmt.Fprintf(w, "  measured: %.3f sets/s, latency %.4f s\n", r.Throughput, r.Latency)
		fmt.Fprintf(w, "  processor allocation:\n")
		stageNames := []string{"colffts", "rowffts", "hist"}
		for m := 0; m < r.Choice.Modules; m++ {
			// Wide modules (the ones absorbing P mod r leftover processors)
			// have their own stage widths.
			procs := r.Choice.ModuleStageProcs(m)
			if len(procs) == 1 {
				fmt.Fprintf(w, "    module %d: [%s] all stages x %d procs\n",
					m+1, strings.Repeat("#", min(procs[0], 64)), procs[0])
				continue
			}
			for s, q := range procs {
				fmt.Fprintf(w, "    module %d %-8s: [%s] %d procs\n",
					m+1, stageNames[s], strings.Repeat("#", min(q, 64)), q)
			}
		}
		if r.Pipeline.StageProcs != nil {
			fmt.Fprintf(w, "  best single pipeline for comparison: %s -> %.3f sets/s, latency %.4f s\n",
				r.Pipeline, r.PipelineThroughput, r.PipelineLatency)
		}
		fmt.Fprintln(w)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
