package experiments

import (
	"fmt"
	"io"
	"strings"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/sim"
)

// Fig5Row is one mapping of Figure 5: the latency-optimal mapping of the
// 512x512 FFT-Hist program under one throughput constraint.
type Fig5Row struct {
	Constraint string  // human-readable constraint
	Goal       float64 // sets/s (0 = none)
	Choice     mapping.Choice
	Mapping    ffthist.Mapping
	Throughput float64 // measured
	Latency    float64 // measured
	// Pipeline is the best single-module pipeline meeting the same goal
	// (the family shown in the paper's middle diagram), with its measured
	// numbers — zero value if no pipeline meets the goal.
	Pipeline           mapping.Choice
	PipelineThroughput float64
	PipelineLatency    float64
}

// Fig5Config controls scale.
type Fig5Config struct {
	Procs int
	N     int
	Sets  int
}

// DefaultFig5 matches the paper: 512x512 FFT-Hist on 64 processors.
func DefaultFig5() Fig5Config { return Fig5Config{Procs: 64, N: 512, Sets: 8} }

// QuickFig5 is a reduced variant.
func QuickFig5() Fig5Config { return Fig5Config{Procs: 16, N: 64, Sets: 6} }

// Fig5 regenerates Figure 5: the best mapping under no constraint, and
// under throughput constraints matching the paper's ratios (the paper used
// goals of 2 and 4 sets/s against a 1.99 sets/s data-parallel baseline).
func Fig5(cfg Fig5Config) []Fig5Row {
	cost := sim.Paragon()
	appCfg := ffthist.Config{N: cfg.N, Sets: cfg.Sets, Bins: 64}
	model := ffthist.BuildModel(cost, appCfg, cfg.Procs)
	dpThroughput := 1 / model.DPT[cfg.Procs]

	cases := []struct {
		label string
		goal  float64
	}{
		{"none (minimize latency)", 0},
		{"throughput >= 1.005x DP", 1.005 * dpThroughput}, // paper: goal 2 vs DP 1.99
		{"throughput >= 2.01x DP", 2.01 * dpThroughput},   // paper: goal 4 vs DP 1.99
	}
	rows := make([]Fig5Row, 0, len(cases))
	for _, c := range cases {
		row := Fig5Row{Constraint: c.label, Goal: c.goal}
		choice, err := mapping.Optimize(model, c.goal)
		if err != nil {
			row.Constraint += " [infeasible]"
			rows = append(rows, row)
			continue
		}
		row.Choice = choice
		row.Mapping = ffthist.ChoiceToMapping(choice)
		res := ffthist.Run(machine.New(cfg.Procs, cost), appCfg, row.Mapping)
		row.Throughput = res.Stream.Throughput
		row.Latency = res.Stream.Latency
		if pc, err := mapping.OptimizePipeline(model, c.goal); err == nil {
			row.Pipeline = pc
			pres := ffthist.Run(machine.New(cfg.Procs, cost), appCfg, ffthist.ChoiceToMapping(pc))
			row.PipelineThroughput = pres.Stream.Throughput
			row.PipelineLatency = pres.Stream.Latency
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintFig5 writes the mappings with a processor-allocation diagram in the
// spirit of Figure 5.
func PrintFig5(w io.Writer, rows []Fig5Row, cfg Fig5Config) {
	fmt.Fprintf(w, "Figure 5: Mappings of a %dx%d FFT-Hist program on %d simulated nodes\n\n",
		cfg.N, cfg.N, cfg.Procs)
	for _, r := range rows {
		fmt.Fprintf(w, "Constraint: %s\n", r.Constraint)
		if r.Choice.StageProcs == nil {
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "  chosen mapping: %s\n", r.Choice)
		fmt.Fprintf(w, "  measured: %.3f sets/s, latency %.4f s\n", r.Throughput, r.Latency)
		fmt.Fprintf(w, "  processor allocation:\n")
		stageNames := []string{"colffts", "rowffts", "hist"}
		for m := 0; m < r.Choice.Modules; m++ {
			if len(r.Choice.StageProcs) == 1 {
				fmt.Fprintf(w, "    module %d: [%s] all stages x %d procs\n",
					m+1, strings.Repeat("#", min(r.Choice.StageProcs[0], 64)), r.Choice.StageProcs[0])
				continue
			}
			for s, q := range r.Choice.StageProcs {
				fmt.Fprintf(w, "    module %d %-8s: [%s] %d procs\n",
					m+1, stageNames[s], strings.Repeat("#", min(q, 64)), q)
			}
		}
		if r.Pipeline.StageProcs != nil {
			fmt.Fprintf(w, "  best single pipeline for comparison: %s -> %.3f sets/s, latency %.4f s\n",
				r.Pipeline, r.PipelineThroughput, r.PipelineLatency)
		}
		fmt.Fprintln(w)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
