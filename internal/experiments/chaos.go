package experiments

import (
	"fmt"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/fault"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/sweep"
)

// ChaosConfig scopes a chaos campaign: one FFT-Hist pipeline scenario fanned
// across Seeds decorrelated fault seeds (derived from Base; see fault.Seeds),
// each run verified bin-for-bin against the healthy run's histograms. The
// whole report is deterministic — a pure function of (config minus
// Workers/Engine) — so it doubles as a committable benchmark artifact.
type ChaosConfig struct {
	Procs int
	N     int
	Sets  int
	Seeds int
	Base  uint64
	Prof  fault.Profile
	// Workers bounds host parallelism (0 = GOMAXPROCS); Engine selects the
	// execution engine (nil: package default). Neither changes the report.
	Workers int
	Engine  machine.Engine
}

// DefaultChaos exercises every fault class (havoc: delays, drops, dups,
// slowdowns, and kills) on a 16-processor pipeline across 16 seeds.
func DefaultChaos() ChaosConfig {
	prof, _ := fault.ProfileByName("havoc")
	return ChaosConfig{Procs: 16, N: 64, Sets: 6, Seeds: 16, Base: 1, Prof: prof}
}

// QuickChaos is a reduced variant.
func QuickChaos() ChaosConfig {
	cfg := DefaultChaos()
	cfg.Procs, cfg.N, cfg.Seeds = 8, 32, 8
	return cfg
}

// chaosMapping splits p processors into the 3-stage pipeline the campaign
// runs: cross-group sends on every data set, so message faults bite.
func chaosMapping(p int) ffthist.Mapping {
	pc := p / 4
	if pc < 1 {
		pc = 1
	}
	ph := pc
	return ffthist.Pipeline(pc, p-pc-ph, ph)
}

// Chaos runs the campaign: a healthy reference run first (its histograms are
// the correctness oracle and its makespan the degradation baseline), then
// one run per seed under cfg.Prof. Every chaotic run either matches the
// reference output exactly — non-lethal faults perturb timing, never results
// — or fails with a typed error (a processor-death cascade); runs never
// hang, so the campaign always terminates with a full report.
func Chaos(cfg ChaosConfig) sweep.ChaosReport {
	cost := sim.Paragon()
	appCfg := ffthist.Config{N: cfg.N, Sets: cfg.Sets, Bins: 64}
	mp := chaosMapping(cfg.Procs)
	healthy := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, nil), appCfg, mp)
	name := fmt.Sprintf("chaos-%s", cfg.Prof.Name)
	return sweep.ChaosCampaign(name, cfg.Workers, cfg.Prof, cfg.Base, cfg.Seeds,
		healthy.Makespan, func(pl *fault.Plan) (float64, error) {
			res := ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, pl.Machine()), appCfg, mp)
			if err := histsMatch(healthy.Hists, res.Hists); err != nil {
				return 0, err
			}
			return res.Makespan, nil
		})
}

// histsMatch verifies a chaotic run's histograms bin-for-bin against the
// healthy reference.
func histsMatch(want, got map[int][]int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("chaos: run produced %d histograms, healthy run %d", len(got), len(want))
	}
	for set, w := range want {
		g, ok := got[set]
		if !ok {
			return fmt.Errorf("chaos: data set %d missing from chaotic run", set)
		}
		if len(g) != len(w) {
			return fmt.Errorf("chaos: data set %d has %d bins, want %d", set, len(g), len(w))
		}
		for b := range w {
			if g[b] != w[b] {
				return fmt.Errorf("chaos: data set %d bin %d = %d, want %d (chaos corrupted output)", set, b, g[b], w[b])
			}
		}
	}
	return nil
}
