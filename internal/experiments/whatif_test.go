package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fxpar/internal/machine"
)

// TestWhatIfCampaignDeterministic: the report's virtual-time content must be
// identical across worker counts and engines — only the Host* throughput
// fields may differ. This is what makes BENCH_whatif.json committable.
func TestWhatIfCampaignDeterministic(t *testing.T) {
	run := func(workers int, eng machine.Engine) *WhatIfBench {
		cfg := QuickWhatIf()
		cfg.Workers, cfg.Engine = workers, eng
		rep, err := WhatIf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Zero the host-dependent fields for comparison.
		rep.HostRecostsPerSecond, rep.HostSimsPerSecond, rep.HostSeconds = 0, 0, 0
		return rep
	}
	a := run(1, nil)
	b := run(4, machine.Coop(2))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("what-if campaign not deterministic across -j/engine:\n%+v\nvs\n%+v", a, b)
	}
}

// TestWhatIfCampaignInvariants checks the report's semantic content: the
// determinism flag holds, the identity grid points reproduce the baseline,
// the cross-checks agree with full simulation, and the JSON round-trips.
func TestWhatIfCampaignInvariants(t *testing.T) {
	cfg := QuickWhatIf()
	rep, err := WhatIf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdentityExact {
		t.Error("re-cost at recorded parameters does not reproduce the recorded makespan")
	}
	if rep.SkeletonOps == 0 || rep.SkeletonKey == "" || !strings.HasPrefix(rep.SkeletonKey, "fxskel-") {
		t.Errorf("skeleton identity missing: ops=%d key=%q", rep.SkeletonOps, rep.SkeletonKey)
	}
	if len(rep.Grid) != 3*len(cfg.Scales) {
		t.Fatalf("grid has %d points, want %d", len(rep.Grid), 3*len(cfg.Scales))
	}
	for _, g := range rep.Grid {
		if g.Scale == 1 && g.Makespan != rep.Baseline {
			t.Errorf("%s identity grid point %v != baseline %v", g.Param, g.Makespan, rep.Baseline)
		}
	}
	for _, c := range rep.Checks {
		if c.RelErr > 1e-9 {
			t.Errorf("%s x%g: re-cost %v vs sim %v (rel err %g)", c.Param, c.Scale, c.Recost, c.Sim, c.RelErr)
		}
	}
	if len(rep.Spans) == 0 || rep.Spans[0].Gains[len(rep.Spans[0].Gains)-1] <= 0 {
		t.Errorf("ranked spans empty or top gain non-positive: %+v", rep.Spans)
	}

	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back WhatIfBench
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, rep) {
		t.Error("report does not round-trip through JSON")
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	for _, want := range []string{"ranked virtual span speedups", "re-cost grid", "cross-checks", "reproduces the makespan exactly"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}
