package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/mapping"
	"fxpar/internal/skeleton"
)

// TestReplayCampaign runs the quick campaign end to end and pins the
// guarantees the committed BENCH_replay.json artifact rests on: exact
// identity replays (healthy and chaotic), chaos key isolation, zero
// bitwise cross-check mismatches, and a full grid.
func TestReplayCampaign(t *testing.T) {
	cfg := QuickReplay()
	cfg.CheckEvery = 1 // cross-check EVERY grid job in the test
	rep, err := Replay(cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.IdentityExact {
		t.Error("healthy identity replay not exact")
	}
	if !rep.ChaosIdentityExact {
		t.Error("chaotic identity replay not exact")
	}
	if !rep.ChaosDistinctKey {
		t.Error("chaotic capture shares the healthy store key")
	}
	if want := len(replayParams) * len(cfg.Scales); len(rep.Grid) != want {
		t.Errorf("grid has %d points, want %d", len(rep.Grid), want)
	}
	if len(rep.Checks) != len(rep.Grid) {
		t.Errorf("checked %d of %d grid jobs, want all", len(rep.Checks), len(rep.Grid))
	}
	if rep.Mismatches != 0 {
		for _, c := range rep.Checks {
			if !c.Exact {
				t.Errorf("cross-check mismatch: %s x%g replay %v sim %v", c.Param, c.Scale, c.Recost, c.Sim)
			}
		}
	}
	if len(rep.Search) != len(cfg.SearchScales) {
		t.Errorf("search has %d rows, want %d", len(rep.Search), len(cfg.SearchScales))
	}
	for _, s := range rep.Search {
		if s.Best == "" || s.Latency <= 0 {
			t.Errorf("search row %+v incomplete", s)
		}
	}
	if rep.StoreCaptures < 2 {
		t.Errorf("store captured %d skeletons, want >= 2 (healthy + chaotic)", rep.StoreCaptures)
	}
}

// TestReplayCampaignDeterministic: the deterministic report fields are a
// pure function of the config — identical across engines and worker counts.
// (Store counters are excluded: the process-global table memo makes them
// depend on what ran earlier in the same process, by design.)
func TestReplayCampaignDeterministic(t *testing.T) {
	cfg := QuickReplay()
	cfg.Workers = 1
	a, err := Replay(cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	coop, err := machine.EngineByName("coop")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers, cfg.Engine = 4, coop
	b, err := Replay(cfg)
	if err != nil {
		t.Fatalf("Replay (coop, -j4): %v", err)
	}
	if a.Baseline != b.Baseline || a.SkeletonKey != b.SkeletonKey {
		t.Errorf("capture not deterministic: %v/%s vs %v/%s", a.Baseline, a.SkeletonKey, b.Baseline, b.SkeletonKey)
	}
	if a.ChaosBaseline != b.ChaosBaseline {
		t.Errorf("chaotic capture not deterministic: %v vs %v", a.ChaosBaseline, b.ChaosBaseline)
	}
	if !reflect.DeepEqual(a.Grid, b.Grid) {
		t.Error("replay grid differs across engine/worker settings")
	}
	if !reflect.DeepEqual(a.Checks, b.Checks) {
		t.Error("cross-checks differ across engine/worker settings")
	}
	if !reflect.DeepEqual(a.Search, b.Search) {
		t.Error("mapping search differs across engine/worker settings")
	}
}

// TestReplayStoreOnDisk: a campaign with StoreDir set persists its captures
// so a second campaign (fresh store over the same directory) replays them
// from disk and captures nothing new.
func TestReplayStoreOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "skelcache")
	cfg := QuickReplay()
	cfg.StoreDir = dir
	cfg.SearchScales = nil // keep this test to the sweep itself
	cold, err := Replay(cfg)
	if err != nil {
		t.Fatalf("cold campaign: %v", err)
	}
	if cold.StoreCaptures == 0 {
		t.Fatal("cold campaign captured nothing")
	}
	warm, err := Replay(cfg)
	if err != nil {
		t.Fatalf("warm campaign: %v", err)
	}
	if warm.StoreCaptures != 0 {
		t.Errorf("warm campaign re-captured %d skeletons, want 0", warm.StoreCaptures)
	}
	if warm.StoreDiskHits == 0 {
		t.Error("warm campaign never hit the on-disk store")
	}
	if !reflect.DeepEqual(cold.Grid, warm.Grid) {
		t.Error("disk-replayed grid differs from the captured one")
	}
}

// TestFig6ReplayMatchesLive: the whole-run replay path of Figure 6 produces
// byte-identical points to the live simulation sweep, cold and warm.
func TestFig6ReplayMatchesLive(t *testing.T) {
	cfg := QuickFig6()
	cfg.ProcCounts = []int{1, 2, 4, 8}
	live := Fig6(cfg)

	r := &mapping.ReplayOptions{Store: skeleton.NewStore("")}
	cfg.Replay = r
	cold := Fig6(cfg) // populates the store (captures are the live runs)
	warm := Fig6(cfg) // answered entirely by analytic replay
	if !reflect.DeepEqual(live, cold) {
		t.Errorf("cold replay sweep differs from live:\nlive %+v\ncold %+v", live, cold)
	}
	if !reflect.DeepEqual(live, warm) {
		t.Errorf("warm replay sweep differs from live:\nlive %+v\nwarm %+v", live, warm)
	}
}
