package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
	"fxpar/internal/skeleton"
	"fxpar/internal/sweep"
	"fxpar/internal/trace"
)

// WhatIfConfig scopes a skeleton-backed what-if campaign: one FFT-Hist
// pipeline run is captured as a communication skeleton, then re-costed
// analytically across a grid of machine-parameter scalings and per-span
// virtual speedups. A handful of grid points are cross-checked against full
// re-simulations. Everything except the host-time throughput fields is a
// pure function of (config minus Workers/Engine), so the report is a
// committable benchmark artifact.
type WhatIfConfig struct {
	Procs int
	N     int
	Sets  int
	// Factors are the virtual span-speedup factors of the what-if table.
	Factors []float64
	// Scales are the alpha/beta/flop-rate multipliers of the re-cost grid.
	Scales []float64
	// Workers bounds host parallelism (0 = GOMAXPROCS); Engine selects the
	// execution engine (nil: package default). Neither changes the report.
	Workers int
	Engine  machine.Engine
}

// DefaultWhatIf captures a 16-processor three-stage pipeline.
func DefaultWhatIf() WhatIfConfig {
	return WhatIfConfig{
		Procs:   16,
		N:       64,
		Sets:    6,
		Factors: []float64{1.25, 1.5, 2, 4},
		Scales:  []float64{0.25, 0.5, 1, 2, 4},
	}
}

// QuickWhatIf is a reduced variant.
func QuickWhatIf() WhatIfConfig {
	cfg := DefaultWhatIf()
	cfg.Procs, cfg.N, cfg.Sets = 8, 32, 4
	return cfg
}

// WhatIfGridPoint is one analytic re-cost under a scaled machine parameter.
type WhatIfGridPoint struct {
	Param    string // "alpha", "beta", "floprate"
	Scale    float64
	Makespan float64
}

// WhatIfCheck is one grid point cross-checked against a full re-simulation
// at the same parameters. RelErr is deterministic: both sides are virtual
// times.
type WhatIfCheck struct {
	Param  string
	Scale  float64
	Recost float64
	Sim    float64
	RelErr float64
}

// WhatIfSpanRow mirrors skeleton.WhatIfRow for the JSON artifact.
type WhatIfSpanRow struct {
	Label string
	Local float64
	Gains []float64
}

// WhatIfBench is the campaign report. All fields except the Host* block are
// deterministic.
type WhatIfBench struct {
	Name        string
	Procs       int
	N           int
	Sets        int
	SkeletonKey string
	SkeletonOps int
	// Baseline is the recorded makespan; IdentityExact records whether the
	// analytic re-cost at recorded parameters reproduced it bitwise (it
	// must — a false here is a determinism regression).
	Baseline      float64
	IdentityExact bool
	Factors       []float64
	Spans         []WhatIfSpanRow
	Grid          []WhatIfGridPoint
	Checks        []WhatIfCheck
	// Host-time throughput of the analytic re-coster vs the full simulator,
	// the payoff measurement of skeleton capture. Host-dependent: excluded
	// from exact-diff comparisons via -skip.
	HostRecostsPerSecond float64
	HostSimsPerSecond    float64
	HostSeconds          float64
}

// whatIfMapping reuses the chaos campaign's pipeline split so the two
// artifacts describe the same scenario shape.
func whatIfMapping(p int) ffthist.Mapping { return chaosMapping(p) }

// scaledCost returns the campaign cost model with one parameter scaled.
func scaledCost(param string, scale float64) sim.CostModel {
	c := sim.Paragon()
	switch param {
	case "alpha":
		c.Alpha *= scale
	case "beta":
		c.Beta *= scale
	case "floprate":
		c.FlopRate *= scale
	default:
		panic("experiments: unknown what-if parameter " + param)
	}
	return c
}

var whatIfParams = []string{"alpha", "beta", "floprate"}

// WhatIf runs the campaign: capture once, re-cost everywhere.
func WhatIf(cfg WhatIfConfig) (*WhatIfBench, error) {
	cost := sim.Paragon()
	appCfg := ffthist.Config{N: cfg.N, Sets: cfg.Sets, Bins: 64}
	mp := whatIfMapping(cfg.Procs)

	// Capture: one traced run, folded into a skeleton.
	col := &trace.Collector{}
	m := newMachine(cfg.Procs, cost, cfg.Engine, nil)
	m.SetTracer(col)
	ffthist.Run(m, appCfg, mp)
	sk, err := skeleton.FromEvents(cost, col.Events())
	if err != nil {
		return nil, err
	}
	key, err := sk.Key()
	if err != nil {
		return nil, err
	}

	rep := &WhatIfBench{
		Name: "whatif-ffthist", Procs: cfg.Procs, N: cfg.N, Sets: cfg.Sets,
		SkeletonKey: key, SkeletonOps: sk.Ops(), Baseline: sk.Makespan,
		Factors: append([]float64(nil), cfg.Factors...),
	}

	// Determinism check: re-cost at recorded parameters.
	identity, err := sk.Recost(skeleton.Params{})
	if err != nil {
		return nil, err
	}
	rep.IdentityExact = identity == sk.Makespan

	// Ranked what-if table.
	wi, err := sk.WhatIf(cfg.Factors)
	if err != nil {
		return nil, err
	}
	for _, row := range wi.Rows {
		rep.Spans = append(rep.Spans, WhatIfSpanRow{Label: row.Label, Local: row.Local,
			Gains: append([]float64(nil), row.Gains...)})
	}

	// Re-cost grid, fanned across host workers: param-major, scale-minor —
	// a deterministic order, so the artifact is stable for every -j.
	type cell struct {
		param string
		scale float64
	}
	var cells []cell
	for _, p := range whatIfParams {
		for _, s := range cfg.Scales {
			cells = append(cells, cell{p, s})
		}
	}
	grid := sweep.MapNamed("whatif-grid", cfg.Workers, len(cells), func(i int) (WhatIfGridPoint, error) {
		c := scaledCost(cells[i].param, cells[i].scale)
		mk, err := sk.Recost(skeleton.Params{Cost: &c})
		if err != nil {
			return WhatIfGridPoint{}, err
		}
		return WhatIfGridPoint{Param: cells[i].param, Scale: cells[i].scale, Makespan: mk}, nil
	})
	for _, r := range grid {
		if r.Err != nil {
			return nil, r.Err
		}
		rep.Grid = append(rep.Grid, r.Value)
	}

	// Cross-checks: one full re-simulation per parameter at the largest
	// non-identity scale. RelErr is rounding-order noise for healthy runs.
	checkScale := cfg.Scales[len(cfg.Scales)-1]
	for _, p := range whatIfParams {
		c := scaledCost(p, checkScale)
		re, err := sk.Recost(skeleton.Params{Cost: &c})
		if err != nil {
			return nil, err
		}
		res := ffthist.Run(newMachine(cfg.Procs, c, cfg.Engine, nil), appCfg, mp)
		simMk := res.Stats.MakespanTime()
		relErr := 0.0
		if re != simMk {
			relErr = math.Abs(re-simMk) / math.Max(math.Abs(re), math.Abs(simMk))
		}
		rep.Checks = append(rep.Checks, WhatIfCheck{Param: p, Scale: checkScale,
			Recost: re, Sim: simMk, RelErr: relErr})
	}

	// Host-time throughput: how many analytic re-costs vs full simulations
	// fit in a second. The re-coster's whole value proposition is this ratio.
	const recostReps, simReps = 64, 4
	t0 := time.Now()
	for i := 0; i < recostReps; i++ {
		c := scaledCost("alpha", 2)
		if _, err := sk.Recost(skeleton.Params{Cost: &c}); err != nil {
			return nil, err
		}
	}
	recostDur := time.Since(t0)
	t1 := time.Now()
	for i := 0; i < simReps; i++ {
		ffthist.Run(newMachine(cfg.Procs, cost, cfg.Engine, nil), appCfg, mp)
	}
	simDur := time.Since(t1)
	if recostDur > 0 {
		rep.HostRecostsPerSecond = recostReps / recostDur.Seconds()
	}
	if simDur > 0 {
		rep.HostSimsPerSecond = simReps / simDur.Seconds()
	}
	rep.HostSeconds = time.Since(t0).Seconds()
	return rep, nil
}

// WriteText prints the campaign report; the layout is deterministic apart
// from the final host-throughput line.
func (r *WhatIfBench) WriteText(w io.Writer) {
	fmt.Fprintf(w, "=== %s: P=%d N=%d Sets=%d ===\n", r.Name, r.Procs, r.N, r.Sets)
	fmt.Fprintf(w, "skeleton %s, %d ops, baseline makespan %.6f s\n", r.SkeletonKey, r.SkeletonOps, r.Baseline)
	if r.IdentityExact {
		fmt.Fprintf(w, "determinism: re-cost at recorded parameters reproduces the makespan exactly\n")
	} else {
		fmt.Fprintf(w, "determinism: VIOLATED — re-cost at recorded parameters deviates\n")
	}
	fmt.Fprintf(w, "\nranked virtual span speedups (makespan gain):\n")
	for _, s := range r.Spans {
		fmt.Fprintf(w, "  %-40s local %.6f s", s.Label, s.Local)
		for i, g := range s.Gains {
			fmt.Fprintf(w, "  x%g: %.6f", r.Factors[i], g)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nre-cost grid (scaled machine parameters):\n")
	for _, g := range r.Grid {
		fmt.Fprintf(w, "  %-8s x%-6g -> %.6f s\n", g.Param, g.Scale, g.Makespan)
	}
	fmt.Fprintf(w, "\nfull-simulation cross-checks:\n")
	for _, c := range r.Checks {
		fmt.Fprintf(w, "  %-8s x%-6g recost %.6f s, sim %.6f s, rel err %.3g\n",
			c.Param, c.Scale, c.Recost, c.Sim, c.RelErr)
	}
	fmt.Fprintf(w, "\nhost throughput: %.0f re-costs/s vs %.1f full sims/s (%.2fs total)\n",
		r.HostRecostsPerSecond, r.HostSimsPerSecond, r.HostSeconds)
}
