package experiments

import (
	"testing"

	"fxpar/internal/apps/ffthist"
	"fxpar/internal/apps/radar"
	"fxpar/internal/apps/stereo"
	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

// The mapper's closed-form cost tables must track the simulator: predicted
// data-parallel per-set time within a factor of two of the measured one
// across processor counts. (The mapper only needs correct *ranking*; factor
// two is a conservative sanity band.)

func checkBand(t *testing.T, name string, predicted, measured float64) {
	t.Helper()
	if predicted <= 0 || measured <= 0 {
		t.Errorf("%s: non-positive time (pred %g, meas %g)", name, predicted, measured)
		return
	}
	ratio := predicted / measured
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("%s: predicted %.5f vs measured %.5f (ratio %.2f outside [0.5, 2])",
			name, predicted, measured, ratio)
	}
}

func TestFFTHistModelTracksSimulation(t *testing.T) {
	cost := sim.Paragon()
	cfg := ffthist.Config{N: 64, Sets: 6, Bins: 32}
	model := ffthist.BuildModel(cost, cfg, 16)
	for _, p := range []int{1, 4, 16} {
		res := ffthist.Run(machine.New(p, cost), cfg, ffthist.DataParallel(p))
		checkBand(t, "ffthist", model.DPT[p], res.Stream.Latency)
	}
}

func TestRadarModelTracksSimulation(t *testing.T) {
	cost := sim.Paragon()
	cfg := radar.Config{Gates: 128, Rows: 16, Sets: 6, Scale: 1.0 / 128, Threshold: 0.05}
	model := radar.BuildModel(cost, cfg, 16)
	for _, p := range []int{1, 4, 16} {
		res := radar.Run(machine.New(p, cost), cfg, radar.DataParallel(min(p, cfg.Rows)))
		checkBand(t, "radar", model.DPT[p], res.Stream.Latency)
	}
}

func TestStereoModelTracksSimulation(t *testing.T) {
	cost := sim.Paragon()
	cfg := stereo.Config{W: 64, H: 32, Disparities: 8, Window: 2, Sets: 6}
	model := stereo.BuildModel(cost, cfg, 16)
	for _, p := range []int{1, 4, 16} {
		res := stereo.Run(machine.New(p, cost), cfg, stereo.DataParallel(min(p, cfg.H)))
		checkBand(t, "stereo", model.DPT[p], res.Stream.Latency)
	}
}
