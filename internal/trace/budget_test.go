package trace

import (
	"bytes"
	"strings"
	"testing"

	"fxpar/internal/machine"
)

// budgetTestBallast keeps a deliberate allocation reachable so the compiler
// cannot elide it from the Start/Finish accounting window.
var budgetTestBallast []byte

// countSink counts Record calls; the meter wrapping it must agree exactly.
type countSink struct{ n int64 }

func (c *countSink) Record(machine.Event) { c.n++ }

func TestMeteredSinkCountsEveryEvent(t *testing.T) {
	b := NewOverheadBudget()
	inner := &countSink{}
	wrapped := b.Meter("count", inner)
	const events = 10_000
	for i := 0; i < events; i++ {
		wrapped.Record(machine.Event{Proc: i % 64, Kind: machine.EvCompute})
	}
	r := b.Report()
	if len(r.Sinks) != 1 {
		t.Fatalf("report has %d sinks, want 1", len(r.Sinks))
	}
	c := r.Sinks[0]
	if c.Name != "count" || c.Events != events || inner.n != events {
		t.Errorf("sink cost %+v, inner saw %d, want %d events forwarded", c, inner.n, events)
	}
	if c.TimedCalls == 0 || c.EstNS < 0 {
		t.Errorf("meter never timed a call: %+v", c)
	}
}

func TestBudgetStartFinishAndLine(t *testing.T) {
	b := NewOverheadBudget()
	sink := b.Meter("collector", &countSink{})
	s := NewSampler(4, UniformSampleConfig(0.5, 9))
	b.SetSampler(s)
	b.Start()
	for i := 1; i <= 1000; i++ {
		if s.SampleEvent(i%4, int64(i), machine.EvCompute) {
			sink.Record(machine.Event{Proc: i % 4, Kind: machine.EvCompute})
		}
	}
	budgetTestBallast = make([]byte, 1<<16) // visible in the alloc accounting
	b.Finish()
	r := b.Report()
	if r.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", r.WallNS)
	}
	if r.Mallocs == 0 {
		t.Errorf("allocation accounting recorded nothing")
	}
	if r.Sample == nil || !r.Sample.Sampled() {
		t.Fatalf("report missing sampler snapshot: %+v", r.Sample)
	}
	line := r.Line()
	for _, want := range []string{"sinks ", "collector", "sampled compute=1/2", "dropped"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() = %q, missing %q", line, want)
		}
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"wall ", "telemetry est", "collector", "allocs"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestMeterNilAndNilBudget(t *testing.T) {
	b := NewOverheadBudget()
	if got := b.Meter("none", nil); got != nil {
		t.Errorf("Meter(nil sink) = %v, want nil", got)
	}
	var nilBudget *OverheadBudget
	inner := &countSink{}
	if got := nilBudget.Meter("x", inner); got != machine.Tracer(inner) {
		t.Errorf("nil budget must pass the sink through unchanged")
	}
}

// TestMeterPreservesBlockTracer: wrapping a FlightRecorder must not hide its
// RecordBlocked capability — the stall diagnostics depend on it.
func TestMeterPreservesBlockTracer(t *testing.T) {
	b := NewOverheadBudget()
	fr := NewFlightRecorder(4, 16)
	wrapped := b.Meter("flight", fr)
	bt, ok := wrapped.(machine.BlockTracer)
	if !ok {
		t.Fatalf("metered flight recorder lost machine.BlockTracer")
	}
	bt.RecordBlocked(1, 0, 2.5)
	if snap := fr.Snapshot(); len(snap[1]) != 1 || snap[1][0].Peer != 0 {
		t.Errorf("RecordBlocked did not reach the wrapped recorder: %+v", snap[1])
	}
	// A plain sink must NOT grow a BlockTracer face.
	if _, ok := b.Meter("plain", &countSink{}).(machine.BlockTracer); ok {
		t.Errorf("metered plain sink spuriously implements BlockTracer")
	}
}

// TestBudgetReportLiveDuringRun: Report is safe and meaningful mid-run (the
// campaign monitor polls it before Finish).
func TestBudgetReportLiveDuringRun(t *testing.T) {
	b := NewOverheadBudget()
	b.Start()
	r := b.Report()
	if r.WallNS <= 0 {
		t.Errorf("live report WallNS = %d, want elapsed > 0", r.WallNS)
	}
	b.Finish()
	frozen := b.Report()
	if frozen.WallNS <= 0 {
		t.Errorf("frozen WallNS = %d", frozen.WallNS)
	}
}
