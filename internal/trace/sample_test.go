package trace

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fxpar/internal/machine"
	"fxpar/internal/sim"
)

func sampleTestCost() sim.CostModel {
	return sim.CostModel{FlopRate: 1e6, Alpha: 100e-6, Beta: 1e-8, SendOverhead: 10e-6, IORate: 1e8}
}

// ringRun drives a traced ring-exchange program and returns the sorted
// event stream plus the sampler's snapshot.
func ringRun(t *testing.T, eng machine.Engine, s *Sampler, procs, rounds int) ([]machine.Event, SampleSnapshot) {
	t.Helper()
	m := machine.New(procs, sampleTestCost())
	m.SetEngine(eng)
	col := &Collector{}
	m.SetTracer(col)
	m.SetSampler(s)
	m.Run(func(p *machine.Proc) {
		n := p.Machine().N()
		p.BeginSpan("ring")
		for r := 0; r < rounds; r++ {
			p.Compute(float64(50 * (p.ID()%7 + 1)))
			p.Send((p.ID()+1)%n, p.ID(), 128)
			p.Recv((p.ID() + n - 1) % n)
		}
		p.EndSpan()
	})
	return col.Events(), s.Snapshot()
}

// TestSamplerDeterministicAcrossEnginesAndInstances: the kept event set and
// the per-kind kept/dropped counts are pure functions of (seed, rates,
// event identities) — byte-identical across engines and across fresh
// sampler instances.
func TestSamplerDeterministicAcrossEnginesAndInstances(t *testing.T) {
	cfg := UniformSampleConfig(0.25, 42)
	const procs, rounds = 16, 20
	evG, snapG := ringRun(t, machine.Goroutine(), NewSampler(procs, cfg), procs, rounds)
	evC, snapC := ringRun(t, machine.Coop(4), NewSampler(procs, cfg), procs, rounds)
	if !reflect.DeepEqual(evG, evC) {
		t.Fatalf("sampled event streams differ across engines: %d vs %d events", len(evG), len(evC))
	}
	if !reflect.DeepEqual(snapG, snapC) {
		t.Fatalf("sample snapshots differ across engines:\n%+v\n%+v", snapG, snapC)
	}
	if snapG.Dropped == 0 || snapG.Kept == 0 {
		t.Fatalf("expected both kept and dropped events, got %+v", snapG)
	}
	// A different seed keeps a different subset.
	evSeed, _ := ringRun(t, machine.Goroutine(), NewSampler(procs, UniformSampleConfig(0.25, 43)), procs, rounds)
	if reflect.DeepEqual(evG, evSeed) {
		t.Errorf("different seeds kept identical event sets")
	}
}

// TestSamplerAlwaysKeepsStructuralEvents: span boundaries survive any rate,
// and the exact total (kept + dropped) matches the unsampled event count.
func TestSamplerAlwaysKeepsStructuralEvents(t *testing.T) {
	const procs, rounds = 8, 10
	full, _ := ringRun(t, machine.Goroutine(), NewSampler(procs, UniformSampleConfig(1, 1)), procs, rounds)
	s := NewSampler(procs, UniformSampleConfig(0, 1))
	sampled, snap := ringRun(t, machine.Goroutine(), s, procs, rounds)
	var spans int
	for _, e := range sampled {
		switch e.Kind {
		case machine.EvSpanBegin, machine.EvSpanEnd:
			spans++
		default:
			t.Fatalf("rate-0 sampler kept bulk event %+v", e)
		}
	}
	if spans != 2*procs {
		t.Errorf("kept %d span events, want %d", spans, 2*procs)
	}
	if got, want := snap.Kept+snap.Dropped, int64(len(full)); got != want {
		t.Errorf("kept+dropped = %d, want the unsampled event count %d", got, want)
	}
	if s.Rate(machine.EvSpanBegin) != 1 || s.Rate(machine.EvCompute) != 0 {
		t.Errorf("rates = span %g compute %g, want 1 and 0",
			s.Rate(machine.EvSpanBegin), s.Rate(machine.EvCompute))
	}
}

// TestSamplerRateIsRespected: at rate 1/16 the kept fraction of bulk events
// lands near 1/16 (the hash is uniform; the tolerance is generous).
func TestSamplerRateIsRespected(t *testing.T) {
	s := NewSampler(64, UniformSampleConfig(1.0/16, 7))
	kept := 0
	const total = 200000
	for i := 0; i < total; i++ {
		if s.SampleEvent(i%64, int64(i/64+1), machine.EvCompute) {
			kept++
		}
	}
	frac := float64(kept) / total
	if frac < 0.05 || frac > 0.08 {
		t.Errorf("kept fraction %.4f, want ~0.0625", frac)
	}
	snap := s.Snapshot()
	if snap.Kept != int64(kept) || snap.Dropped != int64(total-kept) {
		t.Errorf("snapshot kept/dropped = %d/%d, counted %d/%d", snap.Kept, snap.Dropped, kept, total-kept)
	}
}

func TestParseSampleSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(SampleConfig) bool
	}{
		{"1/64", false, func(c SampleConfig) bool {
			return c.Rates[machine.EvCompute] == 1.0/64 && c.Seed == 1
		}},
		{"0.1:42", false, func(c SampleConfig) bool {
			return c.Rates[machine.EvSend] == 0.1 && c.Seed == 42
		}},
		{"1/64:7,send=1", false, func(c SampleConfig) bool {
			return c.Rates[machine.EvSend] == 1 && c.Rates[machine.EvCompute] == 1.0/64 && c.Seed == 7
		}},
		{"1/64,recv=1/8", false, func(c SampleConfig) bool {
			return c.Rates[machine.EvRecv] == 1.0/8
		}},
		{"", true, nil},
		{"2", true, nil},
		{"-0.5", true, nil},
		{"1/64,bogus=1", true, nil},
		{"1/64,send", true, nil},
		{"1/64:notanum", true, nil},
	}
	for _, c := range cases {
		cfg, err := ParseSampleSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSampleSpec(%q) succeeded, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSampleSpec(%q): %v", c.spec, err)
			continue
		}
		if !c.check(cfg) {
			t.Errorf("ParseSampleSpec(%q) = %+v fails its check", c.spec, cfg)
		}
	}
}

func TestSampleSnapshotRendering(t *testing.T) {
	s := NewSampler(4, UniformSampleConfig(0.5, 3))
	for i := 1; i <= 100; i++ {
		s.SampleEvent(0, int64(i), machine.EvCompute)
		s.SampleEvent(1, int64(i), machine.EvSpanBegin)
	}
	snap := s.Snapshot()
	if !snap.Sampled() {
		t.Fatalf("snapshot with drops reports unsampled")
	}
	if got := snap.RatesString(); !strings.Contains(got, "compute=1/2") {
		t.Errorf("RatesString() = %q, want compute=1/2", got)
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)
	if !strings.Contains(buf.String(), "compute") || !strings.Contains(buf.String(), "total") {
		t.Errorf("WriteText output missing rows:\n%s", buf.String())
	}
	if FormatRate(1.0/64) != "1/64" || FormatRate(0.3) != "0.3" {
		t.Errorf("FormatRate = %q / %q", FormatRate(1.0/64), FormatRate(0.3))
	}
}

// TestCommMatrixDenseSparseEquivalent: the same event stream produces the
// same snapshot whether the matrix is below (dense arrays) or above (sparse
// maps) the dense threshold.
func TestCommMatrixDenseSparseEquivalent(t *testing.T) {
	var evs []machine.Event
	for p := 0; p < 32; p++ {
		for k := 0; k < 4; k++ {
			peer := (p + k + 1) % 32
			evs = append(evs,
				machine.Event{Proc: p, Kind: machine.EvSend, Peer: peer, Bytes: 64 * (k + 1)},
				machine.Event{Proc: peer, Kind: machine.EvRecv, Peer: p, Bytes: 64 * (k + 1)})
		}
	}
	dense := NewCommMatrix(commDenseProcs)
	sparse := NewCommMatrix(commDenseProcs + 1)
	for _, e := range evs {
		dense.Record(e)
		sparse.Record(e)
	}
	if d, s := dense.Snapshot(), sparse.Snapshot(); !reflect.DeepEqual(d, s) {
		t.Fatalf("dense and sparse snapshots differ:\n%v\n%v", d, s)
	}
}

// TestCommMatrixMemoryGuardP4096 is the satellite guard: a 4096-processor
// matrix with a bounded set of active pairs must stay within a few MB of
// allocation. A dense per-shard array (2*4096 cells per recording shard)
// would allocate >100MB here and trip the bound.
func TestCommMatrixMemoryGuardP4096(t *testing.T) {
	const procs = 4096
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	m := NewCommMatrix(procs)
	for p := 0; p < procs; p += 4 { // 1024 active procs, 2 pairs each
		m.Record(machine.Event{Proc: p, Kind: machine.EvSend, Peer: (p + 1) % procs, Bytes: 64})
		m.Record(machine.Event{Proc: p, Kind: machine.EvRecv, Peer: (p + procs - 1) % procs, Bytes: 64})
	}
	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	if delta > 8<<20 {
		t.Fatalf("P=4096 comm matrix allocated %d bytes, want < 8MB (dense O(P^2) state returned?)", delta)
	}
	if edges := m.Snapshot(); len(edges) == 0 {
		t.Fatalf("matrix recorded nothing")
	}
}

func TestTopCommEdges(t *testing.T) {
	edges := []CommEdge{
		{Src: 0, Dst: 1, BytesSent: 100},
		{Src: 2, Dst: 3, BytesSent: 500},
		{Src: 1, Dst: 0, BytesSent: 300, BytesRecvd: 300},
		{Src: 4, Dst: 5, BytesSent: 300, BytesRecvd: 300},
	}
	top := TopCommEdges(edges, 2)
	if len(top) != 2 || top[0].BytesSent != 300 || top[0].Src != 1 {
		t.Fatalf("TopCommEdges(2) = %+v", top)
	}
	if got := TopCommEdges(edges, 0); len(got) != len(edges) {
		t.Errorf("TopCommEdges(0) truncated to %d", len(got))
	}
	// Ties break by (src, dst): (1,0) before (4,5).
	if top[0].Src != 1 || top[1].Src != 4 {
		t.Errorf("tie-break order wrong: %+v", top)
	}
}
