package trace

// Flight recorder: a fixed-size ring of the most recent events per
// processor, kept while the run is in progress. When a campaign simulation
// stalls or deadlocks, the rings answer "what was every processor last
// doing" without the memory cost of a full Collector. The recorder also
// implements machine.BlockTracer, so a receive that never completes still
// deposits an open EvWait marker (End == Start, by convention) for the
// blocked processor — the one event a post-hoc collector can never show,
// because the machine only records a wait after it finishes.
//
// Ring contents are for postmortems: the set of events present depends on
// host scheduling progress, unlike the deterministic virtual-time values
// inside each event.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"fxpar/internal/machine"
)

// DefaultFlightDepth is the per-processor ring size used when
// NewFlightRecorder is given a non-positive depth.
const DefaultFlightDepth = 64

// flightRing is one processor's circular event buffer.
type flightRing struct {
	mu    sync.Mutex
	buf   []machine.Event
	next  int   // index of the slot the next event overwrites
	total int64 // events ever recorded on this ring
}

// FlightRecorder retains the last depth events of every processor.
type FlightRecorder struct {
	rings   []flightRing
	depth   int
	dropped atomic.Int64
}

var (
	_ machine.Tracer      = (*FlightRecorder)(nil)
	_ machine.BlockTracer = (*FlightRecorder)(nil)
)

// NewFlightRecorder returns a recorder for a machine of the given size,
// retaining the last depth events per processor (DefaultFlightDepth when
// depth <= 0).
func NewFlightRecorder(procs, depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{rings: make([]flightRing, procs), depth: depth}
}

// Depth returns the per-processor ring size.
func (f *FlightRecorder) Depth() int { return f.depth }

func (f *FlightRecorder) push(proc int, e machine.Event) {
	if proc < 0 || proc >= len(f.rings) {
		f.dropped.Add(1)
		return
	}
	r := &f.rings[proc]
	r.mu.Lock()
	if len(r.buf) < f.depth {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % f.depth
	}
	r.total++
	r.mu.Unlock()
}

// Record implements machine.Tracer.
func (f *FlightRecorder) Record(e machine.Event) { f.push(e.Proc, e) }

// RecordBlocked implements machine.BlockTracer: it deposits an open wait
// marker (Kind EvWait, End == Start) naming the peer the processor is
// blocked on. If the message eventually arrives, the machine's normal
// closed EvWait interval follows it in the ring.
func (f *FlightRecorder) RecordBlocked(proc, src int, now float64) {
	f.push(proc, machine.Event{Proc: proc, Kind: machine.EvWait, Start: now, End: now, Peer: src})
}

// Snapshot returns each processor's retained events, oldest first. Safe to
// call at any time, including while processors are blocked — which is the
// point.
func (f *FlightRecorder) Snapshot() [][]machine.Event {
	out := make([][]machine.Event, len(f.rings))
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		evs := make([]machine.Event, 0, len(r.buf))
		if len(r.buf) < f.depth {
			evs = append(evs, r.buf...)
		} else {
			evs = append(evs, r.buf[r.next:]...)
			evs = append(evs, r.buf[:r.next]...)
		}
		r.mu.Unlock()
		out[i] = evs
	}
	return out
}

// OpenWait reports whether proc's most recent retained event is an open wait
// marker, and if so which peer it is blocked on and since when.
func (f *FlightRecorder) OpenWait(proc int) (peer int, since float64, blocked bool) {
	if proc < 0 || proc >= len(f.rings) {
		return 0, 0, false
	}
	r := &f.rings[proc]
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return 0, 0, false
	}
	last := len(r.buf) - 1
	if len(r.buf) == f.depth {
		last = (r.next - 1 + f.depth) % f.depth
	}
	e := r.buf[last]
	if e.Kind == machine.EvWait && e.End == e.Start {
		return e.Peer, e.Start, true
	}
	return 0, 0, false
}

// WriteText renders a postmortem: one line per processor with its last few
// events (most recent last), flagging processors whose newest event is an
// open wait.
func (f *FlightRecorder) WriteText(w io.Writer, lastN int) {
	if lastN <= 0 {
		lastN = 8
	}
	snap := f.Snapshot()
	fmt.Fprintf(w, "flight recorder: last %d event(s) per processor (most recent last)\n", lastN)
	for pr, evs := range snap {
		if len(evs) > lastN {
			evs = evs[len(evs)-lastN:]
		}
		fmt.Fprintf(w, "p%04d:", pr)
		if len(evs) == 0 {
			fmt.Fprintf(w, " (no events)")
		}
		for _, e := range evs {
			switch {
			case e.Kind == machine.EvWait && e.End == e.Start:
				fmt.Fprintf(w, " wait<-%d@%.6f(BLOCKED)", e.Peer, e.Start)
			case e.Kind == machine.EvSend:
				fmt.Fprintf(w, " send->%d[%.6f,%.6f]", e.Peer, e.Start, e.End)
			case e.Kind == machine.EvWait:
				fmt.Fprintf(w, " wait<-%d[%.6f,%.6f]", e.Peer, e.Start, e.End)
			case e.Kind == machine.EvRecv:
				fmt.Fprintf(w, " recv<-%d@%.6f", e.Peer, e.Start)
			case e.Kind == machine.EvSpanBegin:
				fmt.Fprintf(w, " begin(%s)@%.6f", e.Label, e.Start)
			case e.Kind == machine.EvSpanEnd:
				fmt.Fprintf(w, " end(%s)@%.6f", e.Label, e.Start)
			case e.Kind == machine.EvFault:
				fmt.Fprintf(w, " fault(%s)@%.6f", e.Label, e.Start)
			case e.Kind == machine.EvTimeout:
				fmt.Fprintf(w, " timeout<-%d[%.6f,%.6f]", e.Peer, e.Start, e.End)
			case e.Kind == machine.EvRetry:
				fmt.Fprintf(w, " retry<-%d@%.6f", e.Peer, e.Start)
			default:
				fmt.Fprintf(w, " %s[%.6f,%.6f]", e.Kind, e.Start, e.End)
			}
		}
		fmt.Fprintln(w)
	}
}
