package trace

// Critical-path analysis: reconstructs the virtual-time dependency graph of
// a traced run — program order within each processor plus the send→recv
// edges recovered from EvSend events and EvRecv markers under per-pair FIFO
// order — and walks the binding chain backwards from the event that ends at
// the makespan. Every instant on the path is attributed to an event kind
// (compute, send, io, network, ...) and to the innermost named span it ran
// in, which is what explains a pipeline's latency: the path threads through
// exactly the stages that serialize it.

import (
	"fmt"
	"io"
	"sort"

	"fxpar/internal/machine"
)

// KindTime is path time attributed to one event kind (or to "network", the
// wire latency of the send→recv edges the path crosses).
type KindTime struct {
	Kind string
	Time float64
}

// SpanTime is path time attributed to one span label.
type SpanTime struct {
	Label string
	Time  float64
	Steps int
	// Faults, Timeouts and Retries count the fault-injection markers on the
	// path whose innermost owning span has this label. The markers are
	// zero-duration, so without these counters a chaotic run's critical path
	// would show *where* time went but hide *why* — a retransmission storm or
	// a beaten deadline inside a stage leaves its time attributed to the
	// stage with no visible cause.
	Faults   int
	Timeouts int
	Retries  int
}

// CriticalPath is the longest virtual-time dependency chain of a run.
type CriticalPath struct {
	// Makespan is the virtual time at which the path (and the run) ends.
	Makespan float64
	// Start is the virtual time at which the path begins (first event).
	Start float64
	// Steps is the number of events on the path.
	Steps int
	// Hops is the number of cross-processor send→recv edges on the path.
	Hops int
	// Procs lists the distinct processors the path visits, ascending.
	Procs []int
	// ByKind attributes path time per event kind plus "network", sorted by
	// time descending (ties by name).
	ByKind []KindTime
	// BySpan attributes path time to the innermost enclosing span of each
	// path event ("(network)" for wire time, "(untracked)" outside spans),
	// sorted by time descending (ties by label).
	BySpan []SpanTime
	// Faults, Timeouts and Retries total the fault-injection markers on the
	// path (EvFault, EvTimeout, EvRetry); the per-span breakdown is in
	// BySpan. All zero on a healthy run.
	Faults   int
	Timeouts int
	Retries  int
	// Unattributed is path wall time not covered by any event (gaps);
	// ~zero in a well-formed trace, reported so it cannot hide.
	Unattributed float64
}

// PathTime returns the path's total duration, Makespan - Start.
func (cp *CriticalPath) PathTime() float64 { return cp.Makespan - cp.Start }

// isLeaf reports whether an event occupies (or marks) processor time, as
// opposed to the span bracket markers.
func isLeaf(k machine.EventKind) bool {
	return k != machine.EvSpanBegin && k != machine.EvSpanEnd
}

// ComputeCriticalPath analyses a run's events (typically
// Collector.Events()). It returns nil for an empty trace.
func ComputeCriticalPath(evs []machine.Event) *CriticalPath {
	t := NewTimeline(evs)
	n := len(t.Events)
	if n == 0 {
		return nil
	}

	// Per-processor leaf sequences, in program order.
	procLeaves := map[int][]int{}
	pos := make([]int, n) // position of event i within its processor's leaf list
	for i, e := range t.Events {
		if !isLeaf(e.Kind) {
			continue
		}
		pos[i] = len(procLeaves[e.Proc])
		procLeaves[e.Proc] = append(procLeaves[e.Proc], i)
	}

	// Match every EvRecv marker to its send: k-th receive on dst from src
	// consumes the k-th send on src to dst (per-ordered-pair FIFO).
	type flow struct{ src, dst int }
	sends := map[flow][]int{}
	for _, leaves := range procLeaves {
		for _, i := range leaves {
			if e := t.Events[i]; e.Kind == machine.EvSend {
				f := flow{e.Proc, e.Peer}
				sends[f] = append(sends[f], i)
			}
		}
	}
	matchSend := make([]int, n) // recv event index -> send event index (-1 unknown)
	for i := range matchSend {
		matchSend[i] = -1
	}
	taken := map[flow]int{}
	// Iterate processors in ascending order for deterministic map use.
	procIDs := make([]int, 0, len(procLeaves))
	for pr := range procLeaves {
		procIDs = append(procIDs, pr)
	}
	sort.Ints(procIDs)
	for _, pr := range procIDs {
		for _, i := range procLeaves[pr] {
			e := t.Events[i]
			if e.Kind != machine.EvRecv {
				continue
			}
			f := flow{e.Peer, e.Proc}
			k := taken[f]
			taken[f] = k + 1
			if k < len(sends[f]) {
				matchSend[i] = sends[f][k]
			}
		}
	}

	// Terminal event: the leaf with the maximum end time; ties resolved to
	// the lowest processor, then the latest event in program order.
	cur := -1
	for _, pr := range procIDs {
		for _, i := range procLeaves[pr] {
			if cur == -1 {
				cur = i
				continue
			}
			a, b := t.Events[i], t.Events[cur]
			if a.End > b.End || (a.End == b.End && (a.Proc < b.Proc || (a.Proc == b.Proc && a.Seq > b.Seq))) {
				cur = i
			}
		}
	}

	cp := &CriticalPath{Makespan: t.Events[cur].End}
	byKind := map[string]float64{}
	bySpan := map[string]*SpanTime{}
	spanOf := func(label string) *SpanTime {
		st := bySpan[label]
		if st == nil {
			st = &SpanTime{Label: label}
			bySpan[label] = st
		}
		return st
	}
	addSpan := func(label string, d float64) {
		st := spanOf(label)
		st.Time += d
		st.Steps++
	}
	procSeen := map[int]bool{}
	covered := 0.0

	for cur >= 0 {
		e := t.Events[cur]
		cp.Steps++
		procSeen[e.Proc] = true
		cp.Start = e.Start

		// A wait interval means the binding constraint was the message's
		// arrival: the path leaves this processor and continues through the
		// matching send on the peer, crossing the wire. The wait's own
		// duration is covered by the sender's timeline plus network time.
		if e.Kind == machine.EvWait {
			// The recv marker for this wait is the next leaf in program
			// order (machine.Proc.Recv records wait, then the marker).
			leaves := procLeaves[e.Proc]
			if p := pos[cur]; p+1 < len(leaves) {
				recv := leaves[p+1]
				re := t.Events[recv]
				if re.Kind == machine.EvRecv && re.Peer == e.Peer && matchSend[recv] >= 0 {
					send := matchSend[recv]
					net := e.End - t.Events[send].End
					if net < 0 {
						net = 0
					}
					byKind["network"] += net
					addSpan("(network)", net)
					covered += net
					cp.Hops++
					cur = send
					continue
				}
			}
			// No matching send recorded (e.g. partial trace): account the
			// wait itself and continue on this processor.
		}

		// Fault-injection markers are on the path even when zero-duration:
		// attribute them to their owning span so a chaotic run's report names
		// the cause, not just the kinds of time.
		switch e.Kind {
		case machine.EvFault, machine.EvTimeout, machine.EvRetry:
			label := t.OwnerLabel(cur)
			if label == "" {
				label = "(untracked)"
			}
			st := spanOf(label)
			switch e.Kind {
			case machine.EvFault:
				cp.Faults++
				st.Faults++
			case machine.EvTimeout:
				cp.Timeouts++
				st.Timeouts++
			case machine.EvRetry:
				cp.Retries++
				st.Retries++
			}
		}

		if d := e.End - e.Start; d > 0 {
			byKind[e.Kind.String()] += d
			label := t.OwnerLabel(cur)
			if label == "" {
				label = "(untracked)"
			}
			addSpan(label, d)
			covered += d
		}
		if p := pos[cur]; p > 0 {
			cur = procLeaves[e.Proc][p-1]
		} else {
			cur = -1
		}
	}

	cp.Unattributed = cp.PathTime() - covered
	if cp.Unattributed < 1e-12 && cp.Unattributed > -1e-12 {
		cp.Unattributed = 0
	}
	for pr := range procSeen {
		cp.Procs = append(cp.Procs, pr)
	}
	sort.Ints(cp.Procs)
	for k, v := range byKind {
		cp.ByKind = append(cp.ByKind, KindTime{Kind: k, Time: v})
	}
	sort.Slice(cp.ByKind, func(i, j int) bool {
		if cp.ByKind[i].Time != cp.ByKind[j].Time {
			return cp.ByKind[i].Time > cp.ByKind[j].Time
		}
		return cp.ByKind[i].Kind < cp.ByKind[j].Kind
	})
	for _, st := range bySpan {
		cp.BySpan = append(cp.BySpan, *st)
	}
	sort.Slice(cp.BySpan, func(i, j int) bool {
		if cp.BySpan[i].Time != cp.BySpan[j].Time {
			return cp.BySpan[i].Time > cp.BySpan[j].Time
		}
		return cp.BySpan[i].Label < cp.BySpan[j].Label
	})
	return cp
}

// WriteReport prints the critical path breakdown in a fixed, deterministic
// text format.
func (cp *CriticalPath) WriteReport(w io.Writer) {
	if cp == nil {
		fmt.Fprintln(w, "critical path: no events")
		return
	}
	total := cp.PathTime()
	fmt.Fprintf(w, "critical path: %.6f s (t=%.6f .. %.6f), %d steps, %d hops, %d processors\n",
		total, cp.Start, cp.Makespan, cp.Steps, cp.Hops, len(cp.Procs))
	if cp.Faults > 0 || cp.Timeouts > 0 || cp.Retries > 0 {
		fmt.Fprintf(w, "  faults on path: %d faults, %d timeouts, %d retries\n",
			cp.Faults, cp.Timeouts, cp.Retries)
	}
	pct := func(v float64) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * v / total
	}
	fmt.Fprintf(w, "  by kind:\n")
	for _, kt := range cp.ByKind {
		fmt.Fprintf(w, "    %-10s %12.6f s %6.1f%%\n", kt.Kind, kt.Time, pct(kt.Time))
	}
	fmt.Fprintf(w, "  by span (innermost attribution):\n")
	for _, st := range cp.BySpan {
		fmt.Fprintf(w, "    %-40s %12.6f s %6.1f%%  (%d steps)", st.Label, st.Time, pct(st.Time), st.Steps)
		if st.Faults > 0 || st.Timeouts > 0 || st.Retries > 0 {
			fmt.Fprintf(w, "  [%d faults, %d timeouts, %d retries]", st.Faults, st.Timeouts, st.Retries)
		}
		fmt.Fprintln(w)
	}
	if cp.Unattributed != 0 {
		fmt.Fprintf(w, "  unattributed: %.6f s\n", cp.Unattributed)
	}
}
